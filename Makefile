GO ?= go

.PHONY: all build test vet race check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: compile, vet, and the test suite under the
# race detector.
check: build vet race

bench:
	$(GO) test -bench=. -benchmem
