GO ?= go

.PHONY: all build test vet race check bench gobench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: compile, vet, and the test suite under the
# race detector.
check: build vet race

# bench runs the tick-loop benchmark matrix and diffs it against the
# checked-in baseline (informational ratios; regenerate the baseline
# with `go run ./cmd/lunule-bench -tickbench -tickbench-out BENCH_pr2.json`).
bench:
	$(GO) run ./cmd/lunule-bench -tickbench -tickbench-baseline BENCH_pr2.json

# gobench runs the in-package Go micro-benchmarks.
gobench:
	$(GO) test -bench=. -benchmem ./...
