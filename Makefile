GO ?= go

.PHONY: all build test vet race check bench gobench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: compile, vet, and the test suite under the
# race detector.
check: build vet race

# bench runs the tick-loop benchmark matrix and diffs it against the
# checked-in baseline: ns/tick ratios are informational (host-dependent),
# but the run fails if any case's allocs/tick regresses by more than 10%.
# Regenerate the baseline after an intentional change with
# `go run ./cmd/lunule-bench -tickbench -tickbench-out BENCH_pr3.json`.
bench:
	$(GO) run ./cmd/lunule-bench -tickbench -tickbench-baseline BENCH_pr3.json

# gobench runs the in-package Go micro-benchmarks.
gobench:
	$(GO) test -bench=. -benchmem ./...
