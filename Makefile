GO ?= go

.PHONY: all build test vet race check bench gobench audit fuzz elastic replication batched readstorm noisy

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: compile, vet, and the test suite under the
# race detector.
check: build vet race

# bench runs the tick-loop benchmark matrix — the serial cells plus the
# parallel-engine workers axis (1,2,4,8 by default, see
# -tickbench-workers) — and diffs it against the checked-in baseline:
# ns/tick and ops/sec ratios are informational (host-dependent), but the
# run fails if any case's allocs/tick regresses by more than 10%.
# Regenerate the baseline after an intentional change with
# `go run ./cmd/lunule-bench -tickbench -tickbench-out BENCH_pr10.json`.
bench:
	$(GO) run ./cmd/lunule-bench -tickbench -tickbench-baseline BENCH_pr10.json

# elastic runs the audited autoscaler suite: the diurnal-wave experiment
# (elastic vs static fleets) plus an audited scale-up/drain-down smoke of
# the CLI — one full 4 -> 8 -> 4 cycle that must exit clean.
elastic:
	$(GO) run ./cmd/lunule-bench -exp elastic -audit
	$(GO) run ./cmd/lunule-sim -elastic -mds 4 -clients 48 -audit -audit-every-tick -maxticks 8000 >/dev/null

# replication runs the audited warm-standby suite: the R=1/2/3 churn
# experiment (warm promotion vs cold takeover) plus an audited R=2 CLI
# smoke with a partition-scoped crash — both must exit clean.
replication:
	$(GO) run ./cmd/lunule-bench -exp replication -audit
	$(GO) run ./cmd/lunule-sim -replication 2 -mds 5 -clients 16 -mtbf 300 -mttr 60 -recoveryticks 30 -audit -audit-every-tick -maxticks 2000 >/dev/null

# batched runs the audited write-back batching suite: the sync vs
# write-back JCT experiment (MDtest + CNN ingest) plus an audited
# write-back MDtest CLI smoke on a multi-worker pool under the race
# detector — both must exit clean.
batched:
	$(GO) run ./cmd/lunule-bench -exp batched -audit
	$(GO) run -race ./cmd/lunule-sim -workload md -batch-size 32 -flush-every 8 -workers 4 -mds 4 -clients 32 -scale 0.2 -audit -audit-every-tick -maxticks 3000 >/dev/null

# readstorm runs the audited lease-based read-replica suite: the
# shared-directory read-storm experiment (leases vs pure migration vs
# vanilla) plus an audited lease-enabled CLI smoke on a multi-worker
# pool under the race detector — both must exit clean.
readstorm:
	$(GO) run ./cmd/lunule-bench -exp readstorm -audit
	$(GO) run -race ./cmd/lunule-sim -workload readstorm -replication 3 -lease-ticks 40 -workers 4 -mds 5 -clients 40 -scale 0.5 -audit -audit-every-tick -maxticks 3000 >/dev/null

# noisy runs the audited multi-tenant QoS suite: the noisy-neighbor
# isolation experiment (per-tenant token buckets vs unprotected
# balancing, reduced scale so the audited run stays fast) plus an
# audited skewed-tenant CLI smoke on a multi-worker pool under the race
# detector — both must exit clean.
noisy:
	$(GO) run ./cmd/lunule-bench -exp noisy -audit -scale 0.25
	$(GO) run -race ./cmd/lunule-sim -tenants 4 -tenant-rate 600 -tenant-burst 1200 -workers 4 -mds 4 -clients 24 -audit -audit-every-tick -maxticks 3000 >/dev/null

# gobench runs the in-package Go micro-benchmarks.
gobench:
	$(GO) test -bench=. -benchmem ./...

# fuzz smokes each fuzz target for a short budget with the invariant
# checks as the oracle (long campaigns: raise FUZZTIME).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz=FuzzPartitionOps -fuzztime=$(FUZZTIME) ./internal/audit
	$(GO) test -fuzz=FuzzFragSplitMerge -fuzztime=$(FUZZTIME) ./internal/audit
	$(GO) test -fuzz=FuzzMigratorLifecycle -fuzztime=$(FUZZTIME) ./internal/audit

# audit runs the audited failover suite (every experiment run carries
# the state auditor; any invariant violation fails) plus the fuzz smoke.
audit: fuzz
	$(GO) run ./cmd/lunule-bench -exp failover,overhead -audit
	$(GO) run ./cmd/lunule-sim -audit -audit-every-tick -mtbf 300 -mttr 60 -mds 8 -maxticks 800 >/dev/null
