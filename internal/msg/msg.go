// Package msg models the control-plane messages the balancers exchange
// and accounts for their network cost. Lunule replaces the CephFS
// decentralized N-to-N heartbeat exchange with a centralized N-to-1
// collection (Imbalance State messages to the Migration Initiator,
// Migration Decision messages back to exporters); the paper's §3.4
// quantifies the resulting per-epoch byte overhead, which this package
// reproduces.
package msg

import "fmt"

// Kind enumerates the control-plane message types.
type Kind int

// Message kinds.
const (
	// KindHeartbeat is the original CephFS balancer heartbeat, sent by
	// every MDS to every other MDS each epoch (N-to-N).
	KindHeartbeat Kind = iota
	// KindImbalanceState is Lunule's per-epoch load report from each
	// MDS to the Migration Initiator (N-to-1). It carries the MDS rank
	// and its metadata request rate.
	KindImbalanceState
	// KindMigrationDecision carries one exporter's assigned migration
	// amounts from the Migration Initiator back to that exporter.
	KindMigrationDecision
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindHeartbeat:
		return "Heartbeat"
	case KindImbalanceState:
		return "ImbalanceState"
	case KindMigrationDecision:
		return "MigrationDecision"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Wire sizes in bytes. The payloads are tiny; almost all of the cost is
// the fixed Ceph messenger envelope (header, footer, auth), which is
// why the paper reports ~0.94 KB per Imbalance State message.
const (
	envelopeBytes = 934
	// HeartbeatBytes is the size of one CephFS MDS balancer heartbeat,
	// which carries the full load vector of the sender and grows with
	// cluster size.
	heartbeatBaseBytes    = envelopeBytes
	heartbeatPerMDSBytes  = 48
	imbalanceStateBytes   = envelopeBytes + 12 // rank (4) + request rate (8)
	migrationDecisionBase = envelopeBytes
	migrationDecisionPer  = 16 // importer rank + amount per pair
)

// SizeHeartbeat returns the size of one heartbeat in an n-MDS cluster.
func SizeHeartbeat(n int) int { return heartbeatBaseBytes + n*heartbeatPerMDSBytes }

// SizeImbalanceState returns the size of one Imbalance State message.
func SizeImbalanceState() int { return imbalanceStateBytes }

// SizeMigrationDecision returns the size of a decision message listing
// the given number of exporter-importer pairs.
func SizeMigrationDecision(pairs int) int {
	return migrationDecisionBase + pairs*migrationDecisionPer
}

// Ledger accumulates per-MDS in/out byte counts for control messages.
type Ledger struct {
	in    []int64
	out   []int64
	count map[Kind]int64
}

// NewLedger creates a ledger for an n-MDS cluster.
func NewLedger(n int) *Ledger {
	return &Ledger{
		in:    make([]int64, n),
		out:   make([]int64, n),
		count: make(map[Kind]int64),
	}
}

// Grow extends the ledger to cover at least n MDSs.
func (l *Ledger) Grow(n int) {
	for len(l.in) < n {
		l.in = append(l.in, 0)
		l.out = append(l.out, 0)
	}
}

// Send records one message of the given kind and size from src to dst.
func (l *Ledger) Send(kind Kind, src, dst, size int) {
	l.Grow(max(src, dst) + 1)
	l.out[src] += int64(size)
	l.in[dst] += int64(size)
	l.count[kind]++
}

// InBytes returns the bytes received by the MDS.
func (l *Ledger) InBytes(mds int) int64 {
	if mds >= len(l.in) {
		return 0
	}
	return l.in[mds]
}

// OutBytes returns the bytes sent by the MDS.
func (l *Ledger) OutBytes(mds int) int64 {
	if mds >= len(l.out) {
		return 0
	}
	return l.out[mds]
}

// Count returns the number of messages of the given kind.
func (l *Ledger) Count(kind Kind) int64 { return l.count[kind] }

// TotalBytes returns the total bytes sent across the cluster.
func (l *Ledger) TotalBytes() int64 {
	var t int64
	for _, v := range l.out {
		t += v
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// EpochVanilla records one epoch of the CephFS N-to-N heartbeat
// exchange among n MDSs.
func (l *Ledger) EpochVanilla(n int) {
	size := SizeHeartbeat(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			l.Send(KindHeartbeat, i, j, size)
		}
	}
}

// EpochLunule records one epoch of Lunule's centralized exchange among
// n MDSs with the initiator at the given rank: every other MDS sends
// one Imbalance State to the initiator, and the initiator sends one
// decision message per exporter in the plan.
func (l *Ledger) EpochLunule(n, initiator int, exporters []int, pairsPerExporter int) {
	for i := 0; i < n; i++ {
		if i == initiator {
			continue
		}
		l.Send(KindImbalanceState, i, initiator, SizeImbalanceState())
	}
	for _, e := range exporters {
		l.Send(KindMigrationDecision, initiator, e, SizeMigrationDecision(pairsPerExporter))
	}
}
