package msg

import "testing"

func TestKindString(t *testing.T) {
	if KindHeartbeat.String() != "Heartbeat" {
		t.Fatal("heartbeat name")
	}
	if KindImbalanceState.String() != "ImbalanceState" {
		t.Fatal("imbalance state name")
	}
	if KindMigrationDecision.String() != "MigrationDecision" {
		t.Fatal("decision name")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestSizes(t *testing.T) {
	// An Imbalance State message is roughly 0.94 KB, as the paper
	// measures for the per-epoch out-bound overhead per MDS.
	sz := SizeImbalanceState()
	if sz < 900 || sz > 1000 {
		t.Fatalf("imbalance state = %d bytes, want ~940", sz)
	}
	if SizeHeartbeat(16) <= SizeHeartbeat(5) {
		t.Fatal("heartbeat must grow with cluster size")
	}
	if SizeMigrationDecision(3) <= SizeMigrationDecision(0) {
		t.Fatal("decision must grow with pair count")
	}
}

func TestLedgerSendAccounting(t *testing.T) {
	l := NewLedger(3)
	l.Send(KindImbalanceState, 1, 0, 100)
	l.Send(KindImbalanceState, 2, 0, 100)
	if l.InBytes(0) != 200 {
		t.Fatalf("in(0) = %d", l.InBytes(0))
	}
	if l.OutBytes(1) != 100 || l.OutBytes(2) != 100 {
		t.Fatal("out accounting")
	}
	if l.Count(KindImbalanceState) != 2 {
		t.Fatal("count")
	}
	if l.TotalBytes() != 200 {
		t.Fatal("total")
	}
}

func TestLedgerGrow(t *testing.T) {
	l := NewLedger(2)
	l.Send(KindHeartbeat, 5, 1, 10) // beyond initial size
	if l.OutBytes(5) != 10 {
		t.Fatal("grow on send")
	}
	if l.InBytes(9) != 0 {
		t.Fatal("query beyond size should be zero")
	}
}

func TestEpochLunuleCentralized(t *testing.T) {
	// 16-MDS cluster: the initiator receives 15 Imbalance State
	// messages (~14.1 KB in-bound per the paper), every other MDS sends
	// exactly one (~0.94 KB out-bound).
	l := NewLedger(16)
	l.EpochLunule(16, 0, nil, 0)
	in := l.InBytes(0)
	if in < 13000 || in > 16000 {
		t.Fatalf("initiator in-bound = %d bytes, want ~14.1 KB", in)
	}
	for i := 1; i < 16; i++ {
		out := l.OutBytes(i)
		if out < 900 || out > 1000 {
			t.Fatalf("MDS %d out-bound = %d bytes, want ~0.94 KB", i, out)
		}
	}
	if l.Count(KindImbalanceState) != 15 {
		t.Fatal("message count")
	}
}

func TestEpochLunuleDecisions(t *testing.T) {
	l := NewLedger(4)
	l.EpochLunule(4, 0, []int{2, 3}, 2)
	if l.Count(KindMigrationDecision) != 2 {
		t.Fatal("decision count")
	}
	if l.InBytes(2) == 0 || l.InBytes(3) == 0 {
		t.Fatal("exporters must receive decisions")
	}
}

func TestDecisionSizeScalesWithPairs(t *testing.T) {
	base := SizeMigrationDecision(0)
	three := SizeMigrationDecision(3)
	if three-base != 3*16 {
		t.Fatalf("per-pair cost = %d, want 48", three-base)
	}
}

func TestLedgerSelfSendStillCounts(t *testing.T) {
	// Defensive: a self-send (never produced by the epoch helpers) is
	// accounted on both sides without panicking.
	l := NewLedger(2)
	l.Send(KindHeartbeat, 1, 1, 10)
	if l.InBytes(1) != 10 || l.OutBytes(1) != 10 {
		t.Fatal("self send accounting")
	}
}

func TestEpochVanillaQuadratic(t *testing.T) {
	l5 := NewLedger(5)
	l5.EpochVanilla(5)
	l16 := NewLedger(16)
	l16.EpochVanilla(16)
	if l5.Count(KindHeartbeat) != 5*4 {
		t.Fatalf("5-MDS heartbeats = %d", l5.Count(KindHeartbeat))
	}
	if l16.Count(KindHeartbeat) != 16*15 {
		t.Fatalf("16-MDS heartbeats = %d", l16.Count(KindHeartbeat))
	}
	// The centralized scheme must be cheaper in total bytes.
	cl := NewLedger(16)
	cl.EpochLunule(16, 0, nil, 0)
	if cl.TotalBytes() >= l16.TotalBytes() {
		t.Fatalf("centralized %d >= decentralized %d bytes", cl.TotalBytes(), l16.TotalBytes())
	}
}
