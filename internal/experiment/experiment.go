// Package experiment reproduces the paper's evaluation: every table and
// figure of §4 has a runner here that builds the right workloads,
// cluster shape, and balancers, runs the simulation, and reports the
// same rows/series the paper reports. The cmd/lunule-bench binary and
// the top-level benchmarks both drive this registry.
package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/audit"
	"repro/internal/balancer"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Options control an experiment run.
type Options struct {
	// Seed drives all randomness (default 42).
	Seed uint64
	// Scale multiplies workload sizes; 1.0 is the default laptop scale
	// (every experiment completes in seconds). Larger values approach
	// the paper's dataset sizes.
	Scale float64
	// MaxTicks bounds each simulation (default: per experiment).
	MaxTicks int64
	// Audit attaches a state auditor to every cluster the experiment
	// builds and fails the run on any invariant violation. The auditor
	// is read-only, so audited results are identical to unaudited ones.
	Audit bool
}

// auditor returns a fresh epoch-cadence auditor when auditing is
// requested, else nil (the zero-cost disabled state).
func (o Options) auditor() *audit.Auditor {
	if !o.Audit {
		return nil
	}
	return audit.New(audit.Options{})
}

// auditErr surfaces any invariant violations a run's auditor recorded.
// Nil-safe on unaudited clusters.
func auditErr(c *cluster.Cluster) error {
	return c.Auditor().Err()
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.MaxTicks == 0 {
		o.MaxTicks = 6000
	}
}

// Result is one experiment's output.
type Result struct {
	// ID is the registry key (e.g. "fig6").
	ID string
	// Title describes what the paper item shows.
	Title string
	// Table holds the reproduced rows.
	Table *metrics.Table
	// Series holds named, downsampled time series (textual figures).
	Series []NamedSeries
	// Notes records observations (paper-vs-measured commentary).
	Notes []string
	// Values exposes key numbers for tests and benchmarks.
	Values map[string]float64
}

// NamedSeries is a labelled series rendered as "t=v" pairs.
type NamedSeries struct {
	Name   string
	Points string
}

// String renders the full result.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-28s %s\n", s.Name, s.Points)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func (r *Result) val(key string, v float64) {
	if r.Values == nil {
		r.Values = make(map[string]float64)
	}
	r.Values[key] = v
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

var registry = map[string]struct {
	title  string
	runner Runner
}{}
var order []string

func register(id, title string, r Runner) {
	registry[id] = struct {
		title  string
		runner Runner
	}{title, r}
	order = append(order, id)
}

// IDs returns the registered experiment IDs in registration order.
func IDs() []string { return append([]string(nil), order...) }

// Titles returns id -> title.
func Titles() map[string]string {
	out := make(map[string]string, len(registry))
	for id, e := range registry {
		out[id] = e.title
	}
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, opt Options) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiment: unknown id %q (known: %s)", id, strings.Join(known, ", "))
	}
	opt.defaults()
	res, err := e.runner(opt)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", id, err)
	}
	res.ID = id
	res.Title = e.title
	return res, nil
}

// --- shared builders ---------------------------------------------------

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// scaledMin scales n but never below a floor — used where an
// experiment's dynamics need a minimum run length regardless of scale.
func scaledMin(n int, scale float64, min int) int {
	v := scaled(n, scale)
	if v < min {
		v = min
	}
	return v
}

// WorkloadNames lists the five single workloads in the paper's order.
var WorkloadNames = []string{"CNN", "NLP", "Web", "Zipf", "MD"}

// MakeWorkload builds one of the paper's workloads at the given scale.
func MakeWorkload(name string, scale float64) workload.Generator {
	switch name {
	case "CNN":
		return workload.NewCNN(workload.CNNConfig{
			Dirs:        300,
			FilesPerDir: scaled(32, scale),
		})
	case "NLP":
		return workload.NewNLP(workload.NLPConfig{
			FilesPerDir: scaled(400, scale),
		})
	case "Web":
		return workload.NewWeb(workload.WebConfig{
			Files:             scaled(12000, scale),
			RequestsPerClient: scaled(20000, scale),
		})
	case "Zipf":
		return workload.NewZipf(workload.ZipfConfig{
			OpsPerClient: scaled(40000, scale),
		})
	case "MD":
		return workload.NewMD(workload.MDConfig{
			CreatesPerClient: scaled(25000, scale),
		})
	case "ReadStorm":
		return workload.NewReadStorm(workload.ReadStormConfig{
			Files:        scaled(2000, scale),
			OpsPerClient: scaled(12000, scale),
		})
	case "Mixed":
		return workload.NewMixed(
			MakeWorkload("CNN", scale),
			MakeWorkload("NLP", scale),
			MakeWorkload("Web", scale),
			MakeWorkload("Zipf", scale),
		)
	default:
		panic("experiment: unknown workload " + name)
	}
}

// BalancerNames lists the four policies of the single-workload grid.
var BalancerNames = []string{"Vanilla", "GreedySpill", "Lunule-Light", "Lunule"}

// MakeBalancer builds a policy by name.
func MakeBalancer(name string) balancer.Balancer {
	switch name {
	case "Vanilla":
		return balancer.NewVanilla()
	case "GreedySpill":
		return balancer.NewGreedySpill()
	case "Lunule-Light":
		return core.NewLight()
	case "Lunule":
		return core.NewDefault()
	case "Dir-Hash":
		return balancer.NewDirHash()
	default:
		panic("experiment: unknown balancer " + name)
	}
}

// runOne builds and runs a cluster to completion (or MaxTicks). With
// Options.Audit set, every run carries a state auditor and an invariant
// violation fails the experiment.
func runOne(opt Options, cfg cluster.Config) (*cluster.Cluster, error) {
	if cfg.Seed == 0 {
		cfg.Seed = opt.Seed
	}
	if cfg.Audit == nil {
		cfg.Audit = opt.auditor()
	}
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	c.RunUntilDone(opt.MaxTicks)
	if err := auditErr(c); err != nil {
		return nil, err
	}
	return c, nil
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func fi(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
