package experiment

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Sweep is the aggregate of one experiment run across several seeds:
// every numeric Value becomes a mean with a sample standard deviation,
// so headline factors can be reported with their run-to-run spread.
type Sweep struct {
	ID    string
	Title string
	Seeds int
	// Mean and Std index the same keys as Result.Values.
	Mean map[string]float64
	Std  map[string]float64
	// Last keeps the final seed's full result (tables/series).
	Last *Result
}

// RunSeeds executes the experiment once per seed (opt.Seed, opt.Seed+1,
// ...) and aggregates the Values maps.
func RunSeeds(id string, opt Options, seeds int) (*Sweep, error) {
	if seeds < 1 {
		seeds = 1
	}
	opt.defaults()
	acc := make(map[string][]float64)
	var last *Result
	for s := 0; s < seeds; s++ {
		o := opt
		o.Seed = opt.Seed + uint64(s)
		res, err := Run(id, o)
		if err != nil {
			return nil, err
		}
		for k, v := range res.Values {
			acc[k] = append(acc[k], v)
		}
		last = res
	}
	sw := &Sweep{
		ID:    id,
		Title: last.Title,
		Seeds: seeds,
		Mean:  make(map[string]float64, len(acc)),
		Std:   make(map[string]float64, len(acc)),
		Last:  last,
	}
	for k, vs := range acc {
		sw.Mean[k] = stats.Mean(vs)
		sw.Std[k] = stats.StdDev(vs)
	}
	return sw, nil
}

// String renders the sweep as "key = mean ± std" lines in sorted order.
func (s *Sweep) String() string {
	keys := make([]string, 0, len(s.Mean))
	for k := range s.Mean {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := fmt.Sprintf("=== %s: %s (%d seeds) ===\n", s.ID, s.Title, s.Seeds)
	for _, k := range keys {
		out += fmt.Sprintf("%-40s %12.3f ± %.3f\n", k, s.Mean[k], s.Std[k])
	}
	return out
}
