package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/replica"
)

func init() {
	register("readstorm",
		"Extension: lease-based hot-read replicas vs pure migration under a shared-directory read storm",
		runReadStorm)
}

// Read-replica policy of the lease cell. R=5 puts four serve-capable
// standbys behind the storm's primary, so all five ranks share the read
// stream — the same spread dirfrag migration eventually reaches, but
// standing one epoch after the storm starts instead of after several
// epochs of exports; LeaseTicks is four epochs, long enough that a
// steady storm refreshes leases before they lapse; ReplicateReadFrac
// demands a strongly read-dominated subtree before replication kicks
// in, so write-heavy hotspots still go to the migrator.
const (
	readStormR        = 5
	readStormLease    = 40
	readStormReadFrac = 0.75
)

// runReadStorm measures what lease-based read replication buys on the
// workload migration fundamentally cannot fix: every client hammering
// one shared directory with cache-miss reads. Moving the directory (or
// its dirfrags) just relocates the queue — the aggregate service rate
// stays one rank's capacity per fragment, and a Zipf-skewed storm
// concentrates in few fragments. Serving reads from lease holders
// multiplies the service rate by the replica count instead. Three
// identically-seeded cells: the CephFS built-in balancer, migration-only
// Lunule, and Lunule with read leases on R-1 standbys.
func runReadStorm(opt Options) (*Result, error) {
	cells := []struct {
		name     string
		balancer string
		leases   bool
	}{
		{"Vanilla", "Vanilla", false},
		{"Lunule", "Lunule", false},
		{"Lunule+leases", "Lunule", true},
	}

	res := &Result{Table: &metrics.Table{Header: []string{
		"cell", "JCT p50", "JCT max", "ops/sec", "migrated",
		"lease serves", "granted", "revoked", "expired", "done",
	}}}
	for _, cell := range cells {
		var mgr *replica.Manager
		if cell.leases {
			pol := replica.DefaultPolicy()
			pol.R = readStormR
			pol.LeaseTicks = readStormLease
			pol.ReplicateReadFrac = readStormReadFrac
			mgr = replica.MustManager(pol)
		}
		c, err := runOne(opt, cluster.Config{
			Balancer:    MakeBalancer(cell.balancer),
			Workload:    MakeWorkload("ReadStorm", opt.Scale),
			Replication: mgr,
		})
		if err != nil {
			return nil, err
		}
		if !c.Done() {
			return nil, fmt.Errorf("readstorm: %s cell did not finish in %d ticks", cell.name, opt.MaxTicks)
		}
		rec := c.Metrics()

		var granted, revoked, expired int64
		if mgr != nil {
			granted = mgr.LeasesGranted()
			revoked = mgr.LeasesRevoked()
			expired = mgr.LeasesExpired()
		}
		res.Table.Add(cell.name,
			fi(rec.JCTQuantile(0.5)), fi(rec.JCTQuantile(1.0)),
			f1(rec.MeanThroughput()), fi(rec.MigratedTotal()),
			fmt.Sprint(c.LeaseServes()), fmt.Sprint(granted),
			fmt.Sprint(revoked), fmt.Sprint(expired),
			fmt.Sprintf("%v", c.Done()))

		key := map[string]string{
			"Vanilla": "vanilla", "Lunule": "lunule", "Lunule+leases": "lease",
		}[cell.name]
		res.val(key+".jct50", rec.JCTQuantile(0.5))
		res.val(key+".jct_max", rec.JCTQuantile(1.0))
		res.val(key+".tput", rec.MeanThroughput())
		res.val(key+".migrated", rec.MigratedTotal())
		res.val(key+".lease_serves", float64(c.LeaseServes()))
		res.val(key+".granted", float64(granted))
		res.val(key+".expired", float64(expired))
	}
	res.Notes = append(res.Notes,
		"same seeded Zipf read storm on one shared directory in every cell; only the policy differs",
		fmt.Sprintf("lease cell: R=%d replication, %d-tick leases, grants require read fraction >= %.2f",
			readStormR, readStormLease, readStormReadFrac),
		"migration relocates the storm's queue; leases multiply its service rate across the replica holders")
	return res, nil
}
