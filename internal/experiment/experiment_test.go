package experiment

import (
	"math"
	"testing"
)

// quick runs an experiment at reduced scale for tests.
func quick(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, Options{Scale: 0.25, Seed: 42, MaxTicks: 4000})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12a", "fig12b",
		"fig13a", "fig13b", "fig14", "overhead", "failover", "elastic",
		"replication", "readstorm",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	titles := Titles()
	for _, id := range IDs() {
		if titles[id] == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestTable1RatiosMatchPaper(t *testing.T) {
	res := quick(t, "table1")
	for _, w := range WorkloadNames {
		got := res.Values[w+".ratio"]
		want := res.Values[w+".paper"]
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("%s meta ratio %v, paper %v", w, got, want)
		}
	}
}

func TestFig2VanillaSkewsOnCNN(t *testing.T) {
	res := quick(t, "fig2")
	// The motivation study: CNN is the most imbalanced workload under
	// the built-in balancer.
	if res.Values["CNN.maxShare"] < 0.3 {
		t.Fatalf("CNN max share %v: vanilla should be badly skewed", res.Values["CNN.maxShare"])
	}
	if res.Values["CNN.maxMin"] < res.Values["Zipf.maxMin"] {
		t.Fatal("CNN must be more skewed than Zipf under vanilla")
	}
}

func TestFig4VanillaOverMigrates(t *testing.T) {
	// A notch above the other tests' scale: the over-migration ratio
	// grows with the run horizon (vanilla re-migrates the same subtrees
	// epoch after epoch), and at 0.25 the run is short enough to leave
	// the ratio hovering right at 1.
	res, err := Run("fig4", Options{Scale: 0.3, Seed: 42, MaxTicks: 8000})
	if err != nil {
		t.Fatal(err)
	}
	// The namespace is migrated more than once over (invalid and
	// repeated migrations).
	if res.Values["Zipf.ratio"] < 1 {
		t.Fatalf("Zipf migration ratio %v: expected over-migration", res.Values["Zipf.ratio"])
	}
}

func TestFig6LunuleBalancesBest(t *testing.T) {
	res := quick(t, "fig6")
	for _, w := range WorkloadNames {
		lun := res.Values[w+"/Lunule.meanIF"]
		greedy := res.Values[w+"/GreedySpill.meanIF"]
		if lun >= greedy {
			t.Fatalf("%s: Lunule IF %v not below GreedySpill %v", w, lun, greedy)
		}
	}
	// The scan workloads defeat the heat-based vanilla policy.
	if res.Values["CNN/Lunule.meanIF"] >= res.Values["CNN/Vanilla.meanIF"] {
		t.Fatal("CNN: Lunule must balance better than Vanilla")
	}
}

func TestFig7LunuleThroughput(t *testing.T) {
	res := quick(t, "fig7")
	// Lunule improves CNN throughput substantially over all baselines
	// (paper: 2.81x over Vanilla) and never collapses elsewhere.
	if res.Values["CNN.lunule-vs-Vanilla"] < 1.2 {
		t.Fatalf("CNN Lunule/Vanilla = %v, want > 1.2", res.Values["CNN.lunule-vs-Vanilla"])
	}
	if res.Values["CNN.lunule-vs-GreedySpill"] < 1.5 {
		t.Fatalf("CNN Lunule/GreedySpill = %v, want > 1.5", res.Values["CNN.lunule-vs-GreedySpill"])
	}
	for _, w := range WorkloadNames {
		if r := res.Values[w+".lunule-vs-Vanilla"]; r < 0.8 {
			t.Fatalf("%s: Lunule collapsed vs Vanilla (%v)", w, r)
		}
	}
}

func TestFig12bBenignImbalanceTolerated(t *testing.T) {
	res := quick(t, "fig12b")
	if res.Values["phase1.rebalances"] != 0 {
		t.Fatalf("phase-1 light imbalance triggered %v rebalances, want 0",
			res.Values["phase1.rebalances"])
	}
	// Throughput grows with the client population.
	if res.Values["phase4.iops"] <= res.Values["phase1.iops"] {
		t.Fatal("throughput must grow across phases")
	}
}

func TestFig13aScalesNearLinearly(t *testing.T) {
	res := quick(t, "fig13a")
	if eff := res.Values["mds8.efficiency"]; eff < 0.7 {
		t.Fatalf("8-MDS efficiency %v, want near-linear", eff)
	}
	if res.Values["mds16.peak"] <= res.Values["mds4.peak"] {
		t.Fatal("peak must grow with cluster size")
	}
}

func TestFig13bOrdering(t *testing.T) {
	res := quick(t, "fig13b")
	if res.Values["Lunule.mean"] <= res.Values["Dir-Hash.mean"] {
		t.Fatalf("Lunule (%v) must beat Dir-Hash (%v) on Web",
			res.Values["Lunule.mean"], res.Values["Dir-Hash.mean"])
	}
}

func TestFig14DirHashShape(t *testing.T) {
	res := quick(t, "fig14")
	// Dir-Hash: inodes spread evenly (small max/min spread)...
	if spread := res.Values["Dir-Hash.inodeSpread"]; spread > 2 {
		t.Fatalf("Dir-Hash inode spread %v, want ~1", spread)
	}
	// ...but far more forwards than the dynamic balancers.
	if res.Values["dirhash-fwd-vs-vanilla"] < 1.5 {
		t.Fatalf("Dir-Hash forwards ratio %v, want well above 1",
			res.Values["dirhash-fwd-vs-vanilla"])
	}
}

func TestOverheadMatchesPaper(t *testing.T) {
	res := quick(t, "overhead")
	// ~0.94 KB per-MDS per-epoch report.
	if out := res.Values["mds16.lunule.outKB"]; math.Abs(out-0.94) > 0.1 {
		t.Fatalf("per-MDS out %v KB, paper ~0.94", out)
	}
	// ~14.1 KB initiator in-bound at 16 MDSs.
	if in := res.Values["mds16.lunule.initiatorInKB"]; math.Abs(in-14.1) > 1.5 {
		t.Fatalf("initiator in %v KB, paper ~14.1", in)
	}
	// Centralized collection is cheaper than N-to-N.
	if res.Values["mds16.lunule.totalKB"] >= res.Values["mds16.vanilla.totalKB"] {
		t.Fatal("N-to-1 must be cheaper than N-to-N")
	}
}

func TestAblationUrgency(t *testing.T) {
	res := quick(t, "ablation")
	full := res.Values["urgency/full Lunule.rebalances"]
	off := res.Values["urgency/urgency off.rebalances"]
	if full != 0 {
		t.Fatalf("full Lunule fired %v rebalances on benign skew, want 0", full)
	}
	if off <= full {
		t.Fatalf("urgency-off must fire on benign skew (got %v)", off)
	}
}

func TestSharedDirLunuleSplits(t *testing.T) {
	res := quick(t, "shareddir")
	if res.Values["lunule-vs-vanilla"] < 1.5 {
		t.Fatalf("shared-dir speedup %v, want > 1.5", res.Values["lunule-vs-vanilla"])
	}
	if res.Values["Lunule.frags"] < 2 {
		t.Fatalf("Lunule fragments = %v, want > 1", res.Values["Lunule.frags"])
	}
	if res.Values["Vanilla.frags"] != 1 {
		t.Fatalf("Vanilla fragments = %v, want 1 (cannot split)", res.Values["Vanilla.frags"])
	}
}

func TestHeteroRunsComplete(t *testing.T) {
	res := quick(t, "hetero")
	// The degraded-run throughput must stay positive for both systems
	// and Lunule must re-stabilize at least as well as Vanilla.
	lun := res.Values["mid-run degradation/Lunule.mean"]
	van := res.Values["mid-run degradation/Vanilla.mean"]
	if lun <= 0 || van <= 0 {
		t.Fatal("degraded runs must make progress")
	}
	if lun < van*0.9 {
		t.Fatalf("Lunule degraded throughput %v far below Vanilla %v", lun, van)
	}
}

func TestFailoverZeroLostOps(t *testing.T) {
	res, err := Run("failover", Options{Scale: 0.25, Seed: 42, MaxTicks: 8000})
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"Zipf", "SharedDir"} {
		for _, b := range []string{"Vanilla", "Lunule"} {
			key := wl + "." + b
			if res.Values[key+".done"] != 1 {
				t.Fatalf("%s: clients unfinished — lost ops after the crash", key)
			}
			// The crash must be observable: either ops stalled on the dead
			// rank, or an in-flight export aborted (when the hottest rank
			// was mid-export, authority rolls to the importer and clients
			// redirect without stalling).
			if res.Values[key+".stalled"]+res.Values[key+".aborted"] == 0 {
				t.Fatalf("%s: crash of the hottest rank left no trace", key)
			}
			// Takeover happens exactly at the configured window for every
			// subtree the dead rank owned.
			if r := res.Values[key+".reassign"]; r != 0 && r != failoverRecoveryTicks {
				t.Fatalf("%s: reassign after %v ticks, want %d", key, r, failoverRecoveryTicks)
			}
		}
	}
}

func TestElasticBeatsStaticFleets(t *testing.T) {
	res, err := Run("elastic", Options{Scale: 0.25, Seed: 42, MaxTicks: 8000, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	// One full cycle in one run: the controller grew for the burst and
	// gracefully drained back to the floor afterwards.
	if res.Values["elastic.scale_ups"] < 1 {
		t.Fatal("autoscaler never scaled up during the burst")
	}
	if res.Values["elastic.drains"] < 1 {
		t.Fatal("autoscaler never drained back down after the burst")
	}
	if got := res.Values["elastic.end_ranks"]; got != 4 {
		t.Fatalf("elastic fleet settled at %v active ranks, want the floor 4", got)
	}
	// The economics: more capacity than static-4 when it matters...
	if e, s := res.Values["elastic.jct50"], res.Values["static-4.jct50"]; e >= s {
		t.Fatalf("elastic JCT p50 %v not better than static-4 %v", e, s)
	}
	// ...without paying static-16's idle-fleet bill.
	if e, s := res.Values["elastic.rank_epochs"], res.Values["static-16.rank_epochs"]; e >= s {
		t.Fatalf("elastic rank-epochs %v not below static-16 %v", e, s)
	}
}

func TestReplicationWarmBeatsCold(t *testing.T) {
	res, err := Run("replication", Options{Scale: 0.25, Seed: 42, MaxTicks: 8000, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"r1", "r2", "r3"} {
		if res.Values[r+".done"] != 1 {
			t.Fatalf("%s: clients unfinished — lost ops under churn", r)
		}
	}
	// The scenario must actually exercise both paths: cold takeovers at
	// R=1, warm promotions at R=2.
	if res.Values["r1.cold"] == 0 {
		t.Fatal("R=1 cell saw no cold takeovers — churn proves too little")
	}
	if res.Values["r1.warm"] != 0 {
		t.Fatal("R=1 cell recorded warm recoveries without a manager")
	}
	if res.Values["r2.warm"] == 0 || res.Values["r2.promotions"] == 0 {
		t.Fatal("R=2 cell never promoted a standby")
	}
	// The headline claims: warm failover collapses recovery latency and
	// the stalls (and therefore JCT) that ride on it.
	if w, c := res.Values["r2.reassign"], res.Values["r1.reassign"]; w >= c {
		t.Fatalf("R=2 mean reassign %v not below cold %v", w, c)
	}
	if w, c := res.Values["r2.stalled"], res.Values["r1.stalled"]; w >= c {
		t.Fatalf("R=2 stalled ops %v not below cold %v", w, c)
	}
	if w, c := res.Values["r2.jct50"], res.Values["r1.jct50"]; w > c {
		t.Fatalf("R=2 JCT p50 %v worse than cold %v", w, c)
	}
	// Losing a standby under churn must trigger background re-replication.
	if res.Values["r2.resyncs"] == 0 {
		t.Fatal("R=2 cell never re-replicated after a loss")
	}
}

func TestReadStormLeasesBeatMigration(t *testing.T) {
	res, err := Run("readstorm", Options{Scale: 0.25, Seed: 42, MaxTicks: 4000, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	// The tentpole claim: on a shared-directory read storm, lease-based
	// read replicas beat both the built-in balancer and migration-only
	// Lunule on completion time AND aggregate throughput.
	lease, van, lun := res.Values["lease.jct50"], res.Values["vanilla.jct50"], res.Values["lunule.jct50"]
	if lease >= van || lease >= lun {
		t.Fatalf("lease JCT p50 %v not below vanilla %v and lunule %v", lease, van, lun)
	}
	if lt, vt, ut := res.Values["lease.tput"], res.Values["vanilla.tput"], res.Values["lunule.tput"]; lt <= vt || lt <= ut {
		t.Fatalf("lease ops/sec %v not above vanilla %v and lunule %v", lt, vt, ut)
	}
	// The win must come from lease serving, not from a lucky balancer
	// run: holders actually served reads, and the storm directory was
	// replicated instead of migrated.
	if res.Values["lease.lease_serves"] == 0 {
		t.Fatal("lease cell recorded no lease serves")
	}
	if res.Values["lease.granted"] == 0 {
		t.Fatal("lease cell granted no leases")
	}
	// The baselines must not accidentally have lease machinery on.
	for _, cell := range []string{"vanilla", "lunule"} {
		if res.Values[cell+".lease_serves"] != 0 || res.Values[cell+".granted"] != 0 {
			t.Fatalf("%s cell has lease activity", cell)
		}
	}
}

func TestNoisyQoSProtectsVictims(t *testing.T) {
	res, err := Run("noisy", Options{Scale: 0.25, Seed: 42, MaxTicks: 4000, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	iso := res.Values["isolated.victim50"]
	if iso <= 0 {
		t.Fatal("isolated baseline recorded no victim completions")
	}
	// Without admission control the storm degrades victims badly no
	// matter which balancer runs — spreading the storm spreads the
	// congestion.
	for _, cell := range []string{"vanilla", "lunule"} {
		if r := res.Values[cell+".victim50"] / iso; r < 2 {
			t.Fatalf("%s victim p50 only %.2fx isolated; the storm should at least double it", cell, r)
		}
		if res.Values[cell+".aggr_throttled"] != 0 {
			t.Fatalf("%s cell throttled the aggressor; its buckets must be uncontended", cell)
		}
	}
	// With per-tenant buckets the victims stay near their isolated
	// completion times (full scale holds 1.25x; the shorter test run
	// leaves the startup transient a bigger share, hence 1.5x) and the
	// win must come from admission actually cutting the aggressor.
	if r := res.Values["qos.victim50"] / iso; r > 1.5 {
		t.Fatalf("qos victim p50 %.2fx isolated, want <= 1.5x", r)
	}
	if res.Values["qos.victim50"] >= res.Values["vanilla.victim50"] ||
		res.Values["qos.victim50"] >= res.Values["lunule.victim50"] {
		t.Fatal("qos cell does not beat both unprotected cells on victim p50")
	}
	if res.Values["qos.aggr_throttled"] == 0 {
		t.Fatal("qos cell never throttled the aggressor")
	}
}

func TestResultRendering(t *testing.T) {
	res := quick(t, "overhead")
	out := res.String()
	if len(out) == 0 || res.ID != "overhead" {
		t.Fatal("result rendering")
	}
}
