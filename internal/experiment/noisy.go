package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/tenant"
	"repro/internal/workload"
)

func init() {
	register("noisy",
		"Extension: multi-tenant QoS — token-bucket admission isolates victims from a noisy neighbor's metadata storm",
		runNoisy)
}

// Shape of the noisy-neighbor scenario. The aggressor's offered load
// (160 clients x 150 ops/tick) alone is three times the whole cluster's
// service rate (4 ranks x 2000 ops/tick), so without admission control
// victims queue behind the storm no matter how well the balancer
// spreads it.
// The QoS cell caps every tenant at 1300 ops/tick: the three victims
// (8 clients x 150 = 1200 ops/tick each) never touch their caps, while
// the aggressor is cut to a twentieth of its demand, leaving the
// cluster uncongested.
const (
	noisyAggrClients   = 160
	noisyAggrDirs      = 8
	noisyVictimClients = 8
	noisyVictims       = 3
	noisyOpsPerClient  = 24000
	noisyRate          = 1300
	noisyBurst         = 1300
)

// neutralTenancy is an accounting-only manager: buckets so large no
// tenant can ever drain one, which is behavior-identical to running
// without tenancy (the idle-differential test proves byte equality)
// but still sizes the per-tenant JCT/latency slots in the recorder.
func neutralTenancy() *tenant.Manager {
	pol := tenant.DefaultPolicy()
	pol.Rate, pol.Burst = 1e9, 2e9
	return tenant.MustManager(pol)
}

func qosTenancy() *tenant.Manager {
	pol := tenant.DefaultPolicy()
	pol.Rate, pol.Burst = noisyRate, noisyBurst
	return tenant.MustManager(pol)
}

// noisyVictimGen builds victim v's generator: the standard Zipf/MDtest/
// ReadStorm mixture, each victim in its own subtree. Shared between the
// isolated baseline (victims are tenants 0..2) and the loaded cells
// (victims are tenants 1..3 behind the aggressor), so the victim work
// is identical in every cell.
func noisyVictimGen(v, off int, scale float64) workload.Generator {
	dir := fmt.Sprintf("/victim%02d", v)
	switch v % 3 {
	case 0:
		return workload.NewZipf(workload.ZipfConfig{
			Dir: dir + "/zipf", ClientOffset: off,
			OpsPerClient: scaled(noisyOpsPerClient, scale)})
	case 1:
		return workload.NewMD(workload.MDConfig{
			Dir: dir + "/md", ClientOffset: off,
			CreatesPerClient: scaled(noisyOpsPerClient, scale)})
	default:
		return workload.NewReadStorm(workload.ReadStormConfig{
			Dir: dir + "/storm", ClientOffset: off, WriteEvery: 50,
			OpsPerClient: scaled(noisyOpsPerClient, scale)})
	}
}

// noisyAggrGen builds the aggressor: four parallel shared-directory
// create storms. One storm would sit on a single rank under the vanilla
// balancer, leaving the other ranks — and most victims — untouched;
// four storms land on every rank, so no placement luck can shield a
// victim. Each storm's offered load still exceeds a single rank's
// capacity on its own.
func noisyAggrGen(off int, scale float64) workload.Generator {
	gens := make([]workload.Generator, noisyAggrDirs)
	per := noisyAggrClients / noisyAggrDirs
	for d := range gens {
		gens[d] = workload.NewMDShared(workload.MDSharedConfig{
			Dir:              fmt.Sprintf("/noisy/dir%d", d),
			ClientOffset:     off + d*per,
			CreatesPerClient: scaled(noisyOpsPerClient, scale)})
	}
	return workload.NewMixed(gens...)
}

// runNoisy measures tenant isolation under a metadata storm. Four cells:
// the victims alone (the baseline their completion times are judged
// against), then victims plus a 96-client shared-directory create storm
// under the vanilla balancer, under Lunule without QoS, and under Lunule
// with per-tenant token buckets. Balancing alone cannot protect the
// victims — the storm's demand exceeds the whole cluster's capacity, so
// spreading it just saturates every rank — only admission control keeps
// the victims at their isolated completion times.
func runNoisy(opt Options) (*Result, error) {
	victimsOnly := func() workload.Generator {
		counts := make([]int, noisyVictims)
		for v := range counts {
			counts[v] = noisyVictimClients
		}
		return workload.NewTenants(workload.TenantsConfig{Counts: counts},
			func(t, clients, off int) workload.Generator {
				return noisyVictimGen(t, off, opt.Scale)
			})
	}
	loaded := func() workload.Generator {
		counts := append([]int{noisyAggrClients}, make([]int, noisyVictims)...)
		for v := 1; v < len(counts); v++ {
			counts[v] = noisyVictimClients
		}
		return workload.NewTenants(workload.TenantsConfig{Counts: counts},
			func(t, clients, off int) workload.Generator {
				if t == 0 {
					return noisyAggrGen(off, opt.Scale)
				}
				return noisyVictimGen(t-1, off, opt.Scale)
			})
	}

	cells := []struct {
		key      string
		name     string
		balancer string
		loaded   bool
		qos      bool
	}{
		{"isolated", "Isolated victims", "Lunule", false, false},
		{"vanilla", "Vanilla+storm", "Vanilla", true, false},
		{"lunule", "Lunule+storm", "Lunule", true, false},
		{"qos", "Lunule+QoS+storm", "Lunule", true, true},
	}

	res := &Result{Table: &metrics.Table{Header: []string{
		"cell", "victim p50", "victim lat", "aggr p50",
		"aggr throttled", "ops/sec", "done",
	}}}
	for _, cell := range cells {
		tn := neutralTenancy()
		if cell.qos {
			tn = qosTenancy()
		}
		gen := victimsOnly()
		clients := noisyVictims * noisyVictimClients
		if cell.loaded {
			gen = loaded()
			clients += noisyAggrClients
		}
		c, err := runOne(opt, cluster.Config{
			MDS:      4,
			Clients:  clients,
			Balancer: MakeBalancer(cell.balancer),
			Workload: gen,
			Tenancy:  tn,
		})
		if err != nil {
			return nil, err
		}
		if !c.Done() {
			return nil, fmt.Errorf("noisy: %s cell did not finish in %d ticks", cell.name, opt.MaxTicks)
		}
		rec := c.Metrics()

		// The gate metric is the WORST victim tenant's median client
		// completion time: isolation must hold for every victim, not on
		// average.
		firstVictim := 0
		if cell.loaded {
			firstVictim = 1
		}
		var victim50, victimLat float64
		for v := 0; v < noisyVictims; v++ {
			if p := rec.TenantJCTQuantile(firstVictim+v, 0.5); p > victim50 {
				victim50 = p
			}
			if l := rec.TenantMeanLatency(firstVictim + v); l > victimLat {
				victimLat = l
			}
		}
		var aggr50, aggrThrottled float64
		if cell.loaded {
			aggr50 = rec.TenantJCTQuantile(0, 0.5)
			aggrThrottled = float64(tn.Throttled(0))
		}

		res.Table.Add(cell.name,
			fi(victim50), f2(victimLat), fi(aggr50),
			fi(aggrThrottled), f1(rec.MeanThroughput()),
			fmt.Sprintf("%v", c.Done()))
		res.val(cell.key+".victim50", victim50)
		res.val(cell.key+".victim_lat", victimLat)
		if cell.loaded {
			res.val(cell.key+".aggr50", aggr50)
			res.val(cell.key+".aggr_throttled", aggrThrottled)
		}
	}

	iso := res.Values["isolated.victim50"]
	if iso > 0 {
		res.Notes = append(res.Notes,
			fmt.Sprintf("victim slowdown vs isolated p50=%s: vanilla %.2fx, lunule %.2fx, qos %.2fx",
				fi(iso),
				res.Values["vanilla.victim50"]/iso,
				res.Values["lunule.victim50"]/iso,
				res.Values["qos.victim50"]/iso))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("aggressor: %d clients hammering %d shared directories — offered load alone (%d ops/tick) exceeds total cluster capacity",
			noisyAggrClients, noisyAggrDirs, noisyAggrClients*150),
		fmt.Sprintf("qos cell: flat per-tenant buckets rate=%d burst=%d ops/tick; victims (%d clients each) never touch their caps",
			noisyRate, noisyBurst, noisyVictimClients),
		"balancing spreads the storm but cannot shrink it; admission control is what protects the victims")
	return res, nil
}
