package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register("shareddir", "Extension: shared-directory create storm (the GIGA+ scenario)", runSharedDir)
}

// runSharedDir stresses the hardest case for subtree-granular
// balancing: every client creates into one shared directory, so the
// only way to parallelize is to split that directory's fragments
// across MDSs. Policies that move whole directories (the heat-based
// baselines) can only relocate the bottleneck; Lunule's selector
// splits it.
func runSharedDir(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"balancer", "mean IOPS", "JCT p50", "dirfrag entries", "migrated",
	}}}
	for _, b := range []string{"Vanilla", "GreedySpill", "Lunule"} {
		c, err := runOne(opt, cluster.Config{
			Balancer: MakeBalancer(b),
			Workload: workload.NewMDShared(workload.MDSharedConfig{
				CreatesPerClient: scaledMin(15000, opt.Scale, 10000),
			}),
		})
		if err != nil {
			return nil, err
		}
		rec := c.Metrics()
		// Count the fragment entries of the shared dir.
		shared, err := c.Tree().Lookup("/mdshared/dir")
		if err != nil {
			return nil, err
		}
		frags := len(c.Partition().EntriesAt(shared.Ino))
		res.Table.Add(b, fi(rec.MeanThroughput()), fi(rec.JCTQuantile(0.5)),
			fmt.Sprint(frags), fi(rec.MigratedTotal()))
		res.val(b+".mean", rec.MeanThroughput())
		res.val(b+".jct50", rec.JCTQuantile(0.5))
		res.val(b+".frags", float64(frags))
	}
	if v := res.Values["Vanilla.mean"]; v > 0 {
		res.val("lunule-vs-vanilla", res.Values["Lunule.mean"]/v)
	}
	res.Notes = append(res.Notes,
		"only dirfrag splitting parallelizes a single hot directory; whole-directory policies just relocate it")
	return res, nil
}
