package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/workload"
)

func init() {
	register("fig13a", "Figure 13(a): MDS-cluster scalability under MD (Lunule)", runFig13a)
	register("fig13b", "Figure 13(b): Lunule vs Vanilla vs Dir-Hash (Web)", runFig13b)
	register("fig14", "Figure 14: Dir-Hash inode vs request distribution and forwards", runFig14)
	register("overhead", "Section 3.4: control-plane message overhead per epoch", runOverhead)
}

// runFig13a measures peak throughput as the cluster grows 1..16 MDSs,
// with the client pool scaled to keep per-MDS demand above capacity.
func runFig13a(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"MDSs", "clients", "peak IOPS", "linear ref", "efficiency",
	}}}
	base := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		clients := 10 * n
		c, err := runOne(opt, cluster.Config{
			MDS:      n,
			Clients:  clients,
			Balancer: MakeBalancer("Lunule"),
			Workload: workload.NewMD(workload.MDConfig{
				// Floor: the run must span enough epochs for load to
				// spread across the largest cluster.
				CreatesPerClient: scaledMin(12000, opt.Scale, 9000),
			}),
		})
		if err != nil {
			return nil, err
		}
		peak := c.Metrics().PeakThroughput(10)
		if n == 1 {
			base = peak
		}
		linear := base * float64(n)
		eff := 0.0
		if linear > 0 {
			eff = peak / linear
		}
		res.Table.Add(fmt.Sprint(n), fmt.Sprint(clients), fi(peak), fi(linear), f2(eff))
		res.val(fmt.Sprintf("mds%d.peak", n), peak)
		res.val(fmt.Sprintf("mds%d.efficiency", n), eff)
	}
	res.Notes = append(res.Notes,
		"paper: Lunule scales linearly to 16 MDSs (112k req/s), slightly below the ideal line near saturation")
	return res, nil
}

// runFig13b compares peak throughput of the three placement schemes on
// the Web workload.
func runFig13b(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"balancer", "peak IOPS", "mean IOPS", "JCT p50",
	}}}
	for _, b := range []string{"Lunule", "Vanilla", "Dir-Hash"} {
		c, err := runOne(opt, cluster.Config{
			Balancer: MakeBalancer(b),
			Workload: workload.NewWeb(workload.WebConfig{
				// Floors: Dir-Hash's weaknesses (authority-cache misses,
				// static placement) only bite on a namespace larger than
				// the client caches, over a long enough run.
				Files:             scaledMin(12000, opt.Scale, 9000),
				RequestsPerClient: scaledMin(20000, opt.Scale, 12000),
			}),
		})
		if err != nil {
			return nil, err
		}
		rec := c.Metrics()
		res.Table.Add(b, fi(rec.PeakThroughput(10)), fi(rec.MeanThroughput()), fi(rec.JCTQuantile(0.5)))
		res.val(b+".peak", rec.PeakThroughput(10))
		res.val(b+".mean", rec.MeanThroughput())
	}
	if v := res.Values["Dir-Hash.mean"]; v > 0 {
		res.val("lunule-vs-dirhash", res.Values["Lunule.mean"]/v)
	}
	res.Notes = append(res.Notes,
		"paper: Lunule outperforms Dir-Hash and Vanilla by up to 22.2% on Web")
	return res, nil
}

// runFig14 shows why Dir-Hash loses: inodes distribute evenly but
// requests do not, and path traversal forwards explode.
func runFig14(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"balancer", "inode share per MDS", "request share per MDS", "forwards",
	}}}
	fwd := map[string]float64{}
	for _, b := range []string{"Dir-Hash", "Lunule", "Vanilla"} {
		c, err := runOne(opt, cluster.Config{
			Balancer: MakeBalancer(b),
			Workload: MakeWorkload("Web", opt.Scale),
		})
		if err != nil {
			return nil, err
		}
		rec := c.Metrics()
		inodes := c.Partition().InodesPerMDS(len(c.Servers()))
		totalIno := 0
		for _, v := range inodes {
			totalIno += v
		}
		inoShare, reqShare := "", ""
		for i, v := range inodes {
			if i > 0 {
				inoShare += " "
			}
			inoShare += pct(float64(v) / float64(totalIno))
		}
		for i, s := range rec.ShareOfRequests() {
			if i > 0 {
				reqShare += " "
			}
			reqShare += pct(s)
		}
		fwd[b] = rec.ForwardsTotal()
		res.Table.Add(b, inoShare, reqShare, fi(fwd[b]))
		res.val(b+".forwards", fwd[b])
		// Record the max/min inode share spread.
		minV, maxV := inodes[0], inodes[0]
		for _, v := range inodes {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		if minV > 0 {
			res.val(b+".inodeSpread", float64(maxV)/float64(minV))
		}
	}
	if fwd["Vanilla"] > 0 {
		res.val("dirhash-fwd-vs-vanilla", fwd["Dir-Hash"]/fwd["Vanilla"])
	}
	res.Notes = append(res.Notes,
		"paper: Dir-Hash distributes inodes evenly yet leaves requests imbalanced and incurs ~98% more forwards",
		"the simulated client authority cache makes the forwarding gap larger than the paper's (see EXPERIMENTS.md)")
	return res, nil
}

// runOverhead reproduces the §3.4 message-cost discussion from the
// message ledger: per-epoch bytes for Lunule's centralized N-to-1
// exchange versus the stock N-to-N heartbeat.
func runOverhead(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"cluster", "scheme", "per-MDS out/epoch", "initiator in/epoch", "total bytes/epoch",
	}}}
	for _, n := range []int{5, 16} {
		lun := msg.NewLedger(n)
		lun.EpochLunule(n, 0, nil, 0)
		van := msg.NewLedger(n)
		van.EpochVanilla(n)
		res.Table.Add(fmt.Sprintf("%d MDS", n), "Lunule (N-to-1)",
			fmt.Sprintf("%.2f KB", float64(lun.OutBytes(1))/1024),
			fmt.Sprintf("%.1f KB", float64(lun.InBytes(0))/1024),
			fmt.Sprintf("%.1f KB", float64(lun.TotalBytes())/1024))
		res.Table.Add(fmt.Sprintf("%d MDS", n), "Vanilla (N-to-N)",
			fmt.Sprintf("%.2f KB", float64(van.OutBytes(1))/1024),
			fmt.Sprintf("%.1f KB", float64(van.InBytes(0))/1024),
			fmt.Sprintf("%.1f KB", float64(van.TotalBytes())/1024))
		res.val(fmt.Sprintf("mds%d.lunule.outKB", n), float64(lun.OutBytes(1))/1024)
		res.val(fmt.Sprintf("mds%d.lunule.initiatorInKB", n), float64(lun.InBytes(0))/1024)
		res.val(fmt.Sprintf("mds%d.vanilla.totalKB", n), float64(van.TotalBytes())/1024)
		res.val(fmt.Sprintf("mds%d.lunule.totalKB", n), float64(lun.TotalBytes())/1024)
	}
	res.Notes = append(res.Notes,
		"paper: each MDS reports ~0.94 KB per epoch; at 16 MDSs the initiator receives ~14.1 KB per epoch")
	return res, nil
}
