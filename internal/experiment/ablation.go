package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register("ablation", "Ablation: contribution of each Lunule design choice", runAblation)
}

// runAblation quantifies the three design choices the paper argues for
// by turning each off in isolation:
//
//   - the urgency term (Eq. 2), measured by how many rebalances fire on
//     a lightly loaded, skewed cluster (benign imbalance);
//   - the sibling-correlation credit (§3.3), measured by CNN throughput
//     (it is what ships not-yet-visited subtrees ahead of the scan);
//   - the importer-side future-load gate of Algorithm 1, measured by
//     migration churn on the Zipf workload (it is the anti-ping-pong
//     mechanism).
func runAblation(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"variant", "scenario", "metric", "value",
	}}}

	// --- urgency: benign-imbalance scenario (light total load) -------
	for _, ab := range []struct {
		name string
		cfg  func(c *core.Config)
	}{
		{"full Lunule", func(c *core.Config) {}},
		{"urgency off", func(c *core.Config) { c.DisableUrgency = true }},
	} {
		cfg := core.DefaultConfig()
		ab.cfg(&cfg)
		lun := core.New(cfg)
		c, err := cluster.New(cluster.Config{
			Clients:    10,
			ClientRate: 40, // ~20% of one MDS: harmless skew
			Balancer:   lun,
			Workload: workload.NewZipf(workload.ZipfConfig{
				OpsPerClient: scaledMin(8000, opt.Scale, 6000),
			}),
			Seed:  opt.Seed,
			Audit: opt.auditor(),
		})
		if err != nil {
			return nil, err
		}
		c.Run(150)
		if err := auditErr(c); err != nil {
			return nil, err
		}
		res.Table.Add(ab.name, "light load (benign skew)", "rebalances", fmt.Sprint(lun.Rebalances()))
		res.val("urgency/"+ab.name+".rebalances", float64(lun.Rebalances()))
		res.val("urgency/"+ab.name+".migrated", c.Metrics().MigratedTotal())
	}

	// --- sibling credit: CNN scan throughput --------------------------
	for _, ab := range []struct {
		name string
		cfg  func(c *core.Config)
	}{
		{"full Lunule", func(c *core.Config) {}},
		{"sibling credit off", func(c *core.Config) { c.DisableSiblingCredit = true }},
	} {
		cfg := core.DefaultConfig()
		ab.cfg(&cfg)
		c, err := runOne(opt, cluster.Config{
			Balancer: core.New(cfg),
			Workload: MakeWorkload("CNN", opt.Scale),
		})
		if err != nil {
			return nil, err
		}
		rec := c.Metrics()
		res.Table.Add(ab.name, "CNN scan", "mean IOPS", fi(rec.MeanThroughput()))
		res.val("sibling/"+ab.name+".mean", rec.MeanThroughput())
		res.val("sibling/"+ab.name+".meanIF", rec.MeanIF())
	}

	// --- importer gate: migration churn on Zipf ------------------------
	for _, ab := range []struct {
		name string
		cfg  func(c *core.Config)
	}{
		{"full Lunule", func(c *core.Config) {}},
		{"importer gate off", func(c *core.Config) { c.DisableImporterGate = true }},
	} {
		cfg := core.DefaultConfig()
		ab.cfg(&cfg)
		c, err := runOne(opt, cluster.Config{
			Balancer: core.New(cfg),
			Workload: MakeWorkload("Zipf", opt.Scale),
		})
		if err != nil {
			return nil, err
		}
		rec := c.Metrics()
		res.Table.Add(ab.name, "Zipf reads", "migrated inodes", fi(rec.MigratedTotal()))
		res.val("gate/"+ab.name+".migrated", rec.MigratedTotal())
		res.val("gate/"+ab.name+".jct50", rec.JCTQuantile(0.5))
	}

	res.Notes = append(res.Notes,
		"urgency off fires migrations on harmless skew that full Lunule tolerates (the paper's benign-imbalance claim)",
		"sibling credit off barely moves CNN here: dirfrag slicing already ships unvisited content structurally (a hash slice of a scan region carries its share of not-yet-visited directories regardless of their index) — a reproduction finding, see EXPERIMENTS.md",
		"importer gate off changes Zipf churn only marginally at this scale; the Cap ceiling absorbs most over-import pressure")
	return res, nil
}
