package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/namespace"
	"repro/internal/rng"
	"repro/internal/workload"
)

func init() {
	register("table1", "Table 1: workload characteristics (metadata-op ratios)", runTable1)
	register("fig2", "Figure 2: per-MDS request distribution under the built-in balancer", runFig2)
	register("fig3", "Figure 3: per-MDS throughput over time (Vanilla, Zipf & CNN)", runFig3)
	register("fig4", "Figure 4: cumulative migrated inodes (Vanilla, Zipf & CNN)", runFig4)
	register("fig6", "Figure 6: imbalance factor per workload and balancer", runFig6)
	register("fig7", "Figure 7: metadata throughput per workload and balancer", runFig7)
	register("fig8", "Figure 8: end-to-end job completion time with data access", runFig8)
}

// runTable1 measures each generator's op mix and namespace shape, the
// reproduction of Table 1.
func runTable1(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"workload", "meta-op ratio", "paper", "files", "dirs", "ops/client",
	}}}
	paper := map[string]float64{"CNN": 0.781, "NLP": 0.928, "Web": 0.572, "Zipf": 0.50, "MD": 1.00}
	for _, name := range WorkloadNames {
		gen := MakeWorkload(name, opt.Scale)
		tree := namespace.NewTree()
		specs, err := gen.Setup(tree, 2, rng.New(opt.Seed))
		if err != nil {
			return nil, err
		}
		stats := workload.Measure(specs[0].Stream)
		files, dirs := 0, 0
		tree.Walk(func(in *namespace.Inode) bool {
			if in.IsDir {
				dirs++
			} else {
				files++
			}
			return true
		})
		res.Table.Add(name, f3(stats.Ratio()), f3(paper[name]),
			fmt.Sprint(files), fmt.Sprint(dirs), fmt.Sprint(stats.MetaOps))
		res.val(name+".ratio", stats.Ratio())
		res.val(name+".paper", paper[name])
	}
	res.Notes = append(res.Notes,
		"ratios are structural properties of the generators and should match the paper within a few percent")
	return res, nil
}

// runFig2 reruns the motivation study: the five workloads under the
// CephFS built-in balancer, reporting each MDS's share of all requests.
func runFig2(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"workload", "MDS-1", "MDS-2", "MDS-3", "MDS-4", "MDS-5", "max/min",
	}}}
	for _, name := range WorkloadNames {
		c, err := runOne(opt, cluster.Config{
			Balancer: MakeBalancer("Vanilla"),
			Workload: MakeWorkload(name, opt.Scale),
		})
		if err != nil {
			return nil, err
		}
		share := c.Metrics().ShareOfRequests()
		minS, maxS := share[0], share[0]
		row := []string{name}
		for _, s := range share {
			row = append(row, pct(s))
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
		}
		ratio := 0.0
		if minS > 0 {
			ratio = maxS / minS
		}
		row = append(row, f1(ratio))
		res.Table.Add(row...)
		res.val(name+".maxShare", maxS)
		res.val(name+".maxMin", ratio)
	}
	res.Notes = append(res.Notes,
		"the paper observes shares as skewed as 90.3% on one MDS (CNN) and max/min ratios of 22-220x")
	return res, nil
}

// runFig3 records the per-MDS instantaneous throughput under Vanilla
// for the two workloads the paper plots.
func runFig3(opt Options) (*Result, error) {
	res := &Result{}
	for _, name := range []string{"Zipf", "CNN"} {
		c, err := runOne(opt, cluster.Config{
			Balancer: MakeBalancer("Vanilla"),
			Workload: MakeWorkload(name, opt.Scale),
		})
		if err != nil {
			return nil, err
		}
		rec := c.Metrics()
		for i, s := range rec.PerMDS {
			res.Series = append(res.Series, NamedSeries{
				Name:   fmt.Sprintf("%s MDS-%d IOPS", name, i+1),
				Points: metrics.FormatSeries(s, 10),
			})
			res.val(fmt.Sprintf("%s.mds%d.mean", name, i+1), s.MeanValue())
		}
	}
	res.Notes = append(res.Notes,
		"the paper's counterpart shows ping-pong load swaps (Zipf) and a single active MDS (CNN)")
	return res, nil
}

// runFig4 records the cumulative migrated-inode counts under Vanilla.
func runFig4(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"workload", "migrated inodes", "namespace inodes", "ratio",
	}}}
	for _, name := range []string{"Zipf", "CNN"} {
		c, err := runOne(opt, cluster.Config{
			Balancer: MakeBalancer("Vanilla"),
			Workload: MakeWorkload(name, opt.Scale),
		})
		if err != nil {
			return nil, err
		}
		rec := c.Metrics()
		migr := rec.MigratedTotal()
		total := float64(c.Tree().NumInodes())
		res.Series = append(res.Series, NamedSeries{
			Name:   name + " cumulative migrated",
			Points: metrics.FormatSeries(&rec.Migrated, 10),
		})
		res.Table.Add(name, fi(migr), fi(total), f2(migr/total))
		res.val(name+".migrated", migr)
		res.val(name+".ratio", migr/total)
	}
	res.Notes = append(res.Notes,
		"Vanilla migrates the namespace repeatedly (ratio >> 1): over-migration and invalid candidate selection")
	return res, nil
}

// singleGrid runs the 5-workload x 4-balancer grid and hands each
// recorder to collect in deterministic (workload, balancer) order.
// The simulations are independent and individually deterministic, so
// they fan out across cores; only the collection is serialized.
func singleGrid(opt Options, collect func(workload, bal string, c *cluster.Cluster)) error {
	type cell struct {
		w, b string
		c    *cluster.Cluster
		err  error
	}
	var cells []*cell
	for _, w := range WorkloadNames {
		for _, b := range BalancerNames {
			cells = append(cells, &cell{w: w, b: b})
		}
	}
	workers := runtime.NumCPU()
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan *cell)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cl := range jobs {
				cl.c, cl.err = runOne(opt, cluster.Config{
					Balancer: MakeBalancer(cl.b),
					Workload: MakeWorkload(cl.w, opt.Scale),
				})
			}
		}()
	}
	for _, cl := range cells {
		jobs <- cl
	}
	close(jobs)
	wg.Wait()
	for _, cl := range cells {
		if cl.err != nil {
			return cl.err
		}
		collect(cl.w, cl.b, cl.c)
	}
	return nil
}

// runFig6 reproduces the imbalance-factor comparison.
func runFig6(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"workload", "balancer", "mean IF", "tail IF", "IF series",
	}}}
	err := singleGrid(opt, func(w, b string, c *cluster.Cluster) {
		rec := c.Metrics()
		res.Table.Add(w, b, f3(rec.MeanIF()), f3(rec.TailIF(10)),
			metrics.FormatSeries(&rec.IF, 8))
		res.val(w+"/"+b+".meanIF", rec.MeanIF())
	})
	if err != nil {
		return nil, err
	}
	res.Notes = append(res.Notes,
		"expected shape: GreedySpill worst (IF toward 1), Vanilla poor on the scan workloads (CNN/NLP), Lunule lowest")
	return res, nil
}

// runFig7 reproduces the aggregate-throughput comparison.
func runFig7(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"workload", "balancer", "peak IOPS", "mean IOPS", "lat p99.9", "JCT p50", "JCT p99",
	}}}
	type key struct{ w, b string }
	means := map[key]float64{}
	err := singleGrid(opt, func(w, b string, c *cluster.Cluster) {
		rec := c.Metrics()
		jcts := rec.JCTQuantiles(0.5, 0.99) // one sort for both quantiles
		res.Table.Add(w, b, fi(rec.PeakThroughput(10)), fi(rec.MeanThroughput()),
			fi(rec.LatencyQuantile(0.999)),
			fi(jcts[0]), fi(jcts[1]))
		res.val(w+"/"+b+".peak", rec.PeakThroughput(10))
		res.val(w+"/"+b+".mean", rec.MeanThroughput())
		res.val(w+"/"+b+".jct50", jcts[0])
		res.val(w+"/"+b+".lat999", rec.LatencyQuantile(0.999))
		means[key{w, b}] = rec.MeanThroughput()
	})
	if err != nil {
		return nil, err
	}
	for _, w := range WorkloadNames {
		for _, b := range []string{"Vanilla", "GreedySpill", "Lunule-Light"} {
			if base := means[key{w, b}]; base > 0 {
				res.val(w+".lunule-vs-"+b, means[key{w, "Lunule"}]/base)
			}
		}
	}
	res.Notes = append(res.Notes,
		"paper: Lunule improves CNN throughput 2.81x over Vanilla, NLP 1.76x, and is at least on par elsewhere")
	return res, nil
}

// runFig8 enables the data path and measures end-to-end job completion
// for the four read workloads (MD excluded, as in the paper).
func runFig8(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"workload", "balancer", "JCT p50", "JCT p99", "speedup p50",
	}}}
	for _, w := range []string{"CNN", "NLP", "Zipf", "Web"} {
		jct := map[string]float64{}
		for _, b := range []string{"Vanilla", "Lunule"} {
			c, err := runOne(opt, cluster.Config{
				Balancer: MakeBalancer(b),
				Workload: MakeWorkload(w, opt.Scale),
				DataPath: true,
				// A data pool sized so the large-file workloads brush
				// against it once metadata is balanced: the dilution
				// effect Figure 8 measures.
				OSDs:         6,
				OSDBandwidth: 24 << 20,
			})
			if err != nil {
				return nil, err
			}
			rec := c.Metrics()
			jcts := rec.JCTQuantiles(0.5, 0.99) // one sort for both quantiles
			jct[b] = jcts[0]
			speed := ""
			if b == "Lunule" && jct[b] > 0 {
				speed = f2(jct["Vanilla"] / jct[b])
				res.val(w+".speedup", jct["Vanilla"]/jct[b])
			}
			res.Table.Add(w, b, fi(jcts[0]), fi(jcts[1]), speed)
			res.val(w+"/"+b+".jct50", jcts[0])
		}
	}
	res.Notes = append(res.Notes,
		"paper: 18.6-64.6% shorter completion for CNN/NLP/Zipf; Web gains are diluted by the data path")
	return res, nil
}
