package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register("failover",
		"Extension: crash the hottest MDS mid-run — failover, abort, and post-failover rebalance",
		runFailover)
}

// failoverRecoveryTicks is the takeover window the scenario configures:
// requests to the dead rank's subtrees stall this long before survivors
// take them over (models beacon grace + journal replay).
const failoverRecoveryTicks = 30

// runFailover reproduces the paper's balancing decisions *through* a
// full MDS failure: under the Zipf and shared-directory workloads it
// crashes the hottest rank mid-run, keeps it down for a fixed outage,
// rejoins it, and runs to completion. Every cell must finish with zero
// lost ops — each client op eventually succeeds or is accounted as
// retried/stalled — while the table compares how fast Vanilla and
// Lunule re-spread the orphaned load across the survivors.
func runFailover(opt Options) (*Result, error) {
	crashAt := int64(100)
	outage := int64(120)

	res := &Result{Table: &metrics.Table{Header: []string{
		"workload", "balancer", "crashed", "pre IOPS", "outage IOPS", "post IOPS",
		"reassign", "stalled", "aborted", "retries", "done",
	}}}
	for _, wl := range []string{"Zipf", "SharedDir"} {
		var gen workload.Generator
		switch wl {
		case "Zipf":
			gen = workload.NewZipf(workload.ZipfConfig{
				// Clients must outlive the crash and the outage.
				OpsPerClient: scaledMin(40000, opt.Scale, 35000),
			})
		case "SharedDir":
			gen = workload.NewMDShared(workload.MDSharedConfig{
				CreatesPerClient: scaledMin(15000, opt.Scale, 15000),
			})
		}
		for _, b := range []string{"Vanilla", "Lunule"} {
			c, err := cluster.New(cluster.Config{
				Balancer:      MakeBalancer(b),
				Workload:      gen,
				RecoveryTicks: failoverRecoveryTicks,
				Seed:          opt.Seed,
				Audit:         opt.auditor(),
			})
			if err != nil {
				return nil, err
			}
			c.Run(crashAt)
			rank := c.CrashHottest()
			c.Run(outage)
			if rank >= 0 {
				c.RecoverMDS(rank)
			}
			c.RunUntilDone(opt.MaxTicks)
			if err := auditErr(c); err != nil {
				return nil, err
			}
			rec := c.Metrics()

			pre := windowMean(rec, crashAt-40, crashAt)
			during := windowMean(rec, crashAt, crashAt+outage)
			post := windowMean(rec, crashAt+outage, crashAt+outage+80)
			reassign := rec.MeanTicksToReassign()
			var retries int64
			for _, cl := range c.Clients() {
				retries += cl.Retries()
			}
			done := 0.0
			if c.Done() {
				done = 1
			}
			key := wl + "." + b
			res.Table.Add(wl, b, fmt.Sprint(rank), fi(pre), fi(during), fi(post),
				fi(reassign), fi(rec.StalledDownTotal()), fi(rec.AbortedTotal()),
				fmt.Sprint(retries), fmt.Sprintf("%v", c.Done()))
			res.val(key+".pre", pre)
			res.val(key+".during", during)
			res.val(key+".post", post)
			res.val(key+".reassign", reassign)
			res.val(key+".stalled", rec.StalledDownTotal())
			res.val(key+".aborted", rec.AbortedTotal())
			res.val(key+".retries", float64(retries))
			res.val(key+".done", done)
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("hottest rank crashed at tick %d, rejoined at %d; orphaned subtrees take over after %d ticks (least-loaded survivor)",
			crashAt, crashAt+outage, failoverRecoveryTicks),
		"zero lost ops: every op eventually succeeds or is accounted as a stalled/backed-off retry",
		"paper context: healthy-cluster evaluation only — this extension measures how each policy re-spreads orphaned load after failover")
	return res, nil
}

// windowMean averages the aggregate IOPS over ticks [lo, hi).
func windowMean(rec *metrics.Recorder, lo, hi int64) float64 {
	sum, n := 0.0, 0
	for i, tick := range rec.Agg.Ticks {
		if tick >= lo && tick < hi {
			sum += rec.Agg.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
