package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

func init() {
	register("fig9", "Figure 9: imbalance factor under the mixed workload", runFig9)
	register("fig10", "Figure 10: per-MDS throughput under the mixed workload", runFig10)
	register("fig11", "Figure 11: job-completion-time CDF under the mixed workload", runFig11)
}

// runMixedPair runs the mixed workload under Vanilla and Lunule.
func runMixedPair(opt Options) (map[string]*cluster.Cluster, error) {
	out := make(map[string]*cluster.Cluster, 2)
	for _, b := range []string{"Vanilla", "Lunule"} {
		c, err := runOne(opt, cluster.Config{
			Balancer: MakeBalancer(b),
			Workload: MakeWorkload("Mixed", opt.Scale),
		})
		if err != nil {
			return nil, err
		}
		out[b] = c
	}
	return out, nil
}

func runFig9(opt Options) (*Result, error) {
	cs, err := runMixedPair(opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Table: &metrics.Table{Header: []string{
		"balancer", "mean IF", "max IF", "run length (ticks)",
	}}}
	for _, b := range []string{"Vanilla", "Lunule"} {
		rec := cs[b].Metrics()
		res.Table.Add(b, f3(rec.MeanIF()), f3(rec.IF.MaxValue()), fmt.Sprint(cs[b].Tick()))
		res.Series = append(res.Series, NamedSeries{
			Name:   b + " IF",
			Points: metrics.FormatSeries(&rec.IF, 10),
		})
		res.val(b+".meanIF", rec.MeanIF())
		res.val(b+".maxIF", rec.IF.MaxValue())
		res.val(b+".ticks", float64(cs[b].Tick()))
	}
	res.Notes = append(res.Notes,
		"paper: Vanilla's IF fluctuates up to ~0.6 and re-skews late; Lunule stays near zero and finishes sooner")
	return res, nil
}

func runFig10(opt Options) (*Result, error) {
	cs, err := runMixedPair(opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Table: &metrics.Table{Header: []string{
		"balancer", "agg mean IOPS", "agg peak IOPS",
	}}}
	for _, b := range []string{"Vanilla", "Lunule"} {
		rec := cs[b].Metrics()
		res.Table.Add(b, fi(rec.MeanThroughput()), fi(rec.PeakThroughput(10)))
		for i, s := range rec.PerMDS {
			res.Series = append(res.Series, NamedSeries{
				Name:   fmt.Sprintf("%s MDS-%d IOPS", b, i+1),
				Points: metrics.FormatSeries(s, 10),
			})
		}
		res.val(b+".mean", rec.MeanThroughput())
		res.val(b+".peak", rec.PeakThroughput(10))
	}
	if v := res.Values["Vanilla.mean"]; v > 0 {
		res.val("meanSpeedup", res.Values["Lunule.mean"]/v)
	}
	res.Notes = append(res.Notes,
		"paper: Lunule's per-MDS curves stay even; during the first interval its clustered IOPS is ~1.6x Vanilla's")
	return res, nil
}

func runFig11(opt Options) (*Result, error) {
	cs, err := runMixedPair(opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Table: &metrics.Table{Header: []string{
		"balancer", "JCT p50", "JCT p80", "JCT p99",
	}}}
	qs := []float64{0.5, 0.8, 0.99}
	for _, b := range []string{"Vanilla", "Lunule"} {
		rec := cs[b].Metrics()
		jcts := rec.JCTQuantiles(qs...) // one sort for all three quantiles
		res.Table.Add(b, fi(jcts[0]), fi(jcts[1]), fi(jcts[2]))
		for i, q := range qs {
			res.val(fmt.Sprintf("%s.p%.0f", b, q*100), jcts[i])
		}
	}
	if v := res.Values["Lunule.p99"]; v > 0 {
		res.val("tailImprovement", res.Values["Vanilla.p99"]/v)
	}
	res.Notes = append(res.Notes,
		"paper: Lunule's p99 completion is 1.42x better; ~80% of clients finish before Vanilla's corresponding point")
	return res, nil
}
