package experiment

import (
	"strings"
	"testing"
)

func TestWriteMarkdownReport(t *testing.T) {
	var b strings.Builder
	err := WriteMarkdownReport(&b, []string{"table1", "overhead"},
		Options{Scale: 0.25, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Lunule reproduction report",
		"## table1 —",
		"## overhead —",
		"| workload | meta-op ratio |",
		"| --- |",
		"> ", // at least one note quoted
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q\n---\n%s", want, out)
		}
	}
}

func TestWriteMarkdownReportUnknownID(t *testing.T) {
	var b strings.Builder
	if err := WriteMarkdownReport(&b, []string{"nope"}, Options{}); err == nil {
		t.Fatal("unknown experiment must fail the report")
	}
}
