package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register("hetero", "Extension: heterogeneous capacity and degradation injection", runHetero)
}

// runHetero probes the limit the paper's footnote acknowledges: the IF
// model assumes every MDS delivers the same capacity C. Two scenarios:
//
//  1. a static cluster where one MDS has half the capacity — the
//     balancer aims for even *loads*, so the slow server saturates and
//     drags the tail;
//  2. a mid-run degradation (one MDS's capacity halves at a fixed
//     tick) — the balancers see the degraded server's served load drop
//     and must not mistake it for an idle importer.
func runHetero(opt Options) (*Result, error) {
	res := &Result{Table: &metrics.Table{Header: []string{
		"scenario", "balancer", "mean IOPS", "JCT p99", "slow-MDS stalls",
	}}}

	for _, sc := range []struct {
		name    string
		caps    []int
		degrade bool
	}{
		{"uniform (baseline)", nil, false},
		{"one slow MDS (half capacity)", []int{2000, 2000, 1000, 2000, 2000}, false},
		{"mid-run degradation", nil, true},
	} {
		for _, b := range []string{"Vanilla", "Lunule"} {
			c, err := cluster.New(cluster.Config{
				Balancer:       MakeBalancer(b),
				PerMDSCapacity: sc.caps,
				Workload: workload.NewZipf(workload.ZipfConfig{
					OpsPerClient: scaledMin(30000, opt.Scale, 20000),
				}),
				Seed:  opt.Seed,
				Audit: opt.auditor(),
			})
			if err != nil {
				return nil, err
			}
			if sc.degrade {
				c.ScheduleCapacity(100, 2, 1000)
			}
			c.RunUntilDone(opt.MaxTicks)
			if err := auditErr(c); err != nil {
				return nil, err
			}
			rec := c.Metrics()
			stalls := c.Servers()[2].Stalls()
			res.Table.Add(sc.name, b, fi(rec.MeanThroughput()),
				fi(rec.JCTQuantile(0.99)), fmt.Sprint(stalls))
			key := sc.name + "/" + b
			res.val(key+".mean", rec.MeanThroughput())
			res.val(key+".jct99", rec.JCTQuantile(0.99))
			res.val(key+".stalls", float64(stalls))
		}
	}
	res.Notes = append(res.Notes,
		"the IF model's uniform-C assumption makes a slow MDS a persistent stall point (the paper calls heterogeneity orthogonal)",
		"runs must still complete with no lost operations — degradation is absorbed, not fatal")
	return res, nil
}
