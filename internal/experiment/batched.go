package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	register("batched",
		"Extension: write-back client batching with group commit vs synchronous ops (MDtest + CNN ingest)",
		runBatched)
}

// runBatched prices the write-back client mode on a server-bound
// cluster: 4 ranks at the default 2000 ops/tick against 64 clients
// issuing 150 ops/tick (9600 demand vs 8000 budget). Synchronously the
// budget caps throughput at capacity; with group commit a budget unit
// admits a whole batch, so the amortized resolve/heat/authority work
// turns directly into job-completion time. Cells: the MDtest
// create-heavy workload sync and at B=8/B=32, and the CNN ingest scan
// sync and at B=32. Every cell runs the full auditor wiring of runOne,
// so "zero audit violations" is part of the result, not a side claim.
func runBatched(opt Options) (*Result, error) {
	const (
		ranks   = 4
		clients = 64
	)
	type cell struct {
		name     string
		key      string
		workload func() workload.Generator
		batching *cluster.BatchingConfig
	}
	mdtest := func() workload.Generator {
		return workload.NewMD(workload.MDConfig{
			CreatesPerClient: scaledMin(4000, opt.Scale, 2000),
			DirsPerClient:    4,
			StatEvery:        64,
		})
	}
	cnn := func() workload.Generator { return MakeWorkload("CNN", opt.Scale) }
	cells := []cell{
		{"MDtest sync", "md.sync", mdtest, nil},
		{"MDtest B=8", "md.b8", mdtest, &cluster.BatchingConfig{BatchSize: 8, FlushEvery: 4}},
		{"MDtest B=32", "md.b32", mdtest, &cluster.BatchingConfig{BatchSize: 32, FlushEvery: 8}},
		{"CNN sync", "cnn.sync", cnn, nil},
		{"CNN B=32", "cnn.b32", cnn, &cluster.BatchingConfig{BatchSize: 32, FlushEvery: 8}},
	}

	res := &Result{Table: &metrics.Table{Header: []string{
		"cell", "JCT p50", "JCT p99", "mean IOPS", "flushes", "batch mean",
		"flush p99", "done",
	}}}
	jct50 := map[string]float64{}
	for _, cl := range cells {
		c, err := runOne(opt, cluster.Config{
			MDS:      ranks,
			Clients:  clients,
			Balancer: MakeBalancer("Lunule"),
			Workload: cl.workload(),
			Batching: cl.batching,
		})
		if err != nil {
			return nil, err
		}
		if !c.Done() {
			return nil, fmt.Errorf("batched: cell %q did not finish in %d ticks", cl.name, opt.MaxTicks)
		}
		rec := c.Metrics()
		jcts := rec.JCTQuantiles(0.5, 0.99)
		jct50[cl.key] = jcts[0]
		res.Table.Add(cl.name,
			fi(jcts[0]), fi(jcts[1]), fi(rec.MeanThroughput()),
			fmt.Sprint(rec.BatchFlushes()), f1(rec.MeanBatchSize()),
			fi(rec.FlushAgeQuantile(0.99)), fmt.Sprintf("%v", c.Done()))
		res.val(cl.key+".jct50", jcts[0])
		res.val(cl.key+".jct99", jcts[1])
		res.val(cl.key+".iops", rec.MeanThroughput())
		res.val(cl.key+".flushes", float64(rec.BatchFlushes()))
		res.val(cl.key+".batch_mean", rec.MeanBatchSize())
	}
	if s, b := jct50["md.sync"], jct50["md.b32"]; b > 0 {
		res.val("md.speedup_b32", s/b)
		res.Notes = append(res.Notes,
			fmt.Sprintf("MDtest JCT p50 speedup at B=32: %.2fx over synchronous ops", s/b))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("server-bound cells: %d clients x 150 ops/tick vs %d ranks x 2000 budget; a commit group of B ops costs one budget unit", clients, ranks),
		"flush latency bounded by FlushEvery; the tail flush drains short final runs")
	return res, nil
}
