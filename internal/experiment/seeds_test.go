package experiment

import (
	"strings"
	"testing"
)

func TestRunSeedsAggregates(t *testing.T) {
	sw, err := RunSeeds("overhead", Options{Scale: 0.25, Seed: 42}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Seeds != 2 || sw.ID != "overhead" {
		t.Fatal("sweep metadata")
	}
	// Overhead is deterministic and seed-independent: std must be 0.
	for k, std := range sw.Std {
		if std != 0 {
			t.Fatalf("std[%s] = %v, want 0 for a seed-independent experiment", k, std)
		}
	}
	if sw.Mean["mds16.lunule.outKB"] <= 0 {
		t.Fatal("mean missing")
	}
	if sw.Last == nil || sw.Last.Table == nil {
		t.Fatal("last result must carry the rendered tables")
	}
	out := sw.String()
	if !strings.Contains(out, "2 seeds") || !strings.Contains(out, "±") {
		t.Fatalf("sweep rendering: %q", out)
	}
}

func TestRunSeedsClampsToOne(t *testing.T) {
	sw, err := RunSeeds("overhead", Options{Scale: 0.25}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Seeds != 1 {
		t.Fatalf("seeds = %d, want clamped to 1", sw.Seeds)
	}
}

func TestRunSeedsUnknownID(t *testing.T) {
	if _, err := RunSeeds("nope", Options{}, 2); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
