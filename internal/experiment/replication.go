package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/workload"
)

func init() {
	register("replication",
		"Extension: warm-standby subtree replication vs cold takeover under MTBF churn (R=1/2/3)",
		runReplication)
}

// replicationRecoveryTicks is the cold takeover window of the
// experiment — the latency a subtree pays when no warm standby exists
// (beacon grace + journal replay from the backing store).
const replicationRecoveryTicks = 30

// runReplication measures what warm-standby replication buys under
// random failure churn: the same seeded MTBF crash/recover schedule is
// replayed over three identically-seeded clusters at R=1 (no manager:
// the cold RecoveryTicks takeover), R=2, and R=3. Warm cells should
// collapse recovery latency from the cold window to PromoteTicks and
// shed most of the outage stalls, at the cost of journal shipping and
// background resyncs.
func runReplication(opt Options) (*Result, error) {
	const (
		ranks   = 5
		clients = 16
	)
	// One schedule for every cell, drawn from the experiment seed: the
	// comparison is policy-only.
	churn := fault.MTBF(fault.MTBFConfig{
		Ranks:   ranks,
		MTBF:    90,
		MTTR:    80,
		Horizon: 250,
	}, rng.New(opt.Seed).Fork(77))
	if err := churn.Validate(ranks); err != nil {
		return nil, err
	}
	crashes := 0
	for _, ev := range churn.Events {
		if ev.Kind == fault.Crash {
			crashes++
		}
	}

	res := &Result{Table: &metrics.Table{Header: []string{
		"cell", "JCT p50", "JCT max", "reassign", "warm", "cold", "promotions",
		"resyncs", "stalled", "done",
	}}}
	for _, r := range []int{1, 2, 3} {
		var mgr *replica.Manager
		if r >= 2 {
			pol := replica.DefaultPolicy()
			pol.R = r
			mgr = replica.MustManager(pol)
		}
		sched := fault.Schedule{Events: append([]fault.Event(nil), churn.Events...)}
		c, err := runOne(opt, cluster.Config{
			MDS:      ranks,
			Clients:  clients,
			Balancer: MakeBalancer("Lunule"),
			Workload: workload.NewZipf(workload.ZipfConfig{
				// Clients must outlive the churn horizon.
				OpsPerClient: scaledMin(40000, opt.Scale, 35000),
			}),
			RecoveryTicks: replicationRecoveryTicks,
			Faults:        &sched,
			Replication:   mgr,
		})
		if err != nil {
			return nil, err
		}
		if !c.Done() {
			return nil, fmt.Errorf("replication: R=%d cell did not finish in %d ticks", r, opt.MaxTicks)
		}
		rec := c.Metrics()

		warm := rec.WarmRecoveries()
		cold := len(rec.RecoveryEvents()) - warm
		var resyncs, promotions int64
		if mgr != nil {
			resyncs = mgr.ResyncsDone()
			promotions = c.Promotions()
		}
		cell := fmt.Sprintf("R=%d", r)
		if r == 1 {
			cell = "R=1 (cold)"
		}
		done := 0.0
		if c.Done() {
			done = 1
		}
		res.Table.Add(cell,
			fi(rec.JCTQuantile(0.5)), fi(rec.JCTQuantile(1.0)),
			fi(rec.MeanTicksToReassign()), fmt.Sprint(warm), fmt.Sprint(cold),
			fmt.Sprint(promotions), fmt.Sprint(resyncs),
			fi(rec.StalledDownTotal()), fmt.Sprintf("%v", c.Done()))
		key := fmt.Sprintf("r%d", r)
		res.val(key+".jct50", rec.JCTQuantile(0.5))
		res.val(key+".jct_max", rec.JCTQuantile(1.0))
		res.val(key+".reassign", rec.MeanTicksToReassign())
		res.val(key+".warm", float64(warm))
		res.val(key+".cold", float64(cold))
		res.val(key+".promotions", float64(promotions))
		res.val(key+".resyncs", float64(resyncs))
		res.val(key+".stalled", rec.StalledDownTotal())
		res.val(key+".done", done)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("identical seeded MTBF churn per cell: %d crashes over %d ticks (MTBF 90, MTTR 80, 5 ranks)", crashes, 250),
		fmt.Sprintf("cold takeover window %d ticks vs warm promotion %d ticks after the crash",
			replicationRecoveryTicks, replica.DefaultPolicy().PromoteTicks),
		"warm cells ship the op/heat journal every 5 ticks and re-replicate lost standbys in the background")
	return res, nil
}
