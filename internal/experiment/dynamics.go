package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/namespace"
	"repro/internal/rng"
	"repro/internal/workload"
)

func init() {
	register("fig12a", "Figure 12(a): expanding the MDS cluster at runtime (Zipf)", runFig12a)
	register("fig12b", "Figure 12(b): growing the client population in phases (Zipf)", runFig12b)
}

// runFig12a starts a 4-MDS cluster and adds one MDS at two later points;
// Lunule must absorb the new capacity and raise aggregate throughput.
func runFig12a(opt Options) (*Result, error) {
	addAt1 := int64(100)
	addAt2 := int64(200)
	c, err := cluster.New(cluster.Config{
		MDS: 4,
		// Demand (60 clients x 150 ops/s = 9000) exceeds the initial
		// four MDSs' capacity, so each added server raises throughput.
		Clients:  60,
		Balancer: MakeBalancer("Lunule"),
		Workload: workload.NewZipf(workload.ZipfConfig{
			OpsPerClient: scaledMin(60000, opt.Scale, 45000),
		}),
		Seed:  opt.Seed,
		Audit: opt.auditor(),
	})
	if err != nil {
		return nil, err
	}
	c.ScheduleAddMDS(addAt1, 1)
	c.ScheduleAddMDS(addAt2, 1)
	c.RunUntilDone(opt.MaxTicks)
	if err := auditErr(c); err != nil {
		return nil, err
	}
	rec := c.Metrics()

	phaseMean := func(lo, hi int64) float64 {
		sum, n := 0.0, 0
		for i, tick := range rec.Agg.Ticks {
			if tick >= lo && tick < hi {
				sum += rec.Agg.Values[i]
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	// Skip each phase's first 40 ticks (warm-up and migration).
	p1 := phaseMean(40, addAt1)
	p2 := phaseMean(addAt1+40, addAt2)
	p3 := phaseMean(addAt2+40, addAt2+140)

	res := &Result{Table: &metrics.Table{Header: []string{
		"phase", "MDSs", "aggregate IOPS",
	}}}
	res.Table.Add("start", "4", fi(p1))
	res.Table.Add(fmt.Sprintf("after +1 MDS @%d", addAt1), "5", fi(p2))
	res.Table.Add(fmt.Sprintf("after +1 MDS @%d", addAt2), "6", fi(p3))
	for i, s := range rec.PerMDS {
		res.Series = append(res.Series, NamedSeries{
			Name:   fmt.Sprintf("MDS-%d IOPS", i+1),
			Points: metrics.FormatSeries(s, 10),
		})
	}
	res.val("phase1", p1)
	res.val("phase2", p2)
	res.val("phase3", p3)
	res.Notes = append(res.Notes,
		"paper: each added MDS quickly absorbs migrated load and the clustered throughput steps up (41k -> 51k -> +10%)")
	return res, nil
}

// phased wraps a generator so the clients start in equal groups at
// fixed phase boundaries (the paper launches 10 clients per phase).
type phased struct {
	inner      workload.Generator
	phaseTicks int64
	phases     int
}

func (p *phased) Name() string { return p.inner.Name() + "-phased" }

func (p *phased) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]workload.ClientSpec, error) {
	specs, err := p.inner.Setup(tree, clients, src)
	if err != nil {
		return nil, err
	}
	per := clients / p.phases
	if per == 0 {
		per = 1
	}
	for i := range specs {
		phase := i / per
		if phase >= p.phases {
			phase = p.phases - 1
		}
		specs[i].StartTick = int64(phase) * p.phaseTicks
	}
	return specs, nil
}

// runFig12b grows the client population in four phases. The light
// phase-one imbalance must NOT trigger re-balance (the urgency term
// classifies it as benign), while later phases spread load.
func runFig12b(opt Options) (*Result, error) {
	phaseTicks := int64(100)
	lun := core.NewDefault()
	c, err := cluster.New(cluster.Config{
		Balancer: lun,
		Workload: &phased{
			// Clients must outlive all four phases (400 ticks at 45
			// ops/s), so the op count has a hard floor.
			inner: workload.NewZipf(workload.ZipfConfig{
				OpsPerClient: scaledMin(30000, opt.Scale, 23000),
			}),
			phaseTicks: phaseTicks,
			phases:     4,
		},
		Clients:    40,
		ClientRate: 45, // phase-one demand stays well under one MDS's capacity
		Seed:       opt.Seed,
		Audit:      opt.auditor(),
	})
	if err != nil {
		return nil, err
	}

	// Count rebalance activations per phase.
	perPhase := make([]int, 4)
	prev := 0
	for phase := 0; phase < 4; phase++ {
		c.Run(phaseTicks)
		perPhase[phase] = lun.Rebalances() - prev
		prev = lun.Rebalances()
	}
	c.RunUntilDone(opt.MaxTicks)
	if err := auditErr(c); err != nil {
		return nil, err
	}
	rec := c.Metrics()

	res := &Result{Table: &metrics.Table{Header: []string{
		"phase", "clients", "rebalances", "agg IOPS (end of phase)",
	}}}
	for phase := 0; phase < 4; phase++ {
		endTick := int64(phase+1)*phaseTicks - 1
		iops := 0.0
		for i, tick := range rec.Agg.Ticks {
			if tick > endTick-20 && tick <= endTick {
				iops += rec.Agg.Values[i] / 20
			}
		}
		res.Table.Add(fmt.Sprint(phase+1), fmt.Sprint(10*(phase+1)),
			fmt.Sprint(perPhase[phase]), fi(iops))
		res.val(fmt.Sprintf("phase%d.rebalances", phase+1), float64(perPhase[phase]))
		res.val(fmt.Sprintf("phase%d.iops", phase+1), iops)
	}
	res.Notes = append(res.Notes,
		"paper: the first-phase imbalance is tolerated (all MDSs lightly loaded -> low urgency -> no migration); throughput rises per phase")
	return res, nil
}
