package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteMarkdownReport runs the given experiments and renders one
// self-contained markdown document: a header with the run
// configuration, then each experiment's table, series, and notes.
// It is how a fresh EXPERIMENTS-style record is regenerated from
// scratch on any machine.
func WriteMarkdownReport(w io.Writer, ids []string, opt Options) error {
	opt.defaults()
	fmt.Fprintf(w, "# Lunule reproduction report\n\n")
	fmt.Fprintf(w, "- seed: %d\n- scale: %g\n- max ticks per run: %d\n- experiments: %s\n\n",
		opt.Seed, opt.Scale, opt.MaxTicks, strings.Join(ids, ", "))
	for _, id := range ids {
		start := time.Now()
		res, err := Run(id, opt)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## %s — %s\n\n", res.ID, res.Title)
		if res.Table != nil {
			writeMarkdownTable(w, res)
		}
		for _, s := range res.Series {
			fmt.Fprintf(w, "- `%s`: %s\n", s.Name, s.Points)
		}
		if len(res.Series) > 0 {
			fmt.Fprintln(w)
		}
		for _, n := range res.Notes {
			fmt.Fprintf(w, "> %s\n", n)
		}
		fmt.Fprintf(w, "\n_(completed in %v)_\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func writeMarkdownTable(w io.Writer, res *Result) {
	t := res.Table
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
}
