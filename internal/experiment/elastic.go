package experiment

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/elastic"
	"repro/internal/metrics"
	"repro/internal/namespace"
	"repro/internal/rng"
	"repro/internal/workload"
)

func init() {
	register("elastic",
		"Extension: elastic MDS autoscaling with graceful drain vs static fleets (diurnal wave)",
		runElastic)
}

// wave is the diurnal-load workload of the elastic experiment: a base
// population of long-running Zipf clients carries steady background
// load, and a burst population of web-trace clients piles on at
// PeakTick and finishes well before the base does. The cluster sees
// quiet -> saturated -> quiet, which is exactly the cycle an
// autoscaler must ride: grow for the peak, drain back after it.
type wave struct {
	base     workload.Generator
	peak     workload.Generator
	baseN    int
	peakTick int64
}

func (w *wave) Name() string { return "Wave(" + w.base.Name() + "+" + w.peak.Name() + ")" }

func (w *wave) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]workload.ClientSpec, error) {
	baseN := w.baseN
	if baseN > clients {
		baseN = clients
	}
	specs, err := w.base.Setup(tree, baseN, src.Fork(1))
	if err != nil {
		return nil, err
	}
	burst, err := w.peak.Setup(tree, clients-baseN, src.Fork(2))
	if err != nil {
		return nil, err
	}
	for i := range burst {
		// The burst generator may stagger starts; keep the stagger but
		// shift the whole group to the peak.
		burst[i].StartTick += w.peakTick
	}
	return append(specs, burst...), nil
}

// elasticWorkload builds the shared wave workload: 16 base clients and
// 48 burst clients whose combined demand saturates four ranks but not
// eight.
func elasticWorkload(opt Options) (workload.Generator, int) {
	return &wave{
		base: workload.NewZipf(workload.ZipfConfig{
			OpsPerClient: scaledMin(60000, opt.Scale, 45000),
		}),
		peak: workload.NewWeb(workload.WebConfig{
			Files:             scaled(6000, opt.Scale),
			RequestsPerClient: scaledMin(12000, opt.Scale, 9000),
		}),
		baseN:    16,
		peakTick: 150,
	}, 64
}

// runElastic rides one diurnal wave with three fleets over the same
// workload and seed: the autoscaler (floor 4, ceiling 8, graceful
// drain back down), a static-4 fleet (cheap but crushed by the peak),
// and a static-16 fleet (fast but paying for idle ranks all run). The
// elastic fleet must beat static-4 on completion time while billing
// fewer rank-epochs than static-16.
func runElastic(opt Options) (*Result, error) {
	policy := elastic.DefaultPolicy() // 4..8, up 0.75 / down 0.35

	type fleet struct {
		name string
		mds  int
		ctl  func() *elastic.Controller
	}
	fleets := []fleet{
		{"elastic", policy.MinRanks, func() *elastic.Controller { return elastic.MustController(policy) }},
		{fmt.Sprintf("static-%d", policy.MinRanks), policy.MinRanks, func() *elastic.Controller { return nil }},
		{"static-16", 16, func() *elastic.Controller { return nil }},
	}

	res := &Result{Table: &metrics.Table{Header: []string{
		"fleet", "JCT p50", "JCT max", "rank-epochs", "peak ranks", "scale-ups", "drains",
	}}}
	for _, f := range fleets {
		gen, clients := elasticWorkload(opt)
		c, err := cluster.New(cluster.Config{
			MDS:      f.mds,
			Clients:  clients,
			Balancer: MakeBalancer("Lunule"),
			Workload: gen,
			Elastic:  f.ctl(),
			Seed:     opt.Seed,
			Audit:    opt.auditor(),
		})
		if err != nil {
			return nil, err
		}
		c.RunUntilDone(opt.MaxTicks)
		if !c.Done() {
			return nil, fmt.Errorf("elastic: %s fleet did not finish in %d ticks", f.name, opt.MaxTicks)
		}
		c.SettleDrains(3000)
		if err := auditErr(c); err != nil {
			return nil, err
		}
		rec := c.Metrics()
		peak := 0
		for _, s := range c.Servers() {
			if s.OpsTotal() > 0 {
				peak++
			}
		}
		res.Table.Add(f.name,
			fi(rec.JCTQuantile(0.5)), fi(rec.JCTQuantile(1.0)),
			fmt.Sprint(c.RankEpochs()), fmt.Sprint(peak),
			fmt.Sprint(c.ScaleUps()), fmt.Sprint(c.DrainsDone()))
		key := f.name
		res.val(key+".jct50", rec.JCTQuantile(0.5))
		res.val(key+".jct_max", rec.JCTQuantile(1.0))
		res.val(key+".rank_epochs", float64(c.RankEpochs()))
		res.val(key+".scale_ups", float64(c.ScaleUps()))
		res.val(key+".drains", float64(c.DrainsDone()))
		if f.ctl() != nil {
			active := 0
			for _, s := range c.Servers() {
				if s.Up() && !s.Draining() {
					active++
				}
			}
			res.val(key+".end_ranks", float64(active))
			res.Series = append(res.Series, NamedSeries{
				Name:   "elastic aggregate IOPS",
				Points: metrics.FormatSeries(&rec.Agg, 10),
			})
		}
	}
	res.Notes = append(res.Notes,
		"one full scale cycle: the controller grows 4->8 for the burst and gracefully drains back to 4 once it passes",
		"elastic must beat static-4 on JCT (capacity when it matters) and static-16 on rank-epochs (no idle fleet)")
	return res, nil
}
