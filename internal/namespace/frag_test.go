package namespace

import (
	"testing"
	"testing/quick"
)

func TestWholeFragContainsEverything(t *testing.T) {
	f := WholeFrag
	for _, h := range []uint32{0, 1, 0xffffffff, 0x80000000} {
		if !f.Contains(h) {
			t.Fatalf("whole frag must contain %x", h)
		}
	}
	if !f.IsWhole() {
		t.Fatal("IsWhole")
	}
}

func TestFragSplitPartitions(t *testing.T) {
	// Property: a fragment's two halves partition exactly its hash span.
	f := func(h uint32, depth uint8) bool {
		frag := WholeFrag
		for i := uint8(0); i < depth%8; i++ {
			l, r := frag.Split()
			if frag.Contains(h) {
				// h must land in exactly one half.
				if l.Contains(h) == r.Contains(h) {
					return false
				}
				if l.Contains(h) {
					frag = l
				} else {
					frag = r
				}
			} else {
				if l.Contains(h) || r.Contains(h) {
					return false
				}
				frag = l
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFragSplitParentRoundtrip(t *testing.T) {
	f := Frag{Value: 0b101, Bits: 3}
	l, r := f.Split()
	if l.Parent() != f || r.Parent() != f {
		t.Fatal("split/parent roundtrip")
	}
	if l.Sibling() != r || r.Sibling() != l {
		t.Fatal("sibling")
	}
	if !f.ContainsFrag(l) || !f.ContainsFrag(r) {
		t.Fatal("parent must contain children")
	}
	if l.ContainsFrag(f) {
		t.Fatal("child must not contain parent")
	}
	if !f.ContainsFrag(f) {
		t.Fatal("frag contains itself")
	}
}

func TestFragParentPanicsOnWhole(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Parent of whole frag did not panic")
		}
	}()
	WholeFrag.Parent()
}

func TestFragString(t *testing.T) {
	if WholeFrag.String() != "*" {
		t.Fatal("whole string")
	}
	f := Frag{Value: 0b10, Bits: 2}
	if f.String() != "10/2" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestHashNameDeterministic(t *testing.T) {
	if HashName("abc") != HashName("abc") {
		t.Fatal("hash not deterministic")
	}
	if HashName("abc") == HashName("abd") {
		t.Fatal("suspicious hash collision on near-identical names")
	}
}

func TestFragSplitBalancesHashes(t *testing.T) {
	// The two halves of the whole fragment should each receive roughly
	// half of real-world names.
	l, r := WholeFrag.Split()
	left := 0
	const n = 10000
	for i := 0; i < n; i++ {
		h := HashName(fileName("f", i))
		if l.Contains(h) {
			left++
		} else if !r.Contains(h) {
			t.Fatal("hash in neither half")
		}
	}
	frac := float64(left) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("left half got %v of names, want ~0.5", frac)
	}
}
