package namespace

import (
	"testing"
	"testing/quick"
)

// buildPartitionFixture creates:
//
//	/
//	├── a/        (10 files)
//	├── b/
//	│   └── sub/  (5 files)
//	└── c/        (20 files)
func buildPartitionFixture(t testing.TB) (*Tree, *Partition) {
	t.Helper()
	tr := NewTree()
	a, _ := tr.Mkdir(tr.Root(), "a")
	b, _ := tr.Mkdir(tr.Root(), "b")
	sub, _ := tr.Mkdir(b, "sub")
	c, _ := tr.Mkdir(tr.Root(), "c")
	for i := 0; i < 10; i++ {
		if _, err := tr.Create(a, fileName("f", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := tr.Create(sub, fileName("g", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := tr.Create(c, fileName("h", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	return tr, NewPartition(tr, 0)
}

func TestPartitionDefaultAuth(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	f, _ := tr.Lookup("/b/sub/g00001")
	if p.AuthOf(f) != 0 {
		t.Fatal("default auth must be root auth")
	}
	if p.AuthOf(tr.Root()) != 0 {
		t.Fatal("root auth")
	}
	if p.NumEntries() != 1 {
		t.Fatal("fresh partition has exactly the root entry")
	}
}

func TestCarveAndSetAuth(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	a, _ := tr.Lookup("/a")
	e := p.Carve(a)
	if e.Auth != 0 {
		t.Fatal("carved entry inherits enclosing auth")
	}
	if !p.SetAuth(e.Key, 2) {
		t.Fatal("SetAuth failed")
	}
	f, _ := tr.Lookup("/a/f00003")
	if p.AuthOf(f) != 2 {
		t.Fatal("file under carved subtree must follow new auth")
	}
	// The dir inode itself stays with the parent subtree (CephFS rule).
	if p.AuthOf(a) != 0 {
		t.Fatal("subtree root dir inode belongs to enclosing subtree")
	}
	// Unrelated paths unchanged.
	g, _ := tr.Lookup("/b/sub/g00000")
	if p.AuthOf(g) != 0 {
		t.Fatal("unrelated subtree moved")
	}
}

func TestCarveIdempotent(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	a, _ := tr.Lookup("/a")
	e1 := p.Carve(a)
	e2 := p.Carve(a)
	if e1.Key != e2.Key || p.NumEntries() != 2 {
		t.Fatal("double carve must not duplicate entries")
	}
}

func TestNestedCarve(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	b, _ := tr.Lookup("/b")
	sub, _ := tr.Lookup("/b/sub")
	eb := p.Carve(b)
	p.SetAuth(eb.Key, 1)
	esub := p.Carve(sub)
	if esub.Auth != 1 {
		t.Fatal("nested carve inherits nearest enclosing auth")
	}
	p.SetAuth(esub.Key, 2)
	g, _ := tr.Lookup("/b/sub/g00000")
	if p.AuthOf(g) != 2 {
		t.Fatal("deepest entry wins")
	}
	if p.AuthOf(sub) != 1 {
		t.Fatal("sub's own inode belongs to /b subtree")
	}
}

func TestGovernedSizesSumToTotal(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	check := func() {
		t.Helper()
		total := 0
		for _, sz := range p.SubtreeSizes() {
			if sz < 0 {
				t.Fatal("negative governed size")
			}
			total += sz
		}
		if total != tr.NumInodes() {
			t.Fatalf("governed sizes sum %d != total inodes %d", total, tr.NumInodes())
		}
	}
	check()
	a, _ := tr.Lookup("/a")
	p.SetAuth(p.Carve(a).Key, 1)
	check()
	b, _ := tr.Lookup("/b")
	sub, _ := tr.Lookup("/b/sub")
	p.SetAuth(p.Carve(b).Key, 1)
	p.SetAuth(p.Carve(sub).Key, 2)
	check()
}

func TestGovernedInodesValues(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	a, _ := tr.Lookup("/a")
	ea := p.Carve(a)
	// /a has 10 files; the subtree rooted at /a governs them (not /a itself).
	if got := p.GovernedInodes(ea.Key); got != 10 {
		t.Fatalf("GovernedInodes(/a) = %d, want 10", got)
	}
	b, _ := tr.Lookup("/b")
	sub, _ := tr.Lookup("/b/sub")
	eb := p.Carve(b)
	// /b governs sub + 5 files = 6 inodes.
	if got := p.GovernedInodes(eb.Key); got != 6 {
		t.Fatalf("GovernedInodes(/b) = %d, want 6", got)
	}
	esub := p.Carve(sub)
	// After carving /b/sub, /b governs only sub's dir inode.
	if got := p.GovernedInodes(eb.Key); got != 1 {
		t.Fatalf("GovernedInodes(/b) after nested carve = %d, want 1", got)
	}
	if got := p.GovernedInodes(esub.Key); got != 5 {
		t.Fatalf("GovernedInodes(/b/sub) = %d, want 5", got)
	}
}

func TestSplitEntry(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	c, _ := tr.Lookup("/c")
	e := p.Carve(c)
	l, r, ok := p.SplitEntry(e.Key)
	if !ok {
		t.Fatal("split failed")
	}
	if l.Auth != e.Auth || r.Auth != e.Auth {
		t.Fatal("split halves keep authority")
	}
	// Every child of /c resolves to exactly one of the halves.
	p.SetAuth(l.Key, 3)
	p.SetAuth(r.Key, 4)
	n3, n4 := 0, 0
	for _, ch := range c.Children() {
		switch p.AuthOf(ch) {
		case 3:
			n3++
		case 4:
			n4++
		default:
			t.Fatalf("child %q resolved outside split halves", ch.Name)
		}
	}
	if n3+n4 != 20 || n3 == 0 || n4 == 0 {
		t.Fatalf("split distribution %d/%d", n3, n4)
	}
	// Sizes of halves sum to the original governed size.
	sizes := p.SubtreeSizes()
	if sizes[l.Key]+sizes[r.Key] != 20 {
		t.Fatalf("split sizes %d + %d != 20", sizes[l.Key], sizes[r.Key])
	}
}

func TestAbsorb(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	a, _ := tr.Lookup("/a")
	e := p.Carve(a)
	p.SetAuth(e.Key, 2)
	f, _ := tr.Lookup("/a/f00000")
	if p.AuthOf(f) != 2 {
		t.Fatal("precondition")
	}
	if !p.Absorb(e.Key) {
		t.Fatal("absorb failed")
	}
	if p.AuthOf(f) != 0 {
		t.Fatal("absorbed region must rejoin enclosing subtree")
	}
	if p.Absorb(FragKey{Dir: RootIno, Frag: WholeFrag}) {
		t.Fatal("root entry must not be absorbable")
	}
}

func TestResolveWithHops(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	b, _ := tr.Lookup("/b")
	sub, _ := tr.Lookup("/b/sub")
	g, _ := tr.Lookup("/b/sub/g00000")

	// Single subtree: no forwards.
	if _, hops := p.ResolveWithHops(g); hops != 0 {
		t.Fatalf("hops = %d, want 0", hops)
	}
	// /b on MDS 1: one auth change root->b.
	p.SetAuth(p.Carve(b).Key, 1)
	if _, hops := p.ResolveWithHops(g); hops != 1 {
		t.Fatalf("hops = %d, want 1", hops)
	}
	// /b/sub on MDS 2: two changes (0->1->2).
	p.SetAuth(p.Carve(sub).Key, 2)
	if e, hops := p.ResolveWithHops(g); hops != 2 || e.Auth != 2 {
		t.Fatalf("hops = %d auth = %d, want 2/2", hops, e.Auth)
	}
	// Same-auth nesting collapses: /b/sub back to MDS 1 -> one change.
	p.SetAuth(FragKey{Dir: sub.Ino, Frag: WholeFrag}, 1)
	if _, hops := p.ResolveWithHops(g); hops != 1 {
		t.Fatalf("hops after same-auth nesting = %d, want 1", hops)
	}
}

func TestInodesPerMDS(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	a, _ := tr.Lookup("/a")
	p.SetAuth(p.Carve(a).Key, 1)
	counts := p.InodesPerMDS(2)
	if counts[1] != 10 {
		t.Fatalf("MDS1 inodes = %d, want 10", counts[1])
	}
	if counts[0]+counts[1] != tr.NumInodes() {
		t.Fatal("per-MDS inode counts must sum to total")
	}
}

func TestVersionBumps(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	v0 := p.Version()
	a, _ := tr.Lookup("/a")
	e := p.Carve(a)
	if p.Version() == v0 {
		t.Fatal("carve must bump version")
	}
	v1 := p.Version()
	p.SetAuth(e.Key, 1)
	if p.Version() == v1 {
		t.Fatal("auth change must bump version")
	}
	v2 := p.Version()
	p.SetAuth(e.Key, 1) // no-op
	if p.Version() != v2 {
		t.Fatal("no-op auth change must not bump version")
	}
}

func TestPartitionSizesProperty(t *testing.T) {
	// Carving random directories never breaks the sum-to-total invariant.
	tr, p := buildPartitionFixture(t)
	var dirs []*Inode
	tr.Walk(func(in *Inode) bool {
		if in.IsDir && in.Parent != nil {
			dirs = append(dirs, in)
		}
		return true
	})
	f := func(picks []uint8) bool {
		for _, pk := range picks {
			d := dirs[int(pk)%len(dirs)]
			if len(d.Children()) == 0 {
				continue
			}
			e := p.Carve(d)
			p.SetAuth(e.Key, MDSID(pk%5))
		}
		total := 0
		for _, sz := range p.SubtreeSizes() {
			if sz < 0 {
				return false
			}
			total += sz
		}
		return total == tr.NumInodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesDeterministicOrder(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	a, _ := tr.Lookup("/a")
	b, _ := tr.Lookup("/b")
	p.Carve(b)
	p.Carve(a)
	e1 := p.Entries()
	e2 := p.Entries()
	if len(e1) != 3 {
		t.Fatalf("entries = %d", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Entries order not deterministic")
		}
	}
	for i := 1; i < len(e1); i++ {
		if e1[i].Key.Dir < e1[i-1].Key.Dir {
			t.Fatal("Entries not sorted by dir")
		}
	}
}
