package namespace

import "strings"

// InodeArena allocates promised inodes for deferred adoption. The
// parallel engine's rank lanes create files concurrently, but inode
// numbers come from the tree's single monotonic counter and linking
// mutates shared parent state, so creation is split in two: a lane
// calls NewFile to get a fully usable file inode that is not yet in
// the tree (Ino 0, unlinked), serves ops against it, and the engine
// adopts it into the tree at the next serial barrier via Tree.Adopt.
// Each lane owns one arena, so slab carving needs no locking; like the
// tree's own slab, chunked allocation amortizes to ~one allocation per
// inodeSlabSize creates on the steady-state path.
type InodeArena struct {
	slab []Inode
}

// NewFile returns a promised file inode under parent: named, parented,
// and sized, but with Ino 0 and not linked into the tree. The caller
// must guarantee (parent, name) is not already linked and not promised
// by another lane; name validity is checked here exactly as the tree's
// own create path does. The inode supports everything the serve path
// needs (Parent chain, NameHash, heat tracking); it must be passed to
// Tree.Adopt before the namespace is read again.
func (a *InodeArena) NewFile(parent *Inode, name string, size int64) (*Inode, error) {
	if parent == nil || !parent.IsDir {
		return nil, ErrNotDir
	}
	if name == "" || strings.ContainsRune(name, '/') {
		return nil, ErrBadName
	}
	if len(a.slab) == 0 {
		a.slab = make([]Inode, inodeSlabSize)
	}
	in := &a.slab[0]
	a.slab = a.slab[1:]
	*in = Inode{
		Name:      name,
		Parent:    parent,
		Size:      size,
		subInodes: 1,
		subFiles:  1,
		nameHash:  HashName(name),
	}
	return in, nil
}

// Adopt links a promised inode (from InodeArena.NewFile) into the
// tree: it assigns the next inode number and splices it under its
// parent, bumping ancestor subtree counters, exactly as a direct
// Create would have. Adoption order defines inode-number order, so the
// engine adopts in sorted rank order at barriers to stay
// deterministic. It panics if the slot is already taken — the engine's
// per-(parent,name) dedup must make that impossible.
func (t *Tree) Adopt(in *Inode) {
	parent := in.Parent
	if in.Ino != 0 || parent.children[in.Name] != nil {
		panic("namespace: Adopt of a linked or duplicate inode")
	}
	in.Ino = t.nextIn
	t.nextIn++
	parent.children[in.Name] = in
	parent.order = append(parent.order, in)
	t.byIno = append(t.byIno, in)
	for a := parent; a != nil; a = a.Parent {
		a.subInodes++
		a.subFiles += in.subFiles
	}
}

// AdoptOrExisting is Adopt for the write-back engine's probe-free
// create path: the serving lane promises an inode without a
// pre-adoption duplicate check, and the race is decided here, at the
// serial barrier, in deterministic rank order. When the (parent, name)
// slot is already linked — by an earlier tick, or an earlier create in
// the same barrier — the promised inode is discarded and the existing
// one returned with adopted=false.
func (t *Tree) AdoptOrExisting(in *Inode) (linked *Inode, adopted bool) {
	parent := in.Parent
	if ex := parent.children[in.Name]; ex != nil {
		return ex, false
	}
	in.Ino = t.nextIn
	t.nextIn++
	parent.children[in.Name] = in
	parent.order = append(parent.order, in)
	t.byIno = append(t.byIno, in)
	for a := parent; a != nil; a = a.Parent {
		a.subInodes++
		a.subFiles += in.subFiles
	}
	return in, true
}
