package namespace

import "testing"

func TestMergeWithSibling(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	c, _ := tr.Lookup("/c")
	e := p.Carve(c)
	l, r, ok := p.SplitEntry(e.Key)
	if !ok {
		t.Fatal("split failed")
	}
	before := p.NumEntries()
	merged, ok := p.MergeWithSibling(l.Key)
	if !ok {
		t.Fatal("merge failed")
	}
	if merged.Key != e.Key {
		t.Fatalf("merged key %v, want parent %v", merged.Key, e.Key)
	}
	if p.NumEntries() != before-1 {
		t.Fatalf("entries = %d, want %d", p.NumEntries(), before-1)
	}
	// Both halves are gone, the parent exists.
	if _, ok := p.EntryAt(l.Key); ok {
		t.Fatal("left half still present")
	}
	if _, ok := p.EntryAt(r.Key); ok {
		t.Fatal("right half still present")
	}
	if _, ok := p.EntryAt(e.Key); !ok {
		t.Fatal("parent entry missing")
	}
	// Resolution still covers every child.
	for _, ch := range c.Children() {
		if p.AuthOf(ch) != merged.Auth {
			t.Fatal("child resolution broken after merge")
		}
	}
}

func TestMergeWithSiblingRefusesMixedAuth(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	c, _ := tr.Lookup("/c")
	e := p.Carve(c)
	l, r, _ := p.SplitEntry(e.Key)
	p.SetAuth(l.Key, 1)
	p.SetAuth(r.Key, 2)
	if _, ok := p.MergeWithSibling(l.Key); ok {
		t.Fatal("must not merge fragments with different authorities")
	}
	// Same auth again: merge allowed.
	p.SetAuth(r.Key, 1)
	if _, ok := p.MergeWithSibling(l.Key); !ok {
		t.Fatal("same-auth merge should succeed")
	}
}

func TestMergeWithSiblingDegenerate(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	a, _ := tr.Lookup("/a")
	e := p.Carve(a)
	if _, ok := p.MergeWithSibling(e.Key); ok {
		t.Fatal("whole fragment has no sibling to merge with")
	}
	if _, ok := p.MergeWithSibling(FragKey{Dir: 999, Frag: Frag{Value: 0, Bits: 1}}); ok {
		t.Fatal("missing entry must not merge")
	}
}

func TestMergePreservesSizes(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	c, _ := tr.Lookup("/c")
	e := p.Carve(c)
	l, _, _ := p.SplitEntry(e.Key)
	// Split twice more for a deeper tree of fragments.
	p.SplitEntry(l.Key)
	total := 0
	for _, sz := range p.SubtreeSizes() {
		total += sz
	}
	if total != tr.NumInodes() {
		t.Fatalf("pre-merge total %d != %d", total, tr.NumInodes())
	}
	// Merge the deepest pair back.
	ll := FragKey{Dir: c.Ino, Frag: Frag{Value: 0, Bits: 2}}
	if _, ok := p.MergeWithSibling(ll); !ok {
		t.Fatal("deep merge failed")
	}
	total = 0
	for _, sz := range p.SubtreeSizes() {
		total += sz
	}
	if total != tr.NumInodes() {
		t.Fatalf("post-merge total %d != %d", total, tr.NumInodes())
	}
}

func TestEnclosingAuth(t *testing.T) {
	tr, p := buildPartitionFixture(t)
	b, _ := tr.Lookup("/b")
	sub, _ := tr.Lookup("/b/sub")
	eb := p.Carve(b)
	p.SetAuth(eb.Key, 1)
	esub := p.Carve(sub)
	p.SetAuth(esub.Key, 2)
	if auth, ok := p.EnclosingAuth(esub.Key); !ok || auth != 1 {
		t.Fatalf("enclosing of /b/sub = %v/%v, want 1", auth, ok)
	}
	if auth, ok := p.EnclosingAuth(eb.Key); !ok || auth != 0 {
		t.Fatalf("enclosing of /b = %v/%v, want 0", auth, ok)
	}
	if _, ok := p.EnclosingAuth(FragKey{Dir: RootIno, Frag: WholeFrag}); ok {
		t.Fatal("root has no enclosing entry")
	}
}
