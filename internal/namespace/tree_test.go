package namespace

import (
	"fmt"
	"testing"
	"testing/quick"
)

func fileName(prefix string, i int) string { return fmt.Sprintf("%s%05d", prefix, i) }

func buildSmallTree(t testing.TB) *Tree {
	t.Helper()
	tr := NewTree()
	must := func(in *Inode, err error) *Inode {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a := must(tr.Mkdir(tr.Root(), "a"))
	b := must(tr.Mkdir(tr.Root(), "b"))
	must(tr.Create(a, "f1", 100))
	must(tr.Create(a, "f2", 200))
	sub := must(tr.Mkdir(b, "sub"))
	must(tr.Create(sub, "f3", 300))
	return tr
}

func TestTreeBasics(t *testing.T) {
	tr := buildSmallTree(t)
	if tr.NumInodes() != 7 {
		t.Fatalf("NumInodes = %d, want 7", tr.NumInodes())
	}
	f3, err := tr.Lookup("/b/sub/f3")
	if err != nil {
		t.Fatal(err)
	}
	if f3.Size != 300 || f3.IsDir {
		t.Fatal("f3 attributes")
	}
	if f3.Path() != "/b/sub/f3" {
		t.Fatalf("Path = %q", f3.Path())
	}
	if f3.Depth() != 3 {
		t.Fatalf("Depth = %d", f3.Depth())
	}
	if tr.Root().Path() != "/" {
		t.Fatal("root path")
	}
	if tr.Get(f3.Ino) != f3 {
		t.Fatal("Get by ino")
	}
}

func TestLookupErrors(t *testing.T) {
	tr := buildSmallTree(t)
	if _, err := tr.Lookup("/nope"); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err := tr.Lookup("/a/f1/x"); err != ErrNotDir {
		t.Fatalf("want ErrNotDir, got %v", err)
	}
}

func TestCreateErrors(t *testing.T) {
	tr := buildSmallTree(t)
	a, _ := tr.Lookup("/a")
	if _, err := tr.Create(a, "f1", 1); err != ErrExists {
		t.Fatalf("want ErrExists, got %v", err)
	}
	if _, err := tr.Create(a, "x/y", 1); err != ErrBadName {
		t.Fatalf("want ErrBadName, got %v", err)
	}
	if _, err := tr.Create(a, "", 1); err != ErrBadName {
		t.Fatalf("want ErrBadName, got %v", err)
	}
	f1, _ := tr.Lookup("/a/f1")
	if _, err := tr.Create(f1, "child", 1); err != ErrNotDir {
		t.Fatalf("want ErrNotDir, got %v", err)
	}
}

func TestMkdirAll(t *testing.T) {
	tr := NewTree()
	d, err := tr.MkdirAll("/x/y/z")
	if err != nil {
		t.Fatal(err)
	}
	if d.Path() != "/x/y/z" {
		t.Fatalf("Path = %q", d.Path())
	}
	// Idempotent.
	d2, err := tr.MkdirAll("/x/y/z")
	if err != nil || d2 != d {
		t.Fatal("MkdirAll not idempotent")
	}
	// Fails across a file.
	x, _ := tr.Lookup("/x")
	if _, err := tr.Create(x, "file", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MkdirAll("/x/file/deep"); err != ErrNotDir {
		t.Fatalf("want ErrNotDir, got %v", err)
	}
}

func TestSubtreeCountsInvariant(t *testing.T) {
	tr := buildSmallTree(t)
	// Each inode's subInodes equals 1 + sum of children's.
	ok := true
	tr.Walk(func(in *Inode) bool {
		sum := 1
		for _, c := range in.Children() {
			sum += c.SubtreeInodes()
		}
		if in.SubtreeInodes() != sum {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.Fatal("subtree count invariant violated")
	}
}

func TestSubtreeCountsProperty(t *testing.T) {
	// Random create sequences keep the count invariant and the total.
	f := func(ops []uint16) bool {
		tr := NewTree()
		dirs := []*Inode{tr.Root()}
		created := 1
		for i, op := range ops {
			parent := dirs[int(op)%len(dirs)]
			if op%3 == 0 {
				d, err := tr.Mkdir(parent, fileName("d", i))
				if err != nil {
					return false
				}
				dirs = append(dirs, d)
			} else {
				if _, err := tr.Create(parent, fileName("f", i), int64(op)); err != nil {
					return false
				}
			}
			created++
		}
		if tr.NumInodes() != created {
			return false
		}
		good := true
		tr.Walk(func(in *Inode) bool {
			sum := 1
			for _, c := range in.Children() {
				sum += c.SubtreeInodes()
			}
			if in.SubtreeInodes() != sum {
				good = false
				return false
			}
			return true
		})
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	tr := buildSmallTree(t)
	f1, _ := tr.Lookup("/a/f1")
	before := tr.NumInodes()
	if err := tr.Remove(f1); err != nil {
		t.Fatal(err)
	}
	if tr.NumInodes() != before-1 {
		t.Fatal("count after remove")
	}
	if _, err := tr.Lookup("/a/f1"); err != ErrNotFound {
		t.Fatal("removed file still found")
	}
	b, _ := tr.Lookup("/b")
	if err := tr.Remove(b); err != ErrNotEmpty {
		t.Fatalf("want ErrNotEmpty, got %v", err)
	}
	if err := tr.Remove(tr.Root()); err != ErrIsRoot {
		t.Fatalf("want ErrIsRoot, got %v", err)
	}
}

func TestWalkOrderDeterministic(t *testing.T) {
	tr := buildSmallTree(t)
	var paths []string
	tr.Walk(func(in *Inode) bool {
		paths = append(paths, in.Path())
		return true
	})
	want := []string{"/", "/a", "/a/f1", "/a/f2", "/b", "/b/sub", "/b/sub/f3"}
	if len(paths) != len(want) {
		t.Fatalf("walk visited %d nodes, want %d", len(paths), len(want))
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("walk order[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := buildSmallTree(t)
	n := 0
	tr.Walk(func(in *Inode) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("walk visited %d after stop, want 3", n)
	}
}

func TestChildrenInFrag(t *testing.T) {
	tr := NewTree()
	d, _ := tr.Mkdir(tr.Root(), "d")
	for i := 0; i < 200; i++ {
		if _, err := tr.Create(d, fileName("f", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	l, r := WholeFrag.Split()
	nl := len(d.ChildrenInFrag(l))
	nr := len(d.ChildrenInFrag(r))
	if nl+nr != 200 {
		t.Fatalf("frag children %d + %d != 200", nl, nr)
	}
	if nl == 0 || nr == 0 {
		t.Fatal("one half empty; hash split badly unbalanced")
	}
	if len(d.ChildrenInFrag(WholeFrag)) != 200 {
		t.Fatal("whole frag must cover all children")
	}
}

func TestIsAncestorOf(t *testing.T) {
	tr := buildSmallTree(t)
	b, _ := tr.Lookup("/b")
	f3, _ := tr.Lookup("/b/sub/f3")
	if !b.IsAncestorOf(f3) {
		t.Fatal("b should be ancestor of f3")
	}
	if f3.IsAncestorOf(b) {
		t.Fatal("f3 is not ancestor of b")
	}
	if b.IsAncestorOf(b) {
		t.Fatal("strict ancestry should exclude self")
	}
	if !tr.Root().IsAncestorOf(f3) {
		t.Fatal("root is ancestor of everything")
	}
}

func TestHotTouchAndWindow(t *testing.T) {
	var h Hot
	if h.EverAccessed() {
		t.Fatal("fresh inode should be unvisited")
	}
	seen := h.Touch(5)
	if seen {
		t.Fatal("first touch must report unseen")
	}
	if !h.Touch(5) {
		t.Fatal("second touch must report seen")
	}
	if !h.AccessedIn(5) {
		t.Fatal("AccessedIn(5)")
	}
	h.Touch(7)
	if !h.AccessedIn(7) || !h.AccessedIn(5) || h.AccessedIn(6) {
		t.Fatal("epoch bit bookkeeping wrong")
	}
	if h.RecentEpochs(7, 3) != 2 {
		t.Fatalf("RecentEpochs = %d, want 2", h.RecentEpochs(7, 3))
	}
	if h.Count != 3 {
		t.Fatalf("Count = %d", h.Count)
	}
}

func TestHotWindowExpiry(t *testing.T) {
	var h Hot
	h.Touch(0)
	h.Touch(100) // shift > 64 clears old bits
	if h.AccessedIn(0) {
		t.Fatal("epoch 0 should have fallen out of the 64-epoch window")
	}
	if !h.AccessedIn(100) {
		t.Fatal("epoch 100 should be set")
	}
	if !h.EverAccessed() {
		t.Fatal("count survives window expiry")
	}
}

func TestHotFutureEpochQuery(t *testing.T) {
	var h Hot
	h.Touch(5)
	if h.AccessedIn(9) {
		t.Fatal("future epoch cannot have been accessed")
	}
}
