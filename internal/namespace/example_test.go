package namespace_test

import (
	"fmt"

	"repro/internal/namespace"
)

// Example demonstrates the dynamic subtree partitioning primitives:
// carving a subtree out of the namespace, handing it to another MDS,
// and splitting a directory into hash fragments.
func Example() {
	tree := namespace.NewTree()
	photos, _ := tree.MkdirAll("/home/alice/photos")
	for i := 0; i < 4; i++ {
		tree.Create(photos, fmt.Sprintf("img%d.jpg", i), 1<<20)
	}
	part := namespace.NewPartition(tree, 0) // rank 0 holds the root subtree

	img, _ := tree.Lookup("/home/alice/photos/img2.jpg")
	fmt.Println("before:", part.AuthOf(img))

	// Carve /home/alice/photos into its own subtree and migrate it.
	e := part.Carve(photos)
	part.SetAuth(e.Key, 3)
	fmt.Println("after: ", part.AuthOf(img))

	// Split the subtree into two dirfrags (each keeps rank 3).
	l, r, _ := part.SplitEntry(e.Key)
	fmt.Println("fragments:", l.Key.Frag, r.Key.Frag)

	// Output:
	// before: 0
	// after:  3
	// fragments: 0/1 1/1
}
