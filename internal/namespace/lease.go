package namespace

// LeaseTable is the resolver-side index of live read leases: for each
// leased subtree entry, the ranks currently allowed to serve its reads.
// It is the routing mirror of the replica manager's lease state — the
// manager owns grant/revoke/expiry truth, the cluster copies the holder
// sets in here whenever lease membership changes, and the engine's plan
// phase consults it right after authority resolution to divert read
// runs to a lease holder. Holder slices are stored sorted by rank, so
// candidate enumeration is deterministic.
//
// Like the Resolver, the table is single-writer: only the cluster's
// serial sections mutate it (epoch-close grants, barrier-applied write
// revokes, the pre-serve sync after crash/drain events), and the
// parallel plan phase only reads it.
type LeaseTable struct {
	holders map[FragKey][]MDSID
	version uint64
}

// NewLeaseTable builds an empty lease table.
func NewLeaseTable() *LeaseTable {
	return &LeaseTable{holders: make(map[FragKey][]MDSID)}
}

// Len returns how many subtree entries currently carry leases. The
// engine hoists a Len() == 0 check so a run without leases pays nothing
// per op.
func (t *LeaseTable) Len() int { return len(t.holders) }

// Has reports whether the subtree entry has any live lease.
func (t *LeaseTable) Has(key FragKey) bool {
	_, ok := t.holders[key]
	return ok
}

// Holders returns the ranks holding leases on the entry, sorted by
// rank, or nil. Shared storage: callers must not modify the slice.
func (t *LeaseTable) Holders(key FragKey) []MDSID { return t.holders[key] }

// Set replaces the entry's holder set (which must be sorted by rank);
// an empty set removes the entry.
func (t *LeaseTable) Set(key FragKey, holders []MDSID) {
	if len(holders) == 0 {
		t.Remove(key)
		return
	}
	t.holders[key] = holders
	t.version++
}

// Remove drops the entry's holder set.
func (t *LeaseTable) Remove(key FragKey) {
	if _, ok := t.holders[key]; !ok {
		return
	}
	delete(t.holders, key)
	t.version++
}

// Clear drops every holder set.
func (t *LeaseTable) Clear() {
	if len(t.holders) == 0 {
		return
	}
	clear(t.holders)
	t.version++
}

// Version increments on every mutation, mirroring Partition.Version:
// consumers caching routing decisions invalidate on mismatch.
func (t *LeaseTable) Version() uint64 { return t.version }
