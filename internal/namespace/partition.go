package namespace

import "sort"

// MDSID identifies a metadata server by rank.
type MDSID int

// FragKey names a subtree root: the directory whose children (those in
// the fragment) and everything below them form the subtree, minus any
// nested subtree roots. This matches CephFS, where subtree bounds are
// dirfrags and a subtree-root directory's own inode belongs to the
// parent subtree.
type FragKey struct {
	Dir  Ino
	Frag Frag
}

// Entry is one authority assignment in the partition.
type Entry struct {
	Key  FragKey
	Auth MDSID
}

// Partition maps namespace regions to authoritative metadata servers.
// It always contains a root entry covering the whole namespace; further
// entries carve nested regions out of their enclosing subtree.
//
// A Partition also exposes the two queries migration planning needs:
// resolving the governing entry of an inode (with the forwarding-hop
// count a client-side path traversal would incur) and sizing the set of
// inodes a subtree entry governs.
type Partition struct {
	tree *Tree
	// entries[dir] lists the fragment entries rooted at dir, kept
	// sorted by the start of each fragment's hash range so membership
	// lookups can binary-search. Almost always length 1; longer only
	// after dirfrag splits.
	entries map[Ino][]Entry
	version uint64
	// size bookkeeping for O(1) NumEntries.
	numEntries int
}

// fragStart returns the first 32-bit hash the fragment covers. The
// fragments of one directory are disjoint, so their starts are unique
// and ordering by start is total.
func fragStart(f Frag) uint32 {
	if f.Bits == 0 {
		return 0
	}
	return f.Value << (32 - uint32(f.Bits))
}

// NewPartition creates a partition in which the entire namespace is
// governed by rootAuth, matching a freshly started MDS cluster where
// rank 0 holds the root subtree.
func NewPartition(tree *Tree, rootAuth MDSID) *Partition {
	p := &Partition{
		tree:    tree,
		entries: make(map[Ino][]Entry),
	}
	p.entries[RootIno] = []Entry{{Key: FragKey{Dir: RootIno, Frag: WholeFrag}, Auth: rootAuth}}
	p.numEntries = 1
	return p
}

// Tree returns the namespace the partition governs.
func (p *Partition) Tree() *Tree { return p.tree }

// Version increases on every mutation; callers may use it to invalidate
// cached authority lookups.
func (p *Partition) Version() uint64 { return p.version }

// NumEntries returns the number of subtree entries.
func (p *Partition) NumEntries() int { return p.numEntries }

// RootEntry returns the entry governing the root of the namespace.
func (p *Partition) RootEntry() Entry {
	for _, e := range p.entries[RootIno] {
		if e.Key.Frag.IsWhole() {
			return e
		}
	}
	// The root dir's entries were split; resolution of the root inode
	// itself falls to the lowest-range fragment by convention (entries
	// are kept sorted by range start).
	return p.entries[RootIno][0]
}

// lookupEntry returns the entry rooted at (dir, frag-containing-h), if any.
func (p *Partition) lookupEntry(dir Ino, h uint32) (Entry, bool) {
	es := p.entries[dir]
	if len(es) == 0 {
		return Entry{}, false
	}
	// Entries are disjoint and sorted by range start: binary-search the
	// last entry starting at or below h, then confirm containment.
	lo, hi := 0, len(es)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if fragStart(es[mid].Key.Frag) <= h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Entry{}, false
	}
	if e := es[lo-1]; e.Key.Frag.Contains(h) {
		return e, true
	}
	return Entry{}, false
}

// EntriesAt returns the entries rooted at the given directory (empty
// when the directory is not a subtree root). The returned slice is
// shared; callers must not modify it.
func (p *Partition) EntriesAt(dir Ino) []Entry { return p.entries[dir] }

// EntryAt returns the entry with exactly the given key, if present.
func (p *Partition) EntryAt(key FragKey) (Entry, bool) {
	for _, e := range p.entries[key.Dir] {
		if e.Key.Frag == key.Frag {
			return e, true
		}
	}
	return Entry{}, false
}

// GoverningEntry returns the partition entry that governs the inode.
// The governing entry of the root inode is the root entry; for any
// other inode it is the nearest enclosing subtree root found by walking
// up the ancestor chain (exactly how the MDS resolves authority).
func (p *Partition) GoverningEntry(in *Inode) Entry {
	for cur := in; cur.Parent != nil; cur = cur.Parent {
		if e, ok := p.lookupEntry(cur.Parent.Ino, cur.nameHash); ok {
			return e
		}
	}
	return p.RootEntry()
}

// GoverningChildEntry returns the entry that would govern a child of
// parent with the given name hash, without the child having to exist:
// it is exactly GoverningEntry of such a child. The engine routes
// not-yet-created files with it, so a create is sharded to the same
// rank lane that will own the inode once adopted.
func (p *Partition) GoverningChildEntry(parent *Inode, nameHash uint32) Entry {
	if e, ok := p.lookupEntry(parent.Ino, nameHash); ok {
		return e
	}
	return p.GoverningEntry(parent)
}

// AuthOf returns the MDS authoritative for the inode.
func (p *Partition) AuthOf(in *Inode) MDSID {
	return p.GoverningEntry(in).Auth
}

// ResolveWithHops returns the governing entry of the inode together
// with the number of inter-MDS forwards a path traversal from the root
// would incur: one forward for every authority change along the chain
// of subtree roots from the root entry down to the governing entry.
// Fine-grained static partitions (Dir-Hash) fragment the chain and
// inflate this count, which is what Figure 14 measures.
func (p *Partition) ResolveWithHops(in *Inode) (Entry, int) {
	// Collect the authorities of every subtree boundary from the inode
	// up to the root, then count adjacent changes top-down.
	var auths []MDSID
	var governing Entry
	found := false
	for cur := in; cur.Parent != nil; cur = cur.Parent {
		if e, ok := p.lookupEntry(cur.Parent.Ino, cur.nameHash); ok {
			auths = append(auths, e.Auth)
			if !found {
				governing = e
				found = true
			}
		}
	}
	root := p.RootEntry()
	auths = append(auths, root.Auth)
	if !found {
		governing = root
	}
	hops := 0
	for i := len(auths) - 1; i > 0; i-- {
		if auths[i] != auths[i-1] {
			hops++
		}
	}
	return governing, hops
}

// ResolveChain returns the sequence of authorities a path traversal
// from the root to the inode visits (adjacent duplicates collapsed,
// ordered root-first) together with the governing entry. The request is
// served by the last element; every earlier element relays (forwards)
// it.
func (p *Partition) ResolveChain(in *Inode) ([]MDSID, Entry) {
	return p.ResolveChainInto(nil, in)
}

// ResolveChainInto is ResolveChain with the authorities written into
// buf (grown as needed). Once buf has reached the chain depth the call
// performs no allocations, which is what the per-op serve path needs.
// The returned slice aliases buf and is only valid until the next call
// with the same buffer.
func (p *Partition) ResolveChainInto(buf []MDSID, in *Inode) ([]MDSID, Entry) {
	auths := buf[:0]
	var governing Entry
	found := false
	for cur := in; cur.Parent != nil; cur = cur.Parent {
		if e, ok := p.lookupEntry(cur.Parent.Ino, cur.nameHash); ok {
			auths = append(auths, e.Auth)
			if !found {
				governing = e
				found = true
			}
		}
	}
	root := p.RootEntry()
	auths = append(auths, root.Auth)
	if !found {
		governing = root
	}
	// auths is bottom-up; reverse in place, then collapse adjacent
	// duplicates (the write index never passes the read index, so the
	// collapse can reuse the same backing array).
	for i, j := 0, len(auths)-1; i < j; i, j = i+1, j-1 {
		auths[i], auths[j] = auths[j], auths[i]
	}
	chain := auths[:1]
	for _, a := range auths[1:] {
		if a != chain[len(chain)-1] {
			chain = append(chain, a)
		}
	}
	return chain, governing
}

// SetAuth changes the authority of an existing entry. It returns false
// if no entry with that key exists.
func (p *Partition) SetAuth(key FragKey, auth MDSID) bool {
	es := p.entries[key.Dir]
	for i, e := range es {
		if e.Key.Frag == key.Frag {
			if es[i].Auth != auth {
				es[i].Auth = auth
				p.version++
			}
			return true
		}
	}
	return false
}

// Carve creates a new subtree entry rooted at dir (whole fragment),
// governed initially by the same authority as its surroundings, and
// returns it. Carving an already-existing root returns the existing
// entry. This is the first half of an export: delimit the subtree, then
// hand it over with SetAuth.
func (p *Partition) Carve(dir *Inode) Entry {
	if !dir.IsDir {
		panic("namespace: carve target must be a directory")
	}
	key := FragKey{Dir: dir.Ino, Frag: WholeFrag}
	if e, ok := p.EntryAt(key); ok {
		return e
	}
	// Authority of the children of dir before the carve: governed by
	// the entry that governs dir itself unless dir already has split
	// fragment entries (in which case Carve with WholeFrag would
	// overlap them; forbid that).
	if len(p.entries[dir.Ino]) > 0 {
		panic("namespace: carve over existing fragment entries")
	}
	e := Entry{Key: key, Auth: p.GoverningEntry(dir).Auth}
	if dir.Ino == RootIno {
		// Root already always has an entry; unreachable, but keep the
		// invariant explicit.
		panic("namespace: root is always carved")
	}
	p.entries[dir.Ino] = append(p.entries[dir.Ino], e)
	p.numEntries++
	p.version++
	return e
}

// SplitEntry replaces the entry at key with its two child fragments,
// both keeping the original authority, and returns the two new entries.
// This is the dirfrag split used when a single subtree must be divided
// to match a migration amount.
func (p *Partition) SplitEntry(key FragKey) (Entry, Entry, bool) {
	es := p.entries[key.Dir]
	for i, e := range es {
		if e.Key.Frag == key.Frag {
			lf, rf := e.Key.Frag.Split()
			left := Entry{Key: FragKey{Dir: key.Dir, Frag: lf}, Auth: e.Auth}
			right := Entry{Key: FragKey{Dir: key.Dir, Frag: rf}, Auth: e.Auth}
			// left reuses the parent's range start; right begins at the
			// midpoint, so inserting it just after left keeps es sorted.
			es[i] = left
			es = append(es, Entry{})
			copy(es[i+2:], es[i+1:])
			es[i+1] = right
			p.entries[key.Dir] = es
			p.numEntries++
			p.version++
			return left, right, true
		}
	}
	return Entry{}, Entry{}, false
}

// Absorb removes a non-root entry, merging its region back into the
// enclosing subtree. It returns false for the root entry or a missing
// key.
func (p *Partition) Absorb(key FragKey) bool {
	if key.Dir == RootIno && key.Frag.IsWhole() {
		return false
	}
	es := p.entries[key.Dir]
	for i, e := range es {
		if e.Key.Frag == key.Frag {
			es = append(es[:i], es[i+1:]...)
			if len(es) == 0 {
				delete(p.entries, key.Dir)
			} else {
				p.entries[key.Dir] = es
			}
			p.numEntries--
			p.version++
			return true
		}
	}
	return false
}

// EnclosingAuth returns the authority that would govern the entry's
// span if the entry did not exist (false for the root entry).
func (p *Partition) EnclosingAuth(key FragKey) (MDSID, bool) {
	e, ok := p.enclosingEntry(key)
	if !ok {
		return 0, false
	}
	return e.Auth, true
}

// MergeWithSibling replaces the fragment entry at key and its sibling
// fragment entry with a single parent-fragment entry, provided both
// exist and share the same authority (the CephFS dirfrag merge). It
// returns the merged entry.
func (p *Partition) MergeWithSibling(key FragKey) (Entry, bool) {
	if key.Frag.IsWhole() {
		return Entry{}, false
	}
	self, ok := p.EntryAt(key)
	if !ok {
		return Entry{}, false
	}
	sibKey := FragKey{Dir: key.Dir, Frag: key.Frag.Sibling()}
	sib, ok := p.EntryAt(sibKey)
	if !ok || sib.Auth != self.Auth {
		return Entry{}, false
	}
	// Remove both halves, insert the parent fragment at its sorted
	// position (the filter preserves the relative order of the rest).
	es := p.entries[key.Dir]
	kept := es[:0]
	for _, e := range es {
		if e.Key.Frag != key.Frag && e.Key.Frag != sibKey.Frag {
			kept = append(kept, e)
		}
	}
	merged := Entry{Key: FragKey{Dir: key.Dir, Frag: key.Frag.Parent()}, Auth: self.Auth}
	pos := len(kept)
	for j, e := range kept {
		if fragStart(e.Key.Frag) > fragStart(merged.Key.Frag) {
			pos = j
			break
		}
	}
	kept = append(kept, Entry{})
	copy(kept[pos+1:], kept[pos:])
	kept[pos] = merged
	p.entries[key.Dir] = kept
	p.numEntries--
	p.version++
	return merged, true
}

// Entries returns all entries sorted by (dir, frag) for deterministic
// iteration.
func (p *Partition) Entries() []Entry {
	out := make([]Entry, 0, p.numEntries)
	for _, es := range p.entries {
		out = append(out, es...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Dir != b.Dir {
			return a.Dir < b.Dir
		}
		if a.Frag.Bits != b.Frag.Bits {
			return a.Frag.Bits < b.Frag.Bits
		}
		return a.Frag.Value < b.Frag.Value
	})
	return out
}

// EntriesOf returns the entries currently assigned to the given MDS.
func (p *Partition) EntriesOf(mds MDSID) []Entry {
	var out []Entry
	for _, e := range p.Entries() {
		if e.Auth == mds {
			out = append(out, e)
		}
	}
	return out
}

// rawSize returns the number of inodes in the span of the key before
// nested entries are carved out: the subtree sizes of the covered
// children, plus 1 for the root inode itself when key is the root entry
// (the root inode belongs to the root subtree).
func (p *Partition) rawSize(key FragKey) int {
	dir := p.tree.Get(key.Dir)
	if dir == nil {
		return 0
	}
	n := 0
	if key.Frag.IsWhole() {
		n = dir.subInodes - 1 // children and below; not the dir itself
	} else {
		for _, c := range dir.ChildrenInFrag(key.Frag) {
			n += c.subInodes
		}
	}
	if key.Dir == RootIno && key.Frag.IsWhole() {
		n++ // the root inode itself
	}
	return n
}

// enclosingEntry returns the entry that would govern the span of key if
// key's own entry did not exist.
func (p *Partition) enclosingEntry(key FragKey) (Entry, bool) {
	if key.Dir == RootIno && key.Frag.IsWhole() {
		return Entry{}, false
	}
	// A split fragment's enclosing entry may be an ancestor fragment of
	// the same directory.
	f := key.Frag
	for !f.IsWhole() {
		f = f.Parent()
		if e, ok := p.EntryAt(FragKey{Dir: key.Dir, Frag: f}); ok {
			return e, true
		}
	}
	dir := p.tree.Get(key.Dir)
	if dir == nil {
		return Entry{}, false
	}
	return p.GoverningEntry(dir), true
}

// SubtreeSizes returns, for every entry, the number of inodes it
// governs (its raw span minus the spans of entries nested directly
// inside it). The sum over all entries equals the total inode count.
func (p *Partition) SubtreeSizes() map[FragKey]int {
	sizes := make(map[FragKey]int, p.numEntries)
	for _, e := range p.Entries() {
		sizes[e.Key] = p.rawSize(e.Key)
	}
	for _, e := range p.Entries() {
		if enc, ok := p.enclosingEntry(e.Key); ok {
			sizes[enc.Key] -= p.rawSize(e.Key)
		}
	}
	return sizes
}

// GovernedInodes returns the number of inodes the entry at key governs.
func (p *Partition) GovernedInodes(key FragKey) int {
	n := p.rawSize(key)
	for _, e := range p.Entries() {
		if e.Key == key {
			continue
		}
		if enc, ok := p.enclosingEntry(e.Key); ok && enc.Key == key {
			n -= p.rawSize(e.Key)
		}
	}
	return n
}

// UnvisitedIn returns how many inodes in the entry's raw span have
// never been accessed, together with the span's total inode count.
// Nested entries are not subtracted; the ratio is used as a locality
// signal, not an exact census.
func (p *Partition) UnvisitedIn(key FragKey) (unvisited, total int) {
	dir := p.tree.Get(key.Dir)
	if dir == nil {
		return 0, 0
	}
	if key.Frag.IsWhole() {
		return dir.UnvisitedBelow()
	}
	for _, c := range dir.ChildrenInFrag(key.Frag) {
		total += c.subFiles
		unvisited += c.subFiles - c.VisitedFiles
	}
	if unvisited < 0 {
		unvisited = 0
	}
	return unvisited, total
}

// InodesPerMDS returns the number of inodes governed by each MDS,
// indexed by rank, sized to at least n entries.
func (p *Partition) InodesPerMDS(n int) []int {
	counts := make([]int, n)
	for key, sz := range p.SubtreeSizes() {
		e, _ := p.EntryAt(key)
		if int(e.Auth) >= len(counts) {
			grown := make([]int, e.Auth+1)
			copy(grown, counts)
			counts = grown
		}
		counts[e.Auth] += sz
	}
	return counts
}
