package namespace

import (
	"testing"
	"testing/quick"
)

// buildRandomNamespace creates a three-level tree driven by the fuzz
// bytes: top dirs, nested dirs, and files.
func buildRandomNamespace(shape []uint8) *Tree {
	tr := NewTree()
	if len(shape) == 0 {
		return tr
	}
	tops := int(shape[0]%4) + 2
	for t := 0; t < tops; t++ {
		top, _ := tr.Mkdir(tr.Root(), fileName("top", t))
		subs := int(shape[t%len(shape)]%3) + 1
		for s := 0; s < subs; s++ {
			sub, _ := tr.Mkdir(top, fileName("sub", s))
			files := int(shape[(t+s)%len(shape)]%8) + 1
			for f := 0; f < files; f++ {
				_, _ = tr.Create(sub, fileName("f", f), int64(f))
			}
		}
	}
	return tr
}

// applyRandomPartition carves and splits based on the ops bytes and
// returns the partition.
func applyRandomPartition(tr *Tree, ops []uint8, nMDS int) *Partition {
	p := NewPartition(tr, 0)
	var dirs []*Inode
	tr.Walk(func(in *Inode) bool {
		if in.IsDir && in.Parent != nil {
			dirs = append(dirs, in)
		}
		return true
	})
	if len(dirs) == 0 {
		return p
	}
	for i, op := range ops {
		d := dirs[int(op)%len(dirs)]
		switch op % 3 {
		case 0, 1:
			if len(p.EntriesAt(d.Ino)) == 0 {
				e := p.Carve(d)
				p.SetAuth(e.Key, MDSID(int(op)%nMDS))
			}
		case 2:
			es := p.EntriesAt(d.Ino)
			if len(es) == 1 && len(d.ChildrenInFrag(es[0].Key.Frag)) > 1 {
				l, r, ok := p.SplitEntry(es[0].Key)
				if ok {
					p.SetAuth(l.Key, MDSID(i%nMDS))
					p.SetAuth(r.Key, MDSID((i+1)%nMDS))
				}
			}
		}
	}
	return p
}

// TestResolveChainConsistency: for every inode and any partition shape,
// the chain's last element is the governing authority, the chain has no
// adjacent duplicates, and its length-1 equals ResolveWithHops' count.
func TestResolveChainConsistency(t *testing.T) {
	f := func(shape, ops []uint8) bool {
		tr := buildRandomNamespace(shape)
		p := applyRandomPartition(tr, ops, 5)
		ok := true
		tr.Walk(func(in *Inode) bool {
			chain, entry := p.ResolveChain(in)
			if len(chain) == 0 {
				ok = false
				return false
			}
			if chain[len(chain)-1] != entry.Auth {
				ok = false
				return false
			}
			if entry.Auth != p.AuthOf(in) {
				ok = false
				return false
			}
			for i := 1; i < len(chain); i++ {
				if chain[i] == chain[i-1] {
					ok = false
					return false
				}
			}
			e2, hops := p.ResolveWithHops(in)
			if e2 != entry || hops != len(chain)-1 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGovernedSizesTotalProperty: under any carve/split sequence, the
// governed sizes stay non-negative and sum to the namespace size.
func TestGovernedSizesTotalProperty(t *testing.T) {
	f := func(shape, ops []uint8) bool {
		tr := buildRandomNamespace(shape)
		p := applyRandomPartition(tr, ops, 5)
		total := 0
		for _, sz := range p.SubtreeSizes() {
			if sz < 0 {
				return false
			}
			total += sz
		}
		return total == tr.NumInodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestInodesPerMDSTotalProperty: per-MDS inode counts also sum to the
// namespace size.
func TestInodesPerMDSTotalProperty(t *testing.T) {
	f := func(shape, ops []uint8) bool {
		tr := buildRandomNamespace(shape)
		p := applyRandomPartition(tr, ops, 4)
		total := 0
		for _, n := range p.InodesPerMDS(4) {
			if n < 0 {
				return false
			}
			total += n
		}
		return total == tr.NumInodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAbsorbRestoresEnclosingAuth: carving a dir, re-assigning it, and
// absorbing it returns every inode to the enclosing subtree's authority.
func TestAbsorbRestoresEnclosingAuth(t *testing.T) {
	f := func(shape []uint8, pick uint8) bool {
		tr := buildRandomNamespace(shape)
		p := NewPartition(tr, 0)
		var dirs []*Inode
		tr.Walk(func(in *Inode) bool {
			if in.IsDir && in.Parent != nil {
				dirs = append(dirs, in)
			}
			return true
		})
		if len(dirs) == 0 {
			return true
		}
		d := dirs[int(pick)%len(dirs)]

		before := make(map[Ino]MDSID)
		tr.Walk(func(in *Inode) bool {
			before[in.Ino] = p.AuthOf(in)
			return true
		})
		e := p.Carve(d)
		p.SetAuth(e.Key, 3)
		if !p.Absorb(e.Key) {
			return false
		}
		ok := true
		tr.Walk(func(in *Inode) bool {
			if p.AuthOf(in) != before[in.Ino] {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestVisitedCountsBounded: VisitedDesc/VisitedFiles never exceed the
// subtree totals under random visit sequences.
func TestVisitedCountsBounded(t *testing.T) {
	f := func(shape []uint8, visits []uint16) bool {
		tr := buildRandomNamespace(shape)
		var files []*Inode
		tr.Walk(func(in *Inode) bool {
			if !in.IsDir {
				files = append(files, in)
			}
			return true
		})
		if len(files) == 0 {
			return true
		}
		for _, v := range visits {
			in := files[int(v)%len(files)]
			if !in.Hot.EverAccessed() {
				in.MarkVisited()
			}
			in.Hot.Touch(int64(v % 7))
		}
		ok := true
		tr.Walk(func(in *Inode) bool {
			u, total := in.UnvisitedBelow()
			if in.IsDir && (u < 0 || u > total || total != in.SubtreeFiles()) {
				ok = false
				return false
			}
			if in.VisitedDesc > in.SubtreeInodes() {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
