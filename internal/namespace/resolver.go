package namespace

// Resolver memoizes governing-entry resolution per inode. GoverningEntry
// walks the ancestor chain on every call — O(depth) map lookups — but the
// partition mutates rarely (a version bump per SetAuth/Carve/Split/
// Absorb/Merge) while the serve path resolves authority on every op.
// Caching the result per inode and invalidating on Partition.Version()
// makes resolution O(1) amortized.
//
// Invalidation rule: any partition mutation bumps Version(); the resolver
// compares the partition version against the version it last observed and,
// on mismatch, advances a generation counter that logically empties the
// whole cache in O(1) (slots are stamped with the generation that filled
// them, so stale slots simply miss). Inode numbers are dense and never
// reused, so the cache is a flat slice indexed by Ino.
type Resolver struct {
	p     *Partition
	ver   uint64 // partition version the current generation matches
	gen   uint64 // bumped whenever ver falls behind the partition
	slots []resolverSlot
}

type resolverSlot struct {
	gen   uint64
	entry Entry
}

// NewResolver creates a resolver over the partition. The cache starts
// empty; it grows to the highest inode number resolved.
func NewResolver(p *Partition) *Resolver {
	return &Resolver{p: p, ver: p.Version(), gen: 1}
}

// Entry returns the partition entry governing the inode, equal to
// p.GoverningEntry(in) at the partition's current version. Amortized
// O(1): a version check, a slice index, and (on miss) one ancestor walk
// whose result is cached until the next partition mutation.
func (r *Resolver) Entry(in *Inode) Entry {
	if v := r.p.Version(); v != r.ver {
		r.ver = v
		r.gen++
	}
	idx := int(in.Ino)
	if idx < len(r.slots) {
		if s := &r.slots[idx]; s.gen == r.gen {
			return s.entry
		}
	} else {
		r.grow(idx)
	}
	e := r.p.GoverningEntry(in)
	r.slots[idx] = resolverSlot{gen: r.gen, entry: e}
	return e
}

// AuthOf returns the MDS authoritative for the inode (cached).
func (r *Resolver) AuthOf(in *Inode) MDSID {
	return r.Entry(in).Auth
}

func (r *Resolver) grow(idx int) {
	for len(r.slots) <= idx {
		r.slots = append(r.slots, resolverSlot{})
	}
}
