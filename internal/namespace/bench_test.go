package namespace

import "testing"

// benchPartition builds a deep tree with a few split points so that
// resolution walks several levels and the partition has non-trivial
// entries: /a/b/c/d with 50 files in d, /a delegated to MDS 1 and
// /a/b/c to MDS 2.
func benchPartition(b testing.TB) (*Tree, *Partition, *Inode) {
	b.Helper()
	tr := NewTree()
	a, _ := tr.Mkdir(tr.Root(), "a")
	bb, _ := tr.Mkdir(a, "b")
	cc, _ := tr.Mkdir(bb, "c")
	dd, _ := tr.Mkdir(cc, "d")
	var leaf *Inode
	for i := 0; i < 50; i++ {
		f, err := tr.Create(dd, fileName("f", i), 1)
		if err != nil {
			b.Fatal(err)
		}
		leaf = f
	}
	p := NewPartition(tr, 0)
	ea := p.Carve(a)
	p.SetAuth(ea.Key, 1)
	ec := p.Carve(cc)
	p.SetAuth(ec.Key, 2)
	return tr, p, leaf
}

// BenchmarkGoverningEntry is the uncached per-op resolution the serve
// path used before the resolver cache: a parent walk per call.
func BenchmarkGoverningEntry(b *testing.B) {
	_, p, leaf := benchPartition(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.GoverningEntry(leaf)
	}
}

// BenchmarkResolverEntry is the cached replacement: one version check
// and one slice index per call in the steady state.
func BenchmarkResolverEntry(b *testing.B) {
	_, p, leaf := benchPartition(b)
	r := NewResolver(p)
	r.Entry(leaf) // warm the slot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Entry(leaf)
	}
}

// BenchmarkResolveChain allocates a fresh chain per call (the pre-PR3
// relay-path behaviour).
func BenchmarkResolveChain(b *testing.B) {
	_, p, leaf := benchPartition(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = p.ResolveChain(leaf)
	}
}

// BenchmarkResolveChainInto reuses a caller-owned buffer, the way the
// cluster relay path calls it.
func BenchmarkResolveChainInto(b *testing.B) {
	_, p, leaf := benchPartition(b)
	buf := make([]MDSID, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain, _ := p.ResolveChainInto(buf, leaf)
		buf = chain[:0]
	}
}
