package namespace

import (
	"errors"
	"strings"
)

// Ino is a unique inode number.
type Ino uint64

// RootIno is the inode number of the root directory.
const RootIno Ino = 1

// Common namespace errors.
var (
	ErrExists   = errors.New("namespace: entry already exists")
	ErrNotFound = errors.New("namespace: entry not found")
	ErrNotDir   = errors.New("namespace: not a directory")
	ErrIsDir    = errors.New("namespace: is a directory")
	ErrBadName  = errors.New("namespace: invalid name")
	ErrIsRoot   = errors.New("namespace: operation not valid on root")
	ErrNotEmpty = errors.New("namespace: directory not empty")
)

// Inode is a node in the namespace tree: either a directory (with
// children) or a file. The Hot field carries the per-inode access
// history the paper's stats-recording keeps (a boolean queue of the
// last n epochs); it belongs to the inode in the real implementation
// too, so it lives here rather than in a side table.
type Inode struct {
	Ino    Ino
	Name   string
	Parent *Inode
	IsDir  bool
	Size   int64 // file size in bytes; 0 for directories

	children map[string]*Inode
	order    []*Inode // insertion-ordered children for deterministic walks

	// subInodes is the number of inodes in the subtree rooted here,
	// including this inode itself. Maintained incrementally on create
	// and remove so subtree sizing during migration planning is O(1).
	subInodes int

	// subFiles is the number of regular files in the subtree rooted
	// here (a file counts itself). It sizes the unvisited-volume
	// estimates: directory inodes are containers, not scan targets.
	subFiles int

	// nameHash caches HashName(Name) for fragment membership tests.
	nameHash uint32

	// Hot is the runtime access-history annotation.
	Hot Hot

	// VisitedDesc counts the inodes in the subtree rooted here
	// (including this inode) that have ever been accessed. It is
	// maintained by the trace collector on first-ever visits and feeds
	// the spatial-locality factor beta (the unvisited-inode ratio).
	VisitedDesc int

	// VisitedFiles counts only the regular files among VisitedDesc.
	VisitedFiles int
}

// MarkVisited records this inode's first-ever access on every ancestor's
// visited-descendant counter. Callers must invoke it exactly once per
// inode (the trace collector does, on the first access).
func (in *Inode) MarkVisited() {
	isFile := !in.IsDir
	for a := in; a != nil; a = a.Parent {
		a.VisitedDesc++
		if isFile {
			a.VisitedFiles++
		}
	}
}

// UnvisitedBelow returns how many of the regular files in this
// directory's subtree have never been accessed, together with the
// subtree's total file count. Directory inodes are excluded: they are
// containers, not scan targets, and counting them would make fully
// scanned regions look partially unvisited.
func (in *Inode) UnvisitedBelow() (unvisited, total int) {
	total = in.subFiles
	u := total - in.VisitedFiles
	if u < 0 {
		u = 0
	}
	return u, total
}

// SubtreeFiles returns the number of regular files at and below this
// inode.
func (in *Inode) SubtreeFiles() int { return in.subFiles }

// SubtreeInodes returns the number of inodes at and below this inode.
func (in *Inode) SubtreeInodes() int { return in.subInodes }

// NameHash returns the cached fragment hash of the inode's name.
func (in *Inode) NameHash() uint32 { return in.nameHash }

// NumChildren returns the number of direct children (0 for files).
func (in *Inode) NumChildren() int { return len(in.order) }

// Child returns the named child, or nil.
func (in *Inode) Child(name string) *Inode {
	if in.children == nil {
		return nil
	}
	return in.children[name]
}

// Children returns the direct children in insertion order. The returned
// slice is shared; callers must not modify it.
func (in *Inode) Children() []*Inode { return in.order }

// ChildrenInFrag returns the direct children whose name hash falls in
// frag, in insertion order.
func (in *Inode) ChildrenInFrag(f Frag) []*Inode {
	if f.IsWhole() {
		return in.order
	}
	var out []*Inode
	for _, c := range in.order {
		if f.Contains(c.nameHash) {
			out = append(out, c)
		}
	}
	return out
}

// Path returns the absolute path of the inode ("/" for the root).
func (in *Inode) Path() string {
	if in.Parent == nil {
		return "/"
	}
	var parts []string
	for n := in; n.Parent != nil; n = n.Parent {
		parts = append(parts, n.Name)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// Depth returns the number of edges from the root (0 for the root).
func (in *Inode) Depth() int {
	d := 0
	for n := in; n.Parent != nil; n = n.Parent {
		d++
	}
	return d
}

// IsAncestorOf reports whether in is a strict ancestor of other.
func (in *Inode) IsAncestorOf(other *Inode) bool {
	for n := other.Parent; n != nil; n = n.Parent {
		if n == in {
			return true
		}
	}
	return false
}

// inodeSlabSize is how many inodes each slab chunk holds. Slab
// allocation amortizes the per-create heap allocation the tick loop
// would otherwise pay for every new inode.
const inodeSlabSize = 1024

// Tree is the namespace: a rooted inode hierarchy with an inode-number
// registry. Tree is not safe for concurrent mutation; the simulator is
// single-threaded per cluster by design (determinism).
//
// Inode numbers are dense (assigned sequentially from RootIno and never
// reused), so the registry is a flat slice indexed by Ino, and inodes
// are handed out from slab chunks rather than allocated individually.
// A removed inode's slab slot is not recycled — acceptable for a
// simulator where removes are rare and runs are bounded.
type Tree struct {
	root   *Inode
	byIno  []*Inode // indexed by Ino; nil for removed inodes
	nextIn Ino
	slab   []Inode // current slab chunk; alloc() carves from the front
}

// NewTree creates a namespace containing only the root directory.
func NewTree() *Tree {
	t := &Tree{nextIn: RootIno + 1}
	root := t.alloc()
	*root = Inode{
		Ino:       RootIno,
		Name:      "",
		IsDir:     true,
		children:  make(map[string]*Inode),
		subInodes: 1,
		nameHash:  HashName(""),
	}
	t.root = root
	t.byIno = make([]*Inode, RootIno+1, inodeSlabSize)
	t.byIno[RootIno] = root
	return t
}

// alloc returns a zeroed inode from the slab.
func (t *Tree) alloc() *Inode {
	if len(t.slab) == 0 {
		t.slab = make([]Inode, inodeSlabSize)
	}
	in := &t.slab[0]
	t.slab = t.slab[1:]
	return in
}

// Root returns the root directory inode.
func (t *Tree) Root() *Inode { return t.root }

// Get returns the inode with the given number, or nil.
func (t *Tree) Get(ino Ino) *Inode {
	if ino >= Ino(len(t.byIno)) {
		return nil
	}
	return t.byIno[ino]
}

// NumInodes returns the total number of inodes in the tree.
func (t *Tree) NumInodes() int { return t.root.subInodes }

// MaxIno returns the highest inode number ever allocated (inode numbers
// are dense and start at RootIno, so [RootIno, MaxIno] spans every
// inode that exists or existed). The state auditor uses it to sample
// inodes by stride without walking the tree.
func (t *Tree) MaxIno() Ino { return Ino(len(t.byIno)) - 1 }

func (t *Tree) attach(parent *Inode, name string, isDir bool, size int64) (*Inode, error) {
	if parent == nil || !parent.IsDir {
		return nil, ErrNotDir
	}
	if name == "" || strings.ContainsRune(name, '/') {
		return nil, ErrBadName
	}
	if parent.children[name] != nil {
		return nil, ErrExists
	}
	in := t.alloc()
	*in = Inode{
		Ino:       t.nextIn,
		Name:      name,
		Parent:    parent,
		IsDir:     isDir,
		Size:      size,
		subInodes: 1,
		nameHash:  HashName(name),
	}
	if isDir {
		in.children = make(map[string]*Inode)
	} else {
		in.subFiles = 1
	}
	t.nextIn++
	parent.children[name] = in
	parent.order = append(parent.order, in)
	t.byIno = append(t.byIno, in)
	for a := parent; a != nil; a = a.Parent {
		a.subInodes++
		a.subFiles += in.subFiles
	}
	return in, nil
}

// Mkdir creates a directory under parent.
func (t *Tree) Mkdir(parent *Inode, name string) (*Inode, error) {
	return t.attach(parent, name, true, 0)
}

// Create creates a file of the given size under parent.
func (t *Tree) Create(parent *Inode, name string, size int64) (*Inode, error) {
	return t.attach(parent, name, false, size)
}

// MkdirAll creates every directory along path (like mkdir -p) and
// returns the final one. Path components are separated by '/'.
func (t *Tree) MkdirAll(path string) (*Inode, error) {
	cur := t.root
	for _, part := range splitPath(path) {
		next := cur.Child(part)
		if next == nil {
			var err error
			next, err = t.Mkdir(cur, part)
			if err != nil {
				return nil, err
			}
		} else if !next.IsDir {
			return nil, ErrNotDir
		}
		cur = next
	}
	return cur, nil
}

// Lookup resolves an absolute path to an inode.
func (t *Tree) Lookup(path string) (*Inode, error) {
	cur := t.root
	for _, part := range splitPath(path) {
		if !cur.IsDir {
			return nil, ErrNotDir
		}
		next := cur.Child(part)
		if next == nil {
			return nil, ErrNotFound
		}
		cur = next
	}
	return cur, nil
}

// Remove detaches a file or an empty directory from the tree.
func (t *Tree) Remove(in *Inode) error {
	if in.Parent == nil {
		return ErrIsRoot
	}
	if in.IsDir && len(in.order) > 0 {
		return ErrNotEmpty
	}
	p := in.Parent
	delete(p.children, in.Name)
	for i, c := range p.order {
		if c == in {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	t.byIno[in.Ino] = nil
	for a := p; a != nil; a = a.Parent {
		a.subInodes--
		a.subFiles -= in.subFiles
		a.VisitedDesc -= in.VisitedDesc
		a.VisitedFiles -= in.VisitedFiles
	}
	in.Parent = nil
	return nil
}

// Walk visits every inode in depth-first, insertion order, starting at
// the root. If fn returns false the walk stops.
func (t *Tree) Walk(fn func(*Inode) bool) {
	var rec func(*Inode) bool
	rec = func(in *Inode) bool {
		if !fn(in) {
			return false
		}
		for _, c := range in.order {
			if !rec(c) {
				return false
			}
		}
		return true
	}
	rec(t.root)
}

func splitPath(path string) []string {
	var parts []string
	for _, p := range strings.Split(path, "/") {
		if p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// Hot is the per-inode access history used by the paper's stats
// recording: a boolean queue of the last n epochs (implemented as a
// 64-bit shift register) plus a total access counter. The pattern
// analyzer reads it to classify accesses as recurrent (temporal
// locality) or first-visit (spatial locality).
type Hot struct {
	// Bits holds one bit per recent epoch; bit 0 is the current epoch.
	Bits uint64
	// Epoch is the epoch Bits was last shifted to.
	Epoch int64
	// Count is the total number of accesses ever.
	Count uint32
}

// Touch records an access during the given epoch and reports whether
// the inode had ever been accessed before this call.
func (h *Hot) Touch(epoch int64) (seenBefore bool) {
	seenBefore = h.Count > 0
	h.advance(epoch)
	h.Bits |= 1
	h.Count++
	return seenBefore
}

func (h *Hot) advance(epoch int64) {
	if epoch <= h.Epoch {
		return
	}
	shift := epoch - h.Epoch
	if shift >= 64 {
		h.Bits = 0
	} else {
		h.Bits <<= uint(shift)
	}
	h.Epoch = epoch
}

// AccessedIn reports whether the inode was accessed during the given
// epoch (within the 64-epoch window).
func (h *Hot) AccessedIn(epoch int64) bool {
	d := h.Epoch - epoch
	if d < 0 || d >= 64 {
		return false
	}
	return h.Bits&(1<<uint(d)) != 0
}

// RecentEpochs returns in how many of the last n epochs (ending at the
// given epoch) the inode was accessed.
func (h *Hot) RecentEpochs(epoch int64, n int) int {
	cnt := 0
	for i := int64(0); i < int64(n); i++ {
		if h.AccessedIn(epoch - i) {
			cnt++
		}
	}
	return cnt
}

// EverAccessed reports whether the inode has ever been accessed.
func (h *Hot) EverAccessed() bool { return h.Count > 0 }
