// Package namespace implements the file-system namespace substrate the
// balancers operate on: a hierarchical inode tree, CephFS-style
// directory fragments (dirfrags), and the subtree partition map that
// assigns authority over namespace regions to metadata servers.
//
// The representation deliberately mirrors the structures the paper's
// subtree-selection logic manipulates inside the Ceph MDS: subtrees are
// collections of nested directories and files rooted at a dirfrag, and
// dirfrags are hash partitions of a single directory's children.
package namespace

import (
	"fmt"
	"hash/fnv"
)

// Frag identifies a fragment of a directory's children, in the style of
// CephFS frag_t: the fragment covers every child whose 32-bit name hash
// has Value as its top Bits bits. The zero value (Bits == 0) covers the
// whole directory.
type Frag struct {
	Value uint32
	Bits  uint8
}

// WholeFrag covers an entire directory.
var WholeFrag = Frag{}

// HashName returns the 32-bit hash used to map child names into
// fragments. It is the single hash used everywhere (fragment membership,
// Dir-Hash pinning) so that fragment arithmetic stays consistent. The
// raw FNV-1a value is passed through a murmur-style finalizer because
// fragment membership is decided by the HIGH bits, and plain FNV's high
// bits barely change across sequential names like file00001/file00002 —
// exactly the names workloads generate.
func HashName(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return fmix32(h.Sum32())
}

// fmix32 is the murmur3 32-bit finalizer: a bijective mixer with full
// avalanche, so nearby inputs spread across the whole 32-bit space.
func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Contains reports whether the fragment covers hash h.
func (f Frag) Contains(h uint32) bool {
	if f.Bits == 0 {
		return true
	}
	return h>>(32-uint32(f.Bits)) == f.Value
}

// ContainsFrag reports whether f covers all of g (f is g or an ancestor).
func (f Frag) ContainsFrag(g Frag) bool {
	if f.Bits > g.Bits {
		return false
	}
	return g.Value>>(uint32(g.Bits)-uint32(f.Bits)) == f.Value
}

// IsWhole reports whether the fragment covers the entire directory.
func (f Frag) IsWhole() bool { return f.Bits == 0 }

// Split returns the two halves of the fragment. It panics if the
// fragment is already at maximum depth.
func (f Frag) Split() (Frag, Frag) {
	if f.Bits >= 32 {
		panic("namespace: cannot split a 32-bit fragment")
	}
	left := Frag{Value: f.Value << 1, Bits: f.Bits + 1}
	right := Frag{Value: f.Value<<1 | 1, Bits: f.Bits + 1}
	return left, right
}

// Parent returns the fragment that f was split from. It panics for the
// whole fragment, which has no parent.
func (f Frag) Parent() Frag {
	if f.Bits == 0 {
		panic("namespace: whole fragment has no parent")
	}
	return Frag{Value: f.Value >> 1, Bits: f.Bits - 1}
}

// Sibling returns the other half of f's parent. It panics for the whole
// fragment.
func (f Frag) Sibling() Frag {
	if f.Bits == 0 {
		panic("namespace: whole fragment has no sibling")
	}
	return Frag{Value: f.Value ^ 1, Bits: f.Bits}
}

// String renders the fragment like CephFS ("*" for whole, value/bits
// otherwise).
func (f Frag) String() string {
	if f.Bits == 0 {
		return "*"
	}
	return fmt.Sprintf("%0*b/%d", f.Bits, f.Value, f.Bits)
}
