//go:build !race

// Steady-state allocation contracts for the hot resolution path. The
// assertions use testing.AllocsPerRun, which is meaningless under the
// race detector (the runtime inserts extra allocations), so this file
// is excluded from `make race` / `make check`.

package namespace

import "testing"

func TestResolverEntryZeroAlloc(t *testing.T) {
	_, p, leaf := benchPartition(t)
	r := NewResolver(p)
	r.Entry(leaf) // warm the slot
	if n := testing.AllocsPerRun(100, func() { r.Entry(leaf) }); n != 0 {
		t.Fatalf("Resolver.Entry allocates %.1f per call in the steady state, want 0", n)
	}
}

func TestResolveChainIntoZeroAlloc(t *testing.T) {
	_, p, leaf := benchPartition(t)
	buf := make([]MDSID, 0, 8)
	buf, _ = p.ResolveChainInto(buf, leaf) // size the buffer
	buf = buf[:0]
	if n := testing.AllocsPerRun(100, func() {
		chain, _ := p.ResolveChainInto(buf, leaf)
		buf = chain[:0]
	}); n != 0 {
		t.Fatalf("ResolveChainInto allocates %.1f per call with a warm buffer, want 0", n)
	}
}
