package client

import (
	"testing"

	"repro/internal/namespace"
	"repro/internal/workload"
)

func specOf(ops []workload.Op, start int64, rate float64) workload.ClientSpec {
	return workload.ClientSpec{Stream: workload.NewOpList(ops), StartTick: start, RateScale: rate}
}

func TestClientBasics(t *testing.T) {
	ops := []workload.Op{{Kind: workload.OpLookup}, {Kind: workload.OpOpen}}
	c := New(3, specOf(ops, 5, 1), 10)
	if c.ID != 3 || c.StartTick() != 5 || c.Rate() != 10 {
		t.Fatal("constructor fields")
	}
	if c.Done() {
		t.Fatal("fresh client done")
	}
}

func TestClientRateScaleAndDefaults(t *testing.T) {
	c := New(0, specOf(nil, 0, 0.5), 100)
	if c.Rate() != 50 {
		t.Fatalf("rate = %v", c.Rate())
	}
	// Zero rate scale falls back to base rate.
	c2 := New(0, specOf(nil, 0, 0), 100)
	if c2.Rate() != 100 {
		t.Fatalf("zero-scale rate = %v", c2.Rate())
	}
	// Degenerate rates clamp to 1.
	c3 := New(0, specOf(nil, 0, 1), 0)
	if c3.Rate() != 1 {
		t.Fatalf("degenerate rate = %v", c3.Rate())
	}
}

func TestAccrueCreditWholeAndFractional(t *testing.T) {
	c := New(0, specOf(nil, 0, 1), 2.5)
	if n := c.AccrueCredit(); n != 2 {
		t.Fatalf("first tick credit = %d", n)
	}
	if n := c.AccrueCredit(); n != 3 { // 0.5 carried + 2.5
		t.Fatalf("second tick credit = %d", n)
	}
}

func TestAccrueCreditNoBanking(t *testing.T) {
	// A long stall must not bank an unbounded burst: the carried
	// fraction is capped at one tick's rate.
	c := New(0, specOf(nil, 0, 1), 3)
	for i := 0; i < 10; i++ {
		_ = c.AccrueCredit()
	}
	if n := c.AccrueCredit(); n > 6 {
		t.Fatalf("burst after stall = %d, want <= 6", n)
	}
}

func TestNextOpRetainComplete(t *testing.T) {
	ops := []workload.Op{{Kind: workload.OpLookup}, {Kind: workload.OpOpen}}
	c := New(0, specOf(ops, 0, 1), 1)
	op1, ok := c.NextOp(0)
	if !ok || op1.Kind != workload.OpLookup {
		t.Fatal("first op")
	}
	// Stall: the same op must come back.
	c.Retain()
	op1b, ok := c.NextOp(1)
	if !ok || op1b.Kind != workload.OpLookup {
		t.Fatal("retained op must repeat")
	}
	// Completed at tick 2 after first attempt at tick 0: latency 3.
	if lat := c.CompleteOp(2); lat != 3 {
		t.Fatalf("latency = %d, want 3", lat)
	}
	op2, ok := c.NextOp(3)
	if !ok || op2.Kind != workload.OpOpen {
		t.Fatal("second op")
	}
	// Served on its first attempt: latency 1.
	if lat := c.CompleteOp(3); lat != 1 {
		t.Fatalf("latency = %d, want 1", lat)
	}
	if _, ok := c.NextOp(4); ok {
		t.Fatal("stream must end")
	}
	if c.OpsDone() != 2 || c.StallTicks() != 1 {
		t.Fatalf("opsDone=%d stalls=%d", c.OpsDone(), c.StallTicks())
	}
}

func TestMaybeFinish(t *testing.T) {
	ops := []workload.Op{{Kind: workload.OpOpen}}
	c := New(0, specOf(ops, 0, 1), 1)
	if c.MaybeFinish(1) {
		t.Fatal("cannot finish before the stream is drained")
	}
	op, _ := c.NextOp(0)
	_ = op
	c.CompleteOp(0)
	if _, ok := c.NextOp(1); ok {
		t.Fatal("stream should be done")
	}
	// Outstanding data debt blocks completion.
	c.AddDebt(100)
	if c.MaybeFinish(7) {
		t.Fatal("cannot finish with data debt")
	}
	c.PayDebt(100)
	if !c.MaybeFinish(9) {
		t.Fatal("should finish")
	}
	if c.DoneTick() != 9 || !c.Done() {
		t.Fatal("done bookkeeping")
	}
	if c.MaybeFinish(10) {
		t.Fatal("finish must fire exactly once")
	}
}

func TestDebtAccounting(t *testing.T) {
	c := New(0, specOf(nil, 0, 1), 1)
	c.AddDebt(100)
	c.AddDebt(-5) // ignored
	if c.Debt() != 100 {
		t.Fatalf("debt = %d", c.Debt())
	}
	c.PayDebt(30)
	if c.Debt() != 70 {
		t.Fatalf("debt = %d", c.Debt())
	}
	c.PayDebt(1000)
	if c.Debt() != 0 {
		t.Fatal("overpayment must clamp at zero")
	}
}

func TestAuthCacheLRU(t *testing.T) {
	c := New(0, specOf(nil, 0, 1), 1)
	key := func(i int) namespace.FragKey {
		return namespace.FragKey{Dir: namespace.Ino(i + 10), Frag: namespace.WholeFrag}
	}
	// Fill beyond capacity.
	for i := 0; i < DefaultAuthCacheSize+10; i++ {
		c.CacheStore(key(i), namespace.MDSID(i%5))
	}
	// The oldest entries were evicted.
	if _, ok := c.CacheLookup(key(0)); ok {
		t.Fatal("oldest entry should be evicted")
	}
	// The newest survive with their authority.
	last := DefaultAuthCacheSize + 9
	auth, ok := c.CacheLookup(key(last))
	if !ok || auth != namespace.MDSID(last%5) {
		t.Fatalf("newest entry lost: ok=%v auth=%v", ok, auth)
	}
}

func TestAuthCacheLRUTouchOnLookup(t *testing.T) {
	c := New(0, specOf(nil, 0, 1), 1)
	key := func(i int) namespace.FragKey {
		return namespace.FragKey{Dir: namespace.Ino(i + 10), Frag: namespace.WholeFrag}
	}
	for i := 0; i < DefaultAuthCacheSize; i++ {
		c.CacheStore(key(i), 0)
	}
	// Touch key 0 so it becomes most-recent, then overflow by one.
	if _, ok := c.CacheLookup(key(0)); !ok {
		t.Fatal("key 0 should be cached")
	}
	c.CacheStore(key(DefaultAuthCacheSize), 1)
	if _, ok := c.CacheLookup(key(0)); !ok {
		t.Fatal("recently used entry must survive eviction")
	}
	if _, ok := c.CacheLookup(key(1)); ok {
		t.Fatal("least recently used entry must be evicted")
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := New(0, specOf(nil, 0, 1), 1)
	k := namespace.FragKey{Dir: 42, Frag: namespace.WholeFrag}
	c.CacheStore(k, 1)
	c.CacheStore(k, 3)
	auth, ok := c.CacheLookup(k)
	if !ok || auth != 3 {
		t.Fatal("update must overwrite the cached authority")
	}
}

func TestClearBackoffCancelsRetryWait(t *testing.T) {
	ops := []workload.Op{{Kind: workload.OpLookup}}
	c := New(0, specOf(ops, 0, 1), 1)
	c.AccrueCredit()
	if _, ok := c.NextOp(10); !ok {
		t.Fatal("op expected")
	}
	// Repeated down-rank failures: backoff grows past the recovery
	// point, so without clearing the client would idle long after the
	// rank is back.
	for i := 0; i < 5; i++ {
		c.RetainBackoff(10, 2)
	}
	if c.Backoff() != 16 || c.RetryReady(11) {
		t.Fatalf("backoff not engaged: backoff=%d", c.Backoff())
	}
	if c.BackoffRank() != 2 {
		t.Fatalf("backoff rank = %v, want 2", c.BackoffRank())
	}
	c.ClearBackoff()
	if c.Backoff() != 0 {
		t.Fatalf("backoff not cleared: %d", c.Backoff())
	}
	if c.BackoffRank() != -1 {
		t.Fatalf("backoff rank not cleared: %v", c.BackoffRank())
	}
	if !c.RetryReady(11) {
		t.Fatal("client must be ready to retry immediately after ClearBackoff")
	}
}

func TestPeekOpQueueDrawAhead(t *testing.T) {
	ops := []workload.Op{
		{Kind: workload.OpLookup},
		{Kind: workload.OpGetattr},
		{Kind: workload.OpOpen},
	}
	c := New(0, specOf(ops, 0, 1), 4)
	// Peeking ahead draws and issues without completing.
	op2, ok := c.PeekOp(2, 5)
	if !ok || op2.Kind != workload.OpOpen {
		t.Fatal("peek at depth 2")
	}
	if c.Issued() != 3 || c.PendingOps() != 3 || c.OpsDone() != 0 {
		t.Fatalf("issued=%d pending=%d done=%d", c.Issued(), c.PendingOps(), c.OpsDone())
	}
	// Head stays stable across peeks; completes pop in FIFO order.
	if op0, _ := c.PeekOp(0, 5); op0.Kind != workload.OpLookup {
		t.Fatal("head changed")
	}
	c.CompleteOp(5)
	if op0, _ := c.PeekOp(0, 5); op0.Kind != workload.OpGetattr {
		t.Fatal("pop order")
	}
	c.CompleteOp(5)
	c.CompleteOp(6)
	if _, ok := c.PeekOp(0, 6); ok {
		t.Fatal("stream must be exhausted")
	}
	if !c.Idle() || c.Issued() != c.OpsDone() || c.PendingOps() != 0 {
		t.Fatalf("final accounting: issued=%d done=%d pending=%d", c.Issued(), c.OpsDone(), c.PendingOps())
	}
}

func TestPeekOpLatencyFromDrawTick(t *testing.T) {
	ops := []workload.Op{{Kind: workload.OpLookup}, {Kind: workload.OpOpen}}
	c := New(0, specOf(ops, 0, 1), 2)
	// Both ops drawn at tick 3; second completes at tick 5 -> latency 3.
	if _, ok := c.PeekOp(1, 3); !ok {
		t.Fatal("draw ahead")
	}
	if lat := c.CompleteOp(3); lat != 1 {
		t.Fatalf("head latency = %d", lat)
	}
	if lat := c.CompleteOp(5); lat != 3 {
		t.Fatalf("queued latency = %d, want 3", lat)
	}
}
