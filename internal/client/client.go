// Package client models the workload-generating clients: each client
// runs one operation stream in a closed loop — it issues its next
// metadata op only after the previous one (and its data transfer, when
// the data path is enabled) has completed, at a bounded per-tick rate.
// An op routed to a saturated or frozen MDS blocks the client for the
// rest of the tick, which is how metadata imbalance stretches job
// completion time.
package client

import (
	"repro/internal/namespace"
	"repro/internal/workload"
)

// Client is one workload-driving client.
type Client struct {
	ID int
	// Tenant is the owning tenant's index from the workload spec (0 in
	// single-tenant runs). The engine's admission phase charges the
	// client's ops to this tenant's token bucket when QoS is enabled.
	Tenant int

	stream    workload.Stream
	startTick int64
	rate      float64 // ops per tick

	credit float64 // fractional-op accumulator
	// pending is a FIFO of issued-but-unserved ops. The engine draws a
	// run of ops ahead of serving them so it can route a whole batch to
	// one rank; ops that stall stay queued and the head is re-attempted
	// first. Held by value (not pointers) so stream ops never escape to
	// the heap; head-index popping keeps the backing array reusable, so
	// the steady-state tick path stays allocation-free.
	pending []pendingOp
	head    int   // index of the queue head within pending
	debt    int64 // unpaid data bytes
	// inflight counts queued ops that have been flushed into a server's
	// group-commit journal in write-back mode. They stay in pending (the
	// client remains the source of truth until the batch is applied), so
	// issued == opsDone + pending always holds; inflight only partitions
	// the queue into [journaled prefix | locally buffered suffix].
	inflight int64

	streamDone bool
	readsTree  bool // stream consults the live namespace in Next()
	done       bool
	doneTick   int64
	issued     int64 // ops drawn from the stream (completed or pending)
	opsDone    int64
	stallTicks int64

	// Retry backoff for ops that failed against a crashed rank: instead
	// of re-attempting every tick while the target is down (silent
	// spinning), the client waits backoff ticks, doubling up to
	// MaxBackoffTicks per consecutive failure, and resets on success.
	backoff     int64            // current backoff interval, 0 = none
	retryAt     int64            // earliest tick the pending op may be re-attempted
	retries     int64            // failed attempts that entered backoff
	backoffRank namespace.MDSID // rank whose failure drove the backoff (-1 = none)

	cache authCache
}

// pendingOp is one queued op plus the tick it was drawn from the
// stream, which is when its latency clock starts.
type pendingOp struct {
	op    workload.Op
	since int64
}

// MaxBackoffTicks caps the exponential retry backoff. With 1-second
// ticks this is a 16 s ceiling, on the order of real client-side
// request timeouts.
const MaxBackoffTicks = 16

// authCache is the client's subtree-authority cache. CephFS clients
// learn which MDS owns which subtree and contact it directly; a request
// is forwarded between MDSs only when the client's mapping is missing
// or stale. The cache is a small LRU, so a namespace fragmented into
// very many subtrees (Dir-Hash) keeps missing and keeps forwarding —
// the effect Figure 14 measures.
type authCache struct {
	cap   int
	clock int64
	m     map[namespace.FragKey]authEnt
}

type authEnt struct {
	auth namespace.MDSID
	use  int64
}

// DefaultAuthCacheSize is the per-client authority cache capacity.
const DefaultAuthCacheSize = 64

// CacheLookup reports the cached authority for a subtree, if any.
func (c *Client) CacheLookup(key namespace.FragKey) (namespace.MDSID, bool) {
	e, ok := c.cache.m[key]
	if !ok {
		return 0, false
	}
	c.cache.clock++
	e.use = c.cache.clock
	c.cache.m[key] = e
	return e.auth, true
}

// CacheStore records a freshly learned subtree authority, evicting the
// least recently used mapping when full.
func (c *Client) CacheStore(key namespace.FragKey, auth namespace.MDSID) {
	if c.cache.m == nil {
		c.cache.m = make(map[namespace.FragKey]authEnt, c.cache.cap)
	}
	c.cache.clock++
	if _, ok := c.cache.m[key]; !ok && len(c.cache.m) >= c.cache.cap {
		var oldK namespace.FragKey
		oldUse := int64(1<<62 - 1)
		for k, e := range c.cache.m {
			if e.use < oldUse {
				oldUse = e.use
				oldK = k
			}
		}
		delete(c.cache.m, oldK)
	}
	c.cache.m[key] = authEnt{auth: auth, use: c.cache.clock}
}

// New creates a client from its workload spec with the given base rate
// (ops per tick before the per-client RateScale).
func New(id int, spec workload.ClientSpec, baseRate float64) *Client {
	rate := baseRate * spec.RateScale
	if spec.RateScale == 0 {
		rate = baseRate
	}
	if rate <= 0 {
		rate = 1
	}
	readsTree := false
	if tr, ok := spec.Stream.(workload.TreeReader); ok {
		readsTree = tr.ReadsTree()
	}
	return &Client{
		ID:          id,
		Tenant:      spec.Tenant,
		stream:      spec.Stream,
		startTick:   spec.StartTick,
		rate:        rate,
		backoffRank: -1,
		readsTree:   readsTree,
		cache:       authCache{cap: DefaultAuthCacheSize},
	}
}

// StreamReadsTree reports whether the client's stream consults the live
// namespace when drawing ops (see workload.TreeReader). The engine must
// not draw ahead of an unadopted create for such streams.
func (c *Client) StreamReadsTree() bool { return c.readsTree }

// StreamDrained reports whether the client's stream is exhausted: every
// op it will ever issue is already queued. The write-back planner uses
// it for the tail flush (a final short run would otherwise wait out
// FlushEvery for ops that can never arrive).
func (c *Client) StreamDrained() bool { return c.streamDone }

// StartTick returns the tick at which the client begins issuing.
func (c *Client) StartTick() int64 { return c.startTick }

// Rate returns the client's op rate per tick.
func (c *Client) Rate() float64 { return c.rate }

// Done reports whether the client has finished its job.
func (c *Client) Done() bool { return c.done }

// DoneTick returns when the client finished (valid when Done).
func (c *Client) DoneTick() int64 { return c.doneTick }

// OpsDone returns the number of completed operations.
func (c *Client) OpsDone() int64 { return c.opsDone }

// StallTicks returns how many ticks the client spent blocked.
func (c *Client) StallTicks() int64 { return c.stallTicks }

// Debt returns the unpaid data bytes blocking the client.
func (c *Client) Debt() int64 { return c.debt }

// AddDebt charges the client data bytes to move before its next op.
func (c *Client) AddDebt(bytes int64) {
	if bytes > 0 {
		c.debt += bytes
	}
}

// PayDebt credits granted bytes against the client's data debt.
func (c *Client) PayDebt(bytes int64) {
	c.debt -= bytes
	if c.debt < 0 {
		c.debt = 0
	}
}

// AccrueCredit adds one tick's worth of rate and returns the whole
// number of ops the client may issue this tick.
func (c *Client) AccrueCredit() int {
	c.credit += c.rate
	n := int(c.credit)
	c.credit -= float64(n)
	// Cap the carried fraction so long stalls don't bank a burst.
	if c.credit > c.rate {
		c.credit = c.rate
	}
	return n
}

// NextOp returns the op to attempt next: the retained (stalled) queue
// head if any, otherwise the next from the stream, stamping its draw
// tick. ok=false means the stream is exhausted and the queue is empty.
func (c *Client) NextOp(tick int64) (workload.Op, bool) {
	return c.PeekOp(0, tick)
}

// PeekOp returns the k-th queued op (0 = the one to attempt next),
// drawing from the stream as needed to fill the queue that far. Drawn
// ops are issued immediately but stay queued until CompleteOp pops
// them. ok=false means the stream ran dry before position k.
func (c *Client) PeekOp(k int, tick int64) (workload.Op, bool) {
	for c.head+k >= len(c.pending) {
		if c.streamDone {
			return workload.Op{}, false
		}
		op, ok := c.stream.Next()
		if !ok {
			c.streamDone = true
			return workload.Op{}, false
		}
		c.pending = append(c.pending, pendingOp{op: op, since: tick})
		c.issued++
	}
	return c.pending[c.head+k].op, true
}

// PeekSince returns the tick the k-th queued op was drawn from the
// stream. The op must exist (see PeekOp); the write-back planner uses
// the draw tick of the oldest buffered op to age-trigger flushes.
func (c *Client) PeekSince(k int) int64 { return c.pending[c.head+k].since }

// OpAt returns the k-th queued op without consulting the stream. The
// op must already be queued (see PeekOp): the write-back serve path
// reads admitted batch ops, which are always journaled and queued, so
// it can skip PeekOp's draw loop on its per-op fast path.
func (c *Client) OpAt(k int) workload.Op { return c.pending[c.head+k].op }

// MarkInflight records that the first n buffered ops past the current
// in-flight prefix have been flushed into a group-commit journal.
func (c *Client) MarkInflight(n int) { c.inflight += int64(n) }

// Inflight returns how many queued ops sit in server-side journals.
func (c *Client) Inflight() int64 { return c.inflight }

// RequeueInflight returns n journaled ops to the locally buffered state
// after their batch was dropped (rank crash with an unapplied journal).
// The ops never left pending, so this is exactly-once by construction:
// the batch object is gone and the ops re-flush like fresh buffers.
func (c *Client) RequeueInflight(n int64) {
	c.inflight -= n
	if c.inflight < 0 {
		c.inflight = 0
	}
}

// BufferedOps returns how many queued ops are still buffered locally
// (issued but not yet flushed to any journal).
func (c *Client) BufferedOps() int64 { return c.PendingOps() - c.inflight }

// Issued returns how many ops the client has drawn from its stream.
// Every issued op is either completed or still queued — the
// conservation law the state auditor checks.
func (c *Client) Issued() int64 { return c.issued }

// HasPending reports whether the client holds issued-but-unserved ops.
func (c *Client) HasPending() bool { return c.head < len(c.pending) }

// PendingOps returns how many issued-but-unserved ops the client holds.
func (c *Client) PendingOps() int64 { return int64(len(c.pending) - c.head) }

// Idle reports that the client has nothing left to attempt: its stream
// is exhausted and its queue is empty.
func (c *Client) Idle() bool { return c.streamDone && c.head >= len(c.pending) }

// Credit returns the fractional-op accumulator (bounded by one tick's
// rate; see AccrueCredit).
func (c *Client) Credit() float64 { return c.credit }

// RetryAt returns the earliest tick the pending op may be re-attempted
// (0 when the client is not backing off).
func (c *Client) RetryAt() int64 { return c.retryAt }

// Retain records that the current op stalled and must be retried. The
// retry happens on the next tick (a saturated or frozen target usually
// clears within one tick, so no backoff applies).
func (c *Client) Retain() { c.stallTicks++ }

// RetainBackoff records that the current op failed against the given
// down rank and schedules the retry with capped exponential backoff:
// 1, 2, 4, … up to MaxBackoffTicks after consecutive failures. Success
// (CompleteOp) resets the backoff. The failing rank is remembered so
// that recovery of an unrelated rank does not release the client (see
// BackoffRank).
func (c *Client) RetainBackoff(tick int64, rank namespace.MDSID) {
	c.stallTicks++
	c.retries++
	if c.backoff < 1 {
		c.backoff = 1
	} else {
		c.backoff *= 2
		if c.backoff > MaxBackoffTicks {
			c.backoff = MaxBackoffTicks
		}
	}
	c.retryAt = tick + c.backoff
	c.backoffRank = rank
}

// BackoffRank returns the rank whose down state drove the current
// backoff, or -1 when the client is not backing off.
func (c *Client) BackoffRank() namespace.MDSID { return c.backoffRank }

// RetryReady reports whether the client may attempt an op at the given
// tick (false only while backing off after down-rank failures).
func (c *Client) RetryReady(tick int64) bool { return tick >= c.retryAt }

// ClearBackoff cancels any pending retry backoff immediately. The
// cluster calls it when a crashed rank recovers: the failures that
// drove the backoff are gone, so making the client wait out the
// residual window would only extend the outage it observes.
func (c *Client) ClearBackoff() {
	c.backoff = 0
	c.retryAt = 0
	c.backoffRank = -1
}

// Retries returns how many op attempts failed into backoff.
func (c *Client) Retries() int64 { return c.retries }

// Backoff returns the current backoff interval in ticks (0 when the
// client is not backing off).
func (c *Client) Backoff() int64 { return c.backoff }

// CompleteOp marks the queue head as served, pops it, and returns its
// latency in ticks (1 for an op served in the tick it was drawn).
func (c *Client) CompleteOp(tick int64) int64 {
	lat := tick - c.pending[c.head].since + 1
	if lat < 1 {
		lat = 1
	}
	c.pending[c.head] = pendingOp{}
	c.head++
	if c.head == len(c.pending) {
		// Queue drained: rewind to reuse the backing array.
		c.pending = c.pending[:0]
		c.head = 0
	}
	c.opsDone++
	if c.inflight > 0 {
		// Write-back mode: the served op was the head of a journaled
		// batch; shrink the in-flight prefix with it.
		c.inflight--
	}
	c.backoff = 0
	c.retryAt = 0
	c.backoffRank = -1
	return lat
}

// MaybeFinish marks the client done when its stream is exhausted, its
// queue is empty, and all data debt is paid. It returns true on the
// transition.
func (c *Client) MaybeFinish(tick int64) bool {
	if c.done || !c.Idle() || c.debt > 0 {
		return false
	}
	c.done = true
	c.doneTick = tick
	return true
}
