// Package client models the workload-generating clients: each client
// runs one operation stream in a closed loop — it issues its next
// metadata op only after the previous one (and its data transfer, when
// the data path is enabled) has completed, at a bounded per-tick rate.
// An op routed to a saturated or frozen MDS blocks the client for the
// rest of the tick, which is how metadata imbalance stretches job
// completion time.
package client

import (
	"repro/internal/namespace"
	"repro/internal/workload"
)

// Client is one workload-driving client.
type Client struct {
	ID int

	stream    workload.Stream
	startTick int64
	rate      float64 // ops per tick

	credit float64 // fractional-op accumulator
	// pending is held by value: a pointer here would force every op
	// returned by the stream to escape to the heap (one allocation per
	// op on the serve path).
	pending      workload.Op
	hasPending   bool
	pendingSince int64 // tick the pending op was first attempted
	debt         int64 // unpaid data bytes

	streamDone bool
	done       bool
	doneTick   int64
	issued     int64 // ops drawn from the stream (completed or pending)
	opsDone    int64
	stallTicks int64

	// Retry backoff for ops that failed against a crashed rank: instead
	// of re-attempting every tick while the target is down (silent
	// spinning), the client waits backoff ticks, doubling up to
	// MaxBackoffTicks per consecutive failure, and resets on success.
	backoff int64 // current backoff interval, 0 = none
	retryAt int64 // earliest tick the pending op may be re-attempted
	retries int64 // failed attempts that entered backoff

	cache authCache
}

// MaxBackoffTicks caps the exponential retry backoff. With 1-second
// ticks this is a 16 s ceiling, on the order of real client-side
// request timeouts.
const MaxBackoffTicks = 16

// authCache is the client's subtree-authority cache. CephFS clients
// learn which MDS owns which subtree and contact it directly; a request
// is forwarded between MDSs only when the client's mapping is missing
// or stale. The cache is a small LRU, so a namespace fragmented into
// very many subtrees (Dir-Hash) keeps missing and keeps forwarding —
// the effect Figure 14 measures.
type authCache struct {
	cap   int
	clock int64
	m     map[namespace.FragKey]authEnt
}

type authEnt struct {
	auth namespace.MDSID
	use  int64
}

// DefaultAuthCacheSize is the per-client authority cache capacity.
const DefaultAuthCacheSize = 64

// CacheLookup reports the cached authority for a subtree, if any.
func (c *Client) CacheLookup(key namespace.FragKey) (namespace.MDSID, bool) {
	e, ok := c.cache.m[key]
	if !ok {
		return 0, false
	}
	c.cache.clock++
	e.use = c.cache.clock
	c.cache.m[key] = e
	return e.auth, true
}

// CacheStore records a freshly learned subtree authority, evicting the
// least recently used mapping when full.
func (c *Client) CacheStore(key namespace.FragKey, auth namespace.MDSID) {
	if c.cache.m == nil {
		c.cache.m = make(map[namespace.FragKey]authEnt, c.cache.cap)
	}
	c.cache.clock++
	if _, ok := c.cache.m[key]; !ok && len(c.cache.m) >= c.cache.cap {
		var oldK namespace.FragKey
		oldUse := int64(1<<62 - 1)
		for k, e := range c.cache.m {
			if e.use < oldUse {
				oldUse = e.use
				oldK = k
			}
		}
		delete(c.cache.m, oldK)
	}
	c.cache.m[key] = authEnt{auth: auth, use: c.cache.clock}
}

// New creates a client from its workload spec with the given base rate
// (ops per tick before the per-client RateScale).
func New(id int, spec workload.ClientSpec, baseRate float64) *Client {
	rate := baseRate * spec.RateScale
	if spec.RateScale == 0 {
		rate = baseRate
	}
	if rate <= 0 {
		rate = 1
	}
	return &Client{
		ID:        id,
		stream:    spec.Stream,
		startTick: spec.StartTick,
		rate:      rate,
		cache:     authCache{cap: DefaultAuthCacheSize},
	}
}

// StartTick returns the tick at which the client begins issuing.
func (c *Client) StartTick() int64 { return c.startTick }

// Rate returns the client's op rate per tick.
func (c *Client) Rate() float64 { return c.rate }

// Done reports whether the client has finished its job.
func (c *Client) Done() bool { return c.done }

// DoneTick returns when the client finished (valid when Done).
func (c *Client) DoneTick() int64 { return c.doneTick }

// OpsDone returns the number of completed operations.
func (c *Client) OpsDone() int64 { return c.opsDone }

// StallTicks returns how many ticks the client spent blocked.
func (c *Client) StallTicks() int64 { return c.stallTicks }

// Debt returns the unpaid data bytes blocking the client.
func (c *Client) Debt() int64 { return c.debt }

// AddDebt charges the client data bytes to move before its next op.
func (c *Client) AddDebt(bytes int64) {
	if bytes > 0 {
		c.debt += bytes
	}
}

// PayDebt credits granted bytes against the client's data debt.
func (c *Client) PayDebt(bytes int64) {
	c.debt -= bytes
	if c.debt < 0 {
		c.debt = 0
	}
}

// AccrueCredit adds one tick's worth of rate and returns the whole
// number of ops the client may issue this tick.
func (c *Client) AccrueCredit() int {
	c.credit += c.rate
	n := int(c.credit)
	c.credit -= float64(n)
	// Cap the carried fraction so long stalls don't bank a burst.
	if c.credit > c.rate {
		c.credit = c.rate
	}
	return n
}

// NextOp returns the op to attempt next: the retained (stalled) op if
// any, otherwise the next from the stream, stamping its first-attempt
// tick. ok=false means the stream is exhausted.
func (c *Client) NextOp(tick int64) (workload.Op, bool) {
	if c.hasPending {
		return c.pending, true
	}
	if c.streamDone {
		return workload.Op{}, false
	}
	op, ok := c.stream.Next()
	if !ok {
		c.streamDone = true
		return workload.Op{}, false
	}
	c.pending = op
	c.hasPending = true
	c.pendingSince = tick
	c.issued++
	return op, true
}

// Issued returns how many ops the client has drawn from its stream.
// Every issued op is either completed or the current pending op — the
// conservation law the state auditor checks.
func (c *Client) Issued() int64 { return c.issued }

// HasPending reports whether the client holds an issued-but-unserved op.
func (c *Client) HasPending() bool { return c.hasPending }

// Credit returns the fractional-op accumulator (bounded by one tick's
// rate; see AccrueCredit).
func (c *Client) Credit() float64 { return c.credit }

// RetryAt returns the earliest tick the pending op may be re-attempted
// (0 when the client is not backing off).
func (c *Client) RetryAt() int64 { return c.retryAt }

// Retain records that the current op stalled and must be retried. The
// retry happens on the next tick (a saturated or frozen target usually
// clears within one tick, so no backoff applies).
func (c *Client) Retain() { c.stallTicks++ }

// RetainBackoff records that the current op failed against a down rank
// and schedules the retry with capped exponential backoff: 1, 2, 4, …
// up to MaxBackoffTicks after consecutive failures. Success
// (CompleteOp) resets the backoff.
func (c *Client) RetainBackoff(tick int64) {
	c.stallTicks++
	c.retries++
	if c.backoff < 1 {
		c.backoff = 1
	} else {
		c.backoff *= 2
		if c.backoff > MaxBackoffTicks {
			c.backoff = MaxBackoffTicks
		}
	}
	c.retryAt = tick + c.backoff
}

// RetryReady reports whether the client may attempt an op at the given
// tick (false only while backing off after down-rank failures).
func (c *Client) RetryReady(tick int64) bool { return tick >= c.retryAt }

// ClearBackoff cancels any pending retry backoff immediately. The
// cluster calls it when a crashed rank recovers: the failures that
// drove the backoff are gone, so making the client wait out the
// residual window would only extend the outage it observes.
func (c *Client) ClearBackoff() {
	c.backoff = 0
	c.retryAt = 0
}

// Retries returns how many op attempts failed into backoff.
func (c *Client) Retries() int64 { return c.retries }

// Backoff returns the current backoff interval in ticks (0 when the
// client is not backing off).
func (c *Client) Backoff() int64 { return c.backoff }

// CompleteOp marks the current op as served and returns its latency in
// ticks (1 for an op served on its first attempt).
func (c *Client) CompleteOp(tick int64) int64 {
	lat := tick - c.pendingSince + 1
	if lat < 1 {
		lat = 1
	}
	c.pending = workload.Op{}
	c.hasPending = false
	c.opsDone++
	c.backoff = 0
	c.retryAt = 0
	return lat
}

// MaybeFinish marks the client done when its stream is exhausted and
// all data debt is paid. It returns true on the transition.
func (c *Client) MaybeFinish(tick int64) bool {
	if c.done || !c.streamDone || c.hasPending || c.debt > 0 {
		return false
	}
	c.done = true
	c.doneTick = tick
	return true
}
