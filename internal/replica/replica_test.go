package replica

import (
	"testing"

	"repro/internal/namespace"
)

func key(dir namespace.Ino) namespace.FragKey {
	return namespace.FragKey{Dir: dir, Frag: namespace.WholeFrag}
}

func entry(dir namespace.Ino, auth namespace.MDSID) namespace.Entry {
	return namespace.Entry{Key: key(dir), Auth: auth}
}

// testEnv builds an Env over plain maps: stats[rank][key] is the
// primary's cumulative (ops, heat) reading, everything is alive and
// eligible unless listed, and load defaults to zero.
type testEnv struct {
	ranks  int
	down   map[namespace.MDSID]bool
	noImp  map[namespace.MDSID]bool
	load   map[namespace.MDSID]float64
	ops    map[namespace.FragKey]int64
	heat   map[namespace.FragKey]float64
	inodes map[namespace.FragKey]int

	resyncs []namespace.MDSID
}

func (te *testEnv) env() Env {
	return Env{
		Ranks: te.ranks,
		Eligible: func(id namespace.MDSID) bool {
			return !te.down[id] && !te.noImp[id]
		},
		Load: func(id namespace.MDSID) float64 { return te.load[id] },
		Stats: func(id namespace.MDSID, k namespace.FragKey) (int64, float64) {
			return te.ops[k], te.heat[k]
		},
		Inodes: func(k namespace.FragKey) int {
			if n := te.inodes[k]; n > 0 {
				return n
			}
			return 1
		},
		OnResync: func(k namespace.FragKey, rank namespace.MDSID, inodes int) {
			te.resyncs = append(te.resyncs, rank)
		},
	}
}

func retainAll(namespace.MDSID) bool { return true }

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []Policy{
		{R: 1, ShipEvery: 5, PromoteTicks: 2, ResyncRate: 1, MaxSyncsPerRank: 1},
		{R: 2, ShipEvery: 0, PromoteTicks: 2, ResyncRate: 1, MaxSyncsPerRank: 1},
		{R: 2, ShipEvery: 5, PromoteTicks: 0, ResyncRate: 1, MaxSyncsPerRank: 1},
		{R: 2, ShipEvery: 5, PromoteTicks: 2, ResyncRate: 0, MaxSyncsPerRank: 1},
		{R: 2, ShipEvery: 5, PromoteTicks: 2, ResyncRate: 1, MaxSyncsPerRank: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: policy %+v must not validate", i, p)
		}
	}
	if _, err := NewManager(Policy{R: 1}); err == nil {
		t.Fatal("NewManager must reject invalid policies")
	}
}

func TestJournalShipBoundedLagAndPrefix(t *testing.T) {
	pol := DefaultPolicy()
	pol.ShipEvery = 1
	pol.ResyncRate = 1000
	m := MustManager(pol)
	te := &testEnv{ranks: 3, ops: map[namespace.FragKey]int64{}, heat: map[namespace.FragKey]float64{}}
	k := key(7)
	m.Reconcile([]namespace.Entry{entry(7, 0)}, retainAll)

	// Tick 0: the re-replicator starts a sync (1 inode); it completes
	// in tick 1's pump, so from tick 1 the standby is synced.
	m.Pump(0, te.env())
	m.Pump(1, te.env())
	g := m.GroupOf(k)
	if g == nil || len(g.Standbys) != 1 || g.Standbys[0].Syncing {
		t.Fatalf("want one synced standby after two pumps, got %+v", g)
	}
	sb := g.Standbys[0]

	for tick := int64(2); tick <= 6; tick++ {
		te.ops[k] += 10
		te.heat[k] += 2.5
		m.Pump(tick, te.env())
		if lag := g.Appended() - sb.Applied; lag > 1 {
			t.Fatalf("tick %d: standby lag %d exceeds bound 1", tick, lag)
		}
		ops, heat, ok := g.PrefixAt(sb.Applied)
		if !ok {
			t.Fatalf("tick %d: journal truncated past applied seq %d", tick, sb.Applied)
		}
		if sb.Ops != ops || sb.Heat != heat {
			t.Fatalf("tick %d: standby state (%d, %g) != journal prefix (%d, %g)",
				tick, sb.Ops, sb.Heat, ops, heat)
		}
	}
	// After 5 ships of +10 ops each, the standby has applied all but
	// the newest record: 40 ops.
	if sb.Ops != 40 {
		t.Fatalf("standby applied ops = %d, want 40 (one ship behind 50)", sb.Ops)
	}
	if g.Appended() == 0 || m.Records() == 0 {
		t.Fatal("journal must have appended records")
	}
	if m.MaxLag() != 1 {
		t.Fatalf("MaxLag = %d, want 1", m.MaxLag())
	}
}

func TestStatResetRestartsDeltaBasis(t *testing.T) {
	pol := DefaultPolicy()
	pol.ShipEvery = 1
	m := MustManager(pol)
	te := &testEnv{ranks: 2, ops: map[namespace.FragKey]int64{}, heat: map[namespace.FragKey]float64{}}
	k := key(3)
	m.Reconcile([]namespace.Entry{entry(3, 0)}, retainAll)
	te.ops[k], te.heat[k] = 100, 50
	m.Pump(0, te.env())
	// The primary rejoined: its counters reset and restart small.
	te.ops[k], te.heat[k] = 7, 1.5
	m.Pump(1, te.env())
	g := m.GroupOf(k)
	ops, heat := g.Totals()
	if ops != 107 {
		t.Fatalf("total ops = %d, want 107 (100 then a reset reading of 7)", ops)
	}
	if heat != 1.5 {
		t.Fatalf("total heat = %g, want 1.5 (heat deltas track the reading)", heat)
	}
}

func TestRereplicatePlacementAndBounds(t *testing.T) {
	pol := DefaultPolicy()
	pol.R = 3
	pol.MaxSyncsPerRank = 1
	pol.ResyncRate = 1 // keep syncs in flight
	m := MustManager(pol)
	te := &testEnv{
		ranks:  4,
		load:   map[namespace.MDSID]float64{0: 5, 1: 3, 2: 9, 3: 1},
		noImp:  map[namespace.MDSID]bool{2: true}, // draining: not eligible
		ops:    map[namespace.FragKey]int64{},
		heat:   map[namespace.FragKey]float64{},
		inodes: map[namespace.FragKey]int{key(1): 100, key(2): 100},
	}
	m.Reconcile([]namespace.Entry{entry(1, 0), entry(2, 0)}, retainAll)
	m.Pump(0, te.env())
	// Group 1 gets the two least-loaded eligible ranks (3 then 1);
	// group 2 finds both saturated by MaxSyncsPerRank and gets nobody.
	g1, g2 := m.GroupOf(key(1)), m.GroupOf(key(2))
	if len(g1.Standbys) != 2 || g1.Standbys[0].Rank != 3 || g1.Standbys[1].Rank != 1 {
		t.Fatalf("group 1 standbys = %+v, want ranks [3 1]", g1.Standbys)
	}
	if len(g2.Standbys) != 0 {
		t.Fatalf("group 2 must wait for sync slots, got %+v", g2.Standbys)
	}
	if m.ResyncsStarted() != 2 || m.SyncingStandbys() != 2 {
		t.Fatalf("resyncs started = %d, syncing = %d, want 2, 2",
			m.ResyncsStarted(), m.SyncingStandbys())
	}
}

func TestResyncCompletionFastForwards(t *testing.T) {
	pol := DefaultPolicy()
	pol.ShipEvery = 1
	pol.ResyncRate = 50
	m := MustManager(pol)
	te := &testEnv{
		ranks:  2,
		ops:    map[namespace.FragKey]int64{},
		heat:   map[namespace.FragKey]float64{},
		inodes: map[namespace.FragKey]int{key(4): 100},
	}
	k := key(4)
	m.Reconcile([]namespace.Entry{entry(4, 0)}, retainAll)
	te.ops[k], te.heat[k] = 30, 12
	m.Pump(0, te.env()) // sync starts (100 inodes, 50/tick)
	te.ops[k] = 60
	m.Pump(1, te.env()) // 50 inodes left
	m.Pump(2, te.env()) // sync completes, fast-forwards to the head
	g := m.GroupOf(k)
	if len(g.Standbys) != 1 || g.Standbys[0].Syncing {
		t.Fatalf("standby must be synced, got %+v", g.Standbys)
	}
	sb := g.Standbys[0]
	ops, heat := g.Totals()
	if sb.Applied != g.Appended() || sb.Ops != ops || sb.Heat != heat {
		t.Fatalf("fast-forward mismatch: standby %+v, journal head (%d, %d, %g)",
			sb, g.Appended(), ops, heat)
	}
	if m.ResyncsDone() != 1 || len(te.resyncs) != 1 || te.resyncs[0] != 1 {
		t.Fatalf("resync completion not reported: done=%d, callbacks=%v",
			m.ResyncsDone(), te.resyncs)
	}
}

func TestPromotePicksBestSyncedStandby(t *testing.T) {
	pol := DefaultPolicy()
	pol.R = 3
	pol.ShipEvery = 1
	pol.ResyncRate = 1000
	m := MustManager(pol)
	te := &testEnv{
		ranks: 4,
		load:  map[namespace.MDSID]float64{1: 4, 2: 2, 3: 2},
		ops:   map[namespace.FragKey]int64{},
		heat:  map[namespace.FragKey]float64{},
	}
	k := key(9)
	m.Reconcile([]namespace.Entry{entry(9, 0)}, retainAll)
	m.Pump(0, te.env()) // standbys sync and complete
	te.ops[k], te.heat[k] = 20, 8
	m.Pump(1, te.env())
	m.Pump(2, te.env()) // standbys apply the 20-op record

	eligible := func(id namespace.MDSID) bool { return id != 0 }
	load := func(id namespace.MDSID) float64 { return te.load[id] }
	to, heat, lag, ok := m.Promote(k, 0, eligible, load)
	if !ok {
		t.Fatal("promotion must find a synced standby")
	}
	// Ranks 2 and 3 tie on load 2; the lower rank wins.
	if to != 2 {
		t.Fatalf("promoted rank %d, want 2 (least-loaded, lowest rank)", to)
	}
	if heat != 8 {
		t.Fatalf("warm heat = %g, want the applied prefix 8", heat)
	}
	if lag != 1 {
		t.Fatalf("promotion lag = %d records, want 1", lag)
	}
	g := m.GroupOf(k)
	if g.Primary != 2 {
		t.Fatalf("group primary = %d after promote, want 2", g.Primary)
	}
	for _, sb := range g.Standbys {
		if sb.Rank == 2 {
			t.Fatal("promoted rank must leave the standby set")
		}
		if !sb.Syncing && (sb.Ops != g.Standbys[0].Ops || sb.Applied != g.Appended()) {
			t.Fatalf("remaining standby not rebased: %+v", sb)
		}
	}
	if m.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", m.Promotions())
	}
	// Wrong dead rank, unknown key, and no-standby groups all refuse.
	if _, _, _, ok := m.Promote(k, 0, eligible, load); ok {
		t.Fatal("promotion must refuse when the group is not led by the dead rank")
	}
	if _, _, _, ok := m.Promote(key(99), 0, eligible, load); ok {
		t.Fatal("promotion must refuse unknown groups")
	}
}

func TestPromoteSkipsSyncingAndIneligible(t *testing.T) {
	pol := DefaultPolicy()
	pol.ShipEvery = 1
	pol.ResyncRate = 1 // syncs never finish within the test
	m := MustManager(pol)
	te := &testEnv{
		ranks:  2,
		ops:    map[namespace.FragKey]int64{},
		heat:   map[namespace.FragKey]float64{},
		inodes: map[namespace.FragKey]int{key(5): 1000},
	}
	k := key(5)
	m.Reconcile([]namespace.Entry{entry(5, 0)}, retainAll)
	m.Pump(0, te.env())
	if m.SyncingStandbys() != 1 {
		t.Fatalf("want one in-flight sync, got %d", m.SyncingStandbys())
	}
	if _, _, _, ok := m.Promote(k, 0,
		func(namespace.MDSID) bool { return true },
		func(namespace.MDSID) float64 { return 0 }); ok {
		t.Fatal("a syncing standby must not be promotable")
	}
}

func TestReconcileRebasesAndDrops(t *testing.T) {
	pol := DefaultPolicy()
	pol.ShipEvery = 1
	pol.ResyncRate = 1000
	m := MustManager(pol)
	te := &testEnv{ranks: 3, ops: map[namespace.FragKey]int64{}, heat: map[namespace.FragKey]float64{}}
	m.Reconcile([]namespace.Entry{entry(1, 0), entry(2, 1)}, retainAll)
	m.Pump(0, te.env())
	if m.Groups() != 2 {
		t.Fatalf("groups = %d, want 2", m.Groups())
	}
	// Entry 2 vanished (absorbed); entry 1 migrated to rank 2, which
	// happens to hold a standby — the standby folds into the primary.
	g1 := m.GroupOf(key(1))
	standbyRank := g1.Standbys[0].Rank
	m.Reconcile([]namespace.Entry{entry(1, standbyRank)}, retainAll)
	if m.Groups() != 1 {
		t.Fatalf("groups = %d after absorb, want 1", m.Groups())
	}
	g1 = m.GroupOf(key(1))
	if g1.Primary != standbyRank || g1.hasStandby(standbyRank) {
		t.Fatalf("rebase must install the new primary and drop it from standbys: %+v", g1)
	}
	// Standbys on ranks failing retain are dropped.
	m.Pump(1, te.env()) // re-replicate a standby
	if len(m.GroupOf(key(1)).Standbys) == 0 {
		t.Fatal("re-replicator must have placed a standby")
	}
	m.Reconcile([]namespace.Entry{entry(1, standbyRank)}, func(namespace.MDSID) bool { return false })
	if len(m.GroupOf(key(1)).Standbys) != 0 {
		t.Fatal("retain=false must drop every standby")
	}
}

func TestDropRankRemovesStandbys(t *testing.T) {
	pol := DefaultPolicy()
	pol.R = 3
	pol.ShipEvery = 1
	pol.ResyncRate = 1000
	m := MustManager(pol)
	te := &testEnv{ranks: 3, ops: map[namespace.FragKey]int64{}, heat: map[namespace.FragKey]float64{}}
	m.Reconcile([]namespace.Entry{entry(1, 0)}, retainAll)
	m.Pump(0, te.env())
	g := m.GroupOf(key(1))
	if len(g.Standbys) != 2 {
		t.Fatalf("want standbys on ranks 1 and 2, got %+v", g.Standbys)
	}
	m.DropRank(1)
	if len(g.Standbys) != 1 || g.Standbys[0].Rank != 2 {
		t.Fatalf("DropRank(1) must leave only rank 2, got %+v", g.Standbys)
	}
	// The primary is untouched by DropRank.
	m.DropRank(0)
	if g.Primary != 0 {
		t.Fatalf("DropRank must not touch primaries, got %d", g.Primary)
	}
}
