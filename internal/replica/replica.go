// Package replica implements warm-standby subtree replication: every
// partition entry (a replication group) has a primary — the rank the
// partition names authoritative — and up to R−1 standbys on other
// ranks that follow it through a shipped journal. The primary appends
// one journal record per ship interval carrying the ops and heat
// deltas of the governed subtree since the previous ship; synced
// standbys apply the outstanding tail at the next ship, so a standby's
// state is a faithful prefix of the primary's, at most one ship
// interval behind (the bounded lag promotion pays as its divergence
// cost). When the primary crashes, the cluster promotes the best
// surviving standby in place of the cold orphan takeover, seeding the
// new primary with the standby's applied heat; a background
// re-replicator restores R after a loss, drain, or decommission by
// syncing fresh standbys on the least-loaded eligible ranks.
//
// The manager is pure bookkeeping driven by the cluster's tick loop —
// it never touches servers or the partition itself, only the
// callbacks in Env — and it is deterministic: groups are visited in
// sorted key order, candidate ranks in rank order, and no step reads
// an RNG or depends on map iteration order. A nil *Manager is the
// disabled state (R=1): the cluster guards every call site, so a run
// without replication pays nothing on the tick path.
package replica

import (
	"fmt"
	"sort"

	"repro/internal/namespace"
)

// Policy parameterizes the replication manager.
type Policy struct {
	// R is the replication factor: one primary plus R−1 standbys per
	// subtree entry. R must be at least 2 — an R=1 cluster simply does
	// not attach a manager.
	R int
	// ShipEvery is the journal ship interval in ticks: the primary
	// appends one delta record (and synced standbys apply the
	// outstanding tail) every ShipEvery ticks. It is also the bound on
	// standby lag, and therefore the state a promotion can lose.
	ShipEvery int64
	// PromoteTicks is the promotion latency after a crash: how long the
	// cluster waits before promoting standbys, modelling failure
	// detection plus a standby's replay of its applied journal prefix.
	// Keep it well under the cluster's RecoveryTicks, or the cold
	// takeover fires first and promotion finds nothing to do.
	PromoteTicks int
	// ResyncRate is how many inodes one background re-replication sync
	// copies per tick.
	ResyncRate int
	// MaxSyncsPerRank bounds concurrent inbound syncs per rank so the
	// re-replicator cannot dogpile one idle survivor.
	MaxSyncsPerRank int
	// LeaseTicks, when positive, enables lease-based read-replica
	// authority: synced standbys of hot read-dominated subtrees are
	// granted read leases that let them serve reads for the subtree.
	// A lease lasts LeaseTicks ticks and dies early on any write to the
	// subtree, on migration (rebase), and on the holder crashing or
	// draining. Zero disables leases entirely.
	LeaseTicks int64
	// ReplicateReadFrac is the minimum read fraction (read heat / total
	// heat) a hot subtree needs before leases are granted — the
	// migrate-vs-replicate threshold. Subtrees below it stay on the
	// migration path. Only meaningful when LeaseTicks > 0.
	ReplicateReadFrac float64
}

// DefaultPolicy returns the policy used by the replication experiment
// and the -replication CLI default: R=2, ship every 5 ticks, promote
// 2 ticks after a crash, resync 2000 inodes/tick, at most 4 inbound
// syncs per rank.
func DefaultPolicy() Policy {
	return Policy{
		R:               2,
		ShipEvery:       5,
		PromoteTicks:    2,
		ResyncRate:      2000,
		MaxSyncsPerRank: 4,
	}
}

// Validate rejects self-contradictory policies.
func (p Policy) Validate() error {
	if p.R < 2 {
		return fmt.Errorf("replica: R %d < 2 (an R=1 cluster attaches no manager)", p.R)
	}
	if p.ShipEvery < 1 {
		return fmt.Errorf("replica: ShipEvery %d < 1", p.ShipEvery)
	}
	if p.PromoteTicks < 1 {
		return fmt.Errorf("replica: PromoteTicks %d < 1", p.PromoteTicks)
	}
	if p.ResyncRate < 1 {
		return fmt.Errorf("replica: ResyncRate %d < 1", p.ResyncRate)
	}
	if p.MaxSyncsPerRank < 1 {
		return fmt.Errorf("replica: MaxSyncsPerRank %d < 1", p.MaxSyncsPerRank)
	}
	if p.LeaseTicks < 0 {
		return fmt.Errorf("replica: LeaseTicks %d < 0", p.LeaseTicks)
	}
	if p.LeaseTicks > 0 && (p.ReplicateReadFrac <= 0 || p.ReplicateReadFrac > 1) {
		return fmt.Errorf("replica: ReplicateReadFrac %v outside (0, 1]", p.ReplicateReadFrac)
	}
	return nil
}

// Record is one shipped journal entry: the ops and heat deltas of the
// governed subtree on the primary since the previous ship.
type Record struct {
	Seq  uint64
	Tick int64
	Ops  int64
	Heat float64
}

// Standby is one replica follower. Fields are exported for the auditor
// and tests; only the manager mutates them.
type Standby struct {
	Rank namespace.MDSID
	// Applied is the journal sequence the standby has applied through.
	Applied uint64
	// Ops and Heat are the applied prefix sums — the warm state a
	// promotion installs.
	Ops  int64
	Heat float64
	// Syncing marks a standby still bulk-copying the subtree; it
	// fast-forwards to the journal head when SyncLeft reaches zero and
	// is not promotable until then.
	Syncing  bool
	SyncLeft int
	// SyncInodes is the bulk-copy size the sync started with.
	SyncInodes int
}

// Lease is one read lease: the holder rank may serve reads for the
// group's subtree through tick Expires. Exported for the auditor and
// tests; only the manager mutates leases.
type Lease struct {
	Rank namespace.MDSID
	// Expires is the last tick the lease is valid for; the expiry pump
	// drops leases with Expires <= tick at the end of that tick.
	Expires int64
}

// Group is one subtree replication group. Key and Primary are exported
// for the auditor and tests; only the manager mutates the group.
type Group struct {
	Key      namespace.FragKey
	Primary  namespace.MDSID
	Standbys []*Standby
	// Leases are the live read leases, kept sorted by holder rank.
	// Every holder is a synced standby of the group.
	Leases []Lease

	// Journal state: records holds the un-applied tail (at most the
	// records since the oldest synced standby's Applied — one record in
	// the steady state); totals are prefix sums over every appended
	// record, so prefix(seq) = totals − the tail records past seq.
	appended  uint64
	records   []Record
	totalOps  int64
	totalHeat float64
	// Delta basis: the primary's cumulative (ops, heat) reading at the
	// last append. Reset when the primary changes — the new primary's
	// counters start fresh.
	lastOps  int64
	lastHeat float64
}

// Appended returns the last appended journal sequence.
func (g *Group) Appended() uint64 { return g.appended }

// Totals returns the journal's prefix sums over every appended record.
func (g *Group) Totals() (ops int64, heat float64) { return g.totalOps, g.totalHeat }

// Tail returns the retained (not yet universally applied) journal
// records. Shared slice; callers must not modify it.
func (g *Group) Tail() []Record { return g.records }

// PrefixAt returns the journal prefix sums through seq. ok is false
// when the tail has been truncated past seq, so the prefix is no
// longer reconstructible.
func (g *Group) PrefixAt(seq uint64) (ops int64, heat float64, ok bool) {
	if seq > g.appended {
		return 0, 0, false
	}
	if len(g.records) > 0 && g.records[0].Seq > seq+1 {
		return 0, 0, false
	}
	if len(g.records) == 0 && seq != g.appended {
		return 0, 0, false
	}
	ops, heat = g.totalOps, g.totalHeat
	for i := len(g.records) - 1; i >= 0; i-- {
		if g.records[i].Seq <= seq {
			break
		}
		ops -= g.records[i].Ops
		heat -= g.records[i].Heat
	}
	return ops, heat, true
}

// leaseFor returns the group's lease held by rank r, or nil.
func (g *Group) leaseFor(r namespace.MDSID) *Lease {
	for i := range g.Leases {
		if g.Leases[i].Rank == r {
			return &g.Leases[i]
		}
	}
	return nil
}

// insertLease adds a lease keeping Leases sorted by holder rank, so
// holder enumeration is deterministic regardless of grant order.
func (g *Group) insertLease(l Lease) {
	i := sort.Search(len(g.Leases), func(i int) bool { return g.Leases[i].Rank >= l.Rank })
	g.Leases = append(g.Leases, Lease{})
	copy(g.Leases[i+1:], g.Leases[i:])
	g.Leases[i] = l
}

func (g *Group) hasStandby(r namespace.MDSID) bool {
	for _, sb := range g.Standbys {
		if sb.Rank == r {
			return true
		}
	}
	return false
}

// removeStandby deletes the standby at index i, preserving order.
func (g *Group) removeStandby(i int) {
	g.Standbys = append(g.Standbys[:i], g.Standbys[i+1:]...)
}

// rebase re-anchors the group on a new primary whose subtree counters
// start fresh (migration, cold takeover): the delta basis resets so
// the next ship charges only what the new primary has accumulated.
func (g *Group) rebase(to namespace.MDSID) {
	g.Primary = to
	g.lastOps, g.lastHeat = 0, 0
	for i := 0; i < len(g.Standbys); {
		if g.Standbys[i].Rank == to {
			g.removeStandby(i)
			continue
		}
		i++
	}
}

// Env is the cluster surface the manager pumps against. All callbacks
// are required except OnResync.
type Env struct {
	// Ranks is the current server count (rank IDs are [0, Ranks)).
	Ranks int
	// Eligible reports whether a rank may host a new standby (the
	// cluster's importable predicate: Active only — never a draining or
	// down rank). Every placement, resync target, and promotion gates on
	// it; there is deliberately no broader Up()-style liveness callback,
	// which would span Draining ranks and park replicas on a rank that
	// is actively leaving.
	Eligible func(namespace.MDSID) bool
	// Load is the rank's current load, the re-replicator's placement
	// signal.
	Load func(namespace.MDSID) float64
	// Stats returns the primary's cumulative (ops, heat) reading for a
	// governed subtree — the journal's delta source.
	Stats func(namespace.MDSID, namespace.FragKey) (int64, float64)
	// Inodes is the governed-inode count of a subtree, the bulk-copy
	// size a new sync starts with.
	Inodes func(namespace.FragKey) int
	// OnResync, when set, is called as each background sync completes.
	OnResync func(key namespace.FragKey, rank namespace.MDSID, inodes int)
}

// Manager tracks every replication group. Construct with NewManager; a
// nil *Manager is the disabled state and must not be pumped.
type Manager struct {
	pol    Policy
	groups map[namespace.FragKey]*Group
	// order is the deterministic iteration order (sorted keys, rebuilt
	// from the partition's sorted entries at every Reconcile).
	order []namespace.FragKey
	// syncCount is per-pump scratch: inbound syncs per rank.
	syncCount map[namespace.MDSID]int

	promotions     int64
	resyncsStarted int64
	resyncsDone    int64
	records        int64

	leasesGranted int64
	leasesRevoked int64
	leasesExpired int64
	// leaseVersion bumps on every change to lease MEMBERSHIP (not mere
	// expiry refreshes) so the cluster can cheaply mirror the holder set
	// into its routing table.
	leaseVersion uint64
}

// NewManager builds a manager; the policy must validate.
func NewManager(p Policy) (*Manager, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Manager{
		pol:       p,
		groups:    make(map[namespace.FragKey]*Group),
		syncCount: make(map[namespace.MDSID]int),
	}, nil
}

// MustManager is NewManager for callers with static policies.
func MustManager(p Policy) *Manager {
	m, err := NewManager(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Policy returns the manager's policy.
func (m *Manager) Policy() Policy { return m.pol }

// Groups returns how many replication groups exist.
func (m *Manager) Groups() int { return len(m.groups) }

// GroupOf returns the group for a subtree entry, or nil.
func (m *Manager) GroupOf(key namespace.FragKey) *Group { return m.groups[key] }

// ForEachGroup visits every group in sorted key order. The visitor
// must treat the group as read-only.
func (m *Manager) ForEachGroup(fn func(*Group)) {
	for _, k := range m.order {
		fn(m.groups[k])
	}
}

// Promotions returns how many standbys have been promoted to primary.
func (m *Manager) Promotions() int64 { return m.promotions }

// ResyncsStarted returns how many background syncs have been started.
func (m *Manager) ResyncsStarted() int64 { return m.resyncsStarted }

// ResyncsDone returns how many background syncs have completed.
func (m *Manager) ResyncsDone() int64 { return m.resyncsDone }

// Records returns how many journal records have been appended.
func (m *Manager) Records() int64 { return m.records }

// SyncingStandbys counts standbys currently mid-sync.
func (m *Manager) SyncingStandbys() int {
	n := 0
	for _, k := range m.order {
		for _, sb := range m.groups[k].Standbys {
			if sb.Syncing {
				n++
			}
		}
	}
	return n
}

// MaxLag returns the largest journal lag (appended − applied) across
// synced standbys — at most one record in the steady state.
func (m *Manager) MaxLag() uint64 {
	var max uint64
	for _, k := range m.order {
		g := m.groups[k]
		for _, sb := range g.Standbys {
			if sb.Syncing {
				continue
			}
			if lag := g.appended - sb.Applied; lag > max {
				max = lag
			}
		}
	}
	return max
}

// Reconcile aligns the group set with the partition: entries must be
// the partition's sorted entry list. New entries get fresh groups,
// vanished entries (absorbs, splits replacing a key) drop theirs, and
// an entry whose authority moved under the manager (migration, drain
// export, cold takeover) rebases its group on the new primary.
// Standbys failing retain (crashed, draining, decommissioned ranks)
// are dropped; the re-replicator restores R afterwards.
func (m *Manager) Reconcile(entries []namespace.Entry, retain func(namespace.MDSID) bool) {
	m.order = m.order[:0]
	for _, e := range entries {
		m.order = append(m.order, e.Key)
		g := m.groups[e.Key]
		if g == nil {
			m.groups[e.Key] = &Group{Key: e.Key, Primary: e.Auth}
			continue
		}
		if g.Primary != e.Auth {
			// Migration, drain export, or cold takeover: the subtree's
			// authority moved, so every read lease granted under the old
			// primary is invalid.
			g.rebase(e.Auth)
			m.clearLeases(g)
		}
		for i := 0; i < len(g.Standbys); {
			if !retain(g.Standbys[i].Rank) {
				g.removeStandby(i)
				continue
			}
			i++
		}
		m.pruneLeases(g)
	}
	if len(m.groups) != len(m.order) {
		keep := make(map[namespace.FragKey]bool, len(m.order))
		for _, k := range m.order {
			keep[k] = true
		}
		for k := range m.groups {
			if !keep[k] {
				delete(m.groups, k)
			}
		}
	}
}

// DropRank removes the rank from every standby set (crash or drain:
// its replica state is gone or leaving). Groups where the rank is
// primary are untouched — promotion or the cold takeover reassigns
// those, and Reconcile rebases the groups afterwards.
func (m *Manager) DropRank(r namespace.MDSID) {
	for _, k := range m.order {
		g := m.groups[k]
		for i := 0; i < len(g.Standbys); {
			if g.Standbys[i].Rank == r {
				g.removeStandby(i)
				continue
			}
			i++
		}
		m.pruneLeases(g)
	}
}

// Promote selects and installs the best surviving standby of the given
// group as its new primary: synced, eligible, least-loaded (ties to
// the lowest rank). It returns the promoted rank, the warm heat the
// cluster should seed it with (the standby's applied prefix), and the
// journal lag the promotion lost (records appended but not applied —
// the divergence cost). ok is false when the group does not exist, is
// not led by dead, or has no promotable standby — the caller falls
// back to the cold takeover path.
func (m *Manager) Promote(key namespace.FragKey, dead namespace.MDSID,
	eligible func(namespace.MDSID) bool, load func(namespace.MDSID) float64) (to namespace.MDSID, heat float64, lag uint64, ok bool) {
	g := m.groups[key]
	if g == nil || g.Primary != dead {
		return 0, 0, 0, false
	}
	best := -1
	for i, sb := range g.Standbys {
		if sb.Syncing || !eligible(sb.Rank) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		li, lb := load(sb.Rank), load(g.Standbys[best].Rank)
		if li < lb || (li == lb && sb.Rank < g.Standbys[best].Rank) {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, 0, false
	}
	sb := g.Standbys[best]
	to, heat, lag = sb.Rank, sb.Heat, g.appended-sb.Applied
	g.removeStandby(best)
	// The standby's applied prefix is the new baseline: the lost tail
	// died with the old primary. Remaining synced standbys sit at the
	// same prefix (the ship loop applies them in lockstep), so the
	// journal resets to the promoted state and the delta basis to the
	// heat the cluster seeds the new primary with.
	g.Primary = to
	g.records = g.records[:0]
	g.totalOps, g.totalHeat = sb.Ops, sb.Heat
	g.lastOps, g.lastHeat = 0, sb.Heat
	for _, other := range g.Standbys {
		if !other.Syncing {
			other.Applied, other.Ops, other.Heat = g.appended, sb.Ops, sb.Heat
		}
	}
	// Crash invalidation: leases granted under the dead primary die with
	// it, including any held by the standby being promoted.
	m.clearLeases(g)
	m.promotions++
	return to, heat, lag, true
}

// Pump advances replication by one tick: ship the journal on the ship
// cadence, progress in-flight syncs, and start new syncs where a group
// is below R. Deterministic: sorted group order, rank-order candidate
// scans, no RNG.
func (m *Manager) Pump(tick int64, env Env) {
	if tick%m.pol.ShipEvery == 0 {
		m.ship(tick, env)
	}
	m.advanceSyncs(env)
	m.rereplicate(env)
}

// ship runs one journal round per group: synced standbys apply the
// outstanding tail (bringing them to the previous ship's state), the
// applied records truncate, and one fresh delta record is appended
// from the primary's current counters.
func (m *Manager) ship(tick int64, env Env) {
	for _, k := range m.order {
		g := m.groups[k]
		for _, sb := range g.Standbys {
			if sb.Syncing {
				continue
			}
			for _, r := range g.records {
				if r.Seq > sb.Applied {
					sb.Ops += r.Ops
					sb.Heat += r.Heat
				}
			}
			sb.Applied = g.appended
		}
		g.records = g.records[:0]
		ops, heat := env.Stats(g.Primary, g.Key)
		dOps := ops - g.lastOps
		if dOps < 0 {
			// The primary's counters reset under us (rejoin wipes the
			// heat table; migration drops the cell): restart the basis —
			// the current reading is all post-reset work.
			dOps = ops
		}
		dHeat := heat - g.lastHeat
		g.lastOps, g.lastHeat = ops, heat
		g.appended++
		g.records = append(g.records, Record{Seq: g.appended, Tick: tick, Ops: dOps, Heat: dHeat})
		g.totalOps += dOps
		g.totalHeat += dHeat
		m.records++
	}
}

// advanceSyncs progresses every in-flight sync by ResyncRate inodes;
// completed syncs fast-forward to the journal head.
func (m *Manager) advanceSyncs(env Env) {
	for _, k := range m.order {
		g := m.groups[k]
		for _, sb := range g.Standbys {
			if !sb.Syncing {
				continue
			}
			sb.SyncLeft -= m.pol.ResyncRate
			if sb.SyncLeft > 0 {
				continue
			}
			sb.Syncing, sb.SyncLeft = false, 0
			sb.Applied, sb.Ops, sb.Heat = g.appended, g.totalOps, g.totalHeat
			m.resyncsDone++
			if env.OnResync != nil {
				env.OnResync(g.Key, sb.Rank, sb.SyncInodes)
			}
		}
	}
}

// clearLeases drops every lease on the group (write, migration, or
// crash invalidation), counting them as revoked.
func (m *Manager) clearLeases(g *Group) int {
	n := len(g.Leases)
	if n == 0 {
		return 0
	}
	g.Leases = g.Leases[:0]
	m.leasesRevoked += int64(n)
	m.leaseVersion++
	return n
}

// pruneLeases drops leases whose holder is no longer a synced standby
// of the group (the rank crashed, started draining, or its replica was
// dropped and is re-syncing from scratch).
func (m *Manager) pruneLeases(g *Group) {
	for i := 0; i < len(g.Leases); {
		held := false
		for _, sb := range g.Standbys {
			if sb.Rank == g.Leases[i].Rank && !sb.Syncing {
				held = true
				break
			}
		}
		if !held {
			g.Leases = append(g.Leases[:i], g.Leases[i+1:]...)
			m.leasesRevoked++
			m.leaseVersion++
			continue
		}
		i++
	}
}

// GrantLeases grants (or refreshes) read leases on every synced standby
// of the group through tick expires, and returns the newly granted
// holder ranks in rank order (refreshes are silent). A missing group or
// one with no synced standby is a no-op.
func (m *Manager) GrantLeases(key namespace.FragKey, expires int64) []namespace.MDSID {
	g := m.groups[key]
	if g == nil {
		return nil
	}
	var granted []namespace.MDSID
	for _, sb := range g.Standbys {
		if sb.Syncing {
			continue
		}
		if l := g.leaseFor(sb.Rank); l != nil {
			if expires > l.Expires {
				l.Expires = expires
			}
			continue
		}
		g.insertLease(Lease{Rank: sb.Rank, Expires: expires})
		granted = append(granted, sb.Rank)
		m.leasesGranted++
		m.leaseVersion++
	}
	sort.Slice(granted, func(i, j int) bool { return granted[i] < granted[j] })
	return granted
}

// RevokeLeases drops every lease on the subtree (write invalidation)
// and returns how many were dropped.
func (m *Manager) RevokeLeases(key namespace.FragKey) int {
	g := m.groups[key]
	if g == nil {
		return 0
	}
	return m.clearLeases(g)
}

// ExpireLeases drops every lease whose term has ended (Expires <= tick)
// and returns how many expired.
func (m *Manager) ExpireLeases(tick int64) int {
	n := 0
	for _, k := range m.order {
		g := m.groups[k]
		for i := 0; i < len(g.Leases); {
			if g.Leases[i].Expires <= tick {
				g.Leases = append(g.Leases[:i], g.Leases[i+1:]...)
				m.leasesExpired++
				m.leaseVersion++
				n++
				continue
			}
			i++
		}
	}
	return n
}

// LeaseHolders returns the ranks holding live leases on the subtree, in
// rank order. Shared storage is not exposed: the result is a copy.
func (m *Manager) LeaseHolders(key namespace.FragKey) []namespace.MDSID {
	g := m.groups[key]
	if g == nil || len(g.Leases) == 0 {
		return nil
	}
	out := make([]namespace.MDSID, len(g.Leases))
	for i, l := range g.Leases {
		out[i] = l.Rank
	}
	return out
}

// LiveLeases counts the live leases across every group.
func (m *Manager) LiveLeases() int {
	n := 0
	for _, k := range m.order {
		n += len(m.groups[k].Leases)
	}
	return n
}

// LeaseVersion bumps on every change to lease membership; the cluster
// uses it to know when to rebuild its lease routing table.
func (m *Manager) LeaseVersion() uint64 { return m.leaseVersion }

// LeasesGranted returns how many leases have ever been granted.
func (m *Manager) LeasesGranted() int64 { return m.leasesGranted }

// LeasesRevoked returns how many leases died early (write, migration,
// crash, or drain invalidation).
func (m *Manager) LeasesRevoked() int64 { return m.leasesRevoked }

// LeasesExpired returns how many leases ran out their full term.
func (m *Manager) LeasesExpired() int64 { return m.leasesExpired }

// rereplicate starts background syncs for groups below R, placing each
// new standby on the least-loaded eligible rank (ties to the lowest
// rank) that is not already in the group and has sync capacity left.
func (m *Manager) rereplicate(env Env) {
	clear(m.syncCount)
	for _, k := range m.order {
		for _, sb := range m.groups[k].Standbys {
			if sb.Syncing {
				m.syncCount[sb.Rank]++
			}
		}
	}
	for _, k := range m.order {
		g := m.groups[k]
		for len(g.Standbys) < m.pol.R-1 {
			best := namespace.MDSID(-1)
			bestLoad := 0.0
			for r := 0; r < env.Ranks; r++ {
				id := namespace.MDSID(r)
				if id == g.Primary || g.hasStandby(id) || !env.Eligible(id) {
					continue
				}
				if m.syncCount[id] >= m.pol.MaxSyncsPerRank {
					continue
				}
				if l := env.Load(id); best < 0 || l < bestLoad {
					best, bestLoad = id, l
				}
			}
			if best < 0 {
				break
			}
			inodes := env.Inodes(g.Key)
			if inodes < 1 {
				inodes = 1
			}
			g.Standbys = append(g.Standbys, &Standby{
				Rank: best, Syncing: true, SyncLeft: inodes, SyncInodes: inodes,
			})
			m.syncCount[best]++
			m.resyncsStarted++
		}
	}
}
