package mds

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/namespace"
)

// TestMigratorConservationProperty: across any sequence of submits and
// ticks, the cumulative migrated-inode count equals the sum of the
// completed tasks' sizes, and task states account for every submission.
func TestMigratorConservationProperty(t *testing.T) {
	f := func(sizes []uint8, routes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		tr := namespace.NewTree()
		p := namespace.NewPartition(tr, 0)
		var keys []namespace.FragKey
		for i, sz := range sizes {
			d, err := tr.Mkdir(tr.Root(), fmt.Sprintf("d%02d", i))
			if err != nil {
				return false
			}
			for j := 0; j < int(sz%20)+1; j++ {
				if _, err := tr.Create(d, fmt.Sprintf("f%02d", j), 1); err != nil {
					return false
				}
			}
			keys = append(keys, p.Carve(d).Key)
		}
		m := NewMigrator(p, 7, 2, 15)
		m.MinTicks = 2
		var tasks []*ExportTask
		for i, k := range keys {
			to := namespace.MDSID(1)
			if i < len(routes) {
				to = namespace.MDSID(routes[i]%3) + 1
			}
			tasks = append(tasks, m.Submit(k, 0, to, 1, int64(i)))
		}
		for tick := int64(0); tick < 200; tick++ {
			m.Tick(tick)
		}
		var done, dropped int64
		var movedInodes int64
		for _, task := range tasks {
			switch task.State {
			case TaskDone:
				done++
				movedInodes += int64(task.Inodes)
			case TaskDropped:
				dropped++
			default:
				return false // nothing may be left in flight after 200 ticks
			}
		}
		if done != m.CompletedTasks() || dropped != m.DroppedTasks() {
			return false
		}
		if done+dropped != m.SubmittedTasks() {
			return false
		}
		if movedInodes != m.MigratedInodes() {
			return false
		}
		// Completed tasks actually changed authority.
		for _, task := range tasks {
			if task.State == TaskDone {
				e, ok := p.EntryAt(task.Key)
				if !ok || e.Auth != task.To {
					return false
				}
			}
		}
		return m.QueuedTasks() == 0 && m.ActiveTasks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestServerAccountingProperty: served + stalled interactions never
// exceed offered work, and per-epoch loads reconstruct the op total.
func TestServerAccountingProperty(t *testing.T) {
	f := func(bursts []uint8) bool {
		if len(bursts) > 30 {
			bursts = bursts[:30]
		}
		tr := namespace.NewTree()
		d, _ := tr.Mkdir(tr.Root(), "d")
		in, _ := tr.Create(d, "f", 1)
		p := namespace.NewPartition(tr, 0)
		e := p.GoverningEntry(in)

		s := NewServer(0, 10, 4, 0.9)
		var served int64
		for tick, b := range bursts {
			s.BeginTick()
			offered := int(b % 17)
			for i := 0; i < offered; i++ {
				if s.Serve(e, in, int64(tick/10)) {
					served++
				} else {
					s.NoteStall()
				}
			}
			if s.OpsThisTick() > 10 {
				return false // capacity must bound per-tick service
			}
			if (tick+1)%10 == 0 {
				s.EndEpoch(10)
			}
		}
		s.EndEpoch(len(bursts) % 10)
		if served != s.OpsTotal() {
			return false
		}
		// Reconstruct total ops from the load history.
		var fromLoads float64
		history := s.LoadHistory()
		for i, l := range history {
			epochLen := 10.0
			if i == len(history)-1 {
				rem := len(bursts) % 10
				if rem == 0 {
					rem = 1
				}
				epochLen = float64(rem)
			}
			fromLoads += l * epochLen
		}
		diff := fromLoads - float64(served)
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
