package mds

import (
	"sort"

	"repro/internal/namespace"
	"repro/internal/obs"
)

// TaskState is the lifecycle state of an export task.
type TaskState int

// Export task states.
const (
	TaskQueued TaskState = iota
	TaskActive
	TaskDone
	TaskDropped
	// TaskAborted marks a task cancelled because its exporter or
	// importer crashed; authority was rolled to the surviving side.
	// Aborts are accounted separately from drops: a drop is a planning
	// staleness (TTL, authority change), an abort is a failure event.
	TaskAborted
)

// ExportTask is one planned subtree migration. Tasks move through
// queued -> active -> done; tasks that become stale before activation
// (authority changed, subtree absorbed, or queue TTL expired) are
// dropped, modelling the paper's observation that only a fraction of
// enqueued exports ever complete within an epoch.
type ExportTask struct {
	Key  namespace.FragKey
	From namespace.MDSID
	To   namespace.MDSID

	State       TaskState
	SubmitTick  int64
	StartTick   int64
	DoneTick    int64
	Inodes      int // counted at activation
	PlannedLoad float64

	// Drain marks a bulk export emptying a draining rank. Drain tasks
	// are exempt from the queue TTL: the exporter is being retired, so
	// "this plan went stale, drop it" does not apply — the subtree must
	// leave no matter how long the queue is.
	Drain bool

	// frozeLogged dedups the freeze trace event: a task enters its
	// commit window once, but the frozen set is rebuilt every tick.
	frozeLogged bool
}

// Migrator runs subtree migrations with the costs the paper calls out:
// a transfer duration proportional to the number of migrated inodes, a
// freeze of the subtree while the two-phase commit is in flight, and a
// bound on concurrent exports per exporter.
type Migrator struct {
	part *namespace.Partition

	// RatePerTick is how many inodes one exporter can ship per tick.
	RatePerTick int
	// MaxActivePerExporter bounds concurrent in-flight exports.
	MaxActivePerExporter int
	// QueueTTL is how many ticks a queued task stays valid.
	QueueTTL int64
	// MinTicks is the fixed two-phase-commit latency of any export
	// (discovery, freeze, cache invalidation), independent of size.
	MinTicks int64
	// FreezeTicks is how long before completion the subtree freezes
	// (the commit phase); during the rest of the transfer the exporter
	// keeps serving it, as in CephFS's incremental export.
	FreezeTicks int64
	// ValidRank, when set, reports whether a rank is a live, valid
	// migration endpoint. Tasks whose importer (or exporter) fails the
	// check at activation are dropped, never activated — a migration
	// must not ship a subtree to a dead or nonexistent rank.
	ValidRank func(namespace.MDSID) bool
	// ValidImporter, when set, additionally gates the importer side at
	// activation: a rank can be a legal exporter but an illegal import
	// target (a draining rank being emptied must not receive new
	// subtrees). Tasks whose importer fails it are dropped with reason
	// "importer_excluded".
	ValidImporter func(namespace.MDSID) bool
	// Bus, when set, receives migration lifecycle trace events. A nil
	// bus is the zero-cost disabled state.
	Bus *obs.Bus

	// now is the tick of the most recent Tick call, stamped onto
	// events raised outside the tick loop (AbortRank runs from fault
	// handlers that fire before the migrator's turn in the tick).
	now int64

	queued []*ExportTask
	active []*ExportTask

	frozen map[namespace.FragKey]bool

	migratedInodes int64 // cumulative, for Figure 4
	completedTasks int64
	droppedTasks   int64
	abortedTasks   int64
	submitted      int64

	// onComplete is invoked for each finished task (e.g. to drop the
	// exporter's stats for the subtree).
	onComplete func(*ExportTask)
}

// NewMigrator creates a migration engine over the partition.
func NewMigrator(part *namespace.Partition, ratePerTick, maxActive int, queueTTL int64) *Migrator {
	if ratePerTick <= 0 {
		panic("mds: migration rate must be positive")
	}
	if maxActive <= 0 {
		panic("mds: max active exports must be positive")
	}
	return &Migrator{
		part:                 part,
		RatePerTick:          ratePerTick,
		MaxActivePerExporter: maxActive,
		QueueTTL:             queueTTL,
		MinTicks:             1,
		FreezeTicks:          1,
		frozen:               make(map[namespace.FragKey]bool),
	}
}

// OnComplete registers a callback invoked when a task finishes.
func (m *Migrator) OnComplete(fn func(*ExportTask)) { m.onComplete = fn }

// Submit enqueues an export task for the subtree entry at key, shipping
// it from its current authority to the given importer.
func (m *Migrator) Submit(key namespace.FragKey, from, to namespace.MDSID, plannedLoad float64, tick int64) *ExportTask {
	t := &ExportTask{
		Key:         key,
		From:        from,
		To:          to,
		State:       TaskQueued,
		SubmitTick:  tick,
		PlannedLoad: plannedLoad,
	}
	m.queued = append(m.queued, t)
	m.submitted++
	if m.Bus.Enabled(obs.EvMigrationPlanned) {
		m.Bus.Emit(obs.Event{Tick: tick, Type: obs.EvMigrationPlanned,
			Fields: taskFields(t, obs.F{"planned_load": plannedLoad})})
	}
	return t
}

// SubmitDrain enqueues a drain export: the same lifecycle as Submit,
// but TTL-exempt (see ExportTask.Drain) — a draining rank may govern
// far more subtrees than MaxActivePerExporter lets it ship inside one
// queue-TTL window, and none of them may be forgotten.
func (m *Migrator) SubmitDrain(key namespace.FragKey, from, to namespace.MDSID, plannedLoad float64, tick int64) *ExportTask {
	t := m.Submit(key, from, to, plannedLoad, tick)
	t.Drain = true
	return t
}

// taskFields builds the shared payload of a migration event.
func taskFields(t *ExportTask, extra obs.F) obs.F {
	f := obs.F{
		"dir":  uint64(t.Key.Dir),
		"frag": t.Key.Frag.String(),
		"from": int(t.From),
		"to":   int(t.To),
	}
	for k, v := range extra {
		f[k] = v
	}
	return f
}

// IsFrozen reports whether the subtree entry is frozen by an in-flight
// migration (requests to it must stall). Called on every op, so the
// common no-migrations-in-flight case skips the map hash entirely.
func (m *Migrator) IsFrozen(key namespace.FragKey) bool {
	return len(m.frozen) != 0 && m.frozen[key]
}

// Tick advances the migration engine by one tick: it completes
// transfers that finish now, expires stale queued tasks, activates
// queued tasks up to the per-exporter concurrency bound, and freezes
// subtrees whose exports enter the commit phase.
func (m *Migrator) Tick(tick int64) {
	m.now = tick
	// Complete finished transfers.
	var stillActive []*ExportTask
	for _, t := range m.active {
		if tick >= t.DoneTick {
			m.complete(t, tick)
		} else {
			stillActive = append(stillActive, t)
		}
	}
	m.active = stillActive

	// Freeze the subtrees in their commit window.
	for k := range m.frozen {
		delete(m.frozen, k)
	}
	for _, t := range m.active {
		if t.DoneTick-tick <= m.FreezeTicks {
			m.frozen[t.Key] = true
			m.noteFrozen(t, tick)
		}
	}

	// Expire or drop stale queued tasks, then activate what fits. The
	// common no-queued-tasks case allocates nothing.
	if len(m.queued) == 0 {
		return
	}
	activePer := make(map[namespace.MDSID]int)
	activeKeys := make(map[namespace.FragKey]bool, len(m.active))
	for _, t := range m.active {
		activePer[t.From]++
		activeKeys[t.Key] = true
	}
	var remaining []*ExportTask
	for _, t := range m.queued {
		if !t.Drain && m.QueueTTL > 0 && tick-t.SubmitTick >= m.QueueTTL {
			m.drop(t, tick, "ttl")
			continue
		}
		e, ok := m.part.EntryAt(t.Key)
		if !ok || e.Auth != t.From || t.From == t.To {
			m.drop(t, tick, "stale")
			continue
		}
		if !m.rankValid(t.To) || !m.rankValid(t.From) {
			// Importer (or exporter) is dead or out of range: the task
			// must never activate against an invalid endpoint.
			m.drop(t, tick, "endpoint_down")
			continue
		}
		if m.ValidImporter != nil && !m.ValidImporter(t.To) {
			// The importer is alive but excluded (draining): a task
			// planned before the drain started must not land new load
			// on the rank being emptied.
			m.drop(t, tick, "importer_excluded")
			continue
		}
		if activePer[t.From] >= m.MaxActivePerExporter || m.frozen[t.Key] ||
			activeKeys[t.Key] {
			// The activeKeys guard keeps a subtree from being exported
			// twice concurrently: a duplicate submission stays queued
			// until the in-flight export settles (it is then dropped as
			// stale when the completed export changes the authority).
			remaining = append(remaining, t)
			continue
		}
		m.activate(t, tick)
		activePer[t.From]++
		activeKeys[t.Key] = true
	}
	m.queued = remaining
}

func (m *Migrator) activate(t *ExportTask, tick int64) {
	t.State = TaskActive
	t.StartTick = tick
	t.Inodes = m.part.GovernedInodes(t.Key)
	dur := int64((t.Inodes + m.RatePerTick - 1) / m.RatePerTick)
	if dur < m.MinTicks {
		dur = m.MinTicks // the two-phase commit has a fixed floor cost
	}
	if dur < 1 {
		dur = 1
	}
	t.DoneTick = tick + dur
	if m.Bus.Enabled(obs.EvMigrationActivated) {
		m.Bus.Emit(obs.Event{Tick: tick, Type: obs.EvMigrationActivated,
			Fields: taskFields(t, obs.F{"inodes": t.Inodes, "done_tick": t.DoneTick})})
	}
	if t.DoneTick-tick <= m.FreezeTicks {
		m.frozen[t.Key] = true
		m.noteFrozen(t, tick)
	}
	m.active = append(m.active, t)
}

// noteFrozen emits the freeze event once per task, on the tick its
// commit window opens.
func (m *Migrator) noteFrozen(t *ExportTask, tick int64) {
	if t.frozeLogged {
		return
	}
	t.frozeLogged = true
	if m.Bus.Enabled(obs.EvMigrationFrozen) {
		m.Bus.Emit(obs.Event{Tick: tick, Type: obs.EvMigrationFrozen,
			Fields: taskFields(t, obs.F{"done_tick": t.DoneTick})})
	}
}

func (m *Migrator) complete(t *ExportTask, tick int64) {
	delete(m.frozen, t.Key)
	if _, ok := m.part.EntryAt(t.Key); !ok {
		// The entry was absorbed or split away while the export was in
		// flight (the exporter keeps serving — and the balancer keeps
		// reshaping — the subtree until the freeze). There is nothing
		// left to hand over; committing authority onto the stale key
		// would be a silent no-op at best and a corruption at worst.
		m.drop(t, tick, "vanished")
		return
	}
	t.State = TaskDone
	m.part.SetAuth(t.Key, t.To)
	m.migratedInodes += int64(t.Inodes)
	m.completedTasks++
	if m.Bus.Enabled(obs.EvMigrationCompleted) {
		m.Bus.Emit(obs.Event{Tick: tick, Type: obs.EvMigrationCompleted,
			Fields: taskFields(t, obs.F{"inodes": t.Inodes, "ticks": tick - t.StartTick})})
	}
	if m.onComplete != nil {
		m.onComplete(t)
	}
}

func (m *Migrator) drop(t *ExportTask, tick int64, reason string) {
	t.State = TaskDropped
	m.droppedTasks++
	if m.Bus.Enabled(obs.EvMigrationDropped) {
		m.Bus.Emit(obs.Event{Tick: tick, Type: obs.EvMigrationDropped,
			Fields: taskFields(t, obs.F{"reason": reason})})
	}
}

// rankValid applies the ValidRank hook plus the always-on sanity check
// that a rank is non-negative.
func (m *Migrator) rankValid(r namespace.MDSID) bool {
	if r < 0 {
		return false
	}
	if m.ValidRank == nil {
		return true
	}
	return m.ValidRank(r)
}

// AbortRank cancels every queued and in-flight export that involves the
// given (crashed) rank and returns how many tasks were aborted.
// Authority of an aborted in-flight export rolls to the surviving side:
// if the exporter died the importer completes the takeover (it already
// holds the replicated subtree from the transfer phase, as in a CephFS
// importer finishing from its journal), and if the importer died the
// subtree simply stays with the exporter, which never stopped being
// authoritative. Either way the subtree is unfrozen and the partition
// is left pointing at a live rank for that entry.
func (m *Migrator) AbortRank(dead namespace.MDSID) int {
	aborted := 0
	var stillActive []*ExportTask
	for _, t := range m.active {
		if t.From != dead && t.To != dead {
			stillActive = append(stillActive, t)
			continue
		}
		t.State = TaskAborted
		delete(m.frozen, t.Key)
		if t.From == dead {
			// Exporter died mid-flight: the importer takes over.
			m.part.SetAuth(t.Key, t.To)
		}
		m.abortedTasks++
		aborted++
		if m.Bus.Enabled(obs.EvMigrationAborted) {
			m.Bus.Emit(obs.Event{Tick: m.now, Type: obs.EvMigrationAborted,
				Fields: taskFields(t, obs.F{"dead": int(dead), "in_flight": true})})
		}
	}
	m.active = stillActive

	var stillQueued []*ExportTask
	for _, t := range m.queued {
		if t.From != dead && t.To != dead {
			stillQueued = append(stillQueued, t)
			continue
		}
		t.State = TaskAborted
		m.abortedTasks++
		aborted++
		if m.Bus.Enabled(obs.EvMigrationAborted) {
			m.Bus.Emit(obs.Event{Tick: m.now, Type: obs.EvMigrationAborted,
				Fields: taskFields(t, obs.F{"dead": int(dead), "in_flight": false})})
		}
	}
	m.queued = stillQueued
	return aborted
}

// MigratedInodes returns the cumulative number of migrated inodes.
func (m *Migrator) MigratedInodes() int64 { return m.migratedInodes }

// CompletedTasks returns the number of finished exports.
func (m *Migrator) CompletedTasks() int64 { return m.completedTasks }

// DroppedTasks returns the number of dropped/expired exports.
func (m *Migrator) DroppedTasks() int64 { return m.droppedTasks }

// AbortedTasks returns the number of exports aborted by crashes.
func (m *Migrator) AbortedTasks() int64 { return m.abortedTasks }

// SubmittedTasks returns the number of submitted exports.
func (m *Migrator) SubmittedTasks() int64 { return m.submitted }

// QueuedTasks returns the current queue length (not yet active).
func (m *Migrator) QueuedTasks() int { return len(m.queued) }

// TasksFor returns how many exports the given rank currently has
// queued and in flight as the exporter — the queue depth of the
// per-rank trace timeline.
func (m *Migrator) TasksFor(rank namespace.MDSID) (queued, active int) {
	for _, t := range m.queued {
		if t.From == rank {
			queued++
		}
	}
	for _, t := range m.active {
		if t.From == rank {
			active++
		}
	}
	return queued, active
}

// ActiveTasks returns the number of in-flight exports.
func (m *Migrator) ActiveTasks() int { return len(m.active) }

// ForEachActive visits every in-flight export task in activation order.
// The callback must treat the task as read-only; the state auditor uses
// this to reconcile the frozen set against the active commit windows.
func (m *Migrator) ForEachActive(fn func(*ExportTask)) {
	for _, t := range m.active {
		fn(t)
	}
}

// ForEachQueued visits every queued (not yet active) export task in
// submission order. The callback must treat the task as read-only; the
// state auditor uses this for the decommission invariants.
func (m *Migrator) ForEachQueued(fn func(*ExportTask)) {
	for _, t := range m.queued {
		fn(t)
	}
}

// PendingFor returns queued+active export load already planned away
// from the given exporter, keyed by subtree. Balancers use it to avoid
// double-planning the same subtree.
func (m *Migrator) PendingFor(from namespace.MDSID) map[namespace.FragKey]bool {
	out := make(map[namespace.FragKey]bool)
	for _, t := range m.queued {
		if t.From == from {
			out[t.Key] = true
		}
	}
	for _, t := range m.active {
		if t.From == from {
			out[t.Key] = true
		}
	}
	return out
}

// FrozenKeys returns the frozen subtree entries in deterministic order.
func (m *Migrator) FrozenKeys() []namespace.FragKey {
	out := make([]namespace.FragKey, 0, len(m.frozen))
	for k := range m.frozen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dir != out[j].Dir {
			return out[i].Dir < out[j].Dir
		}
		if out[i].Frag.Bits != out[j].Frag.Bits {
			return out[i].Frag.Bits < out[j].Frag.Bits
		}
		return out[i].Frag.Value < out[j].Frag.Value
	})
	return out
}
