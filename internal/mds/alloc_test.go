//go:build !race

// Steady-state allocation contract for the serve path: once the trace
// window counters, heat cells, and ancestor chain exist for an inode,
// serving further accesses to it must not allocate. AllocsPerRun is
// meaningless under the race detector, so this file is excluded from
// `make race` / `make check`.

package mds

import "testing"

func TestServeZeroAllocSteadyState(t *testing.T) {
	s, e, in := benchServer(t)
	s.Serve(e, in, 0) // materialize counters, heat cells, chain cache
	if n := testing.AllocsPerRun(100, func() { s.Serve(e, in, 0) }); n != 0 {
		t.Fatalf("Serve allocates %.1f per op in the steady state, want 0", n)
	}
}

func TestAddHeatZeroAllocSteadyState(t *testing.T) {
	s, e, in := benchServer(t)
	s.addHeat(e.Key, in, false)
	if n := testing.AllocsPerRun(100, func() { s.addHeat(e.Key, in, false) }); n != 0 {
		t.Fatalf("addHeat allocates %.1f per op in the steady state, want 0", n)
	}
}
