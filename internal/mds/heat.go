package mds

import "repro/internal/namespace"

// heatFloor mirrors the eviction threshold of the original eager decay
// sweep: heat below it reads as zero and is eligible for purging.
const heatFloor = 0.01

// heatPurgeEvery is the period, in heat epochs, of the incremental
// purge that removes expired cells. The trigger depends only on the
// epoch counter — never on read patterns or map iteration order — so
// purging cannot perturb determinism.
const heatPurgeEvery = 64

// heatCell is one lazily decayed popularity counter. Instead of being
// multiplied by the decay factor on every epoch close (an O(table)
// sweep), the cell records the heat epoch it was last written in; reads
// decay it on the fly as val × decay^(now−stamp). A value that has
// decayed below heatFloor reads as zero, exactly like the eager sweep
// that deleted such entries.
type heatCell struct {
	val   float64
	epoch int64
	// rval is the read component of val: the decayed heat contributed by
	// read ops only. It shares val's epoch stamp (every write to the cell
	// folds pending decay into both), and rval <= val always holds — val
	// remains the exact total so every legacy consumer is unchanged. The
	// read fraction rval/val drives the migrate-vs-replicate decision.
	rval float64
	// ops counts raw accesses charged to the cell (no decay) — the
	// replication journal's delta source. Only key cells maintain it.
	ops int64
}

// heatTable holds the decayed popularity counters of one MDS, keyed by
// subtree entry and by directory. Epoch close is O(1): it advances the
// epoch stamp, and every heatPurgeEvery epochs sweeps out expired cells.
type heatTable struct {
	decay float64
	epoch int64
	byKey map[namespace.FragKey]*heatCell
	byDir map[namespace.Ino]*heatCell
	// tenants is the tenant dimension of byKeyT (0 = single-tenant
	// cluster; no per-tenant split is kept and bumpTenant is never
	// called).
	tenants int
	// byKeyT attributes each key's heat to the tenants that generated
	// it — the fairness signal behind "throttle, don't migrate". Only
	// allocated when the cluster runs with tenant QoS.
	byKeyT map[namespace.FragKey]*tenantCell
	// pow[k] = decay^k, built incrementally by repeated multiplication
	// (so pow[k] is exactly what k eager sweeps would have multiplied
	// by, up to floating-point reassociation). Once decay^k underflows
	// past powCutoff every later power reads as zero.
	pow []float64
}

// powCutoff: below this, decay^k × any realistic heat is far under
// heatFloor, so the pow table stops growing and the value reads as 0.
const powCutoff = 1e-30

func newHeatTable(decay float64) *heatTable {
	return &heatTable{
		decay: decay,
		byKey: make(map[namespace.FragKey]*heatCell),
		byDir: make(map[namespace.Ino]*heatCell),
		pow:   []float64{1},
	}
}

// value returns the cell's decayed heat at the current epoch.
func (t *heatTable) value(c *heatCell) float64 {
	k := t.epoch - c.epoch
	if k <= 0 {
		return c.val
	}
	p, ok := t.powAt(k)
	if !ok {
		return 0
	}
	v := c.val * p
	if v < heatFloor {
		return 0
	}
	return v
}

// powAt returns decay^k; ok is false when the power has underflowed
// past powCutoff (value reads as zero).
func (t *heatTable) powAt(k int64) (float64, bool) {
	for int64(len(t.pow)) <= k {
		next := t.pow[len(t.pow)-1] * t.decay
		if next < powCutoff {
			return 0, false
		}
		t.pow = append(t.pow, next)
	}
	return t.pow[k], true
}

// readValue returns the cell's decayed read-component heat at the
// current epoch. Mirrors value() exactly, including the floor, so the
// invariant rval <= val is preserved under decay.
func (t *heatTable) readValue(c *heatCell) float64 {
	k := t.epoch - c.epoch
	if k <= 0 {
		return c.rval
	}
	p, ok := t.powAt(k)
	if !ok {
		return 0
	}
	v := c.rval * p
	if v < heatFloor {
		return 0
	}
	return v
}

// bump folds the pending decay into the cell and adds one access.
// Both components fold together: the cell carries one epoch stamp, so
// any write must decay val and rval in the same step.
func (t *heatTable) bump(c *heatCell, read bool) {
	c.val = t.value(c) + 1
	r := t.readValue(c)
	if read {
		r++
	}
	c.rval = r
	c.epoch = t.epoch
}

// bumpN folds the pending decay into the cell and adds n accesses in
// one write, nRead of which were reads — the group-commit path's
// weighted bump. Within an epoch decay is constant, so n unit bumps and
// one n-weighted bump agree.
func (t *heatTable) bumpN(c *heatCell, n, nRead int) {
	c.val = t.value(c) + float64(n)
	c.rval = t.readValue(c) + float64(nRead)
	c.epoch = t.epoch
}

// keyCell returns the cell for a subtree entry, creating it on first use.
func (t *heatTable) keyCell(key namespace.FragKey) *heatCell {
	c := t.byKey[key]
	if c == nil {
		c = &heatCell{epoch: t.epoch}
		t.byKey[key] = c
	}
	return c
}

// dirCell returns the cell for a directory, creating it on first use.
func (t *heatTable) dirCell(ino namespace.Ino) *heatCell {
	c := t.byDir[ino]
	if c == nil {
		c = &heatCell{epoch: t.epoch}
		t.byDir[ino] = c
	}
	return c
}

// endEpoch closes the current heat epoch in O(1) and reports whether an
// incremental purge ran (callers holding cached cell pointers must
// invalidate them when it did).
func (t *heatTable) endEpoch() (purged bool) {
	t.epoch++
	if t.epoch%heatPurgeEvery != 0 {
		return false
	}
	// Remove expired cells. Deletion only — the surviving state does
	// not depend on map iteration order, so this stays deterministic.
	for k, c := range t.byKey {
		if t.value(c) == 0 {
			delete(t.byKey, k)
		}
	}
	for k, c := range t.byDir {
		if t.value(c) == 0 {
			delete(t.byDir, k)
		}
	}
	for k, c := range t.byKeyT {
		sum := 0.0
		for _, v := range c.vals {
			sum += v
		}
		if p, ok := t.powAt(t.epoch - c.epoch); ok && sum*p >= heatFloor {
			continue
		}
		delete(t.byKeyT, k)
	}
	return true
}

// entries counts the subtree cells currently carrying non-negligible
// heat. Pure read: no mutation, no order dependence.
func (t *heatTable) entries() int {
	n := 0
	for _, c := range t.byKey {
		if t.value(c) > 0 {
			n++
		}
	}
	return n
}

// minValue returns the smallest decayed value across all cells, or 0
// for an empty table. Pure read over unordered maps: min is
// order-independent, so this cannot perturb determinism.
func (t *heatTable) minValue() float64 {
	min := 0.0
	first := true
	for _, c := range t.byKey {
		if v := t.value(c); first || v < min {
			min, first = v, false
		}
	}
	for _, c := range t.byDir {
		if v := t.value(c); first || v < min {
			min, first = v, false
		}
	}
	if first {
		return 0
	}
	return min
}

// tenantCell tracks one key's per-tenant decayed heat split — which
// tenant is responsible for the key being hot. It shares the table's
// epoch/decay regime: all components decay by the same factor, so the
// per-tenant shares (and therefore the dominance test) are invariant
// under pending decay.
type tenantCell struct {
	vals  []float64
	epoch int64
}

// setTenants gives the table a tenant dimension. Idempotent; called at
// cluster construction and again after Rejoin rebuilds the table.
func (t *heatTable) setTenants(n int) {
	t.tenants = n
	if n > 0 && t.byKeyT == nil {
		t.byKeyT = make(map[namespace.FragKey]*tenantCell)
	}
}

// bumpTenant folds pending decay into the key's tenant split and
// charges n accesses to tenant tn. Only called when the table has a
// tenant dimension.
func (t *heatTable) bumpTenant(key namespace.FragKey, tn, n int) {
	c := t.byKeyT[key]
	if c == nil {
		c = &tenantCell{vals: make([]float64, t.tenants), epoch: t.epoch}
		t.byKeyT[key] = c
	}
	if k := t.epoch - c.epoch; k > 0 {
		p, ok := t.powAt(k)
		if !ok {
			p = 0
		}
		for i := range c.vals {
			c.vals[i] *= p
		}
		c.epoch = t.epoch
	}
	c.vals[tn] += float64(n)
}

// dominantTenant returns the tenant responsible for MORE than half of
// the key's tenant-attributed heat, or -1 when no tenant dominates.
// Pending decay scales every component equally, so the shares need no
// fold before comparing.
func (t *heatTable) dominantTenant(key namespace.FragKey) int {
	c := t.byKeyT[key]
	if c == nil {
		return -1
	}
	best, bestV, sum := -1, 0.0, 0.0
	for i, v := range c.vals {
		sum += v
		if v > bestV {
			best, bestV = i, v
		}
	}
	if sum <= 0 || bestV*2 <= sum {
		return -1
	}
	return best
}

// tenantHeat returns the key's decayed heat attributed to tenant tn
// (0 when the key carries no tenant split).
func (t *heatTable) tenantHeat(key namespace.FragKey, tn int) float64 {
	c := t.byKeyT[key]
	if c == nil || tn < 0 || tn >= len(c.vals) {
		return 0
	}
	p, ok := t.powAt(t.epoch - c.epoch)
	if !ok {
		return 0
	}
	v := c.vals[tn] * p
	if v < heatFloor {
		return 0
	}
	return v
}

// dirChain caches the ancestor heat cells an access to a child of one
// parent directory must bump: the cells for parent, grandparent, ...,
// up to and including the subtree root stop. Repeated accesses under
// the same parent (the common case — shared-directory workloads hammer
// one dir) reduce to one map lookup plus pointer bumps instead of an
// O(depth) map walk per op.
type dirChain struct {
	gen  uint64        // server cache generation the chain was built in
	stop namespace.Ino // subtree root the chain was built against
	dirs []*heatCell
}
