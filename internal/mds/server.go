// Package mds models the metadata servers of the cluster: bounded
// per-tick service capacity, request accounting, the access statistics
// the balancers read (cutting-window trace for Lunule, decayed
// popularity/heat for the CephFS built-in policy), and the subtree
// migration engine with its two-phase-commit cost model (transfer
// latency, freeze windows, bounded concurrency, and queueing).
package mds

import (
	"repro/internal/namespace"
	"repro/internal/trace"
)

// RankState is the lifecycle state of an MDS rank.
type RankState uint8

// Rank lifecycle states. Legal transitions:
//
//	Active   -> Down            (Crash)
//	Active   -> Draining        (StartDrain: elastic scale-down begins)
//	Draining -> Down            (Crash mid-drain; the drain is cancelled)
//	Draining -> Decommissioned  (Decommission: the rank governs nothing)
//	Down     -> Active          (Rejoin)
//
// Decommissioned is terminal: the rank's slot stays in the server list
// (rank IDs are stable indices) but it never serves, imports, or
// rejoins again.
const (
	RankActive RankState = iota
	RankDown
	RankDraining
	RankDecommissioned
)

// String renders the state for events and audit messages.
func (s RankState) String() string {
	switch s {
	case RankActive:
		return "active"
	case RankDown:
		return "down"
	case RankDraining:
		return "draining"
	case RankDecommissioned:
		return "decommissioned"
	default:
		return "invalid"
	}
}

// Server is one metadata server (one MDS rank).
type Server struct {
	ID       namespace.MDSID
	Capacity int // metadata ops the server can process per tick

	budget      int   // remaining capacity in the current tick
	opsTick     int   // ops served this tick
	opsEpoch    int64 // ops served this epoch
	opsTotal    int64 // ops served overall
	fwdTotal    int64 // forwarding units served overall
	stallsTotal int64 // requests stalled here (no budget or frozen target)

	state     RankState // lifecycle state (see RankState)
	downTicks int64     // cumulative ticks spent down
	crashes   int64     // lifecycle transitions up -> down

	collector      *trace.Collector
	historyWindows int

	heatDecay float64
	heat      *heatTable
	// tenants is the tenant dimension of the heat table's per-tenant
	// split (0 = single-tenant). Kept on the server so Rejoin, which
	// rebuilds the table, can re-apply it.
	tenants int

	// chainCache memoizes, per parent directory, the ancestor heat
	// cells an access under that directory bumps. Invalidated by
	// bumping cacheGen (on rejoin and after heat purges, which may
	// delete cells the chains point at).
	chainCache map[namespace.Ino]*dirChain
	cacheGen   uint64

	loadHistory []float64 // per-epoch load (ops/sec), appended by EndEpoch

	// journal is the rank's group-commit journal of write-back batches
	// awaiting application (empty unless the cluster runs in write-back
	// mode). A crash drops it; the engine re-queues the ops client-side.
	journal Journal
}

// NewServer creates an MDS with the given per-tick capacity. The
// collector retains historyWindows cutting windows; heatDecay in (0,1]
// is the per-epoch multiplicative decay of the popularity counters
// (CephFS-style exponential aging).
func NewServer(id namespace.MDSID, capacity, historyWindows int, heatDecay float64) *Server {
	if capacity <= 0 {
		panic("mds: capacity must be positive")
	}
	if heatDecay <= 0 || heatDecay > 1 {
		panic("mds: heat decay must be in (0, 1]")
	}
	return &Server{
		ID:             id,
		Capacity:       capacity,
		collector:      trace.NewCollector(historyWindows),
		historyWindows: historyWindows,
		heatDecay:      heatDecay,
		heat:           newHeatTable(heatDecay),
		chainCache:     make(map[namespace.Ino]*dirChain),
		cacheGen:       1,
		journal:        Journal{rank: id},
	}
}

// BeginTick resets the per-tick service budget. A down or
// decommissioned server gets no budget; a draining one keeps serving
// at full capacity until its last subtree has been exported.
func (s *Server) BeginTick() {
	switch s.state {
	case RankDown:
		s.budget = 0
		s.opsTick = 0
		s.downTicks++
	case RankDecommissioned:
		s.budget = 0
		s.opsTick = 0
	default:
		s.budget = s.Capacity
		s.opsTick = 0
	}
}

// SetCapacity changes the server's per-tick capacity (heterogeneous
// hardware, degradation injection). It takes effect at the next tick.
// Non-positive capacities are clamped to 1; the return values make the
// clamp explicit (applied capacity, whether clamping happened), so
// fault scripts with typo'd values cannot silently degenerate to a
// 1-op/s server without the caller noticing.
func (s *Server) SetCapacity(capacity int) (applied int, clamped bool) {
	if capacity < 1 {
		capacity = 1
		clamped = true
	}
	s.Capacity = capacity
	return capacity, clamped
}

// Up reports whether the server is alive (serving requests). A
// draining rank is still up — it serves everything it governs until
// the drain empties it.
func (s *Server) Up() bool { return s.state == RankActive || s.state == RankDraining }

// State returns the rank's lifecycle state.
func (s *Server) State() RankState { return s.state }

// Draining reports whether the rank is being gracefully emptied.
func (s *Server) Draining() bool { return s.state == RankDraining }

// Decommissioned reports whether the rank has been retired.
func (s *Server) Decommissioned() bool { return s.state == RankDecommissioned }

// StartDrain moves an active rank into Draining: it keeps serving but
// must no longer be chosen as an import target; the cluster bulk-
// exports everything it governs. Returns false unless the rank was
// Active.
func (s *Server) StartDrain() bool {
	if s.state != RankActive {
		return false
	}
	s.state = RankDraining
	return true
}

// Decommission retires a drained rank: it serves nothing, imports
// nothing, and never rejoins. Returns false unless the rank was
// Draining (a rank must be emptied before it is retired; the caller
// checks it governs nothing).
func (s *Server) Decommission() bool {
	if s.state != RankDraining {
		return false
	}
	s.state = RankDecommissioned
	s.budget = 0
	return true
}

// Crash takes the server down: its remaining budget is voided and it
// serves nothing until Rejoin. A draining rank can crash (the drain is
// cancelled; failover takes over its remaining subtrees). Crashing a
// down or decommissioned server is a no-op.
func (s *Server) Crash() {
	if !s.Up() {
		return
	}
	s.state = RankDown
	s.budget = 0
	s.crashes++
}

// Rejoin brings a crashed server back up. Its heat and trace
// statistics are invalidated — a restarted MDS has an empty cache and
// an empty journal of recent accesses, so stale pre-crash popularity
// must not steer post-recovery balancing — and its load history is
// cleared for the same reason. Rejoining a server that is not down
// (including a decommissioned one) is a no-op.
func (s *Server) Rejoin() {
	if s.state != RankDown {
		return
	}
	s.state = RankActive
	s.collector = trace.NewCollector(s.historyWindows)
	s.heat = newHeatTable(s.heatDecay)
	s.heat.setTenants(s.tenants)
	s.chainCache = make(map[namespace.Ino]*dirChain)
	s.cacheGen++
	s.loadHistory = nil
	s.opsEpoch = 0
}

// Crashes returns how many times the server went down.
func (s *Server) Crashes() int64 { return s.crashes }

// DownTicks returns the cumulative ticks the server spent down.
func (s *Server) DownTicks() int64 { return s.downTicks }

// HasBudget reports whether the server can accept more work this tick.
func (s *Server) HasBudget() bool { return s.budget > 0 }

// RemainingBudget returns the number of ops the server can still accept
// this tick. The parallel engine snapshots it at round barriers to
// admit relay hops without cross-rank writes mid-round.
func (s *Server) RemainingBudget() int { return s.budget }

// AddForwardCharges applies n relay charges buffered by the parallel
// engine at a phase barrier: the rank that resolved a chain through
// this server charges it here instead of calling ConsumeForward from
// another goroutine. Admission was decided against the round-start
// budget snapshot, so the whole batch is charged, flooring the budget
// at zero (a relay hop never owes work into the next tick).
func (s *Server) AddForwardCharges(n int) {
	if n <= 0 {
		return
	}
	s.budget -= n
	if s.budget < 0 {
		s.budget = 0
	}
	s.fwdTotal += int64(n)
}

// AddStalls applies n stall notes buffered by the parallel engine at a
// phase barrier (the barrier-batched form of NoteStall).
func (s *Server) AddStalls(n int64) { s.stallsTotal += n }

// ConsumeForward charges one forwarding unit (a request relayed through
// this server on its way to the authoritative MDS). It returns false
// without charging when the server is saturated.
func (s *Server) ConsumeForward() bool {
	if s.budget <= 0 {
		return false
	}
	s.budget--
	s.fwdTotal++
	return true
}

// Serve processes one metadata access to in, governed by subtree entry
// e, during the given epoch. It returns false without side effects when
// the server is saturated this tick. The access is charged as a read;
// callers that know the op kind use ServeDeferVisit directly.
func (s *Server) Serve(e namespace.Entry, in *namespace.Inode, epoch int64) bool {
	ok, first := s.ServeDeferVisit(e, in, epoch, false)
	if first {
		in.MarkVisited()
	}
	return ok
}

// ServeDeferVisit is Serve with the first-visit side effect handed back
// to the caller: firstVisit=true means the inode was accessed for the
// first time ever and the caller owes it a MarkVisited. The parallel
// engine uses this to keep the serve path free of ancestor-chain
// writes (MarkVisited walks shared ancestor counters), buffering the
// inodes per rank lane and applying the walks at the serial barrier.
// write classifies the access for the read/write heat split; the total
// heat charged is identical either way.
func (s *Server) ServeDeferVisit(e namespace.Entry, in *namespace.Inode, epoch int64, write bool) (ok, firstVisit bool) {
	if s.budget <= 0 {
		return false, false
	}
	s.budget--
	s.opsTick++
	s.opsEpoch++
	s.opsTotal++
	firstVisit = s.collector.RecordNoVisit(e.Key, in, epoch)
	s.addHeat(e.Key, in, write)
	return true, firstVisit
}

// NoteStall records a request that could not be served this tick.
func (s *Server) NoteStall() { s.stallsTotal++ }

// Journal returns the rank's group-commit journal of write-back
// batches. It is empty unless the cluster runs clients in write-back
// mode; the auditor sums Journal().Ops() across ranks against the
// clients' in-flight counters.
func (s *Server) Journal() *Journal { return &s.journal }

// ConsumeGroupBudget charges one budget unit for a commit group — the
// group-commit amortization: a group of up to BatchSize batched ops
// costs the server what one synchronous op would. Returns false without
// charging when the server is saturated this tick.
func (s *Server) ConsumeGroupBudget() bool {
	if s.budget <= 0 {
		return false
	}
	s.budget--
	return true
}

// AddOps credits n already-admitted batch ops to the serve counters
// without consuming budget (the budget was charged per commit group, not
// per op). The per-op trace-collector and latency work still happens in
// the engine; only the counters are batched here.
func (s *Server) AddOps(n int) {
	if n <= 0 {
		return
	}
	s.opsTick += n
	s.opsEpoch += int64(n)
	s.opsTotal += int64(n)
}

// AddHeatRun charges n accesses, nRead of which were reads, under one
// parent directory in a single weighted walk — the batch path's
// amortized form of addHeat. in is a representative inode of the run
// (all ops in the run share in.Parent and the governing key).
func (s *Server) AddHeatRun(key namespace.FragKey, in *namespace.Inode, n, nRead int) {
	if n <= 0 {
		return
	}
	kc := s.heat.keyCell(key)
	s.heat.bumpN(kc, n, nRead)
	kc.ops += int64(n)
	par := in.Parent
	if par == nil {
		return
	}
	cc := s.chainCache[par.Ino]
	if cc == nil || cc.gen != s.cacheGen || cc.stop != key.Dir {
		cc = s.buildChain(par, key.Dir)
		s.chainCache[par.Ino] = cc
	}
	for _, c := range cc.dirs {
		s.heat.bumpN(c, n, nRead)
	}
}

// addHeat charges one access to the subtree entry's counter and to
// every directory from the inode's parent up to the subtree root.
// The ancestor walk is cached per parent directory (a few pointer
// bumps in the steady state); the chain is rebuilt when the governing
// subtree root changes (split/migration) or the cache generation moves.
func (s *Server) addHeat(key namespace.FragKey, in *namespace.Inode, write bool) {
	read := !write
	kc := s.heat.keyCell(key)
	s.heat.bump(kc, read)
	kc.ops++
	par := in.Parent
	if par == nil {
		return
	}
	cc := s.chainCache[par.Ino]
	if cc == nil || cc.gen != s.cacheGen || cc.stop != key.Dir {
		cc = s.buildChain(par, key.Dir)
		s.chainCache[par.Ino] = cc
	}
	for _, c := range cc.dirs {
		s.heat.bump(c, read)
	}
}

// buildChain collects the heat cells for par, par's parent, ..., up to
// and including the directory stop (or the root if stop is not an
// ancestor), mirroring the original per-op ancestor walk.
func (s *Server) buildChain(par *namespace.Inode, stop namespace.Ino) *dirChain {
	cc := &dirChain{gen: s.cacheGen, stop: stop}
	for d := par; d != nil; d = d.Parent {
		cc.dirs = append(cc.dirs, s.heat.dirCell(d.Ino))
		if d.Ino == stop {
			break
		}
	}
	return cc
}

// EndEpoch closes the current epoch: it computes the epoch's load in
// ops/sec (epochTicks ticks of one second each), appends it to the load
// history, advances the lazy heat-decay epoch, and resets the epoch
// counter. It returns the epoch load. Unlike the original O(table)
// multiplicative sweep, closing an epoch is O(1): counters carry an
// epoch stamp and reads decay them as heat × decay^(now−stamp); an
// incremental purge sweeps expired cells every heatPurgeEvery epochs.
func (s *Server) EndEpoch(epochTicks int) float64 {
	if epochTicks <= 0 {
		epochTicks = 1
	}
	load := float64(s.opsEpoch) / float64(epochTicks)
	s.loadHistory = append(s.loadHistory, load)
	s.opsEpoch = 0
	if s.heat.endEpoch() {
		// The purge may have removed cells cached chains point at.
		s.cacheGen++
	}
	return load
}

// Collector returns the server's cutting-window trace collector.
func (s *Server) Collector() *trace.Collector { return s.collector }

// HeatOfKey returns the decayed popularity of a subtree entry.
func (s *Server) HeatOfKey(key namespace.FragKey) float64 {
	c := s.heat.byKey[key]
	if c == nil {
		return 0
	}
	return s.heat.value(c)
}

// KeyStats returns the subtree entry's cumulative raw access count and
// its decayed popularity — the replication journal's per-ship delta
// source. The ops counter resets when the cell is dropped (migration)
// or the table is wiped (rejoin); the journal detects the reset by the
// counter going backwards.
func (s *Server) KeyStats(key namespace.FragKey) (ops int64, heat float64) {
	c := s.heat.byKey[key]
	if c == nil {
		return 0, 0
	}
	return c.ops, s.heat.value(c)
}

// SeedHeat installs warm popularity for a subtree entry — the applied
// journal prefix a promoted standby carries — so the balancer sees the
// promoted subtree's history instead of a cold zero. Non-positive
// seeds are ignored.
func (s *Server) SeedHeat(key namespace.FragKey, heat float64) {
	if heat <= 0 {
		return
	}
	c := s.heat.keyCell(key)
	c.val = s.heat.value(c) + heat
	// Fold the read component's pending decay under the new stamp. The
	// seed itself lands in the write side: a promoted subtree re-earns
	// its read-dominance from live traffic before leases re-form.
	c.rval = s.heat.readValue(c)
	c.epoch = s.heat.epoch
}

// SeedHeatRW installs warm popularity with an explicit read component.
// The lease controller's carve pass uses it to transfer a directory's
// accumulated (total, read) heat onto the freshly carved subtree key:
// without the transfer the new key starts cold, fails the hot and
// read-dominance checks, and is absorbed right back by housekeeping
// before a lease can form. The read component is clamped to the total
// to preserve the rval <= val invariant.
func (s *Server) SeedHeatRW(key namespace.FragKey, heat, read float64) {
	if heat <= 0 {
		return
	}
	c := s.heat.keyCell(key)
	c.val = s.heat.value(c) + heat
	rv := s.heat.readValue(c) + read
	if rv > c.val {
		rv = c.val
	}
	c.rval = rv
	c.epoch = s.heat.epoch
}

// KeyHeatRW returns a subtree entry's decayed popularity split into the
// total and its read component (read <= total). The ratio read/total is
// the migrate-vs-replicate signal: read-dominated hot subtrees get
// read leases, write-hot ones migrate.
func (s *Server) KeyHeatRW(key namespace.FragKey) (total, read float64) {
	c := s.heat.byKey[key]
	if c == nil {
		return 0, 0
	}
	return s.heat.value(c), s.heat.readValue(c)
}

// DirHeatRW returns a directory's decayed popularity split into the
// total and its read component — the lease controller's carve signal.
func (s *Server) DirHeatRW(ino namespace.Ino) (total, read float64) {
	c := s.heat.byDir[ino]
	if c == nil {
		return 0, 0
	}
	return s.heat.value(c), s.heat.readValue(c)
}

// HeatOfDir returns the decayed popularity accumulated at a directory.
func (s *Server) HeatOfDir(ino namespace.Ino) float64 {
	c := s.heat.byDir[ino]
	if c == nil {
		return 0
	}
	return s.heat.value(c)
}

// HeatEntries returns how many subtree entries currently carry
// non-negligible heat — the heat-table size of the per-rank trace
// timeline.
func (s *Server) HeatEntries() int { return s.heat.entries() }

// MinHeat returns the smallest decayed popularity value across every
// heat cell (key and directory), or 0 when the table is empty. Heat
// only accumulates accesses and decays multiplicatively, so a negative
// reading means counter corruption; the state auditor checks it.
func (s *Server) MinHeat() float64 {
	return s.heat.minValue()
}

// DropSubtreeStats clears trace and heat state for a subtree that has
// been migrated away. (Chain caches only hold directory cells, so no
// invalidation is needed for a key-cell delete.)
func (s *Server) DropSubtreeStats(key namespace.FragKey) {
	s.collector.Forget(key)
	delete(s.heat.byKey, key)
	delete(s.heat.byKeyT, key)
}

// EnableTenants gives the server's heat table a per-tenant dimension
// of n tenants. Survives Rejoin (the rebuilt table re-applies it).
func (s *Server) EnableTenants(n int) {
	s.tenants = n
	s.heat.setTenants(n)
}

// AddTenantHeat attributes n served accesses under the key to tenant
// t's share of the key's heat. No-op on single-tenant servers or
// out-of-range tenants, so call sites need no guard.
func (s *Server) AddTenantHeat(key namespace.FragKey, t, n int) {
	if s.tenants == 0 || t < 0 || t >= s.tenants || n <= 0 {
		return
	}
	s.heat.bumpTenant(key, t, n)
}

// DominantTenant returns the tenant responsible for more than half of
// the key's tenant-attributed heat, or -1 when no tenant dominates
// (including on single-tenant servers).
func (s *Server) DominantTenant(key namespace.FragKey) int {
	if s.tenants == 0 {
		return -1
	}
	return s.heat.dominantTenant(key)
}

// TenantHeat returns the key's decayed heat attributed to tenant t.
func (s *Server) TenantHeat(key namespace.FragKey, t int) float64 {
	return s.heat.tenantHeat(key, t)
}

// LoadHistory returns the per-epoch load series (ops/sec). The returned
// slice is shared; callers must not modify it.
func (s *Server) LoadHistory() []float64 { return s.loadHistory }

// CurrentLoad returns the most recent completed epoch's load, or 0.
func (s *Server) CurrentLoad() float64 {
	if len(s.loadHistory) == 0 {
		return 0
	}
	return s.loadHistory[len(s.loadHistory)-1]
}

// OpsThisTick returns the ops served in the current tick so far.
func (s *Server) OpsThisTick() int { return s.opsTick }

// OpsTotal returns the total metadata ops served.
func (s *Server) OpsTotal() int64 { return s.opsTotal }

// Forwards returns the total forwarding units served.
func (s *Server) Forwards() int64 { return s.fwdTotal }

// Stalls returns the total requests that stalled at this server.
func (s *Server) Stalls() int64 { return s.stallsTotal }
