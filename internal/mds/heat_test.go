package mds

import (
	"math"
	"testing"

	"repro/internal/namespace"
)

// eagerHeat is the reference implementation the lazy table replaced:
// every epoch close multiplies every counter by the decay factor and
// deletes entries that fall below the floor.
type eagerHeat struct {
	decay float64
	vals  map[int]float64
}

func (e *eagerHeat) bump(id int) { e.vals[id]++ }
func (e *eagerHeat) read(id int) float64 {
	v := e.vals[id]
	if v < heatFloor {
		return 0
	}
	return v
}
func (e *eagerHeat) endEpoch() {
	for id, v := range e.vals {
		v *= e.decay
		if v < heatFloor {
			delete(e.vals, id)
			continue
		}
		e.vals[id] = v
	}
}

// TestLazyHeatMatchesEagerSweep drives the lazy table and the eager
// reference through an identical deterministic schedule of bumps and
// epoch closes — including gaps long enough for values to expire and
// for the periodic purge to run — and asserts every read agrees within
// floating-point reassociation error (lazy computes val×decay^k with a
// precomputed power; eager multiplies k times in sequence).
func TestLazyHeatMatchesEagerSweep(t *testing.T) {
	const decay = 0.5
	lazy := newHeatTable(decay)
	eager := &eagerHeat{decay: decay, vals: map[int]float64{}}
	cells := map[int]*heatCell{}
	cell := func(id int) *heatCell {
		c := cells[id]
		if c == nil {
			c = &heatCell{epoch: lazy.epoch}
			cells[id] = c
		}
		return c
	}

	check := func(step int, ids ...int) {
		t.Helper()
		for _, id := range ids {
			got := lazy.value(cell(id))
			want := eager.read(id)
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("step %d, cell %d: lazy %v != eager %v (epoch %d)",
					step, id, got, want, lazy.epoch)
			}
		}
	}

	// A deterministic schedule: each step bumps a subset of cells some
	// number of times, then closes the epoch. Cell 0 is hot throughout,
	// cell 1 goes cold and must expire, cell 2 reappears after a gap,
	// cells 3+ churn. 200 epochs crosses the purge period (64) 3 times.
	for step := 0; step < 200; step++ {
		bumps := []struct{ id, n int }{{0, 5}}
		if step < 10 {
			bumps = append(bumps, struct{ id, n int }{1, 3})
		}
		if step%40 == 0 {
			bumps = append(bumps, struct{ id, n int }{2, 7})
		}
		bumps = append(bumps, struct{ id, n int }{3 + step%4, 1})
		for _, b := range bumps {
			for i := 0; i < b.n; i++ {
				lazy.bump(cell(b.id), false)
				eager.bump(b.id)
			}
		}
		check(step, 0, 1, 2, 3, 4, 5, 6)
		lazy.endEpoch()
		eager.endEpoch()
		check(step, 0, 1, 2, 3, 4, 5, 6)
	}

	// Cell 1 stopped being bumped at step 10 with heat ~6; at decay 0.5
	// it is far below the floor by now and must read as zero.
	if v := lazy.value(cell(1)); v != 0 {
		t.Fatalf("expired cell reads %v, want 0", v)
	}
}

// TestHeatPurgeRemovesExpiredCells asserts the periodic purge actually
// frees table entries (the lazy design's answer to unbounded growth)
// without touching live ones.
func TestHeatPurgeRemovesExpiredCells(t *testing.T) {
	lazy := newHeatTable(0.5)
	key := func(i int) namespace.FragKey { return namespace.FragKey{Dir: namespace.Ino(i)} }
	hot := lazy.keyCell(key(0))
	for i := 0; i < 1000; i++ {
		lazy.bump(lazy.keyCell(key(i)), false)
	}
	if got := len(lazy.byKey); got != 1000 {
		t.Fatalf("table has %d cells, want 1000", got)
	}
	for e := 0; e < heatPurgeEvery; e++ {
		lazy.bump(hot, false) // keep one cell alive across every epoch
		if lazy.endEpoch() != (lazy.epoch%heatPurgeEvery == 0) {
			t.Fatalf("purge signal wrong at epoch %d", lazy.epoch)
		}
	}
	if got := len(lazy.byKey); got != 1 {
		t.Fatalf("after purge: %d cells, want only the hot one", got)
	}
	if lazy.value(hot) == 0 {
		t.Fatal("hot cell must survive the purge")
	}
}
