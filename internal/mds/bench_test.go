package mds

import (
	"testing"

	"repro/internal/namespace"
)

// benchServer builds a server plus a fixture tree and returns the
// governing entry and inode the benchmarks hammer. Capacity is huge so
// budget never saturates mid-iteration.
func benchServer(b testing.TB) (*Server, namespace.Entry, *namespace.Inode) {
	b.Helper()
	_, p, files := fixture(b)
	s := NewServer(0, 1<<30, 4, 0.5)
	s.BeginTick()
	e := p.GoverningEntry(files[0])
	return s, e, files[0]
}

// BenchmarkServe measures the full per-op serve path: budget, trace
// collector, and heat accounting with the cached ancestor chain.
func BenchmarkServe(b *testing.B) {
	s, e, in := benchServer(b)
	s.Serve(e, in, 0) // warm caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Serve(e, in, 0)
	}
}

// BenchmarkAddHeat isolates the heat accounting (subtree counter bump
// plus the cached directory-chain walk).
func BenchmarkAddHeat(b *testing.B) {
	s, e, in := benchServer(b)
	s.addHeat(e.Key, in, false) // warm the chain cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.addHeat(e.Key, in, false)
	}
}

// BenchmarkEndEpoch measures epoch close with a populated heat table;
// with lazy decay this is O(1) outside the periodic purge.
func BenchmarkEndEpoch(b *testing.B) {
	_, p, files := fixture(b)
	s := NewServer(0, 1<<30, 4, 0.5)
	s.BeginTick()
	for _, f := range files {
		s.Serve(p.GoverningEntry(f), f, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EndEpoch(10)
	}
}
