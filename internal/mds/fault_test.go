package mds

import (
	"fmt"
	"testing"

	"repro/internal/namespace"
)

func TestServerCrashRejoinLifecycle(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 100, 4, 0.5)
	e := p.GoverningEntry(files[0])
	s.BeginTick()
	if !s.Serve(e, files[0], 0) {
		t.Fatal("healthy server must serve")
	}
	s.Crash()
	if s.Up() {
		t.Fatal("crashed server must report down")
	}
	if s.Serve(e, files[1], 0) {
		t.Fatal("crashed server must not serve residual budget")
	}
	if s.ConsumeForward() {
		t.Fatal("crashed server must not forward")
	}
	s.BeginTick()
	if s.HasBudget() {
		t.Fatal("down server must get no budget at BeginTick")
	}
	if s.DownTicks() != 1 {
		t.Fatalf("down ticks = %d, want 1", s.DownTicks())
	}
	// Crash is idempotent.
	s.Crash()
	if s.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", s.Crashes())
	}

	s.Rejoin()
	if !s.Up() {
		t.Fatal("rejoined server must be up")
	}
	s.BeginTick()
	if !s.Serve(e, files[2], 1) {
		t.Fatal("rejoined server must serve")
	}
	// Rejoin is idempotent.
	s.Rejoin()
	if s.Crashes() != 1 {
		t.Fatalf("crashes after rejoin = %d", s.Crashes())
	}
}

func TestServerRejoinInvalidatesStats(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 1000, 4, 0.5)
	e := p.GoverningEntry(files[0])
	s.BeginTick()
	for i := 0; i < 10; i++ {
		s.Serve(e, files[i], 0)
	}
	s.EndEpoch(10)
	if s.HeatOfKey(e.Key) == 0 || s.CurrentLoad() == 0 {
		t.Fatal("fixture must accumulate stats")
	}
	s.Crash()
	s.Rejoin()
	if s.HeatOfKey(e.Key) != 0 {
		t.Fatal("heat must be invalidated on rejoin")
	}
	if s.HeatOfDir(files[0].Parent.Ino) != 0 {
		t.Fatal("dir heat must be invalidated on rejoin")
	}
	if got := s.Collector().RecentKey(e.Key, 0, 1); !got.IsZero() {
		t.Fatal("trace must be invalidated on rejoin")
	}
	if s.CurrentLoad() != 0 || len(s.LoadHistory()) != 0 {
		t.Fatal("load history must be invalidated on rejoin")
	}
	// Ops totals are lifetime counters and survive.
	if s.OpsTotal() != 10 {
		t.Fatalf("ops total = %d", s.OpsTotal())
	}
}

func TestSetCapacityReportsClamp(t *testing.T) {
	s := NewServer(0, 100, 4, 0.5)
	if applied, clamped := s.SetCapacity(50); applied != 50 || clamped {
		t.Fatalf("SetCapacity(50) = %d, %v", applied, clamped)
	}
	for _, bad := range []int{0, -1, -100} {
		applied, clamped := s.SetCapacity(bad)
		if applied != 1 || !clamped {
			t.Fatalf("SetCapacity(%d) = %d, %v; want 1, true", bad, applied, clamped)
		}
		if s.Capacity != 1 {
			t.Fatalf("capacity after clamp = %d", s.Capacity)
		}
	}
}

// abortFixture builds a partition with two carved subtrees and a
// migrator whose ValidRank hook tracks a mutable down-set.
func abortFixture(t *testing.T) (*namespace.Partition, *Migrator, []namespace.FragKey, map[namespace.MDSID]bool) {
	t.Helper()
	tr := namespace.NewTree()
	p := namespace.NewPartition(tr, 0)
	var keys []namespace.FragKey
	for _, name := range []string{"a", "b"} {
		d, err := tr.Mkdir(tr.Root(), name)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 40; j++ {
			if _, err := tr.Create(d, fmt.Sprintf("%s%02d", name, j), 1); err != nil {
				t.Fatal(err)
			}
		}
		keys = append(keys, p.Carve(d).Key)
	}
	down := make(map[namespace.MDSID]bool)
	m := NewMigrator(p, 10, 2, 100)
	m.ValidRank = func(r namespace.MDSID) bool { return !down[r] }
	return p, m, keys, down
}

func TestMigratorAbortOnExporterCrash(t *testing.T) {
	p, m, keys, _ := abortFixture(t)
	task := m.Submit(keys[0], 0, 1, 50, 0)
	m.Tick(0)
	if task.State != TaskActive {
		t.Fatalf("state = %v, want active", task.State)
	}
	// Exporter 0 dies mid-flight: the importer takes over the subtree.
	if got := m.AbortRank(0); got != 1 {
		t.Fatalf("aborted = %d, want 1", got)
	}
	if task.State != TaskAborted {
		t.Fatalf("state = %v, want aborted", task.State)
	}
	if e, _ := p.EntryAt(keys[0]); e.Auth != 1 {
		t.Fatalf("authority = %d, want importer 1 (surviving side)", e.Auth)
	}
	if m.IsFrozen(keys[0]) {
		t.Fatal("aborted subtree must unfreeze")
	}
	if m.ActiveTasks() != 0 || m.AbortedTasks() != 1 {
		t.Fatalf("active = %d aborted = %d", m.ActiveTasks(), m.AbortedTasks())
	}
	if m.DroppedTasks() != 0 {
		t.Fatal("aborts must not be accounted as drops")
	}
}

func TestMigratorAbortOnImporterCrash(t *testing.T) {
	p, m, keys, _ := abortFixture(t)
	task := m.Submit(keys[0], 0, 1, 50, 0)
	m.Tick(0)
	if task.State != TaskActive {
		t.Fatalf("state = %v, want active", task.State)
	}
	// Importer 1 dies mid-flight: authority stays with the exporter.
	if got := m.AbortRank(1); got != 1 {
		t.Fatalf("aborted = %d, want 1", got)
	}
	if task.State != TaskAborted {
		t.Fatalf("state = %v, want aborted", task.State)
	}
	if e, _ := p.EntryAt(keys[0]); e.Auth != 0 {
		t.Fatalf("authority = %d, want exporter 0 (surviving side)", e.Auth)
	}
	if m.AbortedTasks() != 1 || m.CompletedTasks() != 0 {
		t.Fatal("abort accounting")
	}
	// Completing later ticks must not resurrect the task.
	for tick := int64(1); tick < 10; tick++ {
		m.Tick(tick)
	}
	if m.CompletedTasks() != 0 {
		t.Fatal("aborted task must never complete")
	}
}

func TestMigratorAbortQueuedTasks(t *testing.T) {
	_, m, keys, _ := abortFixture(t)
	t0 := m.Submit(keys[0], 0, 1, 50, 0)
	t1 := m.Submit(keys[1], 2, 1, 50, 0)
	// Importer 1 dies before activation: both queued tasks abort.
	if got := m.AbortRank(1); got != 2 {
		t.Fatalf("aborted = %d, want 2", got)
	}
	if t0.State != TaskAborted || t1.State != TaskAborted {
		t.Fatal("queued tasks involving the dead rank must abort")
	}
	if m.QueuedTasks() != 0 {
		t.Fatal("queue must be purged")
	}
}

// TestMigratorAbortExporterCrashImporterDraining is the drain/crash
// composition at the migrator level: the export is already in flight
// when the importer stops being a valid placement target (it started
// draining), and then the exporter dies. The abort must still roll
// authority to the draining importer — the data already lives there,
// and its own drain re-exports the subtree afterwards. AbortRank must
// not consult ValidRank for the surviving side.
func TestMigratorAbortExporterCrashImporterDraining(t *testing.T) {
	p, m, keys, down := abortFixture(t)
	task := m.Submit(keys[0], 0, 1, 50, 0)
	m.Tick(0)
	if task.State != TaskActive {
		t.Fatalf("state = %v, want active", task.State)
	}
	// Importer 1 starts draining mid-flight: no longer a valid target
	// for new placements, but still the surviving side of this export.
	down[1] = true
	if got := m.AbortRank(0); got != 1 {
		t.Fatalf("aborted = %d, want 1", got)
	}
	if task.State != TaskAborted {
		t.Fatalf("state = %v, want aborted", task.State)
	}
	if e, _ := p.EntryAt(keys[0]); e.Auth != 1 {
		t.Fatalf("authority = %d, want the draining importer 1 (it holds the data)", e.Auth)
	}
	if m.IsFrozen(keys[0]) {
		t.Fatal("aborted subtree must unfreeze so the drain can re-export it")
	}
	if m.AbortedTasks() != 1 || m.DroppedTasks() != 0 {
		t.Fatalf("aborted = %d dropped = %d", m.AbortedTasks(), m.DroppedTasks())
	}
}

func TestMigratorDropsInvalidImporterAtActivation(t *testing.T) {
	p, m, keys, down := abortFixture(t)
	task := m.Submit(keys[0], 0, 1, 50, 0)
	down[1] = true // importer crashes between submit and activation
	m.Tick(0)
	if task.State != TaskDropped {
		t.Fatalf("state = %v, want dropped (invalid importer)", task.State)
	}
	if m.ActiveTasks() != 0 || m.DroppedTasks() != 1 {
		t.Fatalf("active = %d dropped = %d", m.ActiveTasks(), m.DroppedTasks())
	}
	if e, _ := p.EntryAt(keys[0]); e.Auth != 0 {
		t.Fatal("authority must not move")
	}
}

func TestMigratorDropsNegativeImporterRank(t *testing.T) {
	_, m, keys, _ := abortFixture(t)
	m.ValidRank = nil // even without a hook, negative ranks are invalid
	task := m.Submit(keys[0], 0, -3, 50, 0)
	m.Tick(0)
	if task.State != TaskDropped {
		t.Fatalf("state = %v, want dropped (negative rank)", task.State)
	}
}
