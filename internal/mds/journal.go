package mds

import "repro/internal/namespace"

// Batch is one write-back client batch committed into a rank's
// group-commit journal. The ops themselves never leave the owning
// client's pending queue — the client stays the source of truth until
// the batch is applied — so a Batch is pure routing + accounting state:
// which client, how many ops, and the governing entry resolved for the
// batch's first op (one resolver chain walk per batch instead of per
// op). A batch whose rank crashes before application is dropped and its
// ops re-queue client-side exactly once (see Journal.Each / Drop).
type Batch struct {
	Client int             // owning client ID
	Rank   namespace.MDSID // rank whose journal currently holds the batch
	N      int             // unapplied ops remaining in the batch
	Adm    int             // ops admitted for service this tick
	Round  int             // per-client serve round this tick (-1 = not admitted)
	Since  int64           // draw tick of the batch's oldest op (flush-age clock)
	Ent    namespace.Entry // governing entry of the batch's first op
	Dead   bool            // fully applied or dropped; compacted lazily
}

// Journal is a rank's group-commit journal: the FIFO of flushed batches
// whose ops have been accepted for asynchronous application. Membership
// is by pointer with lazy compaction — a batch that is fully applied,
// dropped after a crash, or moved to another rank (authority migration)
// leaves a stale slot that the next Push sweeps out. The auditor's
// extended ops-conservation law reads Ops(): the sum over ranks must
// equal the sum of client Inflight() counters at every check point.
type Journal struct {
	rank namespace.MDSID
	q    []*Batch
	ops  int64 // unapplied ops across live batches
	live int   // live batches (Depth)
}

// owns reports whether the slot still belongs to this journal: moved
// and dead batches are stale slots awaiting compaction.
func (j *Journal) owns(b *Batch) bool { return !b.Dead && b.Rank == j.rank }

// Push appends a flushed batch. The caller has set b.Rank to this
// journal's rank. Compaction piggybacks here so the queue stays
// proportional to the live depth without a per-tick sweep.
func (j *Journal) Push(b *Batch) {
	if len(j.q) >= 16 && j.live*2 < len(j.q) {
		j.Compact()
	}
	j.q = append(j.q, b)
	j.ops += int64(b.N)
	j.live++
}

// Commit records n ops of a journaled batch applied by the serve phase.
// A batch that reaches zero remaining ops dies in place.
func (j *Journal) Commit(b *Batch, n int) {
	b.N -= n
	j.ops -= int64(n)
	if b.N <= 0 {
		b.Dead = true
		j.live--
	}
}

// Drop removes a live batch without applying it — the crash-requeue
// path. The owning client's in-flight prefix shrinks separately
// (client.RequeueInflight); the ops re-flush like fresh buffers.
func (j *Journal) Drop(b *Batch) {
	if !j.owns(b) {
		return
	}
	j.ops -= int64(b.N)
	b.Dead = true
	j.live--
}

// MoveBatch transfers a live batch between rank journals after its
// governing authority migrated. The stale slot in the source queue is
// swept by a later compaction.
func MoveBatch(from, to *Journal, b *Batch) {
	if !from.owns(b) || from == to {
		return
	}
	from.ops -= int64(b.N)
	from.live--
	b.Rank = to.rank
	to.Push(b)
}

// Each visits the live batches in flush order.
func (j *Journal) Each(fn func(*Batch)) {
	for _, b := range j.q {
		if j.owns(b) {
			fn(b)
		}
	}
}

// Compact rewrites the queue keeping only live owned batches, in order.
func (j *Journal) Compact() {
	w := 0
	for _, b := range j.q {
		if j.owns(b) {
			j.q[w] = b
			w++
		}
	}
	for i := w; i < len(j.q); i++ {
		j.q[i] = nil
	}
	j.q = j.q[:w]
}

// Reset clears the journal after a crash has dropped every batch.
func (j *Journal) Reset() {
	for i := range j.q {
		j.q[i] = nil
	}
	j.q = j.q[:0]
	j.ops = 0
	j.live = 0
}

// Ops returns the unapplied op count across live batches.
func (j *Journal) Ops() int64 { return j.ops }

// Depth returns the number of live batches queued.
func (j *Journal) Depth() int { return j.live }
