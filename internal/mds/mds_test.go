package mds

import (
	"fmt"
	"testing"

	"repro/internal/namespace"
)

func fixture(t testing.TB) (*namespace.Tree, *namespace.Partition, []*namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	d, err := tr.Mkdir(tr.Root(), "d")
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*namespace.Inode, 20)
	for i := range files {
		f, err := tr.Create(d, fmt.Sprintf("f%03d", i), 1)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
	}
	return tr, namespace.NewPartition(tr, 0), files
}

func TestServerBudget(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 3, 4, 0.5)
	s.BeginTick()
	e := p.GoverningEntry(files[0])
	for i := 0; i < 3; i++ {
		if !s.Serve(e, files[i], 0) {
			t.Fatalf("serve %d should succeed", i)
		}
	}
	if s.Serve(e, files[3], 0) {
		t.Fatal("serve beyond capacity must fail")
	}
	if s.OpsThisTick() != 3 {
		t.Fatalf("ops this tick = %d", s.OpsThisTick())
	}
	s.BeginTick()
	if !s.Serve(e, files[4], 0) {
		t.Fatal("budget must reset on new tick")
	}
}

func TestServerForwardChargesBudget(t *testing.T) {
	s := NewServer(0, 2, 4, 0.5)
	s.BeginTick()
	if !s.ConsumeForward() || !s.ConsumeForward() {
		t.Fatal("forwards within budget must succeed")
	}
	if s.ConsumeForward() {
		t.Fatal("forward beyond budget must fail")
	}
	if s.Forwards() != 2 {
		t.Fatalf("forwards = %d", s.Forwards())
	}
}

func TestServerEpochLoadAndHistory(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 100, 4, 0.5)
	e := p.GoverningEntry(files[0])
	for tick := 0; tick < 10; tick++ {
		s.BeginTick()
		for i := 0; i < 5; i++ {
			if !s.Serve(e, files[i], 0) {
				t.Fatal("serve")
			}
		}
	}
	load := s.EndEpoch(10)
	if load != 5 {
		t.Fatalf("epoch load = %v, want 5 ops/sec", load)
	}
	if s.CurrentLoad() != 5 || len(s.LoadHistory()) != 1 {
		t.Fatal("load history")
	}
	// Second epoch with no traffic.
	if got := s.EndEpoch(10); got != 0 {
		t.Fatalf("idle epoch load = %v", got)
	}
}

func TestServerHeatAccumulatesAndDecays(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 1000, 4, 0.5)
	e := p.GoverningEntry(files[0])
	s.BeginTick()
	for i := 0; i < 10; i++ {
		s.Serve(e, files[i], 0)
	}
	if s.HeatOfKey(e.Key) != 10 {
		t.Fatalf("heat = %v", s.HeatOfKey(e.Key))
	}
	dirIno := files[0].Parent.Ino
	if s.HeatOfDir(dirIno) != 10 {
		t.Fatalf("dir heat = %v", s.HeatOfDir(dirIno))
	}
	s.EndEpoch(10)
	if s.HeatOfKey(e.Key) != 5 {
		t.Fatalf("decayed heat = %v", s.HeatOfKey(e.Key))
	}
	// Heat eventually evaporates completely.
	for i := 0; i < 20; i++ {
		s.EndEpoch(10)
	}
	if s.HeatOfKey(e.Key) != 0 {
		t.Fatal("heat should evaporate")
	}
}

func TestServerDropSubtreeStats(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 1000, 4, 0.5)
	e := p.GoverningEntry(files[0])
	s.BeginTick()
	s.Serve(e, files[0], 0)
	s.DropSubtreeStats(e.Key)
	if s.HeatOfKey(e.Key) != 0 {
		t.Fatal("heat not dropped")
	}
	if got := s.Collector().RecentKey(e.Key, 0, 1); !got.IsZero() {
		t.Fatal("trace not dropped")
	}
}

func TestMigratorLifecycle(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 8, 2, 100)
	task := m.Submit(e.Key, 0, 1, 50, 0)
	if task.State != TaskQueued || m.QueuedTasks() != 1 {
		t.Fatal("submit")
	}
	m.Tick(0)
	if task.State != TaskActive || m.ActiveTasks() != 1 {
		t.Fatalf("task state after tick = %v", task.State)
	}
	// 20 inodes at 8/tick -> 3 ticks.
	if task.DoneTick != 3 {
		t.Fatalf("DoneTick = %d, want 3", task.DoneTick)
	}
	// The subtree stays serviceable during the bulk transfer and
	// freezes only in the commit window (the last FreezeTicks ticks).
	if m.IsFrozen(e.Key) {
		t.Fatal("subtree must not freeze during bulk transfer")
	}
	m.Tick(1)
	m.Tick(2)
	if task.State != TaskActive {
		t.Fatal("should still be in flight")
	}
	if !m.IsFrozen(e.Key) {
		t.Fatal("subtree must freeze during the commit window")
	}
	m.Tick(3)
	if task.State != TaskDone {
		t.Fatal("should have completed")
	}
	if m.IsFrozen(e.Key) {
		t.Fatal("must unfreeze on completion")
	}
	if p.AuthOf(tr.Get(d.Children()[0].Ino)) != 1 {
		t.Fatal("authority must transfer")
	}
	if m.MigratedInodes() != 20 {
		t.Fatalf("migrated inodes = %d", m.MigratedInodes())
	}
	if m.CompletedTasks() != 1 {
		t.Fatal("completed count")
	}
}

func TestMigratorConcurrencyBound(t *testing.T) {
	tr := namespace.NewTree()
	p := namespace.NewPartition(tr, 0)
	var keys []namespace.FragKey
	for i := 0; i < 5; i++ {
		d, _ := tr.Mkdir(tr.Root(), fmt.Sprintf("d%d", i))
		for j := 0; j < 30; j++ {
			if _, err := tr.Create(d, fmt.Sprintf("f%02d", j), 1); err != nil {
				t.Fatal(err)
			}
		}
		keys = append(keys, p.Carve(d).Key)
	}
	m := NewMigrator(p, 10, 2, 100)
	for _, k := range keys {
		m.Submit(k, 0, 1, 1, 0)
	}
	m.Tick(0)
	if m.ActiveTasks() != 2 {
		t.Fatalf("active = %d, want 2 (per-exporter bound)", m.ActiveTasks())
	}
	if m.QueuedTasks() != 3 {
		t.Fatalf("queued = %d, want 3", m.QueuedTasks())
	}
	// As transfers finish, queued tasks take their slots.
	for tick := int64(1); tick < 20; tick++ {
		m.Tick(tick)
	}
	if m.CompletedTasks() != 5 {
		t.Fatalf("completed = %d, want 5", m.CompletedTasks())
	}
}

func TestMigratorQueueTTLExpiry(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	sub, _ := tr.Mkdir(tr.Root(), "other")
	for j := 0; j < 10; j++ {
		if _, err := tr.Create(sub, fmt.Sprintf("g%d", j), 1); err != nil {
			t.Fatal(err)
		}
	}
	e2 := p.Carve(sub)
	m := NewMigrator(p, 1, 1, 5) // slow transfers, 1 slot, TTL 5
	m.Submit(e.Key, 0, 1, 1, 0)
	stale := m.Submit(e2.Key, 0, 1, 1, 0)
	m.Tick(0) // first activates (20 inodes @ 1/tick = 20 ticks), second queues
	for tick := int64(1); tick <= 6; tick++ {
		m.Tick(tick)
	}
	if stale.State != TaskDropped {
		t.Fatalf("stale task state = %v, want dropped", stale.State)
	}
	if m.DroppedTasks() != 1 {
		t.Fatal("dropped count")
	}
}

func TestMigratorDropsStaleAuthority(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 100, 1, 100)
	task := m.Submit(e.Key, 0, 1, 1, 0)
	// Authority changes before activation (e.g. another plan moved it).
	p.SetAuth(e.Key, 2)
	m.Tick(0)
	if task.State != TaskDropped {
		t.Fatalf("task with stale From should drop, got %v", task.State)
	}
}

func TestMigratorSelfMigrationDropped(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 100, 1, 100)
	task := m.Submit(e.Key, 0, 0, 1, 0)
	m.Tick(0)
	if task.State != TaskDropped {
		t.Fatal("self-migration must be dropped")
	}
}

func TestMigratorOnComplete(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 100, 1, 100)
	var got *ExportTask
	m.OnComplete(func(t *ExportTask) { got = t })
	m.Submit(e.Key, 0, 1, 1, 0)
	m.Tick(0)
	m.Tick(1)
	if got == nil || got.Key != e.Key {
		t.Fatal("completion callback not invoked")
	}
}

func TestMigratorPendingFor(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 1, 1, 100)
	m.Submit(e.Key, 0, 1, 1, 0)
	pend := m.PendingFor(0)
	if !pend[e.Key] {
		t.Fatal("pending set missing queued task")
	}
	if len(m.PendingFor(3)) != 0 {
		t.Fatal("pending for unrelated exporter")
	}
}
