package mds

import (
	"fmt"
	"testing"

	"repro/internal/namespace"
)

func fixture(t testing.TB) (*namespace.Tree, *namespace.Partition, []*namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	d, err := tr.Mkdir(tr.Root(), "d")
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*namespace.Inode, 20)
	for i := range files {
		f, err := tr.Create(d, fmt.Sprintf("f%03d", i), 1)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
	}
	return tr, namespace.NewPartition(tr, 0), files
}

func TestServerBudget(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 3, 4, 0.5)
	s.BeginTick()
	e := p.GoverningEntry(files[0])
	for i := 0; i < 3; i++ {
		if !s.Serve(e, files[i], 0) {
			t.Fatalf("serve %d should succeed", i)
		}
	}
	if s.Serve(e, files[3], 0) {
		t.Fatal("serve beyond capacity must fail")
	}
	if s.OpsThisTick() != 3 {
		t.Fatalf("ops this tick = %d", s.OpsThisTick())
	}
	s.BeginTick()
	if !s.Serve(e, files[4], 0) {
		t.Fatal("budget must reset on new tick")
	}
}

func TestServerForwardChargesBudget(t *testing.T) {
	s := NewServer(0, 2, 4, 0.5)
	s.BeginTick()
	if !s.ConsumeForward() || !s.ConsumeForward() {
		t.Fatal("forwards within budget must succeed")
	}
	if s.ConsumeForward() {
		t.Fatal("forward beyond budget must fail")
	}
	if s.Forwards() != 2 {
		t.Fatalf("forwards = %d", s.Forwards())
	}
}

func TestServerEpochLoadAndHistory(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 100, 4, 0.5)
	e := p.GoverningEntry(files[0])
	for tick := 0; tick < 10; tick++ {
		s.BeginTick()
		for i := 0; i < 5; i++ {
			if !s.Serve(e, files[i], 0) {
				t.Fatal("serve")
			}
		}
	}
	load := s.EndEpoch(10)
	if load != 5 {
		t.Fatalf("epoch load = %v, want 5 ops/sec", load)
	}
	if s.CurrentLoad() != 5 || len(s.LoadHistory()) != 1 {
		t.Fatal("load history")
	}
	// Second epoch with no traffic.
	if got := s.EndEpoch(10); got != 0 {
		t.Fatalf("idle epoch load = %v", got)
	}
}

func TestServerHeatAccumulatesAndDecays(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 1000, 4, 0.5)
	e := p.GoverningEntry(files[0])
	s.BeginTick()
	for i := 0; i < 10; i++ {
		s.Serve(e, files[i], 0)
	}
	if s.HeatOfKey(e.Key) != 10 {
		t.Fatalf("heat = %v", s.HeatOfKey(e.Key))
	}
	dirIno := files[0].Parent.Ino
	if s.HeatOfDir(dirIno) != 10 {
		t.Fatalf("dir heat = %v", s.HeatOfDir(dirIno))
	}
	s.EndEpoch(10)
	if s.HeatOfKey(e.Key) != 5 {
		t.Fatalf("decayed heat = %v", s.HeatOfKey(e.Key))
	}
	// Heat eventually evaporates completely.
	for i := 0; i < 20; i++ {
		s.EndEpoch(10)
	}
	if s.HeatOfKey(e.Key) != 0 {
		t.Fatal("heat should evaporate")
	}
}

func TestServerDropSubtreeStats(t *testing.T) {
	_, p, files := fixture(t)
	s := NewServer(0, 1000, 4, 0.5)
	e := p.GoverningEntry(files[0])
	s.BeginTick()
	s.Serve(e, files[0], 0)
	s.DropSubtreeStats(e.Key)
	if s.HeatOfKey(e.Key) != 0 {
		t.Fatal("heat not dropped")
	}
	if got := s.Collector().RecentKey(e.Key, 0, 1); !got.IsZero() {
		t.Fatal("trace not dropped")
	}
}

func TestMigratorLifecycle(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 8, 2, 100)
	task := m.Submit(e.Key, 0, 1, 50, 0)
	if task.State != TaskQueued || m.QueuedTasks() != 1 {
		t.Fatal("submit")
	}
	m.Tick(0)
	if task.State != TaskActive || m.ActiveTasks() != 1 {
		t.Fatalf("task state after tick = %v", task.State)
	}
	// 20 inodes at 8/tick -> 3 ticks.
	if task.DoneTick != 3 {
		t.Fatalf("DoneTick = %d, want 3", task.DoneTick)
	}
	// The subtree stays serviceable during the bulk transfer and
	// freezes only in the commit window (the last FreezeTicks ticks).
	if m.IsFrozen(e.Key) {
		t.Fatal("subtree must not freeze during bulk transfer")
	}
	m.Tick(1)
	m.Tick(2)
	if task.State != TaskActive {
		t.Fatal("should still be in flight")
	}
	if !m.IsFrozen(e.Key) {
		t.Fatal("subtree must freeze during the commit window")
	}
	m.Tick(3)
	if task.State != TaskDone {
		t.Fatal("should have completed")
	}
	if m.IsFrozen(e.Key) {
		t.Fatal("must unfreeze on completion")
	}
	if p.AuthOf(tr.Get(d.Children()[0].Ino)) != 1 {
		t.Fatal("authority must transfer")
	}
	if m.MigratedInodes() != 20 {
		t.Fatalf("migrated inodes = %d", m.MigratedInodes())
	}
	if m.CompletedTasks() != 1 {
		t.Fatal("completed count")
	}
}

// TestMigratorCompleteVanishedEntry is the regression test for the
// stale-commit bug: an entry can be absorbed (or split away) while its
// export is in flight — the exporter keeps serving, and housekeeping
// keeps reshaping, the subtree until the freeze window. Completion must
// then account the task as dropped (reason "vanished"), not commit
// authority onto a key that no longer exists.
func TestMigratorCompleteVanishedEntry(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 8, 2, 100)
	task := m.Submit(e.Key, 0, 1, 50, 0)
	m.Tick(0)
	if task.State != TaskActive {
		t.Fatalf("task state after tick = %v", task.State)
	}
	// Absorb the entry mid-flight (before its DoneTick at 3).
	if !p.Absorb(e.Key) {
		t.Fatal("absorb")
	}
	verBefore := p.Version()
	m.Tick(1)
	m.Tick(2)
	m.Tick(3)
	if task.State != TaskDropped {
		t.Fatalf("task state = %v, want TaskDropped: completion committed onto a vanished entry", task.State)
	}
	if m.DroppedTasks() != 1 {
		t.Fatalf("dropped count = %d, want 1", m.DroppedTasks())
	}
	if m.CompletedTasks() != 0 || m.MigratedInodes() != 0 {
		t.Fatalf("vanished export must not count as completed (completed=%d, inodes=%d)",
			m.CompletedTasks(), m.MigratedInodes())
	}
	if m.ActiveTasks() != 0 || m.IsFrozen(e.Key) {
		t.Fatal("task must leave the active set and unfreeze")
	}
	// The stale key must not have been touched: no partition mutation
	// besides the absorb itself.
	if p.Version() != verBefore {
		t.Fatalf("completion mutated the partition through a stale key (version %d -> %d)",
			verBefore, p.Version())
	}
	// Counter reconciliation still holds after the vanish drop.
	sum := int64(m.QueuedTasks()) + int64(m.ActiveTasks()) +
		m.CompletedTasks() + m.DroppedTasks() + m.AbortedTasks()
	if m.SubmittedTasks() != sum {
		t.Fatalf("submitted %d != lifecycle sum %d", m.SubmittedTasks(), sum)
	}
}

// TestMigratorNoDuplicateActiveExports is the regression test for the
// double-export bug found by FuzzMigratorLifecycle: two submissions of
// the same subtree entry could both activate (the balancer's pending
// skip-set masks this, but the engine must enforce it). The duplicate
// must stay queued while the first export is in flight and then drop
// as stale once the completed export changes the authority.
func TestMigratorNoDuplicateActiveExports(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 8, 4, 100)
	first := m.Submit(e.Key, 0, 1, 50, 0)
	dup := m.Submit(e.Key, 0, 2, 50, 0)
	m.Tick(0)
	if first.State != TaskActive {
		t.Fatalf("first task state = %v, want active", first.State)
	}
	if dup.State == TaskActive {
		t.Fatal("duplicate export of the same entry activated concurrently")
	}
	if m.ActiveTasks() != 1 || m.QueuedTasks() != 1 {
		t.Fatalf("active=%d queued=%d, want 1 and 1", m.ActiveTasks(), m.QueuedTasks())
	}
	// Run the first export to completion (20 inodes at 8/tick -> done
	// at tick 3); the authority flips to rank 1, so the duplicate is
	// dropped as stale on the next activation attempt.
	for tick := int64(1); tick <= 4; tick++ {
		m.Tick(tick)
	}
	if first.State != TaskDone {
		t.Fatalf("first task state = %v, want done", first.State)
	}
	if dup.State != TaskDropped {
		t.Fatalf("duplicate task state = %v, want dropped", dup.State)
	}
	if got, _ := p.EntryAt(e.Key); got.Auth != 1 {
		t.Fatalf("authority = %d, want the first export's importer", got.Auth)
	}
	sum := int64(m.QueuedTasks()) + int64(m.ActiveTasks()) +
		m.CompletedTasks() + m.DroppedTasks() + m.AbortedTasks()
	if m.SubmittedTasks() != sum {
		t.Fatalf("submitted %d != lifecycle sum %d", m.SubmittedTasks(), sum)
	}
}

func TestMigratorConcurrencyBound(t *testing.T) {
	tr := namespace.NewTree()
	p := namespace.NewPartition(tr, 0)
	var keys []namespace.FragKey
	for i := 0; i < 5; i++ {
		d, _ := tr.Mkdir(tr.Root(), fmt.Sprintf("d%d", i))
		for j := 0; j < 30; j++ {
			if _, err := tr.Create(d, fmt.Sprintf("f%02d", j), 1); err != nil {
				t.Fatal(err)
			}
		}
		keys = append(keys, p.Carve(d).Key)
	}
	m := NewMigrator(p, 10, 2, 100)
	for _, k := range keys {
		m.Submit(k, 0, 1, 1, 0)
	}
	m.Tick(0)
	if m.ActiveTasks() != 2 {
		t.Fatalf("active = %d, want 2 (per-exporter bound)", m.ActiveTasks())
	}
	if m.QueuedTasks() != 3 {
		t.Fatalf("queued = %d, want 3", m.QueuedTasks())
	}
	// As transfers finish, queued tasks take their slots.
	for tick := int64(1); tick < 20; tick++ {
		m.Tick(tick)
	}
	if m.CompletedTasks() != 5 {
		t.Fatalf("completed = %d, want 5", m.CompletedTasks())
	}
}

func TestMigratorQueueTTLExpiry(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	sub, _ := tr.Mkdir(tr.Root(), "other")
	for j := 0; j < 10; j++ {
		if _, err := tr.Create(sub, fmt.Sprintf("g%d", j), 1); err != nil {
			t.Fatal(err)
		}
	}
	e2 := p.Carve(sub)
	m := NewMigrator(p, 1, 1, 5) // slow transfers, 1 slot, TTL 5
	m.Submit(e.Key, 0, 1, 1, 0)
	stale := m.Submit(e2.Key, 0, 1, 1, 0)
	m.Tick(0) // first activates (20 inodes @ 1/tick = 20 ticks), second queues
	for tick := int64(1); tick <= 6; tick++ {
		m.Tick(tick)
	}
	if stale.State != TaskDropped {
		t.Fatalf("stale task state = %v, want dropped", stale.State)
	}
	if m.DroppedTasks() != 1 {
		t.Fatal("dropped count")
	}
}

func TestMigratorDropsStaleAuthority(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 100, 1, 100)
	task := m.Submit(e.Key, 0, 1, 1, 0)
	// Authority changes before activation (e.g. another plan moved it).
	p.SetAuth(e.Key, 2)
	m.Tick(0)
	if task.State != TaskDropped {
		t.Fatalf("task with stale From should drop, got %v", task.State)
	}
}

func TestMigratorSelfMigrationDropped(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 100, 1, 100)
	task := m.Submit(e.Key, 0, 0, 1, 0)
	m.Tick(0)
	if task.State != TaskDropped {
		t.Fatal("self-migration must be dropped")
	}
}

func TestMigratorOnComplete(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 100, 1, 100)
	var got *ExportTask
	m.OnComplete(func(t *ExportTask) { got = t })
	m.Submit(e.Key, 0, 1, 1, 0)
	m.Tick(0)
	m.Tick(1)
	if got == nil || got.Key != e.Key {
		t.Fatal("completion callback not invoked")
	}
}

func TestMigratorPendingFor(t *testing.T) {
	tr, p, _ := fixture(t)
	d, _ := tr.Lookup("/d")
	e := p.Carve(d)
	m := NewMigrator(p, 1, 1, 100)
	m.Submit(e.Key, 0, 1, 1, 0)
	pend := m.PendingFor(0)
	if !pend[e.Key] {
		t.Fatal("pending set missing queued task")
	}
	if len(m.PendingFor(3)) != 0 {
		t.Fatal("pending for unrelated exporter")
	}
}
