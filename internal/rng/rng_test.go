package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked children with different labels produced same first value")
	}
}

func TestForkReproducible(t *testing.T) {
	a := New(7).Fork(3)
	b := New(7).Fork(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("forked streams diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

// TestUint64nUnbiased distinguishes Lemire rejection from the old
// Uint64()%n at a bound chosen to make modulo bias enormous: with
// n = 3<<62, the residues [0, 1<<62) are hit by two 64-bit ranges under
// %n but only one under unbiased generation, so the head fraction is
// 1/2 biased vs 1/3 unbiased. A few thousand draws separate the two by
// dozens of standard deviations.
func TestUint64nUnbiased(t *testing.T) {
	s := New(61)
	const n = uint64(3) << 62
	const draws = 30000
	head := 0
	for i := 0; i < draws; i++ {
		v := s.Uint64n(n)
		if v >= n {
			t.Fatalf("Uint64n(%d) = %d out of range", n, v)
		}
		if v < 1<<62 {
			head++
		}
	}
	frac := float64(head) / draws
	if math.Abs(frac-1.0/3) > 0.02 {
		t.Fatalf("head fraction %v, want ~1/3 (1/2 would mean modulo bias)", frac)
	}
}

// TestUint64nSmallBoundUniform sanity-checks per-bucket uniformity at a
// small bound (chi-square style tolerance on each bucket).
func TestUint64nSmallBoundUniform(t *testing.T) {
	s := New(67)
	const n = 7
	const draws = 140000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	for b, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-1.0/n) > 0.01 {
			t.Fatalf("bucket %d frac %v, want ~%v", b, frac, 1.0/n)
		}
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermProperty(t *testing.T) {
	s := New(19)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(29)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(31)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("exponential mean %v", sum/n)
	}
}

func TestZipfRange(t *testing.T) {
	s := New(37)
	z := NewZipf(s, 0.98, 100)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With exponent ~0.98 over 10000 items, the top 20% should draw
	// roughly 80% of the samples (the paper's Filebench shape).
	s := New(41)
	z := NewZipf(s, 0.98, 10000)
	head := z.HeadMass(0.2)
	if head < 0.7 || head > 0.9 {
		t.Fatalf("top-20%% mass = %v, want ~0.8", head)
	}
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if z.Next() < 2000 {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-head) > 0.02 {
		t.Fatalf("empirical head mass %v vs analytic %v", frac, head)
	}
}

func TestZipfUniformWhenExponentZero(t *testing.T) {
	s := New(43)
	z := NewZipf(s, 0, 10)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d frac %v, want ~0.1", i, frac)
		}
	}
}

func TestZipfRankOrdering(t *testing.T) {
	s := New(47)
	z := NewZipf(s, 1.1, 50)
	counts := make([]int, 50)
	for i := 0; i < 200000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[40] {
		t.Fatalf("zipf counts not rank-ordered: %v %v %v", counts[0], counts[10], counts[40])
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(New(1), 1, 0)
}

func TestShuffleSwapCount(t *testing.T) {
	s := New(53)
	xs := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[string]bool)
	for _, v := range xs {
		seen[v] = true
	}
	for _, v := range orig {
		if !seen[v] {
			t.Fatalf("shuffle lost element %q", v)
		}
	}
}
