// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator. Every component that needs
// randomness derives a Source from the experiment seed so that entire
// simulation runs are bit-for-bit reproducible.
//
// The generator is splitmix64: tiny state, excellent statistical quality
// for simulation purposes, and trivially seedable. It is NOT
// cryptographically secure and must never be used for security purposes.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random source. The zero value is a
// valid generator seeded with 0; prefer New to make seeding explicit.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources created with the
// same seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork derives a new independent Source from s. The derived stream is a
// deterministic function of s's current state, so forking at the same
// point in two identical runs yields identical children. The label
// decorrelates children forked back to back.
func (s *Source) Fork(label uint64) *Source {
	return New(s.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// Uint64 returns the next value of the splitmix64 stream.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method. A plain Uint64()%n is biased toward
// small residues whenever n does not divide 2^64; the bias is tiny for
// small n but systematic, and it skews every shuffle and bounded draw in
// the simulator. Lemire maps the 64-bit draw into [0, n) via the high
// half of a 128-bit product and rejects only the sliver of draws that
// land in the unrepresentable remainder, so every value in [0, n) is
// exactly equally likely. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		// thresh = 2^64 mod n: draws with lo below it fall in the
		// truncated final bucket and must be redrawn. The rejection
		// probability is < n/2^64, so the loop essentially never spins
		// for simulator-sized n.
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n called with n <= 0")
	}
	return int64(s.Uint64n(uint64(n)))
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	s.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)). It
// consumes exactly the same random stream as Perm(len(p)), so callers
// can switch to a reusable buffer without perturbing seeded runs.
func (s *Source) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
}

// ShuffleInts shuffles xs in place (Fisher-Yates).
func (s *Source) ShuffleInts(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and
// stddev 1, using the Box-Muller transform.
func (s *Source) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		u2 := s.Float64()
		if u1 <= 1e-300 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u <= 1e-300 {
			continue
		}
		return -math.Log(u)
	}
}

// Zipf samples from a Zipf(s=exponent) distribution over [0, n). It uses
// a precomputed cumulative table, which makes construction O(n) and
// sampling O(log n); the simulator's Zipf populations (10k files per
// client directory) are small enough that the table is the simplest
// correct choice.
type Zipf struct {
	src *Source
	cum []float64 // cum[i] = P(X <= i)
}

// NewZipf builds a sampler over [0, n) with the given exponent. An
// exponent near 0.98 yields the classic "80% of accesses to 20% of
// files" shape used by the paper's Filebench workload. It panics if
// n <= 0 or exponent < 0.
func NewZipf(src *Source, exponent float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with n <= 0")
	}
	if exponent < 0 {
		panic("rng: NewZipf called with negative exponent")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exponent)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{src: src, cum: cum}
}

// N returns the population size.
func (z *Zipf) N() int { return len(z.cum) }

// Next returns the next sample in [0, N()). Rank 0 is the most popular.
func (z *Zipf) Next() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// HeadMass returns the probability mass of the top frac of the
// population, e.g. HeadMass(0.2) reports how much traffic the most
// popular 20% of items receive.
func (z *Zipf) HeadMass(frac float64) float64 {
	if len(z.cum) == 0 {
		return 0
	}
	k := int(frac * float64(len(z.cum)))
	if k <= 0 {
		return 0
	}
	if k > len(z.cum) {
		k = len(z.cum)
	}
	return z.cum[k-1]
}
