package tenant

import (
	"math"
	"testing"
)

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name string
		pol  Policy
		ok   bool
	}{
		{"default", DefaultPolicy(), true},
		{"flat", Policy{Rate: 10, Burst: 20, WeightMode: WeightFlat}, true},
		{"clients", Policy{Rate: 10, Burst: 10, WeightMode: WeightClients}, true},
		{"empty mode", Policy{Rate: 1, Burst: 1}, true},
		{"zero rate", Policy{Rate: 0, Burst: 10}, false},
		{"negative rate", Policy{Rate: -1, Burst: 10}, false},
		{"nan rate", Policy{Rate: math.NaN(), Burst: 10}, false},
		{"burst below rate", Policy{Rate: 10, Burst: 5}, false},
		{"bad mode", Policy{Rate: 1, Burst: 1, WeightMode: "zipf"}, false},
		{"debt one", Policy{Rate: 1, Burst: 1, DebtThreshold: 1}, false},
		{"debt negative", Policy{Rate: 1, Burst: 1, DebtThreshold: -0.1}, false},
	}
	for _, c := range cases {
		if err := c.pol.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestBindWeightModes(t *testing.T) {
	m := MustManager(Policy{Rate: 10, Burst: 30, WeightMode: WeightFlat})
	if err := m.Bind([]int{1, 4}); err != nil {
		t.Fatal(err)
	}
	if m.RateOf(0) != 10 || m.RateOf(1) != 10 {
		t.Errorf("flat rates = %v, %v, want 10, 10", m.RateOf(0), m.RateOf(1))
	}
	m = MustManager(Policy{Rate: 10, Burst: 30, WeightMode: WeightClients})
	if err := m.Bind([]int{1, 4}); err != nil {
		t.Fatal(err)
	}
	if m.RateOf(0) != 10 || m.RateOf(1) != 40 {
		t.Errorf("clients rates = %v, %v, want 10, 40", m.RateOf(0), m.RateOf(1))
	}
	if m.BurstOf(1) != 120 {
		t.Errorf("clients burst = %v, want 120", m.BurstOf(1))
	}
	if m.Tokens(1) != 120 {
		t.Errorf("bucket should start full, tokens = %v", m.Tokens(1))
	}
	if err := m.Bind(nil); err == nil {
		t.Error("Bind(nil) should fail")
	}
	if err := m.Bind([]int{3, 0}); err == nil {
		t.Error("Bind with an empty tenant should fail")
	}
}

func TestTakeRefundBounds(t *testing.T) {
	m := MustManager(Policy{Rate: 5, Burst: 10})
	if err := m.Bind([]int{2}); err != nil {
		t.Fatal(err)
	}
	if got := m.Take(0, 4); got != 4 {
		t.Fatalf("Take(4) on a full bucket = %d, want 4", got)
	}
	if got := m.Take(0, 100); got != 6 {
		t.Fatalf("Take(100) with 6 tokens = %d, want 6", got)
	}
	if got := m.Take(0, 1); got != 0 {
		t.Fatalf("Take on a dry bucket = %d, want 0", got)
	}
	m.Refund(0, 3)
	if m.Tokens(0) != 3 {
		t.Fatalf("tokens after refund = %v, want 3", m.Tokens(0))
	}
	m.Refund(0, 100)
	if m.Tokens(0) != 10 {
		t.Fatalf("refund must clamp at burst, tokens = %v", m.Tokens(0))
	}
	m.BeginTick()
	if m.Tokens(0) != 10 {
		t.Fatalf("refill must clamp at burst, tokens = %v", m.Tokens(0))
	}
	if m.Tokens(0) < 0 || m.Tokens(0) > m.BurstOf(0) {
		t.Fatalf("tokens out of [0, burst]: %v", m.Tokens(0))
	}
}

func TestFractionalTokensStayWhole(t *testing.T) {
	m := MustManager(Policy{Rate: 1.5, Burst: 2})
	if err := m.Bind([]int{1}); err != nil {
		t.Fatal(err)
	}
	m.Take(0, 2) // drain the full bucket
	m.BeginTick()
	// 1.5 tokens: only whole ops are granted, the half token stays.
	if got := m.Take(0, 5); got != 1 {
		t.Fatalf("Take with 1.5 tokens = %d, want 1", got)
	}
	m.BeginTick()
	// 0.5 + 1.5 = 2 tokens now.
	if got := m.Take(0, 5); got != 2 {
		t.Fatalf("fractional carry lost: Take = %d, want 2", got)
	}
}

func TestDebtAndThrottleLatch(t *testing.T) {
	m := MustManager(Policy{Rate: 10, Burst: 10, DebtThreshold: 0.3})
	if err := m.Bind([]int{1, 1}); err != nil {
		t.Fatal(err)
	}
	// Tenant 0: 6 admitted, 4 pool-stalled -> debt 0.4.
	m.NoteAdmitted(0, 6)
	m.NoteStalled(0, 4)
	// Tenant 1: throttled by its bucket but fully served otherwise.
	m.NoteAdmitted(1, 10)
	m.NoteThrottled(1, 50)
	if m.MaxDebt() != 0 {
		t.Errorf("debt must only appear after EndEpoch, got %v", m.MaxDebt())
	}
	m.EndEpoch()
	if got := m.DebtOf(0); got != 0.4 {
		t.Errorf("debt(0) = %v, want 0.4", got)
	}
	if got := m.DebtOf(1); got != 0 {
		t.Errorf("throttles must not create debt, debt(1) = %v", got)
	}
	if got := m.MaxDebt(); got != 0.4 {
		t.Errorf("MaxDebt = %v, want 0.4", got)
	}
	if m.ThrottledLastEpoch(0) || !m.ThrottledLastEpoch(1) {
		t.Errorf("throttle latch = %v, %v, want false, true",
			m.ThrottledLastEpoch(0), m.ThrottledLastEpoch(1))
	}
	// A clean epoch clears both the latch and the debt.
	m.EndEpoch()
	if m.MaxDebt() != 0 || m.ThrottledLastEpoch(1) {
		t.Errorf("clean epoch must clear debt and latch: debt=%v latch=%v",
			m.MaxDebt(), m.ThrottledLastEpoch(1))
	}
}

func TestMaxDebtThreshold(t *testing.T) {
	m := MustManager(Policy{Rate: 10, Burst: 10, DebtThreshold: 0.5})
	if err := m.Bind([]int{1}); err != nil {
		t.Fatal(err)
	}
	m.NoteAdmitted(0, 8)
	m.NoteStalled(0, 2)
	m.EndEpoch()
	if got := m.MaxDebt(); got != 0 {
		t.Errorf("debt 0.2 below threshold 0.5 must report 0, got %v", got)
	}
	disabled := MustManager(Policy{Rate: 10, Burst: 10, DebtThreshold: 0})
	if err := disabled.Bind([]int{1}); err != nil {
		t.Fatal(err)
	}
	disabled.NoteStalled(0, 100)
	disabled.EndEpoch()
	if got := disabled.MaxDebt(); got != 0 {
		t.Errorf("threshold 0 disables the signal, got %v", got)
	}
}

func TestTickCounters(t *testing.T) {
	m := MustManager(Policy{Rate: 10, Burst: 10})
	if err := m.Bind([]int{1}); err != nil {
		t.Fatal(err)
	}
	m.NoteAdmitted(0, 7)
	m.NoteThrottled(0, 3)
	if m.AdmittedTick(0) != 7 || m.ThrottledTick(0) != 3 {
		t.Fatalf("tick counters = %d, %d, want 7, 3", m.AdmittedTick(0), m.ThrottledTick(0))
	}
	m.BeginTick()
	if m.AdmittedTick(0) != 0 || m.ThrottledTick(0) != 0 {
		t.Fatal("BeginTick must reset tick counters")
	}
	if m.Admitted(0) != 7 || m.Throttled(0) != 3 {
		t.Fatalf("cumulative counters = %d, %d, want 7, 3", m.Admitted(0), m.Throttled(0))
	}
}
