// Package tenant implements the multi-tenant QoS layer: tenant
// identity, per-tenant token-bucket admission, and the SLO-debt signal
// the elastic controller scales on.
//
// The cluster owns at most one Manager (Config.Tenancy; nil disables
// the subsystem exactly like obs/audit/replica). All mutation happens
// in the serial sections of the tick loop — the budget-admission phase
// of the engine, BeginTick, EndEpoch — so the Manager needs no locks
// and the parallel engine stays byte-identical at every worker count.
//
// Semantics: every tenant owns a token bucket refilled at Rate tokens
// per tick up to Burst. Admission charges a run of ops against the
// owner's bucket *before* the rank's service pool; a run the bucket
// cannot cover is cut at the granted prefix and the client takes the
// ordinary stall/backoff path. Bucket shortfalls are "throttles" (the
// tenant asked for more than its quota — intended behavior, never an
// SLO signal); rank-pool shortfalls on bucket-admitted work are
// "stalls" (the cluster is too small for admitted demand — the debt
// signal elastic scale-up triggers on).
package tenant

import (
	"fmt"
	"math"
)

// WeightMode values for Policy.WeightMode.
const (
	// WeightFlat gives every tenant the same Rate regardless of size.
	WeightFlat = "flat"
	// WeightClients scales each tenant's rate by its client count:
	// rate_t = Rate * clients_t. Burst scales the same way.
	WeightClients = "clients"
)

// Policy configures per-tenant token-bucket admission.
type Policy struct {
	// Rate is the bucket refill in ops per tick (per tenant under
	// "flat", per client under "clients"). Must be positive.
	Rate float64

	// Burst is the bucket capacity in ops. Buckets start full. Must be
	// at least Rate (a bucket smaller than one refill would leak
	// tokens every tick).
	Burst float64

	// WeightMode selects how Rate maps to per-tenant refill rates:
	// "" or "flat" for equal shares, "clients" to scale by tenant
	// size.
	WeightMode string

	// DebtThreshold is the per-epoch stall fraction above which a
	// tenant counts as SLO-indebted for elastic scale-up (0 disables
	// the debt signal). Debt is stalls/(stalls+admitted) over the
	// closed epoch, measured on bucket-admitted work only.
	DebtThreshold float64
}

// DefaultPolicy returns a permissive flat policy: generous enough that
// a typical per-client rate never throttles, so attaching it to an
// uncontended run is behavior-neutral.
func DefaultPolicy() Policy {
	return Policy{Rate: 4000, Burst: 8000, WeightMode: WeightFlat, DebtThreshold: 0.5}
}

// Validate checks the policy for internal consistency.
func (p Policy) Validate() error {
	if p.Rate <= 0 || math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0) {
		return fmt.Errorf("tenant: rate must be positive, got %v", p.Rate)
	}
	if p.Burst < p.Rate || math.IsNaN(p.Burst) || math.IsInf(p.Burst, 0) {
		return fmt.Errorf("tenant: burst must be >= rate, got burst=%v rate=%v", p.Burst, p.Rate)
	}
	switch p.WeightMode {
	case "", WeightFlat, WeightClients:
	default:
		return fmt.Errorf("tenant: unknown weight mode %q", p.WeightMode)
	}
	if p.DebtThreshold < 0 || p.DebtThreshold >= 1 || math.IsNaN(p.DebtThreshold) {
		return fmt.Errorf("tenant: debt threshold must be in [0, 1), got %v", p.DebtThreshold)
	}
	return nil
}

// bucket is one tenant's admission and accounting state.
type bucket struct {
	rate   float64 // refill per tick
	burst  float64 // capacity; tokens start here
	tokens float64

	clients int // clients bound to this tenant

	// Per-tick counters, reset by BeginTick. The auditor checks
	// admittedTick against the engine's independent total and served
	// counts.
	admittedTick  int64
	throttledTick int64

	// Per-epoch counters, reset by EndEpoch.
	admittedEpoch int64
	stalledEpoch  int64

	// Cumulative counters for metrics and summaries.
	admitted  int64
	throttled int64
	stalled   int64

	debt             float64 // stall fraction of the last closed epoch
	throttledInEpoch bool    // bucket ran dry this (open) epoch
	throttledLast    bool    // bucket ran dry in the last closed epoch
}

// Manager is the cluster-wide tenant state: one token bucket per
// tenant plus the admission/throttle/stall accounting. Not safe for
// concurrent use; the cluster calls it only from serial tick sections.
type Manager struct {
	pol     Policy
	buckets []bucket
}

// NewManager validates the policy and builds an unbound manager; the
// cluster binds tenant sizes with Bind once the workload's client
// partition is known.
func NewManager(pol Policy) (*Manager, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &Manager{pol: pol}, nil
}

// MustManager is NewManager for static configuration; it panics on an
// invalid policy.
func MustManager(pol Policy) *Manager {
	m, err := NewManager(pol)
	if err != nil {
		panic(err)
	}
	return m
}

// Policy returns the manager's validated policy.
func (m *Manager) Policy() Policy { return m.pol }

// Bind sizes the manager for the workload's tenant partition:
// clientsPerTenant[t] clients belong to tenant t. Buckets start full.
// Binding replaces any previous binding (the manager must not be
// shared between clusters).
func (m *Manager) Bind(clientsPerTenant []int) error {
	if len(clientsPerTenant) == 0 {
		return fmt.Errorf("tenant: bind needs at least one tenant")
	}
	m.buckets = make([]bucket, len(clientsPerTenant))
	for t, n := range clientsPerTenant {
		if n <= 0 {
			return fmt.Errorf("tenant: tenant %d has %d clients; every tenant needs at least one", t, n)
		}
		rate, burst := m.pol.Rate, m.pol.Burst
		if m.pol.WeightMode == WeightClients {
			rate *= float64(n)
			burst *= float64(n)
		}
		m.buckets[t] = bucket{rate: rate, burst: burst, tokens: burst, clients: n}
	}
	return nil
}

// N returns the number of bound tenants (0 before Bind).
func (m *Manager) N() int { return len(m.buckets) }

// Clients returns tenant t's bound client count.
func (m *Manager) Clients(t int) int { return m.buckets[t].clients }

// BeginTick refills every bucket and resets the per-tick counters.
// Called once per tick from the serial prologue.
func (m *Manager) BeginTick() {
	for t := range m.buckets {
		b := &m.buckets[t]
		b.tokens += b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.admittedTick = 0
		b.throttledTick = 0
	}
}

// Take grants up to n ops from tenant t's bucket and returns the
// grant. Fractional tokens stay in the bucket: a grant is always a
// whole number of ops.
func (m *Manager) Take(t, n int) int {
	if n <= 0 {
		return 0
	}
	b := &m.buckets[t]
	grant := n
	if avail := int(b.tokens); avail < grant {
		grant = avail
	}
	b.tokens -= float64(grant)
	return grant
}

// Refund returns n ops' worth of tokens to tenant t's bucket — the
// admission path hands back the part of a bucket grant the rank pool
// could not cover, so a pool stall is never double-charged as a
// quota spend.
func (m *Manager) Refund(t, n int) {
	if n <= 0 {
		return
	}
	b := &m.buckets[t]
	b.tokens += float64(n)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// NoteAdmitted records n ops admitted for tenant t this tick (bucket
// and pool both covered them).
func (m *Manager) NoteAdmitted(t, n int) {
	if n <= 0 {
		return
	}
	b := &m.buckets[t]
	b.admittedTick += int64(n)
	b.admittedEpoch += int64(n)
	b.admitted += int64(n)
}

// NoteThrottled records n ops denied by tenant t's bucket this tick —
// the quota doing its job, never an SLO-debt signal.
func (m *Manager) NoteThrottled(t, n int) {
	if n <= 0 {
		return
	}
	b := &m.buckets[t]
	b.throttledTick += int64(n)
	b.throttled += int64(n)
	b.throttledInEpoch = true
}

// NoteStalled records n bucket-admitted ops the rank pool could not
// serve — the cluster failing an in-quota tenant, the signal SLO debt
// is computed from.
func (m *Manager) NoteStalled(t, n int) {
	if n <= 0 {
		return
	}
	b := &m.buckets[t]
	b.stalledEpoch += int64(n)
	b.stalled += int64(n)
}

// EndEpoch closes the epoch: per-tenant debt becomes the epoch's
// stall fraction on bucket-admitted work, the throttled-recently
// latch moves, and the epoch counters reset.
func (m *Manager) EndEpoch() {
	for t := range m.buckets {
		b := &m.buckets[t]
		if tot := b.stalledEpoch + b.admittedEpoch; tot > 0 {
			b.debt = float64(b.stalledEpoch) / float64(tot)
		} else {
			b.debt = 0
		}
		b.throttledLast = b.throttledInEpoch
		b.throttledInEpoch = false
		b.admittedEpoch = 0
		b.stalledEpoch = 0
	}
}

// MaxDebt returns the highest per-tenant SLO debt from the last closed
// epoch, but only when it crosses the policy's DebtThreshold — the
// elastic snapshot signal. Returns 0 when the signal is disabled or
// every tenant is within threshold.
func (m *Manager) MaxDebt() float64 {
	if m.pol.DebtThreshold <= 0 {
		return 0
	}
	max := 0.0
	for t := range m.buckets {
		if d := m.buckets[t].debt; d > max {
			max = d
		}
	}
	if max < m.pol.DebtThreshold {
		return 0
	}
	return max
}

// DebtOf returns tenant t's SLO debt from the last closed epoch.
func (m *Manager) DebtOf(t int) float64 { return m.buckets[t].debt }

// ThrottledLastEpoch reports whether tenant t's bucket ran dry during
// the last closed epoch — the fairness signal the balancer consults
// before migrating a subtree that is hot purely from over-quota load.
func (m *Manager) ThrottledLastEpoch(t int) bool { return m.buckets[t].throttledLast }

// Tokens returns tenant t's current bucket level (audited to stay
// within [0, Burst]).
func (m *Manager) Tokens(t int) float64 { return m.buckets[t].tokens }

// BurstOf returns tenant t's bucket capacity.
func (m *Manager) BurstOf(t int) float64 { return m.buckets[t].burst }

// RateOf returns tenant t's per-tick refill rate.
func (m *Manager) RateOf(t int) float64 { return m.buckets[t].rate }

// AdmittedTick returns the ops admitted for tenant t in the current
// tick — the auditor's conservation operand.
func (m *Manager) AdmittedTick(t int) int64 { return m.buckets[t].admittedTick }

// ThrottledTick returns the ops bucket-denied for tenant t this tick.
func (m *Manager) ThrottledTick(t int) int64 { return m.buckets[t].throttledTick }

// Admitted returns tenant t's cumulative admitted ops.
func (m *Manager) Admitted(t int) int64 { return m.buckets[t].admitted }

// Throttled returns tenant t's cumulative bucket-denied ops.
func (m *Manager) Throttled(t int) int64 { return m.buckets[t].throttled }

// Stalled returns tenant t's cumulative pool-stalled admitted ops.
func (m *Manager) Stalled(t int) int64 { return m.buckets[t].stalled }
