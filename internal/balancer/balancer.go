// Package balancer defines the load-balancer interface the simulated
// MDS cluster drives once per epoch, plus the three baseline policies
// the paper evaluates against: the CephFS built-in balancer (Vanilla),
// the GreedySpill policy from GIGA+/Mantle, and the static Dir-Hash
// pinning scheme. The paper's own balancer (Lunule) lives in
// internal/core and implements the same interface.
package balancer

import (
	"repro/internal/mds"
	"repro/internal/msg"
	"repro/internal/namespace"
	"repro/internal/rng"
)

// View is the cluster state a balancer sees at an epoch boundary. Load
// histories have already been updated for the epoch that just ended.
type View interface {
	// Tick is the current simulation tick (seconds).
	Tick() int64
	// Epoch is the index of the epoch that just ended.
	Epoch() int64
	// EpochTicks is the epoch length in ticks.
	EpochTicks() int
	// NumMDS returns the current cluster size.
	NumMDS() int
	// Up reports whether the given rank is alive. Down ranks serve
	// nothing and must never be chosen as migration endpoints.
	Up(id namespace.MDSID) bool
	// Importable reports whether the given rank may receive subtrees:
	// up and not draining. A draining rank still serves (and exports)
	// but is being emptied by the elastic scale-down path, so the
	// balancer must never plan imports into it.
	Importable(id namespace.MDSID) bool
	// Server returns the MDS with the given rank.
	Server(id namespace.MDSID) *mds.Server
	// Partition is the live subtree partition (balancers mutate it via
	// Carve/SplitEntry before submitting migrations).
	Partition() *namespace.Partition
	// Migrator accepts export tasks.
	Migrator() *mds.Migrator
	// Capacity is the theoretical maximum IOPS of a single MDS (the
	// paper's C).
	Capacity() float64
	// HeatDecay is the per-epoch popularity decay factor in (0, 1].
	HeatDecay() float64
	// Rand is a deterministic per-run random source for tie-breaking.
	Rand() *rng.Source
	// Ledger accounts control-plane message traffic.
	Ledger() *msg.Ledger
}

// LeaseView is the optional migrate-vs-replicate extension of View: a
// view that also knows which subtrees are served (or about to be
// served) under read leases. A leased subtree's read storm is already
// spread across its replica holders, so migrating it would revoke the
// leases and re-concentrate the load on the new authority — candidate
// enumeration skips such entries. Views without lease state (or with
// leases disabled) simply don't implement this, and enumeration is
// unchanged.
type LeaseView interface {
	// ReadLeased reports whether the subtree entry holds live read
	// leases, or qualifies for them and is waiting on standby syncs.
	ReadLeased(key namespace.FragKey) bool
}

// TenantView is the optional fairness extension of View: a view that
// also knows which subtrees are hot because of a tenant the admission
// buckets are already throttling. Migrating such a subtree would
// spread a noisy neighbour's over-quota load across more ranks — and
// drag everything co-located with it — instead of containing it where
// admission control caps it, so candidate enumeration skips these
// entries. Views without tenant state simply don't implement this, and
// enumeration is unchanged.
type TenantView interface {
	// TenantThrottled reports whether the subtree entry's heat is
	// dominated by a tenant whose token bucket throttled last epoch.
	TenantThrottled(key namespace.FragKey) bool
}

// Balancer decides, once per epoch, whether and what to migrate.
type Balancer interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Rebalance inspects the view and submits export tasks.
	Rebalance(v View)
}

// HeatPerIOPS converts a load amount in ops/sec into popularity (heat)
// units: heat accumulates one unit per op and decays once per epoch, so
// a steady load L contributes about L*epochTicks/(1-decay) heat.
func HeatPerIOPS(v View) float64 {
	d := v.HeatDecay()
	if d >= 1 {
		d = 0.99
	}
	return float64(v.EpochTicks()) / (1 - d)
}

// Loads returns the per-MDS loads (ops/sec) of the last epoch.
func Loads(v View) []float64 {
	out := make([]float64, v.NumMDS())
	for i := range out {
		out[i] = v.Server(namespace.MDSID(i)).CurrentLoad()
	}
	return out
}

// LiveRanks returns the ranks that are currently up, in rank order.
func LiveRanks(v View) []namespace.MDSID {
	out := make([]namespace.MDSID, 0, v.NumMDS())
	for i := 0; i < v.NumMDS(); i++ {
		if id := namespace.MDSID(i); v.Up(id) {
			out = append(out, id)
		}
	}
	return out
}

// ImportableRanks returns the ranks that may receive subtrees (up and
// not draining), in rank order. This is the participant set balancers
// plan over: a draining rank's remaining load is the drain pump's
// problem, not the balancer's, and counting a rank that is leaving
// would both skew the average and invite imports into it.
func ImportableRanks(v View) []namespace.MDSID {
	out := make([]namespace.MDSID, 0, v.NumMDS())
	for i := 0; i < v.NumMDS(); i++ {
		if id := namespace.MDSID(i); v.Importable(id) {
			out = append(out, id)
		}
	}
	return out
}

// SmoothedLoads returns the mean of each MDS's last k epoch loads —
// the decayed view the CephFS built-in balancer effectively works from
// (its popularity counters age over minutes, not one epoch).
func SmoothedLoads(v View, k int) []float64 {
	out := make([]float64, v.NumMDS())
	for i := range out {
		h := v.Server(namespace.MDSID(i)).LoadHistory()
		if len(h) == 0 {
			continue
		}
		n := k
		if n > len(h) {
			n = len(h)
		}
		sum := 0.0
		for _, l := range h[len(h)-n:] {
			sum += l
		}
		out[i] = sum / float64(n)
	}
	return out
}

// LoadHistories returns each MDS's per-epoch load history.
func LoadHistories(v View) [][]float64 {
	out := make([][]float64, v.NumMDS())
	for i := range out {
		out[i] = v.Server(namespace.MDSID(i)).LoadHistory()
	}
	return out
}
