package balancer

import (
	"fmt"
	"testing"

	"repro/internal/namespace"
	"repro/internal/simtest"
)

// buildView makes an n-MDS view over /data with nDirs x filesPer files.
func buildView(t testing.TB, n, nDirs, filesPer int) (*simtest.View, []*namespace.Inode) {
	t.Helper()
	tree := namespace.NewTree()
	data, err := tree.MkdirAll("/data")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []*namespace.Inode
	for d := 0; d < nDirs; d++ {
		dir, err := tree.Mkdir(data, fmt.Sprintf("d%03d", d))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < filesPer; f++ {
			if _, err := tree.Create(dir, fmt.Sprintf("f%04d", f), 1); err != nil {
				t.Fatal(err)
			}
		}
		dirs = append(dirs, dir)
	}
	return simtest.New(tree, n), dirs
}

// heatUp serves every file of every dir once per epoch for the given
// epochs, ending each epoch.
func heatUp(v *simtest.View, dirs []*namespace.Inode, epochs int) {
	for e := 0; e < epochs; e++ {
		for _, d := range dirs {
			for _, f := range d.Children() {
				v.ServeN(f, 1, int64(e))
			}
		}
		v.EndEpoch()
	}
}

func TestLoadsAndSmoothedLoads(t *testing.T) {
	v, dirs := buildView(t, 3, 4, 10)
	heatUp(v, dirs, 1)
	loads := Loads(v)
	if loads[0] <= 0 || loads[1] != 0 || loads[2] != 0 {
		t.Fatalf("loads = %v", loads)
	}
	// Smoothing over more epochs than exist uses what's there.
	s := SmoothedLoads(v, 5)
	if s[0] != loads[0] {
		t.Fatalf("smoothed %v vs loads %v", s, loads)
	}
	heatUp(v, dirs, 1)
	s2 := SmoothedLoads(v, 2)
	if s2[0] <= 0 {
		t.Fatal("smoothed load should be positive")
	}
}

func TestEnumerateRefinesHotRoot(t *testing.T) {
	v, dirs := buildView(t, 3, 6, 10)
	heatUp(v, dirs, 2)
	s := v.Servers[0]
	lf := LoadFuncs{
		OfKey: func(k namespace.FragKey) float64 { return s.HeatOfKey(k) },
		OfDir: func(d *namespace.Inode) float64 { return s.HeatOfDir(d.Ino) },
	}
	// Low refine threshold: expect leaf dirs as candidates.
	cands := Enumerate(v, 0, lf, 1, 64)
	if len(cands) != 6 {
		t.Fatalf("candidates = %d, want the 6 leaf dirs", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Load > cands[i-1].Load {
			t.Fatal("candidates must be sorted by descending load")
		}
	}
	// High threshold: the single /data dir stays whole.
	coarse := Enumerate(v, 0, lf, 1e18, 64)
	if len(coarse) != 1 || coarse[0].RootDir() != dirs[0].Parent.Ino {
		t.Fatalf("coarse candidates = %v", coarse)
	}
}

func TestEnumerateSkipsPendingAndForeign(t *testing.T) {
	v, dirs := buildView(t, 3, 4, 10)
	heatUp(v, dirs, 2)
	// Move d0 to MDS 1 and mark d1 pending.
	e0 := v.Part.Carve(dirs[0])
	v.Part.SetAuth(e0.Key, 1)
	e1 := v.Part.Carve(dirs[1])
	v.Mig.Submit(e1.Key, 0, 2, 1, 0)
	s := v.Servers[0]
	lf := LoadFuncs{
		OfKey: func(k namespace.FragKey) float64 { return s.HeatOfKey(k) },
		OfDir: func(d *namespace.Inode) float64 { return s.HeatOfDir(d.Ino) },
	}
	cands := Enumerate(v, 0, lf, 1, 64)
	for _, c := range cands {
		if c.RootDir() == dirs[0].Ino {
			t.Fatal("enumerated a subtree owned by another MDS")
		}
		if c.RootDir() == dirs[1].Ino {
			t.Fatal("enumerated a subtree pending export")
		}
	}
}

func TestSubmitCandidateCarvesAndQueues(t *testing.T) {
	v, dirs := buildView(t, 3, 3, 10)
	heatUp(v, dirs, 1)
	c := Candidate{Dir: dirs[0], Load: 5}
	if !SubmitCandidate(v, c, 0, 2) {
		t.Fatal("submit failed")
	}
	if v.Mig.QueuedTasks() != 1 {
		t.Fatal("no task queued")
	}
	if _, ok := v.Part.EntryAt(namespace.FragKey{Dir: dirs[0].Ino, Frag: namespace.WholeFrag}); !ok {
		t.Fatal("candidate was not carved")
	}
	// Submitting on behalf of the wrong exporter must fail.
	if SubmitCandidate(v, Candidate{Dir: dirs[1], Load: 1}, 2, 0) {
		t.Fatal("submit with wrong exporter should fail")
	}
}

func TestGreedyFill(t *testing.T) {
	cands := []Candidate{{Load: 10}, {Load: 5}, {Load: 3}, {Load: 0}}
	picked := GreedyFill(cands, 12)
	if len(picked) != 2 || picked[0].Load != 10 || picked[1].Load != 5 {
		t.Fatalf("picked %v", picked)
	}
	if got := GreedyFill(cands, 100); len(got) != 3 {
		t.Fatalf("zero-load candidates must stop the fill, got %d", len(got))
	}
	if got := GreedyFill(nil, 5); got != nil {
		t.Fatal("empty candidates")
	}
}

func TestHeatSelectFraction(t *testing.T) {
	v, dirs := buildView(t, 3, 10, 10)
	heatUp(v, dirs, 2)
	half := HeatSelect(v, 0, 0.5, 64)
	if len(half) == 0 {
		t.Fatal("no selection")
	}
	total := 0.0
	for _, c := range half {
		total += c.Load
	}
	full := HeatSelect(v, 0, 1.0, 64)
	fullTotal := 0.0
	for _, c := range full {
		fullTotal += c.Load
	}
	frac := total / fullTotal
	if frac < 0.35 || frac > 0.75 {
		t.Fatalf("half selection carries %.2f of the heat", frac)
	}
	if HeatSelect(v, 0, 0, 64) != nil {
		t.Fatal("zero fraction")
	}
	// Fractions above 1 clamp.
	if over := HeatSelect(v, 0, 5, 64); len(over) < len(full) {
		t.Fatal("over-fraction should clamp to everything")
	}
}

func TestVanillaExportsWhenSkewed(t *testing.T) {
	v, dirs := buildView(t, 3, 6, 10)
	heatUp(v, dirs, 2) // all load on MDS 0
	b := NewVanilla()
	b.Rebalance(v)
	if v.Mig.QueuedTasks()+v.Mig.ActiveTasks() == 0 {
		t.Fatal("vanilla did not react to a fully skewed cluster")
	}
	// Heartbeats were exchanged N-to-N.
	if v.Ledg.TotalBytes() == 0 {
		t.Fatal("no heartbeat traffic accounted")
	}
}

func TestVanillaIdleClusterNoops(t *testing.T) {
	v, _ := buildView(t, 3, 3, 5)
	v.EndEpoch()
	NewVanilla().Rebalance(v)
	if v.Mig.QueuedTasks() != 0 {
		t.Fatal("idle cluster must not migrate")
	}
}

func TestVanillaBalancedClusterNoops(t *testing.T) {
	v, dirs := buildView(t, 3, 6, 10)
	// Distribute the dirs evenly first.
	for i, d := range dirs {
		e := v.Part.Carve(d)
		v.Part.SetAuth(e.Key, namespace.MDSID(i%3))
	}
	heatUp(v, dirs, 2)
	NewVanilla().Rebalance(v)
	if n := v.Mig.QueuedTasks(); n != 0 {
		t.Fatalf("balanced cluster queued %d exports", n)
	}
}

func TestGreedySpillSpillsToIdleNeighbour(t *testing.T) {
	v, dirs := buildView(t, 3, 6, 10)
	heatUp(v, dirs, 2)
	b := NewGreedySpill()
	b.Rebalance(v)
	if v.Mig.QueuedTasks()+v.Mig.ActiveTasks() == 0 {
		t.Fatal("greedyspill did not spill to the idle neighbour")
	}
	// All tasks target rank 1 (the neighbour of rank 0).
	for _, k := range v.Mig.FrozenKeys() {
		_ = k // frozen set may be empty pre-tick; check pending instead
	}
}

func TestGreedySpillBusyNeighbourNoSpill(t *testing.T) {
	v, dirs := buildView(t, 2, 4, 10)
	// Both MDSs have load: d0,d1 on MDS0; d2,d3 on MDS1.
	for i, d := range dirs {
		if i >= 2 {
			e := v.Part.Carve(d)
			v.Part.SetAuth(e.Key, 1)
		}
	}
	heatUp(v, dirs, 2)
	NewGreedySpill().Rebalance(v)
	if v.Mig.QueuedTasks() != 0 {
		t.Fatal("greedyspill must only spill to an idle neighbour")
	}
}

func TestDirHashPinsLeavesEvenly(t *testing.T) {
	v, dirs := buildView(t, 4, 40, 5)
	b := NewDirHash()
	b.Rebalance(v)
	// Every leaf dir became a pinned subtree root.
	pinned := 0
	counts := make(map[namespace.MDSID]int)
	for _, d := range dirs {
		es := v.Part.EntriesAt(d.Ino)
		if len(es) == 1 {
			pinned++
			counts[es[0].Auth]++
		}
	}
	if pinned != 40 {
		t.Fatalf("pinned %d of 40 leaf dirs", pinned)
	}
	if len(counts) < 3 {
		t.Fatalf("pins concentrated on %d MDSs", len(counts))
	}
	// Idempotent.
	version := v.Part.Version()
	b.Rebalance(v)
	if v.Part.Version() != version {
		t.Fatal("re-pinning must not mutate the partition")
	}
	// Dir-Hash never migrates.
	if v.Mig.QueuedTasks() != 0 {
		t.Fatal("dir-hash must not submit migrations")
	}
}

func TestDirHashPinsNewDirsLater(t *testing.T) {
	v, _ := buildView(t, 4, 2, 2)
	b := NewDirHash()
	b.Rebalance(v)
	data, _ := v.Part.Tree().Lookup("/data")
	newDir, err := v.Part.Tree().Mkdir(data, "late")
	if err != nil {
		t.Fatal(err)
	}
	b.Rebalance(v)
	if len(v.Part.EntriesAt(newDir.Ino)) != 1 {
		t.Fatal("late directory was not pinned on the next epoch")
	}
}

func TestHeatPerIOPS(t *testing.T) {
	v, _ := buildView(t, 2, 1, 1)
	// decay 0.9, epoch 10 ticks -> 10/(0.1) = 100 (floating slack).
	if got := HeatPerIOPS(v); got < 99.9 || got > 100.1 {
		t.Fatalf("HeatPerIOPS = %v, want ~100", got)
	}
}
