package balancer

import (
	"repro/internal/namespace"
	"repro/internal/obs"
)

// GreedySpill is the GIGA+-derived policy the paper runs through the
// Mantle framework: whenever an MDS has load and its neighbour (next
// rank, wrapping) has none, it spills half of its load to that
// neighbour. It uses only local information — no global view, no
// urgency — which is why the paper measures it as the worst balancer
// (IF close to 1 on most workloads).
type GreedySpill struct {
	// IdleThreshold is the load below which the neighbour counts as
	// idle (ops/sec).
	IdleThreshold float64
	// CandidateLimit bounds candidate enumeration.
	CandidateLimit int

	bus *obs.Bus
}

// NewGreedySpill returns the policy with the Mantle defaults.
func NewGreedySpill() *GreedySpill {
	return &GreedySpill{IdleThreshold: 1, CandidateLimit: 64}
}

// Name implements Balancer.
func (b *GreedySpill) Name() string { return "GreedySpill" }

// SetBus implements obs.BusCarrier.
func (b *GreedySpill) SetBus(bus *obs.Bus) { b.bus = bus }

// Rebalance implements Balancer.
func (b *GreedySpill) Rebalance(v View) {
	n := v.NumMDS()
	v.Ledger().EpochVanilla(n) // Mantle runs inside the stock heartbeat exchange

	loads := Loads(v)
	for i := 0; i < n; i++ {
		ex := namespace.MDSID(i)
		if !v.Importable(ex) {
			// Down or draining: the drain pump owns a draining rank's
			// exports; GreedySpill stays out of its way.
			continue
		}
		// The neighbour is the next importable rank (wrapping):
		// spilling to a crashed or draining neighbour would strand the
		// subtree on a rank that is leaving.
		neighbour := ex
		for step := 1; step < n; step++ {
			cand := namespace.MDSID((i + step) % n)
			if v.Importable(cand) {
				neighbour = cand
				break
			}
		}
		if neighbour == ex {
			continue
		}
		if loads[i] <= b.IdleThreshold || loads[neighbour] > b.IdleThreshold {
			continue
		}
		if b.bus.Enabled(obs.EvTrigger) {
			b.bus.Emit(obs.Event{Tick: v.Tick(), Type: obs.EvTrigger, Fields: obs.F{
				"balancer": b.Name(), "from": i, "to": int(neighbour),
				"load": loads[i], "fired": true,
			}})
		}
		// Ship half of my load to the idle neighbour.
		for _, c := range HeatSelect(v, ex, 0.5, b.CandidateLimit) {
			SubmitCandidate(v, c, ex, neighbour)
		}
	}
}
