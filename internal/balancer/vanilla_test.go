package balancer

import (
	"testing"

	"repro/internal/namespace"
)

// These tests pin down the CephFS-Vanilla approximation's decision
// edges: the fudge-factor trigger, importer ordering, and the
// smoothed-load view.

func TestVanillaFudgeFactorEdge(t *testing.T) {
	// Distribute the dirs so one MDS is ~8% above average: below the
	// 10% fudge factor, no export.
	v, dirs := buildView(t, 3, 9, 10)
	// 4 dirs on MDS 0, 3 on MDS 1, 2 on MDS 2: loads 40/30/20 visits
	// per epoch -> avg 30, max deviation 33% -> triggers. Then a finer
	// split below.
	assign := []namespace.MDSID{0, 0, 0, 0, 1, 1, 1, 2, 2}
	for i, d := range dirs {
		if assign[i] != 0 {
			e := v.Part.Carve(d)
			v.Part.SetAuth(e.Key, assign[i])
		}
	}
	heatUp(v, dirs, 2)
	NewVanilla().Rebalance(v)
	if v.Mig.QueuedTasks() == 0 {
		t.Fatal("a 33% deviation must trigger vanilla")
	}

	// Rebuild nearly balanced: 3/3/3 -> no trigger.
	v2, dirs2 := buildView(t, 3, 9, 10)
	for i, d := range dirs2 {
		target := namespace.MDSID(i % 3)
		if target != 0 {
			e := v2.Part.Carve(d)
			v2.Part.SetAuth(e.Key, target)
		}
	}
	heatUp(v2, dirs2, 2)
	NewVanilla().Rebalance(v2)
	if v2.Mig.QueuedTasks() != 0 {
		t.Fatal("an even split must not trigger vanilla")
	}
}

func TestVanillaSmoothedTrigger(t *testing.T) {
	// A single-epoch spike on an otherwise balanced cluster is damped
	// by the two-epoch smoothing: with history [even, spike], the
	// smoothed deviation halves.
	v, dirs := buildView(t, 2, 4, 10)
	// Even first epoch.
	for i, d := range dirs {
		if i >= 2 {
			e := v.Part.Carve(d)
			v.Part.SetAuth(e.Key, 1)
		}
	}
	heatUp(v, dirs, 1)
	loads1 := Loads(v)
	if loads1[0] != loads1[1] {
		t.Fatalf("setup not even: %v", loads1)
	}
	// Epoch 2: MDS 0 serves 15% more (a one-epoch spike). The smoothed
	// deviation (~7.5%) stays under the 10% fudge factor.
	for _, d := range dirs {
		for _, f := range d.Children() {
			v.ServeN(f, 1, 1)
		}
	}
	for _, f := range dirs[0].Children()[:6] {
		v.ServeN(f, 1, 1)
	}
	v.EndEpoch()
	NewVanilla().Rebalance(v)
	if v.Mig.QueuedTasks() != 0 {
		t.Fatal("a damped one-epoch spike must not trigger")
	}
}

func TestGreedySpillRingNeighbour(t *testing.T) {
	// Load on the LAST rank: its neighbour wraps to rank 0.
	v, dirs := buildView(t, 3, 4, 10)
	for _, d := range dirs {
		e := v.Part.Carve(d)
		v.Part.SetAuth(e.Key, 2)
	}
	heatUp(v, dirs, 2)
	NewGreedySpill().Rebalance(v)
	pend := v.Mig.PendingFor(2)
	if len(pend) == 0 {
		t.Fatal("rank 2 should spill")
	}
}

func TestGreedySpillSingleMDSNoop(t *testing.T) {
	v, dirs := buildView(t, 1, 3, 10)
	heatUp(v, dirs, 2)
	NewGreedySpill().Rebalance(v)
	if v.Mig.QueuedTasks() != 0 {
		t.Fatal("single-MDS cluster cannot spill")
	}
}

func TestCandidateRootDir(t *testing.T) {
	v, dirs := buildView(t, 2, 1, 3)
	_ = v
	c := Candidate{Dir: dirs[0]}
	if c.RootDir() != dirs[0].Ino {
		t.Fatal("dir candidate root")
	}
	ce := Candidate{Key: namespace.FragKey{Dir: 42}, IsEntry: true}
	if ce.RootDir() != 42 {
		t.Fatal("entry candidate root")
	}
}
