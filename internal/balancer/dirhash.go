package balancer

import (
	"repro/internal/namespace"
)

// DirHash simulates the hash-based metadata distribution of §4.6: the
// namespace is split into fine-grained subtrees (directories at a fixed
// depth) that are statically pinned to MDS ranks by name hash, and no
// dynamic migration ever happens. Inodes spread evenly, but requests do
// not — and path traversal crosses many authority boundaries, inflating
// forwards (Figure 14).
type DirHash struct {
	// MaxDepth bounds how deep the pinner descends; a directory is
	// pinned when it has no sub-directories (a leaf, the finest
	// grain) or when it sits at MaxDepth.
	MaxDepth int

	pinnedVersion uint64
	initialized   bool
}

// NewDirHash returns the static pinning policy.
func NewDirHash() *DirHash { return &DirHash{MaxDepth: 4} }

// Name implements Balancer.
func (b *DirHash) Name() string { return "Dir-Hash" }

// Rebalance implements Balancer: on every epoch it (re)pins any
// directories at the pin depth that are not yet subtree roots — new
// directories appear when workloads create them — and performs no load
// balancing whatsoever.
func (b *DirHash) Rebalance(v View) {
	v.Ledger().EpochVanilla(v.NumMDS()) // stock heartbeat still runs
	b.pin(v)
}

func (b *DirHash) pin(v View) {
	part := v.Partition()
	tree := part.Tree()
	live := ImportableRanks(v)
	if len(live) == 0 {
		return
	}
	pin := func(ch *namespace.Inode) {
		if len(part.EntriesAt(ch.Ino)) == 0 {
			e := part.Carve(ch)
			// Hash across the importable ranks only; with no failures
			// or drains this is identical to hashing across all ranks.
			target := live[int(namespace.HashName(ch.Path()))%len(live)]
			part.SetAuth(e.Key, target)
		}
	}
	var walk func(dir *namespace.Inode, depth int)
	walk = func(dir *namespace.Inode, depth int) {
		for _, ch := range dir.Children() {
			if !ch.IsDir {
				continue
			}
			hasSubdirs := false
			for _, g := range ch.Children() {
				if g.IsDir {
					hasSubdirs = true
					break
				}
			}
			if !hasSubdirs || depth+1 >= b.MaxDepth {
				pin(ch)
				continue
			}
			walk(ch, depth+1)
		}
	}
	walk(tree.Root(), 0)
	b.initialized = true
	b.pinnedVersion = part.Version()
}
