package balancer

import (
	"sort"

	"repro/internal/namespace"
)

// Candidate is a movable unit of namespace: either an existing subtree
// entry or a directory that can be carved into one. Load is the
// policy-specific estimate of the load the unit carries (heat for the
// CephFS policy, migration index for Lunule).
type Candidate struct {
	// Key is set for existing partition entries.
	Key namespace.FragKey
	// Dir is set for carve candidates (directories that are not yet
	// subtree roots). Exactly one of Key/Dir is meaningful; IsEntry
	// discriminates.
	Dir     *namespace.Inode
	IsEntry bool
	Load    float64
}

// RootDir returns the directory inode number the candidate is rooted at.
func (c Candidate) RootDir() namespace.Ino {
	if c.IsEntry {
		return c.Key.Dir
	}
	return c.Dir.Ino
}

// LoadFuncs supplies the policy-specific load estimators used during
// candidate enumeration.
type LoadFuncs struct {
	// OfKey estimates the load of an existing subtree entry.
	OfKey func(namespace.FragKey) float64
	// OfDir estimates the load of the subtree rooted at a directory.
	OfDir func(*namespace.Inode) float64
}

// Enumerate lists the migration candidates an exporter can offer:
// its subtree entries, adaptively refined into child directories while
// a candidate's load exceeds refineAbove (so hotspots are broken into
// movable pieces) and the candidate count stays below limit. Subtrees
// that are frozen by in-flight migrations or already planned for export
// are skipped. The root entry is always refined, never offered whole.
func Enumerate(v View, exporter namespace.MDSID, lf LoadFuncs, refineAbove float64, limit int) []Candidate {
	part := v.Partition()
	skip := v.Migrator().PendingFor(exporter)
	tree := part.Tree()

	// enumCand decorates a candidate with its memoized refinable
	// children. Enumerate never mutates the partition or the tree, so a
	// candidate's child set is fixed for the whole call; without the
	// memo every pick iteration re-scans the children of every
	// unrefinable heavy candidate — O(picks × candidates × children).
	type enumCand struct {
		Candidate
		kids      []*namespace.Inode
		kidsKnown bool
	}
	var cands []enumCand
	add := func(c Candidate) { cands = append(cands, enumCand{Candidate: c}) }

	// childDirs lists the sub-directories inside a candidate that are
	// not already subtree roots of their own.
	childDirs := func(dir *namespace.Inode, frag namespace.Frag) []*namespace.Inode {
		var out []*namespace.Inode
		for _, ch := range dir.ChildrenInFrag(frag) {
			if ch.IsDir && len(part.EntriesAt(ch.Ino)) == 0 {
				out = append(out, ch)
			}
		}
		return out
	}

	// Subtrees served under read leases are handled by replication, not
	// migration (see LeaseView); they are skipped like frozen entries.
	lv, _ := v.(LeaseView)

	rootKey := namespace.FragKey{Dir: namespace.RootIno, Frag: namespace.WholeFrag}
	for _, e := range part.EntriesOf(exporter) {
		if skip[e.Key] || v.Migrator().IsFrozen(e.Key) {
			continue
		}
		if lv != nil && lv.ReadLeased(e.Key) {
			continue
		}
		if e.Key == rootKey {
			// Never move the root subtree whole; offer its children.
			for _, ch := range childDirs(tree.Root(), namespace.WholeFrag) {
				add(Candidate{Dir: ch, Load: lf.OfDir(ch)})
			}
			continue
		}
		add(Candidate{Key: e.Key, IsEntry: true, Load: lf.OfKey(e.Key)})
	}

	// kidsOf resolves a candidate's refinable children once and caches
	// them for the rest of the call.
	kidsOf := func(c *enumCand) []*namespace.Inode {
		if !c.kidsKnown {
			c.kidsKnown = true
			var dir *namespace.Inode
			frag := namespace.WholeFrag
			if c.IsEntry {
				dir = tree.Get(c.Key.Dir)
				frag = c.Key.Frag
			} else {
				dir = c.Dir
			}
			if dir != nil {
				c.kids = childDirs(dir, frag)
			}
		}
		return c.kids
	}

	// Adaptive refinement: break the heaviest refinable candidate into
	// its child directories until everything is small enough.
	for len(cands) < limit {
		best := -1
		for i := range cands {
			c := &cands[i]
			if c.Load <= refineAbove || len(kidsOf(c)) == 0 {
				continue
			}
			if best == -1 || c.Load > cands[best].Load {
				best = i
			}
		}
		if best == -1 {
			break
		}
		kids := cands[best].kids
		cands = append(cands[:best], cands[best+1:]...)
		for _, ch := range kids {
			add(Candidate{Dir: ch, Load: lf.OfDir(ch)})
		}
	}

	out := make([]Candidate, len(cands))
	for i := range cands {
		out[i] = cands[i].Candidate
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Load != out[j].Load {
			return out[i].Load > out[j].Load
		}
		return out[i].RootDir() < out[j].RootDir()
	})
	return out
}

// SubmitCandidate carves the candidate if necessary and enqueues its
// export from exporter to importer. It returns false when the
// candidate could not be converted into a migratable entry.
func SubmitCandidate(v View, c Candidate, exporter, importer namespace.MDSID) bool {
	part := v.Partition()
	key := c.Key
	if !c.IsEntry {
		if c.Dir == nil || len(part.EntriesAt(c.Dir.Ino)) > 0 {
			return false
		}
		key = part.Carve(c.Dir).Key
	}
	if e, ok := part.EntryAt(key); !ok || e.Auth != exporter {
		return false
	}
	v.Migrator().Submit(key, exporter, importer, c.Load, v.Tick())
	return true
}

// HeatSelect picks the candidates whose accumulated heat covers the
// given fraction of the exporter's total candidate heat, hottest first.
// Expressing the target as a fraction of the exporter's own heat keeps
// the amount and the per-subtree values in the same (decayed-counter)
// units, as in CephFS, where the balancer's load metric and the subtree
// popularity are the same counter.
func HeatSelect(v View, exporter namespace.MDSID, fraction float64, limit int) []Candidate {
	if fraction <= 0 {
		return nil
	}
	if fraction > 1 {
		fraction = 1
	}
	s := v.Server(exporter)
	lf := LoadFuncs{
		OfKey: func(k namespace.FragKey) float64 { return s.HeatOfKey(k) },
		OfDir: func(d *namespace.Inode) float64 { return s.HeatOfDir(d.Ino) },
	}
	// First pass: coarse candidates to size the exporter's total heat.
	coarse := Enumerate(v, exporter, lf, 1e300, limit)
	total := 0.0
	for _, c := range coarse {
		total += c.Load
	}
	target := fraction * total
	if target <= 0 {
		return nil
	}
	// Second pass: refine anything bigger than the target into movable
	// pieces, then fill hottest-first.
	cands := Enumerate(v, exporter, lf, target, limit)
	return GreedyFill(cands, target)
}

// GreedyFill picks candidates in descending-load order until their
// loads sum to at least target (overshooting by at most the final
// pick), mirroring how the CephFS built-in balancer fills its export
// amount from the hottest dirfrags down.
func GreedyFill(cands []Candidate, target float64) []Candidate {
	var out []Candidate
	sum := 0.0
	for _, c := range cands {
		if sum >= target {
			break
		}
		if c.Load <= 0 {
			break
		}
		out = append(out, c)
		sum += c.Load
	}
	return out
}
