package balancer

import (
	"fmt"
	"testing"

	"repro/internal/namespace"
	"repro/internal/simtest"
)

// BenchmarkEnumerateWide measures candidate enumeration over a wide,
// two-level namespace where adaptive refinement picks every top-level
// directory in turn. Each pick used to re-scan the children of every
// other heavy-but-unrefinable candidate — O(picks × candidates ×
// children) — which the per-candidate child memo collapses to one scan
// per candidate.
func BenchmarkEnumerateWide(b *testing.B) {
	const (
		wide     = 48 // top-level dirs under /data
		subdirs  = 4  // refinable children per top-level dir
		files    = 32 // direct files per top-level dir
		subFiles = 8  // files per subdir
	)
	tree := namespace.NewTree()
	data, err := tree.MkdirAll("/data")
	if err != nil {
		b.Fatal(err)
	}
	var leaves []*namespace.Inode
	for d := 0; d < wide; d++ {
		dir, err := tree.Mkdir(data, fmt.Sprintf("d%03d", d))
		if err != nil {
			b.Fatal(err)
		}
		for f := 0; f < files; f++ {
			in, err := tree.Create(dir, fmt.Sprintf("f%04d", f), 1)
			if err != nil {
				b.Fatal(err)
			}
			leaves = append(leaves, in)
		}
		for s := 0; s < subdirs; s++ {
			sub, err := tree.Mkdir(dir, fmt.Sprintf("s%02d", s))
			if err != nil {
				b.Fatal(err)
			}
			for f := 0; f < subFiles; f++ {
				in, err := tree.Create(sub, fmt.Sprintf("f%04d", f), 1)
				if err != nil {
					b.Fatal(err)
				}
				leaves = append(leaves, in)
			}
		}
	}
	v := simtest.New(tree, 2)
	for e := 0; e < 2; e++ {
		for _, in := range leaves {
			v.ServeN(in, 1, int64(e))
		}
		v.EndEpoch()
	}
	s := v.Servers[0]
	lf := LoadFuncs{
		OfKey: func(k namespace.FragKey) float64 { return s.HeatOfKey(k) },
		OfDir: func(d *namespace.Inode) float64 { return s.HeatOfDir(d.Ino) },
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := Enumerate(v, 0, lf, 1, 4096)
		if len(cands) < wide {
			b.Fatalf("candidates = %d, want at least the %d refined dirs", len(cands), wide)
		}
	}
}
