package balancer

import (
	"repro/internal/namespace"
	"repro/internal/obs"
)

// Vanilla approximates the CephFS built-in metadata load balancer and
// deliberately keeps its three inefficiencies the paper identifies:
//
//  1. the trigger compares each MDS's load only against the cluster
//     average with a fixed fudge factor, so it both misses harmful gaps
//     between heavy and light servers and fires on benign imbalance;
//  2. the export amount is the raw load-above-average with no
//     importer-side cap and no account of migration lag, which
//     over-migrates and causes ping-pong;
//  3. candidates are selected by accumulated, decayed popularity
//     ("heat"), which tracks where load HAS been, not where it will
//     be — invalid for scan-type workloads that never revisit files.
type Vanilla struct {
	// MinOffload is the fudge factor: an MDS exports only when its
	// load exceeds avg*(1+MinOffload). CephFS uses ~0.1.
	MinOffload float64
	// CandidateLimit bounds candidate enumeration.
	CandidateLimit int

	bus *obs.Bus
}

// NewVanilla returns the CephFS built-in policy with default knobs.
func NewVanilla() *Vanilla {
	return &Vanilla{MinOffload: 0.1, CandidateLimit: 128}
}

// Name implements Balancer.
func (b *Vanilla) Name() string { return "CephFS-Vanilla" }

// SetBus implements obs.BusCarrier.
func (b *Vanilla) SetBus(bus *obs.Bus) { b.bus = bus }

// Rebalance implements Balancer.
func (b *Vanilla) Rebalance(v View) {
	n := v.NumMDS()
	v.Ledger().EpochVanilla(n)

	loads := SmoothedLoads(v, 2)
	// Plan over importable ranks only: down ranks serve nothing, and a
	// draining rank is being emptied by the drain pump — it neither
	// exports through the balancer nor accepts imports.
	live := ImportableRanks(v)
	if len(live) < 2 {
		return
	}
	avg := 0.0
	for _, id := range live {
		avg += loads[id]
	}
	avg /= float64(len(live))
	exporting := 0
	for _, id := range live {
		if loads[id] > avg*(1+b.MinOffload) {
			exporting++
		}
	}
	if b.bus.Enabled(obs.EvTrigger) {
		b.bus.Emit(obs.Event{Tick: v.Tick(), Type: obs.EvTrigger, Fields: obs.F{
			"balancer": b.Name(), "avg": avg, "live": len(live),
			"fired": exporting > 0 && avg > 0,
		}})
	}
	if avg <= 0 {
		return
	}

	// Importers: every live rank below average, in ascending-load
	// order. Down ranks must never import.
	type imp struct {
		id   namespace.MDSID
		room float64
	}
	var importers []imp
	for _, id := range live {
		if l := loads[id]; l < avg {
			importers = append(importers, imp{id, avg - l})
		}
	}
	// Ascending by load means descending by room; CephFS fills the
	// emptiest peer first.
	for i := 0; i < len(importers); i++ {
		for j := i + 1; j < len(importers); j++ {
			if importers[j].room > importers[i].room {
				importers[i], importers[j] = importers[j], importers[i]
			}
		}
	}

	for _, ex := range live {
		l := loads[ex]
		if l <= avg*(1+b.MinOffload) {
			continue
		}
		// Raw load-above-average, uncapped: over-migration by design.
		fraction := (l - avg) / l
		picked := HeatSelect(v, ex, fraction, b.CandidateLimit)
		// Spread the picks across importers in room order.
		for k, c := range picked {
			if len(importers) == 0 {
				break
			}
			to := importers[k%len(importers)].id
			if to == ex {
				continue
			}
			SubmitCandidate(v, c, ex, to)
		}
	}
}
