// Package elastic is the cluster autoscaler policy: it observes the
// per-epoch utilization and imbalance of the MDS cluster and decides
// when to add ranks (the whole cluster is saturating) or retire one
// (the cluster idles). The controller is pure decision logic — it
// never touches cluster state itself; the cluster applies ScaleUp
// decisions via AddMDS and ScaleDown decisions via the graceful drain
// path (rank -> Draining -> bulk export -> Decommissioned).
//
// The policy is deliberately conservative, in the spirit of the
// paper's benign-imbalance tolerance: hysteresis between the up and
// down thresholds, a cooldown between consecutive decisions, a warmup
// before the first one, and never more than one drain in flight. All
// decisions are deterministic functions of the observed snapshots, so
// an elastic run stays byte-identical across same-seed replays.
package elastic

import "fmt"

// Action is what the controller wants the cluster to do this epoch.
type Action int

// Controller actions.
const (
	// ScaleNone: utilization is inside the [down, up) band (or a
	// guard — warmup, cooldown, in-flight drain, rank bounds — vetoed
	// the move).
	ScaleNone Action = iota
	// ScaleUp: add Delta ranks now.
	ScaleUp
	// ScaleDown: start a graceful drain of Delta ranks.
	ScaleDown
)

// String renders the action for events and test failures.
func (a Action) String() string {
	switch a {
	case ScaleUp:
		return "scale_up"
	case ScaleDown:
		return "scale_down"
	default:
		return "none"
	}
}

// Policy parameterizes the controller.
type Policy struct {
	// MinRanks is the floor the cluster never drains below.
	MinRanks int
	// MaxRanks is the ceiling the cluster never grows above.
	MaxRanks int
	// ScaleUpUtil triggers growth when utilization reaches it.
	ScaleUpUtil float64
	// ScaleDownUtil triggers a drain when utilization falls below it.
	// Keep it well under ScaleUpUtil: the gap is the hysteresis band
	// that stops the rank count from oscillating around one threshold.
	ScaleDownUtil float64
	// CooldownEpochs is the minimum number of epochs between two
	// consecutive scale decisions (migrations from the last move must
	// land before the signal is trusted again).
	CooldownEpochs int64
	// WarmupEpochs suppresses decisions at the start of the run, while
	// load histories are still filling.
	WarmupEpochs int64
	// StepUp is how many ranks one ScaleUp adds (clamped to MaxRanks).
	StepUp int
	// StepDown is how many ranks one ScaleDown drains (clamped to
	// MinRanks).
	StepDown int
}

// DefaultPolicy returns the policy used by the elastic experiment and
// the -elastic CLI default: 4..8 ranks, grow at 75% utilization, drain
// below 35%, two-epoch cooldown and warmup, +2/-1 steps.
func DefaultPolicy() Policy {
	return Policy{
		MinRanks:       4,
		MaxRanks:       8,
		ScaleUpUtil:    0.75,
		ScaleDownUtil:  0.35,
		CooldownEpochs: 2,
		WarmupEpochs:   2,
		StepUp:         2,
		StepDown:       1,
	}
}

// Validate rejects self-contradictory policies.
func (p Policy) Validate() error {
	if p.MinRanks < 1 {
		return fmt.Errorf("elastic: MinRanks %d < 1", p.MinRanks)
	}
	if p.MaxRanks < p.MinRanks {
		return fmt.Errorf("elastic: MaxRanks %d < MinRanks %d", p.MaxRanks, p.MinRanks)
	}
	if p.ScaleUpUtil <= 0 || p.ScaleUpUtil > 1.5 {
		return fmt.Errorf("elastic: ScaleUpUtil %g outside (0, 1.5]", p.ScaleUpUtil)
	}
	if p.ScaleDownUtil < 0 || p.ScaleDownUtil >= p.ScaleUpUtil {
		return fmt.Errorf("elastic: ScaleDownUtil %g outside [0, ScaleUpUtil %g)",
			p.ScaleDownUtil, p.ScaleUpUtil)
	}
	if p.StepUp < 1 || p.StepDown < 1 {
		return fmt.Errorf("elastic: steps must be >= 1 (up %d, down %d)", p.StepUp, p.StepDown)
	}
	return nil
}

// Snapshot is one epoch's observation of the cluster, built by
// Cluster.endEpoch.
type Snapshot struct {
	// Epoch is the index of the epoch that just closed.
	Epoch int64
	// ActiveRanks counts ranks serving and accepting imports.
	ActiveRanks int
	// DrainingRanks counts ranks still serving but being emptied.
	DrainingRanks int
	// Load is the aggregate ops/sec over every serving rank, draining
	// ones included: their load lands on the survivors once the drain
	// completes, so it belongs in the demand estimate.
	Load float64
	// Capacity is one rank's ops/sec ceiling (the paper's C).
	Capacity float64
	// IF is the epoch's imbalance factor, recorded on decisions for
	// the trace (the utilization signal alone drives the policy).
	IF float64
	// MaxTenantDebt is the worst per-tenant SLO debt of the closed
	// epoch — the fraction of a tenant's within-quota demand the rank
	// pools could not serve — already gated by the tenancy policy's
	// debt threshold (0 when tenancy is off, no tenant crossed the
	// threshold, or the threshold is disabled). Nonzero means some
	// tenant is starved despite being inside its quota, which is a
	// capacity problem, so it triggers scale-up like saturation does.
	MaxTenantDebt float64
}

// Util returns the demand estimate the thresholds compare against:
// aggregate load over the capacity of the ranks that will remain once
// in-flight drains finish. Draining capacity is excluded from the
// denominator — it is already leaving.
func (s Snapshot) Util() float64 {
	if s.ActiveRanks <= 0 || s.Capacity <= 0 {
		return 0
	}
	return s.Load / (float64(s.ActiveRanks) * s.Capacity)
}

// Decision is the controller's verdict for one epoch.
type Decision struct {
	Action Action
	// Delta is how many ranks to add or drain (0 for ScaleNone).
	Delta int
	// Reason is a short stable token for traces and tests:
	// "saturated", "idle", or for ScaleNone the guard that held
	// ("warmup", "cooldown", "draining", "steady", "at_max", "at_min").
	Reason string
	// Util is the utilization the decision was made on.
	Util float64
}

// Controller applies a Policy to a stream of per-epoch snapshots.
type Controller struct {
	policy Policy

	observed       int64 // snapshots seen (warmup basis)
	lastScaleEpoch int64 // epoch of the most recent non-None decision
	scaled         bool  // whether any decision has fired yet

	scaleUps   int64
	scaleDowns int64
}

// NewController builds a controller; the policy must validate.
func NewController(p Policy) (*Controller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Controller{policy: p}, nil
}

// MustController is NewController for callers with static policies.
func MustController(p Policy) *Controller {
	c, err := NewController(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Policy returns the controller's policy.
func (c *Controller) Policy() Policy { return c.policy }

// ScaleUps returns how many ScaleUp decisions have fired.
func (c *Controller) ScaleUps() int64 { return c.scaleUps }

// ScaleDowns returns how many ScaleDown decisions have fired.
func (c *Controller) ScaleDowns() int64 { return c.scaleDowns }

// Observe consumes one epoch snapshot and returns the decision. The
// guards run in a fixed order (warmup, in-flight drain, cooldown,
// thresholds, rank bounds) so the reason token is deterministic.
func (c *Controller) Observe(s Snapshot) Decision {
	c.observed++
	util := s.Util()
	none := func(reason string) Decision {
		return Decision{Action: ScaleNone, Reason: reason, Util: util}
	}
	if c.observed <= c.policy.WarmupEpochs {
		return none("warmup")
	}
	if s.DrainingRanks > 0 {
		// One drain at a time: the signal is unreadable while capacity
		// is mid-flight, and overlapping drains would race for the
		// same survivors.
		return none("draining")
	}
	if c.scaled && s.Epoch-c.lastScaleEpoch <= c.policy.CooldownEpochs {
		return none("cooldown")
	}
	switch {
	case util >= c.policy.ScaleUpUtil || s.MaxTenantDebt > 0:
		delta := c.policy.StepUp
		if s.ActiveRanks+delta > c.policy.MaxRanks {
			delta = c.policy.MaxRanks - s.ActiveRanks
		}
		if delta <= 0 {
			return none("at_max")
		}
		c.noteScale(s.Epoch)
		c.scaleUps++
		reason := "saturated"
		if util < c.policy.ScaleUpUtil {
			// Only the tenant-debt signal fired: a tenant inside its
			// quota is starved for capacity even though aggregate
			// utilization looks fine (its demand is concentrated where
			// the pools run dry).
			reason = "tenant_debt"
		}
		return Decision{Action: ScaleUp, Delta: delta, Reason: reason, Util: util}
	case util < c.policy.ScaleDownUtil:
		delta := c.policy.StepDown
		if s.ActiveRanks-delta < c.policy.MinRanks {
			delta = s.ActiveRanks - c.policy.MinRanks
		}
		if delta <= 0 {
			return none("at_min")
		}
		c.noteScale(s.Epoch)
		c.scaleDowns++
		return Decision{Action: ScaleDown, Delta: delta, Reason: "idle", Util: util}
	}
	return none("steady")
}

func (c *Controller) noteScale(epoch int64) {
	c.scaled = true
	c.lastScaleEpoch = epoch
}
