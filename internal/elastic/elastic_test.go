package elastic

import "testing"

func testPolicy() Policy {
	return Policy{
		MinRanks:       4,
		MaxRanks:       8,
		ScaleUpUtil:    0.75,
		ScaleDownUtil:  0.35,
		CooldownEpochs: 2,
		WarmupEpochs:   1,
		StepUp:         2,
		StepDown:       1,
	}
}

// snap builds a snapshot with util = load/(active*1000).
func snap(epoch int64, active, draining int, util float64) Snapshot {
	return Snapshot{
		Epoch:         epoch,
		ActiveRanks:   active,
		DrainingRanks: draining,
		Load:          util * float64(active) * 1000,
		Capacity:      1000,
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{MinRanks: 0, MaxRanks: 4, ScaleUpUtil: 0.8, ScaleDownUtil: 0.2, StepUp: 1, StepDown: 1},
		{MinRanks: 4, MaxRanks: 2, ScaleUpUtil: 0.8, ScaleDownUtil: 0.2, StepUp: 1, StepDown: 1},
		{MinRanks: 1, MaxRanks: 4, ScaleUpUtil: 0, ScaleDownUtil: 0, StepUp: 1, StepDown: 1},
		{MinRanks: 1, MaxRanks: 4, ScaleUpUtil: 0.5, ScaleDownUtil: 0.5, StepUp: 1, StepDown: 1},
		{MinRanks: 1, MaxRanks: 4, ScaleUpUtil: 0.8, ScaleDownUtil: 0.2, StepUp: 0, StepDown: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("policy %d: expected validation error, got nil", i)
		}
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
}

func TestWarmupSuppressesDecisions(t *testing.T) {
	p := testPolicy()
	p.WarmupEpochs = 3
	c := MustController(p)
	for e := int64(0); e < 3; e++ {
		d := c.Observe(snap(e, 4, 0, 0.99))
		if d.Action != ScaleNone || d.Reason != "warmup" {
			t.Fatalf("epoch %d: want warmup None, got %v/%s", e, d.Action, d.Reason)
		}
	}
	if d := c.Observe(snap(3, 4, 0, 0.99)); d.Action != ScaleUp {
		t.Fatalf("after warmup: want ScaleUp, got %v/%s", d.Action, d.Reason)
	}
}

func TestScaleUpClampsToMax(t *testing.T) {
	c := MustController(testPolicy())
	c.Observe(snap(0, 7, 0, 0.5)) // warmup
	d := c.Observe(snap(1, 7, 0, 0.9))
	if d.Action != ScaleUp || d.Delta != 1 {
		t.Fatalf("want ScaleUp delta 1 (clamped to max 8), got %v delta %d", d.Action, d.Delta)
	}
	// At the ceiling the controller reports at_max, not a zero-delta up.
	c2 := MustController(testPolicy())
	c2.Observe(snap(0, 8, 0, 0.5))
	if d := c2.Observe(snap(1, 8, 0, 0.9)); d.Action != ScaleNone || d.Reason != "at_max" {
		t.Fatalf("at ceiling: want None/at_max, got %v/%s", d.Action, d.Reason)
	}
}

func TestScaleDownClampsToMin(t *testing.T) {
	c := MustController(testPolicy())
	c.Observe(snap(0, 5, 0, 0.5))
	d := c.Observe(snap(1, 5, 0, 0.1))
	if d.Action != ScaleDown || d.Delta != 1 {
		t.Fatalf("want ScaleDown delta 1, got %v delta %d", d.Action, d.Delta)
	}
	c2 := MustController(testPolicy())
	c2.Observe(snap(0, 4, 0, 0.5))
	if d := c2.Observe(snap(1, 4, 0, 0.1)); d.Action != ScaleNone || d.Reason != "at_min" {
		t.Fatalf("at floor: want None/at_min, got %v/%s", d.Action, d.Reason)
	}
}

func TestCooldownBetweenDecisions(t *testing.T) {
	c := MustController(testPolicy())
	c.Observe(snap(0, 4, 0, 0.5))
	if d := c.Observe(snap(1, 4, 0, 0.9)); d.Action != ScaleUp {
		t.Fatalf("want ScaleUp, got %v/%s", d.Action, d.Reason)
	}
	// Cooldown 2: epochs 2 and 3 are inside the window.
	for e := int64(2); e <= 3; e++ {
		if d := c.Observe(snap(e, 6, 0, 0.9)); d.Action != ScaleNone || d.Reason != "cooldown" {
			t.Fatalf("epoch %d: want cooldown, got %v/%s", e, d.Action, d.Reason)
		}
	}
	if d := c.Observe(snap(4, 6, 0, 0.9)); d.Action != ScaleUp {
		t.Fatalf("after cooldown: want ScaleUp, got %v/%s", d.Action, d.Reason)
	}
}

func TestHysteresisBandHolds(t *testing.T) {
	c := MustController(testPolicy())
	c.Observe(snap(0, 6, 0, 0.5))
	// Anything in [0.35, 0.75) is steady: no oscillation.
	for e := int64(1); e < 5; e++ {
		u := 0.35 + 0.08*float64(e)
		if d := c.Observe(snap(e, 6, 0, u)); d.Action != ScaleNone || d.Reason != "steady" {
			t.Fatalf("epoch %d util %.2f: want steady, got %v/%s", e, u, d.Action, d.Reason)
		}
	}
}

func TestDrainInFlightBlocksDecisions(t *testing.T) {
	c := MustController(testPolicy())
	c.Observe(snap(0, 6, 0, 0.5))
	if d := c.Observe(snap(1, 6, 1, 0.95)); d.Action != ScaleNone || d.Reason != "draining" {
		t.Fatalf("with a drain in flight: want None/draining, got %v/%s", d.Action, d.Reason)
	}
}

func TestCounters(t *testing.T) {
	c := MustController(testPolicy())
	c.Observe(snap(0, 4, 0, 0.5))
	c.Observe(snap(1, 4, 0, 0.9))  // up
	c.Observe(snap(4, 6, 0, 0.1))  // down (past cooldown)
	c.Observe(snap(7, 5, 0, 0.05)) // down
	if c.ScaleUps() != 1 || c.ScaleDowns() != 2 {
		t.Fatalf("counters: ups %d downs %d, want 1/2", c.ScaleUps(), c.ScaleDowns())
	}
}

func TestUtilCountsDrainingLoadNotCapacity(t *testing.T) {
	// 4 active + 1 draining, each pushing 500 ops/s at capacity 1000:
	// demand 2500 over remaining capacity 4000 = 0.625.
	s := Snapshot{ActiveRanks: 4, DrainingRanks: 1, Load: 2500, Capacity: 1000}
	if got := s.Util(); got != 0.625 {
		t.Fatalf("util = %g, want 0.625", got)
	}
	if (Snapshot{}).Util() != 0 {
		t.Fatal("empty snapshot must have zero util")
	}
}
