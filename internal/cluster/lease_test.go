package cluster

import (
	"bytes"
	"testing"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/workload"
)

// leaseManager builds a lease-enabled replication manager for tests.
func leaseManager(r int, leaseTicks int64, readFrac float64) *replica.Manager {
	pol := replica.DefaultPolicy()
	pol.R = r
	pol.LeaseTicks = leaseTicks
	pol.ReplicateReadFrac = readFrac
	return replica.MustManager(pol)
}

// stormWorkload is a shared-directory read storm sized for integration
// tests; writeEvery > 0 mixes lease-invalidating creates into the reads.
func stormWorkload(writeEvery int) workload.Generator {
	return workload.NewReadStorm(workload.ReadStormConfig{
		Files:        300,
		OpsPerClient: 6000,
		WriteEvery:   writeEvery,
	})
}

// TestDrainRehomesStandby is the rank-eligibility regression for the
// replica placement fix: draining a rank that hosts standby copies must
// drop them immediately and re-home them onto ranks that are staying
// (Active — never the draining rank itself, which the old Up()-based
// eligibility gate considered a valid host).
func TestDrainRehomesStandby(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:         5,
		Workload:    failoverZipf(),
		Replication: replica.MustManager(replica.DefaultPolicy()),
		Audit:       aud,
	})
	c.Run(60)
	victim := -1
	for i := 0; i < 200 && victim < 0; i++ {
		cand := -1
		c.Replicas().ForEachGroup(func(g *replica.Group) {
			for _, sb := range g.Standbys {
				if cand < 0 && !sb.Syncing {
					cand = int(sb.Rank)
				}
			}
		})
		if cand >= 0 && c.StartDrain(cand) {
			victim = cand
			break
		}
		c.Step()
	}
	if victim < 0 {
		t.Fatal("no drainable standby-hosting rank found")
	}
	// The drain drops the rank's standbys synchronously; give the
	// re-replicator a few epochs to restore R on the survivors.
	c.Run(40)
	groups := 0
	c.Replicas().ForEachGroup(func(g *replica.Group) {
		groups++
		for _, sb := range g.Standbys {
			if int(sb.Rank) == victim {
				t.Fatalf("group %v still has a standby on the draining rank %d", g.Key, victim)
			}
			s := c.Servers()[sb.Rank]
			if !s.Up() || s.Draining() {
				t.Fatalf("group %v standby re-homed onto ineligible rank %d", g.Key, sb.Rank)
			}
		}
	})
	if groups == 0 {
		t.Fatal("no replication groups tracked")
	}
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestLeaseReadStormAudited is the tentpole integration check: a
// shared-directory read storm on a lease-enabled cluster gets real
// lease serving — grants happen, non-authoritative holders serve reads
// — with every lease invariant audited on every tick.
func TestLeaseReadStormAudited(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:         5,
		Clients:     16,
		Workload:    stormWorkload(0),
		Replication: leaseManager(3, 30, 0.6),
		Audit:       aud,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	if c.Replicas().LeasesGranted() == 0 {
		t.Fatal("read storm granted no leases")
	}
	if c.LeaseServes() == 0 {
		t.Fatal("no ops served by lease holders")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestLeaseWriteInvalidation mixes creates into the storm: every write
// to a leased subtree must revoke its leases at the serve barrier, and
// the per-tick audit proves no write-invalidated subtree ends a tick
// with live leases. Leases still re-form between writes, so holder
// serving stays active.
func TestLeaseWriteInvalidation(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:         5,
		Clients:     16,
		Workload:    stormWorkload(25),
		Replication: leaseManager(3, 30, 0.6),
		Audit:       aud,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	if c.Replicas().LeasesRevoked() == 0 {
		t.Fatal("writes to a leased subtree revoked nothing")
	}
	if c.LeaseServes() == 0 {
		t.Fatal("no ops served by lease holders between invalidations")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// runLeaseIdle runs a write-only workload (reads never dominate, so no
// subtree ever qualifies for leases) and returns the run's complete
// external output plus the cluster for counter checks.
func runLeaseIdle(t *testing.T, leaseTicks int64) ([]byte, *Cluster) {
	t.Helper()
	var tr bytes.Buffer
	sink := obs.NewJSONL(&tr)
	pol := replica.DefaultPolicy()
	pol.LeaseTicks = leaseTicks
	if leaseTicks > 0 {
		pol.ReplicateReadFrac = 0.9
	}
	c := newTestCluster(t, Config{
		MDS:         4,
		Clients:     12,
		Seed:        11,
		Workload:    smallMD(),
		Replication: replica.MustManager(pol),
		Bus:         obs.NewBus(sink),
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	var out bytes.Buffer
	if err := c.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := c.Metrics().WriteEpochCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out.Write(tr.Bytes())
	return out.Bytes(), c
}

// TestLeaseIdleByteIdentical is the lease-disabled differential: with
// the lease machinery configured on but no subtree ever qualifying
// (write-only workload), the run is byte-identical — CSVs and event
// trace — to the same run with leases off. Enabling the feature costs
// nothing and perturbs nothing until a subtree actually qualifies.
func TestLeaseIdleByteIdentical(t *testing.T) {
	off, _ := runLeaseIdle(t, 0)
	on, c := runLeaseIdle(t, 30)
	if c.Replicas().LeasesGranted() != 0 {
		t.Fatalf("write-only workload granted %d leases", c.Replicas().LeasesGranted())
	}
	diffEngineOutputs(t, "lease-idle", off, on)
}
