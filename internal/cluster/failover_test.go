package cluster

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/namespace"
	"repro/internal/workload"
)

// failoverZipf is a workload long enough that clients are still running
// when mid-run crashes and recovery windows play out (the default
// smallZipf finishes around tick 40).
func failoverZipf() workload.Generator {
	return workload.NewZipf(workload.ZipfConfig{FilesPerClient: 200, OpsPerClient: 30000})
}

// checkAuthLive asserts the failover safety property: no subtree
// entry's authority points at a down rank once every crashed rank's
// recovery window has elapsed.
func checkAuthLive(t *testing.T, c *Cluster) {
	t.Helper()
	for _, e := range c.Partition().Entries() {
		if int(e.Auth) >= len(c.Servers()) {
			t.Fatalf("tick %d: entry %v auth %d beyond cluster size", c.Tick(), e.Key, e.Auth)
		}
		if !c.Servers()[e.Auth].Up() {
			t.Fatalf("tick %d: entry %v auth %d is a down rank", c.Tick(), e.Key, e.Auth)
		}
	}
}

// TestFailoverAuthNeverDown is the property test from the issue: after
// the recovery window, no subtree entry's Auth ever points at a down
// rank — stepping tick-by-tick through crash, takeover, rejoin, and a
// second crash of a different rank.
func TestFailoverAuthNeverDown(t *testing.T) {
	const window = 15
	c := newTestCluster(t, Config{RecoveryTicks: window, Workload: failoverZipf()})
	crashes := []struct {
		at   int64
		rank int
	}{{40, 0}, {200, 1}}
	rejoinAt := map[int64]int{140: 0, 300: 1}

	// safeAfter marks the tick from which the invariant must hold again
	// (the latest crash tick + window, +1 because the takeover event
	// fires during the step of its due tick).
	safeAfter := int64(0)
	ci := 0
	for tick := int64(0); tick < 600 && !c.Done(); tick++ {
		if ci < len(crashes) && tick == crashes[ci].at {
			if !c.CrashMDS(crashes[ci].rank) {
				t.Fatalf("crash of rank %d refused", crashes[ci].rank)
			}
			safeAfter = tick + window + 1
			ci++
		}
		if r, ok := rejoinAt[tick]; ok {
			if !c.RecoverMDS(r) {
				t.Fatalf("recover of rank %d refused", r)
			}
		}
		c.Step()
		if c.Tick() > safeAfter {
			checkAuthLive(t, c)
		}
	}
	c.RunUntilDone(20000)
	checkAuthLive(t, c)
	if !c.Done() {
		t.Fatal("clients must finish: zero lost ops")
	}
	if c.Metrics().StalledDownTotal() == 0 {
		t.Fatal("crashing an authoritative rank must stall some ops")
	}
}

// TestFailoverNoRejoinZeroLostOps crashes a rank permanently: orphans
// must be taken over by survivors and every client op must still
// complete.
func TestFailoverNoRejoinZeroLostOps(t *testing.T) {
	c := newTestCluster(t, Config{RecoveryTicks: 10, Workload: failoverZipf()})
	c.Run(50)
	rank := c.CrashHottest()
	if rank < 0 {
		t.Fatal("hottest-rank crash refused")
	}
	end := c.RunUntilDone(20000)
	if !c.Done() {
		t.Fatalf("clients unfinished at tick %d with rank %d down", end, rank)
	}
	checkAuthLive(t, c)
	if !reflect.DeepEqual(c.DownRanks(), []int{rank}) {
		t.Fatalf("down ranks = %v, want [%d]", c.DownRanks(), rank)
	}
	if len(c.Partition().EntriesOf(namespace.MDSID(rank))) != 0 {
		t.Fatal("dead rank must govern nothing after takeover")
	}
	evs := c.Metrics().RecoveryEvents()
	for _, ev := range evs {
		if ev.TicksToReassign() != 10 {
			t.Fatalf("reassign after %d ticks, want the 10-tick window", ev.TicksToReassign())
		}
	}
}

// TestFailoverRejoinBeforeWindowCancelsTakeover recovers the rank
// inside the recovery window: its subtrees must stay put.
func TestFailoverRejoinBeforeWindowCancelsTakeover(t *testing.T) {
	c := newTestCluster(t, Config{RecoveryTicks: 50, Workload: failoverZipf()})
	c.Run(60)
	rank := c.CrashHottest()
	if rank < 0 {
		t.Fatal("no crash")
	}
	owned := len(c.Partition().EntriesOf(namespace.MDSID(rank)))
	c.Run(10) // well inside the 50-tick window
	if !c.RecoverMDS(rank) {
		t.Fatal("recover refused")
	}
	c.Run(50) // past where the takeover would have fired
	if got := len(c.Partition().EntriesOf(namespace.MDSID(rank))); got != owned {
		t.Fatalf("rank %d governs %d entries after early rejoin, want %d (takeover cancelled)",
			rank, got, owned)
	}
	if len(c.Metrics().RecoveryEvents()) != 0 {
		t.Fatal("no takeover must be recorded for a cancelled window")
	}
	c.RunUntilDone(20000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
}

// TestFailoverScheduledFaultsDeterministic runs the same seeded
// schedule twice and asserts identical fault metrics — the core claim
// of the fault package.
func TestFailoverScheduledFaultsDeterministic(t *testing.T) {
	run := func() (*Cluster, int64) {
		var s fault.Schedule
		s.CrashHottest(40).Recover(150, 0).Crash(250, 2).Recover(400, 2)
		c := newTestCluster(t, Config{RecoveryTicks: 12, Faults: &s, Workload: failoverZipf()})
		end := c.RunUntilDone(20000)
		return c, end
	}
	a, endA := run()
	b, endB := run()
	if !a.Done() || !b.Done() {
		t.Fatal("clients must finish under scheduled faults")
	}
	if endA != endB {
		t.Fatalf("end ticks differ: %d vs %d", endA, endB)
	}
	ra, rb := a.Metrics(), b.Metrics()
	if ra.StalledDownTotal() != rb.StalledDownTotal() ||
		ra.AbortedTotal() != rb.AbortedTotal() ||
		ra.RecoveryTicksTotal() != rb.RecoveryTicksTotal() {
		t.Fatalf("fault metrics differ: (%v,%v,%v) vs (%v,%v,%v)",
			ra.StalledDownTotal(), ra.AbortedTotal(), ra.RecoveryTicksTotal(),
			rb.StalledDownTotal(), rb.AbortedTotal(), rb.RecoveryTicksTotal())
	}
	if !reflect.DeepEqual(a.DownRanks(), b.DownRanks()) {
		t.Fatalf("down ranks differ: %v vs %v", a.DownRanks(), b.DownRanks())
	}
	checkAuthLive(t, a)
}

// TestCrashRefusals covers the guard rails: crashing the last survivor,
// an out-of-range rank, an already-down rank, or recovering an up rank
// are all refused.
func TestCrashRefusals(t *testing.T) {
	c := newTestCluster(t, Config{MDS: 2, RecoveryTicks: 5})
	if c.CrashMDS(-1) || c.CrashMDS(2) {
		t.Fatal("out-of-range crash must be refused")
	}
	if !c.CrashMDS(1) {
		t.Fatal("valid crash refused")
	}
	if c.CrashMDS(1) {
		t.Fatal("crashing a down rank must be refused")
	}
	if c.CrashMDS(0) {
		t.Fatal("crashing the last survivor must be refused")
	}
	if c.CrashHottest() != -1 {
		t.Fatal("hottest-crash with one survivor must be refused")
	}
	if c.RecoverMDS(0) {
		t.Fatal("recovering an up rank must be a no-op")
	}
	if !c.RecoverMDS(1) {
		t.Fatal("valid recover refused")
	}
	c.RunUntilDone(20000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
}

// TestClientBackoffOnDownRank checks clients apply capped exponential
// backoff only while their target is down, and that stalled ops are
// accounted.
func TestClientBackoffOnDownRank(t *testing.T) {
	c := newTestCluster(t, Config{MDS: 3, RecoveryTicks: 30, Workload: failoverZipf()})
	c.Run(40)
	rank := c.CrashHottest()
	if rank < 0 {
		t.Fatal("no crash")
	}
	c.Run(20) // inside the window: ops to orphaned subtrees stall
	rec := c.Metrics()
	if rec.StalledDownTotal() == 0 {
		t.Fatal("expected stalls on the downed hottest rank")
	}
	var retries int64
	maxBackoff := int64(0)
	for _, cl := range c.Clients() {
		retries += cl.Retries()
		if b := cl.Backoff(); b > maxBackoff {
			maxBackoff = b
		}
	}
	if retries == 0 {
		t.Fatal("expected client retries during the outage")
	}
	if maxBackoff > 16 {
		t.Fatalf("backoff %d exceeds the 16-tick cap", maxBackoff)
	}
	c.RunUntilDone(20000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
}
