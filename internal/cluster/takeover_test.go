package cluster

import (
	"fmt"
	"testing"

	"repro/internal/namespace"
	"repro/internal/workload"
)

// TestTakeoverUsesCrashTimeLoad is the regression test for the failover
// load-share bug: a down rank records only zero-load epochs, so reading
// its CurrentLoad() at takeover time (RecoveryTicks later, past at
// least one epoch close) yields 0 and the documented load-weighted
// spread collapses to uniform shares of 1 — letting one idle survivor
// swallow every orphaned entry. The takeover must instead use the load
// stamped at crash time.
//
// Scenario: rank 2 carries 12 pinned client dirs (~1800 ops/s), rank 0
// carries the remaining 4 clients via the root entry (~600 ops/s), and
// rank 1 is idle. Rank 2 crashes with a recovery window longer than an
// epoch. With the crash-time load (1800/12 = 150 per entry) the idle
// rank 1 fills up to rank 0's level after a few takeovers and the rest
// spill to rank 0. With the stale zero load (share = 1) rank 1 absorbs
// all 12 entries and rank 0 gets none.
func TestTakeoverUsesCrashTimeLoad(t *testing.T) {
	const (
		pinned   = 12
		clients  = 16
		window   = 25 // > 2 epoch closes while down
		crashAt  = 30
		doomed   = 2
		survivor = 0 // the loaded survivor that must still receive entries
		idle     = 1
	)
	c := newTestCluster(t, Config{
		MDS:           3,
		Clients:       clients,
		RecoveryTicks: window,
		Balancer:      nullBalancer{}, // no migrations: only the takeover moves entries
		Workload: workload.NewZipf(workload.ZipfConfig{
			FilesPerClient: 200,
			OpsPerClient:   30000,
		}),
	})
	var pinnedDirs []namespace.Ino
	for i := 0; i < pinned; i++ {
		path := fmt.Sprintf("/zipf/client%03d", i)
		if err := c.PinPath(path, doomed); err != nil {
			t.Fatal(err)
		}
		in, err := c.Tree().Lookup(path)
		if err != nil {
			t.Fatal(err)
		}
		pinnedDirs = append(pinnedDirs, in.Ino)
	}

	c.Run(crashAt)
	if load := c.Servers()[doomed].CurrentLoad(); load < 1000 {
		t.Fatalf("scenario setup broken: doomed rank load %.0f, want well above rank %d's", load, survivor)
	}
	if !c.CrashMDS(doomed) {
		t.Fatalf("crash of rank %d refused", doomed)
	}
	// Run past the recovery window; the dead rank records zero-load
	// epochs the whole time, which is exactly what the takeover must
	// not read as its load estimate.
	c.Run(window + 2)

	if got := len(c.Partition().EntriesOf(doomed)); got != 0 {
		t.Fatalf("%d entries still owned by the dead rank after the window", got)
	}
	perRank := make(map[namespace.MDSID]int)
	for _, ino := range pinnedDirs {
		e, ok := c.Partition().EntryAt(namespace.FragKey{Dir: ino, Frag: namespace.WholeFrag})
		if !ok {
			t.Fatalf("pinned entry for ino %d vanished", ino)
		}
		perRank[e.Auth]++
	}
	if perRank[survivor] == 0 {
		t.Fatalf("loaded survivor %d received no orphaned entries (idle rank took %d of %d): "+
			"takeover used the down rank's zero post-crash load instead of its crash-time load",
			survivor, perRank[idle], pinned)
	}
	if perRank[idle] == 0 {
		t.Fatalf("idle rank %d received no orphaned entries; spread is broken the other way", idle)
	}
	if perRank[idle] <= perRank[survivor] {
		t.Errorf("idle rank should absorb more than the loaded survivor: idle %d, survivor %d",
			perRank[idle], perRank[survivor])
	}
	if got := len(c.Metrics().RecoveryEvents()); got != 1 {
		t.Fatalf("want exactly 1 recovery event, got %d", got)
	}
}

// TestRecoverAfterTakeoverDeadlineRejoinsEmpty is the late-rejoin
// regression: a rank that comes back only after the takeover deadline
// has fired must rejoin the cluster empty-handed. Its former subtrees
// stay exactly where the takeover put them — no double-ownership, no
// second reassignment — and the rejoiner serves again as a fresh rank.
func TestRecoverAfterTakeoverDeadlineRejoinsEmpty(t *testing.T) {
	const (
		pinned  = 6
		window  = 10
		crashAt = 25
		doomed  = 2
	)
	c := newTestCluster(t, Config{
		MDS:           3,
		Clients:       12,
		RecoveryTicks: window,
		Balancer:      nullBalancer{}, // only the takeover moves entries
		Workload: workload.NewZipf(workload.ZipfConfig{
			FilesPerClient: 200,
			OpsPerClient:   30000,
		}),
	})
	var keys []namespace.FragKey
	for i := 0; i < pinned; i++ {
		path := fmt.Sprintf("/zipf/client%03d", i)
		if err := c.PinPath(path, doomed); err != nil {
			t.Fatal(err)
		}
		in, err := c.Tree().Lookup(path)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, namespace.FragKey{Dir: in.Ino, Frag: namespace.WholeFrag})
	}

	c.Run(crashAt)
	if !c.CrashMDS(doomed) {
		t.Fatal("crash refused")
	}
	c.Run(window + 2) // the takeover deadline fires: orphans move to survivors
	if got := len(c.Partition().EntriesOf(doomed)); got != 0 {
		t.Fatalf("takeover incomplete: %d entries still on the dead rank", got)
	}

	if !c.RecoverMDS(doomed) {
		t.Fatal("late rejoin refused")
	}
	if got := len(c.Partition().EntriesOf(doomed)); got != 0 {
		t.Fatalf("late rejoiner came back owning %d entries, want 0", got)
	}
	owners := make(map[namespace.FragKey]namespace.MDSID, pinned)
	for _, key := range keys {
		e, ok := c.Partition().EntryAt(key)
		if !ok {
			t.Fatalf("pinned entry %v vanished across crash+rejoin", key)
		}
		if int(e.Auth) == doomed {
			t.Fatalf("entry %v back on the rejoined rank: takeover result must stick", key)
		}
		owners[key] = e.Auth
	}
	if got := len(c.Metrics().RecoveryEvents()); got != 1 {
		t.Fatalf("recovery events = %d, want exactly 1 (rejoin must not re-reassign)", got)
	}

	// The taken-over placement is stable: running on moves nothing back.
	c.Run(3 * window)
	for _, key := range keys {
		e, ok := c.Partition().EntryAt(key)
		if !ok || e.Auth != owners[key] {
			t.Fatalf("entry %v moved after the rejoin (%v -> %v)", key, owners[key], e.Auth)
		}
	}

	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	var clientOps, served int64
	for _, cl := range c.Clients() {
		clientOps += cl.OpsDone()
	}
	for _, s := range c.Servers() {
		served += s.OpsTotal()
	}
	if clientOps != served {
		t.Fatalf("client ops %d != served ops %d: the late rejoin lost or duplicated work", clientOps, served)
	}
}
