package cluster

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/workload"
)

// runTraced runs a seeded failover schedule with an optional bus and
// returns the cluster plus its rendered per-tick and per-epoch CSVs —
// the complete externally visible measurement of the run.
func runTraced(t *testing.T, bus *obs.Bus) (*Cluster, []byte) {
	t.Helper()
	var s fault.Schedule
	s.Crash(40, 0).Recover(100, 0).Crash(150, 1).Recover(200, 1)
	c := newTestCluster(t, Config{
		RecoveryTicks: 12,
		Faults:        &s,
		Workload:      failoverZipf(),
		Bus:           bus,
	})
	c.RunUntilDone(20000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	var out bytes.Buffer
	if err := c.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := c.Metrics().WriteEpochCSV(&out); err != nil {
		t.Fatal(err)
	}
	return c, out.Bytes()
}

// TestTracingDoesNotPerturbSimulation is the determinism contract of
// the obs package: the same seeded run with tracing on and off must
// produce byte-identical metrics. Tracing observes; it never touches
// the RNG or tick ordering.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	_, plain := runTraced(t, nil)
	ring := obs.NewRing(1 << 16)
	traced, withBus := runTraced(t, obs.NewBus(ring))
	if !bytes.Equal(plain, withBus) {
		t.Fatal("tracing changed the simulation output")
	}
	if ring.Total() == 0 {
		t.Fatal("traced run emitted nothing")
	}
	if traced.Tick() == 0 {
		t.Fatal("run did not advance")
	}
}

// TestTraceFailoverSequence asserts the event stream tells the failover
// story in order: a crash (aborting in-flight exports), the orphan
// takeover after the recovery window, backoff churn in between, and
// the eventual recovery.
func TestTraceFailoverSequence(t *testing.T) {
	ring := obs.NewRing(1 << 16)
	_, _ = runTraced(t, obs.NewBus(ring))

	crashes := ring.OfType(obs.EvCrash)
	if len(crashes) != 2 {
		t.Fatalf("want 2 crash events, got %d", len(crashes))
	}
	takeovers := ring.OfType(obs.EvTakeover)
	if len(takeovers) == 0 {
		t.Fatal("no orphan takeover traced")
	}
	recovers := ring.OfType(obs.EvRecover)
	if len(recovers) != 2 {
		t.Fatalf("want 2 recover events, got %d", len(recovers))
	}
	// The first takeover fires exactly one recovery window after the
	// first crash and references it.
	first := takeovers[0]
	if first.Tick != crashes[0].Tick+12 {
		t.Fatalf("takeover at tick %d, crash at %d, want a 12-tick window", first.Tick, crashes[0].Tick)
	}
	if first.Fields["crash_tick"].(int64) != crashes[0].Tick {
		t.Fatalf("takeover crash_tick = %v, want %d", first.Fields["crash_tick"], crashes[0].Tick)
	}
	if first.Fields["entries"].(int) <= 0 {
		t.Fatal("takeover must reassign at least one entry")
	}
	// Clients backed off during the outage and every enter has a
	// matching exit by run end (the run completed).
	enters := ring.OfType(obs.EvBackoffEnter)
	if len(enters) == 0 {
		t.Fatal("no client backoff traced across two crashes")
	}
	if enters[0].Tick < crashes[0].Tick {
		t.Fatal("backoff before the first crash")
	}
	// Epoch snapshots carry per-rank liveness: some rank event must
	// show up=false while a rank is down.
	sawDown := false
	for _, ev := range ring.OfType(obs.EvRank) {
		if up, ok := ev.Fields["up"].(bool); ok && !up {
			sawDown = true
			break
		}
	}
	if !sawDown {
		t.Fatal("no rank snapshot recorded a down rank")
	}
}

// TestRecoveryClearsClientBackoff is the cluster-level regression test
// for the backoff bugfix: a client deep in backoff when its rank
// recovers must retry immediately instead of sleeping out the rest of
// its capped exponential wait.
func TestRecoveryClearsClientBackoff(t *testing.T) {
	ring := obs.NewRing(1 << 16)
	// MD-shared pins every client on one hot directory, so crashing the
	// hottest rank drives all of them into deep backoff.
	c := newTestCluster(t, Config{
		MDS:           3,
		RecoveryTicks: 500, // window far beyond the recovery point
		Workload:      workload.NewMDShared(workload.MDSharedConfig{CreatesPerClient: 20000}),
		Bus:           obs.NewBus(ring),
	})
	c.Run(40)
	rank := c.CrashHottest()
	if rank < 0 {
		t.Fatal("no crash")
	}
	c.Run(60) // long outage: backoff reaches the 16-tick cap
	deep := 0
	for _, cl := range c.Clients() {
		if cl.Backoff() >= 8 {
			deep++
		}
	}
	if deep == 0 {
		t.Fatal("expected clients in deep backoff during the outage")
	}
	recoverTick := c.Tick()
	if !c.RecoverMDS(rank) {
		t.Fatal("recover refused")
	}
	for _, cl := range c.Clients() {
		if cl.Backoff() != 0 {
			t.Fatalf("client still backing off after recovery: %d", cl.Backoff())
		}
		if !cl.RetryReady(recoverTick + 1) {
			t.Fatal("client not retry-ready right after recovery")
		}
	}
	// Throughput resumes on the very next tick, not after the stale
	// retry timers would have expired.
	before := c.Metrics().TotalOps()
	c.Run(1)
	if c.Metrics().TotalOps() <= before {
		t.Fatal("no ops served on the first tick after recovery")
	}
	// And the trace records the forced exits.
	sawRecoveryExit := false
	for _, ev := range ring.OfType(obs.EvBackoffExit) {
		if ev.Fields["reason"] == "recovery" {
			sawRecoveryExit = true
			break
		}
	}
	if !sawRecoveryExit {
		t.Fatal("no backoff_exit(recovery) event traced")
	}
	c.RunUntilDone(20000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
}
