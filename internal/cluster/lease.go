// Lease-based hot-read replication: the cluster grants short read
// leases on the synced standbys of hot, read-dominated subtrees, so a
// shared-directory read storm is served by up to R ranks instead of
// queueing on the one authoritative server. The replica manager owns
// lease truth (grant/revoke/expiry, always on synced standbys only);
// this file is the control loop around it — the epoch-close grant and
// carve passes, the routing-table sync, and the write/migration/crash
// invalidation plumbing. Everything is guarded by c.lt != nil, so a
// cluster without leases (LeaseTicks 0, the default) pays nothing.
//
// Determinism: grants and carves run in the serial epoch close over the
// partition's sorted entry snapshot; write revokes are buffered in rank
// lanes during the parallel serve rounds and applied at the serial
// barriers in ascending rank order; the routing table is rebuilt only
// in serial sections. The lease path is therefore byte-identical at
// every worker count, which the differential tests prove.
package cluster

import (
	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/replica"
)

const (
	// leaseHotFrac is the grant threshold: a subtree qualifies for read
	// leases when its epoch heat exceeds this fraction of one rank's
	// epoch capacity — i.e. it alone keeps a server half-busy, so
	// spreading its reads across standbys buys real headroom.
	leaseHotFrac = 0.5
	// leaseCarveDepth bounds the carve pass's descent from a qualifying
	// entry toward the deepest hot read-dominated directory.
	leaseCarveDepth = 8
	// leaseCarvesPerEpoch bounds how many new subtree entries the carve
	// pass creates per epoch close, so a pathological namespace cannot
	// explode the partition in one epoch.
	leaseCarvesPerEpoch = 4
)

// leasesEnabled reports whether the lease machinery is configured on.
func (c *Cluster) leasesEnabled() bool {
	return c.rep != nil && c.rep.Policy().LeaseTicks > 0
}

// syncLeaseTable rebuilds the routing table from the manager's lease
// state when lease membership has changed. Serial sections only.
func (c *Cluster) syncLeaseTable() {
	if c.lt == nil {
		return
	}
	v := c.rep.LeaseVersion()
	if v == c.ltVersion {
		return
	}
	c.lt.Clear()
	c.rep.ForEachGroup(func(g *replica.Group) {
		if len(g.Leases) == 0 {
			return
		}
		holders := make([]namespace.MDSID, len(g.Leases))
		for i, l := range g.Leases {
			holders[i] = l.Rank
		}
		c.lt.Set(g.Key, holders)
	})
	c.ltVersion = v
}

// revokeLease drops every lease on the subtree — the write-invalidation
// path, applied at the serial apply barriers (reason "write") in
// ascending rank order. Idempotent: a key already revoked this round is
// a no-op, so duplicate buffered revokes are harmless.
func (c *Cluster) revokeLease(key namespace.FragKey, reason string) {
	if c.lt == nil || !c.lt.Has(key) {
		return
	}
	n := c.rep.RevokeLeases(key)
	c.lt.Remove(key)
	c.ltVersion = c.rep.LeaseVersion()
	if reason == "write" {
		// The auditor checks that a write-invalidated subtree holds zero
		// live leases at tick end; the grant pass also skips these keys
		// this epoch (the write has not shipped to the standbys yet).
		c.leaseWriteRevoked = append(c.leaseWriteRevoked, key)
	}
	if n > 0 && c.bus.Enabled(obs.EvLeaseRevoke) {
		f := obs.AcquireF()
		f["dir"], f["frag"] = key.Dir, key.Frag.String()
		f["n"], f["reason"] = n, reason
		c.bus.EmitPooled(obs.Event{Tick: c.tick, Type: obs.EvLeaseRevoke, Fields: f})
	}
}

// writeRevokedThisTick reports whether the key's leases were write-
// invalidated during the current tick's serve rounds. The per-tick list
// is tiny (one entry per written leased subtree), so a linear scan
// beats a map here.
func (c *Cluster) writeRevokedThisTick(key namespace.FragKey) bool {
	for _, k := range c.leaseWriteRevoked {
		if k == key {
			return true
		}
	}
	return false
}

// subtreeHeatRW sums a subtree key's (total, read) heat across its
// primary and current lease holders. Lease-served reads land on the
// holders' counters, so reading the primary alone would watch a leased
// subtree "cool down" and let its leases lapse every term.
func (c *Cluster) subtreeHeatRW(e namespace.Entry) (total, read float64) {
	total, read = c.servers[e.Auth].KeyHeatRW(e.Key)
	for _, h := range c.lt.Holders(e.Key) {
		if int(h) < len(c.servers) && h != e.Auth {
			t, r := c.servers[h].KeyHeatRW(e.Key)
			total += t
			read += r
		}
	}
	return total, read
}

// dirHeatRW sums a directory's (total, read) heat the same way, over
// the servers that may have served it under the governing entry.
func (c *Cluster) dirHeatRW(e namespace.Entry, ino namespace.Ino) (total, read float64) {
	total, read = c.servers[e.Auth].DirHeatRW(ino)
	for _, h := range c.lt.Holders(e.Key) {
		if int(h) < len(c.servers) && h != e.Auth {
			t, r := c.servers[h].DirHeatRW(ino)
			total += t
			read += r
		}
	}
	return total, read
}

// leaseQualifies reports whether a subtree entry currently qualifies
// for read leases: live authority, not mid-migration, not write-
// invalidated this tick, hot enough, and read-dominated enough.
func (c *Cluster) leaseQualifies(e namespace.Entry, hot, minFrac float64) bool {
	if int(e.Auth) >= len(c.servers) || !c.servers[e.Auth].Up() {
		return false
	}
	if c.migrator.IsFrozen(e.Key) || c.writeRevokedThisTick(e.Key) {
		return false
	}
	total, read := c.subtreeHeatRW(e)
	return total >= hot && read >= minFrac*total
}

// leaseGrants grants (or refreshes) read leases on every qualifying
// subtree's synced standbys. It runs every tick inside the replication
// pump — not just at epoch close — so a freshly carved or re-replicated
// hot subtree starts serving from its standbys the tick its syncs
// finish, instead of queueing on one rank for the rest of the epoch.
// Refreshes are silent in the manager, so the steady state costs one
// Expires bump per holder per tick and emits nothing.
func (c *Cluster) leaseGrants(tick int64) {
	pol := c.rep.Policy()
	hot := leaseHotFrac * float64(c.cfg.Capacity) * float64(c.cfg.EpochTicks)
	minFrac := pol.ReplicateReadFrac
	for _, e := range c.part.Entries() {
		if !c.leaseQualifies(e, hot, minFrac) {
			continue
		}
		granted := c.rep.GrantLeases(e.Key, tick+pol.LeaseTicks)
		if len(granted) > 0 && c.bus.Enabled(obs.EvLeaseGrant) {
			ranks := make([]int, len(granted))
			for i, r := range granted {
				ranks[i] = int(r)
			}
			total, read := c.subtreeHeatRW(e)
			f := obs.AcquireF()
			f["dir"], f["frag"] = e.Key.Dir, e.Key.Frag.String()
			f["ranks"], f["until"], f["read_frac"] = ranks, tick+pol.LeaseTicks, read/total
			c.bus.EmitPooled(obs.Event{Tick: tick, Type: obs.EvLeaseGrant, Fields: f})
		}
	}
}

// leaseStep is the epoch-close carve pass: descend into hot
// read-dominated directories and carve them into their own subtree
// entries, so the next reconcile builds them tight replication groups
// and the per-tick grant pass can lease exactly the storm's directory
// instead of a whole rank's subtree. It runs before the balancer's
// Rebalance so migration planning sees the carved entries.
func (c *Cluster) leaseStep(tick int64) {
	pol := c.rep.Policy()
	hot := leaseHotFrac * float64(c.cfg.Capacity) * float64(c.cfg.EpochTicks)
	minFrac := pol.ReplicateReadFrac
	carves := leaseCarvesPerEpoch
	// Entries() is a fresh sorted snapshot, so carving inside the loop
	// is safe; entries carved this pass get groups at this tick's
	// reconcile and leases as soon as their standbys sync.
	for _, e := range c.part.Entries() {
		if carves == 0 {
			break
		}
		if !c.leaseQualifies(e, hot, minFrac) {
			continue
		}
		if c.leaseCarve(e, hot, minFrac) {
			carves--
		}
	}
}

// leaseCarve descends from the entry's root directory through hot
// read-dominated child directories to the deepest one that qualifies,
// and carves it into its own subtree entry. The point is scope: a lease
// on a whole rank's entry (often the root early in a run) serves reads
// correctly but freezes a huge subtree out of migration; carving
// converges the lease onto the storm's actual directory. Directories
// that are already subtree roots are never descended into (their own
// entries qualify on their own), matching Partition.Carve's contract.
func (c *Cluster) leaseCarve(e namespace.Entry, hot, minFrac float64) bool {
	cur := c.tree.Get(e.Key.Dir)
	if cur == nil {
		return false
	}
	frag := e.Key.Frag
	var target *namespace.Inode
	for depth := 0; depth < leaseCarveDepth; depth++ {
		var next *namespace.Inode
		var nextHeat float64
		for _, ch := range cur.ChildrenInFrag(frag) {
			if !ch.IsDir || len(c.part.EntriesAt(ch.Ino)) != 0 {
				continue
			}
			total, read := c.dirHeatRW(e, ch.Ino)
			if total < hot || read < minFrac*total {
				continue
			}
			if next == nil || total > nextHeat {
				next, nextHeat = ch, total
			}
		}
		if next == nil {
			break
		}
		target, cur = next, next
		// Below the entry's root, the whole hash space is in scope.
		frag = namespace.WholeFrag
	}
	if target == nil {
		return false
	}
	total, read := c.dirHeatRW(e, target.Ino)
	ne := c.part.Carve(target)
	// Transfer the directory's accumulated heat onto the new key: a
	// cold carve would fail the hot/read-dominance checks and be
	// absorbed back by the balancer's housekeeping before its
	// replication group ever syncs.
	c.servers[ne.Auth].SeedHeatRW(ne.Key, total, read)
	return true
}

// pumpLeases runs inside pumpReplication after the journal pump: expire
// leases whose term ended this tick, grant (or refresh) leases on the
// subtrees that qualify now, then refresh the routing table if anything
// — expiry, grants, reconcile rebases, drops — changed lease membership
// this tick.
func (c *Cluster) pumpLeases(tick int64) {
	if c.lt == nil {
		return
	}
	c.rep.ExpireLeases(tick)
	c.leaseGrants(tick)
	c.syncLeaseTable()
}

// LeaseServes returns how many ops were served under a read lease by a
// non-authoritative holder rank.
func (c *Cluster) LeaseServes() int64 { return c.leaseServes }

// LeaseTable returns the live routing table (nil when leases are off).
func (c *Cluster) LeaseTable() *namespace.LeaseTable { return c.lt }
