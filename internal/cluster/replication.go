// Warm-standby replication wiring: the cluster pumps the replica
// manager at the end of every tick (reconcile against the partition,
// ship the journal, advance and start background syncs) and promotes
// surviving standbys shortly after a crash, falling back to the cold
// orphan takeover for subtrees with no promotable replica. Everything
// here is guarded by c.rep != nil, so a cluster without replication
// pays nothing on the tick path.
package cluster

import (
	"repro/internal/metrics"
	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/replica"
)

// initReplication builds the manager's environment closures once and
// seeds the group set from the current partition.
func (c *Cluster) initReplication() {
	c.repEnv = replica.Env{
		// Eligibility is the importable predicate — Active ranks only.
		// Using Up() here would span Draining ranks (Up = Active ||
		// Draining since the elastic lifecycle landed) and let standbys
		// be placed on, resynced to, or promoted onto a rank that is
		// actively leaving the cluster.
		Eligible: c.importable,
		Load:     c.loadOf,
		Stats: func(id namespace.MDSID, key namespace.FragKey) (int64, float64) {
			return c.servers[id].KeyStats(key)
		},
		Inodes: func(key namespace.FragKey) int {
			return c.part.GovernedInodes(key)
		},
		OnResync: func(key namespace.FragKey, rank namespace.MDSID, inodes int) {
			if c.bus.Enabled(obs.EvRereplicate) {
				f := obs.AcquireF()
				f["dir"], f["frag"] = key.Dir, key.Frag.String()
				f["rank"], f["inodes"] = int(rank), inodes
				c.bus.EmitPooled(obs.Event{Tick: c.tick, Type: obs.EvRereplicate, Fields: f})
			}
		},
	}
	c.rep.Reconcile(c.part.Entries(), c.importable)
	c.repVersion = c.part.Version()
}

func (c *Cluster) loadOf(id namespace.MDSID) float64 {
	return c.servers[id].CurrentLoad()
}

// pumpReplication runs at the end of every tick, after the epoch close
// (so balancer carves and drain exports from this tick are already in
// the partition): re-anchor the groups if the partition changed, then
// ship/sync/re-replicate. At epoch close it also emits the journal-lag
// snapshot.
func (c *Cluster) pumpReplication(tick int64) {
	if v := c.part.Version(); v != c.repVersion {
		before := int64(0)
		if c.lt != nil {
			before = c.rep.LeasesRevoked()
		}
		c.rep.Reconcile(c.part.Entries(), c.importable)
		c.repVersion = v
		if c.lt != nil {
			// A reconcile after an authority move rebases the group and
			// clears its leases (the new primary's standbys must re-earn
			// them); surface those as migrate-revokes.
			if n := c.rep.LeasesRevoked() - before; n > 0 && c.bus.Enabled(obs.EvLeaseRevoke) {
				f := obs.AcquireF()
				f["n"], f["reason"] = n, "migrate"
				c.bus.EmitPooled(obs.Event{Tick: tick, Type: obs.EvLeaseRevoke, Fields: f})
			}
		}
	}
	c.repEnv.Ranks = len(c.servers)
	c.rep.Pump(tick, c.repEnv)
	c.pumpLeases(tick)
	if v := c.part.Version(); v != c.repVersion {
		// The pump itself never moves authority, but keep the stamp
		// honest if that ever changes.
		c.repVersion = v
	}
	if (tick+1)%int64(c.cfg.EpochTicks) == 0 && c.bus.Enabled(obs.EvJournalLag) {
		f := obs.AcquireF()
		f["groups"], f["max_lag"] = c.rep.Groups(), c.rep.MaxLag()
		f["syncing"], f["records"] = c.rep.SyncingStandbys(), c.rep.Records()
		c.bus.EmitPooled(obs.Event{Tick: tick, Type: obs.EvJournalLag, Fields: f})
	}
}

// promoteReplicas is the warm failover pass, scheduled PromoteTicks
// after a crash (well inside the RecoveryTicks cold window): every
// subtree the dead rank still governs moves to its best surviving
// standby, which is seeded with the standby's applied journal prefix
// of heat. Subtrees without a promotable replica stay orphaned for the
// cold takeover. Stale invocations — the rank rejoined, or crashed
// again later — are no-ops, mirroring reassignOrphans.
func (c *Cluster) promoteReplicas(dead namespace.MDSID, crashedAt int64) {
	if !c.orphaned[dead] || c.crashTick[dead] != crashedAt {
		return // rejoined, or a newer crash owns the failover
	}
	if c.servers[dead].Up() {
		return
	}
	entries := c.part.EntriesOf(dead)
	promoted := 0
	for _, e := range entries {
		to, heat, lag, ok := c.rep.Promote(e.Key, dead, c.importable, c.loadOf)
		if !ok {
			continue
		}
		c.part.SetAuth(e.Key, to)
		c.servers[to].SeedHeat(e.Key, heat)
		promoted++
		if c.bus.Enabled(obs.EvReplicaPromote) {
			f := obs.AcquireF()
			f["dir"], f["frag"] = e.Key.Dir, e.Key.Frag.String()
			f["from"], f["to"] = int(dead), int(to)
			f["heat"], f["lag"], f["waited"] = heat, lag, c.tick-crashedAt
			c.bus.EmitPooled(obs.Event{Tick: c.tick, Type: obs.EvReplicaPromote, Fields: f})
		}
	}
	if promoted == 0 {
		return
	}
	c.promotions += int64(promoted)
	c.rec.AddRecovery(metrics.RecoveryEvent{
		Rank:         int(dead),
		CrashTick:    crashedAt,
		ReassignTick: c.tick,
		Entries:      promoted,
		Warm:         true,
	})
	if len(c.part.EntriesOf(dead)) == 0 {
		// Everything promoted warm: nothing is orphaned anymore, so stop
		// the outage clock now. The scheduled cold takeover no-ops via
		// its crash-tick guard.
		delete(c.orphaned, dead)
		delete(c.crashTick, dead)
		delete(c.crashLoad, dead)
	}
}

// Replicas returns the attached replication manager (nil when
// replication is disabled).
func (c *Cluster) Replicas() *replica.Manager { return c.rep }

// Promotions returns how many subtree entries have been warm-promoted
// after crashes.
func (c *Cluster) Promotions() int64 { return c.promotions }
