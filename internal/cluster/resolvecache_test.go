package cluster

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/workload"
)

// runCacheDiff runs a seeded 16-MDS run whose schedule exercises every
// resolver-invalidation source — balancer splits and migrations, two
// crashes with orphan takeover, and two recoveries — and returns the
// run's complete externally visible output: per-tick CSV, per-epoch
// CSV, and the JSONL event trace.
func runCacheDiff(t *testing.T, disableCache bool) []byte {
	t.Helper()
	var sched fault.Schedule
	sched.Crash(40, 0).Recover(110, 0).Crash(160, 3).Recover(230, 3)
	var tr bytes.Buffer
	sink := obs.NewJSONL(&tr)
	c := newTestCluster(t, Config{
		MDS:                 16,
		Clients:             24,
		Seed:                11,
		RecoveryTicks:       12,
		Faults:              &sched,
		Workload:            failoverZipf(),
		Bus:                 obs.NewBus(sink),
		DisableResolveCache: disableCache,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	if c.Metrics().MigratedTotal() == 0 {
		t.Fatal("schedule produced no migrations; the cache was never invalidated by an export")
	}
	var out bytes.Buffer
	if err := c.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := c.Metrics().WriteEpochCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out.Write(tr.Bytes())
	return out.Bytes()
}

// TestResolveCacheDifferential is the correctness contract of the
// version-cached authority resolution: the same seeded failover and
// migration run with the cache enabled and disabled must produce
// byte-identical CSVs and event traces. The cache is a pure memo over
// Partition.GoverningEntry, invalidated by Partition.Version(); any
// stale-read bug shows up here as a diverging trace.
func TestResolveCacheDifferential(t *testing.T) {
	cached := runCacheDiff(t, false)
	uncached := runCacheDiff(t, true)
	if !bytes.Equal(cached, uncached) {
		a, b := cached, uncached
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("cached and uncached runs diverge at byte %d:\ncached:   %q\nuncached: %q",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
}

// TestResolveCacheDifferentialSharedDir repeats the differential on the
// shared-directory workload, which drives directory fragmentation
// (splits) rather than whole-dir migrations.
func TestResolveCacheDifferentialSharedDir(t *testing.T) {
	run := func(disable bool) []byte {
		c := newTestCluster(t, Config{
			MDS:                 16,
			Clients:             24,
			Seed:                11,
			Workload:            workload.NewMDShared(workload.MDSharedConfig{CreatesPerClient: 4000}),
			DisableResolveCache: disable,
		})
		c.RunUntilDone(30000)
		if !c.Done() {
			t.Fatal("clients must finish")
		}
		var out bytes.Buffer
		if err := c.Metrics().WriteCSV(&out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(run(false), run(true)) {
		t.Fatal("cached and uncached shared-dir runs diverge")
	}
}
