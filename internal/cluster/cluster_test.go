package cluster

import (
	"testing"

	"repro/internal/balancer"
	"repro/internal/core"
	"repro/internal/namespace"
	"repro/internal/workload"
)

// smallZipf is a quick workload for integration tests.
func smallZipf() workload.Generator {
	return workload.NewZipf(workload.ZipfConfig{FilesPerClient: 200, OpsPerClient: 4000})
}

func smallCNN() workload.Generator {
	return workload.NewCNN(workload.CNNConfig{Dirs: 40, FilesPerDir: 10})
}

func smallMD() workload.Generator {
	return workload.NewMD(workload.MDConfig{CreatesPerClient: 1500})
}

func newTestCluster(t testing.TB, cfg Config) *Cluster {
	t.Helper()
	if cfg.Balancer == nil {
		cfg.Balancer = core.NewDefault()
	}
	if cfg.Workload == nil {
		cfg.Workload = smallZipf()
	}
	if cfg.Clients == 0 {
		cfg.Clients = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Workload: smallZipf()}); err == nil {
		t.Fatal("missing balancer must error")
	}
	if _, err := New(Config{Balancer: core.NewDefault()}); err == nil {
		t.Fatal("missing workload must error")
	}
}

func TestRunCompletesAllClients(t *testing.T) {
	c := newTestCluster(t, Config{})
	end := c.RunUntilDone(5000)
	if !c.Done() {
		t.Fatalf("clients unfinished after %d ticks", end)
	}
	if len(c.Metrics().JCT) != len(c.Clients()) {
		t.Fatalf("JCT count %d != clients %d", len(c.Metrics().JCT), len(c.Clients()))
	}
	// Every issued op was eventually served: total served == sum of
	// per-client completed ops.
	var clientOps int64
	for _, cl := range c.Clients() {
		if !cl.Done() {
			t.Fatal("client not done")
		}
		clientOps += cl.OpsDone()
	}
	var served int64
	for _, s := range c.Servers() {
		served += s.OpsTotal()
	}
	if clientOps != served {
		t.Fatalf("client ops %d != served ops %d", clientOps, served)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, float64, float64) {
		c := newTestCluster(t, Config{Seed: 99})
		c.RunUntilDone(5000)
		rec := c.Metrics()
		return c.Tick(), rec.MeanIF(), rec.MigratedTotal()
	}
	t1, if1, m1 := run()
	t2, if2, m2 := run()
	if t1 != t2 || if1 != if2 || m1 != m2 {
		t.Fatalf("nondeterministic runs: (%d,%v,%v) vs (%d,%v,%v)", t1, if1, m1, t2, if2, m2)
	}
}

func TestSeedsDiffer(t *testing.T) {
	runWith := func(seed uint64) float64 {
		c := newTestCluster(t, Config{Seed: seed})
		c.RunUntilDone(5000)
		return c.Metrics().TotalOps()
	}
	// Different seeds still serve the same op total (workload is fixed)
	// but the dynamics (migrations) differ.
	c1 := newTestCluster(t, Config{Seed: 1})
	c1.RunUntilDone(5000)
	c2 := newTestCluster(t, Config{Seed: 2})
	c2.RunUntilDone(5000)
	if c1.Metrics().TotalOps() != c2.Metrics().TotalOps() {
		t.Fatal("total ops must match across seeds (same workload volume)")
	}
	_ = runWith
}

func TestInodeConservationAcrossMigrations(t *testing.T) {
	c := newTestCluster(t, Config{Workload: smallCNN(), Clients: 8})
	for i := 0; i < 1500 && !c.Done(); i++ {
		c.Step()
		if i%100 == 0 {
			total := 0
			for _, sz := range c.Partition().SubtreeSizes() {
				if sz < 0 {
					t.Fatalf("negative governed size at tick %d", i)
				}
				total += sz
			}
			if total != c.Tree().NumInodes() {
				t.Fatalf("tick %d: governed %d != tree %d", i, total, c.Tree().NumInodes())
			}
		}
	}
}

func TestLunuleBeatsNothingBalancer(t *testing.T) {
	// A do-nothing balancer leaves everything on MDS 0; Lunule must
	// complete the same workload sooner. The demand (20 clients x 150
	// ops/s) exceeds one MDS's capacity, so balancing matters.
	cfgBase := Config{
		Workload: workload.NewZipf(workload.ZipfConfig{FilesPerClient: 200, OpsPerClient: 15000}),
		Clients:  20,
		Seed:     5,
	}

	cfgNull := cfgBase
	cfgNull.Balancer = nullBalancer{}
	cNull := newTestCluster(t, cfgNull)
	cNull.RunUntilDone(20000)

	cfgLun := cfgBase
	cfgLun.Balancer = core.NewDefault()
	cLun := newTestCluster(t, cfgLun)
	cLun.RunUntilDone(20000)

	if !cNull.Done() || !cLun.Done() {
		t.Fatal("runs did not finish")
	}
	if cLun.Tick() >= cNull.Tick() {
		t.Fatalf("Lunule (%d ticks) not faster than no balancing (%d ticks)", cLun.Tick(), cNull.Tick())
	}
}

type nullBalancer struct{}

func (nullBalancer) Name() string              { return "null" }
func (nullBalancer) Rebalance(v balancer.View) {}

func TestMDSExpansionAbsorbsLoad(t *testing.T) {
	c := newTestCluster(t, Config{
		MDS:      2,
		Clients:  16,
		Workload: workload.NewZipf(workload.ZipfConfig{FilesPerClient: 200, OpsPerClient: 20000}),
	})
	c.ScheduleAddMDS(100, 1)
	c.Run(300)
	if len(c.Servers()) != 3 {
		t.Fatalf("servers = %d, want 3 after expansion", len(c.Servers()))
	}
	s3 := c.Servers()[2]
	if s3.OpsTotal() == 0 {
		t.Fatal("added MDS never absorbed load")
	}
	// Metrics grew too.
	if len(c.Metrics().PerMDS) != 3 {
		t.Fatal("metrics did not grow with the cluster")
	}
}

func TestDataPathSlowsCompletion(t *testing.T) {
	base := Config{Workload: smallZipf(), Clients: 10, Seed: 3}
	noData := newTestCluster(t, base)
	noData.RunUntilDone(20000)

	withData := base
	withData.DataPath = true
	withData.OSDs = 1
	withData.OSDBandwidth = 4 << 20 // starve the data path
	cData := newTestCluster(t, withData)
	cData.RunUntilDone(20000)

	if !cData.Done() {
		t.Fatal("data-path run did not finish")
	}
	if cData.Tick() <= noData.Tick() {
		t.Fatalf("a starved data path must slow completion (%d vs %d)", cData.Tick(), noData.Tick())
	}
}

func TestCreatesMaterializeInNamespace(t *testing.T) {
	c := newTestCluster(t, Config{Workload: smallMD(), Clients: 6})
	before := c.Tree().NumInodes()
	c.RunUntilDone(10000)
	if !c.Done() {
		t.Fatal("MD run did not finish")
	}
	created := c.Tree().NumInodes() - before
	if created != 6*1500 {
		t.Fatalf("created %d inodes, want %d", created, 6*1500)
	}
}

func TestForwardsAccounted(t *testing.T) {
	c := newTestCluster(t, Config{Workload: smallCNN(), Clients: 8})
	c.RunUntilDone(5000)
	rec := c.Metrics()
	// Any balancing at all moves subtrees, which invalidates client
	// caches at least once each: forwards must be visible.
	if c.Migrator().CompletedTasks() > 0 && rec.ForwardsTotal() == 0 {
		t.Fatal("migrations happened but no forwards were recorded")
	}
	var serverFwd int64
	for _, s := range c.Servers() {
		serverFwd += s.Forwards()
	}
	if float64(serverFwd) != rec.ForwardsTotal() {
		t.Fatalf("server forwards %d != recorded %v", serverFwd, rec.ForwardsTotal())
	}
}

func TestEpochMetricsRecorded(t *testing.T) {
	c := newTestCluster(t, Config{})
	c.Run(100)
	rec := c.Metrics()
	if rec.IF.Len() != 10 {
		t.Fatalf("IF samples = %d, want one per epoch", rec.IF.Len())
	}
	if rec.Agg.Len() != 100 {
		t.Fatalf("agg samples = %d, want one per tick", rec.Agg.Len())
	}
}

func TestMessageLedgerPopulated(t *testing.T) {
	c := newTestCluster(t, Config{})
	c.Run(50)
	if c.Ledger().TotalBytes() == 0 {
		t.Fatal("balancer epochs must account control messages")
	}
}

func TestFrozenSubtreeStallsNotLoses(t *testing.T) {
	// Force a migration of a hot subtree and verify ops are stalled
	// (clients retry) rather than dropped: total served still matches.
	c := newTestCluster(t, Config{Workload: smallZipf(), Clients: 8, MigrationRate: 50})
	c.RunUntilDone(20000)
	if !c.Done() {
		t.Fatal("run did not finish")
	}
	var clientOps int64
	for _, cl := range c.Clients() {
		clientOps += cl.OpsDone()
	}
	var served int64
	for _, s := range c.Servers() {
		served += s.OpsTotal()
	}
	if clientOps != served {
		t.Fatalf("ops lost under slow migration: %d vs %d", clientOps, served)
	}
}

func TestScheduledDegradationAbsorbed(t *testing.T) {
	// One MDS's capacity halves mid-run (failure injection). The run
	// must complete with no lost ops, and the degraded server must
	// have had its capacity changed.
	c := newTestCluster(t, Config{
		Workload: workload.NewZipf(workload.ZipfConfig{FilesPerClient: 200, OpsPerClient: 10000}),
		Clients:  15,
	})
	c.ScheduleCapacity(50, 2, 500)
	c.RunUntilDone(20000)
	if !c.Done() {
		t.Fatal("degraded run did not finish")
	}
	if c.Servers()[2].Capacity != 500 {
		t.Fatalf("capacity = %d, want 500", c.Servers()[2].Capacity)
	}
	var clientOps, served int64
	for _, cl := range c.Clients() {
		clientOps += cl.OpsDone()
	}
	for _, s := range c.Servers() {
		served += s.OpsTotal()
	}
	if clientOps != served {
		t.Fatalf("ops lost under degradation: %d vs %d", clientOps, served)
	}
}

func TestPerMDSCapacity(t *testing.T) {
	c := newTestCluster(t, Config{
		PerMDSCapacity: []int{2000, 1000, 500},
		MDS:            3,
	})
	caps := []int{c.Servers()[0].Capacity, c.Servers()[1].Capacity, c.Servers()[2].Capacity}
	if caps[0] != 2000 || caps[1] != 1000 || caps[2] != 500 {
		t.Fatalf("capacities = %v", caps)
	}
}

func TestAuthorityAlwaysResolvable(t *testing.T) {
	c := newTestCluster(t, Config{Workload: smallCNN(), Clients: 8})
	for i := 0; i < 600 && !c.Done(); i++ {
		c.Step()
		if i%200 == 0 {
			c.Tree().Walk(func(in *namespace.Inode) bool {
				auth := c.Partition().AuthOf(in)
				if int(auth) < 0 || int(auth) >= len(c.Servers()) {
					t.Fatalf("inode %d resolves to invalid MDS %d", in.Ino, auth)
				}
				return true
			})
		}
	}
}
