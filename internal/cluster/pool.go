package cluster

import (
	"sync"
	"sync/atomic"
)

// runParallel executes fn(0..n-1) across the engine's workers and
// returns when every index has run. With one effective worker (or one
// item) it runs inline on the calling goroutine — the serial engine is
// literally this path, not a second implementation. With more, workers
// claim indices from a shared atomic counter (work stealing, so a slow
// item does not idle the other workers behind a static stripe) and the
// caller participates as worker zero.
//
// Determinism does not depend on scheduling: every fn(i) invoked here
// writes only i-keyed state (one cohort, one rank lane), and all
// cross-shard effects are buffered and applied in sorted rank order at
// the serial barriers between subphases. Goroutines are spawned per
// call rather than parked in a persistent pool: a Cluster has no
// Close, and at a few subphases per tick the spawn cost is noise
// against the work each subphase carries.
func runParallel(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for g := 1; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	for {
		i := int(next.Add(1) - 1)
		if i >= n {
			break
		}
		fn(i)
	}
	wg.Wait()
}
