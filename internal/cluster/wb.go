package cluster

import (
	"repro/internal/client"
	"repro/internal/mds"
	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/workload"
)

// This file implements the write-back tick engine: the batched
// counterpart of serveTick (engine.go), active when Config.Batching
// selects a real batching regime (BatchSize > 1 or FlushEvery > 1).
// The degenerate {1,1} configuration deliberately leaves the write-back
// state nil so the cluster runs the synchronous control flow verbatim —
// byte-identity with the sync path is by construction, and the
// differential test guards it against drift.
//
// The mode changes the client contract: instead of attempting each op
// synchronously, a client buffers drawn ops locally and flushes them in
// per-destination batches. A tick runs:
//
//	plan (parallel over cohorts)
//	    Each participating client draws up to its credit of new ops
//	    into its pending queue (credit is consumed at draw time), then
//	    splits the locally buffered suffix into runs at governing-entry
//	    switches. A run is flushable when it reaches BatchSize ops,
//	    when its oldest op has been buffered FlushEvery ticks, or when
//	    the stream is exhausted (tail flush). Only a flushable PREFIX
//	    flushes — queue order is the dependency order (a create
//	    precedes every op that depends on it in its client's stream),
//	    so a held-back run holds back everything behind it.
//	admit (serial, tick shuffle order, then ID order for clients whose
//	    only work is outstanding journaled batches)
//	    Flushable runs become Batches pushed into their rank's
//	    group-commit journal (mds.Journal); the ops stay in the client
//	    queue, counted by the client's in-flight prefix. Then each
//	    client's outstanding batches are admitted FIFO against the
//	    per-rank budget pools at group granularity: a batch of n ops
//	    costs ceil(n/BatchSize) budget units — the group-commit
//	    amortization. Retained batches (journaled in an earlier tick)
//	    re-resolve their governing entry through their first op and
//	    follow migrated authority to the new rank's journal.
//	serve rounds (parallel over ranks, barrier between rounds)
//	    Round r serves every unblocked client's r-th admitted batch.
//	    The lane does the client-cache / forward-chain work once per
//	    batch, charges budget once per group, and fast-applies the
//	    ops: per-op trace recording, latency, and create
//	    materialization (these are inherently per-op), with heat
//	    charged per parent-directory run in one weighted walk. The
//	    shared applyBarrier adopts creates and lands cross-rank
//	    effects exactly as in the sync engine.
//
// Visibility and crash rules: ops never leave the client queue until
// applied, so issued == done + pending holds unchanged; the in-flight
// prefix mirrors the rank journals (audited: Σ Inflight == Σ journal
// ops). A crash drops the dead rank's journal; every dropped batch
// re-queues the owning client's WHOLE outstanding suffix (later batches
// on live ranks included — queue order must survive), exactly once,
// because the batch objects are discarded. Known approximation: a
// batch re-resolves and commits against its first op's governing
// entry, so ops past a mid-batch fragment split are charged to the
// first op's fragment until the next flush boundary.

// wbRun is one flushable same-entry run planned by a cohort.
type wbRun struct {
	n     int32
	since int64
	ent   namespace.Entry
}

// wbState is the engine's write-back mode state (nil in sync and
// degenerate modes).
type wbState struct {
	batchSize  int
	flushEvery int64

	// queues[ci] is client ci's outstanding journaled batches, FIFO
	// across ranks. The same Batch pointers live in the rank journals.
	queues [][]*mds.Batch

	// Per-client plan scratch; each slot is written only by the owning
	// cohort during the parallel plan phase.
	flStart []int32
	flCount []int32
	planned []bool
	gated   []bool

	runs     [][]wbRun // per cohort: flushable runs planned this tick
	cohortOf []int     // client -> owning cohort index

	byRank     [][]*mds.Batch // per rank: batches admitted this tick
	touched    []int32        // ranks with admitted batches this tick
	rankRounds []int32        // per rank: max admitted round + 1
	maxRound   int
	round      int

	planFn  func(int)
	serveFn func(int)
}

func newWBState(e *engine, bc *BatchingConfig) *wbState {
	n := len(e.c.clients)
	w := &wbState{
		batchSize:  bc.BatchSize,
		flushEvery: bc.FlushEvery,
		queues:     make([][]*mds.Batch, n),
		flStart:    make([]int32, n),
		flCount:    make([]int32, n),
		planned:    make([]bool, n),
		gated:      make([]bool, n),
		runs:       make([][]wbRun, len(e.cohorts)),
		cohortOf:   make([]int, n),
	}
	for k, co := range e.cohorts {
		for _, ci := range co.members {
			w.cohortOf[ci] = k
		}
	}
	w.planFn = func(k int) { e.wbPlanCohort(k, e.tick) }
	w.serveFn = func(j int) { e.wbServeRank(e.activeRanks[j], e.tick, e.epoch) }
	return w
}

// serveTickWB is the write-back serve phase: one flush/admit pass and
// its serve rounds per tick. Pre-phase gating, latency merge, and the
// completion sweep mirror serveTick exactly.
func (e *engine) serveTickWB(tick, epoch int64) {
	c := e.c
	w := e.wb
	e.ensure()
	e.tick, e.epoch = tick, epoch

	anyActive := false
	for i, cl := range c.clients {
		e.participated[i] = false
		e.credit[i] = 0
		if cl.Done() || tick < cl.StartTick() {
			continue
		}
		if !cl.RetryReady(tick) {
			continue // backing off after failures against a down rank
		}
		if cl.Debt() > 0 {
			cl.PayDebt(c.osds.Consume(cl.Debt()))
			if cl.Debt() > 0 {
				continue // still blocked on the data path
			}
		}
		n := cl.AccrueCredit()
		e.participated[i] = true
		if n > 0 && !cl.Idle() {
			e.credit[i] = int64(n)
			anyActive = true
		}
		if cl.PendingOps() > 0 {
			// Buffered or journaled ops exist: flush-age triggers and
			// batch application must run even with no fresh credit.
			anyActive = true
		}
	}

	if anyActive {
		c.rand.ShuffleInts(e.cohortOrder)
		runParallel(e.workers, len(e.cohorts), e.beginTickFn)
		for i := range e.blocked {
			e.blocked[i] = false
		}
		for i, s := range c.servers {
			e.avail[i] = int32(s.RemainingBudget())
		}

		runParallel(e.workers, len(e.cohorts), w.planFn)
		e.wbAdmit(tick)
		for r := 0; r < w.maxRound; r++ {
			w.round = r
			e.wbScheduleRound(r)
			for i, s := range c.servers {
				e.budgetSnap[i] = int32(s.RemainingBudget())
			}
			runParallel(e.workers, len(e.activeRanks), w.serveFn)
			e.applyBarrier(tick)
		}
	}

	for _, lane := range e.lanes {
		if lane.lat.Dirty() {
			c.rec.MergeLatencyShard(&lane.lat)
		}
	}
	e.mergeTenantShards()
	for i, cl := range c.clients {
		if e.participated[i] && cl.MaybeFinish(tick) {
			c.doneN++
			c.rec.AddJCT(tick)
			if c.tn != nil {
				c.rec.AddTenantJCT(cl.Tenant, tick)
			}
		}
	}
}

// wbPlanCohort draws and forms flushable runs for one cohort: the
// shuffled (credited) clients first, then any other participating
// member with buffered or journaled ops (flush-age triggers fire and
// retained batches re-admit even on zero-credit ticks).
func (e *engine) wbPlanCohort(k int, tick int64) {
	co := e.cohorts[k]
	w := e.wb
	runs := w.runs[k][:0]
	for _, ci := range co.members {
		w.flCount[ci] = 0
		w.planned[ci] = false
	}
	for _, ci := range co.shuffled {
		w.planned[ci] = true
		runs = e.wbPlanClient(co, runs, ci, tick)
	}
	for _, ci := range co.members {
		if w.planned[ci] || !e.participated[ci] {
			continue
		}
		if e.c.clients[ci].PendingOps() == 0 {
			continue
		}
		runs = e.wbPlanClient(co, runs, ci, tick)
	}
	w.runs[k] = runs
}

// wbPlanClient draws the client's new ops (bounded by credit, consumed
// at draw time) and splits the locally buffered suffix into runs at
// governing-entry switches, appending the flushable prefix to runs.
func (e *engine) wbPlanClient(co *cohort, runs []wbRun, ci int32, tick int64) []wbRun {
	w := e.wb
	cl := e.c.clients[ci]
	// A tree-reading stream must not draw past an unadopted create: the
	// gate set at that create clears once the queue has fully drained
	// (the gating create is always the newest queued op, and it is
	// adopted at the barrier of the tick that completes it).
	if w.gated[ci] && cl.PendingOps() == 0 {
		w.gated[ci] = false
	}
	if !w.gated[ci] {
		for e.credit[ci] > 0 {
			op, ok := cl.PeekOp(int(cl.PendingOps()), tick)
			if !ok {
				break // stream exhausted
			}
			e.credit[ci]--
			if e.endsRun(cl, op) {
				if op.Kind == workload.OpCreate && cl.StreamReadsTree() {
					w.gated[ci] = true
				}
				break
			}
		}
	}
	buf := int(cl.BufferedOps())
	if buf == 0 {
		return runs
	}
	base := int(cl.Inflight())
	start := int32(len(runs))
	i := 0
	// One-entry resolve memo keyed by the op's resolve-input inode
	// (the parent for creates, the target otherwise): sequential fills
	// resolve once per directory instead of once per op. Creates into a
	// fragmented directory are thereby grouped at parent granularity —
	// the batch-level approximation admission re-resolves anyway.
	var memoIn *namespace.Inode
	var memoEnt namespace.Entry
	for i < buf {
		op, _ := cl.PeekOp(base+i, tick)
		rin := op.Target
		if op.Kind == workload.OpCreate {
			rin = op.Parent
		}
		if rin != memoIn {
			memoIn, memoEnt = rin, co.resolve(e, op)
		}
		ent := memoEnt
		n := 1
		ends := e.endsRun(cl, op)
		for !ends && i+n < buf {
			op2, _ := cl.PeekOp(base+i+n, tick)
			rin2 := op2.Target
			if op2.Kind == workload.OpCreate {
				rin2 = op2.Parent
			}
			if rin2 != memoIn {
				memoIn, memoEnt = rin2, co.resolve(e, op2)
				if memoEnt.Key != ent.Key || memoEnt.Auth != ent.Auth {
					break // entry switch: the run ends here
				}
			}
			ends = e.endsRun(cl, op2)
			n++
		}
		since := cl.PeekSince(base + i)
		if n < w.batchSize && tick-since+1 < w.flushEvery && !cl.StreamDrained() {
			break // not flushable; prefix-only, so later runs wait too
		}
		runs = append(runs, wbRun{n: int32(n), since: since, ent: ent})
		i += n
	}
	if cnt := int32(len(runs)) - start; cnt > 0 {
		w.flStart[ci] = start
		w.flCount[ci] = cnt
	}
	return runs
}

// wbAdmit journals the planned flushes and admits each client's
// outstanding batches against the per-rank budget pools, in the tick's
// shuffled client order, then (ID order) the clients whose only work is
// batches retained from earlier ticks.
func (e *engine) wbAdmit(tick int64) {
	w := e.wb
	w.maxRound = 0
	for i := range w.rankRounds {
		w.rankRounds[i] = 0
	}
	for _, t := range w.touched {
		w.byRank[t] = w.byRank[t][:0]
	}
	w.touched = w.touched[:0]
	for _, k := range e.cohortOrder {
		co := e.cohorts[k]
		for _, ci := range co.shuffled {
			e.wbAdmitClient(k, ci, tick)
		}
	}
	for ci := range e.c.clients {
		if w.planned[ci] || !e.participated[ci] {
			continue
		}
		if len(w.queues[ci]) == 0 && w.flCount[ci] == 0 {
			continue
		}
		e.wbAdmitClient(w.cohortOf[ci], int32(ci), tick)
	}
}

// wbAdmitClient flushes the client's planned runs into their rank
// journals, then walks its batch FIFO granting commit groups from the
// budget pools. A batch that cannot be (fully) admitted blocks every
// later batch of the same client — per-client FIFO is the ordering
// contract application correctness rests on.
func (e *engine) wbAdmitClient(k int, ci int32, tick int64) {
	c := e.c
	w := e.wb
	cl := c.clients[ci]
	q := w.queues[ci]
	// Pop batches fully applied in earlier ticks.
	pop := 0
	for pop < len(q) && q[pop].Dead {
		pop++
	}
	if pop > 0 {
		n := copy(q, q[pop:])
		for j := n; j < len(q); j++ {
			q[j] = nil
		}
		q = q[:n]
	}
	// Journal the freshly flushable runs.
	if fn := w.flCount[ci]; fn > 0 {
		for _, fr := range w.runs[k][w.flStart[ci] : w.flStart[ci]+fn] {
			rank := fr.ent.Auth
			if !c.servers[rank].Up() {
				// The sync path would attempt the op against the down
				// rank and back off; the flush does the same, with the
				// ops staying buffered client-side.
				e.wbStallDown(cl, rank, tick)
				break
			}
			b := &mds.Batch{
				Client: int(ci), Rank: rank, N: int(fr.n),
				Round: -1, Since: fr.since, Ent: fr.ent,
			}
			c.servers[rank].Journal().Push(b)
			q = append(q, b)
			cl.MarkInflight(int(fr.n))
			c.rec.AddBatchFlush(int(fr.n), tick-fr.since)
			if c.bus.Enabled(obs.EvBatchFlush) {
				f := obs.AcquireF()
				f["client"], f["rank"], f["n"] = cl.ID, int(rank), int(fr.n)
				f["age"], f["depth"] = tick-fr.since, c.servers[rank].Journal().Depth()
				c.bus.EmitPooled(obs.Event{Tick: tick, Type: obs.EvBatchFlush, Fields: f})
			}
		}
	}
	w.queues[ci] = q
	if e.blocked[ci] {
		return
	}
	// Admission over the FIFO at group granularity.
	off := 0
	round := 0
	// Tokens this client charged for batches admitted this tick. When a
	// later batch blocks the client, the serve phase skips those earlier
	// batches too (a client's batches apply in order), so their tokens
	// must flow back to the bucket or they leak every tick the pattern
	// repeats — a contended tenant would pay full rate for zero service.
	tickAdm := 0
	refundBlocked := func() {
		if tn := c.tn; tn != nil && tickAdm > 0 {
			tn.Refund(cl.Tenant, tickAdm)
			tn.NoteStalled(cl.Tenant, tickAdm)
		}
	}
	for _, b := range q {
		op, ok := cl.PeekOp(off, tick)
		if !ok {
			break // cannot happen: journaled ops are queued
		}
		ent := e.wbResolveOp(op)
		if !c.servers[ent.Auth].Up() {
			// Authority sits on a down rank (orphan window): the batch
			// stays in its current live journal and the client backs
			// off, as a sync attempt against the dead rank would.
			e.wbStallDown(cl, ent.Auth, tick)
			refundBlocked()
			break
		}
		if ent.Auth != b.Rank {
			mds.MoveBatch(c.servers[b.Rank].Journal(), c.servers[ent.Auth].Journal(), b)
		}
		b.Ent = ent
		auth := c.servers[b.Rank]
		if c.migrator.IsFrozen(ent.Key) {
			auth.AddStalls(1)
			cl.Retain()
			e.blocked[ci] = true
			refundBlocked()
			break
		}
		// With tenant QoS on, the batch draws from its tenant's token
		// bucket before the rank pool (the sync engine's admit order).
		// Uncontended buckets grant everything, so the arithmetic below
		// collapses to the QoS-off form byte for byte.
		want := b.N
		grant := want
		if tn := c.tn; tn != nil {
			grant = tn.Take(cl.Tenant, want)
			if grant <= 0 {
				// Bucket dry: this batch is retained — the write-back
				// throttle. With earlier batches already holding quota,
				// stop admitting and let them serve; only a client with
				// nothing admitted takes the admission-cut stall.
				tn.NoteThrottled(cl.Tenant, want)
				if round > 0 {
					break
				}
				auth.AddStalls(1)
				cl.Retain()
				e.blocked[ci] = true
				break
			}
		}
		groups := (grant + w.batchSize - 1) / w.batchSize
		g := int(e.avail[b.Rank])
		if g > groups {
			g = groups
		}
		if g <= 0 {
			// Budget pool dry: the batch is retained in the journal —
			// the sync admission-cut stall, at batch granularity. With
			// quota in hand this is a pool stall, not a quota spend.
			if tn := c.tn; tn != nil {
				tn.Refund(cl.Tenant, grant)
				tn.NoteStalled(cl.Tenant, grant)
			}
			auth.AddStalls(1)
			cl.Retain()
			e.blocked[ci] = true
			refundBlocked()
			break
		}
		adm := g * w.batchSize
		if adm > grant {
			adm = grant
		}
		if tn := c.tn; tn != nil {
			if adm < grant {
				// Pool-capped below the bucket grant (adm < grant implies
				// g < groups): refund the uncovered tokens as SLO debt.
				tn.Refund(cl.Tenant, grant-adm)
				tn.NoteStalled(cl.Tenant, grant-adm)
			}
			tn.NoteAdmitted(cl.Tenant, adm)
			c.tnAdmittedTick += int64(adm)
			tickAdm += adm
			if grant < want {
				tn.NoteThrottled(cl.Tenant, want-grant)
			}
		}
		e.avail[b.Rank] -= int32(g)
		b.Adm = adm
		b.Round = round
		if len(w.byRank[b.Rank]) == 0 {
			w.touched = append(w.touched, int32(b.Rank))
		}
		w.byRank[b.Rank] = append(w.byRank[b.Rank], b)
		if round+1 > w.maxRound {
			w.maxRound = round + 1
		}
		if int32(round+1) > w.rankRounds[b.Rank] {
			w.rankRounds[b.Rank] = int32(round + 1)
		}
		round++
		if adm < b.N {
			break // partial admission: serve the prefix, stall there
		}
		off += b.N
	}
}

// wbStallDown applies the serial form of the engine's stall-down path:
// stall accounting on the down rank, capped-exponential client backoff,
// and the backoff-enter event.
func (e *engine) wbStallDown(cl *client.Client, rank namespace.MDSID, tick int64) {
	c := e.c
	c.servers[rank].AddStalls(1)
	c.stalledDown++
	cl.RetainBackoff(tick, rank)
	if c.bus.Enabled(obs.EvBackoffEnter) {
		f := obs.AcquireF()
		f["client"], f["backoff"], f["retry_at"] = cl.ID, cl.Backoff(), tick+cl.Backoff()
		c.bus.EmitPooled(obs.Event{Tick: tick, Type: obs.EvBackoffEnter, Fields: f})
	}
	e.blocked[cl.ID] = true
}

// wbResolveOp resolves one op's governing entry from the serial admit
// phase (the cluster-level resolver; cohort resolvers belong to the
// parallel plan phase).
func (e *engine) wbResolveOp(op workload.Op) namespace.Entry {
	target := op.Target
	if op.Kind == workload.OpCreate {
		target = op.Parent.Child(op.Name)
		if target == nil {
			return e.c.part.GoverningChildEntry(op.Parent, namespace.HashName(op.Name))
		}
	}
	if e.c.resolver != nil {
		return e.c.resolver.Entry(target)
	}
	return e.c.part.GoverningEntry(target)
}

// wbScheduleRound collects the ranks with a batch admitted at round r,
// in ascending rank order (the applyBarrier order contract).
func (e *engine) wbScheduleRound(r int) {
	e.activeRanks = e.activeRanks[:0]
	for rank, mr := range e.wb.rankRounds {
		if int(mr) > r {
			e.activeRanks = append(e.activeRanks, rank)
		}
	}
}

// wbServeRank serves the rank's admitted batches for the current round,
// in admission order. Each client has at most one batch per round, so a
// lane is the sole writer of every client it touches this round.
func (e *engine) wbServeRank(rank int, tick, epoch int64) {
	c := e.c
	w := e.wb
	lane := e.lanes[rank]
	auth := c.servers[rank]
	for _, b := range w.byRank[rank] {
		if b.Round != w.round || b.Dead {
			continue
		}
		if e.blocked[b.Client] {
			continue // an earlier batch of this client stalled this tick
		}
		e.wbServeBatch(lane, auth, c.clients[b.Client], b, tick, epoch)
	}
}

// wbServeBatch applies the admitted prefix of one batch: budget per
// commit group, client-cache/forwarding work once per batch, trace and
// latency per op, heat per parent-directory run. An unapplied remainder
// stays journaled for the next tick.
func (e *engine) wbServeBatch(lane *rankLane, auth *mds.Server, cl *client.Client,
	b *mds.Batch, tick, epoch int64) {
	c := e.c
	w := e.wb
	entry := b.Ent
	applied, served, groups := 0, 0, 0
	groupLeft := 0
	headDone := false
	var runPar, runRep *namespace.Inode
	runN := 0
	freshN := int64(0)
	wrote := false
	status := execOK
	var downRank namespace.MDSID
	coll := auth.Collector()
	for applied < b.Adm {
		if groupLeft == 0 {
			if !auth.ConsumeGroupBudget() {
				// Cross-lane forward charges floored the budget under
				// the admission reservation; the remainder is retained.
				lane.noteStall(lane.rank)
				status = execStall
				break
			}
			groups++
			groupLeft = w.batchSize
		}
		groupLeft--
		op := cl.OpAt(0)
		target := op.Target
		fresh, raced := false, false
		if op.Kind == workload.OpCreate {
			// Probe-free create: no duplicate lookup here. The promise
			// is cheap (slab carve); the serial adoption barrier decides
			// duplicate names deterministically (AdoptOrExisting), and a
			// losing promise completes as a raced create next serve.
			in, err := lane.arena.NewFile(op.Parent, op.Name, op.Size)
			if err != nil {
				lane.racedN++
				raced = true
			} else {
				lane.creates = append(lane.creates, in)
				target, fresh = in, true
			}
		}
		if !raced {
			if !headDone {
				// Once per batch: the client-cache / forwarding work
				// the group commit amortizes across the whole run.
				cached, ok := cl.CacheLookup(entry.Key)
				if !ok || cached != entry.Auth {
					chain, _ := c.part.ResolveChainInto(lane.chain, target)
					lane.chain = chain[:0]
					hopFail := false
					for _, h := range chain[:len(chain)-1] {
						if !c.servers[h].Up() {
							lane.noteStall(h)
							status, downRank = execStallDown, h
							hopFail = true
							break
						}
						if e.budgetSnap[h] <= 0 {
							lane.noteStall(h)
							status = execStall
							hopFail = true
							break
						}
					}
					if hopFail {
						if fresh {
							// The op is retained, so un-promise its
							// create: re-serving it must not find a
							// duplicate it raced against itself.
							lane.creates = lane.creates[:len(lane.creates)-1]
						}
						break
					}
					for _, h := range chain[:len(chain)-1] {
						if lane.fwdOut[h] == 0 {
							lane.fwdTch = append(lane.fwdTch, int32(h))
						}
						lane.fwdOut[h]++
					}
					lane.fwdN += int64(len(chain) - 1)
					cl.CacheStore(entry.Key, entry.Auth)
				}
				headDone = true
			}
			if fresh {
				// A fresh inode is a first-ever visit by construction:
				// touch its epoch bit now, fold its trace counters into
				// the per-run RecordFreshRun below, and owe MarkVisited
				// to the barrier — no collector map probes on this path.
				wrote = true
				target.Hot.Touch(epoch)
				lane.visits = append(lane.visits, target)
			} else if first := coll.RecordNoVisit(entry.Key, target, epoch); first {
				lane.visits = append(lane.visits, target)
			}
			if runN > 0 && target.Parent == runPar {
				runN++
				if fresh {
					freshN++
				}
			} else {
				if runN > 0 {
					// Creates in a wb run are exactly its fresh inodes
					// (probe-free promises), so reads = runN - freshN.
					auth.AddHeatRun(entry.Key, runRep, runN, runN-int(freshN))
					coll.RecordFreshRun(entry.Key, runPar, epoch, freshN)
					freshN = 0
				}
				runPar, runRep, runN = target.Parent, target, 1
				if fresh {
					freshN = 1
				}
			}
			served++
		}
		if cl.Backoff() > 0 && c.bus.Enabled(obs.EvBackoffExit) {
			f := obs.AcquireF()
			f["client"], f["reason"] = cl.ID, "served"
			lane.events = append(lane.events, obs.Event{Tick: tick, Type: obs.EvBackoffExit, Fields: f})
		}
		lat := cl.CompleteOp(tick)
		lane.lat.Add(lat)
		if lane.tnServed != nil {
			lane.tnServed[cl.Tenant]++
			lane.tlat[cl.Tenant].Add(lat)
		}
		applied++
		if c.cfg.DataPath && op.DataSize > 0 {
			cl.AddDebt(op.DataSize)
			lane.debtors = append(lane.debtors, int32(cl.ID))
			e.blocked[cl.ID] = true
			break
		}
	}
	if runN > 0 {
		auth.AddHeatRun(entry.Key, runRep, runN, runN-int(freshN))
		coll.RecordFreshRun(entry.Key, runPar, epoch, freshN)
	}
	if served > 0 {
		auth.AddOps(served)
		if lane.tnServed != nil {
			auth.AddTenantHeat(entry.Key, cl.Tenant, served)
		}
	}
	if wrote && c.lt != nil && c.lt.Has(entry.Key) {
		// The batch mutated a leased subtree: its read leases die at the
		// barrier (one revoke per batch is enough — revocation is
		// idempotent per key per tick).
		lane.revokes = append(lane.revokes, entry.Key)
	}
	if applied > 0 {
		auth.Journal().Commit(b, applied)
		lane.batchCommits++
		if c.bus.Enabled(obs.EvBatchCommit) {
			f := obs.AcquireF()
			f["rank"], f["client"], f["n"], f["groups"] = int(lane.rank), cl.ID, applied, groups
			lane.events = append(lane.events, obs.Event{Tick: tick, Type: obs.EvBatchCommit, Fields: f})
		}
	}
	switch {
	case status == execStallDown:
		lane.downN++
		cl.RetainBackoff(tick, downRank)
		if c.bus.Enabled(obs.EvBackoffEnter) {
			f := obs.AcquireF()
			f["client"], f["backoff"], f["retry_at"] = cl.ID, cl.Backoff(), tick+cl.Backoff()
			lane.events = append(lane.events, obs.Event{Tick: tick, Type: obs.EvBackoffEnter, Fields: f})
		}
		e.blocked[cl.ID] = true
	case status == execStall:
		cl.Retain()
		e.blocked[cl.ID] = true
	case applied == b.Adm && b.Adm < b.N:
		// Admission cut: the budget pool ran dry mid-batch; stall like
		// the sync engine stalled a client mid-credit.
		lane.noteStall(lane.rank)
		cl.Retain()
		e.blocked[cl.ID] = true
	}
}

// wbCrashRank drops the crashed rank's unapplied journal: every live
// batch in it re-queues the owning client's whole outstanding suffix
// (see wbRequeueFrom), then the journal resets. Called from CrashMDS,
// so requeue events interleave deterministically with the crash event.
func (e *engine) wbCrashRank(id namespace.MDSID, tick int64) {
	j := e.c.servers[id].Journal()
	j.Each(func(b *mds.Batch) {
		e.wbRequeueFrom(b, tick)
	})
	j.Reset()
}

// wbRequeueFrom drops the owning client's outstanding batches from b
// onward — later batches on live ranks included, because the client
// queue must re-flush in order — returning their ops to the locally
// buffered state. Exactly-once is structural: the batch objects are
// discarded, and the ops never left the client queue.
func (e *engine) wbRequeueFrom(b *mds.Batch, tick int64) {
	c := e.c
	w := e.wb
	ci := b.Client
	q := w.queues[ci]
	idx := 0
	for idx < len(q) && q[idx] != b {
		idx++
	}
	if idx == len(q) {
		return // already requeued via an earlier batch's suffix
	}
	cl := c.clients[ci]
	for _, s := range q[idx:] {
		c.servers[s.Rank].Journal().Drop(s)
		cl.RequeueInflight(int64(s.N))
		c.rec.AddBatchRequeue()
		if c.bus.Enabled(obs.EvBatchRequeue) {
			f := obs.AcquireF()
			f["rank"], f["client"], f["n"] = int(s.Rank), ci, s.N
			c.bus.EmitPooled(obs.Event{Tick: tick, Type: obs.EvBatchRequeue, Fields: f})
		}
	}
	for i := idx; i < len(q); i++ {
		q[i] = nil
	}
	w.queues[ci] = q[:idx]
}
