package cluster

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/workload"
)

// mdCreateHeavy is the MDtest-style create-heavy workload the
// write-back tests run: private per-client directory trees with an
// interleaved stat every 64 creates.
func mdCreateHeavy(n int) workload.Generator {
	return workload.NewMD(workload.MDConfig{
		CreatesPerClient: n,
		DirsPerClient:    4,
		StatEvery:        64,
	})
}

// TestWriteBackDegenerateMatchesSync is the write-back mode's anchor
// differential: BatchSize=1, FlushEvery=1 must produce byte-identical
// output (tick CSV, epoch CSV, JSONL trace) to a run with no batching
// configured at all, at every worker count. The degenerate setting is
// DEFINED to run the synchronous path verbatim; this test pins that
// equivalence so a future write-back change cannot quietly claim the
// {1,1} regime.
func TestWriteBackDegenerateMatchesSync(t *testing.T) {
	sync := engineScenarios[0].scenario // failover: crashes + recoveries
	degen := func(cfg *Config) func(*Cluster) {
		after := sync(cfg)
		cfg.Batching = &BatchingConfig{BatchSize: 1, FlushEvery: 1}
		return after
	}
	base := runEngineDiff(t, 0, true, sync)
	got := runEngineDiff(t, 0, true, degen)
	diffEngineOutputs(t, "degenerate/serial", base, got)
	for _, w := range engineWorkerCounts {
		got := runEngineDiff(t, w, false, degen)
		diffEngineOutputs(t, "degenerate/workers="+string(rune('0'+w)), base, got)
	}
}

// TestWriteBackMDtestAuditClean runs the create-heavy MDtest workload
// in write-back mode under the every-tick auditor (which now checks the
// in-flight/journal balance) and sanity-checks the batching metrics:
// batches actually flushed and committed, with a mean size the
// amortization claim rests on, and nothing left in flight at the end.
func TestWriteBackMDtestAuditClean(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:      4,
		Clients:  16,
		Seed:     11,
		Workload: mdCreateHeavy(800),
		Batching: &BatchingConfig{BatchSize: 32, FlushEvery: 8},
		Audit:    aud,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
	rec := c.Metrics()
	if rec.BatchFlushes() == 0 || rec.BatchCommits() == 0 {
		t.Fatalf("write-back run must flush and commit batches, got flushes=%d commits=%d",
			rec.BatchFlushes(), rec.BatchCommits())
	}
	if m := rec.MeanBatchSize(); m <= 1 {
		t.Fatalf("mean batch size %g: batching never formed a real batch", m)
	}
	for _, cl := range c.Clients() {
		if cl.Inflight() != 0 {
			t.Fatalf("client %d finished with %d ops in flight", cl.ID, cl.Inflight())
		}
	}
	if c.racedCreates != 0 {
		t.Fatalf("MD names are client-unique; %d raced creates mean an op applied twice",
			c.racedCreates)
	}
}

// TestWriteBackCrashRequeuesExactlyOnce crashes the rank holding the
// deepest unapplied group-commit journal mid-run (capacity is throttled
// so journals stay deep) and checks the replay-or-drop contract:
// the dead journal empties at the crash, the dropped batches re-queue
// client-side, the every-tick auditor stays clean through takeover, and
// the job still finishes with zero raced creates — an op applied before
// the crash and re-queued after it would surface as a duplicate create
// of a client-unique name.
func TestWriteBackCrashRequeuesExactlyOnce(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	// A budget unit admits a whole commit group (up to BatchSize ops),
	// so retention needs demand above Capacity*BatchSize per rank:
	// 16 clients * 150 ops/tick against 4*8 groups of 32 keeps the
	// journals deep.
	c := newTestCluster(t, Config{
		MDS:           4,
		Clients:       16,
		Seed:          11,
		Capacity:      8,
		RecoveryTicks: 12,
		Workload:      mdCreateHeavy(600),
		Batching:      &BatchingConfig{BatchSize: 32, FlushEvery: 8},
		Audit:         aud,
	})
	c.Run(20)
	victim, deepest := -1, int64(0)
	for i, s := range c.Servers() {
		if ops := s.Journal().Ops(); s.Up() && ops > deepest {
			victim, deepest = i, ops
		}
	}
	if victim < 0 {
		t.Fatal("scenario must leave an unapplied journal to crash")
	}
	if !c.CrashMDS(victim) {
		t.Fatal("crash refused")
	}
	if ops := c.Servers()[victim].Journal().Ops(); ops != 0 {
		t.Fatalf("crashed rank still holds %d journaled ops", ops)
	}
	if c.Metrics().BatchRequeues() == 0 {
		t.Fatal("crashing a rank with an unapplied journal must re-queue batches")
	}
	c.RunUntilDone(40000)
	if !c.Done() {
		t.Fatal("clients must finish after the crash")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
	for _, cl := range c.Clients() {
		if cl.Inflight() != 0 {
			t.Fatalf("client %d finished with %d ops in flight", cl.ID, cl.Inflight())
		}
	}
	if c.racedCreates != 0 {
		t.Fatalf("%d raced creates: a re-queued batch re-applied a create", c.racedCreates)
	}
}

// TestWriteBackChurnWithReplication runs write-back MDtest under seeded
// MTBF churn with warm-standby replication (PR 6): every crash both
// drops that rank's journal (re-queues) and races the standby
// promotion. The every-tick auditor holding through that interaction is
// the test.
func TestWriteBackChurnWithReplication(t *testing.T) {
	sched := fault.MTBF(fault.MTBFConfig{
		Ranks: 4, MTBF: 150, MTTR: 50, Horizon: 1500, MaxConcurrent: 1,
	}, rng.New(11).Fork(99))
	if sched.Empty() {
		t.Fatal("churn schedule must produce events")
	}
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:           4,
		Clients:       16,
		Seed:          11,
		RecoveryTicks: 25,
		Faults:        &sched,
		Workload:      mdCreateHeavy(400),
		Batching:      &BatchingConfig{BatchSize: 16, FlushEvery: 4},
		Replication:   replica.MustManager(replica.DefaultPolicy()),
		Audit:         aud,
	})
	c.RunUntilDone(40000)
	if !c.Done() {
		t.Fatal("clients must finish through the churn")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
	for _, cl := range c.Clients() {
		if cl.Inflight() != 0 {
			t.Fatalf("client %d finished with %d ops in flight", cl.ID, cl.Inflight())
		}
	}
	if c.racedCreates != 0 {
		t.Fatalf("%d raced creates under churn: some batch re-applied", c.racedCreates)
	}
}
