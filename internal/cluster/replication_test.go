package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/mds"
	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/replica"
)

// pinDoomed pins n client dirs to the given rank and returns their
// governing keys — the replication groups the tests crash out from
// under.
func pinDoomed(t *testing.T, c *Cluster, n, rank int) []namespace.FragKey {
	t.Helper()
	var keys []namespace.FragKey
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/zipf/client%03d", i)
		if err := c.PinPath(path, rank); err != nil {
			t.Fatal(err)
		}
		in, err := c.Tree().Lookup(path)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, namespace.FragKey{Dir: in.Ino, Frag: namespace.WholeFrag})
	}
	return keys
}

// TestWarmPromotionBeatsColdTakeover is the tentpole contract: with
// synced standbys, a crash hands every governed subtree to a survivor
// PromoteTicks after the crash — far inside the cold RecoveryTicks
// window — as one Warm recovery event, and the later cold takeover
// finds nothing to do.
func TestWarmPromotionBeatsColdTakeover(t *testing.T) {
	const (
		pinned  = 8
		window  = 20
		crashAt = 30
		doomed  = 2
	)
	pol := replica.DefaultPolicy()
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:           3,
		Clients:       16,
		RecoveryTicks: window,
		Balancer:      nullBalancer{}, // only crash handling moves entries
		Workload:      failoverZipf(),
		Replication:   replica.MustManager(pol),
		Audit:         aud,
	})
	keys := pinDoomed(t, c, pinned, doomed)

	c.Run(crashAt)
	if got := len(c.Partition().EntriesOf(doomed)); got != pinned {
		t.Fatalf("scenario setup: doomed rank governs %d entries, want %d", got, pinned)
	}
	// The re-replicator must have fully replicated every group by now,
	// or the warm path silently degrades to cold and proves nothing.
	c.Replicas().ForEachGroup(func(g *replica.Group) {
		if len(g.Standbys) != pol.R-1 {
			t.Fatalf("group %v has %d standbys before the crash, want %d", g.Key, len(g.Standbys), pol.R-1)
		}
		for _, sb := range g.Standbys {
			if sb.Syncing {
				t.Fatalf("group %v standby %d still syncing at tick %d", g.Key, sb.Rank, crashAt)
			}
		}
	})

	if !c.CrashMDS(doomed) {
		t.Fatalf("crash of rank %d refused", doomed)
	}
	c.Run(int64(pol.PromoteTicks) + 1)

	if got := len(c.Partition().EntriesOf(doomed)); got != 0 {
		t.Fatalf("%d entries still on the dead rank after the promotion pass", got)
	}
	if got := c.Promotions(); got != pinned {
		t.Fatalf("promotions = %d, want %d (every pinned subtree promoted warm)", got, pinned)
	}
	evs := c.Metrics().RecoveryEvents()
	if len(evs) != 1 || !evs[0].Warm {
		t.Fatalf("recovery events = %+v, want exactly one Warm event", evs)
	}
	if got := evs[0].TicksToReassign(); got != int64(pol.PromoteTicks) {
		t.Fatalf("warm reassign after %d ticks, want PromoteTicks=%d — the whole point of the standby",
			got, pol.PromoteTicks)
	}
	if c.Metrics().WarmRecoveries() != 1 {
		t.Fatalf("WarmRecoveries = %d, want 1", c.Metrics().WarmRecoveries())
	}
	// Promoted owners carry the replayed journal heat, not a cold start.
	for _, key := range keys {
		e, ok := c.Partition().EntryAt(key)
		if !ok {
			t.Fatalf("pinned entry %v vanished", key)
		}
		if int(e.Auth) == doomed || !c.Servers()[e.Auth].Up() {
			t.Fatalf("entry %v promoted to rank %d: not a live survivor", key, e.Auth)
		}
		if _, heat := c.Servers()[e.Auth].KeyStats(key); heat <= 0 {
			t.Fatalf("entry %v has zero heat on its promoted owner — journal prefix not seeded", key)
		}
	}

	// Past the cold window: the scheduled cold takeover must be a no-op,
	// not a second reassignment of already-promoted subtrees.
	c.Run(window + 2)
	if got := len(c.Metrics().RecoveryEvents()); got != 1 {
		t.Fatalf("recovery events after the cold window = %d, want still 1 (cold takeover must no-op)", got)
	}

	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish after a warm failover")
	}
	checkAuthLive(t, c)
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestPromotionFallsBackColdWhenUnsynced starves the re-replicator
// (ResyncRate 1: a ~200-inode sync takes ~200 ticks) so no standby is
// synced when the crash lands: promotion must find nothing and the
// orphans must reach survivors through the unchanged cold takeover.
func TestPromotionFallsBackColdWhenUnsynced(t *testing.T) {
	const (
		pinned  = 6
		window  = 10
		crashAt = 30
		doomed  = 2
	)
	pol := replica.DefaultPolicy()
	pol.ResyncRate = 1
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:           3,
		Clients:       12,
		RecoveryTicks: window,
		Balancer:      nullBalancer{},
		Workload:      failoverZipf(),
		Replication:   replica.MustManager(pol),
		Audit:         aud,
	})
	pinDoomed(t, c, pinned, doomed)

	c.Run(crashAt)
	if !c.CrashMDS(doomed) {
		t.Fatal("crash refused")
	}
	c.Run(window + 2)

	if got := len(c.Partition().EntriesOf(doomed)); got != 0 {
		t.Fatalf("%d entries still on the dead rank after the cold window", got)
	}
	if got := c.Promotions(); got != 0 {
		t.Fatalf("promotions = %d, want 0: nothing was synced, nothing may promote", got)
	}
	evs := c.Metrics().RecoveryEvents()
	if len(evs) != 1 || evs[0].Warm {
		t.Fatalf("recovery events = %+v, want exactly one cold event", evs)
	}
	if got := evs[0].TicksToReassign(); got != window {
		t.Fatalf("cold reassign after %d ticks, want the %d-tick window", got, window)
	}
	if c.Metrics().WarmRecoveries() != 0 {
		t.Fatal("a cold fallback must not count as a warm recovery")
	}

	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish after the cold fallback")
	}
	checkAuthLive(t, c)
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// runReplication runs one seeded, replicated (R=2) cluster through a
// crash/recover schedule under the default balancer and returns its
// complete externally visible output: per-tick CSV, per-epoch CSV, and
// the JSONL trace including the replica_promote/journal_lag/
// rereplicate events.
func runReplication(t *testing.T, aud *audit.Auditor) (*Cluster, []byte) {
	t.Helper()
	var tr bytes.Buffer
	sink := obs.NewJSONL(&tr)
	var s fault.Schedule
	s.CrashHottest(40).Recover(150, 0).Crash(250, 2).Recover(400, 2)
	if err := s.Validate(5); err != nil {
		t.Fatal(err)
	}
	c := newTestCluster(t, Config{
		MDS:           5,
		RecoveryTicks: 12,
		Faults:        &s,
		Workload:      failoverZipf(),
		Replication:   replica.MustManager(replica.DefaultPolicy()),
		Bus:           obs.NewBus(sink),
		Audit:         aud,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish under faults with replication")
	}
	var out bytes.Buffer
	if err := c.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := c.Metrics().WriteEpochCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out.Write(tr.Bytes())
	return c, out.Bytes()
}

// TestReplicationFaultChurnAudited drives the replicated cluster
// through crash/recover churn with the real balancer migrating
// underneath, under per-tick auditing: warm promotions happen, the
// re-replicator restores R, and every replica invariant holds.
func TestReplicationFaultChurnAudited(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c, _ := runReplication(t, aud)
	if c.Promotions() == 0 {
		t.Fatal("no warm promotions under the fault schedule — scenario proves too little")
	}
	if c.Replicas().ResyncsDone() == 0 {
		t.Fatal("the re-replicator never restored R after a loss")
	}
	checkAuthLive(t, c)
	if aud.Passes() == 0 {
		t.Fatal("auditor never ran")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestReplicationDeterministic is the replication determinism
// contract: two seed-equal replicated runs (fresh managers, same
// policy, same fault schedule) produce byte-identical CSVs and JSONL
// traces — ships, syncs, promotions, and all.
func TestReplicationDeterministic(t *testing.T) {
	_, a := runReplication(t, audit.New(audit.Options{}))
	_, b := runReplication(t, audit.New(audit.Options{}))
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("seed-equal replicated runs diverge at byte %d:\nfirst:  %q\nsecond: %q",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
}

// TestReplicationCrashMidDrainAudited composes the three lifecycle
// paths: a rank is crashed mid-drain with replication attached. The
// crash cancels the drain, its subtrees reach survivors (warm or
// cold), no standby is ever left on the dead rank, and the whole
// interleaving stays audit-clean.
func TestReplicationCrashMidDrainAudited(t *testing.T) {
	const window = 12
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:           6,
		Workload:      failoverZipf(),
		RecoveryTicks: window,
		Replication:   replica.MustManager(replica.DefaultPolicy()),
		Audit:         aud,
	})
	c.Run(60)
	victim := drainableRank(t, c, 200)
	if !c.StartDrain(victim) {
		t.Fatalf("StartDrain(%d) refused", victim)
	}
	for i := 0; i < 3 && !c.Servers()[victim].Decommissioned(); i++ {
		c.Step()
	}
	if c.Servers()[victim].Decommissioned() {
		t.Skip("drain completed before the crash could interrupt it")
	}
	if !c.CrashMDS(victim) {
		t.Fatal("crashing the draining rank refused")
	}
	if len(c.DrainingRanks()) != 0 {
		t.Fatal("crash must cancel the drain")
	}
	c.Run(window + 2)
	for _, e := range c.Partition().Entries() {
		if int(e.Auth) == victim {
			t.Fatalf("entry %v still owned by the crashed mid-drain rank", e.Key)
		}
	}
	c.Replicas().ForEachGroup(func(g *replica.Group) {
		if int(g.Primary) == victim {
			t.Fatalf("group %v still led by the dead rank %d", g.Key, victim)
		}
		for _, sb := range g.Standbys {
			if int(sb.Rank) == victim {
				t.Fatalf("group %v still has a standby on the dead rank %d", g.Key, victim)
			}
		}
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	checkAuthLive(t, c)
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestExporterCrashWhileImporterDrains is the queued-task composition:
// an export is queued into a rank that then starts draining (a queued
// inbound task must not block the drain), after which the export
// *source* crashes. The queued task aborts without moving authority,
// the drain completes, and the orphans reach survivors exactly once.
func TestExporterCrashWhileImporterDrains(t *testing.T) {
	const window = 10
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:           4,
		Clients:       12,
		RecoveryTicks: window,
		Balancer:      nullBalancer{}, // no competing migrations
		Workload:      failoverZipf(),
		Audit:         aud,
	})
	keys := pinDoomed(t, c, 3, 2)
	if err := c.PinPath("/zipf/client003", 1); err != nil {
		t.Fatal(err)
	}
	c.Run(20)

	// Queue an export 2→1 without stepping: it must still be queued
	// when the drain starts and the exporter dies.
	task := c.Migrator().Submit(keys[0], 2, 1, 50, c.Tick())
	if task.State != mds.TaskQueued {
		t.Fatalf("task state = %v, want queued", task.State)
	}
	if !c.StartDrain(1) {
		t.Fatal("a merely queued inbound export must not block StartDrain")
	}
	if !c.CrashMDS(2) {
		t.Fatal("crash of the export source refused")
	}
	if task.State != mds.TaskAborted {
		t.Fatalf("task state = %v, want aborted after the exporter crash", task.State)
	}
	if e, ok := c.Partition().EntryAt(keys[0]); !ok || int(e.Auth) != 2 {
		t.Fatalf("queued abort moved authority to %v; it must stay on the (dead) exporter for takeover", e.Auth)
	}

	for c.Tick() < 5000 && !c.Servers()[1].Decommissioned() {
		c.Step()
	}
	if !c.Servers()[1].Decommissioned() {
		t.Fatal("drain never completed after the exporter crash")
	}
	c.Run(window + 2)
	if got := len(c.Partition().EntriesOf(2)); got != 0 {
		t.Fatalf("%d entries still on the dead exporter after the window", got)
	}
	if got := len(c.Metrics().RecoveryEvents()); got != 1 {
		t.Fatalf("recovery events = %d, want exactly 1", got)
	}
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	checkAuthLive(t, c)
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestCrashPathOwnerFollowsSubtree covers partition-scoped fault
// injection: the crash lands on whichever rank is authoritative for
// the path at fire time, re-crashing an orphaned path is refused, and
// an unresolvable path is refused.
func TestCrashPathOwnerFollowsSubtree(t *testing.T) {
	c := newTestCluster(t, Config{
		MDS:           3,
		RecoveryTicks: 10,
		Balancer:      nullBalancer{},
		Workload:      failoverZipf(),
	})
	if err := c.PinPath("/zipf/client000", 2); err != nil {
		t.Fatal(err)
	}
	c.Run(10)
	if got := c.CrashPathOwner("/zipf/client000"); got != 2 {
		t.Fatalf("CrashPathOwner = %d, want the pinned owner 2", got)
	}
	if c.Servers()[2].Up() {
		t.Fatal("path owner still up after the crash")
	}
	// The path's authority still points at the down rank until takeover:
	// a second path crash has no live owner to kill.
	if got := c.CrashPathOwner("/zipf/client000"); got != -1 {
		t.Fatalf("re-crash of an orphaned path = %d, want -1", got)
	}
	if got := c.CrashPathOwner("/no/such/dir"); got != -1 {
		t.Fatalf("unresolvable path = %d, want -1", got)
	}
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	checkAuthLive(t, c)
}

// TestApplyFaultsPathCrash wires a path-scoped crash through the fault
// schedule: the event resolves the owner at fire time.
func TestApplyFaultsPathCrash(t *testing.T) {
	var s fault.Schedule
	s.CrashPath(15, "/zipf/client000")
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	c := newTestCluster(t, Config{
		MDS:           3,
		RecoveryTicks: 8,
		Faults:        &s,
		Balancer:      nullBalancer{},
		Workload:      failoverZipf(),
	})
	if err := c.PinPath("/zipf/client000", 2); err != nil {
		t.Fatal(err)
	}
	c.Run(20)
	if got := c.DownRanks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("DownRanks = %v, want [2]: the scheduled path crash must hit the pinned owner", got)
	}
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	checkAuthLive(t, c)
}
