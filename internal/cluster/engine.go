package cluster

import (
	"repro/internal/client"
	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// This file implements the phased tick engine: the client-serve part
// of Cluster.Step, restructured so that client cohorts and MDS ranks
// can execute on a worker pool while producing byte-identical output
// at every worker count (including one — the serial engine is this
// same code run inline; see runParallel).
//
// A tick's serve phase runs in planning phases, each of which executes
// as a sequence of rounds:
//
//	plan (parallel over cohorts)
//	    Each active client routes its whole remaining tick: the queued
//	    ops ahead of it (drawn from the stream into the client's
//	    pending queue) are split into "runs" — maximal batches of
//	    consecutive ops resolving to the same authoritative rank —
//	    bounded by the client's credit. Planning stops early at ops
//	    whose outcome gates the stream (a data-path op, a create from
//	    a tree-reading stream); such clients re-plan in the next phase.
//	admit (serial, tick shuffle order)
//	    Each rank's per-tick budget is arbitrated across the planned
//	    runs in one pass over the clients in the tick's shuffled order
//	    (cohort order from the cluster stream, member order from the
//	    cohort stream): a client reserves budget for its runs in
//	    sequence until a rank's pool runs dry, where it is cut — it
//	    will serve the admitted prefix and stall, exactly as the old
//	    serial loop stalled a client mid-credit on a saturated rank.
//	    Arbitrating the full tick in client order, rather than letting
//	    each round drain budget before the next exists, is what keeps
//	    budget contention fair: a client whose saturated-rank ops sit
//	    behind a rank switch competes in shuffle order, not at
//	    round-two priority (which would starve it for as long as the
//	    rank stays saturated).
//	round r: serve (parallel over ranks)
//	    Each rank lane serves the runs scheduled to it this round —
//	    every uncut client's r-th planned run — in tick shuffle order.
//	    Everything a lane touches is owned by it: the clients in its
//	    runs (a client's r-th run targets exactly one rank), its own
//	    server state, and its lane-local buffers. Cross-rank effects —
//	    relay budget charges, stall notes, created inodes, first-visit
//	    marks, backoff events, global counters — are buffered in the
//	    lane.
//	round r: barrier (serial, ascending rank order)
//	    Buffered effects are applied: created inodes are adopted into
//	    the tree (this assigns inode numbers, so the order is part of
//	    the determinism contract), relay charges and stalls land on
//	    their servers, events flush to the bus, data-path debtors pay
//	    the OSD pool, and counters merge.
//
// Rounds repeat until no client has a next planned run; phases repeat
// while any client cleanly finished its plan with credit to spare.
// Relay admission uses the round-start budget snapshot rather than
// live cross-rank reads; the snapshot-admitted charges are applied at
// the barrier, flooring each budget at zero. (The old serial path had
// a latent bug here: a chain relaying through the authoritative rank
// could drain the auth's budget between its HasBudget check and Serve,
// completing the op without serving it. Snapshot admission makes that
// window impossible.)
//
// RNG partitioning: the cluster stream (c.rand) is consumed only in
// serial sections (the per-tick cohort-order shuffle, epoch-close
// balancing). Each cohort owns a Source forked from the experiment
// seed at construction and consumes it only inside its own routing
// subphase, so the streams are identical at every worker count.

// engineCohortSize is the target number of clients per cohort; the
// cohort count is clamped to engineMaxCohorts because each cohort
// carries its own authority-resolver cache (O(maxIno) slots).
const (
	engineCohortSize = 8
	engineMaxCohorts = 16
)

// execStatus is the outcome of one op attempt.
type execStatus int

const (
	// execOK: the op was served (or completed as a raced create).
	execOK execStatus = iota
	// execStall: a saturated or frozen target; retry next tick.
	execStall
	// execStallDown: the authoritative or a relaying rank is down;
	// retry with backoff and account the attempt as stalled-on-down.
	execStallDown
)

// run is one client's batch of same-rank ops: n queued ops with
// resolved entries at entBuf[ent:ent+n] in the owning cohort. adm is
// the admitted prefix — the ops the budget arbitration reserved space
// for; serving stalls at the first op past it.
type run struct {
	client int32
	n      int32
	adm    int32
	ent    int32
	rank   int32
}

// plan is one client's routed tick: count consecutive runs starting at
// the owning cohort's runs[start]. cut is the index of the first run
// the budget arbitration truncated (count when none was).
type plan struct {
	client int32
	start  int32
	count  int32
	cut    int32
}

// cohort is a fixed block of clients that routes together. Everything
// here is written only by the cohort's own routing subphase.
type cohort struct {
	members []int32     // client IDs, fixed at construction
	rand    *rng.Source // cohort-private stream, forked from the seed
	res     *namespace.Resolver

	shuffled []int32 // members with credit this tick, in shuffled order
	active   []int32 // clients still planning this phase (order preserved)
	nextAct  []int32 // scratch for the next phase's active list

	runs    []run
	plans   []plan
	entBuf  []namespace.Entry
	byRank  [][]int32 // per rank: indices into runs, this round
	touched []int32   // ranks with scheduled runs this round
}

// createKey identifies a promised create within a rank lane.
type createKey struct {
	parent namespace.Ino
	name   string
}

// rankLane is one rank's serve-phase shard: lane-local buffers for
// everything the rank's serving would otherwise write cross-shard.
type rankLane struct {
	rank namespace.MDSID

	lat metrics.LatencyShard
	// tnServed / tlat shard per-tenant served counts and latency
	// histograms (nil unless the cluster runs tenant QoS); the serial
	// end of tick merges them in ascending rank order.
	tnServed []int64
	tlat     []metrics.LatencyShard
	events   []obs.Event
	fwdOut []int32 // per rank: relay charges buffered this round
	fwdTch []int32 // ranks with nonzero fwdOut, in first-charge order
	stalls []int64 // per rank: stall notes buffered this round
	stallT []int32
	fwdN   int64 // cluster-level forward count delta
	downN  int64 // stalled-on-down delta
	racedN int64 // raced-create delta
	leaseN int64 // ops served under a read lease this round
	// revokes buffers write-invalidated leased keys; the barrier applies
	// them (revokeLease) in ascending rank order.
	revokes []namespace.FragKey
	debtors []int32
	creates []*namespace.Inode
	visits  []*namespace.Inode
	chain   []namespace.MDSID
	aside   map[createKey]*namespace.Inode
	arena   namespace.InodeArena

	// batchCommits counts group-commit applications this round
	// (write-back mode only; always zero in the sync engine).
	batchCommits int64
}

// engine holds the phased tick engine's amortized state.
type engine struct {
	c       *Cluster
	workers int

	cohorts     []*cohort
	cohortOrder []int // shuffled per tick; lane processing order

	// Per-client tick state, indexed by client ID. blocked is written
	// from parallel rank lanes, but each index is written only by the
	// single lane serving that client this round.
	credit       []int64
	participated []bool
	blocked      []bool

	lanes       []*rankLane
	avail       []int32 // per rank: unreserved serve budget this tick
	budgetSnap  []int32
	activeRanks []int
	rankMark    []uint64
	roundSeq    uint64

	// The current tick/epoch plus the three fan-out closures, bound
	// once at construction: handing runParallel a fresh closure every
	// phase would allocate on the steady tick path (dozens of times per
	// tick — one per plan phase and serve round).
	tick, epoch int64
	beginTickFn func(int)
	planFn      func(int)
	serveFn     func(int)

	// wb is the write-back batching state (wb.go), non-nil only when
	// Config.Batching selects a real batching regime. The degenerate
	// {BatchSize:1, FlushEvery:1} configuration leaves it nil so the
	// sync path runs verbatim.
	wb *wbState
}

// newEngine builds the engine for a freshly constructed cluster,
// forking one RNG stream per cohort from the experiment seed. Cohort
// membership is a pure function of the client count, never of the
// worker count — worker-count invariance starts here.
func newEngine(c *Cluster, src *rng.Source) *engine {
	e := &engine{
		c:            c,
		workers:      c.cfg.Workers,
		credit:       make([]int64, len(c.clients)),
		participated: make([]bool, len(c.clients)),
		blocked:      make([]bool, len(c.clients)),
	}
	if c.cfg.DisableParallelEngine || e.workers < 1 {
		e.workers = 1
	}
	n := len(c.clients)
	numCohorts := (n + engineCohortSize - 1) / engineCohortSize
	if numCohorts > engineMaxCohorts {
		numCohorts = engineMaxCohorts
	}
	for k := 0; k < numCohorts; k++ {
		co := &cohort{rand: src.Fork(uint64(100 + k))}
		if !c.cfg.DisableResolveCache {
			co.res = namespace.NewResolver(c.part)
		}
		// Contiguous blocks: client i belongs to cohort i*numCohorts/n.
		lo, hi := k*n/numCohorts, (k+1)*n/numCohorts
		for i := lo; i < hi; i++ {
			co.members = append(co.members, int32(i))
		}
		e.cohorts = append(e.cohorts, co)
		e.cohortOrder = append(e.cohortOrder, k)
	}
	e.beginTickFn = func(k int) { e.cohorts[k].beginTick(e) }
	e.planFn = func(k int) { e.cohorts[k].plan(e, e.tick) }
	e.serveFn = func(j int) { e.serveRank(e.activeRanks[j], e.tick, e.epoch) }
	if bc := c.cfg.Batching; bc != nil && (bc.BatchSize > 1 || bc.FlushEvery > 1) {
		e.wb = newWBState(e, bc)
	}
	return e
}

// ensure sizes the per-rank state to the current server count (ranks
// can be added mid-run) without reallocating on the steady path.
func (e *engine) ensure() {
	nr := len(e.c.servers)
	for len(e.lanes) < nr {
		e.lanes = append(e.lanes, &rankLane{
			rank:  namespace.MDSID(len(e.lanes)),
			aside: make(map[createKey]*namespace.Inode),
		})
	}
	if cap(e.budgetSnap) < nr {
		e.budgetSnap = make([]int32, nr)
		e.avail = make([]int32, nr)
		e.rankMark = make([]uint64, nr)
		e.activeRanks = make([]int, 0, nr)
	}
	e.budgetSnap = e.budgetSnap[:nr]
	e.avail = e.avail[:nr]
	e.rankMark = e.rankMark[:nr]
	for _, lane := range e.lanes {
		for len(lane.fwdOut) < nr {
			lane.fwdOut = append(lane.fwdOut, 0)
		}
	}
	for _, co := range e.cohorts {
		for len(co.byRank) < nr {
			co.byRank = append(co.byRank, nil)
		}
	}
	if e.wb != nil {
		for len(e.wb.byRank) < nr {
			e.wb.byRank = append(e.wb.byRank, nil)
		}
		for len(e.wb.rankRounds) < nr {
			e.wb.rankRounds = append(e.wb.rankRounds, 0)
		}
	}
	if tn := e.c.tn; tn != nil {
		nt := tn.N()
		for _, lane := range e.lanes {
			if lane.tnServed == nil {
				lane.tnServed = make([]int64, nt)
				lane.tlat = make([]metrics.LatencyShard, nt)
			}
		}
	}
}

// serveTick runs the serve phase of one tick: gating and credit
// accrual, the routing/serve rounds, latency merge, and job-completion
// sweep. It replaces the old serial perm-ordered client loop.
func (e *engine) serveTick(tick, epoch int64) {
	if e.wb != nil {
		e.serveTickWB(tick, epoch)
		return
	}
	c := e.c
	e.ensure()
	e.tick, e.epoch = tick, epoch

	// Pre-phase (serial, client ID order): gating exactly as the old
	// per-client step — done/not-started, retry backoff, data debt —
	// then credit accrual for everyone who participates.
	anyActive := false
	for i, cl := range c.clients {
		e.participated[i] = false
		e.credit[i] = 0
		if cl.Done() || tick < cl.StartTick() {
			continue
		}
		if !cl.RetryReady(tick) {
			continue // backing off after failures against a down rank
		}
		if cl.Debt() > 0 {
			cl.PayDebt(c.osds.Consume(cl.Debt()))
			if cl.Debt() > 0 {
				continue // still blocked on the data path
			}
		}
		n := cl.AccrueCredit()
		e.participated[i] = true
		if n > 0 && !cl.Idle() {
			e.credit[i] = int64(n)
			anyActive = true
		}
	}

	if anyActive {
		// Shuffle the per-tick orders: the cohort processing order from
		// the cluster stream (serial), each cohort's member order from
		// its own stream (parallel, cohort-owned).
		c.rand.ShuffleInts(e.cohortOrder)
		runParallel(e.workers, len(e.cohorts), e.beginTickFn)
		for i := range e.blocked {
			e.blocked[i] = false
		}
		// The tick's serve-budget pools, drawn down by admission. One
		// pool per tick, not per phase: a client that re-plans after a
		// create competes for what the first phase left.
		for i, s := range c.servers {
			e.avail[i] = int32(s.RemainingBudget())
		}

		for {
			runParallel(e.workers, len(e.cohorts), e.planFn)
			if !e.admit() {
				break
			}
			for r := 0; e.scheduleRound(r); r++ {
				for i, s := range c.servers {
					e.budgetSnap[i] = int32(s.RemainingBudget())
				}
				runParallel(e.workers, len(e.activeRanks), e.serveFn)
				e.applyBarrier(tick)
			}
			if !e.rebuildActive() {
				break
			}
		}
	}

	// End of tick (serial): merge latency shards in rank order (pure
	// integer adds — any order would produce the same bytes, rank order
	// keeps it obviously deterministic), then the completion sweep in
	// client ID order over everyone who participated this tick.
	for _, lane := range e.lanes {
		if lane.lat.Dirty() {
			c.rec.MergeLatencyShard(&lane.lat)
		}
	}
	e.mergeTenantShards()
	for i, cl := range c.clients {
		if e.participated[i] && cl.MaybeFinish(tick) {
			c.doneN++
			c.rec.AddJCT(tick)
			if c.tn != nil {
				c.rec.AddTenantJCT(cl.Tenant, tick)
			}
		}
	}
}

// mergeTenantShards folds every lane's per-tenant served counts and
// latency shards into the cluster at the serial end of the tick.
// Integer adds in ascending (rank, tenant) order — deterministic at
// any worker count. No-op on single-tenant runs (the lanes never
// allocate tenant shards).
func (e *engine) mergeTenantShards() {
	c := e.c
	if c.tn == nil {
		return
	}
	for _, lane := range e.lanes {
		for t := range lane.tlat {
			if lane.tlat[t].Dirty() {
				c.rec.MergeTenantLatencyShard(t, &lane.tlat[t])
			}
			if n := lane.tnServed[t]; n != 0 {
				c.tnServedTick[t] += n
				lane.tnServed[t] = 0
			}
		}
	}
}

// beginTick builds the cohort's shuffled active list for the tick from
// the members that accrued credit, consuming the cohort stream only
// when the cohort has any such member (so idle cohorts do not advance
// their streams).
func (co *cohort) beginTick(e *engine) {
	co.shuffled = co.shuffled[:0]
	for _, ci := range co.members {
		if e.credit[ci] > 0 {
			co.shuffled = append(co.shuffled, ci)
		}
	}
	if len(co.shuffled) > 1 {
		co.rand.Shuffle(len(co.shuffled), func(i, j int) {
			co.shuffled[i], co.shuffled[j] = co.shuffled[j], co.shuffled[i]
		})
	}
	co.active = co.active[:0]
	co.active = append(co.active, co.shuffled...)
}

// resolve returns the entry governing one op: the (cached) governing
// entry of its target, or, for a create of a not-yet-existing name,
// the entry that will govern the child once adopted
// (GoverningChildEntry), so the create is routed to the rank that owns
// its future home. Promised (unadopted) inodes never reach the
// resolver: within a round they are visible only through the owning
// lane's lookaside map.
func (co *cohort) resolve(e *engine, op workload.Op) namespace.Entry {
	target := op.Target
	if op.Kind == workload.OpCreate {
		target = op.Parent.Child(op.Name)
		if target == nil {
			return e.c.part.GoverningChildEntry(op.Parent, namespace.HashName(op.Name))
		}
	}
	if co.res != nil {
		return co.res.Entry(target)
	}
	return e.c.part.GoverningEntry(target)
}

// endsRun reports whether op must be the last of its run: a data-path
// op blocks the client on its debt, and a create from a tree-reading
// stream must be adopted before the stream may draw again (the next
// recorded op can resolve a path through the created inode).
func (e *engine) endsRun(cl *client.Client, op workload.Op) bool {
	if e.c.cfg.DataPath && op.DataSize > 0 {
		return true
	}
	return op.Kind == workload.OpCreate && cl.StreamReadsTree()
}

// plan routes each active client's whole remaining tick: its queued
// ops, bounded by credit, split into runs at authority switches.
// Planning stops after an op whose outcome gates the stream (endsRun);
// the client re-plans in the next phase once the outcome has landed.
func (co *cohort) plan(e *engine, tick int64) {
	co.runs = co.runs[:0]
	co.plans = co.plans[:0]
	co.entBuf = co.entBuf[:0]
	for _, ci := range co.active {
		cl := e.c.clients[ci]
		credit := e.credit[ci]
		start := int32(len(co.runs))
		nRuns := int32(0)
		for k := int64(0); k < credit; k++ {
			op, ok := cl.PeekOp(int(k), tick)
			if !ok {
				break // stream exhausted with an empty queue
			}
			ent := co.resolve(e, op)
			rank := int32(ent.Auth)
			if lt := e.c.lt; lt != nil && lt.Len() != 0 && !op.Kind.IsWrite() {
				// A read on a leased subtree may serve at a lease holder
				// instead of the authority; the run then targets the
				// holder's rank and budget.
				if holders := lt.Holders(ent.Key); len(holders) != 0 && op.Target != nil {
					rank = e.leaseRank(ent, holders, op.Target.Ino)
				}
			}
			if nRuns == 0 || co.runs[start+nRuns-1].rank != rank {
				co.runs = append(co.runs, run{
					client: ci, rank: rank, ent: int32(len(co.entBuf)),
				})
				nRuns++
			}
			co.entBuf = append(co.entBuf, ent)
			co.runs[start+nRuns-1].n++
			if e.endsRun(cl, op) {
				break
			}
		}
		if nRuns > 0 {
			co.plans = append(co.plans, plan{client: ci, start: start, count: nRuns})
		}
	}
}

// admit arbitrates each rank's per-tick serve budget across the
// planned runs, walking the clients in the tick's shuffled order and
// each client's runs in sequence. A client whose run does not fully
// fit is cut there: the run keeps its admitted prefix and the client's
// later runs are dropped (it will stall at the cut, as the serial loop
// stalled a client mid-credit on a saturated rank). Returns false when
// no cohort planned anything.
func (e *engine) admit() bool {
	planned := false
	tn := e.c.tn
	for _, k := range e.cohortOrder {
		co := e.cohorts[k]
		for pi := range co.plans {
			p := &co.plans[pi]
			p.cut = p.count
			planned = true
			for j := int32(0); j < p.count; j++ {
				r := &co.runs[p.start+j]
				if !e.c.servers[r.rank].Up() {
					// A down rank has no budget to arbitrate: the run is
					// admitted whole so its first op takes the stall-down
					// path (backoff, stalled-on-down accounting), exactly
					// as the serial loop checked Up before HasBudget. The
					// client blocks there, so later runs reserve nothing.
					r.adm = r.n
					p.cut = j
					break
				}
				if tn != nil {
					if e.admitTenantRun(tn, p, r, j) {
						break
					}
					continue
				}
				if a := e.avail[r.rank]; a < r.n {
					r.adm = a
					e.avail[r.rank] = 0
					p.cut = j
					break
				}
				r.adm = r.n
				e.avail[r.rank] -= r.n
			}
		}
	}
	return planned
}

// admitTenantRun arbitrates one planned run with tenant QoS on: the
// run is charged to its owner's token bucket BEFORE the rank pool, so
// an over-quota tenant is throttled at admission no matter how much
// rank budget is free. Reports whether the plan was cut at this run
// (bucket throttle or pool shortfall).
//
// With uncontended buckets (grant always == r.n) the arithmetic below
// reduces exactly to the QoS-off branch — adm == a zeroes the pool on
// a shortfall, full grants drain it by r.n — which is what keeps an
// idle QoS attachment byte-identical to no attachment.
func (e *engine) admitTenantRun(tn *tenant.Manager, p *plan, r *run, j int32) bool {
	t := e.c.clients[r.client].Tenant
	grant := int32(tn.Take(t, int(r.n)))
	adm := grant
	if a := e.avail[r.rank]; a < adm {
		// The pool cannot cover the bucket grant: hand the uncovered
		// tokens back (a pool stall is not a quota spend) and record
		// the shortfall as SLO debt — the tenant had quota but the
		// cluster had no capacity.
		tn.Refund(t, int(adm-a))
		tn.NoteStalled(t, int(adm-a))
		adm = a
	}
	e.avail[r.rank] -= adm
	r.adm = adm
	tn.NoteAdmitted(t, int(adm))
	e.c.tnAdmittedTick += int64(adm)
	if grant < r.n {
		// Bucket throttle: the quota denied the run's tail. The rank
		// pool is NOT zeroed — other tenants may still draw from it —
		// and the client takes the ordinary admission-cut stall at the
		// granted prefix.
		tn.NoteThrottled(t, int(r.n-grant))
		p.cut = j
		return true
	}
	if adm < r.n {
		p.cut = j
		return true
	}
	return false
}

// scheduleRound buckets every surviving client's r-th planned run into
// its cohort's per-rank lists and collects the union of target ranks
// in ascending order. It returns false when the round is empty (the
// phase is over).
func (e *engine) scheduleRound(r int) bool {
	e.roundSeq++
	any := false
	rr := int32(r)
	for _, co := range e.cohorts {
		for _, t := range co.touched {
			co.byRank[t] = co.byRank[t][:0]
		}
		co.touched = co.touched[:0]
		for pi := range co.plans {
			p := &co.plans[pi]
			if rr >= p.count || rr > p.cut || e.blocked[p.client] {
				continue
			}
			ri := p.start + rr
			rank := co.runs[ri].rank
			if len(co.byRank[rank]) == 0 {
				co.touched = append(co.touched, rank)
			}
			co.byRank[rank] = append(co.byRank[rank], ri)
			e.rankMark[rank] = e.roundSeq
			any = true
		}
	}
	if !any {
		return false
	}
	e.activeRanks = e.activeRanks[:0]
	for rank := range e.rankMark {
		if e.rankMark[rank] == e.roundSeq {
			e.activeRanks = append(e.activeRanks, rank)
		}
	}
	return true
}

// leaseRank picks the rank that serves a read on a leased subtree: the
// target's inode number indexes uniformly into the live candidates
// (the primary plus the lease holders, in that fixed order), so a
// storm's reads spread evenly and every inode sticks to exactly one
// replica while the holder set is stable. Inode-sticky — not
// client-sticky — is load-bearing for the parallel engine: the serve
// path touches per-inode access state (trace.RecordNoVisit mutates
// Hot), and routing all reads of an inode to one rank keeps that state
// single-writer within a tick. Routing on last-epoch loads instead
// oscillates: the loads are a full epoch stale, so whichever rank
// looked idle at epoch close absorbs the entire next epoch's stream
// and the roles flip every epoch. The uniform spread is stable, keeps
// every candidate under demand/n, and is a pure function of (entry,
// holders, inode) — no shared mutable reads — so it is identical at
// every worker count.
func (e *engine) leaseRank(ent namespace.Entry, holders []namespace.MDSID, ino namespace.Ino) int32 {
	c := e.c
	var cands [8]namespace.MDSID
	n := 0
	add := func(r namespace.MDSID) {
		if n < len(cands) && int(r) < len(c.servers) && c.servers[r].Up() {
			cands[n] = r
			n++
		}
	}
	add(ent.Auth)
	for _, h := range holders {
		if h != ent.Auth {
			add(h)
		}
	}
	if n == 0 {
		return int32(ent.Auth)
	}
	return int32(cands[ino%namespace.Ino(n)])
}

// rebuildActive keeps, for the next planning phase, the clients that
// finished their whole plan cleanly and still hold credit (a plan ends
// early at a stream-gating op, so there may be more tick to route).
// Order within each cohort is preserved from the tick shuffle.
func (e *engine) rebuildActive() bool {
	any := false
	for _, co := range e.cohorts {
		co.nextAct = co.nextAct[:0]
		for _, p := range co.plans {
			ci := p.client
			if e.blocked[ci] || e.credit[ci] <= 0 || e.c.clients[ci].Idle() {
				continue
			}
			co.nextAct = append(co.nextAct, ci)
		}
		co.active, co.nextAct = co.nextAct, co.active
		any = any || len(co.active) > 0
	}
	return any
}

// serveRank executes one rank lane for the round: it serves the runs
// routed to this rank, in tick cohort order and intra-cohort routed
// order, buffering every cross-rank effect in the lane.
func (e *engine) serveRank(rank int, tick, epoch int64) {
	c := e.c
	lane := e.lanes[rank]
	auth := c.servers[rank]
	for _, k := range e.cohortOrder {
		co := e.cohorts[k]
		runs := co.byRank[rank]
		if len(runs) == 0 {
			continue
		}
		for _, ri := range runs {
			r := co.runs[ri]
			cl := c.clients[r.client]
			ents := co.entBuf[r.ent : r.ent+r.n]
			served, blocked := int32(0), false
			for served < r.adm {
				op, _ := cl.PeekOp(0, tick)
				st, downRank := e.execOp(lane, auth, cl, op, ents[served], epoch)
				if st == execStallDown {
					lane.downN++
					cl.RetainBackoff(tick, downRank)
					if c.bus.Enabled(obs.EvBackoffEnter) {
						f := obs.AcquireF()
						f["client"], f["backoff"], f["retry_at"] = cl.ID, cl.Backoff(), tick+cl.Backoff()
						lane.events = append(lane.events, obs.Event{Tick: tick, Type: obs.EvBackoffEnter, Fields: f})
					}
					blocked = true
					break
				}
				if st == execStall {
					cl.Retain()
					blocked = true
					break
				}
				if cl.Backoff() > 0 && c.bus.Enabled(obs.EvBackoffExit) {
					// The op that was backing off finally served: the
					// client leaves the backoff regime.
					f := obs.AcquireF()
					f["client"], f["reason"] = cl.ID, "served"
					lane.events = append(lane.events, obs.Event{Tick: tick, Type: obs.EvBackoffExit, Fields: f})
				}
				lat := cl.CompleteOp(tick)
				lane.lat.Add(lat)
				if lane.tnServed != nil {
					lane.tnServed[cl.Tenant]++
					lane.tlat[cl.Tenant].Add(lat)
					auth.AddTenantHeat(ents[served].Key, cl.Tenant, 1)
				}
				served++
				e.credit[r.client]--
				if c.cfg.DataPath && op.DataSize > 0 {
					// The data transfer blocks the client until paid; the
					// debt is paid (OSD pool access is serial) at the
					// barrier, which re-activates the client on success.
					cl.AddDebt(op.DataSize)
					lane.debtors = append(lane.debtors, r.client)
					blocked = true
					break
				}
			}
			if !blocked && served < r.n {
				// The admission cut: the rank's tick budget was reserved
				// ahead of this op. Stall here exactly as the old loop
				// stalled a client mid-credit on a saturated rank.
				lane.noteStall(lane.rank)
				cl.Retain()
				blocked = true
			}
			if blocked {
				e.blocked[r.client] = true
			}
		}
	}
}

// execOp attempts one op against its authoritative rank, mirroring the
// old serial execute() but with every cross-rank write buffered:
// relay-budget admission reads the round-start snapshot and the
// charges land at the barrier; creates produce promised inodes adopted
// at the barrier.
func (e *engine) execOp(lane *rankLane, auth *mds.Server, cl *client.Client,
	op workload.Op, entry namespace.Entry, epoch int64) (execStatus, namespace.MDSID) {
	c := e.c
	target := op.Target
	if op.Kind == workload.OpCreate {
		target = op.Parent.Child(op.Name)
		if target == nil {
			key := createKey{parent: op.Parent.Ino, name: op.Name}
			if p := lane.aside[key]; p != nil {
				// Another client already promised this name this round:
				// the create acts on the (about-to-exist) inode.
				target = p
			} else {
				in, err := lane.arena.NewFile(op.Parent, op.Name, op.Size)
				if err != nil {
					// Invalid name: treat as served. No MDS serves the
					// op, so count it for the auditor's ops-conservation
					// reconciliation.
					lane.racedN++
					return execOK, 0
				}
				lane.aside[key] = in
				lane.creates = append(lane.creates, in)
				target = in
			}
		}
	}
	if !auth.Up() {
		lane.noteStall(lane.rank)
		return execStallDown, lane.rank
	}
	if c.migrator.IsFrozen(entry.Key) {
		lane.noteStall(lane.rank)
		return execStall, 0
	}
	if !auth.HasBudget() {
		lane.noteStall(lane.rank)
		return execStall, 0
	}
	write := op.Kind.IsWrite()
	if lane.rank != entry.Auth {
		// Lease serve: the plan phase routed this read to a
		// non-authoritative lease holder, which serves it from its
		// replica — no client-cache or relay work (the client holds the
		// lease grant; reads resolve to the holder directly).
		e.serve(lane, auth, entry, target, epoch, false)
		lane.leaseN++
		return execOK, 0
	}
	cached, ok := cl.CacheLookup(entry.Key)
	if ok && cached == entry.Auth {
		e.serve(lane, auth, entry, target, epoch, write)
		e.noteWrite(lane, entry.Key, write)
		return execOK, 0
	}
	// Cache miss or stale mapping: the request relays along the
	// authority chain. Relay admission is against the round-start
	// budget snapshot; the charges are buffered and applied in rank
	// order at the barrier.
	chain, _ := c.part.ResolveChainInto(lane.chain, target)
	lane.chain = chain[:0]
	for _, h := range chain[:len(chain)-1] {
		if !c.servers[h].Up() {
			lane.noteStall(h)
			return execStallDown, h
		}
		if e.budgetSnap[h] <= 0 {
			lane.noteStall(h)
			return execStall, 0
		}
	}
	for _, h := range chain[:len(chain)-1] {
		if lane.fwdOut[h] == 0 {
			lane.fwdTch = append(lane.fwdTch, int32(h))
		}
		lane.fwdOut[h]++
	}
	lane.fwdN += int64(len(chain) - 1)
	e.serve(lane, auth, entry, target, epoch, write)
	e.noteWrite(lane, entry.Key, write)
	cl.CacheStore(entry.Key, entry.Auth)
	return execOK, 0
}

// serve records one access on the serving rank (the authority, or a
// lease holder for lease-served reads), deferring the first-visit
// ancestor walk to the barrier (it writes shared ancestor counters).
func (e *engine) serve(lane *rankLane, auth *mds.Server, entry namespace.Entry,
	in *namespace.Inode, epoch int64, write bool) {
	// Cannot fail: HasBudget was checked by the caller and only this
	// lane drains this server's budget mid-round.
	_, first := auth.ServeDeferVisit(entry, in, epoch, write)
	if first {
		lane.visits = append(lane.visits, in)
	}
}

// noteWrite buffers a lease revoke when a write just served against a
// leased subtree; the barrier applies it. Reads and unleased subtrees
// cost one branch.
func (e *engine) noteWrite(lane *rankLane, key namespace.FragKey, write bool) {
	if write && e.c.lt != nil && e.c.lt.Has(key) {
		lane.revokes = append(lane.revokes, key)
	}
}

// noteStall buffers one stall note against a rank (applied at the
// barrier; the per-rank slices are sized lazily because stalls are off
// the hot path).
func (lane *rankLane) noteStall(r namespace.MDSID) {
	if len(lane.stalls) <= int(r) {
		lane.stalls = append(lane.stalls, make([]int64, int(r)+1-len(lane.stalls))...)
	}
	if lane.stalls[r] == 0 {
		lane.stallT = append(lane.stallT, int32(r))
	}
	lane.stalls[r]++
}

// applyBarrier applies every lane's buffered effects in ascending rank
// order and pays data-path debtors (unblocking a debtor whose debt
// cleared, so it can re-plan in the next phase).
func (e *engine) applyBarrier(tick int64) {
	c := e.c
	for _, r := range e.activeRanks {
		lane := e.lanes[r]
		if e.wb != nil {
			// Write-back lanes promise creates probe-free; duplicate
			// (parent, name) slots are decided here, in rank order.
			for _, in := range lane.creates {
				if _, ok := c.tree.AdoptOrExisting(in); !ok {
					lane.racedN++
				}
			}
		} else {
			for _, in := range lane.creates {
				c.tree.Adopt(in)
			}
		}
		lane.creates = lane.creates[:0]
		if len(lane.aside) > 0 {
			clear(lane.aside)
		}
		for _, in := range lane.visits {
			in.MarkVisited()
		}
		lane.visits = lane.visits[:0]
		for _, h := range lane.fwdTch {
			c.servers[h].AddForwardCharges(int(lane.fwdOut[h]))
			lane.fwdOut[h] = 0
		}
		lane.fwdTch = lane.fwdTch[:0]
		for _, h := range lane.stallT {
			c.servers[h].AddStalls(lane.stalls[h])
			lane.stalls[h] = 0
		}
		lane.stallT = lane.stallT[:0]
		c.forwards += lane.fwdN
		c.stalledDown += lane.downN
		c.racedCreates += lane.racedN
		c.leaseServes += lane.leaseN
		lane.fwdN, lane.downN, lane.racedN, lane.leaseN = 0, 0, 0, 0
		for _, k := range lane.revokes {
			c.revokeLease(k, "write")
		}
		lane.revokes = lane.revokes[:0]
		if lane.batchCommits != 0 {
			c.rec.AddBatchCommits(lane.batchCommits)
			lane.batchCommits = 0
		}
		for _, ev := range lane.events {
			c.bus.EmitPooled(ev)
		}
		lane.events = lane.events[:0]
		for _, ci := range lane.debtors {
			cl := c.clients[ci]
			cl.PayDebt(c.osds.Consume(cl.Debt()))
			if cl.Debt() == 0 && e.credit[ci] > 0 {
				e.blocked[ci] = false
			}
		}
		lane.debtors = lane.debtors[:0]
	}
}
