package cluster

import (
	"fmt"
	"testing"

	"repro/internal/balancer"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestBalancerWorkloadMatrix runs every balancer against every
// workload at tiny scale and checks the universal invariants: the run
// completes, no operations are lost, governed subtree sizes stay
// consistent, and the JCT count matches the client count.
func TestBalancerWorkloadMatrix(t *testing.T) {
	balancers := map[string]func() balancer.Balancer{
		"vanilla":     func() balancer.Balancer { return balancer.NewVanilla() },
		"greedyspill": func() balancer.Balancer { return balancer.NewGreedySpill() },
		"dirhash":     func() balancer.Balancer { return balancer.NewDirHash() },
		"light":       func() balancer.Balancer { return core.NewLight() },
		"lunule":      func() balancer.Balancer { return core.NewDefault() },
	}
	workloads := map[string]func() workload.Generator{
		"cnn": func() workload.Generator {
			return workload.NewCNN(workload.CNNConfig{Dirs: 20, FilesPerDir: 8})
		},
		"nlp": func() workload.Generator {
			return workload.NewNLP(workload.NLPConfig{Dirs: 6, FilesPerDir: 40})
		},
		"web": func() workload.Generator {
			return workload.NewWeb(workload.WebConfig{Files: 600, RequestsPerClient: 1500})
		},
		"zipf": func() workload.Generator {
			return workload.NewZipf(workload.ZipfConfig{FilesPerClient: 100, OpsPerClient: 2500})
		},
		"md": func() workload.Generator {
			return workload.NewMD(workload.MDConfig{CreatesPerClient: 1200})
		},
		"mdshared": func() workload.Generator {
			return workload.NewMDShared(workload.MDSharedConfig{CreatesPerClient: 1200})
		},
	}
	for bName, mkB := range balancers {
		for wName, mkW := range workloads {
			t.Run(fmt.Sprintf("%s/%s", bName, wName), func(t *testing.T) {
				c, err := New(Config{
					Balancer: mkB(),
					Workload: mkW(),
					Clients:  8,
					Seed:     17,
				})
				if err != nil {
					t.Fatal(err)
				}
				c.RunUntilDone(8000)
				if !c.Done() {
					t.Fatal("run did not complete")
				}
				var clientOps, served int64
				for _, cl := range c.Clients() {
					clientOps += cl.OpsDone()
				}
				for _, s := range c.Servers() {
					served += s.OpsTotal()
				}
				if clientOps != served {
					t.Fatalf("ops lost: clients %d vs served %d", clientOps, served)
				}
				total := 0
				for _, sz := range c.Partition().SubtreeSizes() {
					if sz < 0 {
						t.Fatal("negative governed size")
					}
					total += sz
				}
				if total != c.Tree().NumInodes() {
					t.Fatalf("partition accounts %d of %d inodes", total, c.Tree().NumInodes())
				}
				if len(c.Metrics().JCT) != 8 {
					t.Fatalf("JCT count = %d", len(c.Metrics().JCT))
				}
			})
		}
	}
}

func TestPinPath(t *testing.T) {
	c := newTestCluster(t, Config{})
	if err := c.PinPath("/zipf/client000", 3); err != nil {
		t.Fatal(err)
	}
	dir, _ := c.Tree().Lookup("/zipf/client000")
	if c.Partition().AuthOf(dir.Children()[0]) != 3 {
		t.Fatal("pinned subtree not on the requested rank")
	}
	if err := c.PinPath("/nope", 0); err == nil {
		t.Fatal("pinning a missing path must error")
	}
	if err := c.PinPath("/zipf/client000", 99); err == nil {
		t.Fatal("pinning to an invalid rank must error")
	}
	if err := c.PinPath("/zipf/client000/file00000", 0); err == nil {
		t.Fatal("pinning a file must error")
	}
}
