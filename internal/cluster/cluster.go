// Package cluster wires the simulator together: it builds the
// namespace, the MDS servers, the migration engine, the clients, and a
// balancer, then advances the whole system tick by tick (one tick = one
// second; the balancer runs every epoch, ten ticks by default, as in
// the paper). It also implements the cluster dynamics the evaluation
// exercises: MDS addition at runtime and staged client growth.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/balancer"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/namespace"
	"repro/internal/osd"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config describes one simulated deployment.
type Config struct {
	// MDS is the initial number of metadata servers.
	MDS int
	// Capacity is each MDS's maximum metadata ops per tick (the
	// paper's C, in IOPS since a tick is one second).
	Capacity int
	// PerMDSCapacity optionally overrides Capacity per rank
	// (heterogeneous hardware; the IF model still assumes the uniform
	// C — the paper calls handling heterogeneity orthogonal, and the
	// "hetero" experiment measures what that assumption costs).
	PerMDSCapacity []int
	// EpochTicks is the balancing epoch length (paper default: 10 s).
	EpochTicks int
	// MigrationRate is how many inodes an exporter ships per tick.
	MigrationRate int
	// MaxActiveExports bounds concurrent exports per exporter.
	MaxActiveExports int
	// QueueTTLTicks expires queued (unstarted) export tasks.
	QueueTTLTicks int64
	// ExportLatencyTicks is the fixed two-phase-commit floor cost of
	// one export, regardless of subtree size.
	ExportLatencyTicks int64
	// HeatDecay is the per-epoch popularity decay (CephFS-style).
	HeatDecay float64
	// HistoryWindows is the trace collector depth (cutting windows).
	HistoryWindows int
	// Clients is the number of workload clients.
	Clients int
	// ClientRate is the base ops per tick per client.
	ClientRate float64
	// DataPath enables the OSD data path (end-to-end experiments).
	DataPath bool
	// OSDs is the data pool size when DataPath is on.
	OSDs int
	// OSDBandwidth is bytes per tick per OSD.
	OSDBandwidth int64
	// Seed drives all randomness in the run.
	Seed uint64
	// Balancer is the policy under test.
	Balancer balancer.Balancer
	// Workload generates the namespace and the client op streams.
	Workload workload.Generator
}

func (c *Config) defaults() {
	if c.MDS == 0 {
		c.MDS = 5
	}
	if c.Capacity == 0 {
		c.Capacity = 2000
	}
	if c.EpochTicks == 0 {
		c.EpochTicks = 10
	}
	if c.MigrationRate == 0 {
		c.MigrationRate = 2000
	}
	if c.MaxActiveExports == 0 {
		c.MaxActiveExports = 2
	}
	if c.QueueTTLTicks == 0 {
		c.QueueTTLTicks = 20
	}
	if c.ExportLatencyTicks == 0 {
		c.ExportLatencyTicks = 4
	}
	if c.HeatDecay == 0 {
		// Slow decay: the accumulated popularity counter the paper
		// criticizes — heat keeps ranking already-scanned (dead)
		// subtrees above the live scan front for minutes.
		c.HeatDecay = 0.97
	}
	if c.HistoryWindows == 0 {
		c.HistoryWindows = 6
	}
	if c.Clients == 0 {
		c.Clients = 40
	}
	if c.ClientRate == 0 {
		c.ClientRate = 150
	}
	if c.OSDs == 0 {
		c.OSDs = 6
	}
	if c.OSDBandwidth == 0 {
		c.OSDBandwidth = 64 << 20 // 64 MB per OSD per tick
	}
}

// Cluster is one live simulation.
type Cluster struct {
	cfg Config

	tree     *namespace.Tree
	part     *namespace.Partition
	servers  []*mds.Server
	migrator *mds.Migrator
	clients  []*client.Client
	osds     *osd.Pool
	ledger   *msg.Ledger
	rand     *rng.Source
	rec      *metrics.Recorder

	tick     int64
	forwards int64
	doneN    int

	// events holds scheduled cluster mutations (MDS additions,
	// capacity changes), fired at the top of their tick in submission
	// order.
	events sim.Queue
}

// New builds a cluster per cfg, including the workload's namespace and
// client streams.
func New(cfg Config) (*Cluster, error) {
	cfg.defaults()
	if cfg.Balancer == nil {
		return nil, errors.New("cluster: config requires a balancer")
	}
	if cfg.Workload == nil {
		return nil, errors.New("cluster: config requires a workload")
	}
	tree := namespace.NewTree()
	part := namespace.NewPartition(tree, 0)
	src := rng.New(cfg.Seed)

	specs, err := cfg.Workload.Setup(tree, cfg.Clients, src.Fork(1))
	if err != nil {
		return nil, fmt.Errorf("cluster: workload setup: %w", err)
	}

	cl := &Cluster{
		cfg:    cfg,
		tree:   tree,
		part:   part,
		osds:   osd.NewPool(cfg.OSDs, cfg.OSDBandwidth),
		ledger: msg.NewLedger(cfg.MDS),
		rand:   src.Fork(2),
		rec:    metrics.NewRecorder(cfg.MDS),
	}
	for i := 0; i < cfg.MDS; i++ {
		capacity := cfg.Capacity
		if i < len(cfg.PerMDSCapacity) && cfg.PerMDSCapacity[i] > 0 {
			capacity = cfg.PerMDSCapacity[i]
		}
		cl.servers = append(cl.servers,
			mds.NewServer(namespace.MDSID(i), capacity, cfg.HistoryWindows, cfg.HeatDecay))
	}
	cl.migrator = mds.NewMigrator(part, cfg.MigrationRate, cfg.MaxActiveExports, cfg.QueueTTLTicks)
	cl.migrator.MinTicks = cfg.ExportLatencyTicks
	cl.migrator.OnComplete(func(t *mds.ExportTask) {
		if int(t.From) < len(cl.servers) {
			cl.servers[t.From].DropSubtreeStats(t.Key)
		}
	})
	for i, sp := range specs {
		cl.clients = append(cl.clients, client.New(i, sp, cfg.ClientRate))
	}
	return cl, nil
}

// Tree returns the namespace.
func (c *Cluster) Tree() *namespace.Tree { return c.tree }

// Partition returns the live subtree partition.
func (c *Cluster) Partition() *namespace.Partition { return c.part }

// Migrator returns the migration engine.
func (c *Cluster) Migrator() *mds.Migrator { return c.migrator }

// Servers returns the MDS servers (shared slice; do not modify).
func (c *Cluster) Servers() []*mds.Server { return c.servers }

// Clients returns the clients (shared slice; do not modify).
func (c *Cluster) Clients() []*client.Client { return c.clients }

// Metrics returns the run's recorder.
func (c *Cluster) Metrics() *metrics.Recorder { return c.rec }

// Ledger returns the control-plane message ledger.
func (c *Cluster) Ledger() *msg.Ledger { return c.ledger }

// Tick returns the current simulation tick.
func (c *Cluster) Tick() int64 { return c.tick }

// Done reports whether every client has finished.
func (c *Cluster) Done() bool { return c.doneN == len(c.clients) }

// ScheduleAddMDS arranges for n more MDSs to join at the given tick
// (the Figure 12(a) expansion experiment).
func (c *Cluster) ScheduleAddMDS(tick int64, n int) {
	c.events.Schedule(tick, func() {
		for i := 0; i < n; i++ {
			c.AddMDS()
		}
	})
}

// PinPath statically pins the subtree rooted at the directory path to
// the given MDS rank — CephFS's manual subtree pinning
// (ceph.dir.pin). Pinned subtrees still migrate if a balancer chooses
// to move them; combine with a passive balancer for fully static
// placement.
func (c *Cluster) PinPath(path string, rank int) error {
	if rank < 0 || rank >= len(c.servers) {
		return fmt.Errorf("cluster: pin rank %d out of range [0,%d)", rank, len(c.servers))
	}
	dir, err := c.tree.Lookup(path)
	if err != nil {
		return fmt.Errorf("cluster: pin %q: %w", path, err)
	}
	if !dir.IsDir {
		return fmt.Errorf("cluster: pin %q: not a directory", path)
	}
	e := c.part.Carve(dir)
	c.part.SetAuth(e.Key, namespace.MDSID(rank))
	return nil
}

// ScheduleCapacity arranges for the given rank's capacity to change at
// the given tick (degradation/failure injection: a slow disk, a noisy
// neighbour, a partial failure).
func (c *Cluster) ScheduleCapacity(tick int64, rank, capacity int) {
	c.events.Schedule(tick, func() {
		if rank >= 0 && rank < len(c.servers) {
			c.servers[rank].SetCapacity(capacity)
		}
	})
}

// AddMDS immediately grows the cluster by one server and returns it.
func (c *Cluster) AddMDS() *mds.Server {
	id := namespace.MDSID(len(c.servers))
	s := mds.NewServer(id, c.cfg.Capacity, c.cfg.HistoryWindows, c.cfg.HeatDecay)
	c.servers = append(c.servers, s)
	c.ledger.Grow(len(c.servers))
	c.rec.GrowMDS(len(c.servers))
	return s
}

// Step advances the simulation one tick.
func (c *Cluster) Step() {
	tick := c.tick
	epoch := tick / int64(c.cfg.EpochTicks)

	c.events.RunDue(tick)

	for _, s := range c.servers {
		s.BeginTick()
	}
	if c.cfg.DataPath {
		c.osds.BeginTick()
	}
	c.migrator.Tick(tick)

	for _, ci := range c.rand.Perm(len(c.clients)) {
		c.stepClient(c.clients[ci], tick, epoch)
	}

	perMDS := make([]int, len(c.servers))
	for i, s := range c.servers {
		perMDS[i] = s.OpsThisTick()
	}
	c.rec.SampleTick(tick, perMDS, c.migrator.MigratedInodes(), c.forwards)

	if (tick+1)%int64(c.cfg.EpochTicks) == 0 {
		c.endEpoch(tick, epoch)
	}
	c.tick++
}

func (c *Cluster) stepClient(cl *client.Client, tick, epoch int64) {
	if cl.Done() || tick < cl.StartTick() {
		return
	}
	if cl.Debt() > 0 {
		cl.PayDebt(c.osds.Consume(cl.Debt()))
		if cl.Debt() > 0 {
			return // still blocked on the data path
		}
	}
	n := cl.AccrueCredit()
	for i := 0; i < n; i++ {
		op, ok := cl.NextOp(tick)
		if !ok {
			break
		}
		if !c.execute(cl, op, epoch) {
			cl.Retain()
			return
		}
		c.rec.AddLatency(cl.CompleteOp(tick))
		if c.cfg.DataPath && op.DataSize > 0 {
			cl.AddDebt(op.DataSize)
			cl.PayDebt(c.osds.Consume(cl.Debt()))
			if cl.Debt() > 0 {
				break // blocked on the data path until paid off
			}
		}
	}
	if cl.MaybeFinish(tick) {
		c.doneN++
		c.rec.AddJCT(tick)
	}
}

// execute serves one metadata op for the given client. With a valid
// authority-cache entry the client contacts the authoritative MDS
// directly; otherwise the request traverses the authority chain,
// charging one forwarding unit at every relay hop (how CephFS resolves
// unknown or stale subtree mappings). It returns false when the op must
// stall (saturated or frozen target).
func (c *Cluster) execute(cl *client.Client, op workload.Op, epoch int64) bool {
	target := op.Target
	if op.Kind == workload.OpCreate {
		target = op.Parent.Child(op.Name)
		if target == nil {
			in, err := c.tree.Create(op.Parent, op.Name, op.Size)
			if err != nil {
				// Name raced into existence or invalid: treat as served.
				return true
			}
			target = in
		}
	}
	chain, entry := c.part.ResolveChain(target)
	auth := c.servers[entry.Auth]
	if c.migrator.IsFrozen(entry.Key) {
		auth.NoteStall()
		return false
	}
	if !auth.HasBudget() {
		auth.NoteStall()
		return false
	}
	cached, ok := cl.CacheLookup(entry.Key)
	if ok && cached == entry.Auth {
		auth.Serve(entry, target, epoch)
		return true
	}
	// Cache miss or stale mapping: the request relays along the chain.
	for _, h := range chain[:len(chain)-1] {
		if !c.servers[h].HasBudget() {
			c.servers[h].NoteStall()
			return false
		}
	}
	for _, h := range chain[:len(chain)-1] {
		c.servers[h].ConsumeForward()
	}
	auth.Serve(entry, target, epoch)
	c.forwards += int64(len(chain) - 1)
	cl.CacheStore(entry.Key, entry.Auth)
	return true
}

func (c *Cluster) endEpoch(tick, epoch int64) {
	loads := make([]float64, len(c.servers))
	for i, s := range c.servers {
		loads[i] = s.EndEpoch(c.cfg.EpochTicks)
	}
	res := core.IFModel{}.Compute(loads, float64(c.cfg.Capacity))
	c.rec.SampleEpoch(tick, res.IF, res.CoV)
	c.cfg.Balancer.Rebalance(&view{c: c, epoch: epoch})
}

// Run advances the simulation by the given number of ticks.
func (c *Cluster) Run(ticks int64) {
	for i := int64(0); i < ticks; i++ {
		c.Step()
	}
}

// RunUntilDone advances until every client finishes or maxTicks pass.
// It returns the tick at which it stopped.
func (c *Cluster) RunUntilDone(maxTicks int64) int64 {
	for c.tick < maxTicks && !c.Done() {
		c.Step()
	}
	return c.tick
}

// view adapts Cluster to balancer.View.
type view struct {
	c     *Cluster
	epoch int64
}

func (v *view) Tick() int64                           { return v.c.tick }
func (v *view) Epoch() int64                          { return v.epoch }
func (v *view) EpochTicks() int                       { return v.c.cfg.EpochTicks }
func (v *view) NumMDS() int                           { return len(v.c.servers) }
func (v *view) Server(id namespace.MDSID) *mds.Server { return v.c.servers[id] }
func (v *view) Partition() *namespace.Partition       { return v.c.part }
func (v *view) Migrator() *mds.Migrator               { return v.c.migrator }
func (v *view) Capacity() float64                     { return float64(v.c.cfg.Capacity) }
func (v *view) HeatDecay() float64                    { return v.c.cfg.HeatDecay }
func (v *view) Rand() *rng.Source                     { return v.c.rand }
func (v *view) Ledger() *msg.Ledger                   { return v.c.ledger }
