// Package cluster wires the simulator together: it builds the
// namespace, the MDS servers, the migration engine, the clients, and a
// balancer, then advances the whole system tick by tick (one tick = one
// second; the balancer runs every epoch, ten ticks by default, as in
// the paper). It also implements the cluster dynamics the evaluation
// exercises: MDS addition at runtime and staged client growth.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/audit"
	"repro/internal/balancer"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/elastic"
	"repro/internal/fault"
	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/namespace"
	"repro/internal/obs"
	"repro/internal/osd"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// Config describes one simulated deployment.
type Config struct {
	// MDS is the initial number of metadata servers.
	MDS int
	// Capacity is each MDS's maximum metadata ops per tick (the
	// paper's C, in IOPS since a tick is one second).
	Capacity int
	// PerMDSCapacity optionally overrides Capacity per rank
	// (heterogeneous hardware; the IF model still assumes the uniform
	// C — the paper calls handling heterogeneity orthogonal, and the
	// "hetero" experiment measures what that assumption costs).
	PerMDSCapacity []int
	// EpochTicks is the balancing epoch length (paper default: 10 s).
	EpochTicks int
	// MigrationRate is how many inodes an exporter ships per tick.
	MigrationRate int
	// MaxActiveExports bounds concurrent exports per exporter.
	MaxActiveExports int
	// QueueTTLTicks expires queued (unstarted) export tasks.
	QueueTTLTicks int64
	// ExportLatencyTicks is the fixed two-phase-commit floor cost of
	// one export, regardless of subtree size.
	ExportLatencyTicks int64
	// HeatDecay is the per-epoch popularity decay (CephFS-style).
	HeatDecay float64
	// HistoryWindows is the trace collector depth (cutting windows).
	HistoryWindows int
	// Clients is the number of workload clients.
	Clients int
	// ClientRate is the base ops per tick per client.
	ClientRate float64
	// DataPath enables the OSD data path (end-to-end experiments).
	DataPath bool
	// OSDs is the data pool size when DataPath is on.
	OSDs int
	// OSDBandwidth is bytes per tick per OSD.
	OSDBandwidth int64
	// Seed drives all randomness in the run.
	Seed uint64
	// Balancer is the policy under test.
	Balancer balancer.Balancer
	// Workload generates the namespace and the client op streams.
	Workload workload.Generator
	// RecoveryTicks is the failover latency window: how long after a
	// crash the dead rank's orphaned subtrees stay unowned (requests to
	// them stall) before survivors take them over. It models failure
	// detection plus journal replay (CephFS beacon grace + rejoin).
	RecoveryTicks int
	// Faults optionally scripts MDS crash/recover events for the run.
	Faults *fault.Schedule
	// Bus optionally receives structured trace events for the run
	// (epoch snapshots, migration lifecycle, faults, backoff
	// transitions). nil disables tracing at zero cost; tracing never
	// touches the RNG or tick ordering, so the same seed produces the
	// same run with tracing on or off.
	Bus *obs.Bus
	// DisableResolveCache turns off the version-cached authority
	// resolver and resolves every op with a full ancestor walk. The
	// cache is semantically invisible (it is invalidated by
	// Partition.Version on every mutation), so this knob exists only
	// for the differential tests that prove it.
	DisableResolveCache bool
	// Workers is the worker count for the phased tick engine: how many
	// goroutines execute the routing and serve subphases of each tick
	// (see engine.go). 0 or 1 runs the engine inline on the calling
	// goroutine. The simulated run is byte-identical at every worker
	// count — parallelism changes wall-clock time only — which the
	// differential tests prove the same way the resolve-cache ones do.
	Workers int
	// DisableParallelEngine forces Workers to 1, mirroring
	// DisableResolveCache as an escape hatch: the engine algorithm is
	// identical either way, only the goroutine fan-out is suppressed.
	DisableParallelEngine bool
	// Audit optionally attaches a state auditor that validates
	// cross-module invariants at every epoch close (or every tick; see
	// audit.Options.EveryTick). Like the Bus, nil disables auditing at
	// zero cost, and the auditor is strictly read-only: the same seed
	// produces a byte-identical run with auditing on or off.
	Audit *audit.Auditor
	// Elastic optionally attaches an autoscaler controller. At every
	// epoch close the cluster feeds it a utilization snapshot; ScaleUp
	// decisions add ranks via AddMDS (the same epoch's rebalance then
	// fills them), ScaleDown decisions start a graceful drain (the rank
	// keeps serving while every subtree it governs is bulk-exported,
	// then it is decommissioned and leaves the balancer's view). nil
	// keeps the fixed-size behaviour at zero cost.
	Elastic *elastic.Controller
	// Replication optionally attaches a warm-standby replication
	// manager: every subtree entry gets R−1 standbys following the
	// primary through a shipped ops/heat journal, a crash promotes the
	// best surviving standby PromoteTicks later instead of waiting out
	// the cold RecoveryTicks takeover, and a background re-replicator
	// restores R after losses and drains. nil (the R=1 cluster) keeps
	// the cold-takeover behaviour at zero tick-path cost.
	Replication *replica.Manager
	// Batching enables write-back client batching with server-side
	// group commit (wb.go): clients buffer ops locally, flush them in
	// per-rank batches, and servers apply a batch through a
	// group-commit journal at one budget unit per BatchSize ops. nil
	// keeps the synchronous per-op path; the degenerate {1,1} setting
	// also runs the sync path (verbatim — the differential tests prove
	// byte-identity).
	Batching *BatchingConfig
	// Tenancy optionally attaches a multi-tenant QoS manager: every
	// client belongs to a tenant (tagged by the workload), admission
	// charges each run or batch to its tenant's token bucket before the
	// rank pool, fairness-aware balancing declines to migrate subtrees
	// hot solely from an over-quota tenant, and per-tenant SLO debt
	// feeds the autoscaler. nil — the default — keeps the single-tenant
	// path at zero cost, and an attached manager whose buckets never
	// run dry produces a byte-identical run (the differential tests
	// prove both).
	Tenancy *tenant.Manager
}

// BatchingConfig shapes the write-back mode.
type BatchingConfig struct {
	// BatchSize is the op count that makes a buffered run flushable and
	// the commit-group granularity on the server (ops per budget unit).
	BatchSize int
	// FlushEvery is the age bound: a run whose oldest op has been
	// buffered this many ticks flushes regardless of size. 1 means
	// every buffered run flushes every tick.
	FlushEvery int64
}

func (c *Config) defaults() {
	if c.MDS == 0 {
		c.MDS = 5
	}
	if c.Capacity == 0 {
		c.Capacity = 2000
	}
	if c.EpochTicks == 0 {
		c.EpochTicks = 10
	}
	if c.MigrationRate == 0 {
		c.MigrationRate = 2000
	}
	if c.MaxActiveExports == 0 {
		c.MaxActiveExports = 2
	}
	if c.QueueTTLTicks == 0 {
		c.QueueTTLTicks = 20
	}
	if c.ExportLatencyTicks == 0 {
		c.ExportLatencyTicks = 4
	}
	if c.HeatDecay == 0 {
		// Slow decay: the accumulated popularity counter the paper
		// criticizes — heat keeps ranking already-scanned (dead)
		// subtrees above the live scan front for minutes.
		c.HeatDecay = 0.97
	}
	if c.HistoryWindows == 0 {
		c.HistoryWindows = 6
	}
	if c.Clients == 0 {
		c.Clients = 40
	}
	if c.ClientRate == 0 {
		c.ClientRate = 150
	}
	if c.OSDs == 0 {
		c.OSDs = 6
	}
	if c.OSDBandwidth == 0 {
		c.OSDBandwidth = 64 << 20 // 64 MB per OSD per tick
	}
	if c.RecoveryTicks < 1 {
		c.RecoveryTicks = 20
	}
}

// Cluster is one live simulation.
type Cluster struct {
	cfg Config

	tree     *namespace.Tree
	part     *namespace.Partition
	resolver *namespace.Resolver // nil when cfg.DisableResolveCache
	servers  []*mds.Server
	migrator *mds.Migrator
	clients  []*client.Client
	osds     *osd.Pool
	ledger   *msg.Ledger
	rand     *rng.Source
	rec      *metrics.Recorder
	bus      *obs.Bus

	tick     int64
	forwards int64
	doneN    int
	// racedCreates counts create ops completed without an MDS serve
	// because the name raced into existence; the auditor's ops-
	// conservation check needs it to reconcile client and server totals.
	racedCreates int64

	auditor *audit.Auditor
	// orphanFn is the Orphaned closure handed to every audit pass,
	// built once so the audited tick loop does not allocate it.
	orphanFn func(namespace.MDSID) bool

	// engine is the phased (optionally parallel) serve engine; see
	// engine.go. It owns all per-tick client/rank scratch.
	engine *engine

	// Reusable per-tick scratch, so the steady-state tick loop does not
	// allocate: the per-MDS op sample and the live-load vector of epoch
	// close.
	perMDSBuf []int
	liveLoads []float64

	// Fault state: which ranks are crashed-and-unreassigned, when each
	// currently-down rank crashed, each down rank's last load reading
	// from before the crash (the takeover's load-share basis — by
	// takeover time the dead rank has recorded only zero-load epochs),
	// and the cumulative fault counters the recorder samples each tick.
	orphaned        map[namespace.MDSID]bool
	crashTick       map[namespace.MDSID]int64
	crashLoad       map[namespace.MDSID]float64
	stalledDown     int64
	recoveryTickSum int64
	capacityClamps  int64

	// Elastic state: the controller (nil = fixed-size cluster), the
	// in-flight drains keyed by rank, the static-pin registry (PinPath
	// records pins here so a drain can explicitly unpin before
	// exporting), and the cumulative counters the experiments report.
	// rankEpochs accumulates live ranks per closed epoch — the
	// "rank-epochs" capacity cost an elastic run is judged by.
	elastic    *elastic.Controller
	draining   map[namespace.MDSID]*drainState
	pins       map[namespace.FragKey]int
	rankEpochs int64
	scaleUps   int64
	drainsDone int64

	// Replication state: the manager (nil = R=1, no replication), the
	// partition version its groups were last reconciled against, the
	// environment closures built once at init, and the cumulative
	// warm-promotion counter.
	rep        *replica.Manager
	repVersion uint64
	repEnv     replica.Env
	promotions int64

	// Tenant QoS state (tenant.go in internal/tenant): the manager
	// (nil = single-tenant, zero tick-path cost), the engine-side
	// independent count of ops admitted this tick across all tenants
	// (the conservation audit reconciles it against the manager's own
	// books), and the per-tick served-per-tenant scratch the serve
	// lanes merge into (the served <= admitted audit reads it).
	tn             *tenant.Manager
	tnAdmittedTick int64
	tnServedTick   []int64

	// Lease state (lease.go): the routing table the engine's plan phase
	// consults (nil = leases off), the manager lease-version it was last
	// rebuilt at, the cumulative lease-served op counter, and the keys
	// write-invalidated during the current tick (reset each Step; the
	// auditor checks they hold zero live leases at tick end).
	lt                *namespace.LeaseTable
	ltVersion         uint64
	leaseServes       int64
	leaseWriteRevoked []namespace.FragKey

	// events holds scheduled cluster mutations (MDS additions,
	// capacity changes, crashes, recoveries), fired at the top of their
	// tick in submission order.
	events sim.Queue
}

// New builds a cluster per cfg, including the workload's namespace and
// client streams.
func New(cfg Config) (*Cluster, error) {
	cfg.defaults()
	if cfg.Balancer == nil {
		return nil, errors.New("cluster: config requires a balancer")
	}
	if bc := cfg.Batching; bc != nil && (bc.BatchSize < 1 || bc.FlushEvery < 1) {
		return nil, errors.New("cluster: batching requires BatchSize >= 1 and FlushEvery >= 1")
	}
	if cfg.Workload == nil {
		return nil, errors.New("cluster: config requires a workload")
	}
	tree := namespace.NewTree()
	part := namespace.NewPartition(tree, 0)
	src := rng.New(cfg.Seed)

	specs, err := cfg.Workload.Setup(tree, cfg.Clients, src.Fork(1))
	if err != nil {
		return nil, fmt.Errorf("cluster: workload setup: %w", err)
	}

	cl := &Cluster{
		cfg:       cfg,
		tree:      tree,
		part:      part,
		osds:      osd.NewPool(cfg.OSDs, cfg.OSDBandwidth),
		ledger:    msg.NewLedger(cfg.MDS),
		rand:      src.Fork(2),
		rec:       metrics.NewRecorder(cfg.MDS),
		bus:       cfg.Bus,
		orphaned:  make(map[namespace.MDSID]bool),
		crashTick: make(map[namespace.MDSID]int64),
		crashLoad: make(map[namespace.MDSID]float64),
		auditor:   cfg.Audit,
		elastic:   cfg.Elastic,
		draining:  make(map[namespace.MDSID]*drainState),
		pins:      make(map[namespace.FragKey]int),
	}
	cl.orphanFn = func(id namespace.MDSID) bool { return cl.orphaned[id] }
	if !cfg.DisableResolveCache {
		cl.resolver = namespace.NewResolver(part)
	}
	for i := 0; i < cfg.MDS; i++ {
		capacity := cfg.Capacity
		if i < len(cfg.PerMDSCapacity) && cfg.PerMDSCapacity[i] > 0 {
			capacity = cfg.PerMDSCapacity[i]
		}
		cl.servers = append(cl.servers,
			mds.NewServer(namespace.MDSID(i), capacity, cfg.HistoryWindows, cfg.HeatDecay))
	}
	cl.migrator = mds.NewMigrator(part, cfg.MigrationRate, cfg.MaxActiveExports, cfg.QueueTTLTicks)
	cl.migrator.MinTicks = cfg.ExportLatencyTicks
	cl.migrator.Bus = cfg.Bus
	if bc, ok := cfg.Balancer.(obs.BusCarrier); ok {
		bc.SetBus(cfg.Bus)
	}
	cl.migrator.OnComplete(func(t *mds.ExportTask) {
		if int(t.From) < len(cl.servers) {
			cl.servers[t.From].DropSubtreeStats(t.Key)
		}
	})
	// A migration endpoint is valid only when it names a live rank; the
	// migrator re-checks this at activation, so tasks planned before a
	// crash never ship a subtree to (or from) a dead server.
	cl.migrator.ValidRank = func(r namespace.MDSID) bool {
		return int(r) < len(cl.servers) && cl.servers[r].Up()
	}
	// The importer side is gated harder: a draining rank is a legal
	// exporter (it is being emptied) but must never receive a subtree,
	// so tasks planned before its drain started drop at activation.
	cl.migrator.ValidImporter = func(r namespace.MDSID) bool {
		return cl.importable(r)
	}
	for i, sp := range specs {
		cl.clients = append(cl.clients, client.New(i, sp, cfg.ClientRate))
	}
	if cfg.Tenancy != nil {
		counts, err := tenantCounts(specs)
		if err != nil {
			return nil, err
		}
		if err := cfg.Tenancy.Bind(counts); err != nil {
			return nil, fmt.Errorf("cluster: tenancy: %w", err)
		}
		cl.tn = cfg.Tenancy
		cl.tnServedTick = make([]int64, cfg.Tenancy.N())
		cl.rec.SetTenants(cfg.Tenancy.N())
		for _, s := range cl.servers {
			s.EnableTenants(cfg.Tenancy.N())
		}
	}
	cl.engine = newEngine(cl, src)
	if cfg.Replication != nil {
		cl.rep = cfg.Replication
		cl.initReplication()
		if cl.leasesEnabled() {
			cl.lt = namespace.NewLeaseTable()
		}
	}
	if cfg.Faults != nil {
		cl.ApplyFaults(*cfg.Faults)
	}
	return cl, nil
}

// tenantCounts derives the per-tenant client populations from the
// workload's spec tags: the highest tenant index sizes the slice, and
// Manager.Bind rejects any tenant left without clients.
func tenantCounts(specs []workload.ClientSpec) ([]int, error) {
	max := 0
	for _, sp := range specs {
		if sp.Tenant < 0 {
			return nil, fmt.Errorf("cluster: client spec tagged with negative tenant %d", sp.Tenant)
		}
		if sp.Tenant > max {
			max = sp.Tenant
		}
	}
	counts := make([]int, max+1)
	for _, sp := range specs {
		counts[sp.Tenant]++
	}
	return counts, nil
}

// Tree returns the namespace.
func (c *Cluster) Tree() *namespace.Tree { return c.tree }

// Partition returns the live subtree partition.
func (c *Cluster) Partition() *namespace.Partition { return c.part }

// Migrator returns the migration engine.
func (c *Cluster) Migrator() *mds.Migrator { return c.migrator }

// Servers returns the MDS servers (shared slice; do not modify).
func (c *Cluster) Servers() []*mds.Server { return c.servers }

// Clients returns the clients (shared slice; do not modify).
func (c *Cluster) Clients() []*client.Client { return c.clients }

// Metrics returns the run's recorder.
func (c *Cluster) Metrics() *metrics.Recorder { return c.rec }

// Ledger returns the control-plane message ledger.
func (c *Cluster) Ledger() *msg.Ledger { return c.ledger }

// Tick returns the current simulation tick.
func (c *Cluster) Tick() int64 { return c.tick }

// Done reports whether every client has finished.
func (c *Cluster) Done() bool { return c.doneN == len(c.clients) }

// ScheduleAddMDS arranges for n more MDSs to join at the given tick
// (the Figure 12(a) expansion experiment).
func (c *Cluster) ScheduleAddMDS(tick int64, n int) {
	c.events.Schedule(tick, func() {
		for i := 0; i < n; i++ {
			c.AddMDS()
		}
	})
}

// PinPath statically pins the subtree rooted at the directory path to
// the given MDS rank — CephFS's manual subtree pinning
// (ceph.dir.pin). Pinned subtrees still migrate if a balancer chooses
// to move them; combine with a passive balancer for fully static
// placement. The pin is recorded so a graceful drain of the rank can
// explicitly unpin-and-export the subtree (drain wins over pinning;
// see PinnedRank). Pinning to a down, draining, or decommissioned rank
// is refused.
func (c *Cluster) PinPath(path string, rank int) error {
	if rank < 0 || rank >= len(c.servers) {
		return fmt.Errorf("cluster: pin rank %d out of range [0,%d)", rank, len(c.servers))
	}
	if !c.importable(namespace.MDSID(rank)) {
		return fmt.Errorf("cluster: pin rank %d is %s, not an import target",
			rank, c.servers[rank].State())
	}
	dir, err := c.tree.Lookup(path)
	if err != nil {
		return fmt.Errorf("cluster: pin %q: %w", path, err)
	}
	if !dir.IsDir {
		return fmt.Errorf("cluster: pin %q: not a directory", path)
	}
	e := c.part.Carve(dir)
	c.part.SetAuth(e.Key, namespace.MDSID(rank))
	c.pins[e.Key] = rank
	return nil
}

// PinnedRank reports the rank a subtree entry was pinned to by
// PinPath, if it is still pinned. A drain of the pinned rank removes
// the pin (the documented "drain wins" policy: retiring a rank beats
// keeping a manual placement on it).
func (c *Cluster) PinnedRank(key namespace.FragKey) (int, bool) {
	r, ok := c.pins[key]
	return r, ok
}

// ScheduleCapacity arranges for the given rank's capacity to change at
// the given tick (degradation/failure injection: a slow disk, a noisy
// neighbour, a partial failure). Non-positive capacities are clamped to
// 1 by the server; the clamp is counted so fault scripts with typo'd
// values surface in CapacityClamps instead of silently degrading.
func (c *Cluster) ScheduleCapacity(tick int64, rank, capacity int) {
	c.events.Schedule(tick, func() {
		if rank >= 0 && rank < len(c.servers) {
			if _, clamped := c.servers[rank].SetCapacity(capacity); clamped {
				c.capacityClamps++
			}
		}
	})
}

// CapacityClamps returns how many scheduled capacity changes were
// clamped up from a non-positive value.
func (c *Cluster) CapacityClamps() int64 { return c.capacityClamps }

// CrashMDS takes the given rank down immediately: it stops serving, its
// queued and in-flight exports abort (authority rolled to the surviving
// side), and its remaining subtrees orphan — requests to them stall —
// until survivors take them over RecoveryTicks later. It returns false
// for an invalid or already-down rank, or when the rank is the last
// survivor — crashing it would leave nobody to take over and ops would
// stall forever.
func (c *Cluster) CrashMDS(rank int) bool {
	if rank < 0 || rank >= len(c.servers) || !c.servers[rank].Up() {
		return false
	}
	live := 0
	for _, s := range c.servers {
		if s.Up() {
			live++
		}
	}
	if live <= 1 {
		return false
	}
	id := namespace.MDSID(rank)
	// Stamp the load reading before Crash: by takeover time the down
	// rank has recorded only zero-load epochs, so this pre-crash value
	// is the takeover's only usable load-share basis.
	c.crashLoad[id] = c.servers[rank].CurrentLoad()
	c.servers[rank].Crash()
	// A crash mid-drain cancels the drain: AbortRank below rolls the
	// in-flight exports' authority to their importers, and everything
	// the dead rank still governed is orphaned and handed to survivors
	// by the scheduled takeover — exactly once, through that one path.
	// If the rank later rejoins it comes back Active, not Draining.
	delete(c.draining, id)
	aborted := c.migrator.AbortRank(id)
	if c.engine.wb != nil {
		// The dead rank's unapplied group-commit journal is lost: every
		// batch in it re-queues its owner's outstanding suffix
		// client-side, exactly once (wb.go).
		c.engine.wbCrashRank(id, c.tick)
	}
	c.orphaned[id] = true
	crashedAt := c.tick
	c.crashTick[id] = crashedAt
	c.events.Schedule(crashedAt+int64(c.cfg.RecoveryTicks), func() {
		c.reassignOrphans(id, crashedAt)
	})
	if c.rep != nil {
		// The dead rank's replica state is gone: drop it from every
		// standby set, and schedule the warm promotion pass well inside
		// the cold window. Whatever it still leads then moves to synced
		// standbys; the rest waits for the cold takeover above.
		before := c.rep.LeasesRevoked()
		c.rep.DropRank(id)
		if n := c.rep.LeasesRevoked() - before; n > 0 && c.bus.Enabled(obs.EvLeaseRevoke) {
			f := obs.AcquireF()
			f["rank"], f["n"], f["reason"] = rank, n, "crash"
			c.bus.EmitPooled(obs.Event{Tick: crashedAt, Type: obs.EvLeaseRevoke, Fields: f})
		}
		c.events.Schedule(crashedAt+int64(c.rep.Policy().PromoteTicks), func() {
			c.promoteReplicas(id, crashedAt)
		})
	}
	if c.bus.Enabled(obs.EvCrash) {
		c.bus.Emit(obs.Event{Tick: crashedAt, Type: obs.EvCrash,
			Fields: obs.F{"rank": rank, "live": live - 1, "aborted": aborted}})
	}
	return true
}

// CrashHottest crashes the live rank with the highest load (last
// epoch's ops/sec, tie-broken by total ops served, then by rank) and
// returns its rank, or -1 when fewer than two ranks are live (crashing
// the last survivor would leave nobody to take over).
func (c *Cluster) CrashHottest() int {
	best, bestLoad, bestOps, liveN := -1, -1.0, int64(-1), 0
	for i, s := range c.servers {
		if !s.Up() {
			continue
		}
		liveN++
		load, ops := s.CurrentLoad(), s.OpsTotal()
		if load > bestLoad || (load == bestLoad && ops > bestOps) {
			best, bestLoad, bestOps = i, load, ops
		}
	}
	if liveN < 2 || best < 0 {
		return -1
	}
	c.CrashMDS(best)
	return best
}

// RecoverMDS brings a crashed rank back up immediately. Its heat and
// trace statistics are invalidated (see mds.Server.Rejoin); if its
// subtrees had not yet been taken over, the pending takeover is
// cancelled and they are simply valid again. Clients backing off
// against THIS rank have their residual backoff cleared — the rank is
// serving again, so waiting out the rest of an exponential backoff
// window would just extend the outage they observe. Clients backing
// off against a different, still-down rank keep their interval: a
// blanket clear would reset them to backoff=1 and let an unrelated
// recovery turn them loose to hammer a rank that is still dead. It
// returns false for an invalid, already-up, or decommissioned rank —
// decommissioning is terminal; a retired rank rejoins only as a brand
// new rank via AddMDS.
func (c *Cluster) RecoverMDS(rank int) bool {
	if rank < 0 || rank >= len(c.servers) || c.servers[rank].Up() ||
		c.servers[rank].Decommissioned() {
		return false
	}
	id := namespace.MDSID(rank)
	c.servers[rank].Rejoin()
	delete(c.orphaned, id)
	delete(c.crashTick, id)
	delete(c.crashLoad, id)
	for _, cl := range c.clients {
		if cl.Backoff() > 0 && cl.BackoffRank() == id {
			cl.ClearBackoff()
			if c.bus.Enabled(obs.EvBackoffExit) {
				f := obs.AcquireF()
				f["client"], f["reason"] = cl.ID, "recovery"
				c.bus.EmitPooled(obs.Event{Tick: c.tick, Type: obs.EvBackoffExit, Fields: f})
			}
		}
	}
	if c.bus.Enabled(obs.EvRecover) {
		c.bus.Emit(obs.Event{Tick: c.tick, Type: obs.EvRecover, Fields: obs.F{"rank": rank}})
	}
	return true
}

// ScheduleCrash arranges for the given rank to crash at the tick.
func (c *Cluster) ScheduleCrash(tick int64, rank int) {
	c.events.Schedule(tick, func() { c.CrashMDS(rank) })
}

// ScheduleCrashHottest arranges for the hottest live rank to crash at
// the tick (the adversarial failure of the failover experiment).
func (c *Cluster) ScheduleCrashHottest(tick int64) {
	c.events.Schedule(tick, func() { c.CrashHottest() })
}

// ScheduleRecover arranges for the given rank to rejoin at the tick.
func (c *Cluster) ScheduleRecover(tick int64, rank int) {
	c.events.Schedule(tick, func() { c.RecoverMDS(rank) })
}

// CrashPathOwner crashes whichever rank is currently authoritative for
// the directory path — the partition-scoped fault: it follows the
// subtree wherever the balancer has placed it. A subtree entry carved
// at the path itself wins (that rank governs the path's contents);
// otherwise the fault falls on the rank governing the path inode. It
// returns the crashed rank, or -1 when the path does not resolve or
// the rank cannot crash (already down, or the last survivor).
func (c *Cluster) CrashPathOwner(path string) int {
	in, err := c.tree.Lookup(path)
	if err != nil {
		return -1
	}
	var entry namespace.Entry
	if e, ok := c.part.EntryAt(namespace.FragKey{Dir: in.Ino, Frag: namespace.WholeFrag}); ok {
		entry = e
	} else if c.resolver != nil {
		entry = c.resolver.Entry(in)
	} else {
		entry = c.part.GoverningEntry(in)
	}
	if c.CrashMDS(int(entry.Auth)) {
		return int(entry.Auth)
	}
	return -1
}

// ScheduleCrashPath arranges for the rank authoritative for path to
// crash at the tick (partition-scoped fault injection).
func (c *Cluster) ScheduleCrashPath(tick int64, path string) {
	c.events.Schedule(tick, func() { c.CrashPathOwner(path) })
}

// ApplyFaults schedules every event of the fault schedule.
func (c *Cluster) ApplyFaults(s fault.Schedule) {
	for _, ev := range s.Events {
		switch {
		case ev.Kind == fault.Crash && ev.Path != "":
			c.ScheduleCrashPath(ev.Tick, ev.Path)
		case ev.Kind == fault.Crash && ev.Rank == fault.HottestRank:
			c.ScheduleCrashHottest(ev.Tick)
		case ev.Kind == fault.Crash:
			c.ScheduleCrash(ev.Tick, ev.Rank)
		case ev.Kind == fault.Recover:
			c.ScheduleRecover(ev.Tick, ev.Rank)
		}
	}
}

// DownRanks returns the currently-crashed ranks in rank order. A
// decommissioned rank is not down — it left the cluster on purpose and
// is never a takeover source or recovery target — so it is excluded
// (see DecommissionedRanks).
func (c *Cluster) DownRanks() []int {
	var out []int
	for i, s := range c.servers {
		if s.State() == mds.RankDown {
			out = append(out, i)
		}
	}
	return out
}

// DrainingRanks returns the ranks currently mid-drain in rank order.
func (c *Cluster) DrainingRanks() []int {
	var out []int
	for i, s := range c.servers {
		if s.Draining() {
			out = append(out, i)
		}
	}
	return out
}

// DecommissionedRanks returns the retired ranks in rank order.
func (c *Cluster) DecommissionedRanks() []int {
	var out []int
	for i, s := range c.servers {
		if s.Decommissioned() {
			out = append(out, i)
		}
	}
	return out
}

// ServingRanks counts ranks currently serving requests (active or
// draining).
func (c *Cluster) ServingRanks() int {
	n := 0
	for _, s := range c.servers {
		if s.Up() {
			n++
		}
	}
	return n
}

// drainState tracks one in-flight graceful drain.
type drainState struct {
	startTick    int64
	startEntries int
}

// importable reports whether the rank is a legal import target: in
// range, serving, and not being emptied. This is the predicate behind
// both the balancer view's Importable and the migrator's ValidImporter
// activation gate.
func (c *Cluster) importable(r namespace.MDSID) bool {
	return r >= 0 && int(r) < len(c.servers) &&
		c.servers[r].Up() && !c.servers[r].Draining()
}

// reassignOrphans executes the failover takeover for a rank that
// crashed at crashedAt: every subtree entry still owned by the dead
// rank moves to a surviving rank, least-loaded first (each takeover
// adds the orphan's estimated load share, so one idle survivor does not
// swallow the entire dead rank). Stale invocations — the rank rejoined,
// or crashed again later — are no-ops; if no survivor is live the
// takeover retries every tick until one is.
func (c *Cluster) reassignOrphans(dead namespace.MDSID, crashedAt int64) {
	if !c.orphaned[dead] || c.crashTick[dead] != crashedAt {
		return // rejoined, or a newer crash owns the takeover
	}
	if c.servers[dead].Up() {
		delete(c.orphaned, dead)
		return
	}
	entries := c.part.EntriesOf(dead)
	if len(entries) == 0 {
		delete(c.orphaned, dead)
		return
	}
	type survivor struct {
		id  namespace.MDSID
		eff float64
	}
	// Survivors are preferably active ranks; a draining rank only takes
	// orphans when nobody else is up (the drain pump then re-exports
	// them, so they still end on an active rank).
	var live []survivor
	for i, s := range c.servers {
		if s.Up() && !s.Draining() {
			live = append(live, survivor{namespace.MDSID(i), s.CurrentLoad()})
		}
	}
	if len(live) == 0 {
		for i, s := range c.servers {
			if s.Up() {
				live = append(live, survivor{namespace.MDSID(i), s.CurrentLoad()})
			}
		}
	}
	if len(live) == 0 {
		c.events.Schedule(c.tick+1, func() { c.reassignOrphans(dead, crashedAt) })
		return
	}
	// The dead rank's last load reading from before the crash, spread
	// evenly across its entries, approximates what each takeover adds
	// to a survivor. Reading CurrentLoad() here instead would see only
	// the zero-load epochs recorded while the rank was down
	// (RecoveryTicks exceeds an epoch), collapsing the load-weighted
	// spread to uniform shares of 1 — the exact "one idle survivor
	// swallows the whole dead rank" failure this spread exists to avoid.
	share := c.crashLoad[dead] / float64(len(entries))
	if share <= 0 {
		share = 1
	}
	for _, e := range entries {
		best := 0
		for i := 1; i < len(live); i++ {
			if live[i].eff < live[best].eff {
				best = i
			}
		}
		c.part.SetAuth(e.Key, live[best].id)
		live[best].eff += share
	}
	c.rec.AddRecovery(metrics.RecoveryEvent{
		Rank:         int(dead),
		CrashTick:    crashedAt,
		ReassignTick: c.tick,
		Entries:      len(entries),
	})
	if c.bus.Enabled(obs.EvTakeover) {
		c.bus.Emit(obs.Event{Tick: c.tick, Type: obs.EvTakeover, Fields: obs.F{
			"rank": int(dead), "entries": len(entries),
			"crash_tick": crashedAt, "waited": c.tick - crashedAt,
			"survivors": len(live),
		}})
	}
	delete(c.orphaned, dead)
	delete(c.crashTick, dead)
	delete(c.crashLoad, dead)
}

// AddMDS immediately grows the cluster by one server and returns it.
func (c *Cluster) AddMDS() *mds.Server {
	id := namespace.MDSID(len(c.servers))
	s := mds.NewServer(id, c.cfg.Capacity, c.cfg.HistoryWindows, c.cfg.HeatDecay)
	if c.tn != nil {
		s.EnableTenants(c.tn.N())
	}
	c.servers = append(c.servers, s)
	c.ledger.Grow(len(c.servers))
	c.rec.GrowMDS(len(c.servers))
	return s
}

// StartDrain begins a graceful drain of the given rank: it flips to
// Draining — still serving, no longer an import target — and the drain
// pump bulk-exports every subtree it governs until it owns nothing,
// at which point it is decommissioned. Subtrees pinned to the rank by
// PinPath are unpinned and exported like any other (drain wins over
// pinning: retiring the rank beats honouring a manual placement on
// it). Returns false for an out-of-range or non-active rank, when
// the rank is the last active one — draining it would leave no import
// target for its subtrees — or when the rank has an export actively
// importing into it (the in-flight transfer would land on a draining
// rank; retry once it settles, as pickDrainVictim does).
func (c *Cluster) StartDrain(rank int) bool {
	if rank < 0 || rank >= len(c.servers) {
		return false
	}
	inboundActive := false
	c.migrator.ForEachActive(func(t *mds.ExportTask) {
		if t.To == namespace.MDSID(rank) {
			inboundActive = true
		}
	})
	if inboundActive {
		return false
	}
	active := 0
	for _, s := range c.servers {
		if s.Up() && !s.Draining() {
			active++
		}
	}
	if active <= 1 {
		return false
	}
	if !c.servers[rank].StartDrain() {
		return false
	}
	id := namespace.MDSID(rank)
	unpinned := 0
	for k, r := range c.pins {
		if r == rank {
			delete(c.pins, k)
			unpinned++
		}
	}
	entries := len(c.part.EntriesOf(id))
	c.draining[id] = &drainState{startTick: c.tick, startEntries: entries}
	if c.rep != nil {
		// A draining rank is leaving: its standby copies retire with it
		// (read leases included) and the re-replicator restores R on
		// ranks that stay.
		before := c.rep.LeasesRevoked()
		c.rep.DropRank(id)
		if n := c.rep.LeasesRevoked() - before; n > 0 && c.bus.Enabled(obs.EvLeaseRevoke) {
			f := obs.AcquireF()
			f["rank"], f["n"], f["reason"] = rank, n, "drain"
			c.bus.EmitPooled(obs.Event{Tick: c.tick, Type: obs.EvLeaseRevoke, Fields: f})
		}
	}
	if c.bus.Enabled(obs.EvDrainStart) {
		c.bus.Emit(obs.Event{Tick: c.tick, Type: obs.EvDrainStart,
			Fields: obs.F{"rank": rank, "entries": entries, "unpinned": unpinned}})
	}
	return true
}

// pickDrainVictim selects the rank a ScaleDown decision retires: the
// least-loaded active rank, preferring the highest rank on ties (later
// additions retire first). Ranks with inbound exports queued or in
// flight are skipped — draining one would strand those imports at the
// activation gate and break the "nothing imports into a draining rank"
// invariant the auditor enforces. Returns -1 when no rank qualifies.
func (c *Cluster) pickDrainVictim() int {
	inbound := make(map[namespace.MDSID]bool)
	note := func(t *mds.ExportTask) { inbound[t.To] = true }
	c.migrator.ForEachQueued(note)
	c.migrator.ForEachActive(note)
	best, bestLoad := -1, 0.0
	for i, s := range c.servers {
		if !s.Up() || s.Draining() || inbound[namespace.MDSID(i)] {
			continue
		}
		load := s.CurrentLoad()
		if best < 0 || load < bestLoad || (load == bestLoad && i > best) {
			best, bestLoad = i, load
		}
	}
	return best
}

// pumpDrains advances every in-flight drain by one tick: ranks that
// govern nothing and have no exports queued or in flight are
// decommissioned; the rest get drain exports submitted for every
// governed subtree not already pending and not frozen (a frozen
// subtree is mid-commit on an earlier export — it will either leave on
// its own or come back as governed next tick). Targets are the
// importable ranks, least projected load first, where the projection
// counts load already planned into a target by earlier pump ticks so a
// multi-epoch drain spreads instead of dumping on one survivor.
func (c *Cluster) pumpDrains(tick int64) {
	for i, s := range c.servers {
		id := namespace.MDSID(i)
		ds, ok := c.draining[id]
		if !ok {
			continue
		}
		entries := c.part.EntriesOf(id)
		queued, act := c.migrator.TasksFor(id)
		if len(entries) == 0 {
			if queued == 0 && act == 0 {
				c.finishDrain(id, ds, tick)
			}
			continue
		}
		var tgt []namespace.MDSID
		var eff []float64
		for j := range c.servers {
			if jid := namespace.MDSID(j); c.importable(jid) {
				tgt = append(tgt, jid)
				eff = append(eff, c.servers[j].CurrentLoad())
			}
		}
		if len(tgt) == 0 {
			continue // no import target this tick; retry next tick
		}
		project := func(t *mds.ExportTask) {
			for k, r := range tgt {
				if r == t.To {
					eff[k] += t.PlannedLoad
					break
				}
			}
		}
		c.migrator.ForEachQueued(project)
		c.migrator.ForEachActive(project)
		pending := c.migrator.PendingFor(id)
		share := s.CurrentLoad() / float64(len(entries))
		if share <= 0 {
			share = 1
		}
		for _, e := range entries {
			if pending[e.Key] || c.migrator.IsFrozen(e.Key) {
				continue
			}
			best := 0
			for k := 1; k < len(tgt); k++ {
				if eff[k] < eff[best] {
					best = k
				}
			}
			c.migrator.SubmitDrain(e.Key, id, tgt[best], share, tick)
			eff[best] += share
		}
	}
}

// finishDrain decommissions a fully-emptied draining rank.
func (c *Cluster) finishDrain(id namespace.MDSID, ds *drainState, tick int64) {
	if c.engine.wb != nil {
		// Batches of a backing-off client can outlive the drain in the
		// rank's group-commit journal (live clients re-resolve and move
		// theirs); re-queue them client-side before the rank retires.
		c.engine.wbCrashRank(id, tick)
	}
	c.servers[id].Decommission()
	delete(c.draining, id)
	c.drainsDone++
	if c.bus.Enabled(obs.EvDrainComplete) {
		c.bus.Emit(obs.Event{Tick: tick, Type: obs.EvDrainComplete,
			Fields: obs.F{"rank": int(id), "entries": ds.startEntries,
				"waited": tick - ds.startTick}})
	}
}

// elasticStep feeds the autoscaler one epoch snapshot and applies its
// decision. Runs at epoch close, before the balancer, so a scale-up's
// fresh ranks are import targets in the same epoch's rebalance.
func (c *Cluster) elasticStep(tick, epoch int64, ifv float64) {
	var load float64
	active, drainingN := 0, 0
	for _, s := range c.servers {
		if !s.Up() {
			continue
		}
		load += s.CurrentLoad()
		if s.Draining() {
			drainingN++
		} else {
			active++
		}
	}
	snap := elastic.Snapshot{
		Epoch:         epoch,
		ActiveRanks:   active,
		DrainingRanks: drainingN,
		Load:          load,
		Capacity:      float64(c.cfg.Capacity),
		IF:            ifv,
	}
	if c.tn != nil {
		// Pool-stall debt only (bucket throttles are intended and never
		// count), so an aggressor being throttled cannot trigger
		// scale-up — only victims starved of capacity can.
		snap.MaxTenantDebt = c.tn.MaxDebt()
	}
	d := c.elastic.Observe(snap)
	switch d.Action {
	case elastic.ScaleUp:
		for i := 0; i < d.Delta; i++ {
			c.AddMDS()
		}
		c.scaleUps++
	case elastic.ScaleDown:
		for i := 0; i < d.Delta; i++ {
			v := c.pickDrainVictim()
			if v < 0 || !c.StartDrain(v) {
				break
			}
		}
	default:
		return
	}
	if c.bus.Enabled(obs.EvScaleDecision) {
		c.bus.Emit(obs.Event{Tick: tick, Type: obs.EvScaleDecision, Fields: obs.F{
			"action": d.Action.String(), "delta": d.Delta, "reason": d.Reason,
			"util": d.Util, "if": ifv, "active": active, "draining": drainingN,
		}})
	}
}

// SettleDrains keeps the simulation stepping after the workload ends
// until every in-flight drain has completed and the autoscaler has
// shrunk the cluster back to its floor (the idle cluster drains toward
// Policy.MinRanks), bounded by maxTicks. It returns the tick at which
// it stopped, and is a no-op without an elastic controller.
func (c *Cluster) SettleDrains(maxTicks int64) int64 {
	if c.elastic == nil {
		return c.tick
	}
	minRanks := c.elastic.Policy().MinRanks
	limit := c.tick + maxTicks
	for c.tick < limit {
		active := 0
		for _, s := range c.servers {
			if s.Up() && !s.Draining() {
				active++
			}
		}
		if len(c.draining) == 0 && active <= minRanks {
			break
		}
		c.Step()
	}
	return c.tick
}

// RankEpochs returns the cumulative serving-rank-epochs of the run —
// the capacity bill an elastic configuration is judged by against a
// static fleet.
func (c *Cluster) RankEpochs() int64 { return c.rankEpochs }

// ScaleUps returns how many scale-up decisions were applied.
func (c *Cluster) ScaleUps() int64 { return c.scaleUps }

// DrainsDone returns how many graceful drains completed.
func (c *Cluster) DrainsDone() int64 { return c.drainsDone }

// Step advances the simulation one tick.
func (c *Cluster) Step() {
	tick := c.tick
	epoch := tick / int64(c.cfg.EpochTicks)

	c.events.RunDue(tick)

	for _, s := range c.servers {
		s.BeginTick()
	}
	if c.tn != nil {
		// Refill the token buckets and reset the tick's admission books
		// before any admission runs (serial, like server BeginTick).
		c.tn.BeginTick()
		c.tnAdmittedTick = 0
		for i := range c.tnServedTick {
			c.tnServedTick[i] = 0
		}
	}
	if c.cfg.DataPath {
		c.osds.BeginTick()
	}
	c.migrator.Tick(tick)
	if c.lt != nil {
		// New tick, new write-invalidation window; then sync the routing
		// table before any planning — the events above may have crashed
		// or drained a lease holder, and a read run must never be routed
		// to a rank whose lease just died with it.
		c.leaseWriteRevoked = c.leaseWriteRevoked[:0]
		c.syncLeaseTable()
	}
	if len(c.draining) != 0 {
		// Drains in flight: keep the bulk export fed. The guard keeps
		// the fixed-size (and between-drains) tick loop allocation-free.
		c.pumpDrains(tick)
	}

	c.engine.serveTick(tick, epoch)

	if c.tn != nil && c.bus.Enabled(obs.EvTenantThrottle) {
		// Serial post-serve sweep: one event per tenant the buckets
		// throttled this tick. Uncontended buckets emit nothing, so an
		// idle QoS attachment leaves the trace byte-identical.
		for t := 0; t < c.tn.N(); t++ {
			if n := c.tn.ThrottledTick(t); n > 0 {
				f := obs.AcquireF()
				f["tenant"], f["n"], f["tokens"] = t, n, c.tn.Tokens(t)
				c.bus.EmitPooled(obs.Event{Tick: tick, Type: obs.EvTenantThrottle, Fields: f})
			}
		}
	}

	if cap(c.perMDSBuf) < len(c.servers) {
		c.perMDSBuf = make([]int, len(c.servers))
	}
	perMDS := c.perMDSBuf[:len(c.servers)]
	for i, s := range c.servers {
		perMDS[i] = s.OpsThisTick()
	}
	c.rec.SampleTick(tick, perMDS, c.migrator.MigratedInodes(), c.forwards)
	c.recoveryTickSum += int64(len(c.orphaned))
	c.rec.SampleFaults(tick, c.stalledDown, c.migrator.AbortedTasks(), c.recoveryTickSum)

	if (tick+1)%int64(c.cfg.EpochTicks) == 0 {
		c.endEpoch(tick, epoch)
	}
	if c.rep != nil {
		// After the epoch close so balancer carves and drain exports
		// from this tick are already in the partition the groups
		// reconcile against (and the auditor sees groups == entries).
		c.pumpReplication(tick)
	}
	if c.auditor != nil &&
		(c.auditor.EveryTick() || (tick+1)%int64(c.cfg.EpochTicks) == 0) {
		c.auditor.Check(audit.State{
			Tick:              tick,
			Tree:              c.tree,
			Partition:         c.part,
			Resolver:          c.resolver,
			Migrator:          c.migrator,
			Servers:           c.servers,
			Clients:           c.clients,
			Orphaned:          c.orphanFn,
			Forwards:          c.forwards,
			RacedCreates:      c.racedCreates,
			Replicas:          c.rep,
			LeaseWriteRevoked: c.leaseWriteRevoked,
			Tenancy:           c.tn,
			TenantAdmitted:    c.tnAdmittedTick,
			TenantServed:      c.tnServedTick,
		})
	}
	c.tick++
}

// Auditor returns the attached state auditor (nil when auditing is
// disabled). The returned value is nil-safe: Err(), Passes(), and
// Violations() work on a nil auditor.
func (c *Cluster) Auditor() *audit.Auditor { return c.auditor }

func (c *Cluster) endEpoch(tick, epoch int64) {
	// Epoch bookkeeping runs on every server (down ones record a zero
	// epoch), but the imbalance factor is evaluated over live ranks
	// only — a crashed server is an availability event, not imbalance.
	liveLoads := c.liveLoads[:0]
	for _, s := range c.servers {
		load := s.EndEpoch(c.cfg.EpochTicks)
		if s.Up() {
			liveLoads = append(liveLoads, load)
		}
	}
	if c.tn != nil {
		// Close the tenant epoch before the autoscaler observes it, so
		// this epoch's SLO debt feeds this epoch's scaling decision.
		c.tn.EndEpoch()
	}
	c.liveLoads = liveLoads[:0]
	c.rankEpochs += int64(len(liveLoads))
	res := core.IFModel{}.Compute(liveLoads, float64(c.cfg.Capacity))
	c.rec.SampleEpoch(tick, res.IF, res.CoV)
	if c.bus.Enabled(obs.EvEpoch) {
		f := obs.AcquireF()
		f["epoch"], f["if"], f["cov"], f["live"] = epoch, res.IF, res.CoV, len(liveLoads)
		c.bus.EmitPooled(obs.Event{Tick: tick, Type: obs.EvEpoch, Fields: f})
	}
	if c.bus.Enabled(obs.EvRank) {
		for i, s := range c.servers {
			queued, active := c.migrator.TasksFor(namespace.MDSID(i))
			f := obs.AcquireF()
			f["rank"], f["epoch"], f["load"] = i, epoch, s.CurrentLoad()
			f["ops"], f["stalls"] = s.OpsTotal(), s.Stalls()
			f["heat"], f["queued"], f["active"] = s.HeatEntries(), queued, active
			f["up"], f["state"] = s.Up(), s.State().String()
			c.bus.EmitPooled(obs.Event{Tick: tick, Type: obs.EvRank, Fields: f})
		}
	}
	if c.elastic != nil {
		c.elasticStep(tick, epoch, res.IF)
	}
	if c.lt != nil {
		// Carve hot read-dominated directories before the rebalance, so
		// migration planning sees the carved entries; lease grants
		// themselves run every tick in pumpLeases.
		c.leaseStep(tick)
	}
	c.cfg.Balancer.Rebalance(&view{c: c, epoch: epoch})
}

// Run advances the simulation by the given number of ticks.
func (c *Cluster) Run(ticks int64) {
	for i := int64(0); i < ticks; i++ {
		c.Step()
	}
}

// RunUntilDone advances until every client finishes or maxTicks pass.
// It returns the tick at which it stopped.
func (c *Cluster) RunUntilDone(maxTicks int64) int64 {
	for c.tick < maxTicks && !c.Done() {
		c.Step()
	}
	return c.tick
}

// view adapts Cluster to balancer.View.
type view struct {
	c     *Cluster
	epoch int64
}

func (v *view) Tick() int64                           { return v.c.tick }
func (v *view) Epoch() int64                          { return v.epoch }
func (v *view) EpochTicks() int                       { return v.c.cfg.EpochTicks }
func (v *view) NumMDS() int                           { return len(v.c.servers) }
func (v *view) Server(id namespace.MDSID) *mds.Server { return v.c.servers[id] }
func (v *view) Up(id namespace.MDSID) bool {
	return int(id) < len(v.c.servers) && v.c.servers[id].Up()
}
func (v *view) Importable(id namespace.MDSID) bool { return v.c.importable(id) }
func (v *view) Partition() *namespace.Partition    { return v.c.part }
func (v *view) Migrator() *mds.Migrator            { return v.c.migrator }
func (v *view) Capacity() float64                  { return float64(v.c.cfg.Capacity) }
func (v *view) HeatDecay() float64                 { return v.c.cfg.HeatDecay }
func (v *view) Rand() *rng.Source                  { return v.c.rand }
func (v *view) Ledger() *msg.Ledger                { return v.c.ledger }

// ReadLeased implements balancer.LeaseView: a subtree currently served
// under read leases — or one that qualifies and is waiting for its
// standbys to sync — is handled by replication, not migration. Moving
// it would invalidate (or forestall) the leases and re-concentrate its
// read storm on the new authority; the pending case matters because a
// freshly carved hot directory is exportable for the epoch or two its
// replication group needs to sync, and exporting it restarts that
// clock. Always false when leases are off, so the balancer behaves
// exactly as before.
func (v *view) ReadLeased(key namespace.FragKey) bool {
	c := v.c
	if c.lt == nil {
		return false
	}
	if c.lt.Has(key) {
		return true
	}
	e, ok := c.part.EntryAt(key)
	if !ok {
		return false
	}
	hot := leaseHotFrac * float64(c.cfg.Capacity) * float64(c.cfg.EpochTicks)
	return c.leaseQualifies(e, hot, c.rep.Policy().ReplicateReadFrac)
}

// TenantThrottled implements balancer.TenantView: a subtree whose heat
// comes dominantly from a tenant the token buckets throttled last
// epoch is hot because that tenant is over quota — migrating it would
// spread a noisy neighbour across more ranks instead of containing it,
// so the balancer leaves it where admission already throttles it.
// Always false when tenancy is off (or no tenant dominates), so the
// balancer behaves exactly as before.
func (v *view) TenantThrottled(key namespace.FragKey) bool {
	c := v.c
	if c.tn == nil {
		return false
	}
	e, ok := c.part.EntryAt(key)
	if !ok || int(e.Auth) >= len(c.servers) {
		return false
	}
	t := c.servers[e.Auth].DominantTenant(key)
	if t < 0 {
		return false
	}
	return c.tn.ThrottledLastEpoch(t)
}

// Tenancy returns the attached tenant QoS manager (nil when the run is
// single-tenant).
func (c *Cluster) Tenancy() *tenant.Manager { return c.tn }
