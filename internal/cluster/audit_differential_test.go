package cluster

import (
	"bytes"
	"testing"

	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
)

// runAuditDiff is the audit counterpart of runCacheDiff: the same
// seeded 16-MDS failover-and-migration run, returning its complete
// externally visible output (per-tick CSV, per-epoch CSV, JSONL event
// trace), with the given auditor attached (nil = auditing off).
func runAuditDiff(t *testing.T, aud *audit.Auditor) []byte {
	t.Helper()
	var sched fault.Schedule
	sched.Crash(40, 0).Recover(110, 0).Crash(160, 3).Recover(230, 3)
	var tr bytes.Buffer
	sink := obs.NewJSONL(&tr)
	c := newTestCluster(t, Config{
		MDS:           16,
		Clients:       24,
		Seed:          11,
		RecoveryTicks: 12,
		Faults:        &sched,
		Workload:      failoverZipf(),
		Bus:           obs.NewBus(sink),
		Audit:         aud,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	if c.Metrics().MigratedTotal() == 0 {
		t.Fatal("schedule produced no migrations; the audit never saw an export")
	}
	var out bytes.Buffer
	if err := c.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := c.Metrics().WriteEpochCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out.Write(tr.Bytes())
	return out.Bytes()
}

// TestAuditDifferential is the read-only contract of the auditor: a
// seeded failover-and-migration run with per-tick auditing enabled
// must produce byte-identical CSVs and event traces to the same run
// with auditing off — and the audited run must be violation-free.
// Any auditor code path that mutates simulation state, consumes RNG,
// or perturbs tick ordering shows up here as a diverging trace.
func TestAuditDifferential(t *testing.T) {
	plain := runAuditDiff(t, nil)
	aud := audit.New(audit.Options{EveryTick: true})
	audited := runAuditDiff(t, aud)

	if aud.Passes() == 0 {
		t.Fatal("auditor never ran")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
	if !bytes.Equal(plain, audited) {
		a, b := plain, audited
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("audited and unaudited runs diverge at byte %d:\nplain:   %q\naudited: %q",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
}

// TestAuditCleanUnderMTBFChurn runs a stochastic crash/recovery storm
// (generated MTBF schedule, 8 ranks, always one survivor) with per-tick
// auditing: every cross-module invariant must hold through repeated
// orphan takeovers, migration aborts, and rejoins.
func TestAuditCleanUnderMTBFChurn(t *testing.T) {
	sched := fault.MTBF(fault.MTBFConfig{
		Ranks:   8,
		MTBF:    200,
		MTTR:    40,
		Horizon: 900,
	}, rng.New(7))
	if len(sched.Events) == 0 {
		t.Fatal("MTBF schedule generated no faults")
	}
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:           8,
		Clients:       24,
		Seed:          11,
		RecoveryTicks: 12,
		Faults:        &sched,
		Workload:      failoverZipf(),
		Audit:         aud,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	if aud.Passes() == 0 {
		t.Fatal("auditor never ran")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}
