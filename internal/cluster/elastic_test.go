package cluster

import (
	"bytes"
	"testing"

	"repro/internal/audit"
	"repro/internal/elastic"
	"repro/internal/mds"
	"repro/internal/namespace"
	"repro/internal/obs"
)

// drainableRank finds a live rank that currently governs at least one
// subtree entry and qualifies for StartDrain (no active inbound
// export), stepping the cluster until one exists.
func drainableRank(t *testing.T, c *Cluster, maxTicks int64) int {
	t.Helper()
	for c.Tick() < maxTicks {
		inbound := make(map[namespace.MDSID]bool)
		c.Migrator().ForEachActive(func(task *mds.ExportTask) { inbound[task.To] = true })
		for i, s := range c.Servers() {
			if s.Up() && !s.Draining() && !inbound[namespace.MDSID(i)] &&
				len(c.Partition().EntriesOf(namespace.MDSID(i))) > 0 {
				return i
			}
		}
		c.Step()
	}
	t.Fatal("no drainable rank with entries found")
	return -1
}

// TestDrainDecommission is the core graceful-drain contract: a drained
// rank ends up governing zero subtree entries, is decommissioned (not
// down), never reappears as an import target, and the run loses no ops
// — all under per-tick auditing.
func TestDrainDecommission(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{MDS: 6, Workload: failoverZipf(), Audit: aud})
	c.Run(60)
	victim := drainableRank(t, c, 200)
	if !c.StartDrain(victim) {
		t.Fatalf("StartDrain(%d) refused", victim)
	}
	if got := c.DrainingRanks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("DrainingRanks = %v, want [%d]", got, victim)
	}
	if c.StartDrain(victim) {
		t.Fatal("draining a draining rank must refuse")
	}
	// The drain must finish while the workload still runs.
	for c.Tick() < 5000 && !c.Servers()[victim].Decommissioned() {
		c.Step()
	}
	if !c.Servers()[victim].Decommissioned() {
		t.Fatal("drain never completed")
	}
	if n := len(c.Partition().EntriesOf(namespace.MDSID(victim))); n != 0 {
		t.Fatalf("decommissioned rank still governs %d entries", n)
	}
	if got := c.DecommissionedRanks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("DecommissionedRanks = %v, want [%d]", got, victim)
	}
	if len(c.DownRanks()) != 0 {
		t.Fatalf("DownRanks = %v: a decommissioned rank is not down", c.DownRanks())
	}
	if c.RecoverMDS(victim) {
		t.Fatal("a decommissioned rank must not rejoin")
	}
	if c.DrainsDone() != 1 {
		t.Fatalf("DrainsDone = %d, want 1", c.DrainsDone())
	}
	end := c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatalf("clients unfinished at tick %d after a drain", end)
	}
	if n := c.Servers()[victim].OpsTotal(); n == 0 {
		t.Fatal("victim served nothing before its drain — test proves too little")
	}
	var clientOps, served int64
	for _, cl := range c.Clients() {
		clientOps += cl.OpsDone()
	}
	for _, s := range c.Servers() {
		served += s.OpsTotal()
	}
	if clientOps != served {
		t.Fatalf("client ops %d != served ops %d: the drain lost requests", clientOps, served)
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestAddMDSMidRunAuditClean is the scale-up regression: a rank added
// mid-run is immediately audit-clean and becomes an import target —
// it actually receives subtrees and serves ops — in the epochs that
// follow.
func TestAddMDSMidRunAuditClean(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	// Capacity is sized so the post-join skew reads as harmful: the
	// urgency logistic (Equation 2) suppresses migration when the
	// hottest rank sits far below capacity, and a rank that joins a
	// benignly-imbalanced cluster is correctly left empty.
	c := newTestCluster(t, Config{MDS: 4, Clients: 16, Capacity: 1000, Workload: failoverZipf(), Audit: aud})
	const joinTick = 55
	c.ScheduleAddMDS(joinTick, 1)
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	if len(c.Servers()) != 5 {
		t.Fatalf("cluster size %d, want 5 after mid-run AddMDS", len(c.Servers()))
	}
	joined := c.Servers()[4]
	if joined.OpsTotal() == 0 {
		t.Fatal("the joined rank never served an op: it never became an import target")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestDrainCrashHandsOverOnce is the drain+crash interplay: crashing a
// rank mid-drain cancels the drain, and everything it still governed
// reaches survivors through the normal takeover path exactly once.
func TestDrainCrashHandsOverOnce(t *testing.T) {
	const window = 12
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS: 6, Workload: failoverZipf(), RecoveryTicks: window, Audit: aud,
	})
	c.Run(60)
	victim := drainableRank(t, c, 200)
	if !c.StartDrain(victim) {
		t.Fatalf("StartDrain(%d) refused", victim)
	}
	// Let the drain make progress but crash before it completes.
	for i := 0; i < 3 && !c.Servers()[victim].Decommissioned(); i++ {
		c.Step()
	}
	if c.Servers()[victim].Decommissioned() {
		t.Skip("drain completed before the crash could interrupt it")
	}
	if !c.CrashMDS(victim) {
		t.Fatal("crashing the draining rank refused")
	}
	if len(c.DrainingRanks()) != 0 {
		t.Fatal("crash must cancel the drain")
	}
	if got := c.DownRanks(); len(got) != 1 || got[0] != victim {
		t.Fatalf("DownRanks = %v, want [%d]", got, victim)
	}
	// Past the recovery window the orphans must be on survivors.
	c.Run(window + 2)
	for _, e := range c.Partition().Entries() {
		if int(e.Auth) == victim {
			t.Fatalf("entry %v still owned by the crashed mid-drain rank", e.Key)
		}
	}
	takeovers := 0
	for _, ev := range c.Metrics().RecoveryEvents() {
		if ev.Rank == victim {
			takeovers++
		}
	}
	if takeovers != 1 {
		t.Fatalf("takeovers for rank %d = %d, want exactly 1", victim, takeovers)
	}
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestPinnedSubtreeDrain is the chosen pin-vs-drain policy: draining a
// rank unpins any subtree pinned to it and exports it like the rest —
// the pin registry forgets it, the subtree lands on a live rank, and
// pinning *to* a draining or retired rank is refused.
func TestPinnedSubtreeDrain(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{MDS: 6, Workload: failoverZipf(), Audit: aud})
	c.Run(60)
	victim := drainableRank(t, c, 200)
	if err := c.PinPath("/zipf/client000", victim); err != nil {
		t.Fatal(err)
	}
	dir, _ := c.Tree().Lookup("/zipf/client000")
	key := c.Partition().GoverningEntry(dir.Children()[0]).Key
	if r, ok := c.PinnedRank(key); !ok || r != victim {
		t.Fatalf("PinnedRank(%v) = %d,%v; want %d,true", key, r, ok, victim)
	}
	if !c.StartDrain(victim) {
		t.Fatalf("StartDrain(%d) refused", victim)
	}
	if _, ok := c.PinnedRank(key); ok {
		t.Fatal("drain must unpin subtrees pinned to the draining rank")
	}
	if err := c.PinPath("/zipf/client001", victim); err == nil {
		t.Fatal("pinning to a draining rank must refuse")
	}
	for c.Tick() < 5000 && !c.Servers()[victim].Decommissioned() {
		c.Step()
	}
	if !c.Servers()[victim].Decommissioned() {
		t.Fatal("drain never completed")
	}
	auth := c.Partition().AuthOf(dir.Children()[0])
	if int(auth) == victim || !c.Servers()[auth].Up() {
		t.Fatalf("formerly-pinned subtree on rank %d (victim %d): not a live survivor", auth, victim)
	}
	if err := c.PinPath("/zipf/client001", victim); err == nil {
		t.Fatal("pinning to a decommissioned rank must refuse")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// elasticPolicy is the 4..8 test policy of the scale-cycle tests.
func elasticPolicy() elastic.Policy {
	p := elastic.DefaultPolicy()
	p.MinRanks, p.MaxRanks = 4, 8
	return p
}

// runElastic runs one seeded autoscaled cluster (MDS floor 4, demand
// far above four ranks' capacity so the controller must grow, then
// idle after the workload drains so it must shrink back) and returns
// its complete externally visible output: per-tick CSV, per-epoch CSV,
// and the JSONL event trace including the scale/drain events.
func runElastic(t *testing.T, aud *audit.Auditor) (*Cluster, []byte) {
	t.Helper()
	var tr bytes.Buffer
	sink := obs.NewJSONL(&tr)
	c := newTestCluster(t, Config{
		MDS:      4,
		Capacity: 500, // saturate quickly: 24 clients >> 4x500 ops/s
		Clients:  24,
		Workload: failoverZipf(),
		Elastic:  elastic.MustController(elasticPolicy()),
		Bus:      obs.NewBus(sink),
		Audit:    aud,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	c.SettleDrains(3000)
	var out bytes.Buffer
	if err := c.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := c.Metrics().WriteEpochCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out.Write(tr.Bytes())
	return c, out.Bytes()
}

// TestElasticScaleCycleAudited drives one full scale cycle — grow
// under saturation, drain back to the floor once idle — under per-tick
// auditing: every lifecycle invariant holds, no request is lost, and
// the cluster ends at the policy floor.
func TestElasticScaleCycleAudited(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c, _ := runElastic(t, aud)
	if c.ScaleUps() == 0 {
		t.Fatal("saturated cluster never scaled up")
	}
	if c.DrainsDone() == 0 {
		t.Fatal("idle cluster never drained back down")
	}
	if len(c.Servers()) <= 4 {
		t.Fatalf("cluster size %d never grew past the floor", len(c.Servers()))
	}
	active := 0
	for _, s := range c.Servers() {
		if s.Up() && !s.Draining() {
			active++
		}
	}
	if want := elasticPolicy().MinRanks; active != want {
		t.Fatalf("settled at %d active ranks, want the policy floor %d", active, want)
	}
	var clientOps, served int64
	for _, cl := range c.Clients() {
		clientOps += cl.OpsDone()
	}
	for _, s := range c.Servers() {
		served += s.OpsTotal()
	}
	if clientOps != served {
		t.Fatalf("client ops %d != served ops %d across the scale cycle", clientOps, served)
	}
	if aud.Passes() == 0 {
		t.Fatal("auditor never ran")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestElasticDeterministic is the elastic determinism contract: two
// seed-equal audited elastic runs (fresh controllers, same policy)
// produce byte-identical CSVs and JSONL traces — scale decisions,
// drain events, and all.
func TestElasticDeterministic(t *testing.T) {
	_, a := runElastic(t, audit.New(audit.Options{}))
	_, b := runElastic(t, audit.New(audit.Options{}))
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("seed-equal elastic runs diverge at byte %d:\nfirst:  %q\nsecond: %q",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
}
