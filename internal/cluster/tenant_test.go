package cluster

import (
	"bytes"
	"testing"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// tenantManager builds a flat-rate manager for tests.
func tenantManager(rate, burst float64) *tenant.Manager {
	pol := tenant.DefaultPolicy()
	pol.Rate, pol.Burst = rate, burst
	return tenant.MustManager(pol)
}

// runTenantIdle runs a skewed multi-tenant workload and returns the
// run's complete external output plus the cluster. With enabled, a QoS
// manager is attached whose buckets are far larger than any tenant's
// per-tick demand, so admission never throttles.
func runTenantIdle(t *testing.T, enabled bool) ([]byte, *Cluster) {
	t.Helper()
	var tr bytes.Buffer
	sink := obs.NewJSONL(&tr)
	cfg := Config{
		MDS:      4,
		Clients:  12,
		Seed:     11,
		Workload: workload.DefaultTenants(3, 0.5),
		Bus:      obs.NewBus(sink),
	}
	if enabled {
		cfg.Tenancy = tenantManager(1e6, 2e6)
	}
	c := newTestCluster(t, cfg)
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	var out bytes.Buffer
	if err := c.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := c.Metrics().WriteEpochCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out.Write(tr.Bytes())
	return out.Bytes(), c
}

// TestTenantIdleByteIdentical is the QoS-disabled differential: with
// admission configured on but every bucket uncontended, the run is
// byte-identical — CSVs and event trace — to the same run with tenancy
// off. Attaching the subsystem costs nothing and perturbs nothing until
// a bucket actually runs dry.
func TestTenantIdleByteIdentical(t *testing.T) {
	off, _ := runTenantIdle(t, false)
	on, c := runTenantIdle(t, true)
	tn := c.Tenancy()
	for i := 0; i < tn.N(); i++ {
		if tn.Throttled(i) != 0 {
			t.Fatalf("uncontended bucket throttled tenant %d (%d ops)", i, tn.Throttled(i))
		}
	}
	diffEngineOutputs(t, "tenant-idle", off, on)
}

// TestTenantAdmissionThrottles runs a skewed tenant mix under a tight
// flat policy with a per-tick audit: the big tenants must hit their
// buckets, every op must still complete, and the tenant invariant
// family must stay clean throughout.
func TestTenantAdmissionThrottles(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:      4,
		Clients:  16,
		Seed:     11,
		Workload: workload.DefaultTenants(4, 1.0),
		Tenancy:  tenantManager(400, 800),
		Audit:    aud,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	tn := c.Tenancy()
	var throttled, admitted int64
	for i := 0; i < tn.N(); i++ {
		throttled += tn.Throttled(i)
		admitted += tn.Admitted(i)
	}
	if throttled == 0 {
		t.Fatal("tight buckets never throttled")
	}
	if admitted == 0 {
		t.Fatal("no ops were bucket-admitted")
	}
	// Per-tenant JCTs were recorded for every tenant.
	for i := 0; i < tn.N(); i++ {
		if c.Metrics().TenantJCTCount(i) == 0 {
			t.Fatalf("tenant %d finished no clients", i)
		}
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}

// TestTenantAdmissionThrottlesWB is the write-back variant: bucket
// charging happens at batch admission, serving happens from rank
// journals, and the same invariants must hold.
func TestTenantAdmissionThrottlesWB(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:      4,
		Clients:  16,
		Seed:     11,
		Workload: workload.DefaultTenants(4, 1.0),
		Tenancy:  tenantManager(400, 800),
		Batching: &BatchingConfig{BatchSize: 8, FlushEvery: 4},
		Audit:    aud,
	})
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	tn := c.Tenancy()
	var throttled int64
	for i := 0; i < tn.N(); i++ {
		throttled += tn.Throttled(i)
	}
	if throttled == 0 {
		t.Fatal("tight buckets never throttled in write-back mode")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}
