package cluster

import (
	"bytes"
	"testing"

	"repro/internal/audit"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// engineWorkerCounts are the worker counts every differential below
// runs at. 1 is the inline path (runParallel never spawns), 2 forces
// real cross-goroutine interleaving, 8 oversubscribes the lane count
// of most scenarios so workers steal across cohorts and ranks.
var engineWorkerCounts = []int{1, 2, 8}

// runEngineDiff runs one seeded scenario at the given worker count and
// returns the run's complete externally visible output: per-tick CSV,
// per-epoch CSV, and the JSONL event trace. The scenario mutates the
// config (schedules, replication) before the cluster is built.
func runEngineDiff(t *testing.T, workers int, disable bool, scenario func(*Config) func(*Cluster)) []byte {
	t.Helper()
	var tr bytes.Buffer
	sink := obs.NewJSONL(&tr)
	cfg := Config{
		Workers:               workers,
		DisableParallelEngine: disable,
		Bus:                   obs.NewBus(sink),
	}
	after := scenario(&cfg)
	c := newTestCluster(t, cfg)
	if after != nil {
		after(c)
	}
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	var out bytes.Buffer
	if err := c.Metrics().WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := c.Metrics().WriteEpochCSV(&out); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	out.Write(tr.Bytes())
	return out.Bytes()
}

// diffEngineOutputs fails with the first diverging byte in context.
func diffEngineOutputs(t *testing.T, name string, want, got []byte) {
	t.Helper()
	if bytes.Equal(want, got) {
		return
	}
	i := 0
	for i < len(want) && i < len(got) && want[i] == got[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	t.Fatalf("%s diverges at byte %d:\nserial:   %q\nparallel: %q",
		name, i, want[lo:min(i+80, len(want))], got[lo:min(i+80, len(got))])
}

// engineScenarios are the three stress configurations of the
// parallel-engine differential: failover (crashes, orphan takeover,
// recoveries), elastic (a rank joining mid-run and another draining
// out), and replication (warm standbys promoted over a crash). Each
// returns an optional post-construction hook.
var engineScenarios = []struct {
	name     string
	scenario func(*Config) func(*Cluster)
}{
	{"failover", func(cfg *Config) func(*Cluster) {
		var sched fault.Schedule
		sched.Crash(40, 0).Recover(110, 0).Crash(160, 3).Recover(230, 3)
		cfg.MDS = 16
		cfg.Clients = 24
		cfg.Seed = 11
		cfg.RecoveryTicks = 12
		cfg.Faults = &sched
		cfg.Workload = failoverZipf()
		return nil
	}},
	{"elastic", func(cfg *Config) func(*Cluster) {
		cfg.MDS = 4
		cfg.Clients = 16
		cfg.Seed = 11
		cfg.Capacity = 1000
		cfg.Workload = failoverZipf()
		return func(c *Cluster) {
			c.ScheduleAddMDS(55, 1)
			c.events.Schedule(120, func() { c.StartDrain(1) })
		}
	}},
	{"replication", func(cfg *Config) func(*Cluster) {
		var sched fault.Schedule
		sched.Crash(60, 1).Recover(140, 1)
		cfg.MDS = 4
		cfg.Clients = 16
		cfg.Seed = 11
		cfg.RecoveryTicks = 25
		cfg.Faults = &sched
		cfg.Workload = failoverZipf()
		cfg.Replication = replica.MustManager(replica.DefaultPolicy())
		return nil
	}},
	{"batched", func(cfg *Config) func(*Cluster) {
		// Write-back mode with a mid-run crash: flush/admit ordering,
		// batch serve rounds, and the crash-requeue sweep all have to
		// reproduce byte-identically at every worker count.
		var sched fault.Schedule
		sched.Crash(50, 2).Recover(120, 2)
		cfg.MDS = 4
		cfg.Clients = 16
		cfg.Seed = 11
		cfg.RecoveryTicks = 12
		cfg.Faults = &sched
		cfg.Workload = failoverZipf()
		cfg.Batching = &BatchingConfig{BatchSize: 8, FlushEvery: 4}
		return nil
	}},
	{"leases", func(cfg *Config) func(*Cluster) {
		// Lease-served read storm with writes mixed in and a holder-rank
		// crash mid-run: lease routing, the client-sticky holder spread,
		// write revokes at the serve barriers, carve heat seeding, and
		// crash-driven lease pruning all have to reproduce byte-
		// identically at every worker count.
		var sched fault.Schedule
		sched.Crash(30, 2).Recover(70, 2)
		cfg.MDS = 5
		cfg.Clients = 16
		cfg.Seed = 11
		cfg.RecoveryTicks = 12
		cfg.Faults = &sched
		cfg.Workload = workload.NewReadStorm(workload.ReadStormConfig{
			Files:        300,
			OpsPerClient: 8000,
			WriteEvery:   40,
		})
		pol := replica.DefaultPolicy()
		pol.R = 4
		pol.LeaseTicks = 30
		pol.ReplicateReadFrac = 0.6
		cfg.Replication = replica.MustManager(pol)
		return nil
	}},
	{"tenants", func(cfg *Config) func(*Cluster) {
		// Skewed multi-tenant mix under contended token buckets with a
		// mid-run crash: the serial bucket-admission phase, per-tenant
		// lane accounting, throttle events, and the per-tenant heat and
		// debt bookkeeping all have to reproduce byte-identically at
		// every worker count. The policy is tight enough that the big
		// tenants throttle every epoch.
		var sched fault.Schedule
		sched.Crash(50, 1).Recover(120, 1)
		cfg.MDS = 4
		cfg.Clients = 16
		cfg.Seed = 11
		cfg.RecoveryTicks = 12
		cfg.Faults = &sched
		cfg.Workload = workload.DefaultTenants(4, 1.0)
		pol := tenant.DefaultPolicy()
		pol.Rate, pol.Burst = 400, 800
		cfg.Tenancy = tenant.MustManager(pol)
		return nil
	}},
}

// TestParallelEngineDifferential is the correctness contract of the
// phased tick engine: the same seeded run must produce byte-identical
// CSVs and event traces at every worker count, and with the engine's
// escape hatch (DisableParallelEngine) thrown. Any scheduling leak —
// RNG consumption, merge ordering, budget arbitration, inode-number
// assignment — shows up here as a diverging trace.
func TestParallelEngineDifferential(t *testing.T) {
	for _, sc := range engineScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			base := runEngineDiff(t, 0, true, sc.scenario)
			for _, w := range engineWorkerCounts {
				got := runEngineDiff(t, w, false, sc.scenario)
				diffEngineOutputs(t, sc.name+"/workers="+string(rune('0'+w)), base, got)
			}
		})
	}
}

// TestRecoverClearsOnlyMatchingBackoffs is the two-crashes regression:
// recovering one rank must wake only the clients that were backing off
// against it. The old blanket ClearBackoff also woke clients backing
// off against a rank that was still down, collapsing their carefully
// grown retry intervals into a thundering herd of doomed retries.
func TestRecoverClearsOnlyMatchingBackoffs(t *testing.T) {
	aud := audit.New(audit.Options{EveryTick: true})
	c := newTestCluster(t, Config{
		MDS:           4,
		Clients:       24,
		Seed:          11,
		RecoveryTicks: 200,
		Workload:      failoverZipf(),
		Audit:         aud,
	})
	c.Run(30)
	if !c.CrashMDS(0) || !c.CrashMDS(3) {
		t.Fatal("crashes refused")
	}
	c.Run(40)

	backingOff := map[int]int{} // rank -> clients in backoff against it
	keep := map[int]int64{}     // client -> backoff width against rank 3
	for _, cl := range c.Clients() {
		if cl.Backoff() > 0 {
			backingOff[int(cl.BackoffRank())]++
			if cl.BackoffRank() == 3 {
				keep[cl.ID] = cl.Backoff()
			}
		}
	}
	if backingOff[0] == 0 || backingOff[3] == 0 {
		t.Fatalf("scenario must have clients backing off against both down ranks, got %v", backingOff)
	}

	if !c.RecoverMDS(0) {
		t.Fatal("recovery refused")
	}
	for _, cl := range c.Clients() {
		if cl.Backoff() > 0 && cl.BackoffRank() == 0 {
			t.Fatalf("client %d still backing off against the recovered rank", cl.ID)
		}
	}
	for _, cl := range c.Clients() {
		if want, ok := keep[cl.ID]; ok {
			if cl.Backoff() != want || cl.BackoffRank() != 3 {
				t.Fatalf("client %d backoff against still-down rank 3 disturbed: backoff=%d rank=%d (want %d)",
					cl.ID, cl.Backoff(), cl.BackoffRank(), want)
			}
		}
	}

	c.RecoverMDS(3)
	c.RunUntilDone(30000)
	if !c.Done() {
		t.Fatal("clients must finish")
	}
	for _, v := range aud.Violations() {
		t.Errorf("audit violation: %s", v)
	}
}
