package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// JSONL writes one JSON object per event to an io.Writer, buffered.
// Close flushes (and closes the underlying writer when it is an
// io.Closer the sink was told to own).
type JSONL struct {
	w     *bufio.Writer
	owned io.Closer
	buf   []byte
	n     int64
}

// NewJSONL creates a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriterSize(w, 64<<10)}
}

// NewJSONLFile creates a JSONL sink that closes c on Close.
func NewJSONLFile(c io.WriteCloser) *JSONL {
	s := NewJSONL(c)
	s.owned = c
	return s
}

// Write implements Sink.
func (s *JSONL) Write(e Event) {
	s.buf = e.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	s.w.Write(s.buf)
	s.n++
}

// Count returns how many events were written.
func (s *JSONL) Count() int64 { return s.n }

// Close flushes the buffer and closes the owned writer, if any.
func (s *JSONL) Close() error {
	err := s.w.Flush()
	if s.owned != nil {
		if cerr := s.owned.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Ring keeps the last N events in memory — the sink tests assert
// against. A capacity of 0 panics (a ring that keeps nothing is a
// misconfiguration, not a request for silence).
type Ring struct {
	events  []Event
	start   int
	total   int64
	dropped int64
}

// NewRing creates a ring retaining up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("obs: ring capacity must be positive")
	}
	return &Ring{events: make([]Event, 0, capacity)}
}

// Write implements Sink. The ring retains events past the call, and
// the bus may recycle a pooled Fields map after fan-out, so the ring
// stores a copy of the map.
func (r *Ring) Write(e Event) {
	if len(e.Fields) > 0 {
		cp := make(F, len(e.Fields))
		for k, v := range e.Fields {
			cp[k] = v
		}
		e.Fields = cp
	}
	r.total++
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % len(r.events)
	r.dropped++
}

// Close implements Sink (no-op).
func (r *Ring) Close() error { return nil }

// Total returns how many events were written (including overwritten).
func (r *Ring) Total() int64 { return r.total }

// Dropped returns how many events were overwritten by newer ones.
func (r *Ring) Dropped() int64 { return r.dropped }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// OfType returns the retained events of type t, oldest first.
func (r *Ring) OfType(t Type) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// Summary counts events per type; Close renders nothing — call String
// (or Counts) after the run for the report. It is the "summary
// printer" sink behind lunule-sim's -trace-summary flag.
type Summary struct {
	counts map[Type]int64
	total  int64
}

// NewSummary creates a summary sink.
func NewSummary() *Summary { return &Summary{counts: make(map[Type]int64)} }

// Write implements Sink.
func (s *Summary) Write(e Event) {
	s.counts[e.Type]++
	s.total++
}

// Close implements Sink (no-op).
func (s *Summary) Close() error { return nil }

// Total returns the number of events seen.
func (s *Summary) Total() int64 { return s.total }

// Counts returns a copy of the per-type counts.
func (s *Summary) Counts() map[Type]int64 {
	out := make(map[Type]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// String renders the per-type counts, one "type count" line each, in
// the stable AllTypes order (types never seen are omitted).
func (s *Summary) String() string {
	var b strings.Builder
	seen := make(map[Type]bool, len(s.counts))
	for _, t := range AllTypes() {
		if n := s.counts[t]; n > 0 {
			fmt.Fprintf(&b, "%-21s %d\n", t, n)
			seen[t] = true
		}
	}
	// Defensive: types outside AllTypes (future additions) still print.
	var extra []string
	for t := range s.counts {
		if !seen[t] && s.counts[t] > 0 {
			extra = append(extra, string(t))
		}
	}
	sort.Strings(extra)
	for _, t := range extra {
		fmt.Fprintf(&b, "%-21s %d\n", t, s.counts[Type(t)])
	}
	return b.String()
}
