// Package obs is the run-observability layer: a structured event bus
// the simulator's components emit into at the points the paper's
// figures are drawn from — epoch snapshots with the IF-model inputs,
// per-rank load/queue/heat timelines, the full migration lifecycle
// (planned, activated, frozen, completed, dropped, aborted), fault
// events, and client backoff transitions. Sinks are pluggable: a JSONL
// writer for offline analysis, an in-memory ring for tests, and a
// per-type summary counter.
//
// The bus is zero-cost when disabled: every emit site guards with
// Bus.Enabled, which is a nil-receiver-safe check, so a simulation
// built without a bus pays one predictable branch per emit point and
// allocates nothing. Tracing must never perturb the run — the bus
// never touches the RNG and emits only from deterministic points, so
// the same seed produces byte-identical metrics with tracing on or
// off.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Type names one event kind. The set below is the schema contract for
// the JSONL output (see EXPERIMENTS.md).
type Type string

// Event types.
const (
	// EvEpoch is the epoch-boundary snapshot: the IF evaluation the
	// cluster records (fields: epoch, if, cov, live).
	EvEpoch Type = "epoch"
	// EvRank is the per-rank epoch snapshot (fields: rank, load, ops,
	// stalls, heat, queued, active, up).
	EvRank Type = "rank"
	// EvTrigger is a balancer's per-epoch trigger decision with its
	// inputs (fields: balancer, if, cov, norm_cov, u, threshold,
	// fired, live).
	EvTrigger Type = "trigger"
	// EvPlan is one Algorithm-1 exporter->importer pair (fields: from,
	// to, amount).
	EvPlan Type = "plan"
	// EvSelect is one subtree pick by the selector (fields: from, to,
	// dir, frag, load, entry).
	EvSelect Type = "select"

	// Migration lifecycle events (fields: dir, frag, from, to, plus
	// inodes on activation/completion and reason on drops).
	EvMigrationPlanned   Type = "migration_planned"
	EvMigrationActivated Type = "migration_activated"
	EvMigrationFrozen    Type = "migration_frozen"
	EvMigrationCompleted Type = "migration_completed"
	EvMigrationDropped   Type = "migration_dropped"
	EvMigrationAborted   Type = "migration_aborted"

	// Fault events.
	EvCrash    Type = "mds_crash"       // fields: rank, live, aborted
	EvRecover  Type = "mds_recover"     // fields: rank
	EvTakeover Type = "orphan_takeover" // fields: rank, entries, crash_tick, waited

	// Client backoff transitions.
	EvBackoffEnter Type = "backoff_enter" // fields: client, backoff, retry_at
	EvBackoffExit  Type = "backoff_exit"  // fields: client, reason

	// Elastic autoscaler events.
	// EvScaleDecision is a non-None controller decision (fields:
	// action, delta, reason, util, if, active, draining).
	EvScaleDecision Type = "scale_decision"
	// EvDrainStart marks a rank entering Draining (fields: rank,
	// entries, unpinned).
	EvDrainStart Type = "drain_start"
	// EvDrainComplete marks a drained rank's decommission (fields:
	// rank, entries, waited).
	EvDrainComplete Type = "drain_complete"

	// Replication events.
	// EvReplicaPromote marks one warm standby promotion (fields: dir,
	// frag, from, to, heat, lag, waited).
	EvReplicaPromote Type = "replica_promote"
	// EvJournalLag is the epoch-close replication snapshot (fields:
	// groups, max_lag, syncing, records).
	EvJournalLag Type = "journal_lag"
	// EvRereplicate marks one completed background re-replication sync
	// (fields: dir, frag, rank, inodes).
	EvRereplicate Type = "rereplicate"

	// Write-back batching events.
	// EvBatchFlush marks a client flushing a buffered run into a rank's
	// group-commit journal (fields: client, rank, n, age, depth).
	EvBatchFlush Type = "batch_flush"
	// EvBatchCommit marks a journaled batch (or admitted prefix of one)
	// applied by the serve phase (fields: rank, client, n, groups).
	EvBatchCommit Type = "batch_commit"
	// EvBatchRequeue marks a batch dropped with its rank's unapplied
	// journal at crash time; its ops re-queue client-side exactly once
	// (fields: rank, client, n).
	EvBatchRequeue Type = "batch_requeue"

	// Read-lease events.
	// EvLeaseGrant marks read leases granted on a hot read-dominated
	// subtree's synced standbys (fields: dir, frag, ranks, until,
	// read_frac).
	EvLeaseGrant Type = "lease_grant"
	// EvLeaseRevoke marks leases dying early (fields: n, reason:
	// write|migrate|crash|drain; dir and frag on write revokes, rank on
	// crash/drain revokes).
	EvLeaseRevoke Type = "lease_revoke"

	// Tenant QoS events.
	// EvTenantThrottle marks a tenant's token bucket denying admission
	// during one tick (fields: tenant, n, tokens).
	EvTenantThrottle Type = "tenant_throttle"
)

// AllTypes lists every event type in a stable order.
func AllTypes() []Type {
	return []Type{
		EvEpoch, EvRank, EvTrigger, EvPlan, EvSelect,
		EvMigrationPlanned, EvMigrationActivated, EvMigrationFrozen,
		EvMigrationCompleted, EvMigrationDropped, EvMigrationAborted,
		EvCrash, EvRecover, EvTakeover,
		EvBackoffEnter, EvBackoffExit,
		EvScaleDecision, EvDrainStart, EvDrainComplete,
		EvReplicaPromote, EvJournalLag, EvRereplicate,
		EvBatchFlush, EvBatchCommit, EvBatchRequeue,
		EvLeaseGrant, EvLeaseRevoke,
		EvTenantThrottle,
	}
}

// F is an event's payload: flat key -> value, where values are JSON
// scalars (or small slices). Keys are serialized in sorted order so
// the JSONL output is deterministic.
type F map[string]any

// Event is one structured trace record.
type Event struct {
	Tick   int64
	Type   Type
	Fields F
}

// AppendJSON appends the event's single-line JSON encoding (no
// trailing newline) to dst: {"tick":..,"type":"..",<sorted fields>}.
func (e Event) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"tick":`...)
	dst = append(dst, fmt.Sprintf("%d", e.Tick)...)
	dst = append(dst, `,"type":`...)
	dst = appendJSONValue(dst, string(e.Type))
	if len(e.Fields) > 0 {
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dst = append(dst, ',')
			dst = appendJSONValue(dst, k)
			dst = append(dst, ':')
			dst = appendJSONValue(dst, e.Fields[k])
		}
	}
	return append(dst, '}')
}

func appendJSONValue(dst []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(dst, b...)
}

// String renders the event compactly for test failures and summaries.
func (e Event) String() string { return string(e.AppendJSON(nil)) }

// Sink consumes events. Write must not retain the Fields map past the
// call unless it copies it: events emitted through EmitPooled recycle
// their Fields map after fan-out, so a sink that stores events (the
// Ring) must copy the map first.
type Sink interface {
	Write(Event)
	Close() error
}

// fieldPool recycles Fields maps for high-frequency emit sites (the
// per-tick and per-epoch events of the cluster loop), so tracing stays
// allocation-free in the steady state. Maps keep their bucket capacity
// across recycles.
var fieldPool = sync.Pool{New: func() any { return make(F, 16) }}

// AcquireF returns an empty Fields map from the pool. Pass the event
// built from it to EmitPooled, which recycles the map after fan-out;
// after that call the map must not be used again.
func AcquireF() F {
	m := fieldPool.Get().(F)
	clear(m)
	return m
}

// Bus fans events out to its sinks, optionally filtered by type. A nil
// *Bus is a valid, permanently-disabled bus: Enabled reports false and
// Emit is a no-op, so components hold a *Bus unconditionally and pay
// only a nil check when tracing is off.
type Bus struct {
	sinks []Sink
	allow map[Type]bool // nil = all types pass
}

// NewBus creates a bus emitting to the given sinks (all event types
// enabled).
func NewBus(sinks ...Sink) *Bus { return &Bus{sinks: sinks} }

// Allow restricts the bus to the given event types. Calling it with no
// types re-enables everything.
func (b *Bus) Allow(types ...Type) {
	if len(types) == 0 {
		b.allow = nil
		return
	}
	b.allow = make(map[Type]bool, len(types))
	for _, t := range types {
		b.allow[t] = true
	}
}

// Enabled reports whether events of type t reach any sink. It is safe
// (and false) on a nil bus — the fast path every emit site guards
// with.
func (b *Bus) Enabled(t Type) bool {
	if b == nil || len(b.sinks) == 0 {
		return false
	}
	return b.allow == nil || b.allow[t]
}

// Emit delivers the event to every sink. Callers should guard with
// Enabled to avoid building the Fields map when tracing is off;
// Emit itself re-checks, so an unguarded call is merely wasteful,
// never wrong.
func (b *Bus) Emit(e Event) {
	if !b.Enabled(e.Type) {
		return
	}
	for _, s := range b.sinks {
		s.Write(e)
	}
}

// EmitPooled delivers the event to every sink, then returns its Fields
// map to the pool. The Fields map must come from AcquireF (or be one
// the caller relinquishes); it must not be touched after this call.
func (b *Bus) EmitPooled(e Event) {
	if b.Enabled(e.Type) {
		for _, s := range b.sinks {
			s.Write(e)
		}
	}
	if e.Fields != nil {
		fieldPool.Put(e.Fields)
	}
}

// Close closes every sink, returning the first error.
func (b *Bus) Close() error {
	if b == nil {
		return nil
	}
	var first error
	for _, s := range b.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BusCarrier is implemented by components (balancers, in particular)
// that can emit trace events; the cluster hands them its bus at
// construction time.
type BusCarrier interface {
	SetBus(*Bus)
}

// ParseTypes parses a comma-separated event-type list ("epoch,rank").
// The empty string and "all" mean every type; unknown names are an
// error listing the valid set.
func ParseTypes(spec string) ([]Type, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return nil, nil
	}
	valid := make(map[Type]bool)
	for _, t := range AllTypes() {
		valid[t] = true
	}
	var out []Type
	for _, part := range strings.Split(spec, ",") {
		t := Type(strings.TrimSpace(part))
		if t == "" {
			continue
		}
		if !valid[t] {
			names := make([]string, 0, len(valid))
			for _, v := range AllTypes() {
				names = append(names, string(v))
			}
			return nil, fmt.Errorf("obs: unknown event type %q (valid: %s)", t, strings.Join(names, ", "))
		}
		out = append(out, t)
	}
	return out, nil
}
