package obs

import (
	"strings"
	"testing"
)

func TestNilBusIsDisabledAndSafe(t *testing.T) {
	var b *Bus
	if b.Enabled(EvEpoch) {
		t.Fatal("nil bus must be disabled")
	}
	b.Emit(Event{Tick: 1, Type: EvEpoch}) // must not panic
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBusFilter(t *testing.T) {
	ring := NewRing(16)
	b := NewBus(ring)
	if !b.Enabled(EvCrash) {
		t.Fatal("fresh bus must pass all types")
	}
	b.Allow(EvCrash, EvRecover)
	if b.Enabled(EvEpoch) {
		t.Fatal("filtered type must not be enabled")
	}
	b.Emit(Event{Tick: 1, Type: EvEpoch})
	b.Emit(Event{Tick: 2, Type: EvCrash, Fields: F{"rank": 1}})
	if got := ring.Total(); got != 1 {
		t.Fatalf("want 1 delivered event, got %d", got)
	}
	b.Allow() // reset to all
	if !b.Enabled(EvEpoch) {
		t.Fatal("Allow() with no types must re-enable everything")
	}
}

func TestEventJSONDeterministicAndSorted(t *testing.T) {
	e := Event{Tick: 7, Type: EvCrash, Fields: F{"rank": 2, "aborted": 1, "live": 4}}
	want := `{"tick":7,"type":"mds_crash","aborted":1,"live":4,"rank":2}`
	for i := 0; i < 10; i++ {
		if got := e.String(); got != want {
			t.Fatalf("run %d: got %s want %s", i, got, want)
		}
	}
}

func TestJSONLSink(t *testing.T) {
	var sb strings.Builder
	s := NewJSONL(&sb)
	b := NewBus(s)
	b.Emit(Event{Tick: 1, Type: EvEpoch, Fields: F{"if": 0.5}})
	b.Emit(Event{Tick: 2, Type: EvRecover, Fields: F{"rank": 0}})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"tick":1,"type":"epoch","if":0.5}` + "\n" +
		`{"tick":2,"type":"mds_recover","rank":0}` + "\n"
	if sb.String() != want {
		t.Fatalf("got:\n%swant:\n%s", sb.String(), want)
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRing(3)
	for i := int64(0); i < 5; i++ {
		r.Write(Event{Tick: i, Type: EvEpoch})
	}
	ev := r.Events()
	if len(ev) != 3 || ev[0].Tick != 2 || ev[2].Tick != 4 {
		t.Fatalf("ring contents wrong: %v", ev)
	}
	if r.Total() != 5 || r.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d", r.Total(), r.Dropped())
	}
}

func TestSummaryCounts(t *testing.T) {
	s := NewSummary()
	b := NewBus(s)
	b.Emit(Event{Type: EvEpoch})
	b.Emit(Event{Type: EvEpoch})
	b.Emit(Event{Type: EvCrash})
	if s.Total() != 3 || s.Counts()[EvEpoch] != 2 {
		t.Fatalf("summary wrong: total=%d counts=%v", s.Total(), s.Counts())
	}
	out := s.String()
	if !strings.Contains(out, "epoch") || !strings.Contains(out, "mds_crash") {
		t.Fatalf("summary output missing types:\n%s", out)
	}
}

func TestParseTypes(t *testing.T) {
	if ts, err := ParseTypes(""); err != nil || ts != nil {
		t.Fatalf("empty spec: %v %v", ts, err)
	}
	if ts, err := ParseTypes("all"); err != nil || ts != nil {
		t.Fatalf("all spec: %v %v", ts, err)
	}
	ts, err := ParseTypes("epoch, mds_crash")
	if err != nil || len(ts) != 2 || ts[0] != EvEpoch || ts[1] != EvCrash {
		t.Fatalf("parse: %v %v", ts, err)
	}
	if _, err := ParseTypes("bogus"); err == nil {
		t.Fatal("unknown type must error")
	}
}

// BenchmarkDisabledEmitSite measures the cost a disabled bus adds at
// one emit site — the guard every instrumented hot path pays when
// tracing is off. It must stay at nil-check cost (sub-nanosecond), the
// basis of the <5% tick-loop overhead budget.
func BenchmarkDisabledEmitSite(b *testing.B) {
	var bus *Bus
	n := 0
	for i := 0; i < b.N; i++ {
		if bus.Enabled(EvRank) {
			n++
		}
	}
	if n != 0 {
		b.Fatal("disabled bus emitted")
	}
}
