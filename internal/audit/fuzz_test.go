package audit

import (
	"fmt"
	"testing"

	"repro/internal/mds"
	"repro/internal/namespace"
)

// The fuzz targets drive randomized op sequences against the partition
// and the migration engine, with CheckPartition / CheckMigrator as the
// oracle after every step: any reachable state that breaks an invariant
// is a bug in the mutation path, not in the sequence. Inputs are pairs
// of bytes (op selector, argument); trailing odd bytes are ignored.

// fuzzTree builds the deterministic namespace every partition fuzzer
// starts from: /d0../d5, each with 6 files and 2 subdirs of 3 files.
func fuzzTree(t testing.TB) (*namespace.Tree, []*namespace.Inode) {
	t.Helper()
	tree := namespace.NewTree()
	var dirs []*namespace.Inode
	for d := 0; d < 6; d++ {
		dir, err := tree.MkdirAll(fmt.Sprintf("/d%d", d))
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, dir)
		for f := 0; f < 6; f++ {
			if _, err := tree.Create(dir, fmt.Sprintf("f%d", f), 1); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < 2; s++ {
			sub, err := tree.Mkdir(dir, fmt.Sprintf("s%d", s))
			if err != nil {
				t.Fatal(err)
			}
			dirs = append(dirs, sub)
			for f := 0; f < 3; f++ {
				if _, err := tree.Create(sub, fmt.Sprintf("f%d", f), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return tree, dirs
}

// pickEntry deterministically selects the arg-th non-root entry (nil
// when none exist). The root entry is excluded so the fuzzers never
// trivially bounce off the absorb-root refusal.
func pickEntry(part *namespace.Partition, arg byte) (namespace.Entry, bool) {
	root := namespace.FragKey{Dir: namespace.RootIno, Frag: namespace.WholeFrag}
	var es []namespace.Entry
	for _, e := range part.Entries() {
		if e.Key != root {
			es = append(es, e)
		}
	}
	if len(es) == 0 {
		return namespace.Entry{}, false
	}
	return es[int(arg)%len(es)], true
}

func requireClean(t *testing.T, tree *namespace.Tree, part *namespace.Partition, step int, op byte) {
	t.Helper()
	if vs := CheckPartition(tree, part); len(vs) != 0 {
		t.Fatalf("step %d (op %d): partition invariant broken: %v", step, op, vs[0])
	}
}

// FuzzPartitionOps exercises the full partition mutation surface —
// carve, split, merge, absorb, authority moves, plus live tree churn
// (create/remove) — and requires structural and conservation
// invariants to hold after every op.
func FuzzPartitionOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 1, 0, 4, 3, 2, 0})
	f.Add([]byte{0, 2, 1, 0, 1, 1, 3, 0, 5, 9, 6, 1})
	f.Add([]byte{5, 0, 5, 1, 0, 4, 1, 0, 2, 1, 6, 0, 6, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, dirs := fuzzTree(t)
		part := namespace.NewPartition(tree, 0)
		var created []*namespace.Inode
		nextName := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%7, data[i+1]
			switch op {
			case 0: // carve a directory (skip when fragments exist)
				dir := dirs[int(arg)%len(dirs)]
				if len(part.EntriesAt(dir.Ino)) == 0 {
					part.Carve(dir)
				}
			case 1: // split an entry
				if e, ok := pickEntry(part, arg); ok && e.Key.Frag.Bits < 20 {
					part.SplitEntry(e.Key)
				}
			case 2: // absorb an entry into its enclosing subtree
				if e, ok := pickEntry(part, arg); ok {
					part.Absorb(e.Key)
				}
			case 3: // merge an entry with its sibling fragment
				if e, ok := pickEntry(part, arg); ok {
					part.MergeWithSibling(e.Key)
				}
			case 4: // move authority
				if e, ok := pickEntry(part, arg); ok {
					part.SetAuth(e.Key, namespace.MDSID(arg%4))
				}
			case 5: // create a file
				dir := dirs[int(arg)%len(dirs)]
				in, err := tree.Create(dir, fmt.Sprintf("fz%d", nextName), 1)
				nextName++
				if err == nil {
					created = append(created, in)
				}
			case 6: // remove a fuzz-created file
				if len(created) > 0 {
					j := int(arg) % len(created)
					if err := tree.Remove(created[j]); err != nil {
						t.Fatalf("step %d: remove leaf file: %v", i/2, err)
					}
					created = append(created[:j], created[j+1:]...)
				}
			}
			requireClean(t, tree, part, i/2, op)
		}
	})
}

// FuzzFragSplitMerge stresses the dirfrag split/merge lattice of a
// single wide directory: fragments must stay pairwise disjoint and the
// governed-inode counts must keep summing to the tree total through
// arbitrary split/merge/absorb interleavings.
func FuzzFragSplitMerge(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 2, 1, 1, 2, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 3, 1, 2, 1, 0, 2, 5, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		tree := namespace.NewTree()
		wide, err := tree.MkdirAll("/wide")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if _, err := tree.Create(wide, fmt.Sprintf("f%02d", i), 1); err != nil {
				t.Fatal(err)
			}
		}
		part := namespace.NewPartition(tree, 0)
		part.Carve(wide)
		pick := func(arg byte) (namespace.Entry, bool) {
			es := part.EntriesAt(wide.Ino)
			if len(es) == 0 {
				return namespace.Entry{}, false
			}
			return es[int(arg)%len(es)], true
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%4, data[i+1]
			switch op {
			case 0:
				if e, ok := pick(arg); ok && e.Key.Frag.Bits < 24 {
					part.SplitEntry(e.Key)
				}
			case 1:
				if e, ok := pick(arg); ok {
					part.MergeWithSibling(e.Key)
				}
			case 2:
				if e, ok := pick(arg); ok {
					part.Absorb(e.Key)
				}
			case 3:
				if e, ok := pick(arg); ok {
					part.SetAuth(e.Key, namespace.MDSID(arg%3))
				}
			}
			requireClean(t, tree, part, i/2, op)
		}
	})
}

// FuzzMigratorLifecycle drives the migration engine through randomized
// submit/tick/abort/authority-churn sequences over a live partition.
// After every op the freeze-window invariant and the lifecycle counter
// reconciliation (submitted = queued + active + completed + dropped +
// aborted) must hold — the same checks the cluster auditor runs per
// epoch.
func FuzzMigratorLifecycle(f *testing.F) {
	f.Add([]byte{6, 0, 0, 1, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{6, 0, 6, 1, 0, 1, 0, 2, 1, 0, 4, 1, 1, 0, 1, 0})
	f.Add([]byte{6, 2, 0, 2, 1, 0, 2, 0, 1, 0, 1, 0, 3, 1, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const ranks = 3
		tree, dirs := fuzzTree(t)
		part := namespace.NewPartition(tree, 0)
		valid := [ranks]bool{true, true, true}
		m := mds.NewMigrator(part, 10, 2, 6)
		m.ValidRank = func(r namespace.MDSID) bool {
			return int(r) >= 0 && int(r) < ranks && valid[r]
		}
		tick := int64(0)
		check := func(step int, op byte) {
			t.Helper()
			if vs := CheckMigrator(m, tick); len(vs) != 0 {
				t.Fatalf("step %d (op %d): freeze invariant broken: %v", step, op, vs[0])
			}
			sum := int64(m.QueuedTasks()) + int64(m.ActiveTasks()) +
				m.CompletedTasks() + m.DroppedTasks() + m.AbortedTasks()
			if m.SubmittedTasks() != sum {
				t.Fatalf("step %d (op %d): submitted %d != lifecycle sum %d",
					step, op, m.SubmittedTasks(), sum)
			}
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%7, data[i+1]
			switch op {
			case 0: // submit an export of an existing entry
				if e, ok := pickEntry(part, arg); ok {
					m.Submit(e.Key, e.Auth, namespace.MDSID(arg%ranks), 1, tick)
				}
			case 1: // advance time
				tick++
				m.Tick(tick)
			case 2: // absorb an entry (may vanish under an active task)
				if e, ok := pickEntry(part, arg); ok {
					part.Absorb(e.Key)
				}
			case 3: // authority churn (staleness at activation)
				if e, ok := pickEntry(part, arg); ok {
					part.SetAuth(e.Key, namespace.MDSID(arg%ranks))
				}
			case 4: // rank failure: abort its tasks, mark it invalid
				r := namespace.MDSID(arg % ranks)
				valid[r] = false
				m.AbortRank(r)
			case 5: // rank recovery
				valid[arg%ranks] = true
			case 6: // carve a new movable subtree
				dir := dirs[int(arg)%len(dirs)]
				if len(part.EntriesAt(dir.Ino)) == 0 {
					part.Carve(dir)
				}
			}
			check(i/2, op)
		}
	})
}
