package audit

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mds"
	"repro/internal/namespace"
)

// fixture builds a small namespace with a partition, migrator, and n
// servers: /a, /b, /c each hold 8 files, and /a additionally holds two
// subdirectories of 4 files each.
func fixture(t testing.TB, n int) (*namespace.Tree, *namespace.Partition, *mds.Migrator, []*mds.Server) {
	t.Helper()
	tree := namespace.NewTree()
	for _, name := range []string{"/a", "/b", "/c"} {
		dir, err := tree.MkdirAll(name)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 8; f++ {
			if _, err := tree.Create(dir, fmt.Sprintf("f%d", f), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, err := tree.Lookup("/a")
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		sub, err := tree.Mkdir(a, fmt.Sprintf("s%d", s))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			if _, err := tree.Create(sub, fmt.Sprintf("f%d", f), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	part := namespace.NewPartition(tree, 0)
	mig := mds.NewMigrator(part, 100, 2, 20)
	var servers []*mds.Server
	for i := 0; i < n; i++ {
		servers = append(servers, mds.NewServer(namespace.MDSID(i), 2000, 6, 0.9))
	}
	return tree, part, mig, servers
}

func mustDir(t testing.TB, tree *namespace.Tree, path string) *namespace.Inode {
	t.Helper()
	in, err := tree.Lookup(path)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestAuditorHealthyState(t *testing.T) {
	tree, part, mig, servers := fixture(t, 2)
	part.Carve(mustDir(t, tree, "/b"))
	a := New(Options{ResolveSamples: 16})
	state := State{
		Tick: 5, Tree: tree, Partition: part,
		Resolver: namespace.NewResolver(part),
		Migrator: mig, Servers: servers,
	}
	if n := a.Check(state); n != 0 {
		t.Fatalf("healthy state produced %d violations: %v", n, a.Violations())
	}
	if a.Passes() != 1 {
		t.Fatalf("passes = %d, want 1", a.Passes())
	}
	if err := a.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}

func TestAuditorFlagsDownAuthority(t *testing.T) {
	tree, part, mig, servers := fixture(t, 2)
	e := part.Carve(mustDir(t, tree, "/b"))
	part.SetAuth(e.Key, 1)
	servers[1].Crash()

	var seen []Violation
	a := New(Options{OnViolation: func(v Violation) { seen = append(seen, v) }})
	state := State{Tick: 9, Tree: tree, Partition: part, Migrator: mig, Servers: servers}
	if n := a.Check(state); n != 1 {
		t.Fatalf("violations = %d, want 1: %v", n, a.Violations())
	}
	v := a.Violations()[0]
	if v.Check != "partition/authority" || v.Tick != 9 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "down and not orphan-tracked") {
		t.Fatalf("violation message = %q", v.String())
	}
	if len(seen) != 1 {
		t.Fatalf("OnViolation fired %d times, want 1", len(seen))
	}
	if err := a.Err(); err == nil || !strings.Contains(err.Error(), "1 invariant violation") {
		t.Fatalf("Err() = %v", err)
	}

	// The same entry is legitimate while its rank is orphan-tracked
	// during a recovery window.
	b := New(Options{})
	state.Orphaned = func(id namespace.MDSID) bool { return id == 1 }
	if n := b.Check(state); n != 0 {
		t.Fatalf("orphan-tracked authority flagged: %v", b.Violations())
	}
}

func TestAuditorFlagsOutOfRangeAuthority(t *testing.T) {
	tree, part, mig, servers := fixture(t, 2)
	e := part.Carve(mustDir(t, tree, "/c"))
	part.SetAuth(e.Key, 7) // no rank 7 in a 2-MDS cluster

	a := New(Options{})
	if n := a.Check(State{Tree: tree, Partition: part, Migrator: mig, Servers: servers}); n != 1 {
		t.Fatalf("violations = %d, want 1: %v", n, a.Violations())
	}
	if got := a.Violations()[0].Check; got != "partition/authority" {
		t.Fatalf("check = %q", got)
	}
}

func TestAuditorMaxViolationsCap(t *testing.T) {
	tree, part, mig, servers := fixture(t, 2)
	for _, p := range []string{"/a", "/b", "/c"} {
		e := part.Carve(mustDir(t, tree, p))
		part.SetAuth(e.Key, 1)
	}
	servers[1].Crash()

	fired := 0
	a := New(Options{MaxViolations: 1, OnViolation: func(Violation) { fired++ }})
	a.Check(State{Tree: tree, Partition: part, Migrator: mig, Servers: servers})
	if len(a.Violations()) != 1 {
		t.Fatalf("recorded %d violations, cap is 1", len(a.Violations()))
	}
	if fired != 3 {
		t.Fatalf("OnViolation fired %d times, want all 3 past the cap", fired)
	}
}

func TestNilAuditorIsDisabled(t *testing.T) {
	var a *Auditor
	if a.EveryTick() || a.Passes() != 0 || a.Violations() != nil || a.Err() != nil {
		t.Fatal("nil auditor leaked state")
	}
	if n := a.Check(State{}); n != 0 {
		t.Fatalf("nil auditor checked something: %d", n)
	}
}

func TestCheckPartitionCleanOnFreshTree(t *testing.T) {
	tree, part, _, _ := fixture(t, 1)
	if vs := CheckPartition(tree, part); len(vs) != 0 {
		t.Fatalf("fresh partition flagged: %v", vs)
	}
	part.Carve(mustDir(t, tree, "/a"))
	e := part.Carve(mustDir(t, tree, "/b"))
	if _, _, ok := part.SplitEntry(e.Key); !ok {
		t.Fatal("split refused")
	}
	if vs := CheckPartition(tree, part); len(vs) != 0 {
		t.Fatalf("carved+split partition flagged: %v", vs)
	}
}
