package audit

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mds"
	"repro/internal/namespace"
	"repro/internal/replica"
	"repro/internal/tenant"
)

// fixture builds a small namespace with a partition, migrator, and n
// servers: /a, /b, /c each hold 8 files, and /a additionally holds two
// subdirectories of 4 files each.
func fixture(t testing.TB, n int) (*namespace.Tree, *namespace.Partition, *mds.Migrator, []*mds.Server) {
	t.Helper()
	tree := namespace.NewTree()
	for _, name := range []string{"/a", "/b", "/c"} {
		dir, err := tree.MkdirAll(name)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 8; f++ {
			if _, err := tree.Create(dir, fmt.Sprintf("f%d", f), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, err := tree.Lookup("/a")
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		sub, err := tree.Mkdir(a, fmt.Sprintf("s%d", s))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			if _, err := tree.Create(sub, fmt.Sprintf("f%d", f), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	part := namespace.NewPartition(tree, 0)
	mig := mds.NewMigrator(part, 100, 2, 20)
	var servers []*mds.Server
	for i := 0; i < n; i++ {
		servers = append(servers, mds.NewServer(namespace.MDSID(i), 2000, 6, 0.9))
	}
	return tree, part, mig, servers
}

func mustDir(t testing.TB, tree *namespace.Tree, path string) *namespace.Inode {
	t.Helper()
	in, err := tree.Lookup(path)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestAuditorHealthyState(t *testing.T) {
	tree, part, mig, servers := fixture(t, 2)
	part.Carve(mustDir(t, tree, "/b"))
	a := New(Options{ResolveSamples: 16})
	state := State{
		Tick: 5, Tree: tree, Partition: part,
		Resolver: namespace.NewResolver(part),
		Migrator: mig, Servers: servers,
	}
	if n := a.Check(state); n != 0 {
		t.Fatalf("healthy state produced %d violations: %v", n, a.Violations())
	}
	if a.Passes() != 1 {
		t.Fatalf("passes = %d, want 1", a.Passes())
	}
	if err := a.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
}

func TestAuditorFlagsDownAuthority(t *testing.T) {
	tree, part, mig, servers := fixture(t, 2)
	e := part.Carve(mustDir(t, tree, "/b"))
	part.SetAuth(e.Key, 1)
	servers[1].Crash()

	var seen []Violation
	a := New(Options{OnViolation: func(v Violation) { seen = append(seen, v) }})
	state := State{Tick: 9, Tree: tree, Partition: part, Migrator: mig, Servers: servers}
	if n := a.Check(state); n != 1 {
		t.Fatalf("violations = %d, want 1: %v", n, a.Violations())
	}
	v := a.Violations()[0]
	if v.Check != "partition/authority" || v.Tick != 9 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "down and not orphan-tracked") {
		t.Fatalf("violation message = %q", v.String())
	}
	if len(seen) != 1 {
		t.Fatalf("OnViolation fired %d times, want 1", len(seen))
	}
	if err := a.Err(); err == nil || !strings.Contains(err.Error(), "1 invariant violation") {
		t.Fatalf("Err() = %v", err)
	}

	// The same entry is legitimate while its rank is orphan-tracked
	// during a recovery window.
	b := New(Options{})
	state.Orphaned = func(id namespace.MDSID) bool { return id == 1 }
	if n := b.Check(state); n != 0 {
		t.Fatalf("orphan-tracked authority flagged: %v", b.Violations())
	}
}

func TestAuditorFlagsOutOfRangeAuthority(t *testing.T) {
	tree, part, mig, servers := fixture(t, 2)
	e := part.Carve(mustDir(t, tree, "/c"))
	part.SetAuth(e.Key, 7) // no rank 7 in a 2-MDS cluster

	a := New(Options{})
	if n := a.Check(State{Tree: tree, Partition: part, Migrator: mig, Servers: servers}); n != 1 {
		t.Fatalf("violations = %d, want 1: %v", n, a.Violations())
	}
	if got := a.Violations()[0].Check; got != "partition/authority" {
		t.Fatalf("check = %q", got)
	}
}

func TestAuditorMaxViolationsCap(t *testing.T) {
	tree, part, mig, servers := fixture(t, 2)
	for _, p := range []string{"/a", "/b", "/c"} {
		e := part.Carve(mustDir(t, tree, p))
		part.SetAuth(e.Key, 1)
	}
	servers[1].Crash()

	fired := 0
	a := New(Options{MaxViolations: 1, OnViolation: func(Violation) { fired++ }})
	a.Check(State{Tree: tree, Partition: part, Migrator: mig, Servers: servers})
	if len(a.Violations()) != 1 {
		t.Fatalf("recorded %d violations, cap is 1", len(a.Violations()))
	}
	if fired != 3 {
		t.Fatalf("OnViolation fired %d times, want all 3 past the cap", fired)
	}
}

func TestNilAuditorIsDisabled(t *testing.T) {
	var a *Auditor
	if a.EveryTick() || a.Passes() != 0 || a.Violations() != nil || a.Err() != nil {
		t.Fatal("nil auditor leaked state")
	}
	if n := a.Check(State{}); n != 0 {
		t.Fatalf("nil auditor checked something: %d", n)
	}
}

func TestCheckPartitionCleanOnFreshTree(t *testing.T) {
	tree, part, _, _ := fixture(t, 1)
	if vs := CheckPartition(tree, part); len(vs) != 0 {
		t.Fatalf("fresh partition flagged: %v", vs)
	}
	part.Carve(mustDir(t, tree, "/a"))
	e := part.Carve(mustDir(t, tree, "/b"))
	if _, _, ok := part.SplitEntry(e.Key); !ok {
		t.Fatal("split refused")
	}
	if vs := CheckPartition(tree, part); len(vs) != 0 {
		t.Fatalf("carved+split partition flagged: %v", vs)
	}
}

// leaseFixture builds a 3-rank state whose /b subtree has a synced
// standby under a lease-enabled replication manager, and returns the
// state, the manager, and the /b subtree key. The standby is synced
// (two pumps: the first starts the bulk copy, the second completes it),
// so GrantLeases on the key succeeds.
func leaseFixture(t *testing.T) (State, *replica.Manager, namespace.FragKey) {
	t.Helper()
	tree, part, mig, servers := fixture(t, 3)
	e := part.Carve(mustDir(t, tree, "/b"))
	pol := replica.DefaultPolicy()
	pol.LeaseTicks = 20
	pol.ReplicateReadFrac = 0.75
	mgr := replica.MustManager(pol)
	mgr.Reconcile(part.Entries(), func(namespace.MDSID) bool { return true })
	env := replica.Env{
		Ranks:    len(servers),
		Eligible: func(r namespace.MDSID) bool { return servers[r].Up() && !servers[r].Draining() },
		Load:     func(namespace.MDSID) float64 { return 0 },
		Stats:    func(namespace.MDSID, namespace.FragKey) (int64, float64) { return 0, 0 },
		Inodes:   func(namespace.FragKey) int { return 8 },
	}
	mgr.Pump(0, env)
	mgr.Pump(1, env)
	state := State{
		Tick: 9, Tree: tree, Partition: part,
		Resolver: namespace.NewResolver(part),
		Migrator: mig, Servers: servers, Replicas: mgr,
	}
	return state, mgr, e.Key
}

// checksNamed counts an auditor's violations carrying the given check
// name.
func checksNamed(a *Auditor, name string) int {
	n := 0
	for _, v := range a.Violations() {
		if v.Check == name {
			n++
		}
	}
	return n
}

func TestAuditorLeaseHealthy(t *testing.T) {
	state, mgr, key := leaseFixture(t)
	if granted := mgr.GrantLeases(key, state.Tick+20); len(granted) == 0 {
		t.Fatal("no leases granted on a synced group")
	}
	a := New(Options{})
	if n := a.Check(state); n != 0 {
		t.Fatalf("healthy leased state produced %d violations: %v", n, a.Violations())
	}
}

func TestAuditorLeaseTermViolation(t *testing.T) {
	state, mgr, key := leaseFixture(t)
	// Expires at tick 5, audited at tick 9, never expired: the expiry
	// pump was skipped, which the term invariant must catch.
	if granted := mgr.GrantLeases(key, 5); len(granted) == 0 {
		t.Fatal("no leases granted on a synced group")
	}
	a := New(Options{})
	if a.Check(state) == 0 || checksNamed(a, "lease/term") == 0 {
		t.Fatalf("stale lease not flagged: %v", a.Violations())
	}
}

func TestAuditorLeaseHolderDrainingViolation(t *testing.T) {
	state, mgr, key := leaseFixture(t)
	granted := mgr.GrantLeases(key, state.Tick+20)
	if len(granted) == 0 {
		t.Fatal("no leases granted on a synced group")
	}
	// Drain the holder rank without revoking its lease — the cluster's
	// drain path must DropRank first, so a surviving lease here means
	// that plumbing broke.
	if !state.Servers[granted[0]].StartDrain() {
		t.Fatalf("rank %d refused drain", granted[0])
	}
	a := New(Options{})
	if a.Check(state) == 0 || checksNamed(a, "lease/holder") == 0 {
		t.Fatalf("lease on draining rank not flagged: %v", a.Violations())
	}
}

// tenantFixture builds a clean 2-tenant state mid-tick: tenant 0 was
// bucket-admitted 6 ops and served 6, tenant 1 admitted 3 and served 2.
func tenantFixture(t *testing.T) (State, *tenant.Manager) {
	t.Helper()
	tree, part, mig, servers := fixture(t, 2)
	pol := tenant.DefaultPolicy()
	pol.Rate, pol.Burst = 10, 20
	tn := tenant.MustManager(pol)
	if err := tn.Bind([]int{4, 4}); err != nil {
		t.Fatal(err)
	}
	tn.BeginTick()
	tn.NoteAdmitted(0, tn.Take(0, 6))
	tn.NoteAdmitted(1, tn.Take(1, 3))
	state := State{
		Tick: 9, Tree: tree, Partition: part,
		Resolver: namespace.NewResolver(part),
		Migrator: mig, Servers: servers,
		Tenancy:        tn,
		TenantAdmitted: 9,
		TenantServed:   []int64{6, 2},
	}
	return state, tn
}

func TestAuditorTenantHealthy(t *testing.T) {
	state, tn := tenantFixture(t)
	a := New(Options{})
	if n := a.Check(state); n != 0 {
		t.Fatalf("healthy tenant state produced %d violations: %v", n, a.Violations())
	}
	// Buckets stayed in range after the takes.
	for i := 0; i < tn.N(); i++ {
		if tok := tn.Tokens(i); tok < 0 || tok > tn.BurstOf(i) {
			t.Fatalf("tenant %d tokens %g outside bucket", i, tok)
		}
	}
}

func TestAuditorTenantConservationViolation(t *testing.T) {
	state, _ := tenantFixture(t)
	// The cluster claims one more admitted op than the tenants were
	// charged for — an op slipped past the buckets.
	state.TenantAdmitted = 10
	a := New(Options{})
	if a.Check(state) == 0 || checksNamed(a, "tenant/conservation") == 0 {
		t.Fatalf("admission mismatch not flagged: %v", a.Violations())
	}
}

func TestAuditorTenantServedViolation(t *testing.T) {
	state, _ := tenantFixture(t)
	// Tenant 1's bucket admitted 3 ops this tick but the ranks served 5:
	// the serve phase bypassed admission control.
	state.TenantServed = []int64{6, 5}
	a := New(Options{})
	if a.Check(state) == 0 || checksNamed(a, "tenant/served") == 0 {
		t.Fatalf("over-serving not flagged: %v", a.Violations())
	}
}

func TestAuditorTenantNilSkipsFamily(t *testing.T) {
	state, _ := tenantFixture(t)
	state.Tenancy = nil
	state.TenantAdmitted = 999 // would violate conservation if checked
	a := New(Options{})
	if n := a.Check(state); n != 0 {
		t.Fatalf("nil tenancy still audited: %v", a.Violations())
	}
}

func TestAuditorLeaseInvalidateViolation(t *testing.T) {
	state, mgr, key := leaseFixture(t)
	if granted := mgr.GrantLeases(key, state.Tick+20); len(granted) == 0 {
		t.Fatal("no leases granted on a synced group")
	}
	// The key was write-invalidated this tick, yet its leases are still
	// live at audit time.
	state.LeaseWriteRevoked = []namespace.FragKey{key}
	a := New(Options{})
	if a.Check(state) == 0 || checksNamed(a, "lease/invalidate") == 0 {
		t.Fatalf("write-invalidated subtree with live leases not flagged: %v", a.Violations())
	}
}
