// Package audit validates cross-module invariants of a running cluster:
// partition structure and authority liveness, governed-inode
// conservation, resolver-cache agreement, migration freeze windows and
// counter reconciliation, client credit/debt/backoff bounds, heat
// non-negativity, and ops conservation. The auditor is strictly
// read-only — it never mutates simulation state, touches the RNG, or
// perturbs tick ordering — so a run with the auditor enabled is
// byte-identical to the same run without it. A nil *Auditor is the
// zero-cost disabled state, mirroring the obs bus pattern.
//
// The same invariant checks double as the oracle of the package's fuzz
// targets: randomized partition/fragment/migration op sequences are
// valid exactly when the checks hold after every step.
package audit

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/mds"
	"repro/internal/namespace"
	"repro/internal/replica"
	"repro/internal/tenant"
)

// Violation is one invariant failure found by an audit pass.
type Violation struct {
	Tick  int64  // tick the failing pass ran at
	Check string // invariant family, e.g. "partition/authority"
	Msg   string
}

func (v Violation) String() string {
	return fmt.Sprintf("tick %d: %s: %s", v.Tick, v.Check, v.Msg)
}

// Options configures an Auditor.
type Options struct {
	// EveryTick runs the audit on every tick instead of only at epoch
	// close. Epoch cadence catches everything eventually; tick cadence
	// pins a violation to the tick that introduced it.
	EveryTick bool
	// ResolveSamples is how many inodes each pass cross-checks between
	// the resolver cache and a fresh ancestor walk (0 = default 64).
	// Sampling is a deterministic stride that rotates with the pass
	// counter, so repeated passes cover different inodes without RNG.
	ResolveSamples int
	// MaxViolations caps the retained violations (0 = default 100);
	// checks keep running after the cap but stop recording.
	MaxViolations int
	// OnViolation, when set, is called for each violation as it is
	// found (e.g. to fail a test immediately with context).
	OnViolation func(Violation)
}

// Auditor runs invariant checks over cluster state. The zero value is
// not useful; construct with New. A nil *Auditor is valid and disabled:
// every method is nil-receiver-safe.
type Auditor struct {
	opt        Options
	passes     int64
	violations []Violation
}

// New creates an auditor. Zero option fields take their defaults.
func New(opt Options) *Auditor {
	if opt.ResolveSamples <= 0 {
		opt.ResolveSamples = 64
	}
	if opt.MaxViolations <= 0 {
		opt.MaxViolations = 100
	}
	return &Auditor{opt: opt}
}

// EveryTick reports whether the auditor wants tick cadence. Nil-safe.
func (a *Auditor) EveryTick() bool { return a != nil && a.opt.EveryTick }

// Passes returns how many audit passes have run. Nil-safe.
func (a *Auditor) Passes() int64 {
	if a == nil {
		return 0
	}
	return a.passes
}

// Violations returns the recorded violations (shared slice). Nil-safe.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	return a.violations
}

// Err returns nil when no invariant has been violated, and otherwise an
// error summarizing the first violation and the total count. Nil-safe,
// so callers can unconditionally check cfg.Audit.Err() after a run.
func (a *Auditor) Err() error {
	if a == nil || len(a.violations) == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d invariant violation(s), first: %s",
		len(a.violations), a.violations[0])
}

func (a *Auditor) failf(tick int64, check, format string, args ...any) {
	v := Violation{Tick: tick, Check: check, Msg: fmt.Sprintf(format, args...)}
	if len(a.violations) < a.opt.MaxViolations {
		a.violations = append(a.violations, v)
	}
	if a.opt.OnViolation != nil {
		a.opt.OnViolation(v)
	}
}

// State is the read-only snapshot of one audit pass. Tree, Partition,
// Migrator, Servers, and Clients are required; the rest degrade
// gracefully: a nil Resolver skips the cache check, a nil Orphaned
// treats no rank as orphan-tracked.
type State struct {
	Tick      int64
	Tree      *namespace.Tree
	Partition *namespace.Partition
	Resolver  *namespace.Resolver
	Migrator  *mds.Migrator
	Servers   []*mds.Server
	Clients   []*client.Client
	// Orphaned reports whether a rank is down with its subtrees still
	// tracked for takeover (such entries legitimately point at a dead
	// rank during the recovery window).
	Orphaned func(namespace.MDSID) bool
	// Forwards is the cluster's cumulative forwarded-hop counter.
	Forwards int64
	// RacedCreates counts create ops completed without an MDS serve
	// because the name raced into existence (the one legitimate gap
	// between client ops-done and server ops-served).
	RacedCreates int64
	// Replicas is the warm-standby replication manager; nil skips the
	// replica invariant family.
	Replicas *replica.Manager
	// LeaseWriteRevoked lists the subtree keys whose read leases were
	// write-invalidated during this tick; the lease family checks each
	// holds zero live leases by tick end.
	LeaseWriteRevoked []namespace.FragKey
	// Tenancy is the per-tenant admission manager; nil skips the tenant
	// invariant family.
	Tenancy *tenant.Manager
	// TenantAdmitted is the cluster's count of ops bucket-admitted this
	// tick, summed across tenants as the engine charged them.
	TenantAdmitted int64
	// TenantServed is the per-tenant count of ops actually served this
	// tick (indexed by tenant).
	TenantServed []int64
}

// Check runs every invariant over the state and returns how many new
// violations this pass found. Nil-safe (a nil auditor checks nothing).
func (a *Auditor) Check(s State) int {
	if a == nil {
		return 0
	}
	before := len(a.violations)
	a.passes++
	a.checkPartition(s)
	a.checkResolver(s)
	a.checkFrozen(s)
	a.checkMigratorCounters(s)
	a.checkClients(s)
	a.checkHeat(s)
	a.checkOps(s)
	a.checkLifecycle(s)
	a.checkReplicas(s)
	a.checkLeases(s)
	a.checkTenants(s)
	return len(a.violations) - before
}

// checkTenants validates the tenant-QoS invariants at tick end. Bucket
// ("tenant/bucket"): every token bucket holds between zero and its
// burst — refill clamps at the burst and Take never overdraws.
// Conservation ("tenant/conservation"): the per-tenant admission
// counters sum to the cluster's total bucket-admitted ops for the tick
// — no op is admitted without being charged to exactly one tenant.
// Served ("tenant/served"): no tenant is served more ops in a tick than
// its bucket admitted — serving past the bucket would mean the rank
// pools bypassed admission control.
func (a *Auditor) checkTenants(s State) {
	tn := s.Tenancy
	if tn == nil {
		return
	}
	var admitted int64
	for t := 0; t < tn.N(); t++ {
		tok, burst := tn.Tokens(t), tn.BurstOf(t)
		if tok < 0 || tok > burst+1e-9 {
			a.failf(s.Tick, "tenant/bucket",
				"tenant %d: tokens %g outside [0, burst %g]", t, tok, burst)
		}
		adm := tn.AdmittedTick(t)
		if adm < 0 {
			a.failf(s.Tick, "tenant/conservation",
				"tenant %d: negative admitted count %d", t, adm)
		}
		admitted += adm
		if t < len(s.TenantServed) && s.TenantServed[t] > adm {
			a.failf(s.Tick, "tenant/served",
				"tenant %d: served %d ops this tick, bucket admitted only %d",
				t, s.TenantServed[t], adm)
		}
	}
	if admitted != s.TenantAdmitted {
		a.failf(s.Tick, "tenant/conservation",
			"per-tenant admitted ops sum %d != cluster admitted total %d",
			admitted, s.TenantAdmitted)
	}
}

// checkLeases validates the read-lease invariants at tick end. Term
// ("lease/term"): no lease outlives its expiry — the expiry pump drops
// Expires <= tick before the audit runs, so a surviving stale lease
// means the pump was skipped. Holder ("lease/holder"): every lease is
// held by a synced standby of its group — never the primary, never a
// rank that is down or draining (leases die with DropRank, and standbys
// were already confined to Active ranks). Invalidation
// ("lease/invalidate"): a subtree whose leases were write-revoked this
// tick holds zero live leases — the epoch-close grant pass must not
// have re-granted them in the same tick.
func (a *Auditor) checkLeases(s State) {
	if s.Replicas == nil || s.Replicas.Policy().LeaseTicks <= 0 {
		return
	}
	s.Replicas.ForEachGroup(func(g *replica.Group) {
		for _, l := range g.Leases {
			if l.Expires <= s.Tick {
				a.failf(s.Tick, "lease/term",
					"group %v/%s lease on rank %d expired at tick %d, still live",
					g.Key.Dir, g.Key.Frag, l.Rank, l.Expires)
			}
			if l.Rank == g.Primary {
				a.failf(s.Tick, "lease/holder",
					"group %v/%s lease held by its own primary %d",
					g.Key.Dir, g.Key.Frag, l.Rank)
			}
			synced := false
			for _, sb := range g.Standbys {
				if sb.Rank == l.Rank && !sb.Syncing {
					synced = true
					break
				}
			}
			if !synced {
				a.failf(s.Tick, "lease/holder",
					"group %v/%s lease on rank %d, which is not a synced standby",
					g.Key.Dir, g.Key.Frag, l.Rank)
			}
			if int(l.Rank) < 0 || int(l.Rank) >= len(s.Servers) ||
				!s.Servers[l.Rank].Up() || s.Servers[l.Rank].Draining() {
				a.failf(s.Tick, "lease/holder",
					"group %v/%s lease on dead or draining rank %d",
					g.Key.Dir, g.Key.Frag, l.Rank)
			}
		}
	})
	for _, k := range s.LeaseWriteRevoked {
		if n := len(s.Replicas.LeaseHolders(k)); n > 0 {
			a.failf(s.Tick, "lease/invalidate",
				"write-invalidated subtree %v/%s still holds %d live leases",
				k.Dir, k.Frag, n)
		}
	}
}

// checkReplicas validates the warm-standby replication invariants.
// R-conservation ("replica/conservation"): every partition entry has
// exactly one group led by its authoritative rank, group size never
// exceeds R, standbys are distinct live ranks different from the
// primary. Journal divergence ("replica/divergence"): a synced
// standby's applied sequence never passes the journal head and lags it
// by at most one record (the ship loop applies the outstanding tail
// before appending), and its applied (ops, heat) state equals the
// journal's prefix sums at its applied sequence — the state a
// promotion would install.
func (a *Auditor) checkReplicas(s State) {
	if s.Replicas == nil {
		return
	}
	pol := s.Replicas.Policy()
	entries := s.Partition.Entries()
	auth := make(map[namespace.FragKey]namespace.MDSID, len(entries))
	for _, e := range entries {
		auth[e.Key] = e.Auth
	}
	groups := 0
	s.Replicas.ForEachGroup(func(g *replica.Group) {
		groups++
		want, ok := auth[g.Key]
		switch {
		case !ok:
			a.failf(s.Tick, "replica/conservation",
				"group %v/%s has no partition entry", g.Key.Dir, g.Key.Frag)
		case want != g.Primary:
			a.failf(s.Tick, "replica/conservation",
				"group %v/%s primary %d != authoritative rank %d",
				g.Key.Dir, g.Key.Frag, g.Primary, want)
		}
		if 1+len(g.Standbys) > pol.R {
			a.failf(s.Tick, "replica/conservation",
				"group %v/%s has %d members, R=%d",
				g.Key.Dir, g.Key.Frag, 1+len(g.Standbys), pol.R)
		}
		seen := make(map[namespace.MDSID]bool, len(g.Standbys))
		for _, sb := range g.Standbys {
			if sb.Rank == g.Primary {
				a.failf(s.Tick, "replica/conservation",
					"group %v/%s standby %d is its own primary",
					g.Key.Dir, g.Key.Frag, sb.Rank)
			}
			if seen[sb.Rank] {
				a.failf(s.Tick, "replica/conservation",
					"group %v/%s has duplicate standby %d",
					g.Key.Dir, g.Key.Frag, sb.Rank)
			}
			seen[sb.Rank] = true
			if int(sb.Rank) < 0 || int(sb.Rank) >= len(s.Servers) ||
				!s.Servers[sb.Rank].Up() || s.Servers[sb.Rank].Draining() {
				// Active ranks only: Up() spans Draining, and a draining
				// rank is leaving — placement, resync, and promotion all
				// gate on the importable predicate, so a standby parked
				// on one is a placement bug, not a transient.
				a.failf(s.Tick, "replica/conservation",
					"group %v/%s standby on dead or draining rank %d",
					g.Key.Dir, g.Key.Frag, sb.Rank)
			}
			if sb.Syncing {
				continue
			}
			if sb.Applied > g.Appended() {
				a.failf(s.Tick, "replica/divergence",
					"group %v/%s standby %d applied %d past journal head %d",
					g.Key.Dir, g.Key.Frag, sb.Rank, sb.Applied, g.Appended())
				continue
			}
			if lag := g.Appended() - sb.Applied; lag > 1 {
				a.failf(s.Tick, "replica/divergence",
					"group %v/%s standby %d lags %d records (bound 1)",
					g.Key.Dir, g.Key.Frag, sb.Rank, lag)
			}
			ops, heat, ok := g.PrefixAt(sb.Applied)
			if !ok {
				a.failf(s.Tick, "replica/divergence",
					"group %v/%s journal truncated past standby %d's applied seq %d",
					g.Key.Dir, g.Key.Frag, sb.Rank, sb.Applied)
				continue
			}
			if sb.Ops != ops {
				a.failf(s.Tick, "replica/divergence",
					"group %v/%s standby %d applied ops %d != journal prefix %d",
					g.Key.Dir, g.Key.Frag, sb.Rank, sb.Ops, ops)
			}
			if d := sb.Heat - heat; d > 1e-6 || d < -1e-6 {
				a.failf(s.Tick, "replica/divergence",
					"group %v/%s standby %d applied heat %g != journal prefix %g",
					g.Key.Dir, g.Key.Frag, sb.Rank, sb.Heat, heat)
			}
			if sb.Heat < -1e-9 {
				a.failf(s.Tick, "replica/divergence",
					"group %v/%s standby %d has negative heat %g",
					g.Key.Dir, g.Key.Frag, sb.Rank, sb.Heat)
			}
		}
	})
	if groups != len(entries) {
		a.failf(s.Tick, "replica/conservation",
			"%d replication groups for %d partition entries", groups, len(entries))
	}
}

// checkLifecycle validates the elastic drain/decommission invariants:
// a decommissioned rank has fully left the metadata plane — it governs
// zero subtree entries and is no endpoint of any export, queued or
// active — and no active export imports into a draining rank. A
// *queued* task targeting a draining (or freshly decommissioned) rank
// is a legal transient: it was planned before the drain started and
// the activation gate drops it with reason "importer_excluded" before
// it can move anything.
func (a *Auditor) checkLifecycle(s State) {
	anyRetired := false
	for _, srv := range s.Servers {
		if srv.State() == mds.RankDecommissioned || srv.Draining() {
			anyRetired = true
			break
		}
	}
	if !anyRetired {
		return
	}
	decom := func(id namespace.MDSID) bool {
		return int(id) >= 0 && int(id) < len(s.Servers) &&
			s.Servers[id].State() == mds.RankDecommissioned
	}
	draining := func(id namespace.MDSID) bool {
		return int(id) >= 0 && int(id) < len(s.Servers) && s.Servers[id].Draining()
	}
	for _, e := range s.Partition.Entries() {
		if decom(e.Auth) {
			a.failf(s.Tick, "lifecycle/decommissioned",
				"entry %v/%s still owned by decommissioned rank %d",
				e.Key.Dir, e.Key.Frag, e.Auth)
		}
	}
	s.Migrator.ForEachActive(func(t *mds.ExportTask) {
		if decom(t.From) || decom(t.To) {
			a.failf(s.Tick, "lifecycle/decommissioned",
				"active export %v/%s has decommissioned endpoint (from %d, to %d)",
				t.Key.Dir, t.Key.Frag, t.From, t.To)
		}
		if draining(t.To) {
			a.failf(s.Tick, "lifecycle/draining",
				"active export %v/%s imports into draining rank %d",
				t.Key.Dir, t.Key.Frag, t.To)
		}
	})
	s.Migrator.ForEachQueued(func(t *mds.ExportTask) {
		if decom(t.From) {
			a.failf(s.Tick, "lifecycle/decommissioned",
				"queued export %v/%s from decommissioned rank %d",
				t.Key.Dir, t.Key.Frag, t.From)
		}
	})
}

// checkPartition validates partition structure (per-directory fragment
// entries sorted and disjoint, rooted at live directories), authority
// liveness (every entry's rank is in range and up or orphan-tracked),
// and governed-inode conservation (per-entry counts are non-negative
// and sum to the tree's total).
func (a *Auditor) checkPartition(s State) {
	for _, v := range CheckPartition(s.Tree, s.Partition) {
		v.Tick = s.Tick
		if len(a.violations) < a.opt.MaxViolations {
			a.violations = append(a.violations, v)
		}
		if a.opt.OnViolation != nil {
			a.opt.OnViolation(v)
		}
	}
	orphaned := s.Orphaned
	if orphaned == nil {
		orphaned = func(namespace.MDSID) bool { return false }
	}
	for _, e := range s.Partition.Entries() {
		if int(e.Auth) < 0 || int(e.Auth) >= len(s.Servers) {
			a.failf(s.Tick, "partition/authority",
				"entry %v/%s authority %d out of range [0,%d)",
				e.Key.Dir, e.Key.Frag, e.Auth, len(s.Servers))
			continue
		}
		if !s.Servers[e.Auth].Up() && !orphaned(e.Auth) {
			a.failf(s.Tick, "partition/authority",
				"entry %v/%s owned by rank %d, which is down and not orphan-tracked",
				e.Key.Dir, e.Key.Frag, e.Auth)
		}
	}
}

// checkResolver cross-checks a deterministic sample of inodes between
// the version-cached resolver and a fresh GoverningEntry walk. Reading
// the resolver fills its cache, which is semantically invisible (the
// resolve-cache differential test is the proof), so the audit stays
// observably read-only.
func (a *Auditor) checkResolver(s State) {
	if s.Resolver == nil {
		return
	}
	maxIno := s.Tree.MaxIno()
	if maxIno < namespace.RootIno {
		return
	}
	n := int64(maxIno-namespace.RootIno) + 1
	stride := n / int64(a.opt.ResolveSamples)
	if stride < 1 {
		stride = 1
	}
	// Rotate the sample window with the pass counter so successive
	// passes cover different inodes — deterministically, without RNG.
	offset := a.passes % stride
	for i := int64(namespace.RootIno) + offset; i <= int64(maxIno); i += stride {
		in := s.Tree.Get(namespace.Ino(i))
		if in == nil {
			continue
		}
		got := s.Resolver.Entry(in)
		want := s.Partition.GoverningEntry(in)
		if got != want {
			a.failf(s.Tick, "resolver/agreement",
				"ino %d: cached entry %v/%s@%d, fresh walk %v/%s@%d",
				i, got.Key.Dir, got.Key.Frag, got.Auth,
				want.Key.Dir, want.Key.Frag, want.Auth)
		}
	}
}

// checkFrozen validates that the migrator's frozen set is exactly the
// set of active tasks inside their commit windows, and that no two
// active tasks target the same subtree entry.
func (a *Auditor) checkFrozen(s State) {
	for _, v := range CheckMigrator(s.Migrator, s.Tick) {
		v.Tick = s.Tick
		if len(a.violations) < a.opt.MaxViolations {
			a.violations = append(a.violations, v)
		}
		if a.opt.OnViolation != nil {
			a.opt.OnViolation(v)
		}
	}
}

// checkMigratorCounters reconciles the lifecycle counters: every
// submitted task is queued, active, completed, dropped, or aborted.
func (a *Auditor) checkMigratorCounters(s State) {
	m := s.Migrator
	sum := int64(m.QueuedTasks()) + int64(m.ActiveTasks()) +
		m.CompletedTasks() + m.DroppedTasks() + m.AbortedTasks()
	if m.SubmittedTasks() != sum {
		a.failf(s.Tick, "migrator/counters",
			"submitted %d != queued %d + active %d + completed %d + dropped %d + aborted %d",
			m.SubmittedTasks(), m.QueuedTasks(), m.ActiveTasks(),
			m.CompletedTasks(), m.DroppedTasks(), m.AbortedTasks())
	}
}

// checkClients validates per-client bounds: non-negative data debt,
// backoff within the exponential cap, retry deadlines inside the
// reachable window, and the credit accumulator within one tick's rate.
func (a *Auditor) checkClients(s State) {
	for _, cl := range s.Clients {
		if cl.Debt() < 0 {
			a.failf(s.Tick, "client/bounds", "client %d: negative debt %d", cl.ID, cl.Debt())
		}
		if cl.Backoff() < 0 || cl.Backoff() > client.MaxBackoffTicks {
			a.failf(s.Tick, "client/bounds",
				"client %d: backoff %d outside [0,%d]", cl.ID, cl.Backoff(), client.MaxBackoffTicks)
		}
		if cl.RetryAt() > s.Tick+client.MaxBackoffTicks {
			a.failf(s.Tick, "client/bounds",
				"client %d: retry-at %d beyond tick %d + max backoff %d",
				cl.ID, cl.RetryAt(), s.Tick, client.MaxBackoffTicks)
		}
		maxCredit := cl.Rate()
		if maxCredit < 1 {
			maxCredit = 1
		}
		if cr := cl.Credit(); cr < 0 || cr > maxCredit {
			a.failf(s.Tick, "client/bounds",
				"client %d: credit %g outside [0,%g]", cl.ID, cr, maxCredit)
		}
		// A backing-off client must name the rank that drove it there
		// (RecoverMDS clears backoffs by matching rank, so a dangling or
		// out-of-range rank would strand the client until it times out).
		if br := cl.BackoffRank(); cl.Backoff() > 0 &&
			(br < 0 || int(br) >= len(s.Servers)) {
			a.failf(s.Tick, "client/bounds",
				"client %d: backing off against invalid rank %d", cl.ID, br)
		}
	}
}

// checkHeat validates that no decayed popularity counter reads
// negative on any server (heat only ever accumulates accesses and
// decays multiplicatively toward zero).
func (a *Auditor) checkHeat(s State) {
	for _, srv := range s.Servers {
		if h := srv.MinHeat(); h < 0 {
			a.failf(s.Tick, "server/heat", "rank %d: negative heat %g", srv.ID, h)
		}
	}
}

// checkOps validates ops conservation. Per client: every op drawn from
// the stream is either completed or still pending. Across the cluster:
// every completed client op was served by exactly one MDS, except
// creates that raced into existence (accounted by RacedCreates).
// Forwarding units charged at relay ranks never exceed the cluster's
// forwarded-hop count (a saturated relay is counted as a hop but
// cannot be charged). Write-back mode ("ops/journal"): each client's
// in-flight count stays within its pending queue, the cluster's
// in-flight total equals the ops sitting in rank group-commit journals,
// and a down rank's journal is empty.
func (a *Auditor) checkOps(s State) {
	var done, inflight int64
	for _, cl := range s.Clients {
		issued, pending := cl.Issued(), cl.PendingOps()
		if issued != cl.OpsDone()+pending {
			a.failf(s.Tick, "ops/conservation",
				"client %d: issued %d != done %d + pending %d",
				cl.ID, issued, cl.OpsDone(), pending)
		}
		if fl := cl.Inflight(); fl < 0 || fl > pending {
			// Write-back mode: journaled ops are a prefix of the
			// pending queue, never more than it holds.
			a.failf(s.Tick, "ops/conservation",
				"client %d: inflight %d outside [0, pending %d]",
				cl.ID, fl, pending)
		} else {
			inflight += fl
		}
		done += cl.OpsDone()
	}
	var served, fwd, journaled int64
	for _, srv := range s.Servers {
		served += srv.OpsTotal()
		fwd += srv.Forwards()
		jops := srv.Journal().Ops()
		journaled += jops
		if !srv.Up() && jops != 0 {
			// A crash drops the rank's unapplied journal (the batches
			// re-queue client-side), and nothing may flush to it while
			// it is down.
			a.failf(s.Tick, "ops/journal",
				"rank %d: down with %d journaled ops", srv.ID, jops)
		}
	}
	if inflight != journaled {
		a.failf(s.Tick, "ops/journal",
			"client in-flight ops %d != journaled ops %d", inflight, journaled)
	}
	if done != served+s.RacedCreates {
		a.failf(s.Tick, "ops/conservation",
			"client ops done %d != server ops served %d + raced creates %d",
			done, served, s.RacedCreates)
	}
	if fwd > s.Forwards {
		a.failf(s.Tick, "ops/forwards",
			"forwarding units charged at ranks %d exceed cluster forwards %d", fwd, s.Forwards)
	}
}

// fragStart mirrors the partition's ordering key: the first 32-bit hash
// a fragment covers.
func fragStart(f namespace.Frag) uint32 {
	if f.Bits == 0 {
		return 0
	}
	return f.Value << (32 - uint32(f.Bits))
}

// fragSpan returns the fragment's hash range as [start, end] in uint64
// (end inclusive; uint64 avoids overflow for the whole fragment).
func fragSpan(f namespace.Frag) (uint64, uint64) {
	start := uint64(fragStart(f))
	width := uint64(1) << (32 - uint64(f.Bits))
	return start, start + width - 1
}

// CheckPartition validates partition structure and inode conservation
// against the tree, independent of any cluster: every entry is rooted
// at a live directory; the fragment entries of each directory are
// disjoint; per-entry governed-inode counts are non-negative and sum
// to the tree's total. It is the shared oracle of FuzzPartitionOps and
// FuzzFragSplitMerge. Violations carry no tick.
func CheckPartition(tree *namespace.Tree, part *namespace.Partition) []Violation {
	var out []Violation
	fail := func(check, format string, args ...any) {
		out = append(out, Violation{Check: check, Msg: fmt.Sprintf(format, args...)})
	}

	entries := part.Entries()
	if len(entries) != part.NumEntries() {
		fail("partition/structure", "NumEntries %d != len(Entries()) %d",
			part.NumEntries(), len(entries))
	}
	rootSeen := false
	// Entries() sorts by (dir, bits, value); regroup by directory and
	// verify each group's fragments are pairwise disjoint by span.
	byDir := make(map[namespace.Ino][]namespace.Entry)
	for _, e := range entries {
		byDir[e.Key.Dir] = append(byDir[e.Key.Dir], e)
		if e.Key.Dir == namespace.RootIno {
			rootSeen = true
		}
		dir := tree.Get(e.Key.Dir)
		if dir == nil {
			fail("partition/structure", "entry %v/%s rooted at missing inode", e.Key.Dir, e.Key.Frag)
			continue
		}
		if !dir.IsDir {
			fail("partition/structure", "entry %v/%s rooted at a file", e.Key.Dir, e.Key.Frag)
		}
	}
	if !rootSeen {
		fail("partition/structure", "no entry rooted at the root directory")
	}
	for dir, es := range byDir {
		for i := 0; i < len(es); i++ {
			si, ei := fragSpan(es[i].Key.Frag)
			for j := i + 1; j < len(es); j++ {
				sj, ej := fragSpan(es[j].Key.Frag)
				if si <= ej && sj <= ei {
					fail("partition/structure",
						"dir %v: fragments %s and %s overlap",
						dir, es[i].Key.Frag, es[j].Key.Frag)
				}
			}
		}
	}

	sizes := part.SubtreeSizes()
	sum := 0
	for key, n := range sizes {
		if n < 0 {
			fail("partition/inodes", "entry %v/%s governs negative inode count %d",
				key.Dir, key.Frag, n)
		}
		sum += n
	}
	if sum != tree.NumInodes() {
		fail("partition/inodes", "governed inodes sum %d != tree total %d",
			sum, tree.NumInodes())
	}
	return out
}

// CheckMigrator validates the migration engine's freeze-window
// invariant at the given tick: the frozen set is exactly the active
// tasks inside their commit windows, and no subtree entry is targeted
// by two active tasks. It is the shared oracle of
// FuzzMigratorLifecycle. Violations carry no tick (the caller stamps).
func CheckMigrator(m *mds.Migrator, tick int64) []Violation {
	var out []Violation
	fail := func(check, format string, args ...any) {
		out = append(out, Violation{Check: check, Msg: fmt.Sprintf(format, args...)})
	}
	want := make(map[namespace.FragKey]bool)
	m.ForEachActive(func(t *mds.ExportTask) {
		if t.State != mds.TaskActive {
			fail("migrator/frozen", "task %v/%s in active set with state %d",
				t.Key.Dir, t.Key.Frag, t.State)
		}
		if want[t.Key] {
			fail("migrator/frozen", "two active tasks target entry %v/%s",
				t.Key.Dir, t.Key.Frag)
		}
		if t.DoneTick-tick <= m.FreezeTicks {
			want[t.Key] = true
		}
	})
	frozen := m.FrozenKeys()
	for _, k := range frozen {
		if !want[k] {
			fail("migrator/frozen", "entry %v/%s frozen without an active commit window",
				k.Dir, k.Frag)
		}
		delete(want, k)
	}
	for k := range want {
		fail("migrator/frozen", "active task %v/%s inside its commit window but not frozen",
			k.Dir, k.Frag)
	}
	return out
}
