package trace

import (
	"fmt"
	"testing"

	"repro/internal/namespace"
)

func fixture(t testing.TB) (*namespace.Tree, *namespace.Inode, []*namespace.Inode) {
	t.Helper()
	tr := namespace.NewTree()
	d, err := tr.Mkdir(tr.Root(), "d")
	if err != nil {
		t.Fatal(err)
	}
	files := make([]*namespace.Inode, 10)
	for i := range files {
		f, err := tr.Create(d, fmt.Sprintf("f%02d", i), 1)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = f
	}
	return tr, d, files
}

func rootKey() namespace.FragKey {
	return namespace.FragKey{Dir: namespace.RootIno, Frag: namespace.WholeFrag}
}

func TestRecordFirstVisits(t *testing.T) {
	_, _, files := fixture(t)
	c := NewCollector(4)
	c.BeginEpoch(0)
	key := rootKey()
	for _, f := range files {
		c.Record(key, f, 0)
	}
	got := c.RecentKey(key, 0, 1)
	if got.Visits != 10 || got.Distinct != 10 || got.FirstVisits != 10 {
		t.Fatalf("scan window: %+v", got)
	}
	if got.Recurrent != 0 {
		t.Fatal("scan must have no recurrent visits")
	}
}

func TestRecordRecurrent(t *testing.T) {
	_, _, files := fixture(t)
	c := NewCollector(4)
	key := rootKey()
	c.BeginEpoch(0)
	c.Record(key, files[0], 0)
	c.BeginEpoch(1)
	c.Record(key, files[0], 1)
	c.Record(key, files[0], 1) // repeated within the window: 1 distinct
	got := c.RecentKey(key, 1, 1)
	if got.Visits != 2 || got.Distinct != 1 || got.Recurrent != 1 {
		t.Fatalf("recurrent window: %+v", got)
	}
	if got.FirstVisits != 0 {
		t.Fatal("already-seen inode must not count as first visit")
	}
}

func TestRecurrentOnlyWithinHistory(t *testing.T) {
	_, _, files := fixture(t)
	c := NewCollector(2)
	key := rootKey()
	c.BeginEpoch(0)
	c.Record(key, files[0], 0)
	// Epoch 5 is more than 2 windows later: the old visit is outside
	// the history, so the access is not recurrent (but not a first
	// visit either, since the inode has been seen before).
	for e := int64(1); e <= 5; e++ {
		c.BeginEpoch(e)
	}
	c.Record(key, files[0], 5)
	got := c.RecentKey(key, 5, 1)
	if got.Recurrent != 0 {
		t.Fatalf("stale visit counted as recurrent: %+v", got)
	}
	if got.FirstVisits != 0 {
		t.Fatalf("seen inode counted as first visit: %+v", got)
	}
}

func TestRecentSumsWindows(t *testing.T) {
	_, _, files := fixture(t)
	c := NewCollector(4)
	key := rootKey()
	for e := int64(0); e < 3; e++ {
		c.BeginEpoch(e)
		c.Record(key, files[int(e)], e)
	}
	if got := c.RecentKey(key, 2, 3); got.Visits != 3 {
		t.Fatalf("3-window sum: %+v", got)
	}
	if got := c.RecentKey(key, 2, 1); got.Visits != 1 {
		t.Fatalf("1-window sum: %+v", got)
	}
	// n beyond history clamps.
	if got := c.RecentKey(key, 2, 100); got.Visits != 3 {
		t.Fatalf("clamped sum: %+v", got)
	}
}

func TestRingRecycling(t *testing.T) {
	_, _, files := fixture(t)
	c := NewCollector(2) // ring of 3
	key := rootKey()
	for e := int64(0); e < 10; e++ {
		c.BeginEpoch(e)
		c.Record(key, files[0], e)
	}
	// Only the last 2 windows are in scope.
	if got := c.RecentKey(key, 9, 2); got.Visits != 2 {
		t.Fatalf("after recycling: %+v", got)
	}
}

func TestDirPropagation(t *testing.T) {
	tr := namespace.NewTree()
	a, _ := tr.Mkdir(tr.Root(), "a")
	b, _ := tr.Mkdir(a, "b")
	f, _ := tr.Create(b, "f", 1)
	c := NewCollector(4)
	key := rootKey()
	c.BeginEpoch(0)
	c.Record(key, f, 0)
	// Both /a/b and /a and / accumulate the access (governing root is /).
	if got := c.RecentDir(b.Ino, 0, 1); got.Visits != 1 {
		t.Fatalf("dir b: %+v", got)
	}
	if got := c.RecentDir(a.Ino, 0, 1); got.Visits != 1 {
		t.Fatalf("dir a: %+v", got)
	}
	if got := c.RecentDir(namespace.RootIno, 0, 1); got.Visits != 1 {
		t.Fatalf("root dir: %+v", got)
	}
}

func TestDirPropagationStopsAtSubtreeRoot(t *testing.T) {
	tr := namespace.NewTree()
	a, _ := tr.Mkdir(tr.Root(), "a")
	b, _ := tr.Mkdir(a, "b")
	f, _ := tr.Create(b, "f", 1)
	c := NewCollector(4)
	// Governing entry is rooted at /a: propagation must not reach /.
	key := namespace.FragKey{Dir: a.Ino, Frag: namespace.WholeFrag}
	c.BeginEpoch(0)
	c.Record(key, f, 0)
	if got := c.RecentDir(a.Ino, 0, 1); got.Visits != 1 {
		t.Fatalf("subtree root: %+v", got)
	}
	if got := c.RecentDir(namespace.RootIno, 0, 1); !got.IsZero() {
		t.Fatalf("propagation crossed subtree root: %+v", got)
	}
}

func TestCreditSibling(t *testing.T) {
	tr := namespace.NewTree()
	a, _ := tr.Mkdir(tr.Root(), "a")
	c := NewCollector(4)
	key := namespace.FragKey{Dir: a.Ino, Frag: namespace.WholeFrag}
	c.BeginEpoch(3)
	c.CreditSibling(key, 3)
	c.CreditSibling(key, 3)
	got := c.RecentKey(key, 3, 1)
	if got.SiblingCredits != 2 {
		t.Fatalf("sibling credits: %+v", got)
	}
	if d := c.RecentDir(a.Ino, 3, 1); d.SiblingCredits != 2 {
		t.Fatalf("dir sibling credits: %+v", d)
	}
	_ = tr
}

func TestActiveKeys(t *testing.T) {
	tr := namespace.NewTree()
	a, _ := tr.Mkdir(tr.Root(), "a")
	fa, _ := tr.Create(a, "f", 1)
	b, _ := tr.Mkdir(tr.Root(), "b")
	fb, _ := tr.Create(b, "g", 1)
	ka := namespace.FragKey{Dir: a.Ino, Frag: namespace.WholeFrag}
	kb := namespace.FragKey{Dir: b.Ino, Frag: namespace.WholeFrag}
	c := NewCollector(3)
	c.BeginEpoch(0)
	c.Record(ka, fa, 0)
	c.BeginEpoch(1)
	c.Record(kb, fb, 1)
	keys := c.ActiveKeys(1, 2)
	if len(keys) != 2 {
		t.Fatalf("active keys = %d, want 2", len(keys))
	}
	keys = c.ActiveKeys(1, 1)
	if _, ok := keys[ka]; ok {
		t.Fatal("ka should be inactive in latest window only")
	}
	if _, ok := keys[kb]; !ok {
		t.Fatal("kb missing")
	}
}

func TestForget(t *testing.T) {
	tr := namespace.NewTree()
	a, _ := tr.Mkdir(tr.Root(), "a")
	fa, _ := tr.Create(a, "f", 1)
	ka := namespace.FragKey{Dir: a.Ino, Frag: namespace.WholeFrag}
	c := NewCollector(3)
	c.BeginEpoch(0)
	c.Record(ka, fa, 0)
	c.Forget(ka)
	if got := c.RecentKey(ka, 0, 3); !got.IsZero() {
		t.Fatalf("forgotten key still has stats: %+v", got)
	}
}

func TestRecordAutoOpensEpoch(t *testing.T) {
	_, _, files := fixture(t)
	c := NewCollector(3)
	c.Record(rootKey(), files[0], 7)
	if c.Epoch() != 7 {
		t.Fatalf("epoch = %d", c.Epoch())
	}
	if got := c.RecentKey(rootKey(), 7, 1); got.Visits != 1 {
		t.Fatalf("auto-open: %+v", got)
	}
}

func TestZipfLikeVsScanSignature(t *testing.T) {
	// Sanity check of the classification signal the pattern analyzer
	// depends on: a rescan-heavy stream yields high recurrent counts,
	// a pure scan yields pure first visits.
	tr := namespace.NewTree()
	d, _ := tr.Mkdir(tr.Root(), "d")
	var files []*namespace.Inode
	for i := 0; i < 50; i++ {
		f, _ := tr.Create(d, fmt.Sprintf("f%03d", i), 1)
		files = append(files, f)
	}
	key := rootKey()

	hot := NewCollector(4)
	for e := int64(0); e < 4; e++ {
		hot.BeginEpoch(e)
		for i := 0; i < 10; i++ { // same hot set every window
			hot.Record(key, files[i], e)
		}
	}
	got := hot.RecentKey(key, 3, 1)
	if got.Recurrent != 10 || got.FirstVisits != 0 {
		t.Fatalf("hot-set signature: %+v", got)
	}

	scan := NewCollector(4)
	idx := 0
	for e := int64(0); e < 4; e++ {
		scan.BeginEpoch(e)
		for i := 0; i < 10; i++ {
			scan.Record(key, files[idx], e)
			idx++
		}
	}
	got = scan.RecentKey(key, 3, 1)
	if got.Recurrent != 0 || got.FirstVisits != 10 {
		t.Fatalf("scan signature: %+v", got)
	}
}
