package trace

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/namespace"
)

// TestCollectorConservationProperty: over any access sequence, each
// window's counters obey the structural identities —
// Distinct <= Visits, Recurrent <= Distinct, FirstVisits <= Visits —
// and the root-dir aggregate equals the sum over the epoch's records.
func TestCollectorConservationProperty(t *testing.T) {
	f := func(accesses []uint16, epochJumps []bool) bool {
		tree := namespace.NewTree()
		d, _ := tree.MkdirAll("/d")
		var files []*namespace.Inode
		for i := 0; i < 24; i++ {
			in, err := tree.Create(d, fmt.Sprintf("f%02d", i), 1)
			if err != nil {
				return false
			}
			files = append(files, in)
		}
		key := namespace.FragKey{Dir: namespace.RootIno, Frag: namespace.WholeFrag}
		col := NewCollector(4)
		epoch := int64(0)
		perEpochVisits := map[int64]int{}
		for i, a := range accesses {
			if i < len(epochJumps) && epochJumps[i] {
				epoch++
			}
			col.Record(key, files[int(a)%len(files)], epoch)
			perEpochVisits[epoch]++
		}
		// Check the identities for each of the last few epochs.
		for e := epoch; e >= 0 && e > epoch-4; e-- {
			c := col.RecentKey(key, epoch, int(epoch-e)+1)
			_ = c
			w := col.RecentKey(key, e, 1)
			if w.Distinct > w.Visits || w.Recurrent > w.Distinct || w.FirstVisits > w.Visits {
				return false
			}
			if w.Visits != perEpochVisits[e] {
				return false
			}
			// Dir-level aggregation matches the key-level counters at
			// the root (everything propagates to the root dir here).
			dw := col.RecentDir(namespace.RootIno, e, 1)
			if dw != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestVisitedDescMatchesHotState: VisitedDesc at the root always equals
// the number of inodes with EverAccessed set.
func TestVisitedDescMatchesHotState(t *testing.T) {
	f := func(accesses []uint8) bool {
		tree := namespace.NewTree()
		d, _ := tree.MkdirAll("/d")
		var files []*namespace.Inode
		for i := 0; i < 16; i++ {
			in, err := tree.Create(d, fmt.Sprintf("f%02d", i), 1)
			if err != nil {
				return false
			}
			files = append(files, in)
		}
		key := namespace.FragKey{Dir: namespace.RootIno, Frag: namespace.WholeFrag}
		col := NewCollector(3)
		for i, a := range accesses {
			col.Record(key, files[int(a)%len(files)], int64(i/8))
		}
		visited := 0
		tree.Walk(func(in *namespace.Inode) bool {
			if in.Hot.EverAccessed() {
				visited++
			}
			return true
		})
		return tree.Root().VisitedDesc == visited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
