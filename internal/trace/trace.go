// Package trace implements the access-history bookkeeping the paper's
// "Stats recording" section describes: metadata accesses are broken
// into fixed-size short sequences (cutting windows, one per balancing
// epoch here), and per-subtree counters record how many visits were
// recurrent (temporal locality) versus first visits to never-before-seen
// inodes (spatial locality). The Lunule pattern analyzer turns these
// counters into alpha/beta locality factors and migration indices.
//
// Counters are kept at two granularities:
//
//   - per partition entry (FragKey): the unit migration decisions use;
//   - per directory, propagated up the ancestor chain to the governing
//     subtree root: the finer view the subtree selector needs when it
//     has to split a subtree and pick descendant directories.
package trace

import (
	"repro/internal/namespace"
)

// Counters aggregates the accesses observed in one cutting window for
// one subtree (or one directory's subtree-local region).
type Counters struct {
	// Visits is the total number of metadata accesses.
	Visits int
	// Distinct is the number of distinct inodes touched in the window.
	Distinct int
	// Recurrent is the number of distinct inodes in this window that
	// had also been visited in one of the previous history windows —
	// the numerator of the paper's recurrent-visit ratio (alpha).
	Recurrent int
	// FirstVisits is the number of accesses to inodes never visited
	// before — the spatial-locality signal (beta numerator, l_s).
	FirstVisits int
	// SiblingCredits counts l_s credit received from first visits in
	// sibling subtrees (the paper's sibling access-correlation rule).
	SiblingCredits int
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Visits += o.Visits
	c.Distinct += o.Distinct
	c.Recurrent += o.Recurrent
	c.FirstVisits += o.FirstVisits
	c.SiblingCredits += o.SiblingCredits
}

// IsZero reports whether no activity was recorded.
func (c Counters) IsZero() bool {
	return c == Counters{}
}

// window is one cutting window's worth of counters.
type window struct {
	epoch int64
	byDir map[namespace.Ino]*Counters
	byKey map[namespace.FragKey]*Counters
}

// Collector records accesses into a ring of cutting windows. Each MDS
// owns one Collector (the paper keeps the history trace per MDS); when
// a subtree migrates, the importer's collector starts cold for it,
// exactly as a real importer would.
type Collector struct {
	history int // number of windows retained and used for classification
	ring    []window
	epoch   int64
}

// NewCollector creates a collector retaining the given number of recent
// cutting windows (the paper's N). history must be >= 1.
func NewCollector(history int) *Collector {
	if history < 1 {
		panic("trace: history must be >= 1")
	}
	ring := make([]window, history+1)
	for i := range ring {
		ring[i] = window{
			epoch: -1,
			byDir: make(map[namespace.Ino]*Counters),
			byKey: make(map[namespace.FragKey]*Counters),
		}
	}
	// epoch starts at -1 so the first Record (possibly at epoch 0)
	// opens its window.
	return &Collector{history: history, ring: ring, epoch: -1}
}

// History returns the configured window count N.
func (c *Collector) History() int { return c.history }

// Epoch returns the current epoch.
func (c *Collector) Epoch() int64 { return c.epoch }

func (c *Collector) slot(epoch int64) *window {
	return &c.ring[int(epoch%int64(len(c.ring)))]
}

// BeginEpoch opens the cutting window for the given epoch, recycling the
// oldest window in the ring.
func (c *Collector) BeginEpoch(epoch int64) {
	w := c.slot(epoch)
	if w.epoch == epoch {
		return
	}
	w.epoch = epoch
	for k := range w.byDir {
		delete(w.byDir, k)
	}
	for k := range w.byKey {
		delete(w.byKey, k)
	}
	c.epoch = epoch
}

func (w *window) dir(ino namespace.Ino) *Counters {
	ctr := w.byDir[ino]
	if ctr == nil {
		ctr = &Counters{}
		w.byDir[ino] = ctr
	}
	return ctr
}

func (w *window) key(k namespace.FragKey) *Counters {
	ctr := w.byKey[k]
	if ctr == nil {
		ctr = &Counters{}
		w.byKey[k] = ctr
	}
	return ctr
}

// Record classifies one access to in, governed by the subtree entry
// key, and updates the current window. It touches the inode's access
// history (the per-inode boolean epoch queue), so each metadata access
// must be recorded exactly once.
//
// Classification per the paper:
//   - recurrent: the inode was visited in one of the previous N windows
//     (counted once per inode per window);
//   - first visit: the inode had never been accessed before.
func (c *Collector) Record(key namespace.FragKey, in *namespace.Inode, epoch int64) {
	if c.RecordNoVisit(key, in, epoch) {
		in.MarkVisited()
	}
}

// RecordNoVisit is Record with the first-ever-visit MarkVisited side
// effect left to the caller: it returns true when the inode had never
// been accessed before, in which case the caller owes it a
// MarkVisited. The parallel engine uses this to defer the ancestor
// walk (which mutates shared per-directory counters) to a serial
// barrier; everything recorded here touches only the collector and the
// inode itself, both owned by the serving rank.
func (c *Collector) RecordNoVisit(key namespace.FragKey, in *namespace.Inode, epoch int64) (firstEver bool) {
	if epoch != c.epoch {
		c.BeginEpoch(epoch)
	}
	firstThisWindow := !in.Hot.AccessedIn(epoch)
	everSeen := in.Hot.EverAccessed()
	recentBefore := false
	if firstThisWindow && everSeen {
		recentBefore = in.Hot.RecentEpochs(epoch-1, c.history) > 0
	}
	in.Hot.Touch(epoch)

	var delta Counters
	delta.Visits = 1
	if firstThisWindow {
		delta.Distinct = 1
		if recentBefore {
			delta.Recurrent = 1
		}
	}
	if !everSeen {
		delta.FirstVisits = 1
	}

	w := c.slot(epoch)
	w.key(key).Add(delta)

	// Propagate along the ancestor directory chain up to and including
	// the governing subtree root, so any directory inside the subtree
	// has selector-usable stats.
	root := key.Dir
	for d := in.Parent; d != nil; d = d.Parent {
		w.dir(d.Ino).Add(delta)
		if d.Ino == root {
			break
		}
	}
	return !everSeen
}

// RecordFreshRun records n first-ever accesses to freshly created
// inodes under one parent directory in a single pass: every fresh
// inode is by construction a first visit, a distinct visit, and not
// recurrent, so the whole run folds into one counter delta and one
// ancestor-chain walk instead of n map probes each. The caller owes
// each inode its Hot.Touch and MarkVisited (the write-back serve path
// touches at serve time and marks at the adoption barrier).
func (c *Collector) RecordFreshRun(key namespace.FragKey, parent *namespace.Inode, epoch int64, n int64) {
	if n <= 0 {
		return
	}
	if epoch != c.epoch {
		c.BeginEpoch(epoch)
	}
	var delta Counters
	delta.Visits, delta.Distinct, delta.FirstVisits = int(n), int(n), int(n)
	w := c.slot(epoch)
	w.key(key).Add(delta)
	root := key.Dir
	for d := parent; d != nil; d = d.Parent {
		w.dir(d.Ino).Add(delta)
		if d.Ino == root {
			break
		}
	}
}

// CreditSibling applies one unit of sibling-correlation l_s credit to
// the subtree at key (rooted at rootDir) in the current window.
func (c *Collector) CreditSibling(key namespace.FragKey, epoch int64) {
	if epoch != c.epoch {
		c.BeginEpoch(epoch)
	}
	w := c.slot(epoch)
	w.key(key).SiblingCredits++
	if key.Dir != 0 {
		w.dir(key.Dir).SiblingCredits++
	}
}

// sumWindows folds fn over the valid windows among the last n epochs
// ending at epoch.
func (c *Collector) sumWindows(epoch int64, n int, fn func(*window) Counters) Counters {
	if n > c.history {
		n = c.history
	}
	var total Counters
	for i := int64(0); i < int64(n); i++ {
		e := epoch - i
		if e < 0 {
			break
		}
		w := c.slot(e)
		if w.epoch != e {
			continue
		}
		total.Add(fn(w))
	}
	return total
}

// RecentKey returns the summed counters for the subtree entry over the
// last n cutting windows ending at epoch (n is clamped to the history).
func (c *Collector) RecentKey(key namespace.FragKey, epoch int64, n int) Counters {
	return c.sumWindows(epoch, n, func(w *window) Counters {
		if ctr := w.byKey[key]; ctr != nil {
			return *ctr
		}
		return Counters{}
	})
}

// RecentDir returns the summed counters attributed to the directory's
// region over the last n cutting windows ending at epoch.
func (c *Collector) RecentDir(dir namespace.Ino, epoch int64, n int) Counters {
	return c.sumWindows(epoch, n, func(w *window) Counters {
		if ctr := w.byDir[dir]; ctr != nil {
			return *ctr
		}
		return Counters{}
	})
}

// ActiveKeys returns the set of subtree entries with any recorded
// activity in the last n windows ending at epoch.
func (c *Collector) ActiveKeys(epoch int64, n int) map[namespace.FragKey]struct{} {
	if n > c.history {
		n = c.history
	}
	out := make(map[namespace.FragKey]struct{})
	for i := int64(0); i < int64(n); i++ {
		e := epoch - i
		if e < 0 {
			break
		}
		w := c.slot(e)
		if w.epoch != e {
			continue
		}
		for k := range w.byKey {
			out[k] = struct{}{}
		}
	}
	return out
}

// Forget drops all state for the given subtree entry across all
// retained windows. Exporters call it after a subtree is migrated away.
func (c *Collector) Forget(key namespace.FragKey) {
	for i := range c.ring {
		delete(c.ring[i].byKey, key)
	}
}
