package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueOrdering(t *testing.T) {
	var q Queue
	var fired []int
	q.Schedule(5, func() { fired = append(fired, 5) })
	q.Schedule(1, func() { fired = append(fired, 1) })
	q.Schedule(3, func() { fired = append(fired, 3) })
	q.RunDue(4)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v", fired)
	}
	if q.Len() != 1 {
		t.Fatalf("pending = %d", q.Len())
	}
	next, ok := q.NextTick()
	if !ok || next != 5 {
		t.Fatalf("next = %d/%v", next, ok)
	}
	q.RunDue(5)
	if len(fired) != 3 || fired[2] != 5 {
		t.Fatalf("fired = %v", fired)
	}
	if _, ok := q.NextTick(); ok {
		t.Fatal("queue should be drained")
	}
}

func TestQueueSameTickFIFO(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(7, func() { fired = append(fired, i) })
	}
	q.RunDue(7)
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-tick events out of submission order: %v", fired)
		}
	}
}

func TestQueueScheduleDuringRun(t *testing.T) {
	var q Queue
	var fired []string
	q.Schedule(1, func() {
		fired = append(fired, "a")
		q.Schedule(1, func() { fired = append(fired, "b") }) // same tick, during run
		q.Schedule(9, func() { fired = append(fired, "late") })
	})
	q.RunDue(1)
	if len(fired) != 2 || fired[1] != "b" {
		t.Fatalf("fired = %v", fired)
	}
	q.RunDue(9)
	if len(fired) != 3 || fired[2] != "late" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestQueueOrderProperty(t *testing.T) {
	f := func(ticks []uint8) bool {
		var q Queue
		var fired []int64
		for _, tk := range ticks {
			tk := int64(tk)
			q.Schedule(tk, func() { fired = append(fired, tk) })
		}
		q.RunDue(1 << 30)
		if len(fired) != len(ticks) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
