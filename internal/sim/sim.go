// Package sim provides the deterministic discrete-event plumbing the
// cluster loop schedules against: a tick-ordered event queue with
// stable FIFO ordering for same-tick events. Determinism matters — two
// events scheduled for the same tick must always fire in submission
// order, or seeded runs would diverge.
package sim

import "container/heap"

// Event is a callback scheduled for a tick.
type Event struct {
	Tick int64
	Fn   func()

	seq int // submission order breaks same-tick ties
}

// Queue is a deterministic event queue. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq int
}

// Schedule enqueues fn to run at the given tick.
func (q *Queue) Schedule(tick int64, fn func()) {
	q.seq++
	heap.Push(&q.h, &Event{Tick: tick, Fn: fn, seq: q.seq})
}

// RunDue fires (in order) every event scheduled at or before tick.
func (q *Queue) RunDue(tick int64) {
	for q.h.Len() > 0 && q.h[0].Tick <= tick {
		ev := heap.Pop(&q.h).(*Event)
		ev.Fn()
	}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.h.Len() }

// NextTick returns the tick of the earliest pending event, or ok=false
// when the queue is empty.
func (q *Queue) NextTick() (int64, bool) {
	if q.h.Len() == 0 {
		return 0, false
	}
	return q.h[0].Tick, true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Tick != h[j].Tick {
		return h[i].Tick < h[j].Tick
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
