package workload

import (
	"fmt"
	"math"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// Tenants partitions the client population into N tenants, each
// running its own generator over its own subtree, and tags every
// resulting ClientSpec with the owning tenant's index. Tenant sizes
// are Zipf-skewed (tenant t's weight is 1/(t+1)^Skew, every tenant
// gets at least one client), matching the long-tailed tenant-size
// distributions container platforms report.
//
// The per-tenant generators come from a factory, so tenant mixes
// reuse the existing generators (pointed at per-tenant directories
// via their Dir knob and de-collided via ClientOffset) instead of
// copy-pasting them.
type Tenants struct {
	cfg     TenantsConfig
	factory TenantFactory
}

// TenantFactory builds tenant t's generator given its client count and
// the global index of its first client. Implementations must thread
// clientOffset into the generator's ClientOffset knob whenever the
// generator bakes client indices into names, and should give each
// tenant its own Dir so subtrees — and therefore balancing decisions —
// stay per-tenant.
type TenantFactory func(t, clients, clientOffset int) Generator

// TenantsConfig shapes the tenant partition.
type TenantsConfig struct {
	// Tenants is the number of tenants (at least 1).
	Tenants int
	// Skew is the Zipf exponent of the tenant-size distribution:
	// 0 gives equal shares, larger values concentrate clients in the
	// low-numbered tenants.
	Skew float64
	// Counts, when set, fixes each tenant's client count explicitly
	// instead of deriving sizes from Skew. Its length must match
	// Tenants (or set it), every count must be at least 1, and the sum
	// must equal the cluster's client count.
	Counts []int
}

func (c *TenantsConfig) defaults() {
	if c.Tenants < 1 {
		c.Tenants = len(c.Counts)
	}
	if c.Tenants < 1 {
		c.Tenants = 1
	}
	if c.Skew < 0 {
		c.Skew = 0
	}
}

// NewTenants creates a tenant-partitioned workload over the factory.
func NewTenants(cfg TenantsConfig, factory TenantFactory) *Tenants {
	cfg.defaults()
	if factory == nil {
		panic("workload: tenants needs a factory")
	}
	return &Tenants{cfg: cfg, factory: factory}
}

// DefaultTenants builds the standard multi-tenant mixture: tenant t
// runs {Zipf, MDtest, ReadStorm}[t%3] inside its own /tenant<t>
// subtree, with Zipf-skewed tenant sizes. This is what the simulator's
// -tenants flag runs.
func DefaultTenants(tenants int, skew float64) *Tenants {
	return NewTenants(TenantsConfig{Tenants: tenants, Skew: skew},
		func(t, clients, off int) Generator {
			dir := fmt.Sprintf("/tenant%02d", t)
			switch t % 3 {
			case 0:
				return NewZipf(ZipfConfig{Dir: dir + "/zipf", ClientOffset: off})
			case 1:
				return NewMD(MDConfig{Dir: dir + "/md", ClientOffset: off})
			default:
				return NewReadStorm(ReadStormConfig{Dir: dir + "/storm", ClientOffset: off, WriteEvery: 50})
			}
		})
}

// Name implements Generator.
func (g *Tenants) Name() string { return fmt.Sprintf("Tenants(%d)", g.cfg.Tenants) }

// Partition returns the per-tenant client counts for a total
// population: weights 1/(t+1)^Skew normalized over clients, every
// tenant at least 1, largest-first rounding absorbed by tenant 0.
func (g *Tenants) Partition(clients int) ([]int, error) {
	n := g.cfg.Tenants
	if clients < n {
		return nil, fmt.Errorf("workload: %d clients cannot cover %d tenants", clients, n)
	}
	if len(g.cfg.Counts) > 0 {
		if len(g.cfg.Counts) != n {
			return nil, fmt.Errorf("workload: %d tenant counts for %d tenants", len(g.cfg.Counts), n)
		}
		sum := 0
		for t, c := range g.cfg.Counts {
			if c < 1 {
				return nil, fmt.Errorf("workload: tenant %d count %d < 1", t, c)
			}
			sum += c
		}
		if sum != clients {
			return nil, fmt.Errorf("workload: tenant counts sum %d != %d clients", sum, clients)
		}
		return append([]int(nil), g.cfg.Counts...), nil
	}
	weights := make([]float64, n)
	var sum float64
	for t := range weights {
		weights[t] = 1 / math.Pow(float64(t+1), g.cfg.Skew)
		sum += weights[t]
	}
	counts := make([]int, n)
	assigned := 0
	for t := range counts {
		c := int(float64(clients) * weights[t] / sum)
		if c < 1 {
			c = 1
		}
		counts[t] = c
		assigned += c
	}
	// Fix up rounding drift: trim from the largest tenants (never below
	// one client), then hand any surplus to tenant 0.
	for assigned > clients {
		biggest := 0
		for t := range counts {
			if counts[t] > counts[biggest] {
				biggest = t
			}
		}
		if counts[biggest] == 1 {
			break
		}
		counts[biggest]--
		assigned--
	}
	counts[0] += clients - assigned
	return counts, nil
}

// Setup implements Generator: it partitions the clients, runs each
// tenant's generator over its contiguous client range, and tags the
// returned specs with the tenant index.
func (g *Tenants) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	counts, err := g.Partition(clients)
	if err != nil {
		return nil, err
	}
	specs := make([]ClientSpec, 0, clients)
	off := 0
	for t, count := range counts {
		gen := g.factory(t, count, off)
		sub, err := gen.Setup(tree, count, src.Fork(uint64(t)+100))
		if err != nil {
			return nil, fmt.Errorf("workload: setup tenant %d (%s): %w", t, gen.Name(), err)
		}
		if len(sub) != count {
			return nil, fmt.Errorf("workload: tenant %d generator returned %d specs, want %d", t, len(sub), count)
		}
		for i := range sub {
			sub[i].Tenant = t
		}
		specs = append(specs, sub...)
		off += count
	}
	return specs, nil
}
