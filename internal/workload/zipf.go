package workload

import (
	"fmt"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// ZipfConfig shapes the Filebench Zipfian read workload: each client
// owns a private directory of files and reads them with a Zipfian
// popularity (80% of requests touch 20% of files), the strongest
// temporal locality among the five workloads (Table 1: 50.0% metadata
// ops: one open + one data read per request).
type ZipfConfig struct {
	// FilesPerClient is the private-directory population (paper: 10000).
	FilesPerClient int
	// OpsPerClient is the number of reads each client performs.
	OpsPerClient int
	// Exponent is the Zipf exponent (0.98 gives the 80/20 shape).
	Exponent float64
	// MeanFileBytes is the average file size.
	MeanFileBytes int64
	// Dir is the workload's root directory (default "/zipf").
	Dir string
	// ClientOffset shifts the client indices baked into directory
	// names. Sub-populations that share a root (tenant mixes) must use
	// disjoint offsets, or their directory names collide.
	ClientOffset int
}

func (c *ZipfConfig) defaults() {
	if c.FilesPerClient == 0 {
		c.FilesPerClient = 1000
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 12000
	}
	if c.Exponent == 0 {
		c.Exponent = 0.98
	}
	if c.MeanFileBytes == 0 {
		c.MeanFileBytes = 16 * 1024
	}
	if c.Dir == "" {
		c.Dir = "/zipf"
	}
}

// Zipf is the Filebench Zipfian read workload generator.
type Zipf struct{ cfg ZipfConfig }

// NewZipf creates a Zipfian read generator.
func NewZipf(cfg ZipfConfig) *Zipf {
	cfg.defaults()
	return &Zipf{cfg: cfg}
}

// Name implements Generator.
func (g *Zipf) Name() string { return "Zipf" }

// Setup implements Generator: it builds /zipf/client<i>/file<j> and
// gives each client Zipf-distributed reads over its own directory.
func (g *Zipf) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	root, err := tree.MkdirAll(g.cfg.Dir)
	if err != nil {
		return nil, err
	}
	streams := make([]Stream, clients)
	for c := 0; c < clients; c++ {
		dir, err := tree.Mkdir(root, fmt.Sprintf("client%03d", g.cfg.ClientOffset+c))
		if err != nil {
			return nil, err
		}
		files := make([]*namespace.Inode, g.cfg.FilesPerClient)
		for f := 0; f < g.cfg.FilesPerClient; f++ {
			in, err := tree.Create(dir, fmt.Sprintf("file%05d", f), g.cfg.MeanFileBytes)
			if err != nil {
				return nil, err
			}
			files[f] = in
		}
		streams[c] = newZipfReads(files, g.cfg.OpsPerClient, g.cfg.Exponent, src.Fork(uint64(c)+10))
	}
	return jitterSpecs(streams, 0, 0, src.Fork(1)), nil
}

func newZipfReads(files []*namespace.Inode, ops int, exponent float64, src *rng.Source) Stream {
	// Decouple popularity rank from file creation order.
	perm := src.Perm(len(files))
	zipf := rng.NewZipf(src, exponent, len(files))
	done := 0
	// One read per refill: reuse a single-element batch (seqStream
	// copies ops out by value), so the steady-state stream allocates
	// nothing.
	buf := make([]Op, 1)
	return &seqStream{fill: func() []Op {
		if done >= ops {
			return nil
		}
		done++
		f := files[perm[zipf.Next()]]
		buf[0] = Op{Kind: OpOpen, Target: f, DataSize: f.Size}
		return buf
	}}
}
