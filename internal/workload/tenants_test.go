package workload

import (
	"testing"

	"repro/internal/namespace"
	"repro/internal/rng"
)

func TestTenantsPartition(t *testing.T) {
	g := NewTenants(TenantsConfig{Tenants: 4, Skew: 0}, func(tn, n, off int) Generator {
		return NewZipf(ZipfConfig{})
	})
	counts, err := g.Partition(16)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for tn, c := range counts {
		if c < 1 {
			t.Errorf("tenant %d got %d clients", tn, c)
		}
		total += c
	}
	if total != 16 {
		t.Fatalf("partition sums to %d, want 16", total)
	}
	skewed := NewTenants(TenantsConfig{Tenants: 4, Skew: 1.2}, nil2)
	counts, err = skewed.Partition(40)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] <= counts[3] {
		t.Errorf("skewed partition not decreasing: %v", counts)
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 40 {
		t.Fatalf("skewed partition sums to %d, want 40", sum)
	}
	if _, err := skewed.Partition(3); err == nil {
		t.Error("fewer clients than tenants must fail")
	}
}

// nil2 is a trivial factory for partition-only tests.
func nil2(tn, n, off int) Generator { return NewZipf(ZipfConfig{}) }

func TestTenantsExplicitCounts(t *testing.T) {
	g := NewTenants(TenantsConfig{Counts: []int{12, 2, 1, 1}}, nil2)
	counts, err := g.Partition(16)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{12, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("explicit counts %v, want %v", counts, want)
		}
	}
	if _, err := g.Partition(15); err == nil {
		t.Error("count sum mismatch must fail")
	}
	if _, err := NewTenants(TenantsConfig{Tenants: 3, Counts: []int{8, 8}}, nil2).Partition(16); err == nil {
		t.Error("count length mismatch must fail")
	}
	if _, err := NewTenants(TenantsConfig{Counts: []int{16, 0}}, nil2).Partition(16); err == nil {
		t.Error("zero tenant count must fail")
	}
}

func TestTenantsSetupTagsAndUniqueness(t *testing.T) {
	tree := namespace.NewTree()
	g := DefaultTenants(3, 1.0)
	specs, err := g.Setup(tree, 12, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 12 {
		t.Fatalf("got %d specs, want 12", len(specs))
	}
	counts, _ := g.Partition(12)
	want, i := 0, 0
	for _, sp := range specs {
		for i >= counts[want] {
			i -= counts[want]
			want++
		}
		if sp.Tenant != want {
			t.Fatalf("spec tagged tenant %d, want %d (counts %v)", sp.Tenant, want, counts)
		}
		i++
	}
	// Draining every stream must not collide on create names: the tree
	// would reject a duplicate create, so just drain a bounded prefix.
	for _, sp := range specs {
		for k := 0; k < 100; k++ {
			if _, ok := sp.Stream.Next(); !ok {
				break
			}
		}
	}
}

func TestClientOffsetDisambiguatesNames(t *testing.T) {
	tree := namespace.NewTree()
	// Two sub-populations sharing ONE directory: without disjoint
	// offsets their create names would collide.
	a := NewMDShared(MDSharedConfig{Dir: "/shared", CreatesPerClient: 5, ClientOffset: 0})
	b := NewMDShared(MDSharedConfig{Dir: "/shared", CreatesPerClient: 5, ClientOffset: 2})
	sa, err := a.Setup(tree, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Setup(tree, 2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, specs := range [][]ClientSpec{sa, sb} {
		for _, sp := range specs {
			for {
				op, ok := sp.Stream.Next()
				if !ok {
					break
				}
				if op.Kind != OpCreate {
					continue
				}
				if seen[op.Name] {
					t.Fatalf("duplicate create name %q across sub-populations", op.Name)
				}
				seen[op.Name] = true
			}
		}
	}
	if len(seen) != 20 {
		t.Fatalf("drained %d unique creates, want 20", len(seen))
	}
}
