// Package workload implements synthetic generators for the five
// workloads of the paper's Table 1 (CNN image pre-processing, NLP
// training, web trace replay, Filebench Zipfian read, and MDtest
// create) plus their mixture. Each generator builds its portion of the
// namespace and hands every client a deterministic stream of metadata
// operations whose structure reproduces the balancer-relevant
// properties of the original workload: access order (scan vs. skewed
// re-visits), namespace shape (directory fan-out, file sizes), and the
// metadata-to-data operation ratio.
//
// The original datasets (ImageNet, the THUTC corpus, the FSU Apache
// trace) are proprietary or unavailable; the generators substitute
// synthetic equivalents with the same shape, per DESIGN.md.
package workload

import (
	"fmt"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// OpKind is the kind of a file system operation.
type OpKind int

// Operation kinds. All are metadata operations; an op with DataSize > 0
// additionally transfers that many bytes through the data path when the
// experiment enables it.
const (
	OpLookup OpKind = iota
	OpGetattr
	OpOpen
	OpReaddir
	OpCreate
)

// String returns the kind name.
func (k OpKind) String() string {
	switch k {
	case OpLookup:
		return "lookup"
	case OpGetattr:
		return "getattr"
	case OpOpen:
		return "open"
	case OpReaddir:
		return "readdir"
	case OpCreate:
		return "create"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// IsWrite reports whether the kind mutates the namespace. Creates are
// the only writes in the op vocabulary; lookup/getattr/open/readdir all
// read metadata. The lease layer uses this split: reads may be served
// by a lease holder, writes always go to the primary and invalidate any
// outstanding read leases on the subtree.
func (k OpKind) IsWrite() bool { return k == OpCreate }

// Op is one file system operation issued by a client.
type Op struct {
	Kind OpKind
	// Target is the inode the op addresses (nil for creates, which
	// address Parent/Name instead).
	Target *namespace.Inode
	// Parent and Name describe a create.
	Parent *namespace.Inode
	Name   string
	// Size is the file size for creates.
	Size int64
	// DataSize is the number of bytes moved through the data path when
	// data access is enabled (0 for pure-metadata ops).
	DataSize int64
}

// Stream produces a client's operation sequence.
type Stream interface {
	// Next returns the next op, or ok=false when the client's job is
	// complete.
	Next() (op Op, ok bool)
}

// TreeReader is implemented by streams whose Next() consults the live
// namespace tree (trace replay resolves recorded paths against it).
// The parallel engine must not draw ops ahead of an unadopted create
// for such streams: a lookup recorded after a create only resolves once
// the created inode is actually linked into the tree. Synthetic
// generators build ops from their own state and never read the tree,
// so they batch freely.
type TreeReader interface {
	ReadsTree() bool
}

// ClientSpec describes one client: its op stream plus scheduling hints.
type ClientSpec struct {
	Stream Stream
	// StartTick delays the client's first op, modelling job-arrival
	// jitter (which spreads scan fronts, as on a real cluster).
	StartTick int64
	// RateScale multiplies the base client op rate (per-client speed
	// variation; 1.0 = nominal).
	RateScale float64
	// Tenant is the index of the tenant the client belongs to (0 when
	// the workload is single-tenant). The QoS layer charges every op
	// the client issues to this tenant's token bucket.
	Tenant int
}

// Generator builds a workload: its namespace and its client streams.
type Generator interface {
	// Name returns the workload's short name (CNN, NLP, Web, Zipf, MD).
	Name() string
	// Setup creates the workload's files under tree and returns one
	// ClientSpec per client. It must be deterministic given src.
	Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error)
}

// MetaStats summarizes the op mix of a stream: the paper's Table 1
// meta-op ratio is MetaOps / (MetaOps + DataOps).
type MetaStats struct {
	MetaOps int
	DataOps int
}

// Ratio returns the metadata-operation ratio in [0, 1].
func (m MetaStats) Ratio() float64 {
	total := m.MetaOps + m.DataOps
	if total == 0 {
		return 0
	}
	return float64(m.MetaOps) / float64(total)
}

// Measure drains a stream and tallies its op mix.
func Measure(s Stream) MetaStats {
	var m MetaStats
	for {
		op, ok := s.Next()
		if !ok {
			return m
		}
		m.MetaOps++
		if op.DataSize > 0 {
			m.DataOps++
		}
	}
}

// opList is a Stream over a pre-materialized op slice.
type opList struct {
	ops []Op
	pos int
}

func (l *opList) Next() (Op, bool) {
	if l.pos >= len(l.ops) {
		return Op{}, false
	}
	op := l.ops[l.pos]
	l.pos++
	return op, true
}

// NewOpList wraps a pre-built op slice as a Stream (used by tests and
// by small custom workloads).
func NewOpList(ops []Op) Stream { return &opList{ops: ops} }

// jitterSpecs assigns start-time and rate jitter to a slice of streams:
// clients start spread over spreadTicks and run at rates in
// [1-rateJitter, 1+rateJitter].
func jitterSpecs(streams []Stream, spreadTicks int64, rateJitter float64, src *rng.Source) []ClientSpec {
	specs := make([]ClientSpec, len(streams))
	for i, s := range streams {
		var start int64
		if spreadTicks > 0 {
			start = src.Int63n(spreadTicks)
		}
		rate := 1.0
		if rateJitter > 0 {
			rate = 1 - rateJitter + 2*rateJitter*src.Float64()
		}
		specs[i] = ClientSpec{Stream: s, StartTick: start, RateScale: rate}
	}
	return specs
}
