package workload

import (
	"fmt"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// Mixed runs several workloads side by side, partitioning the clients
// into equal groups, one per constituent workload — the paper's §4.4
// setup (100 clients in four groups: CNN, NLP, Web, Zipf).
type Mixed struct {
	gens []Generator
}

// NewMixed creates a mixture over the given generators (at least one).
func NewMixed(gens ...Generator) *Mixed {
	if len(gens) == 0 {
		panic("workload: mixed needs at least one generator")
	}
	return &Mixed{gens: gens}
}

// DefaultMixed builds the paper's mixture: CNN, NLP, Web, and Zipf with
// default (scaled) configurations.
func DefaultMixed() *Mixed {
	return NewMixed(
		NewCNN(CNNConfig{}),
		NewNLP(NLPConfig{}),
		NewWeb(WebConfig{}),
		NewZipf(ZipfConfig{}),
	)
}

// Name implements Generator.
func (g *Mixed) Name() string { return "Mixed" }

// Groups returns the constituent generators.
func (g *Mixed) Groups() []Generator { return g.gens }

// GroupOf returns the index of the constituent workload that client i
// out of n runs, matching the assignment Setup makes.
func (g *Mixed) GroupOf(i, n int) int {
	per := n / len(g.gens)
	if per == 0 {
		return i % len(g.gens)
	}
	grp := i / per
	if grp >= len(g.gens) {
		grp = len(g.gens) - 1
	}
	return grp
}

// Setup implements Generator: clients are split into contiguous equal
// groups; group k runs generator k.
func (g *Mixed) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	if clients < len(g.gens) {
		return nil, fmt.Errorf("workload: %d clients cannot cover %d groups", clients, len(g.gens))
	}
	specs := make([]ClientSpec, 0, clients)
	per := clients / len(g.gens)
	for k, gen := range g.gens {
		count := per
		if k == len(g.gens)-1 {
			count = clients - per*(len(g.gens)-1)
		}
		sub, err := gen.Setup(tree, count, src.Fork(uint64(k)+100))
		if err != nil {
			return nil, fmt.Errorf("workload: setup %s: %w", gen.Name(), err)
		}
		specs = append(specs, sub...)
	}
	return specs, nil
}
