package workload

import (
	"testing"
)

func TestMDSharedAllClientsOneDir(t *testing.T) {
	g := NewMDShared(MDSharedConfig{CreatesPerClient: 50})
	tree, specs := setup(t, g, 4, 11)
	dir, err := tree.Lookup("/mdshared/dir")
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for ci, sp := range specs {
		n := 0
		for {
			op, ok := sp.Stream.Next()
			if !ok {
				break
			}
			n++
			if op.Kind != OpCreate {
				t.Fatal("shared-dir workload must be pure creates")
			}
			if op.Parent != dir {
				t.Fatalf("client %d created outside the shared dir", ci)
			}
			if names[op.Name] {
				t.Fatalf("duplicate create name across clients: %q", op.Name)
			}
			names[op.Name] = true
		}
		if n != 50 {
			t.Fatalf("client %d creates = %d", ci, n)
		}
	}
	if len(names) != 200 {
		t.Fatalf("distinct names = %d, want 200", len(names))
	}
}

func TestMDSharedRatioIsAllMetadata(t *testing.T) {
	g := NewMDShared(MDSharedConfig{CreatesPerClient: 20})
	_, specs := setup(t, g, 1, 12)
	if r := Measure(specs[0].Stream).Ratio(); r != 1.0 {
		t.Fatalf("meta ratio = %v, want 1.0", r)
	}
}
