package workload

import (
	"strings"
	"testing"

	"repro/internal/namespace"
	"repro/internal/rng"
)

const sampleTrace = `# comment line

0 lookup /web/a.html 0
0 open /web/a.html 2048
1 open /web/b.html 1024
0 readdir /web
1 create /md/c0/f1 0
1 create /md/c0/f2 0
`

func TestParseTraceBasics(t *testing.T) {
	tf, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tf.Clients() != 2 {
		t.Fatalf("clients = %d", tf.Clients())
	}
	tree := namespace.NewTree()
	specs, err := tf.Setup(tree, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-created files exist with the open's byte size.
	a, err := tree.Lookup("/web/a.html")
	if err != nil {
		t.Fatal("pre-created file missing")
	}
	_ = a
	// Client 0: lookup, open (2048 bytes), readdir.
	ops := drain(specs[0].Stream)
	if len(ops) != 3 {
		t.Fatalf("client0 ops = %d", len(ops))
	}
	if ops[0].Kind != OpLookup || ops[1].Kind != OpOpen || ops[2].Kind != OpReaddir {
		t.Fatalf("client0 kinds: %v %v %v", ops[0].Kind, ops[1].Kind, ops[2].Kind)
	}
	if ops[1].DataSize != 2048 {
		t.Fatalf("open data = %d", ops[1].DataSize)
	}
	// Client 1: open + two creates into /md/c0 (parent pre-created).
	ops = drain(specs[1].Stream)
	if len(ops) != 3 {
		t.Fatalf("client1 ops = %d", len(ops))
	}
	if ops[1].Kind != OpCreate || ops[1].Parent.Path() != "/md/c0" || ops[1].Name != "f1" {
		t.Fatalf("create op: %+v", ops[1])
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"0 lookup",               // too few fields
		"x lookup /a",            // bad client
		"0 frobnicate /a",        // unknown op
		"0 lookup relative/path", // not absolute
		"0 open /a notanumber",   // bad size
	}
	for _, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Fatalf("trace %q should fail to parse", c)
		}
	}
}

func TestTraceSetupClientMismatch(t *testing.T) {
	tf, err := ParseTrace(strings.NewReader("0 lookup /a/f 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf.Setup(namespace.NewTree(), 5, rng.New(1)); err == nil {
		t.Fatal("client-count mismatch must error")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	// Export a real workload to the trace format and replay it: the
	// replayed op streams must match kind/path/data op for op.
	gen := NewZipf(ZipfConfig{FilesPerClient: 30, OpsPerClient: 100})

	build := func() (*namespace.Tree, []ClientSpec) {
		tree := namespace.NewTree()
		specs, err := gen.Setup(tree, 2, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return tree, specs
	}

	_, exportSpecs := build()
	var buf strings.Builder
	if err := WriteTrace(&buf, exportSpecs); err != nil {
		t.Fatal(err)
	}

	tf, err := ParseTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	replayTree := namespace.NewTree()
	replaySpecs, err := tf.Setup(replayTree, tf.Clients(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}

	_, origSpecs := build()
	for c := range origSpecs {
		orig := drain(origSpecs[c].Stream)
		replay := drain(replaySpecs[c].Stream)
		if len(orig) != len(replay) {
			t.Fatalf("client %d: %d ops vs %d replayed", c, len(orig), len(replay))
		}
		for i := range orig {
			if orig[i].Kind != replay[i].Kind {
				t.Fatalf("client %d op %d kind %v vs %v", c, i, orig[i].Kind, replay[i].Kind)
			}
			if orig[i].Target != nil && orig[i].Target.Path() != replay[i].Target.Path() {
				t.Fatalf("client %d op %d path %q vs %q", c, i,
					orig[i].Target.Path(), replay[i].Target.Path())
			}
			if orig[i].DataSize != replay[i].DataSize {
				t.Fatalf("client %d op %d data %d vs %d", c, i, orig[i].DataSize, replay[i].DataSize)
			}
		}
	}
}

func TestTraceCreateRoundTrip(t *testing.T) {
	gen := NewMD(MDConfig{CreatesPerClient: 25})
	tree := namespace.NewTree()
	specs, err := gen.Setup(tree, 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteTrace(&buf, specs); err != nil {
		t.Fatal(err)
	}
	tf, err := ParseTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	replayTree := namespace.NewTree()
	replaySpecs, err := tf.Setup(replayTree, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sp := range replaySpecs {
		for {
			op, ok := sp.Stream.Next()
			if !ok {
				break
			}
			if op.Kind != OpCreate {
				t.Fatal("MD replay must be creates")
			}
			// Materialize so later ops resolving the tree keep working.
			if _, err := replayTree.Create(op.Parent, op.Name, op.Size); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	if total != 50 {
		t.Fatalf("replayed %d creates, want 50", total)
	}
}
