package workload

import (
	"fmt"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// MDConfig shapes the MDtest create workload: each client owns an
// initially empty private directory and creates empty files into it as
// fast as it can (Table 1: 100% metadata ops; the paper runs it
// metadata-only by convention).
type MDConfig struct {
	// CreatesPerClient is the number of files each client creates
	// (paper: 100000; scaled by default).
	CreatesPerClient int
}

func (c *MDConfig) defaults() {
	if c.CreatesPerClient == 0 {
		c.CreatesPerClient = 4000
	}
}

// MD is the MDtest create workload generator.
type MD struct{ cfg MDConfig }

// NewMD creates an MDtest create generator.
func NewMD(cfg MDConfig) *MD {
	cfg.defaults()
	return &MD{cfg: cfg}
}

// Name implements Generator.
func (g *MD) Name() string { return "MD" }

// Setup implements Generator: it builds one empty private directory per
// client under /md and streams create ops into it.
func (g *MD) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	root, err := tree.MkdirAll("/md")
	if err != nil {
		return nil, err
	}
	streams := make([]Stream, clients)
	for c := 0; c < clients; c++ {
		dir, err := tree.Mkdir(root, fmt.Sprintf("client%03d", c))
		if err != nil {
			return nil, err
		}
		streams[c] = newCreates(dir, c, g.cfg.CreatesPerClient)
	}
	return jitterSpecs(streams, 0, 0, src.Fork(1)), nil
}

func newCreates(dir *namespace.Inode, client, n int) Stream {
	// One create per refill: reuse a single-element batch (seqStream
	// copies ops out by value) and build names with one allocation each
	// — the string the tree stores — instead of a Sprintf per op. The
	// names are byte-identical to fmt.Sprintf("c%03d.f%07d", client, i).
	i := 0
	buf := make([]Op, 1)
	prefix := fmt.Sprintf("c%03d.f", client)
	scratch := make([]byte, 0, len(prefix)+8)
	return &seqStream{fill: func() []Op {
		if i >= n {
			return nil
		}
		scratch = appendPadded(append(scratch[:0], prefix...), i, 7)
		buf[0] = Op{
			Kind:   OpCreate,
			Parent: dir,
			Name:   string(scratch),
		}
		i++
		return buf
	}}
}
