package workload

import (
	"fmt"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// MDConfig shapes the MDtest create workload: each client owns an
// initially empty private directory and creates empty files into it as
// fast as it can (Table 1: 100% metadata ops; the paper runs it
// metadata-only by convention).
type MDConfig struct {
	// CreatesPerClient is the number of files each client creates
	// (paper: 100000; scaled by default).
	CreatesPerClient int
	// DirsPerClient spreads each client's creates across this many
	// private subdirectories instead of one flat directory (MDtest's
	// branching-factor knob: -b/-I shape). The creates walk the
	// subdirectories sequentially, filling one before moving on, so a
	// write-back client's batches still form long same-directory runs.
	// 0 or 1 keeps the single flat directory.
	DirsPerClient int
	// StatEvery inserts a getattr on the working directory every k
	// creates (MDtest's stat phase interleaved, create-heavy mix). The
	// stat targets the directory, not the just-created file, so op
	// streams stay independent of unadopted creates. 0 disables.
	StatEvery int
	// Dir is the workload's root directory (default "/md").
	Dir string
	// ClientOffset shifts the client indices baked into directory and
	// create names. Sub-populations that share a root (tenant mixes)
	// must use disjoint offsets, or their names collide.
	ClientOffset int
}

func (c *MDConfig) defaults() {
	if c.CreatesPerClient == 0 {
		c.CreatesPerClient = 4000
	}
	if c.DirsPerClient < 1 {
		c.DirsPerClient = 1
	}
	if c.StatEvery < 0 {
		c.StatEvery = 0
	}
	if c.Dir == "" {
		c.Dir = "/md"
	}
}

// MD is the MDtest create workload generator.
type MD struct{ cfg MDConfig }

// NewMD creates an MDtest create generator.
func NewMD(cfg MDConfig) *MD {
	cfg.defaults()
	return &MD{cfg: cfg}
}

// Name implements Generator.
func (g *MD) Name() string { return "MD" }

// Setup implements Generator: it builds one empty private directory per
// client under /md and streams create ops into it.
func (g *MD) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	root, err := tree.MkdirAll(g.cfg.Dir)
	if err != nil {
		return nil, err
	}
	streams := make([]Stream, clients)
	for c := 0; c < clients; c++ {
		dir, err := tree.Mkdir(root, fmt.Sprintf("client%03d", g.cfg.ClientOffset+c))
		if err != nil {
			return nil, err
		}
		dirs := []*namespace.Inode{dir}
		if g.cfg.DirsPerClient > 1 {
			dirs = dirs[:0]
			for d := 0; d < g.cfg.DirsPerClient; d++ {
				sub, err := tree.Mkdir(dir, fmt.Sprintf("d%03d", d))
				if err != nil {
					return nil, err
				}
				dirs = append(dirs, sub)
			}
		}
		streams[c] = newCreates(dirs, g.cfg.ClientOffset+c, g.cfg.CreatesPerClient, g.cfg.StatEvery)
	}
	return jitterSpecs(streams, 0, 0, src.Fork(1)), nil
}

func newCreates(dirs []*namespace.Inode, client, n, statEvery int) Stream {
	// One op per refill: reuse a single-element batch (seqStream copies
	// ops out by value) and build names with one allocation each — the
	// string the tree stores — instead of a Sprintf per op. The names
	// are byte-identical to fmt.Sprintf("c%03d.f%07d", client, i).
	// Creates fill the directories sequentially (n/len(dirs) files
	// each, remainder in the last); every statEvery creates a getattr
	// on the working directory is interleaved.
	i := 0
	per := n
	if len(dirs) > 1 {
		per = n / len(dirs)
		if per < 1 {
			per = 1
		}
	}
	sinceStat := 0
	buf := make([]Op, 1)
	prefix := fmt.Sprintf("c%03d.f", client)
	scratch := make([]byte, 0, len(prefix)+8)
	return &seqStream{fill: func() []Op {
		if i >= n {
			return nil
		}
		d := i / per
		if d >= len(dirs) {
			d = len(dirs) - 1
		}
		if statEvery > 0 && sinceStat >= statEvery {
			sinceStat = 0
			buf[0] = Op{Kind: OpGetattr, Target: dirs[d]}
			return buf
		}
		scratch = appendPadded(append(scratch[:0], prefix...), i, 7)
		buf[0] = Op{
			Kind:   OpCreate,
			Parent: dirs[d],
			Name:   string(scratch),
		}
		i++
		sinceStat++
		return buf
	}}
}
