package workload_test

import (
	"fmt"

	"repro/internal/namespace"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Example builds the MDtest create workload and inspects one client's
// op stream — the pattern every generator follows.
func Example() {
	gen := workload.NewMD(workload.MDConfig{CreatesPerClient: 3})
	tree := namespace.NewTree()
	specs, _ := gen.Setup(tree, 2, rng.New(1))

	for {
		op, ok := specs[0].Stream.Next()
		if !ok {
			break
		}
		fmt.Printf("%s %s/%s\n", op.Kind, op.Parent.Path(), op.Name)
	}
	// Output:
	// create /md/client000/c000.f0000000
	// create /md/client000/c000.f0000001
	// create /md/client000/c000.f0000002
}
