package workload

// appendPadded appends non-negative n to dst, zero-padded to at least
// width digits — byte-identical to fmt.Sprintf("%0*d", width, n), but
// without fmt's per-call allocations. The op streams generate one name
// per create, so name formatting sits on the serve path.
func appendPadded(dst []byte, n, width int) []byte {
	var tmp [20]byte
	p := len(tmp)
	for {
		p--
		tmp[p] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	for len(tmp)-p < width {
		p--
		tmp[p] = '0'
	}
	return append(dst, tmp[p:]...)
}
