package workload

import (
	"fmt"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// seqStream is a Stream built from a refill closure that produces the
// next batch of ops (typically one file's worth), or nil at end of job.
type seqStream struct {
	fill func() []Op
	buf  []Op
	pos  int
}

func (s *seqStream) Next() (Op, bool) {
	for s.pos >= len(s.buf) {
		s.buf = s.fill()
		if len(s.buf) == 0 {
			return Op{}, false
		}
		s.pos = 0
	}
	op := s.buf[s.pos]
	s.pos++
	return op, true
}

// CNNConfig shapes the CNN image pre-processing workload: each client
// scans the whole ImageNet-like dataset once, in directory order,
// converting the namespace into a record file. Files are never
// re-visited by the same client (Table 1: 78.1% metadata ops).
type CNNConfig struct {
	// Dirs is the number of class directories (ImageNet: 1000).
	Dirs int
	// FilesPerDir is the number of images per directory (ImageNet:
	// 1280 on average; scaled down by default).
	FilesPerDir int
	// MeanFileBytes is the average image size (ImageNet: 114.3 KB).
	MeanFileBytes int64
	// StartSpread staggers client start times over this many ticks.
	StartSpread int64
	// RateJitter varies per-client speed by +/- this fraction.
	RateJitter float64
}

func (c *CNNConfig) defaults() {
	if c.Dirs == 0 {
		c.Dirs = 200
	}
	if c.FilesPerDir == 0 {
		c.FilesPerDir = 24
	}
	if c.MeanFileBytes == 0 {
		c.MeanFileBytes = 114300
	}
	if c.StartSpread == 0 {
		c.StartSpread = 10
	}
	if c.RateJitter == 0 {
		c.RateJitter = 0.05
	}
}

// CNN is the CNN image pre-processing workload generator.
type CNN struct{ cfg CNNConfig }

// NewCNN creates a CNN workload generator.
func NewCNN(cfg CNNConfig) *CNN {
	cfg.defaults()
	return &CNN{cfg: cfg}
}

// Name implements Generator.
func (g *CNN) Name() string { return "CNN" }

// Setup implements Generator: it builds /cnn/d<i>/img<j> and gives each
// client a full-scan stream over the shared dataset.
func (g *CNN) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	root, err := tree.MkdirAll("/cnn")
	if err != nil {
		return nil, err
	}
	sizes := src.Fork(1)
	files := make([]*namespace.Inode, 0, g.cfg.Dirs*g.cfg.FilesPerDir)
	for d := 0; d < g.cfg.Dirs; d++ {
		dir, err := tree.Mkdir(root, fmt.Sprintf("d%04d", d))
		if err != nil {
			return nil, err
		}
		for f := 0; f < g.cfg.FilesPerDir; f++ {
			size := g.cfg.MeanFileBytes/2 + sizes.Int63n(g.cfg.MeanFileBytes)
			in, err := tree.Create(dir, fmt.Sprintf("img%05d.jpg", f), size)
			if err != nil {
				return nil, err
			}
			files = append(files, in)
		}
	}
	streams := make([]Stream, clients)
	for i := range streams {
		streams[i] = newCNNScan(files)
	}
	return jitterSpecs(streams, g.cfg.StartSpread, g.cfg.RateJitter, src.Fork(2)), nil
}

// newCNNScan returns one client's scan: per directory one readdir, per
// file lookup+getattr+open(data), and an extra getattr on every second
// file (record-file bookkeeping), yielding a ~78% metadata ratio.
func newCNNScan(files []*namespace.Inode) Stream {
	idx := 0
	var lastDir *namespace.Inode
	return &seqStream{fill: func() []Op {
		if idx >= len(files) {
			return nil
		}
		f := files[idx]
		var ops []Op
		if f.Parent != lastDir {
			lastDir = f.Parent
			ops = append(ops, Op{Kind: OpReaddir, Target: f.Parent})
		}
		ops = append(ops,
			Op{Kind: OpLookup, Target: f},
			Op{Kind: OpGetattr, Target: f},
			Op{Kind: OpOpen, Target: f, DataSize: f.Size},
		)
		if idx%2 == 0 {
			ops = append(ops, Op{Kind: OpGetattr, Target: f})
		}
		idx++
		return ops
	}}
}

// NLPConfig shapes the NLP training workload: the THUTC-like corpus is
// a few folders of very many tiny files, scanned exactly once per
// client. Each tiny file costs a pile of metadata interactions
// (lookup, stat, open, xattr/ACL checks) relative to its 2.8 KB of
// data, which is why 92.8% of its ops are metadata — and, like CNN,
// files are never re-visited, which defeats popularity-based balancing.
type NLPConfig struct {
	// Dirs is the number of category folders (THUTC corpus: 14).
	Dirs int
	// FilesPerDir is the number of text files per folder (corpus:
	// ~60k; scaled down by default).
	FilesPerDir int
	// MeanFileBytes is the average file size (corpus: 2.8 KB).
	MeanFileBytes int64
	// MetaOpsPerFile is the number of metadata ops each file costs
	// (13 gives the paper's 92.8% metadata ratio).
	MetaOpsPerFile int
	// StartSpread staggers client start times over this many ticks.
	StartSpread int64
	// RateJitter varies per-client speed by +/- this fraction.
	RateJitter float64
}

func (c *NLPConfig) defaults() {
	if c.Dirs == 0 {
		c.Dirs = 14
	}
	if c.FilesPerDir == 0 {
		c.FilesPerDir = 400
	}
	if c.MeanFileBytes == 0 {
		c.MeanFileBytes = 2800
	}
	if c.MetaOpsPerFile == 0 {
		c.MetaOpsPerFile = 13
	}
	if c.StartSpread == 0 {
		c.StartSpread = 10
	}
	if c.RateJitter == 0 {
		c.RateJitter = 0.05
	}
}

// NLP is the NLP training workload generator.
type NLP struct{ cfg NLPConfig }

// NewNLP creates an NLP workload generator.
func NewNLP(cfg NLPConfig) *NLP {
	cfg.defaults()
	return &NLP{cfg: cfg}
}

// Name implements Generator.
func (g *NLP) Name() string { return "NLP" }

// Setup implements Generator.
func (g *NLP) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	root, err := tree.MkdirAll("/nlp")
	if err != nil {
		return nil, err
	}
	sizes := src.Fork(1)
	files := make([]*namespace.Inode, 0, g.cfg.Dirs*g.cfg.FilesPerDir)
	for d := 0; d < g.cfg.Dirs; d++ {
		dir, err := tree.Mkdir(root, fmt.Sprintf("cat%02d", d))
		if err != nil {
			return nil, err
		}
		for f := 0; f < g.cfg.FilesPerDir; f++ {
			size := g.cfg.MeanFileBytes/2 + sizes.Int63n(g.cfg.MeanFileBytes)
			in, err := tree.Create(dir, fmt.Sprintf("doc%06d.txt", f), size)
			if err != nil {
				return nil, err
			}
			files = append(files, in)
		}
	}
	streams := make([]Stream, clients)
	for i := range streams {
		streams[i] = newNLPScan(files, g.cfg.MetaOpsPerFile)
	}
	return jitterSpecs(streams, g.cfg.StartSpread, g.cfg.RateJitter, src.Fork(2)), nil
}

// newNLPScan returns one client's single-pass scan: per file,
// metaOpsPerFile metadata operations (path resolution, stats,
// permission checks, the open itself) and one tiny data read.
func newNLPScan(files []*namespace.Inode, metaOpsPerFile int) Stream {
	idx := 0
	var lastDir *namespace.Inode
	return &seqStream{fill: func() []Op {
		if idx >= len(files) {
			return nil
		}
		f := files[idx]
		var ops []Op
		if f.Parent != lastDir {
			lastDir = f.Parent
			ops = append(ops, Op{Kind: OpReaddir, Target: f.Parent})
		}
		ops = append(ops, Op{Kind: OpLookup, Target: f})
		for fileOps := 1; fileOps < metaOpsPerFile-1; fileOps++ {
			ops = append(ops, Op{Kind: OpGetattr, Target: f})
		}
		ops = append(ops, Op{Kind: OpOpen, Target: f, DataSize: f.Size})
		idx++
		return ops
	}}
}
