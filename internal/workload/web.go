package workload

import (
	"fmt"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// WebConfig shapes the web trace replay: an ordered request log over a
// static file population with Zipf popularity and a slowly drifting hot
// set (the FSU Apache trace spans 19 months of department traffic).
// Every client replays the same trace in order, offset in time
// (Table 1: 57.2% metadata ops).
type WebConfig struct {
	// Files is the file population (trace: 302k; scaled by default).
	Files int
	// DirFanout is the number of files per directory.
	DirFanout int
	// DirsPerSection groups directories under second-level sections
	// (a department web tree: /web/<section>/<dir>/<page>), giving the
	// dynamic balancers coarse subtrees to move while Dir-Hash pins the
	// fine-grained leaves.
	DirsPerSection int
	// RequestsPerClient is the length of the replayed trace.
	RequestsPerClient int
	// ZipfExponent controls the popularity skew.
	ZipfExponent float64
	// PhaseLen is the number of requests between hot-set rotations.
	PhaseLen int
	// PhaseShift is how many popularity ranks the hot set rotates per
	// phase (0 disables drift).
	PhaseShift int
	// MeanFileBytes is the average served-file size.
	MeanFileBytes int64
	// StartSpread staggers client start times over this many ticks.
	StartSpread int64
	// RateJitter varies per-client speed by +/- this fraction.
	RateJitter float64
}

func (c *WebConfig) defaults() {
	if c.Files == 0 {
		c.Files = 12000
	}
	if c.DirFanout == 0 {
		c.DirFanout = 40
	}
	if c.DirsPerSection == 0 {
		c.DirsPerSection = 12
	}
	if c.RequestsPerClient == 0 {
		c.RequestsPerClient = 8000
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 0.9
	}
	if c.PhaseLen == 0 {
		c.PhaseLen = 2000
	}
	if c.PhaseShift == 0 {
		c.PhaseShift = 40
	}
	if c.MeanFileBytes == 0 {
		c.MeanFileBytes = 24 * 1024
	}
	if c.StartSpread == 0 {
		c.StartSpread = 40
	}
	if c.RateJitter == 0 {
		c.RateJitter = 0.1
	}
}

// Web is the web trace replay workload generator.
type Web struct{ cfg WebConfig }

// NewWeb creates a web trace replay generator.
func NewWeb(cfg WebConfig) *Web {
	cfg.defaults()
	return &Web{cfg: cfg}
}

// Name implements Generator.
func (g *Web) Name() string { return "Web" }

// Setup implements Generator: it builds /web/dir<i>/page<j>, generates
// one shared synthetic trace, and hands every client an in-order replay
// of it.
func (g *Web) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	root, err := tree.MkdirAll("/web")
	if err != nil {
		return nil, err
	}
	sizes := src.Fork(1)
	files := make([]*namespace.Inode, 0, g.cfg.Files)
	var section, dir *namespace.Inode
	filesPerSection := g.cfg.DirFanout * g.cfg.DirsPerSection
	for i := 0; i < g.cfg.Files; i++ {
		if i%filesPerSection == 0 {
			section, err = tree.Mkdir(root, fmt.Sprintf("sec%03d", i/filesPerSection))
			if err != nil {
				return nil, err
			}
		}
		if i%g.cfg.DirFanout == 0 {
			dir, err = tree.Mkdir(section, fmt.Sprintf("dir%04d", i/g.cfg.DirFanout))
			if err != nil {
				return nil, err
			}
		}
		size := g.cfg.MeanFileBytes/2 + sizes.Int63n(g.cfg.MeanFileBytes)
		in, err := tree.Create(dir, fmt.Sprintf("page%06d.html", i), size)
		if err != nil {
			return nil, err
		}
		files = append(files, in)
	}

	// One shared trace: Zipf-ranked picks through a fixed permutation
	// (so popularity is uncorrelated with creation order), with the hot
	// set rotating every PhaseLen requests.
	traceSrc := src.Fork(2)
	perm := traceSrc.Perm(g.cfg.Files)
	zipf := rng.NewZipf(traceSrc, g.cfg.ZipfExponent, g.cfg.Files)
	traceIdx := make([]int32, g.cfg.RequestsPerClient)
	for i := range traceIdx {
		phase := i / g.cfg.PhaseLen
		rank := (zipf.Next() + phase*g.cfg.PhaseShift) % g.cfg.Files
		traceIdx[i] = int32(perm[rank])
	}

	streams := make([]Stream, clients)
	for i := range streams {
		streams[i] = newWebReplay(files, traceIdx)
	}
	return jitterSpecs(streams, g.cfg.StartSpread, g.cfg.RateJitter, src.Fork(3)), nil
}

// newWebReplay returns one client's replay: per request one open with
// data, plus an extra path lookup on every third request (Apache-style
// deep-path resolution), yielding a ~57% metadata ratio.
func newWebReplay(files []*namespace.Inode, trace []int32) Stream {
	idx := 0
	return &seqStream{fill: func() []Op {
		if idx >= len(trace) {
			return nil
		}
		f := files[trace[idx]]
		var ops []Op
		if idx%3 == 0 {
			ops = append(ops, Op{Kind: OpLookup, Target: f})
		}
		ops = append(ops, Op{Kind: OpOpen, Target: f, DataSize: f.Size})
		idx++
		return ops
	}}
}
