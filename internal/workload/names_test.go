package workload

import (
	"fmt"
	"testing"
)

func TestAppendPaddedMatchesSprintf(t *testing.T) {
	cases := []struct{ n, width int }{
		{0, 7}, {1, 7}, {9, 7}, {10, 7}, {9999999, 7}, {10000000, 7},
		{123456789, 7}, {0, 0}, {0, 1}, {42, 2}, {42, 1}, {42, 0},
	}
	for _, c := range cases {
		got := string(appendPadded(nil, c.n, c.width))
		want := fmt.Sprintf("%0*d", c.width, c.n)
		if got != want {
			t.Errorf("appendPadded(%d, width %d) = %q, want %q", c.n, c.width, got, want)
		}
	}
	// And as used by the creates stream: appended after a prefix.
	got := string(appendPadded([]byte("c007.f"), 123, 7))
	if want := fmt.Sprintf("c%03d.f%07d", 7, 123); got != want {
		t.Errorf("prefixed form = %q, want %q", got, want)
	}
}
