package workload

import (
	"repro/internal/namespace"
	"repro/internal/rng"
)

// MDSharedConfig shapes a shared-directory create storm: every client
// creates files into ONE common directory. This is the scenario GIGA+
// (which GreedySpill comes from) was built for, and the hardest case
// for subtree-granular balancing — only dirfrag splitting can
// parallelize a single directory.
type MDSharedConfig struct {
	// CreatesPerClient is the number of files each client creates.
	CreatesPerClient int
	// Dir is the shared directory's path (default "/mdshared/dir").
	Dir string
	// ClientOffset shifts the client indices baked into create names.
	// Sub-populations that share a directory (tenant mixes) must use
	// disjoint offsets, or their create names collide.
	ClientOffset int
}

func (c *MDSharedConfig) defaults() {
	if c.CreatesPerClient == 0 {
		c.CreatesPerClient = 4000
	}
	if c.Dir == "" {
		c.Dir = "/mdshared/dir"
	}
}

// MDShared is the shared-directory create workload generator.
type MDShared struct{ cfg MDSharedConfig }

// NewMDShared creates a shared-directory create generator.
func NewMDShared(cfg MDSharedConfig) *MDShared {
	cfg.defaults()
	return &MDShared{cfg: cfg}
}

// Name implements Generator.
func (g *MDShared) Name() string { return "MD-shared" }

// Setup implements Generator: one common empty directory, with every
// client streaming uniquely named creates into it.
func (g *MDShared) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	dir, err := tree.MkdirAll(g.cfg.Dir)
	if err != nil {
		return nil, err
	}
	streams := make([]Stream, clients)
	for c := 0; c < clients; c++ {
		streams[c] = newCreates([]*namespace.Inode{dir}, g.cfg.ClientOffset+c, g.cfg.CreatesPerClient, 0)
	}
	return jitterSpecs(streams, 0, 0, src.Fork(1)), nil
}
