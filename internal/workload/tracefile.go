package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// The trace file format is one operation per line:
//
//	<client> <op> <path> [dataBytes]
//
// where op is one of lookup, getattr, open, readdir, create. Lines
// starting with '#' and blank lines are ignored. Paths are absolute.
// For non-create ops the file (or directory, for readdir) is created
// ahead of the replay; creates happen live, as in the original run.
// This is how external traces — the paper replays an Apache access
// log — are brought into the simulator.

// traceOp is one parsed line.
type traceOp struct {
	kind namespace.Ino // placeholder to keep struct alignment honest
}

// parsedOp is one trace line before namespace resolution.
type parsedOp struct {
	client int
	kind   OpKind
	path   string
	data   int64
}

// TraceFile replays a recorded operation trace.
type TraceFile struct {
	ops     []parsedOp
	clients int
}

// ParseTrace reads a trace. It returns an error with line context for
// malformed input.
func ParseTrace(r io.Reader) (*TraceFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	tf := &TraceFile{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("workload: trace line %d: want 'client op path [bytes]', got %q", lineNo, line)
		}
		client, err := strconv.Atoi(fields[0])
		if err != nil || client < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad client %q", lineNo, fields[0])
		}
		kind, err := parseOpKind(fields[1])
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %v", lineNo, err)
		}
		path := fields[2]
		if !strings.HasPrefix(path, "/") {
			return nil, fmt.Errorf("workload: trace line %d: path must be absolute: %q", lineNo, path)
		}
		var data int64
		if len(fields) > 3 {
			data, err = strconv.ParseInt(fields[3], 10, 64)
			if err != nil || data < 0 {
				return nil, fmt.Errorf("workload: trace line %d: bad byte count %q", lineNo, fields[3])
			}
		}
		tf.ops = append(tf.ops, parsedOp{client: client, kind: kind, path: path, data: data})
		if client+1 > tf.clients {
			tf.clients = client + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(tf.ops) == 0 {
		return nil, fmt.Errorf("workload: trace contains no operations")
	}
	return tf, nil
}

func parseOpKind(s string) (OpKind, error) {
	switch s {
	case "lookup":
		return OpLookup, nil
	case "getattr":
		return OpGetattr, nil
	case "open":
		return OpOpen, nil
	case "readdir":
		return OpReaddir, nil
	case "create":
		return OpCreate, nil
	default:
		return 0, fmt.Errorf("unknown op kind %q", s)
	}
}

// Name implements Generator.
func (g *TraceFile) Name() string { return "Trace" }

// Clients returns the number of client streams the trace defines.
func (g *TraceFile) Clients() int { return g.clients }

// Setup implements Generator. The clients argument must equal the
// trace's own client count (use Clients() to size the cluster).
func (g *TraceFile) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	if clients != g.clients {
		return nil, fmt.Errorf("workload: trace defines %d clients, cluster configured for %d", g.clients, clients)
	}
	// Pre-create everything non-create ops touch.
	for _, op := range g.ops {
		if op.kind == OpCreate {
			// Only the parent must exist ahead of time.
			if _, err := tree.MkdirAll(parentPath(op.path)); err != nil {
				return nil, fmt.Errorf("workload: trace setup %q: %w", op.path, err)
			}
			continue
		}
		if op.kind == OpReaddir {
			if _, err := tree.MkdirAll(op.path); err != nil {
				return nil, fmt.Errorf("workload: trace setup %q: %w", op.path, err)
			}
			continue
		}
		if _, err := tree.Lookup(op.path); err == nil {
			continue
		}
		if _, err := tree.MkdirAll(parentPath(op.path)); err != nil {
			return nil, fmt.Errorf("workload: trace setup %q: %w", op.path, err)
		}
		parent, _ := tree.Lookup(parentPath(op.path))
		size := op.data
		if _, err := tree.Create(parent, basename(op.path), size); err != nil {
			return nil, fmt.Errorf("workload: trace setup %q: %w", op.path, err)
		}
	}

	// Split into per-client op sequences, resolving targets lazily so
	// creates see the tree as it exists at replay time.
	perClient := make([][]parsedOp, g.clients)
	for _, op := range g.ops {
		perClient[op.client] = append(perClient[op.client], op)
	}
	specs := make([]ClientSpec, g.clients)
	for c := range specs {
		specs[c] = ClientSpec{
			Stream:    &traceStream{tree: tree, ops: perClient[c]},
			RateScale: 1,
		}
	}
	_ = traceOp{}
	return specs, nil
}

// traceStream replays one client's parsed ops against the live tree.
type traceStream struct {
	tree *namespace.Tree
	ops  []parsedOp
	pos  int
}

// ReadsTree marks the stream as tree-reading (see TreeReader): replay
// resolves recorded paths against the live namespace, so ops after a
// create must not be drawn until that create has been applied.
func (s *traceStream) ReadsTree() bool { return true }

func (s *traceStream) Next() (Op, bool) {
	for s.pos < len(s.ops) {
		p := s.ops[s.pos]
		s.pos++
		if p.kind == OpCreate {
			parent, err := s.tree.Lookup(parentPath(p.path))
			if err != nil {
				continue // parent vanished; skip the op
			}
			return Op{Kind: OpCreate, Parent: parent, Name: basename(p.path), Size: p.data}, true
		}
		target, err := s.tree.Lookup(p.path)
		if err != nil {
			continue // path not materialized; skip
		}
		op := Op{Kind: p.kind, Target: target}
		if p.kind == OpOpen {
			op.DataSize = p.data
			if op.DataSize == 0 {
				op.DataSize = target.Size
			}
		}
		return op, true
	}
	return Op{}, false
}

// WriteTrace serializes client op streams into the trace format. It
// CONSUMES the streams, so export from freshly built specs.
func WriteTrace(w io.Writer, specs []ClientSpec) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# lunule-sim trace: client op path [bytes]"); err != nil {
		return err
	}
	// Interleave round-robin to preserve the concurrent arrival order.
	streams := make([]Stream, len(specs))
	for i, sp := range specs {
		streams[i] = sp.Stream
	}
	live := len(streams)
	for live > 0 {
		live = 0
		for c, s := range streams {
			op, ok := s.Next()
			if !ok {
				continue
			}
			live++
			var path string
			switch op.Kind {
			case OpCreate:
				path = op.Parent.Path() + "/" + op.Name
			default:
				path = op.Target.Path()
			}
			if op.DataSize > 0 || op.Size > 0 {
				sz := op.DataSize
				if op.Kind == OpCreate {
					sz = op.Size
				}
				if _, err := fmt.Fprintf(bw, "%d %s %s %d\n", c, op.Kind, path, sz); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(bw, "%d %s %s\n", c, op.Kind, path); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

func parentPath(path string) string {
	idx := strings.LastIndexByte(path, '/')
	if idx <= 0 {
		return "/"
	}
	return path[:idx]
}

func basename(path string) string {
	idx := strings.LastIndexByte(path, '/')
	return path[idx+1:]
}
