package workload

import (
	"math"
	"testing"

	"repro/internal/namespace"
	"repro/internal/rng"
)

func setup(t *testing.T, g Generator, clients int, seed uint64) (*namespace.Tree, []ClientSpec) {
	t.Helper()
	tree := namespace.NewTree()
	specs, err := g.Setup(tree, clients, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != clients {
		t.Fatalf("Setup returned %d specs, want %d", len(specs), clients)
	}
	return tree, specs
}

func drain(s Stream) []Op {
	var ops []Op
	for {
		op, ok := s.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

func TestCNNShapeAndRatio(t *testing.T) {
	g := NewCNN(CNNConfig{Dirs: 20, FilesPerDir: 10})
	tree, specs := setup(t, g, 3, 1)
	cnn, err := tree.Lookup("/cnn")
	if err != nil {
		t.Fatal(err)
	}
	if cnn.NumChildren() != 20 {
		t.Fatalf("dirs = %d", cnn.NumChildren())
	}
	if cnn.SubtreeInodes() != 1+20+200 {
		t.Fatalf("inodes = %d", cnn.SubtreeInodes())
	}
	stats := Measure(specs[0].Stream)
	ratio := stats.Ratio()
	// Paper: 78.1% metadata ops.
	if math.Abs(ratio-0.781) > 0.03 {
		t.Fatalf("CNN meta ratio = %.3f, want ~0.78", ratio)
	}
}

func TestCNNScanNeverRevisits(t *testing.T) {
	g := NewCNN(CNNConfig{Dirs: 5, FilesPerDir: 8})
	_, specs := setup(t, g, 1, 2)
	seen := make(map[namespace.Ino]int)
	lastSeen := make(map[namespace.Ino]int)
	for i, op := range drain(specs[0].Stream) {
		if op.Target == nil || op.Target.IsDir {
			continue
		}
		seen[op.Target.Ino]++
		if prev, ok := lastSeen[op.Target.Ino]; ok && i-prev > 4 {
			t.Fatalf("file %d revisited after a gap: scan must be single-pass", op.Target.Ino)
		}
		lastSeen[op.Target.Ino] = i
	}
	if len(seen) != 40 {
		t.Fatalf("scan covered %d files, want 40", len(seen))
	}
}

func TestCNNClientJitter(t *testing.T) {
	g := NewCNN(CNNConfig{Dirs: 5, FilesPerDir: 4})
	_, specs := setup(t, g, 50, 3)
	starts := make(map[int64]bool)
	for _, sp := range specs {
		starts[sp.StartTick] = true
		if sp.RateScale < 0.8 || sp.RateScale > 1.2 {
			t.Fatalf("rate scale %v out of jitter band", sp.RateScale)
		}
	}
	if len(starts) < 10 {
		t.Fatalf("start times not spread: %d distinct", len(starts))
	}
}

func TestNLPShapeAndRatio(t *testing.T) {
	g := NewNLP(NLPConfig{Dirs: 14, FilesPerDir: 20})
	tree, specs := setup(t, g, 2, 4)
	nlp, _ := tree.Lookup("/nlp")
	if nlp.NumChildren() != 14 {
		t.Fatalf("NLP dirs = %d, want 14", nlp.NumChildren())
	}
	ratio := Measure(specs[0].Stream).Ratio()
	// Paper: 92.8% metadata ops.
	if math.Abs(ratio-0.928) > 0.02 {
		t.Fatalf("NLP meta ratio = %.3f, want ~0.93", ratio)
	}
}

func TestNLPSinglePassScan(t *testing.T) {
	g := NewNLP(NLPConfig{Dirs: 2, FilesPerDir: 5, MetaOpsPerFile: 13})
	_, specs := setup(t, g, 1, 5)
	dataOps := 0
	visits := make(map[namespace.Ino]int)
	var order []namespace.Ino
	for _, op := range drain(specs[0].Stream) {
		if op.DataSize > 0 {
			dataOps++
		}
		if op.Target != nil && !op.Target.IsDir {
			if visits[op.Target.Ino] == 0 {
				order = append(order, op.Target.Ino)
			}
			visits[op.Target.Ino]++
		}
	}
	if dataOps != 10 {
		t.Fatalf("data reads = %d, want one per file", dataOps)
	}
	if len(order) != 10 {
		t.Fatalf("scan covered %d files, want 10", len(order))
	}
	for ino, n := range visits {
		// Single pass: every file costs exactly MetaOpsPerFile accesses.
		if n != 13 {
			t.Fatalf("file %d visited %d times, want 13", ino, n)
		}
	}
}

func TestWebRatioAndLocality(t *testing.T) {
	g := NewWeb(WebConfig{Files: 500, RequestsPerClient: 3000})
	_, specs := setup(t, g, 2, 6)
	ops := drain(specs[0].Stream)
	var m MetaStats
	counts := make(map[namespace.Ino]int)
	for _, op := range ops {
		m.MetaOps++
		if op.DataSize > 0 {
			m.DataOps++
			counts[op.Target.Ino]++
		}
	}
	// Paper: 57.2% metadata ops.
	if math.Abs(m.Ratio()-0.572) > 0.02 {
		t.Fatalf("Web meta ratio = %.3f, want ~0.57", m.Ratio())
	}
	// Zipf popularity: the most popular file should absorb far more
	// than the uniform share.
	maxN := 0
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	if maxN < 3000/500*5 {
		t.Fatalf("web trace lacks skew: top file only %d requests", maxN)
	}
}

func TestWebClientsShareTrace(t *testing.T) {
	g := NewWeb(WebConfig{Files: 200, RequestsPerClient: 500})
	_, specs := setup(t, g, 2, 7)
	a := drain(specs[0].Stream)
	b := drain(specs[1].Stream)
	if len(a) != len(b) {
		t.Fatalf("clients replay different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Target != b[i].Target || a[i].Kind != b[i].Kind {
			t.Fatal("clients must replay the identical trace in order")
		}
	}
}

func TestZipfPrivateDirsAndSkew(t *testing.T) {
	g := NewZipf(ZipfConfig{FilesPerClient: 300, OpsPerClient: 6000})
	tree, specs := setup(t, g, 3, 8)
	root, _ := tree.Lookup("/zipf")
	if root.NumChildren() != 3 {
		t.Fatalf("client dirs = %d", root.NumChildren())
	}
	// Each client only touches its own directory.
	dir0, _ := tree.Lookup("/zipf/client000")
	ops := drain(specs[0].Stream)
	if len(ops) != 6000 {
		t.Fatalf("ops = %d", len(ops))
	}
	counts := make(map[namespace.Ino]int)
	for _, op := range ops {
		if op.Target.Parent != dir0 {
			t.Fatal("client 0 escaped its private directory")
		}
		if op.DataSize <= 0 {
			t.Fatal("zipf reads must carry data")
		}
		counts[op.Target.Ino]++
	}
	// 80/20 shape: top 20% of files get the large majority of requests.
	var all []int
	for _, n := range counts {
		all = append(all, n)
	}
	top := 0
	for _, n := range all {
		if n >= 6000/300*3 {
			top += n
		}
	}
	if float64(top)/6000 < 0.5 {
		t.Fatalf("zipf reads insufficiently skewed (hot mass %.2f)", float64(top)/6000)
	}
	ratio := Measure(specs[1].Stream).Ratio()
	if ratio != 0.5 {
		t.Fatalf("Zipf meta ratio = %.3f, want 0.50", ratio)
	}
}

func TestMDCreatesAndRatio(t *testing.T) {
	g := NewMD(MDConfig{CreatesPerClient: 100})
	tree, specs := setup(t, g, 2, 9)
	ops := drain(specs[0].Stream)
	if len(ops) != 100 {
		t.Fatalf("creates = %d", len(ops))
	}
	names := make(map[string]bool)
	for _, op := range ops {
		if op.Kind != OpCreate || op.Parent == nil || op.DataSize != 0 {
			t.Fatal("MD must be pure creates without data")
		}
		if names[op.Name] {
			t.Fatalf("duplicate create name %q", op.Name)
		}
		names[op.Name] = true
	}
	if Measure(specs[1].Stream).Ratio() != 1.0 {
		t.Fatal("MD meta ratio must be 100%")
	}
	d0, _ := tree.Lookup("/md/client000")
	if d0.NumChildren() != 0 {
		t.Fatal("MD directories must start empty")
	}
}

func TestMixedGroups(t *testing.T) {
	g := DefaultMixed()
	tree, specs := setup(t, g, 8, 10)
	if len(specs) != 8 {
		t.Fatal("specs")
	}
	for _, p := range []string{"/cnn", "/nlp", "/web", "/zipf"} {
		if _, err := tree.Lookup(p); err != nil {
			t.Fatalf("mixed setup missing %s", p)
		}
	}
	// Group assignment is contiguous and balanced.
	if g.GroupOf(0, 8) != 0 || g.GroupOf(1, 8) != 0 || g.GroupOf(2, 8) != 1 || g.GroupOf(7, 8) != 3 {
		t.Fatal("group mapping")
	}
	// Clients in group 3 (zipf) only touch /zipf.
	zipfRoot, _ := tree.Lookup("/zipf")
	for _, op := range drain(specs[7].Stream)[:100] {
		if op.Target != nil && !zipfRoot.IsAncestorOf(op.Target) {
			t.Fatal("zipf-group client escaped /zipf")
		}
	}
}

func TestMixedTooFewClients(t *testing.T) {
	g := DefaultMixed()
	tree := namespace.NewTree()
	if _, err := g.Setup(tree, 2, rng.New(1)); err == nil {
		t.Fatal("expected error for fewer clients than groups")
	}
}

func TestSetupDeterministic(t *testing.T) {
	for _, gen := range []func() Generator{
		func() Generator { return NewCNN(CNNConfig{Dirs: 5, FilesPerDir: 4}) },
		func() Generator { return NewWeb(WebConfig{Files: 100, RequestsPerClient: 300}) },
		func() Generator { return NewZipf(ZipfConfig{FilesPerClient: 50, OpsPerClient: 200}) },
	} {
		t1 := namespace.NewTree()
		s1, err := gen().Setup(t1, 2, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		t2 := namespace.NewTree()
		s2, err := gen().Setup(t2, 2, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		a := drain(s1[0].Stream)
		b := drain(s2[0].Stream)
		if len(a) != len(b) {
			t.Fatal("nondeterministic op count")
		}
		for i := range a {
			pathA, pathB := "", ""
			if a[i].Target != nil {
				pathA = a[i].Target.Path()
			}
			if b[i].Target != nil {
				pathB = b[i].Target.Path()
			}
			if pathA != pathB || a[i].Kind != b[i].Kind {
				t.Fatalf("nondeterministic op %d", i)
			}
		}
		if s1[0].StartTick != s2[0].StartTick || s1[0].RateScale != s2[0].RateScale {
			t.Fatal("nondeterministic jitter")
		}
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpLookup: "lookup", OpGetattr: "getattr", OpOpen: "open",
		OpReaddir: "readdir", OpCreate: "create",
	} {
		if k.String() != want {
			t.Fatalf("kind %d = %q", k, k.String())
		}
	}
	if OpKind(42).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestNewOpList(t *testing.T) {
	s := NewOpList([]Op{{Kind: OpLookup}, {Kind: OpOpen, DataSize: 5}})
	m := Measure(s)
	if m.MetaOps != 2 || m.DataOps != 1 {
		t.Fatalf("measure: %+v", m)
	}
	if m.Ratio() != 2.0/3.0 {
		t.Fatalf("ratio = %v", m.Ratio())
	}
	if (MetaStats{}).Ratio() != 0 {
		t.Fatal("empty ratio")
	}
}
