package workload

import (
	"fmt"

	"repro/internal/namespace"
	"repro/internal/rng"
)

// ReadStormConfig shapes a shared-directory read storm: one common
// directory of pre-existing files, with EVERY client issuing
// Zipf-distributed pure-metadata reads (getattr) over the same shared
// population. This is the workload class where migration fundamentally
// cannot help — the whole storm lands on one subtree, and a subtree
// can only live on one rank — so it is the showcase for lease-based
// read replicas, which let up to R-1 standby ranks serve the same
// subtree concurrently.
type ReadStormConfig struct {
	// Files is the shared-directory population.
	Files int
	// OpsPerClient is the number of reads each client performs.
	OpsPerClient int
	// Exponent is the Zipf exponent over the shared files.
	Exponent float64
	// WriteEvery mixes one create into the shared directory every this
	// many reads per client (0 = pure reads). Creates are writes, so
	// they invalidate any read leases on the directory — the knob
	// exists to exercise the write-revoke path under load.
	WriteEvery int
	// Dir is the shared directory's path (default "/readstorm/dir").
	// Multi-tenant mixes point each tenant's storm at its own subtree.
	Dir string
	// ClientOffset shifts the client indices baked into generated
	// create names. Sub-populations that share a namespace (tenant
	// mixes) must use disjoint offsets, or their create names collide.
	ClientOffset int
}

func (c *ReadStormConfig) defaults() {
	if c.Files == 0 {
		c.Files = 2000
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 12000
	}
	if c.Exponent == 0 {
		c.Exponent = 0.98
	}
	if c.Dir == "" {
		c.Dir = "/readstorm/dir"
	}
}

// ReadStorm is the shared-directory read-storm workload generator.
type ReadStorm struct{ cfg ReadStormConfig }

// NewReadStorm creates a shared-directory read-storm generator.
func NewReadStorm(cfg ReadStormConfig) *ReadStorm {
	cfg.defaults()
	return &ReadStorm{cfg: cfg}
}

// Name implements Generator.
func (g *ReadStorm) Name() string { return "ReadStorm" }

// Setup implements Generator: one common directory of Files files, with
// every client streaming Zipf-skewed getattrs over it.
func (g *ReadStorm) Setup(tree *namespace.Tree, clients int, src *rng.Source) ([]ClientSpec, error) {
	dir, err := tree.MkdirAll(g.cfg.Dir)
	if err != nil {
		return nil, err
	}
	files := make([]*namespace.Inode, g.cfg.Files)
	for f := 0; f < g.cfg.Files; f++ {
		in, err := tree.Create(dir, fmt.Sprintf("file%06d", f), 4096)
		if err != nil {
			return nil, err
		}
		files[f] = in
	}
	streams := make([]Stream, clients)
	for c := 0; c < clients; c++ {
		streams[c] = newZipfStats(dir, files, g.cfg.OpsPerClient, g.cfg.Exponent,
			g.cfg.WriteEvery, g.cfg.ClientOffset+c, src.Fork(uint64(c)+10))
	}
	return jitterSpecs(streams, 0, 0, src.Fork(1)), nil
}

// newZipfStats is the pure-metadata sibling of newZipfReads: Zipf-
// distributed getattrs with no data-path bytes. With writeEvery > 0,
// every writeEvery-th op is instead a create into the shared directory
// (a lease-invalidating write).
func newZipfStats(dir *namespace.Inode, files []*namespace.Inode, ops int, exponent float64,
	writeEvery, client int, src *rng.Source) Stream {
	perm := src.Perm(len(files))
	zipf := rng.NewZipf(src, exponent, len(files))
	done := 0
	writes := 0
	buf := make([]Op, 1)
	return &seqStream{fill: func() []Op {
		if done >= ops {
			return nil
		}
		done++
		if writeEvery > 0 && done%writeEvery == 0 {
			writes++
			buf[0] = Op{
				Kind:   OpCreate,
				Parent: dir,
				Name:   fmt.Sprintf("new%04d_%06d", client, writes),
				Size:   4096,
			}
			return buf
		}
		buf[0] = Op{Kind: OpGetattr, Target: files[perm[zipf.Next()]]}
		return buf
	}}
}
