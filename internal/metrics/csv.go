package metrics

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// WriteCSV emits the recorder's per-tick series as CSV: one row per
// tick with the aggregate throughput, each MDS's throughput, and the
// cumulative migration/forward counters, so external tooling can plot
// the figures.
func (r *Recorder) WriteCSV(w io.Writer) error {
	header := []string{"tick", "agg_iops"}
	for i := range r.PerMDS {
		header = append(header, fmt.Sprintf("mds%d_iops", i+1))
	}
	header = append(header, "migrated_inodes", "forwards",
		"stalled_on_down", "aborted_exports", "recovery_ticks")
	if _, err := io.WriteString(w, strings.Join(header, ",")+"\n"); err != nil {
		return err
	}
	for row := 0; row < r.Agg.Len(); row++ {
		cells := []string{
			fmt.Sprintf("%d", r.Agg.Ticks[row]),
			fmt.Sprintf("%.0f", r.Agg.Values[row]),
		}
		for _, s := range r.PerMDS {
			cells = append(cells, seriesCellAt(s, r.Agg.Ticks[row]))
		}
		cells = append(cells,
			valueCell(&r.Migrated, row),
			valueCell(&r.Forwards, row),
			valueCell(&r.StalledDown, row),
			valueCell(&r.Aborted, row),
			valueCell(&r.Recovery, row),
		)
		if _, err := io.WriteString(w, strings.Join(cells, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteEpochCSV emits the per-epoch imbalance series as CSV.
func (r *Recorder) WriteEpochCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "tick,imbalance_factor,cov\n"); err != nil {
		return err
	}
	for i := 0; i < r.IF.Len(); i++ {
		line := fmt.Sprintf("%d,%.4f,%.4f\n", r.IF.Ticks[i], r.IF.Values[i], r.CoV.Values[i])
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	return nil
}

// seriesCellAt returns the series value at the given tick, or empty
// when the series starts later (an MDS added mid-run).
func seriesCellAt(s *stats.Series, tick int64) string {
	if s.Len() == 0 || s.Ticks[0] > tick {
		return ""
	}
	idx := int(tick - s.Ticks[0])
	if idx < 0 || idx >= s.Len() || s.Ticks[idx] != tick {
		// Fallback: linear scan (series with gaps).
		for i, t := range s.Ticks {
			if t == tick {
				return fmt.Sprintf("%.0f", s.Values[i])
			}
		}
		return ""
	}
	return fmt.Sprintf("%.0f", s.Values[idx])
}

func valueCell(s *stats.Series, row int) string {
	if row >= s.Len() {
		return ""
	}
	return fmt.Sprintf("%.0f", s.Values[row])
}
