// Package metrics records and summarizes what the experiments measure:
// per-MDS and aggregate throughput series, imbalance-factor series,
// cumulative migrated inodes, forwarding counts, and job completion
// times — the quantities behind every figure of the paper's evaluation.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Recorder accumulates one simulation run's measurements.
type Recorder struct {
	// PerMDS[i] is MDS i's served ops per tick (IOPS, ticks are 1s).
	PerMDS []*stats.Series
	// Agg is the cluster-aggregate IOPS per tick.
	Agg stats.Series
	// IF is the per-epoch imbalance factor (stamped with the tick).
	IF stats.Series
	// CoV is the per-epoch raw coefficient of variation.
	CoV stats.Series
	// Migrated is the cumulative migrated-inode count per tick.
	Migrated stats.Series
	// Forwards is the cumulative inter-MDS forward count per tick.
	Forwards stats.Series
	// JCT holds each finished client's completion tick.
	JCT []float64

	// StalledDown is the cumulative count of op attempts that stalled
	// because the authoritative (or a relaying) rank was down.
	StalledDown stats.Series
	// Aborted is the cumulative count of exports aborted by crashes.
	Aborted stats.Series
	// Recovery is the cumulative count of orphaned rank-ticks: each
	// tick adds one per crashed rank whose subtrees are still awaiting
	// takeover (the unavailability the recovery window buys).
	Recovery stats.Series

	recoveries []RecoveryEvent

	// latency histograms per-op service latency in ticks: index i
	// counts ops completed with latency i+1; the final slot is the
	// overflow bucket.
	latency    [maxLatencyBucket]int64
	latencyN   int64
	latencySum int64

	// Write-back batching counters (zero unless the run used write-back
	// clients). batchSize histograms the op count of flushed batches
	// (index i counts batches of i+1 ops, overflow in the last slot);
	// flushAge histograms how many ticks the batch's oldest op was
	// buffered before the flush.
	batchFlushes  int64
	batchCommits  int64
	batchRequeues int64
	batchOps      int64
	batchSize     [maxLatencyBucket]int64
	flushAge      [maxLatencyBucket]int64

	// Per-tenant measurements (empty unless the run used tenant QoS):
	// tenantJCT[t] holds tenant t's client completion ticks, tenantLat[t]
	// accumulates tenant t's op-latency histogram. Sized by SetTenants.
	tenantJCT [][]float64
	tenantLat []LatencyShard
}

// RecoveryEvent records one completed failover takeover.
type RecoveryEvent struct {
	// Rank is the crashed MDS rank whose subtrees were reassigned.
	Rank int
	// CrashTick is when the rank went down.
	CrashTick int64
	// ReassignTick is when its orphaned subtrees moved to survivors.
	ReassignTick int64
	// Entries is how many subtree entries were reassigned.
	Entries int
	// Warm marks a warm-standby promotion (replication) instead of a
	// cold orphan takeover.
	Warm bool
}

// TicksToReassign returns the outage window before takeover.
func (e RecoveryEvent) TicksToReassign() int64 { return e.ReassignTick - e.CrashTick }

// maxLatencyBucket caps the latency histogram (ops slower than this
// land in the overflow slot).
const maxLatencyBucket = 256

// NewRecorder creates a recorder for an n-MDS cluster.
func NewRecorder(n int) *Recorder {
	r := &Recorder{}
	r.GrowMDS(n)
	return r
}

// GrowMDS extends the per-MDS series set to at least n.
func (r *Recorder) GrowMDS(n int) {
	for len(r.PerMDS) < n {
		r.PerMDS = append(r.PerMDS, &stats.Series{})
	}
}

// SampleTick records one tick's served ops per MDS plus the cumulative
// migration and forwarding counters.
func (r *Recorder) SampleTick(tick int64, perMDS []int, migrated, forwards int64) {
	r.GrowMDS(len(perMDS))
	total := 0
	for i, v := range perMDS {
		r.PerMDS[i].Append(tick, float64(v))
		total += v
	}
	r.Agg.Append(tick, float64(total))
	r.Migrated.Append(tick, float64(migrated))
	r.Forwards.Append(tick, float64(forwards))
}

// SampleFaults records one tick's cumulative fault counters: ops
// stalled on down ranks, exports aborted by crashes, and orphaned
// rank-ticks spent waiting for takeover.
func (r *Recorder) SampleFaults(tick int64, stalledDown, aborted, recoveryTicks int64) {
	r.StalledDown.Append(tick, float64(stalledDown))
	r.Aborted.Append(tick, float64(aborted))
	r.Recovery.Append(tick, float64(recoveryTicks))
}

// AddRecovery records a completed failover takeover.
func (r *Recorder) AddRecovery(ev RecoveryEvent) {
	r.recoveries = append(r.recoveries, ev)
}

// RecoveryEvents returns the recorded takeovers (shared slice; callers
// must not modify it).
func (r *Recorder) RecoveryEvents() []RecoveryEvent { return r.recoveries }

// StalledDownTotal returns the final stalled-on-down count.
func (r *Recorder) StalledDownTotal() float64 { return r.StalledDown.Last() }

// AbortedTotal returns the final crash-aborted export count.
func (r *Recorder) AbortedTotal() float64 { return r.Aborted.Last() }

// RecoveryTicksTotal returns the final orphaned rank-tick count.
func (r *Recorder) RecoveryTicksTotal() float64 { return r.Recovery.Last() }

// WarmRecoveries counts the recorded warm-standby promotions.
func (r *Recorder) WarmRecoveries() int {
	n := 0
	for _, ev := range r.recoveries {
		if ev.Warm {
			n++
		}
	}
	return n
}

// MeanTicksToReassign returns the mean outage window across recorded
// takeovers (0 when none happened).
func (r *Recorder) MeanTicksToReassign() float64 {
	if len(r.recoveries) == 0 {
		return 0
	}
	sum := 0.0
	for _, ev := range r.recoveries {
		sum += float64(ev.TicksToReassign())
	}
	return sum / float64(len(r.recoveries))
}

// SampleEpoch records the epoch-boundary imbalance evaluation.
func (r *Recorder) SampleEpoch(tick int64, ifv, cov float64) {
	r.IF.Append(tick, ifv)
	r.CoV.Append(tick, cov)
}

// AddJCT records a client completion time.
func (r *Recorder) AddJCT(tick int64) { r.JCT = append(r.JCT, float64(tick)) }

// AddLatency records one op's service latency in ticks (>= 1).
func (r *Recorder) AddLatency(ticks int64) {
	if ticks < 1 {
		ticks = 1
	}
	idx := ticks - 1
	if idx >= maxLatencyBucket {
		idx = maxLatencyBucket - 1
	}
	r.latency[idx]++
	r.latencyN++
	r.latencySum += ticks
}

// LatencyShard is a per-worker latency accumulator for the parallel
// engine: rank lanes record op latencies into their own shard during a
// parallel serve phase and the engine merges the shards into the
// Recorder at the serial end of the tick. Merging is pure integer
// addition, so any merge order yields byte-identical CSV output; the
// maxIdx watermark keeps the merge cost proportional to the latencies
// actually seen instead of the full histogram width.
type LatencyShard struct {
	counts [maxLatencyBucket]int64
	maxIdx int
	n      int64
	sum    int64
}

// Add records one op's latency into the shard (same bucketing as
// Recorder.AddLatency).
func (s *LatencyShard) Add(ticks int64) {
	if ticks < 1 {
		ticks = 1
	}
	idx := ticks - 1
	if idx >= maxLatencyBucket {
		idx = maxLatencyBucket - 1
	}
	s.counts[idx]++
	if int(idx) >= s.maxIdx {
		s.maxIdx = int(idx) + 1
	}
	s.n++
	s.sum += ticks
}

// Dirty reports whether the shard holds unmerged samples.
func (s *LatencyShard) Dirty() bool { return s.n != 0 }

// MergeLatencyShard folds a shard's counts into the recorder and
// resets the shard for reuse.
func (r *Recorder) MergeLatencyShard(s *LatencyShard) {
	for i := 0; i < s.maxIdx; i++ {
		if c := s.counts[i]; c != 0 {
			r.latency[i] += c
			s.counts[i] = 0
		}
	}
	r.latencyN += s.n
	r.latencySum += s.sum
	s.maxIdx, s.n, s.sum = 0, 0, 0
}

// SetTenants sizes the per-tenant measurement slots (idempotent, never
// shrinks). Zero tenants — the default — keeps the recorder free of any
// per-tenant state.
func (r *Recorder) SetTenants(n int) {
	if n <= len(r.tenantLat) {
		return
	}
	lat := make([]LatencyShard, n)
	copy(lat, r.tenantLat)
	r.tenantLat = lat
	jct := make([][]float64, n)
	copy(jct, r.tenantJCT)
	r.tenantJCT = jct
}

// Tenants returns how many tenants the recorder tracks (0 when the run
// was single-tenant).
func (r *Recorder) Tenants() int { return len(r.tenantLat) }

// AddTenantJCT records a client completion time under its tenant.
func (r *Recorder) AddTenantJCT(t int, tick int64) {
	if t >= 0 && t < len(r.tenantJCT) {
		r.tenantJCT[t] = append(r.tenantJCT[t], float64(tick))
	}
}

// TenantJCTCount returns how many of tenant t's clients have finished.
func (r *Recorder) TenantJCTCount(t int) int {
	if t < 0 || t >= len(r.tenantJCT) {
		return 0
	}
	return len(r.tenantJCT[t])
}

// TenantJCTQuantile returns the q-quantile completion time of tenant
// t's clients (0 when none finished).
func (r *Recorder) TenantJCTQuantile(t int, q float64) float64 {
	if t < 0 || t >= len(r.tenantJCT) {
		return 0
	}
	return stats.Percentile(r.tenantJCT[t], q)
}

// MergeTenantLatencyShard folds a per-lane tenant latency shard into
// tenant t's histogram and resets the shard for reuse. Integer adds
// only, so merge order cannot change the result.
func (r *Recorder) MergeTenantLatencyShard(t int, s *LatencyShard) {
	if t < 0 || t >= len(r.tenantLat) {
		return
	}
	d := &r.tenantLat[t]
	for i := 0; i < s.maxIdx; i++ {
		if c := s.counts[i]; c != 0 {
			d.counts[i] += c
			s.counts[i] = 0
		}
	}
	if s.maxIdx > d.maxIdx {
		d.maxIdx = s.maxIdx
	}
	d.n += s.n
	d.sum += s.sum
	s.maxIdx, s.n, s.sum = 0, 0, 0
}

// TenantOps returns how many ops tenant t completed.
func (r *Recorder) TenantOps(t int) int64 {
	if t < 0 || t >= len(r.tenantLat) {
		return 0
	}
	return r.tenantLat[t].n
}

// TenantMeanLatency returns tenant t's average op latency in ticks.
func (r *Recorder) TenantMeanLatency(t int) float64 {
	if t < 0 || t >= len(r.tenantLat) || r.tenantLat[t].n == 0 {
		return 0
	}
	return float64(r.tenantLat[t].sum) / float64(r.tenantLat[t].n)
}

// TenantLatencyQuantile returns the q-quantile op latency of tenant t.
func (r *Recorder) TenantLatencyQuantile(t int, q float64) float64 {
	if t < 0 || t >= len(r.tenantLat) {
		return 0
	}
	return stats.QuantileOfCounts(r.tenantLat[t].counts[:], func(i int) float64 { return float64(i + 1) }, q)
}

// MeanLatency returns the average op latency in ticks (0 if none).
func (r *Recorder) MeanLatency() float64 {
	if r.latencyN == 0 {
		return 0
	}
	return float64(r.latencySum) / float64(r.latencyN)
}

// LatencyQuantile returns the q-quantile op latency in ticks from the
// histogram (the overflow bucket reports the cap). It uses the same
// interpolated quantile definition as stats.Percentile, so histogram
// quantiles agree exactly with quantiles of the raw latency sample.
func (r *Recorder) LatencyQuantile(q float64) float64 {
	return stats.QuantileOfCounts(r.latency[:], func(i int) float64 { return float64(i + 1) }, q)
}

// AddBatchFlush records one write-back batch flushed into a rank's
// group-commit journal: its op count and the buffering age (ticks since
// the batch's oldest op was drawn) feed the batch-size and flush-age
// histograms.
func (r *Recorder) AddBatchFlush(n int, age int64) {
	r.batchFlushes++
	r.batchOps += int64(n)
	idx := n - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= maxLatencyBucket {
		idx = maxLatencyBucket - 1
	}
	r.batchSize[idx]++
	if age < 0 {
		age = 0
	}
	if age >= maxLatencyBucket {
		age = maxLatencyBucket - 1
	}
	r.flushAge[age]++
}

// AddBatchCommits records batch (or batch-prefix) applications by the
// serve phase.
func (r *Recorder) AddBatchCommits(n int64) { r.batchCommits += n }

// AddBatchRequeue records one batch dropped at rank crash and re-queued
// client-side.
func (r *Recorder) AddBatchRequeue() { r.batchRequeues++ }

// BatchFlushes returns how many write-back batches were flushed.
func (r *Recorder) BatchFlushes() int64 { return r.batchFlushes }

// BatchCommits returns how many batch applications the serve phase ran.
func (r *Recorder) BatchCommits() int64 { return r.batchCommits }

// BatchRequeues returns how many batches crashes dropped back to their
// clients.
func (r *Recorder) BatchRequeues() int64 { return r.batchRequeues }

// MeanBatchSize returns the average op count of flushed batches (0 when
// no batches were flushed).
func (r *Recorder) MeanBatchSize() float64 {
	if r.batchFlushes == 0 {
		return 0
	}
	return float64(r.batchOps) / float64(r.batchFlushes)
}

// BatchSizeQuantile returns the q-quantile flushed-batch op count.
func (r *Recorder) BatchSizeQuantile(q float64) float64 {
	return stats.QuantileOfCounts(r.batchSize[:], func(i int) float64 { return float64(i + 1) }, q)
}

// FlushAgeQuantile returns the q-quantile flush age in ticks.
func (r *Recorder) FlushAgeQuantile(q float64) float64 {
	return stats.QuantileOfCounts(r.flushAge[:], func(i int) float64 { return float64(i) }, q)
}

// MeanIF returns the run's average imbalance factor.
func (r *Recorder) MeanIF() float64 { return r.IF.MeanValue() }

// TailIF returns the mean IF of the last k epochs.
func (r *Recorder) TailIF(k int) float64 { return r.IF.Tail(k) }

// PeakThroughput returns the maximum window-averaged aggregate IOPS
// (window in ticks), the "peak throughput" of Figures 7 and 13.
func (r *Recorder) PeakThroughput(window int) float64 {
	if window < 1 {
		window = 1
	}
	vals := r.Agg.Values
	if len(vals) == 0 {
		return 0
	}
	if window > len(vals) {
		window = len(vals)
	}
	sum := 0.0
	for _, v := range vals[:window] {
		sum += v
	}
	best := sum
	for i := window; i < len(vals); i++ {
		sum += vals[i] - vals[i-window]
		if sum > best {
			best = sum
		}
	}
	return best / float64(window)
}

// MeanThroughput returns the run-average aggregate IOPS over the ticks
// where any work happened (trailing idle ticks excluded).
func (r *Recorder) MeanThroughput() float64 {
	vals := r.Agg.Values
	end := len(vals)
	for end > 0 && vals[end-1] == 0 {
		end--
	}
	if end == 0 {
		return 0
	}
	return stats.Mean(vals[:end])
}

// TotalOps returns the total ops served across the run.
func (r *Recorder) TotalOps() float64 { return stats.Sum(r.Agg.Values) }

// ShareOfRequests returns each MDS's fraction of all served requests
// (Figure 2's distribution).
func (r *Recorder) ShareOfRequests() []float64 {
	total := r.TotalOps()
	out := make([]float64, len(r.PerMDS))
	if total == 0 {
		return out
	}
	for i, s := range r.PerMDS {
		out[i] = stats.Sum(s.Values) / total
	}
	return out
}

// JCTQuantile returns the q-quantile job completion time.
func (r *Recorder) JCTQuantile(q float64) float64 {
	return stats.Percentile(r.JCT, q)
}

// JCTQuantiles returns several quantiles of the job-completion-time
// distribution with a single sort (see stats.Percentiles).
func (r *Recorder) JCTQuantiles(qs ...float64) []float64 {
	return stats.Percentiles(r.JCT, qs...)
}

// JCTMax returns the slowest client's completion time.
func (r *Recorder) JCTMax() float64 { return stats.Max(r.JCT) }

// MigratedTotal returns the final cumulative migrated-inode count.
func (r *Recorder) MigratedTotal() float64 { return r.Migrated.Last() }

// ForwardsTotal returns the final cumulative forward count.
func (r *Recorder) ForwardsTotal() float64 { return r.Forwards.Last() }

// Downsample returns (tick, value) pairs of the series averaged into at
// most buckets windows — compact series for textual figure output.
func Downsample(s *stats.Series, buckets int) [][2]float64 {
	n := s.Len()
	if n == 0 || buckets <= 0 {
		return nil
	}
	if buckets > n {
		buckets = n
	}
	out := make([][2]float64, 0, buckets)
	per := float64(n) / float64(buckets)
	for b := 0; b < buckets; b++ {
		lo := int(float64(b) * per)
		hi := int(float64(b+1) * per)
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += s.Values[i]
		}
		out = append(out, [2]float64{float64(s.Ticks[hi-1]), sum / float64(hi-lo)})
	}
	return out
}

// FormatSeries renders a downsampled series as "t=v" pairs.
func FormatSeries(s *stats.Series, buckets int) string {
	var b strings.Builder
	for i, p := range Downsample(s, buckets) {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d=%.1f", int64(p[0]), p[1])
	}
	return b.String()
}

// Table renders rows as a fixed-width text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SortedCopy returns a sorted copy of xs (ascending).
func SortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
