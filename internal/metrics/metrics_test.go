package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(3)
	r.SampleTick(0, []int{100, 50, 0}, 10, 2)
	r.SampleTick(1, []int{100, 100, 100}, 20, 4)
	if r.Agg.Len() != 2 {
		t.Fatal("agg samples")
	}
	if r.Agg.Values[0] != 150 || r.Agg.Values[1] != 300 {
		t.Fatalf("agg values %v", r.Agg.Values)
	}
	if r.MigratedTotal() != 20 || r.ForwardsTotal() != 4 {
		t.Fatal("counters")
	}
	if r.TotalOps() != 450 {
		t.Fatalf("total ops %v", r.TotalOps())
	}
}

func TestRecorderGrowMDS(t *testing.T) {
	r := NewRecorder(2)
	r.SampleTick(0, []int{10, 20}, 0, 0)
	// Cluster expansion: more MDSs mid-run.
	r.SampleTick(1, []int{10, 20, 30}, 0, 0)
	if len(r.PerMDS) != 3 {
		t.Fatal("per-MDS series must grow")
	}
	if r.PerMDS[2].Len() != 1 {
		t.Fatal("new MDS series starts at its join tick")
	}
}

func TestShareOfRequests(t *testing.T) {
	r := NewRecorder(2)
	r.SampleTick(0, []int{75, 25}, 0, 0)
	share := r.ShareOfRequests()
	if math.Abs(share[0]-0.75) > 1e-9 || math.Abs(share[1]-0.25) > 1e-9 {
		t.Fatalf("share = %v", share)
	}
	empty := NewRecorder(2)
	if s := empty.ShareOfRequests(); s[0] != 0 || s[1] != 0 {
		t.Fatal("empty share")
	}
}

func TestPeakThroughputWindow(t *testing.T) {
	r := NewRecorder(1)
	vals := []int{0, 10, 10, 10, 0, 0}
	for i, v := range vals {
		r.SampleTick(int64(i), []int{v}, 0, 0)
	}
	if got := r.PeakThroughput(1); got != 10 {
		t.Fatalf("peak(1) = %v", got)
	}
	if got := r.PeakThroughput(3); math.Abs(got-10) > 1e-9 {
		t.Fatalf("peak(3) = %v", got)
	}
	if got := r.PeakThroughput(6); math.Abs(got-30.0/6.0) > 1e-9 {
		t.Fatalf("peak(6) = %v", got)
	}
	if got := r.PeakThroughput(100); math.Abs(got-30.0/6.0) > 1e-9 {
		t.Fatal("window larger than series must clamp")
	}
	if NewRecorder(1).PeakThroughput(5) != 0 {
		t.Fatal("empty peak")
	}
}

func TestMeanThroughputIgnoresTrailingIdle(t *testing.T) {
	r := NewRecorder(1)
	for i, v := range []int{10, 20, 0, 0, 0} {
		r.SampleTick(int64(i), []int{v}, 0, 0)
	}
	if got := r.MeanThroughput(); got != 15 {
		t.Fatalf("mean = %v", got)
	}
	if NewRecorder(1).MeanThroughput() != 0 {
		t.Fatal("empty mean")
	}
}

func TestJCTQuantiles(t *testing.T) {
	r := NewRecorder(1)
	for _, tck := range []int64{10, 20, 30, 40, 100} {
		r.AddJCT(tck)
	}
	if got := r.JCTQuantile(0.5); got != 30 {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.JCTMax(); got != 100 {
		t.Fatalf("max = %v", got)
	}
}

func TestEpochSampling(t *testing.T) {
	r := NewRecorder(1)
	r.SampleEpoch(9, 0.5, 1.1)
	r.SampleEpoch(19, 0.1, 0.2)
	if r.MeanIF() != 0.3 {
		t.Fatalf("meanIF = %v", r.MeanIF())
	}
	if r.TailIF(1) != 0.1 {
		t.Fatalf("tailIF = %v", r.TailIF(1))
	}
}

func TestLatencyHistogram(t *testing.T) {
	r := NewRecorder(1)
	// 90 fast ops, 9 medium, 1 slow.
	for i := 0; i < 90; i++ {
		r.AddLatency(1)
	}
	for i := 0; i < 9; i++ {
		r.AddLatency(5)
	}
	r.AddLatency(40)
	if got := r.LatencyQuantile(0.5); got != 1 {
		t.Fatalf("p50 = %v", got)
	}
	if got := r.LatencyQuantile(0.95); got != 5 {
		t.Fatalf("p95 = %v", got)
	}
	if got := r.LatencyQuantile(1); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
	want := (90*1 + 9*5 + 40) / 100.0
	if got := r.MeanLatency(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

// TestLatencyQuantileMatchesStatsPercentile is the cross-check behind
// the quantile unification: the histogram path and stats.Percentile on
// the raw sample must agree exactly for every quantile, because both
// now use the same interpolated definition. (The old nearest-rank
// histogram disagreed with the interpolating Percentile for the same
// data.)
func TestLatencyQuantileMatchesStatsPercentile(t *testing.T) {
	r := NewRecorder(1)
	var raw []float64
	// A deterministic, lumpy sample across the bucket range, including
	// repeats and a gap — the shapes where nearest-rank and
	// interpolation used to diverge.
	lat, step := int64(1), int64(1)
	for i := 0; i < 500; i++ {
		r.AddLatency(lat)
		raw = append(raw, float64(lat))
		if i%7 == 0 {
			lat += step
			step = (step*3)%11 + 1
		}
		if lat > 200 {
			lat = 1
		}
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		hist := r.LatencyQuantile(q)
		want := stats.Percentile(raw, q)
		if hist != want {
			t.Fatalf("q=%v: histogram %v != percentile %v", q, hist, want)
		}
	}
}

func TestLatencyEdges(t *testing.T) {
	r := NewRecorder(1)
	if r.LatencyQuantile(0.5) != 0 || r.MeanLatency() != 0 {
		t.Fatal("empty latency")
	}
	r.AddLatency(0)    // clamps to 1
	r.AddLatency(9999) // overflows into the last bucket
	if got := r.LatencyQuantile(0); got != 1 {
		t.Fatalf("clamped low = %v", got)
	}
	if got := r.LatencyQuantile(1); got != 256 {
		t.Fatalf("overflow = %v", got)
	}
}

func TestDownsample(t *testing.T) {
	var s stats.Series
	for i := 0; i < 100; i++ {
		s.Append(int64(i), float64(i))
	}
	pts := Downsample(&s, 10)
	if len(pts) != 10 {
		t.Fatalf("buckets = %d", len(pts))
	}
	// First bucket averages 0..9 = 4.5.
	if math.Abs(pts[0][1]-4.5) > 1e-9 {
		t.Fatalf("bucket0 = %v", pts[0][1])
	}
	// More buckets than samples degrades gracefully.
	var tiny stats.Series
	tiny.Append(5, 7)
	if got := Downsample(&tiny, 10); len(got) != 1 || got[0][1] != 7 {
		t.Fatalf("tiny downsample = %v", got)
	}
	if Downsample(&stats.Series{}, 5) != nil {
		t.Fatal("empty downsample")
	}
}

func TestFormatSeries(t *testing.T) {
	var s stats.Series
	s.Append(0, 1)
	s.Append(10, 3)
	out := FormatSeries(&s, 2)
	if !strings.Contains(out, "0=1.0") || !strings.Contains(out, "10=3.0") {
		t.Fatalf("formatted = %q", out)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"name", "value"}}
	tbl.Add("alpha", "1")
	tbl.Add("a-much-longer-name", "2")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatal("header")
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatal("separator")
	}
	// Columns align: both data rows place the value at the same offset.
	if strings.Index(lines[2], "1") != strings.Index(lines[3], "2") {
		t.Fatal("column alignment")
	}
}

func TestSortedCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[2] != 3 {
		t.Fatal("sorted")
	}
	if in[0] != 3 {
		t.Fatal("input must not be mutated")
	}
}
