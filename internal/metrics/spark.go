package metrics

import (
	"strings"

	"repro/internal/stats"
)

// sparkLevels are the eight block glyphs a sparkline is drawn with.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as a row of block glyphs, downsampled
// into at most width buckets and scaled to the series' own maximum —
// a terminal-friendly rendition of the paper's time-series figures.
func Sparkline(s *stats.Series, width int) string {
	pts := Downsample(s, width)
	if len(pts) == 0 {
		return ""
	}
	max := 0.0
	for _, p := range pts {
		if p[1] > max {
			max = p[1]
		}
	}
	var b strings.Builder
	for _, p := range pts {
		idx := 0
		if max > 0 {
			idx = int(p[1] / max * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// SparklineScaled renders the series against an external maximum so
// several sparklines (e.g. per-MDS throughput rows) share one scale.
func SparklineScaled(s *stats.Series, width int, max float64) string {
	pts := Downsample(s, width)
	if len(pts) == 0 {
		return ""
	}
	var b strings.Builder
	for _, p := range pts {
		idx := 0
		if max > 0 {
			idx = int(p[1] / max * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}
