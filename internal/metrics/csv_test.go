package metrics

import (
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(2)
	r.SampleTick(0, []int{100, 50}, 10, 1)
	r.SampleTick(1, []int{200, 60}, 20, 2)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows", len(lines))
	}
	if lines[0] != "tick,agg_iops,mds1_iops,mds2_iops,migrated_inodes,forwards" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,150,100,50,10,1" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "1,260,200,60,20,2" {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestWriteCSVLateJoiningMDS(t *testing.T) {
	r := NewRecorder(1)
	r.SampleTick(0, []int{10}, 0, 0)
	r.SampleTick(1, []int{10, 5}, 0, 0) // MDS 2 joins at tick 1
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// The late MDS's tick-0 cell is empty.
	if !strings.Contains(lines[1], "0,10,10,,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "1,15,10,5,") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestWriteEpochCSV(t *testing.T) {
	r := NewRecorder(1)
	r.SampleEpoch(9, 0.5, 1.2)
	r.SampleEpoch(19, 0.25, 0.6)
	var b strings.Builder
	if err := r.WriteEpochCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 || lines[0] != "tick,imbalance_factor,cov" {
		t.Fatalf("csv = %q", b.String())
	}
	if lines[1] != "9,0.5000,1.2000" {
		t.Fatalf("row = %q", lines[1])
	}
}
