package metrics

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(2)
	r.SampleTick(0, []int{100, 50}, 10, 1)
	r.SampleTick(1, []int{200, 60}, 20, 2)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows", len(lines))
	}
	if lines[0] != "tick,agg_iops,mds1_iops,mds2_iops,migrated_inodes,forwards,stalled_on_down,aborted_exports,recovery_ticks" {
		t.Fatalf("header = %q", lines[0])
	}
	// The fault columns are empty when SampleFaults was never called.
	if lines[1] != "0,150,100,50,10,1,,," {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "1,260,200,60,20,2,,," {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

// TestWriteCSVFaultColumnsRoundTrip writes a recorder that sampled
// fault counters and parses the CSV back, asserting every fault cell
// survives the trip.
func TestWriteCSVFaultColumnsRoundTrip(t *testing.T) {
	r := NewRecorder(2)
	samples := []struct {
		perMDS                         []int
		stalledDown, aborted, recovery int64
	}{
		{[]int{100, 50}, 0, 0, 0},
		{[]int{0, 60}, 7, 2, 1},
		{[]int{0, 70}, 19, 2, 2},
		{[]int{90, 80}, 19, 2, 2},
	}
	for i, s := range samples {
		tick := int64(i)
		r.SampleTick(tick, s.perMDS, 0, 0)
		r.SampleFaults(tick, s.stalledDown, s.aborted, s.recovery)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(samples)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(samples)+1)
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, name := range []string{"stalled_on_down", "aborted_exports", "recovery_ticks"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("column %q missing from header %v", name, rows[0])
		}
	}
	parse := func(row int, name string) int64 {
		v, err := strconv.ParseInt(rows[row][col[name]], 10, 64)
		if err != nil {
			t.Fatalf("row %d col %s: %v", row, name, err)
		}
		return v
	}
	for i, s := range samples {
		row := i + 1
		if got := parse(row, "tick"); got != int64(i) {
			t.Fatalf("row %d tick = %d", row, got)
		}
		if got := parse(row, "stalled_on_down"); got != s.stalledDown {
			t.Fatalf("row %d stalled_on_down = %d, want %d", row, got, s.stalledDown)
		}
		if got := parse(row, "aborted_exports"); got != s.aborted {
			t.Fatalf("row %d aborted_exports = %d, want %d", row, got, s.aborted)
		}
		if got := parse(row, "recovery_ticks"); got != s.recovery {
			t.Fatalf("row %d recovery_ticks = %d, want %d", row, got, s.recovery)
		}
	}
}

func TestWriteCSVLateJoiningMDS(t *testing.T) {
	r := NewRecorder(1)
	r.SampleTick(0, []int{10}, 0, 0)
	r.SampleTick(1, []int{10, 5}, 0, 0) // MDS 2 joins at tick 1
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// The late MDS's tick-0 cell is empty.
	if !strings.Contains(lines[1], "0,10,10,,") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[2], "1,15,10,5,") {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

func TestWriteEpochCSV(t *testing.T) {
	r := NewRecorder(1)
	r.SampleEpoch(9, 0.5, 1.2)
	r.SampleEpoch(19, 0.25, 0.6)
	var b strings.Builder
	if err := r.WriteEpochCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 || lines[0] != "tick,imbalance_factor,cov" {
		t.Fatalf("csv = %q", b.String())
	}
	if lines[1] != "9,0.5000,1.2000" {
		t.Fatalf("row = %q", lines[1])
	}
}
