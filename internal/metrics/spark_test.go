package metrics

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/stats"
)

func TestSparklineShape(t *testing.T) {
	var s stats.Series
	for i := 0; i < 64; i++ {
		s.Append(int64(i), float64(i))
	}
	sp := Sparkline(&s, 8)
	if utf8.RuneCountInString(sp) != 8 {
		t.Fatalf("sparkline width = %d", utf8.RuneCountInString(sp))
	}
	runes := []rune(sp)
	if runes[0] == runes[len(runes)-1] {
		t.Fatal("rising series must start low and end high")
	}
	if runes[len(runes)-1] != '█' {
		t.Fatalf("peak glyph = %q", runes[len(runes)-1])
	}
}

func TestSparklineFlatAndEmpty(t *testing.T) {
	var s stats.Series
	for i := 0; i < 10; i++ {
		s.Append(int64(i), 5)
	}
	sp := Sparkline(&s, 5)
	if strings.Trim(sp, "█") != "" {
		t.Fatalf("flat series should be all-peak: %q", sp)
	}
	var zero stats.Series
	for i := 0; i < 10; i++ {
		zero.Append(int64(i), 0)
	}
	if strings.Trim(Sparkline(&zero, 5), "▁") != "" {
		t.Fatal("zero series should be all-floor")
	}
	var empty stats.Series
	if Sparkline(&empty, 5) != "" {
		t.Fatal("empty series renders empty")
	}
}

func TestSparklineScaledShared(t *testing.T) {
	var a, b stats.Series
	for i := 0; i < 10; i++ {
		a.Append(int64(i), 100)
		b.Append(int64(i), 50)
	}
	sa := SparklineScaled(&a, 5, 100)
	sb := SparklineScaled(&b, 5, 100)
	if sa == sb {
		t.Fatal("shared scaling must differentiate 100 from 50")
	}
	if strings.Trim(sa, "█") != "" {
		t.Fatalf("full-scale series should be all-peak: %q", sa)
	}
}
