package core

import (
	"repro/internal/balancer"
	"repro/internal/namespace"
	"repro/internal/trace"
)

// Selector implements the paper's subtree selection (§3.3/§4.1): given
// an exporter and a migration amount, it searches the exporter's
// namespace through three paths:
//
//  1. a single subtree whose migration index is within the tolerance
//     (10%) of the amount;
//  2. an over-large subtree split down to size — into descendant
//     directories when the load concentrates in them, or by dirfrag
//     splitting when the load (or the anticipated spatial load) is
//     spread across the subtree itself;
//  3. a minimal set of subtrees whose migration indices together
//     roughly meet the demand.
//
// Candidate enumeration descends into a subtree's child directories
// only when those children actually capture the subtree's migration
// index; a region whose predicted load is diffuse (a scan spreading
// over hundreds of directories) is kept whole so that path 2 can carve
// a hash fragment of it — which ships a representative slice of the
// not-yet-visited namespace, the behaviour that makes Lunule effective
// on scan workloads.
type Selector struct {
	// Tolerance is the acceptable relative mismatch (the paper allows
	// a 10% difference).
	Tolerance float64
	// CandidateLimit bounds candidate enumeration.
	CandidateLimit int
	// MaxFragSplits bounds repeated dirfrag splitting.
	MaxFragSplits int
	// ConcentrationMin is the fraction of a region's migration index
	// its child directories must capture for the region to be refined
	// into them rather than fragment-split.
	ConcentrationMin float64
	// MaxPicks bounds how many subtrees one decision may export.
	MaxPicks int
	// DustFraction drops candidates below this fraction of the amount.
	DustFraction float64
}

// NewSelector returns a selector with the paper's defaults.
func NewSelector() *Selector {
	return &Selector{
		Tolerance:        0.10,
		CandidateLimit:   128,
		MaxFragSplits:    8,
		ConcentrationMin: 0.7,
		MaxPicks:         16,
		DustFraction:     0.05,
	}
}

// selCtx carries the per-call state.
type selCtx struct {
	v    balancer.View
	an   *Analyzer
	col  *trace.Collector
	part *namespace.Partition
	ex   namespace.MDSID
}

func (ctx *selCtx) dirLoad(d *namespace.Inode) float64 {
	return ctx.an.ForDir(ctx.col, ctx.v.Epoch(), d).MIndex
}

func (ctx *selCtx) keyLoad(k namespace.FragKey) float64 {
	return ctx.an.ForKey(ctx.col, ctx.v.Epoch(), ctx.part, k).MIndex
}

// childDirs lists the sub-directories inside a region that are not
// already subtree roots of their own.
func (ctx *selCtx) childDirs(dir *namespace.Inode, frag namespace.Frag) []*namespace.Inode {
	var out []*namespace.Inode
	for _, ch := range dir.ChildrenInFrag(frag) {
		if ch.IsDir && len(ctx.part.EntriesAt(ch.Ino)) == 0 {
			out = append(out, ch)
		}
	}
	return out
}

// Select returns the candidates to export so that their total migration
// index approximates amount (ops/sec). The analyzer must belong to the
// exporter (its collector classifies the exporter's recent traffic).
//
// A saturated exporter serves — and therefore observes — only a
// capacity-clipped slice of its true demand, so the amount (computed
// from served loads) is first converted into a fraction of the
// exporter's served load and then applied to the total enumerated
// migration index; this ships the right proportion of the demand
// rather than 'amount' worth of under-measured subtrees.
func (s *Selector) Select(v balancer.View, an *Analyzer, exporter namespace.MDSID, amount float64) []balancer.Candidate {
	if amount <= 0 {
		return nil
	}
	ctx := &selCtx{
		v:    v,
		an:   an,
		col:  v.Server(exporter).Collector(),
		part: v.Partition(),
		ex:   exporter,
	}
	cands := s.enumerate(ctx, amount)
	if len(cands) == 0 {
		return nil
	}
	if served := v.Server(exporter).CurrentLoad(); served > 0 {
		frac := amount / served
		if frac > 1 {
			frac = 1
		}
		total := 0.0
		for _, c := range cands {
			total += c.Load
		}
		amount = frac * total
		if amount <= 0 {
			return nil
		}
	}
	tol := s.Tolerance * amount

	// Path 1: one subtree that matches the amount within tolerance.
	bestIdx, bestDiff := -1, tol+1
	for i, c := range cands {
		diff := c.Load - amount
		if diff < 0 {
			diff = -diff
		}
		if diff <= tol && diff < bestDiff {
			bestIdx, bestDiff = i, diff
		}
	}
	if bestIdx >= 0 {
		return []balancer.Candidate{cands[bestIdx]}
	}

	// Path 2: the smallest over-large candidate, fragment-split toward
	// the amount. (Candidates whose load concentrates in child dirs
	// were already refined during enumeration, so an over-large
	// candidate here is split by hash fragments.)
	overIdx := -1
	for i, c := range cands {
		if c.Load > amount*(1+s.Tolerance) {
			if overIdx == -1 || c.Load < cands[overIdx].Load {
				overIdx = i
			}
		}
	}
	if overIdx >= 0 {
		if c, ok := s.fragSplit(ctx, cands[overIdx], amount); ok {
			return []balancer.Candidate{c}
		}
	}

	// Path 3: a minimal set whose indices sum toward the amount. Stop
	// at subtrees too small to matter: shipping dust would freeze many
	// subtrees while moving no load.
	var out []balancer.Candidate
	remaining := amount
	for _, c := range cands {
		if c.Load < amount*s.DustFraction || remaining <= tol {
			break
		}
		if c.Load > remaining*(1+s.Tolerance) {
			continue
		}
		out = append(out, c)
		remaining -= c.Load
		if len(out) >= s.MaxPicks {
			break
		}
	}
	return out
}

// enumerate lists the exporter's movable candidates sorted by
// descending migration index, refining a region into its child
// directories only while the children capture at least
// ConcentrationMin of its migration index.
func (s *Selector) enumerate(ctx *selCtx, amount float64) []balancer.Candidate {
	skip := ctx.v.Migrator().PendingFor(ctx.ex)
	tree := ctx.part.Tree()
	rootKey := namespace.FragKey{Dir: namespace.RootIno, Frag: namespace.WholeFrag}

	// Subtrees served (or about to be served) under read leases are
	// handled by replication, not migration (balancer.LeaseView).
	lv, _ := ctx.v.(balancer.LeaseView)

	// Subtrees hot because of an admission-throttled tenant stay put:
	// the noisy neighbour is contained by its token bucket where it
	// sits, and exporting its subtree would spread the over-quota load
	// (and whatever shares the subtree) across more ranks
	// (balancer.TenantView).
	tv, _ := ctx.v.(balancer.TenantView)

	var cands []balancer.Candidate
	for _, e := range ctx.part.EntriesOf(ctx.ex) {
		if skip[e.Key] || ctx.v.Migrator().IsFrozen(e.Key) {
			continue
		}
		if lv != nil && lv.ReadLeased(e.Key) {
			continue
		}
		if e.Key == rootKey {
			// The root entry aggregates every tenant's heat, so the
			// fairness skip below would freeze the entire namespace on
			// this rank the moment any tenant is throttled — innocent
			// subtrees included. Expand it unconditionally; once a child
			// is carved into its own entry it gets its own tenant
			// attribution and the skip applies at that granularity.
			for _, ch := range ctx.childDirs(tree.Root(), namespace.WholeFrag) {
				cands = append(cands, balancer.Candidate{Dir: ch, Load: ctx.dirLoad(ch)})
			}
			continue
		}
		if tv != nil && tv.TenantThrottled(e.Key) {
			continue
		}
		cands = append(cands, balancer.Candidate{Key: e.Key, IsEntry: true, Load: ctx.keyLoad(e.Key)})
	}

	for len(cands) < s.CandidateLimit {
		best := -1
		var bestChildren []balancer.Candidate
		for i, c := range cands {
			if c.Load <= amount*(1+s.Tolerance) {
				continue
			}
			var dir *namespace.Inode
			frag := namespace.WholeFrag
			if c.IsEntry {
				dir = tree.Get(c.Key.Dir)
				frag = c.Key.Frag
			} else {
				dir = c.Dir
			}
			if dir == nil {
				continue
			}
			children := ctx.childDirs(dir, frag)
			if len(children) == 0 {
				continue
			}
			sum := 0.0
			kids := make([]balancer.Candidate, 0, len(children))
			for _, ch := range children {
				l := ctx.dirLoad(ch)
				sum += l
				kids = append(kids, balancer.Candidate{Dir: ch, Load: l})
			}
			if sum < s.ConcentrationMin*c.Load {
				// Diffuse region: keep whole; path 2 will frag-split.
				continue
			}
			if best == -1 || c.Load > cands[best].Load {
				best = i
				bestChildren = kids
			}
		}
		if best == -1 {
			break
		}
		cands = append(cands[:best], cands[best+1:]...)
		cands = append(cands, bestChildren...)
	}

	sortCandidates(cands)
	return cands
}

func sortCandidates(cands []balancer.Candidate) {
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if a.Load > b.Load || (a.Load == b.Load && a.RootDir() <= b.RootDir()) {
				break
			}
			cands[j-1], cands[j] = b, a
		}
	}
}

// fragSplit converts the candidate into a partition entry and splits
// its directory fragment repeatedly until one side's estimated
// migration index is close to amount, returning that side. Each half's
// index is estimated from the child directories and files it covers
// (their own indices plus their unvisited share), so a hash slice of a
// scan region carries a representative share of both the live front
// and the not-yet-visited namespace.
func (s *Selector) fragSplit(ctx *selCtx, c balancer.Candidate, amount float64) (balancer.Candidate, bool) {
	part := ctx.part
	tree := part.Tree()

	key := c.Key
	if !c.IsEntry {
		if c.Dir == nil || len(part.EntriesAt(c.Dir.Ino)) > 0 {
			return balancer.Candidate{}, false
		}
		key = part.Carve(c.Dir).Key
	}
	load := c.Load
	dir := tree.Get(key.Dir)
	if dir == nil {
		return balancer.Candidate{}, false
	}

	for i := 0; i < s.MaxFragSplits && load > amount*(1+s.Tolerance); i++ {
		if len(dir.ChildrenInFrag(key.Frag)) < 2 {
			break
		}
		left, right, ok := part.SplitEntry(key)
		if !ok {
			break
		}
		ll := ctx.keyLoad(left.Key)
		lr := ctx.keyLoad(right.Key)
		if ll+lr > 0 {
			// Re-apportion the parent's estimate by the halves' relative
			// indices (absolute re-evaluation loses the parent context).
			scale := load / (ll + lr)
			ll *= scale
			lr *= scale
		} else {
			ll, lr = load/2, load/2
		}
		if absF(ll-amount) <= absF(lr-amount) {
			key, load = left.Key, ll
		} else {
			key, load = right.Key, lr
		}
	}
	return balancer.Candidate{Key: key, IsEntry: true, Load: load}, true
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
