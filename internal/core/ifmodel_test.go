package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIFRange(t *testing.T) {
	m := IFModel{}
	f := func(raw []uint16, capRaw uint16) bool {
		loads := make([]float64, len(raw))
		for i, v := range raw {
			loads[i] = float64(v)
		}
		capacity := float64(capRaw) + 1
		r := m.Compute(loads, capacity)
		return r.IF >= 0 && r.IF <= 1+1e-9 && r.U >= 0 && r.U <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIFFullyImbalancedAtCapacity(t *testing.T) {
	// One MDS at full capacity, others idle: the worst case, IF ~ 1.
	r := IFModel{}.Compute([]float64{2000, 0, 0, 0, 0}, 2000)
	if r.IF < 0.95 {
		t.Fatalf("worst-case IF = %v, want ~1", r.IF)
	}
	if math.Abs(r.NormCoV-1) > 1e-9 {
		t.Fatalf("normalized CoV = %v, want 1", r.NormCoV)
	}
}

func TestIFBenignImbalanceTolerated(t *testing.T) {
	// Same skew shape but everything lightly loaded: the urgency term
	// must suppress IF (the paper's benign-imbalance case).
	light := IFModel{}.Compute([]float64{200, 0, 0, 0, 0}, 2000)
	heavy := IFModel{}.Compute([]float64{2000, 0, 0, 0, 0}, 2000)
	if light.NormCoV != heavy.NormCoV {
		t.Fatal("CoV should be identical for the same shape")
	}
	if light.IF > 0.1 {
		t.Fatalf("light-load IF = %v, want < 0.1 (benign)", light.IF)
	}
	if heavy.IF < 5*light.IF {
		t.Fatalf("urgency should separate harmful (%v) from benign (%v)", heavy.IF, light.IF)
	}
}

func TestIFBalancedIsZero(t *testing.T) {
	r := IFModel{}.Compute([]float64{1500, 1500, 1500, 1500}, 2000)
	if r.IF != 0 {
		t.Fatalf("balanced IF = %v", r.IF)
	}
}

func TestIFDegenerateInputs(t *testing.T) {
	m := IFModel{}
	if r := m.Compute(nil, 2000); r.IF != 0 {
		t.Fatal("empty loads")
	}
	if r := m.Compute([]float64{100}, 2000); r.IF != 0 {
		t.Fatal("single MDS")
	}
	if r := m.Compute([]float64{100, 0}, 0); r.IF != 0 {
		t.Fatal("zero capacity")
	}
	if r := m.Compute([]float64{0, 0, 0}, 2000); r.IF != 0 {
		t.Fatal("idle cluster")
	}
}

func TestIFUtilizationClamped(t *testing.T) {
	// Loads can transiently exceed the theoretical capacity (bursts);
	// utilization clamps at 1.
	r := IFModel{}.Compute([]float64{5000, 0}, 2000)
	if r.Utilization != 1 {
		t.Fatalf("utilization = %v, want 1", r.Utilization)
	}
}

func TestIFMonotoneInSkew(t *testing.T) {
	// Shifting load from the light MDS to the heavy one (total fixed)
	// must not decrease IF.
	prev := -1.0
	for d := 0.0; d <= 900; d += 100 {
		r := IFModel{}.Compute([]float64{1000 + d, 1000 - d, 1000, 1000}, 2000)
		if r.IF < prev-1e-9 {
			t.Fatalf("IF decreased with more skew at d=%v", d)
		}
		prev = r.IF
	}
}

func TestIFSmoothnessDefault(t *testing.T) {
	a := IFModel{}.Compute([]float64{1000, 0}, 2000)
	b := IFModel{S: DefaultSmoothness}.Compute([]float64{1000, 0}, 2000)
	if a.IF != b.IF {
		t.Fatal("zero smoothness must default to the paper's 0.2")
	}
}
