package core

import (
	"repro/internal/namespace"
	"repro/internal/stats"
)

// PlannerConfig parameterizes Algorithm 1.
type PlannerConfig struct {
	// L gates participation: an MDS joins the plan only when its
	// squared relative deviation (delta/avg)^2 exceeds L.
	L float64
	// Cap is the per-epoch ceiling on any MDS's export or import
	// amount (load units), modelling the bounded migration throughput
	// of one epoch.
	Cap float64
	// HistoryEpochs is how many recent epochs feed the linear
	// regression that predicts each MDS's next-epoch load (fld).
	HistoryEpochs int
	// DisableFutureLoad drops the importer-side fld test (ablation):
	// every below-average MDS imports its full gap.
	DisableFutureLoad bool
}

// Decision is one planned transfer: move Amount load units from the
// exporter to the importer.
type Decision struct {
	From   namespace.MDSID
	To     namespace.MDSID
	Amount float64
}

// Plan implements Algorithm 1 (role and migration amount
// determination). loads[i] is MDS i's current load (cld); histories[i]
// its per-epoch load history, used to predict the future load (fld).
// The returned decisions pair exporter demand with importer capacity,
// both capped by cfg.Cap.
func Plan(loads []float64, histories [][]float64, cfg PlannerConfig) []Decision {
	n := len(loads)
	if n < 2 {
		return nil
	}
	avg := stats.Mean(loads)
	if avg <= 0 {
		return nil
	}

	type export struct {
		id  namespace.MDSID
		eld float64
	}
	type imprt struct {
		id  namespace.MDSID
		ild float64
	}
	var exporters []export
	var importers []imprt

	for i := 0; i < n; i++ {
		delta := loads[i] - avg
		abs := delta
		if abs < 0 {
			abs = -abs
		}
		rel := abs / avg
		if rel*rel <= cfg.L {
			continue
		}
		if delta > 0 {
			exporters = append(exporters, export{namespace.MDSID(i), minF(cfg.Cap, abs)})
			continue
		}
		// Importer candidacy: predict the next epoch's load; if the
		// organic growth already fills the gap, importing would
		// overshoot (the paper's lag-aware importer test).
		if cfg.DisableFutureLoad {
			importers = append(importers, imprt{namespace.MDSID(i), minF(cfg.Cap, abs)})
			continue
		}
		fld := predictNext(histories, i, cfg.HistoryEpochs)
		growth := fld - loads[i]
		if growth < abs {
			ild := abs - growth
			if growth < 0 {
				// A shrinking MDS frees even more room, but never
				// beyond the cap.
				ild = abs
			}
			importers = append(importers, imprt{namespace.MDSID(i), minF(cfg.Cap, ild)})
		}
	}

	var plan []Decision
	for e := range exporters {
		for im := range importers {
			if exporters[e].eld <= 0 {
				break
			}
			if importers[im].ild <= 0 {
				continue
			}
			amount := minF(exporters[e].eld, importers[im].ild)
			plan = append(plan, Decision{
				From:   exporters[e].id,
				To:     importers[im].id,
				Amount: amount,
			})
			exporters[e].eld -= amount
			importers[im].ild -= amount
		}
	}
	return plan
}

func predictNext(histories [][]float64, i, k int) float64 {
	if i >= len(histories) || len(histories[i]) == 0 {
		return 0
	}
	h := histories[i]
	if k > 0 && len(h) > k {
		h = h[len(h)-k:]
	}
	return stats.FitSeries(h).PredictNext()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
