// Package core implements the paper's contribution: the Lunule
// metadata load balancer. It comprises the Imbalance Factor model
// (Equations 1-3), the role-and-amount planner (Algorithm 1), the
// workload-aware pattern analyzer (alpha/beta locality factors and the
// migration index of Equation 4), and the three-path subtree selector.
package core

import (
	"repro/internal/stats"
)

// DefaultSmoothness is the urgency smoothness knob S the paper uses.
const DefaultSmoothness = 0.2

// IFModel computes the cluster Imbalance Factor from per-MDS loads.
type IFModel struct {
	// S is the logistic smoothness knob in (0, 1); the paper sets 0.2.
	S float64
}

// IFResult breaks the Imbalance Factor into its components.
type IFResult struct {
	// IF is the Imbalance Factor in [0, 1] (Equation 3).
	IF float64
	// CoV is the raw Coefficient of Variation of the loads (Eq. 1).
	CoV float64
	// NormCoV is CoV normalized by its sqrt(n) upper bound.
	NormCoV float64
	// U is the urgency term (Equation 2).
	U float64
	// Utilization is u = l_max / C.
	Utilization float64
}

// Compute evaluates the model for the given per-MDS loads (ops/sec)
// and the theoretical single-MDS capacity C. A cluster with fewer than
// two MDSs, zero capacity, or zero load is perfectly balanced (IF 0).
func (m IFModel) Compute(loads []float64, capacity float64) IFResult {
	n := len(loads)
	if n < 2 || capacity <= 0 {
		return IFResult{}
	}
	s := m.S
	if s == 0 {
		s = DefaultSmoothness
	}
	cov := stats.CoV(loads)
	norm := cov / stats.MaxCoV(n)
	u := stats.Max(loads) / capacity
	if u > 1 {
		u = 1
	}
	urgency := stats.Logistic(u, s)
	return IFResult{
		IF:          norm * urgency,
		CoV:         cov,
		NormCoV:     norm,
		U:           urgency,
		Utilization: u,
	}
}
