package core

import (
	"repro/internal/balancer"
	"repro/internal/namespace"
	"repro/internal/obs"
)

// Config parameterizes the Lunule balancer.
type Config struct {
	// Threshold is the IF value above which re-balance triggers.
	Threshold float64
	// Smoothness is the urgency knob S (paper: 0.2).
	Smoothness float64
	// L gates per-MDS plan participation in Algorithm 1.
	L float64
	// CapFraction sizes Algorithm 1's per-epoch export/import ceiling
	// as a fraction of the single-MDS capacity C.
	CapFraction float64
	// HistoryEpochs feeds the importer-side future-load regression.
	HistoryEpochs int
	// Windows is the pattern analyzer's cutting-window depth N.
	Windows int
	// SiblingProb is the sibling-correlation probability mass.
	SiblingProb float64
	// Tolerance is the subtree selector's matching tolerance.
	Tolerance float64
	// CandidateLimit bounds candidate enumeration.
	CandidateLimit int
	// WorkloadAware toggles the workload-aware subtree selection; with
	// it off the policy is the paper's Lunule-Light variant, which
	// keeps the IF model and Algorithm 1 but selects subtrees by the
	// default heat ranking.
	WorkloadAware bool

	// Ablation switches (all false in the paper's system). They exist
	// so the contribution of each design choice can be measured:
	//
	// DisableUrgency replaces Equation 2's logistic with U = 1, so the
	// trigger fires on any dispersion regardless of absolute load (no
	// benign-imbalance tolerance).
	DisableUrgency bool
	// DisableSiblingCredit removes the sibling-correlation term from
	// l_s, so unvisited subtrees carry no anticipated load.
	DisableSiblingCredit bool
	// DisableImporterGate drops Algorithm 1's future-load (fld) test:
	// every below-average MDS imports its full gap.
	DisableImporterGate bool
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation.
func DefaultConfig() Config {
	return Config{
		Threshold:      0.10,
		Smoothness:     DefaultSmoothness,
		L:              0.05,
		CapFraction:    1.0,
		HistoryEpochs:  8,
		Windows:        5,
		SiblingProb:    0.5,
		Tolerance:      0.10,
		CandidateLimit: 128,
		WorkloadAware:  true,
	}
}

// Normalize returns cfg with every zero-valued field replaced by its
// DefaultConfig value. It is the explicit opt-in for the old "zero
// means unset" construction style; New itself takes the config
// verbatim, so a deliberate zero (Tolerance 0, Threshold 0,
// SiblingProb 0 — exactly what the ablation flags need to express)
// reaches the balancer unchanged.
func (c Config) Normalize() Config {
	def := DefaultConfig()
	if c.Threshold == 0 {
		c.Threshold = def.Threshold
	}
	if c.Smoothness == 0 {
		c.Smoothness = def.Smoothness
	}
	if c.L == 0 {
		c.L = def.L
	}
	if c.CapFraction == 0 {
		c.CapFraction = def.CapFraction
	}
	if c.HistoryEpochs == 0 {
		c.HistoryEpochs = def.HistoryEpochs
	}
	if c.Windows == 0 {
		c.Windows = def.Windows
	}
	if c.SiblingProb == 0 {
		c.SiblingProb = def.SiblingProb
	}
	if c.Tolerance == 0 {
		c.Tolerance = def.Tolerance
	}
	if c.CandidateLimit == 0 {
		c.CandidateLimit = def.CandidateLimit
	}
	return c
}

// Lunule is the paper's balancer: IF-model-driven triggering,
// Algorithm 1 role/amount planning, and workload-aware subtree
// selection.
type Lunule struct {
	cfg      Config
	selector *Selector
	bus      *obs.Bus

	// lastResult is the most recent IF evaluation, exposed for
	// experiments and debugging.
	lastResult IFResult
	// rebalances counts how many epochs actually triggered migration.
	rebalances int
}

// New creates a Lunule balancer from cfg taken verbatim: a zero field
// means zero, not "use the default". Start from DefaultConfig (as the
// experiments do) or call NewFromDefaults to get the paper's values
// for anything left unset.
func New(cfg Config) *Lunule {
	sel := NewSelector()
	sel.Tolerance = cfg.Tolerance
	sel.CandidateLimit = cfg.CandidateLimit
	return &Lunule{cfg: cfg, selector: sel}
}

// NewFromDefaults creates a Lunule balancer treating zero-valued cfg
// fields as unset and filling them from DefaultConfig — the historical
// behaviour of New, kept for callers that build configs sparsely.
func NewFromDefaults(cfg Config) *Lunule {
	return New(cfg.Normalize())
}

// SetBus implements obs.BusCarrier: trigger decisions (with their
// IF/U/CoV inputs), plan pairs, and subtree picks are traced through
// the given bus.
func (b *Lunule) SetBus(bus *obs.Bus) { b.bus = bus }

// NewDefault creates Lunule with the paper's defaults.
func NewDefault() *Lunule {
	cfg := DefaultConfig()
	return New(cfg)
}

// NewLight creates the Lunule-Light variant (workload-aware selection
// off).
func NewLight() *Lunule {
	cfg := DefaultConfig()
	cfg.WorkloadAware = false
	return New(cfg)
}

// Name implements balancer.Balancer.
func (b *Lunule) Name() string {
	if b.cfg.WorkloadAware {
		return "Lunule"
	}
	return "Lunule-Light"
}

// LastIF returns the most recent IF evaluation.
func (b *Lunule) LastIF() IFResult { return b.lastResult }

// Rebalances returns how many epochs triggered migration so far.
func (b *Lunule) Rebalances() int { return b.rebalances }

// housekeep tidies the partition once per epoch, as the CephFS MDS
// does between balancing rounds: fragment entries whose sibling half
// ended up on the same MDS merge back into their parent fragment, and
// whole-subtree entries whose enclosing subtree has the same authority
// are absorbed. Fewer entries mean shorter authority chains and less
// client-cache pressure; migrations in flight are left alone.
func (b *Lunule) housekeep(v balancer.View) {
	part := v.Partition()
	mig := v.Migrator()
	rootKey := namespace.FragKey{Dir: namespace.RootIno, Frag: namespace.WholeFrag}
	// Entries serving (or about to serve) read leases are deliberate
	// carve-outs owned by the lease controller; absorbing one back into
	// its parent would tear down its replication group each epoch.
	lv, _ := v.(balancer.LeaseView)
	// Entries hot from an admission-throttled tenant are likewise left
	// alone: merging or absorbing one would blend its heat into a
	// larger entry and erase the per-tenant attribution the fairness
	// skip (balancer.TenantView) keys on.
	tv, _ := v.(balancer.TenantView)
	for _, e := range part.Entries() {
		if e.Key == rootKey || mig.IsFrozen(e.Key) || mig.PendingFor(e.Auth)[e.Key] {
			continue
		}
		if lv != nil && lv.ReadLeased(e.Key) {
			continue
		}
		if tv != nil && tv.TenantThrottled(e.Key) {
			continue
		}
		if !v.Up(e.Auth) {
			// Orphaned entry awaiting failover takeover: leave it for
			// the recovery policy, do not merge/absorb around it.
			continue
		}
		if e.Key.Frag.IsWhole() {
			if enc, ok := part.EnclosingAuth(e.Key); ok && enc == e.Auth {
				part.Absorb(e.Key)
			}
			continue
		}
		sibKey := namespace.FragKey{Dir: e.Key.Dir, Frag: e.Key.Frag.Sibling()}
		if mig.IsFrozen(sibKey) {
			continue
		}
		if sib, ok := part.EntryAt(sibKey); ok && sib.Auth == e.Auth && !mig.PendingFor(sib.Auth)[sibKey] {
			part.MergeWithSibling(e.Key)
		}
	}
}

// Rebalance implements balancer.Balancer.
func (b *Lunule) Rebalance(v balancer.View) {
	b.housekeep(v)
	n := v.NumMDS()
	// The plan runs over importable ranks only: a down rank neither
	// reports an Imbalance State nor may be chosen as an endpoint, and
	// a draining rank is already being emptied by the elastic drain
	// pump — planning around it would re-import into a rank that is
	// leaving. The compact participant-index arrays are mapped back to
	// real ranks afterwards.
	live := balancer.ImportableRanks(v)
	if len(live) < 2 {
		v.Ledger().EpochLunule(n, 0, nil, 0)
		return
	}
	allLoads := balancer.Loads(v)
	allHistories := balancer.LoadHistories(v)
	loads := make([]float64, len(live))
	histories := make([][]float64, len(live))
	for i, id := range live {
		loads[i] = allLoads[id]
		histories[i] = allHistories[id]
	}
	b.lastResult = IFModel{S: b.cfg.Smoothness}.Compute(loads, v.Capacity())
	if b.cfg.DisableUrgency {
		// Ablation: raw normalized CoV, no benign-imbalance tolerance.
		b.lastResult.U = 1
		b.lastResult.IF = b.lastResult.NormCoV
	}
	fired := b.lastResult.IF >= b.cfg.Threshold
	if b.bus.Enabled(obs.EvTrigger) {
		b.bus.Emit(obs.Event{Tick: v.Tick(), Type: obs.EvTrigger, Fields: obs.F{
			"balancer": b.Name(), "if": b.lastResult.IF, "cov": b.lastResult.CoV,
			"norm_cov": b.lastResult.NormCoV, "u": b.lastResult.U,
			"threshold": b.cfg.Threshold, "fired": fired, "live": len(live),
		}})
	}

	if !fired {
		// Benign (or no) imbalance: report stats, do nothing.
		v.Ledger().EpochLunule(n, 0, nil, 0)
		return
	}

	plan := Plan(loads, histories, PlannerConfig{
		L:                 b.cfg.L,
		Cap:               b.cfg.CapFraction * v.Capacity(),
		HistoryEpochs:     b.cfg.HistoryEpochs,
		DisableFutureLoad: b.cfg.DisableImporterGate,
	})
	if len(plan) == 0 {
		v.Ledger().EpochLunule(n, 0, nil, 0)
		return
	}
	for i := range plan {
		plan[i].From = live[plan[i].From]
		plan[i].To = live[plan[i].To]
	}
	b.rebalances++
	if b.bus.Enabled(obs.EvPlan) {
		for _, d := range plan {
			b.bus.Emit(obs.Event{Tick: v.Tick(), Type: obs.EvPlan, Fields: obs.F{
				"from": int(d.From), "to": int(d.To), "amount": d.Amount,
			}})
		}
	}

	// Group decisions per exporter for the decision messages.
	perExporter := make(map[namespace.MDSID][]Decision)
	var exporterOrder []namespace.MDSID
	for _, d := range plan {
		if _, seen := perExporter[d.From]; !seen {
			exporterOrder = append(exporterOrder, d.From)
		}
		perExporter[d.From] = append(perExporter[d.From], d)
	}
	exporterRanks := make([]int, len(exporterOrder))
	maxPairs := 0
	for i, ex := range exporterOrder {
		exporterRanks[i] = int(ex)
		if len(perExporter[ex]) > maxPairs {
			maxPairs = len(perExporter[ex])
		}
	}
	v.Ledger().EpochLunule(n, 0, exporterRanks, maxPairs)

	an := &Analyzer{
		Windows:     b.cfg.Windows,
		SiblingProb: b.cfg.SiblingProb,
		EpochTicks:  v.EpochTicks(),
	}
	if b.cfg.DisableSiblingCredit {
		an.SiblingProb = 0
	}
	for _, ex := range exporterOrder {
		for _, d := range perExporter[ex] {
			b.execute(v, an, d)
		}
	}
}

func (b *Lunule) execute(v balancer.View, an *Analyzer, d Decision) {
	if b.cfg.WorkloadAware {
		for _, c := range b.selector.Select(v, an, d.From, d.Amount) {
			b.tracePick(v, c, d)
			balancer.SubmitCandidate(v, c, d.From, d.To)
		}
		return
	}
	// Lunule-Light: default (heat-ranked) subtree selection, still
	// bounded by the planned amount relative to the exporter's load.
	load := v.Server(d.From).CurrentLoad()
	if load <= 0 {
		return
	}
	for _, c := range balancer.HeatSelect(v, d.From, d.Amount/load, b.cfg.CandidateLimit) {
		b.tracePick(v, c, d)
		balancer.SubmitCandidate(v, c, d.From, d.To)
	}
}

// tracePick emits one selector pick: the subtree the policy chose to
// move for the given plan decision.
func (b *Lunule) tracePick(v balancer.View, c balancer.Candidate, d Decision) {
	if !b.bus.Enabled(obs.EvSelect) {
		return
	}
	f := obs.F{
		"from": int(d.From), "to": int(d.To),
		"dir": uint64(c.RootDir()), "load": c.Load, "entry": c.IsEntry,
	}
	if c.IsEntry {
		f["frag"] = c.Key.Frag.String()
	}
	b.bus.Emit(obs.Event{Tick: v.Tick(), Type: obs.EvSelect, Fields: f})
}
