package core

import (
	"fmt"
	"testing"

	"repro/internal/namespace"
	"repro/internal/trace"
)

// scanFixture builds /data with nDirs directories of filesPer files.
func scanFixture(t testing.TB, nDirs, filesPer int) (*namespace.Tree, *namespace.Partition, []*namespace.Inode) {
	t.Helper()
	tree := namespace.NewTree()
	data, err := tree.MkdirAll("/data")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []*namespace.Inode
	for d := 0; d < nDirs; d++ {
		dir, err := tree.Mkdir(data, fmt.Sprintf("d%03d", d))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < filesPer; f++ {
			if _, err := tree.Create(dir, fmt.Sprintf("f%03d", f), 1); err != nil {
				t.Fatal(err)
			}
		}
		dirs = append(dirs, dir)
	}
	return tree, namespace.NewPartition(tree, 0), dirs
}

func rootKey() namespace.FragKey {
	return namespace.FragKey{Dir: namespace.RootIno, Frag: namespace.WholeFrag}
}

func TestAnalyzerHotSetIsTemporal(t *testing.T) {
	tree, _, dirs := scanFixture(t, 2, 20)
	col := trace.NewCollector(5)
	an := NewAnalyzer(10)
	// Re-visit the same 10 files of d0 across several windows.
	hot := dirs[0].Children()[:10]
	for e := int64(0); e < 5; e++ {
		col.BeginEpoch(e)
		for _, f := range hot {
			col.Record(rootKey(), f, e)
			col.Record(rootKey(), f, e)
		}
	}
	loc := an.ForDir(col, 4, dirs[0])
	if loc.Alpha < 0.75 {
		t.Fatalf("hot-set alpha = %v, want ~1", loc.Alpha)
	}
	// The very first window necessarily contains first visits, so beta
	// does not reach exactly 0 within the history; it must stay small.
	if loc.Beta > 0.2 {
		t.Fatalf("hot-set beta = %v, want ~0", loc.Beta)
	}
	if loc.MIndex <= 0 {
		t.Fatal("hot subtree must have positive mIndex")
	}
	// mIndex should approximate the served rate: 20 visits/epoch over
	// 10-tick epochs = 2 ops/sec.
	if loc.MIndex < 1 || loc.MIndex > 3 {
		t.Fatalf("hot mIndex = %v, want ~2", loc.MIndex)
	}
	_ = tree
}

func TestAnalyzerScanIsSpatial(t *testing.T) {
	_, _, dirs := scanFixture(t, 2, 40)
	col := trace.NewCollector(5)
	an := NewAnalyzer(10)
	// Scan d0's files once, never revisiting.
	for i, f := range dirs[0].Children() {
		e := int64(i / 10)
		col.BeginEpoch(e)
		col.Record(rootKey(), f, e)
	}
	loc := an.ForDir(col, 3, dirs[0])
	if loc.Alpha > 0.1 {
		t.Fatalf("scan alpha = %v, want ~0", loc.Alpha)
	}
	if loc.Beta < 0.9 {
		t.Fatalf("scan beta = %v, want ~1", loc.Beta)
	}
	if loc.MIndex <= 0 {
		t.Fatal("scan front must have positive mIndex")
	}
}

func TestAnalyzerSiblingCreditFlowsToUnvisited(t *testing.T) {
	_, _, dirs := scanFixture(t, 3, 40)
	col := trace.NewCollector(5)
	an := NewAnalyzer(10)
	// Scan is inside d0; d1 and d2 are untouched siblings.
	col.BeginEpoch(0)
	for _, f := range dirs[0].Children() {
		col.Record(rootKey(), f, 0)
	}
	l1 := an.ForDir(col, 0, dirs[1])
	l2 := an.ForDir(col, 0, dirs[2])
	if l1.MIndex <= 0 || l2.MIndex <= 0 {
		t.Fatalf("untouched siblings of a scan must anticipate load: %v, %v", l1.MIndex, l2.MIndex)
	}
	if l1.Beta < 0.99 || l2.Beta < 0.99 {
		t.Fatal("untouched subtrees are purely spatial (beta=1)")
	}
	// Credit splits by unvisited volume: equal dirs get equal credit.
	if diff := l1.MIndex - l2.MIndex; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("equal unvisited siblings must get equal credit: %v vs %v", l1.MIndex, l2.MIndex)
	}
}

func TestAnalyzerDeadSubtreeHasNoFuture(t *testing.T) {
	_, _, dirs := scanFixture(t, 2, 30)
	col := trace.NewCollector(5)
	an := NewAnalyzer(10)
	// d0 fully scanned in early epochs, then traffic moves to d1.
	col.BeginEpoch(0)
	for _, f := range dirs[0].Children() {
		col.Record(rootKey(), f, 0)
	}
	for e := int64(1); e <= 6; e++ {
		col.BeginEpoch(e)
		for _, f := range dirs[1].Children()[:10] {
			col.Record(rootKey(), f, e)
		}
	}
	dead := an.ForDir(col, 6, dirs[0])
	live := an.ForDir(col, 6, dirs[1])
	if dead.MIndex > live.MIndex/5 {
		t.Fatalf("dead subtree mIndex %v should be far below live %v", dead.MIndex, live.MIndex)
	}
}

func TestAnalyzerCreateStreamIsSpatial(t *testing.T) {
	tree := namespace.NewTree()
	dir, _ := tree.MkdirAll("/md/client0")
	part := namespace.NewPartition(tree, 0)
	col := trace.NewCollector(5)
	an := NewAnalyzer(10)
	// Create-and-touch new files continuously (MDtest shape).
	n := 0
	for e := int64(0); e < 4; e++ {
		col.BeginEpoch(e)
		for i := 0; i < 50; i++ {
			f, err := tree.Create(dir, fmt.Sprintf("f%05d", n), 0)
			if err != nil {
				t.Fatal(err)
			}
			n++
			col.Record(rootKey(), f, e)
		}
	}
	loc := an.ForDir(col, 3, dir)
	if loc.Beta < 0.9 {
		t.Fatalf("create stream beta = %v, want ~1", loc.Beta)
	}
	// mIndex ~ create rate: 50/epoch over 10 ticks = 5 ops/sec.
	if loc.MIndex < 3 || loc.MIndex > 8 {
		t.Fatalf("create-stream mIndex = %v, want ~5", loc.MIndex)
	}
	_ = part
}

func TestAnalyzerForKeyFragCredit(t *testing.T) {
	_, part, dirs := scanFixture(t, 1, 200)
	col := trace.NewCollector(5)
	an := NewAnalyzer(10)
	// Visit a prefix of d0, leaving most of it unvisited.
	col.BeginEpoch(0)
	key := rootKey()
	for _, f := range dirs[0].Children()[:40] {
		col.Record(key, f, 0)
	}
	e := part.Carve(dirs[0])
	l, r, ok := part.SplitEntry(e.Key)
	if !ok {
		t.Fatal("split")
	}
	ll := an.ForKey(col, 0, part, l.Key)
	lr := an.ForKey(col, 0, part, r.Key)
	if ll.MIndex <= 0 && lr.MIndex <= 0 {
		t.Fatal("fragments of a partially-scanned dir must anticipate load")
	}
	// Both halves hold roughly half the unvisited inodes, so both get
	// comparable anticipated load.
	hi, lo := ll.MIndex, lr.MIndex
	if lo > hi {
		hi, lo = lo, hi
	}
	if lo <= 0 || hi/lo > 4 {
		t.Fatalf("frag credit too lopsided: %v vs %v", ll.MIndex, lr.MIndex)
	}
}

func TestAnalyzerScaleNormalization(t *testing.T) {
	_, _, dirs := scanFixture(t, 1, 40)
	col := trace.NewCollector(5)
	// Same traffic, different epoch lengths: per-second index halves
	// when the epoch doubles.
	for e := int64(0); e < 3; e++ {
		col.BeginEpoch(e)
		for _, f := range dirs[0].Children() {
			col.Record(rootKey(), f, e)
		}
	}
	a10 := NewAnalyzer(10).ForDir(col, 2, dirs[0])
	a20 := NewAnalyzer(20).ForDir(col, 2, dirs[0])
	if a10.MIndex <= a20.MIndex {
		t.Fatal("longer epochs must reduce the per-second index")
	}
}
