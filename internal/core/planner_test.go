package core

import (
	"testing"
	"testing/quick"

	"repro/internal/namespace"
)

func defaultPlanCfg() PlannerConfig {
	return PlannerConfig{L: 0.05, Cap: 1000, HistoryEpochs: 8}
}

func TestPlanSingleHotExporter(t *testing.T) {
	loads := []float64{2000, 100, 100, 100, 100}
	hist := make([][]float64, 5)
	for i, l := range loads {
		hist[i] = []float64{l, l}
	}
	plan := Plan(loads, hist, defaultPlanCfg())
	if len(plan) == 0 {
		t.Fatal("expected a migration plan")
	}
	totalOut := 0.0
	for _, d := range plan {
		if d.From != 0 {
			t.Fatalf("unexpected exporter %d", d.From)
		}
		if d.To == 0 {
			t.Fatal("exporter must not import from itself")
		}
		if d.Amount <= 0 {
			t.Fatal("non-positive amount")
		}
		totalOut += d.Amount
	}
	// Export demand is capped at Cap.
	if totalOut > 1000+1e-9 {
		t.Fatalf("total export %v exceeds Cap", totalOut)
	}
}

func TestPlanBalancedNoops(t *testing.T) {
	loads := []float64{500, 510, 495, 505}
	hist := make([][]float64, 4)
	for i, l := range loads {
		hist[i] = []float64{l}
	}
	if plan := Plan(loads, hist, defaultPlanCfg()); len(plan) != 0 {
		t.Fatalf("balanced cluster produced plan: %v", plan)
	}
}

func TestPlanLGateFiltersSmallDeviations(t *testing.T) {
	// 15% above average: (0.15)^2 = 0.0225 < L=0.05 -> no exporter.
	loads := []float64{1150, 1000, 1000, 1000, 850}
	hist := make([][]float64, 5)
	for i, l := range loads {
		hist[i] = []float64{l}
	}
	cfg := defaultPlanCfg()
	// avg = 1000; deviations 150/1000 = 0.15 -> squared 0.0225 < 0.05.
	if plan := Plan(loads, hist, cfg); len(plan) != 0 {
		t.Fatalf("sub-threshold deviations should not plan, got %v", plan)
	}
	cfg.L = 0.01
	if plan := Plan(loads, hist, cfg); len(plan) == 0 {
		t.Fatal("lower L should admit the deviations")
	}
}

func TestPlanImporterFutureLoadGate(t *testing.T) {
	// MDS 1 is light now but its history is rising steeply: its own
	// growth covers the gap, so it must not import.
	loads := []float64{2000, 400, 0}
	hist := [][]float64{
		{2000, 2000, 2000},
		{0, 100, 400}, // rising: fld ~ 650, growth 250... gap is 400 avg=800 -> delta=400, growth 250<400 -> imports a bit
		{0, 0, 0},     // flat: full importer
	}
	plan := Plan(loads, hist, defaultPlanCfg())
	var to1, to2 float64
	for _, d := range plan {
		switch d.To {
		case 1:
			to1 += d.Amount
		case 2:
			to2 += d.Amount
		}
	}
	if to2 <= 0 {
		t.Fatal("idle flat MDS must import")
	}
	if to1 >= to2 {
		t.Fatalf("rising MDS should import less than flat idle one (%v vs %v)", to1, to2)
	}
}

func TestPlanImporterFullyCoveredByGrowth(t *testing.T) {
	// The light MDS's predicted growth exceeds its gap entirely.
	loads := []float64{1200, 800}
	hist := [][]float64{
		{1200, 1200, 1200},
		{0, 400, 800}, // fld ~ 1200, growth 400 >= gap 200
	}
	if plan := Plan(loads, hist, defaultPlanCfg()); len(plan) != 0 {
		t.Fatalf("importer covered by organic growth should not import: %v", plan)
	}
}

func TestPlanConservationProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 || len(raw) > 16 {
			return true
		}
		loads := make([]float64, len(raw))
		hist := make([][]float64, len(raw))
		for i, v := range raw {
			loads[i] = float64(v)
			hist[i] = []float64{loads[i], loads[i]}
		}
		cfg := defaultPlanCfg()
		plan := Plan(loads, hist, cfg)
		exported := make(map[namespace.MDSID]float64)
		imported := make(map[namespace.MDSID]float64)
		for _, d := range plan {
			if d.Amount <= 0 || d.From == d.To {
				return false
			}
			exported[d.From] += d.Amount
			imported[d.To] += d.Amount
		}
		for id, v := range exported {
			if v > cfg.Cap+1e-6 {
				return false
			}
			if _, alsoImports := imported[id]; alsoImports {
				return false // a rank cannot be exporter and importer at once
			}
		}
		for _, v := range imported {
			if v > cfg.Cap+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanDegenerate(t *testing.T) {
	if Plan(nil, nil, defaultPlanCfg()) != nil {
		t.Fatal("nil loads")
	}
	if Plan([]float64{100}, [][]float64{{100}}, defaultPlanCfg()) != nil {
		t.Fatal("single MDS")
	}
	if Plan([]float64{0, 0}, [][]float64{{0}, {0}}, defaultPlanCfg()) != nil {
		t.Fatal("idle cluster")
	}
}
