package core

import (
	"fmt"
	"testing"

	"repro/internal/balancer"
	"repro/internal/namespace"
	"repro/internal/simtest"
)

// buildView makes a 3-MDS view over /data with nDirs x filesPer files,
// all governed by MDS 0.
func buildView(t testing.TB, nDirs, filesPer int) (*simtest.View, []*namespace.Inode) {
	t.Helper()
	tree := namespace.NewTree()
	data, err := tree.MkdirAll("/data")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []*namespace.Inode
	for d := 0; d < nDirs; d++ {
		dir, err := tree.Mkdir(data, fmt.Sprintf("d%03d", d))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < filesPer; f++ {
			if _, err := tree.Create(dir, fmt.Sprintf("f%04d", f), 1); err != nil {
				t.Fatal(err)
			}
		}
		dirs = append(dirs, dir)
	}
	return simtest.New(tree, 3), dirs
}

func analyzerFor(v *simtest.View) *Analyzer { return NewAnalyzer(v.EpochTicksV) }

func totalLoad(cands []balancer.Candidate) float64 {
	s := 0.0
	for _, c := range cands {
		s += c.Load
	}
	return s
}

func TestSelectorPicksHotDirsToMatchAmount(t *testing.T) {
	v, dirs := buildView(t, 10, 30)
	// Give each dir a steady re-visit load of ~3 ops/sec.
	for e := int64(0); e < 3; e++ {
		for _, d := range dirs {
			for _, f := range d.Children() {
				v.ServeN(f, 1, e)
			}
		}
		v.EndEpoch()
	}
	sel := NewSelector()
	// Total visible load ~30 ops/sec over 10 dirs; ask for ~9 (3 dirs).
	picked := sel.Select(v, analyzerFor(v), 0, 9)
	if len(picked) == 0 {
		t.Fatal("no selection")
	}
	got := totalLoad(picked)
	if got < 5 || got > 13 {
		t.Fatalf("selected %v ops/sec for amount 9 (picks=%d)", got, len(picked))
	}
	for _, c := range picked {
		if c.IsEntry {
			t.Fatal("fresh namespace should yield carveable dir candidates")
		}
	}
}

func TestSelectorPathOneExactMatch(t *testing.T) {
	v, dirs := buildView(t, 5, 30)
	// dirs[0] is twice as hot as the rest; every dir is touched, so no
	// spatial credit muddies the indices.
	for e := int64(0); e < 3; e++ {
		for i, d := range dirs {
			per := 1
			if i == 0 {
				per = 2
			}
			for _, f := range d.Children() {
				v.ServeN(f, per, e)
			}
		}
		v.EndEpoch()
	}
	sel := NewSelector()
	// Ask for exactly dirs[0]'s share of the served load (2 of 6
	// parts): after the proportional conversion this equals dirs[0]'s
	// migration index, so path 1 must return it alone.
	served := v.Servers[0].CurrentLoad()
	picked := sel.Select(v, analyzerFor(v), 0, served*2/6)
	if len(picked) != 1 {
		t.Fatalf("want single-subtree match, got %d picks: %v", len(picked), picked)
	}
	if picked[0].RootDir() != dirs[0].Ino {
		t.Fatalf("picked subtree at dir %d, want %d", picked[0].RootDir(), dirs[0].Ino)
	}
}

func TestSelectorFragSplitsOversizedFlatDir(t *testing.T) {
	v, dirs := buildView(t, 1, 200)
	// One flat dir carries all the load.
	for e := int64(0); e < 3; e++ {
		for _, f := range dirs[0].Children() {
			v.ServeN(f, 1, e)
		}
		v.EndEpoch()
	}
	sel := NewSelector()
	// The dir's index is ~20 ops/sec; ask for half.
	picked := sel.Select(v, analyzerFor(v), 0, 10)
	if len(picked) != 1 {
		t.Fatalf("want one fragment, got %d", len(picked))
	}
	c := picked[0]
	if !c.IsEntry || c.Key.Frag.IsWhole() {
		t.Fatalf("want a fragment entry, got %+v", c)
	}
	if c.Key.Dir != dirs[0].Ino {
		t.Fatal("fragment of the wrong dir")
	}
	if c.Load < 5 || c.Load > 15 {
		t.Fatalf("fragment load estimate %v for amount 10", c.Load)
	}
	// The partition now contains split entries for the dir.
	if len(v.Part.EntriesAt(dirs[0].Ino)) < 2 {
		t.Fatal("dirfrag split must leave fragment entries")
	}
}

func TestSelectorKeepsDiffuseScanRegionWhole(t *testing.T) {
	// A scan-front region: most load anticipated across many unvisited
	// dirs. The selector must NOT shatter it into dust; it should
	// produce a fragment of the region instead.
	v, dirs := buildView(t, 50, 20)
	// Scan the first two dirs only (the front); 48 dirs untouched.
	for e := int64(0); e < 2; e++ {
		for _, d := range dirs[e*1 : e*1+2] {
			for _, f := range d.Children() {
				v.ServeN(f, 1, e)
			}
		}
		v.EndEpoch()
	}
	sel := NewSelector()
	an := analyzerFor(v)
	col := v.Servers[0].Collector()
	region, _ := v.Part.Tree().Lookup("/data")
	regionIdx := an.ForDir(col, v.EpochV, region).MIndex
	if regionIdx <= 0 {
		t.Fatal("scan region must have positive index")
	}
	picked := sel.Select(v, an, 0, regionIdx/2)
	if len(picked) == 0 {
		t.Fatal("no selection for scan region")
	}
	if len(picked) > sel.MaxPicks {
		t.Fatalf("selection shattered into %d pieces", len(picked))
	}
	got := totalLoad(picked)
	if got < regionIdx/4 || got > regionIdx {
		t.Fatalf("selected %v for amount %v", got, regionIdx/2)
	}
}

func TestSelectorSkipsPendingSubtrees(t *testing.T) {
	v, dirs := buildView(t, 4, 30)
	for e := int64(0); e < 2; e++ {
		for _, d := range dirs {
			for _, f := range d.Children() {
				v.ServeN(f, 1, e)
			}
		}
		v.EndEpoch()
	}
	// Mark dirs[0] as already being exported.
	e := v.Part.Carve(dirs[0])
	v.Mig.Submit(e.Key, 0, 1, 1, 0)
	sel := NewSelector()
	picked := sel.Select(v, analyzerFor(v), 0, 3)
	for _, c := range picked {
		if c.RootDir() == dirs[0].Ino {
			t.Fatal("selected a subtree already pending export")
		}
	}
}

func TestSelectorConcentratedRegionRefines(t *testing.T) {
	// When the load concentrates in child directories (a hot-set
	// workload), enumeration must descend to them so path 1/3 can pick
	// whole dirs rather than frag-splitting the parent region.
	v, dirs := buildView(t, 6, 20)
	for e := int64(0); e < 3; e++ {
		for _, d := range dirs {
			for _, f := range d.Children() {
				v.ServeN(f, 2, e)
			}
		}
		v.EndEpoch()
	}
	sel := NewSelector()
	served := v.Servers[0].CurrentLoad()
	picked := sel.Select(v, analyzerFor(v), 0, served/3)
	if len(picked) == 0 {
		t.Fatal("no selection")
	}
	for _, c := range picked {
		if c.IsEntry && !c.Key.Frag.IsWhole() {
			t.Fatalf("hot-set selection should take whole dirs, got fragment %v", c.Key)
		}
		// Every pick roots at one of the six leaf dirs, not /data.
		found := false
		for _, d := range dirs {
			if c.RootDir() == d.Ino {
				found = true
			}
		}
		if !found {
			t.Fatalf("pick rooted at %d is not a leaf dir", c.RootDir())
		}
	}
}

func TestSelectorDiffuseRegionFragSplits(t *testing.T) {
	// A region whose predicted load is spread over many untouched dirs
	// (a young scan) is NOT shattered into per-dir dust: the selection
	// is a hash fragment of the region.
	v, dirs := buildView(t, 60, 10)
	// Touch only the first dir: 59 siblings untouched, so the region's
	// index is dominated by anticipated (diffuse) load.
	for e := int64(0); e < 2; e++ {
		for _, f := range dirs[0].Children() {
			v.ServeN(f, 3, e)
		}
		v.EndEpoch()
	}
	sel := NewSelector()
	served := v.Servers[0].CurrentLoad()
	picked := sel.Select(v, analyzerFor(v), 0, served/2)
	if len(picked) == 0 {
		t.Fatal("no selection")
	}
	fragPicks := 0
	for _, c := range picked {
		if c.IsEntry && !c.Key.Frag.IsWhole() {
			fragPicks++
		}
	}
	if fragPicks == 0 && len(picked) > sel.MaxPicks/2 {
		t.Fatalf("diffuse region shattered into %d pieces without frag-splitting", len(picked))
	}
}

func TestSelectorZeroAmount(t *testing.T) {
	v, _ := buildView(t, 2, 5)
	sel := NewSelector()
	if picked := sel.Select(v, analyzerFor(v), 0, 0); picked != nil {
		t.Fatal("zero amount must select nothing")
	}
	if picked := sel.Select(v, analyzerFor(v), 0, -5); picked != nil {
		t.Fatal("negative amount must select nothing")
	}
}

func TestSelectorNoTrafficNoSelection(t *testing.T) {
	v, _ := buildView(t, 3, 10)
	sel := NewSelector()
	if picked := sel.Select(v, analyzerFor(v), 0, 100); len(picked) != 0 {
		t.Fatalf("idle namespace produced selection: %v", picked)
	}
}

func TestSelectorSaturationRescale(t *testing.T) {
	// When the exporter's served load is far below the requested
	// amount, the request is interpreted proportionally rather than
	// absolutely, so the selection must not exceed everything visible.
	v, dirs := buildView(t, 10, 20)
	for e := int64(0); e < 2; e++ {
		for _, d := range dirs {
			for _, f := range d.Children() {
				v.ServeN(f, 1, e)
			}
		}
		v.EndEpoch()
	}
	sel := NewSelector()
	// Served load is ~20 ops/sec; ask for 10 (half): should pick about
	// half the dirs, not all of them.
	picked := sel.Select(v, analyzerFor(v), 0, 10)
	if len(picked) == 0 || len(picked) >= 10 {
		t.Fatalf("proportional selection picked %d of 10 dirs", len(picked))
	}
}
