package core

import (
	"testing"

	"repro/internal/namespace"
)

func TestHousekeepAbsorbsRedundantEntries(t *testing.T) {
	v, dirs := buildView(t, 4, 10)
	// Carve two dirs but leave them on their enclosing authority (0):
	// redundant entries a real MDS would absorb.
	v.Part.Carve(dirs[0])
	v.Part.Carve(dirs[1])
	// A third dir genuinely on another MDS must survive.
	e2 := v.Part.Carve(dirs[2])
	v.Part.SetAuth(e2.Key, 1)
	before := v.Part.NumEntries()

	lun := NewDefault()
	lun.Rebalance(v) // idle cluster: only housekeeping runs
	after := v.Part.NumEntries()
	if after != before-2 {
		t.Fatalf("entries %d -> %d, want two redundant entries absorbed", before, after)
	}
	if _, ok := v.Part.EntryAt(e2.Key); !ok {
		t.Fatal("foreign-authority entry must survive housekeeping")
	}
}

func TestHousekeepMergesSameAuthFragments(t *testing.T) {
	v, dirs := buildView(t, 2, 20)
	e := v.Part.Carve(dirs[0])
	v.Part.SetAuth(e.Key, 1)
	l, r, ok := v.Part.SplitEntry(e.Key)
	if !ok {
		t.Fatal("split")
	}
	// Both halves on MDS 1: housekeeping merges them back.
	_ = l
	_ = r
	lun := NewDefault()
	lun.Rebalance(v)
	es := v.Part.EntriesAt(dirs[0].Ino)
	if len(es) != 1 || !es[0].Key.Frag.IsWhole() {
		t.Fatalf("fragments not merged: %v", es)
	}
	if es[0].Auth != 1 {
		t.Fatal("merge changed authority")
	}
}

func TestHousekeepLeavesSplitAuthFragments(t *testing.T) {
	v, dirs := buildView(t, 2, 20)
	e := v.Part.Carve(dirs[0])
	l, r, _ := v.Part.SplitEntry(e.Key)
	v.Part.SetAuth(l.Key, 1)
	v.Part.SetAuth(r.Key, 2)
	lun := NewDefault()
	lun.Rebalance(v)
	if len(v.Part.EntriesAt(dirs[0].Ino)) != 2 {
		t.Fatal("differently-owned fragments must not merge")
	}
}

func TestHousekeepSkipsPendingExports(t *testing.T) {
	v, dirs := buildView(t, 2, 20)
	e := v.Part.Carve(dirs[0])
	// Redundant (auth == enclosing) but pending export: keep it.
	v.Mig.Submit(e.Key, 0, 1, 1, 0)
	lun := NewDefault()
	lun.Rebalance(v)
	if _, ok := v.Part.EntryAt(e.Key); !ok {
		t.Fatal("pending entry was absorbed out from under its export")
	}
	_ = namespace.WholeFrag
}
