package core

import (
	"testing"
)

func TestLunuleTriggersOnHarmfulSkew(t *testing.T) {
	v, dirs := buildView(t, 10, 20)
	// Saturate MDS 0 while the others idle: 200 files x 100 visits
	// per epoch = 2000 ops/sec = the full capacity C -> IF near 1.
	for e := int64(0); e < 3; e++ {
		for _, d := range dirs {
			for _, f := range d.Children() {
				v.ServeN(f, 100, e)
			}
		}
		v.EndEpoch()
	}
	lun := NewDefault()
	lun.Rebalance(v)
	if lun.LastIF().IF < 0.5 {
		t.Fatalf("IF = %v, want high for a fully skewed saturated cluster", lun.LastIF().IF)
	}
	if lun.Rebalances() != 1 {
		t.Fatalf("rebalances = %d, want 1", lun.Rebalances())
	}
	if v.Mig.QueuedTasks()+v.Mig.ActiveTasks() == 0 {
		t.Fatal("harmful skew must submit migrations")
	}
}

func TestLunuleToleratesBenignSkew(t *testing.T) {
	v, dirs := buildView(t, 10, 20)
	// Same skew shape, ~5% of capacity: benign.
	for e := int64(0); e < 3; e++ {
		for _, d := range dirs {
			for _, f := range d.Children()[:5] {
				v.ServeN(f, 1, e)
			}
		}
		v.EndEpoch()
	}
	lun := NewDefault()
	lun.Rebalance(v)
	if lun.LastIF().IF >= lun.cfg.Threshold {
		t.Fatalf("benign IF = %v, want below threshold %v", lun.LastIF().IF, lun.cfg.Threshold)
	}
	if lun.Rebalances() != 0 || v.Mig.QueuedTasks() != 0 {
		t.Fatal("benign skew must not migrate")
	}
	// Stats were still reported to the initiator.
	if v.Ledg.TotalBytes() == 0 {
		t.Fatal("imbalance-state messages must flow every epoch")
	}
}

func TestLunuleDisableUrgencyFiresOnBenign(t *testing.T) {
	build := func() (*Lunule, func()) {
		v, dirs := buildView(t, 10, 20)
		cfg := DefaultConfig()
		cfg.DisableUrgency = true
		lun := New(cfg)
		fire := func() {
			for e := int64(0); e < 3; e++ {
				for _, d := range dirs {
					for _, f := range d.Children()[:5] {
						v.ServeN(f, 1, e)
					}
				}
				v.EndEpoch()
			}
			lun.Rebalance(v)
		}
		return lun, fire
	}
	lun, fire := build()
	fire()
	if lun.LastIF().U != 1 {
		t.Fatalf("ablated urgency = %v, want 1", lun.LastIF().U)
	}
	if lun.Rebalances() == 0 {
		t.Fatal("without urgency the benign skew must trigger")
	}
}

func TestLunuleIdleClusterNoop(t *testing.T) {
	v, _ := buildView(t, 4, 10)
	v.EndEpoch()
	lun := NewDefault()
	lun.Rebalance(v)
	if v.Mig.QueuedTasks() != 0 || lun.Rebalances() != 0 {
		t.Fatal("idle cluster must be left alone")
	}
}

func TestLunuleLightUsesHeatSelection(t *testing.T) {
	v, dirs := buildView(t, 10, 20)
	for e := int64(0); e < 3; e++ {
		for _, d := range dirs {
			for _, f := range d.Children() {
				v.ServeN(f, 100, e)
			}
		}
		v.EndEpoch()
	}
	light := NewLight()
	if light.Name() != "Lunule-Light" {
		t.Fatal("name")
	}
	light.Rebalance(v)
	if v.Mig.QueuedTasks()+v.Mig.ActiveTasks() == 0 {
		t.Fatal("light variant must still migrate on harmful skew")
	}
}

func TestNewFromDefaultsFillsZeroFields(t *testing.T) {
	lun := NewFromDefaults(Config{WorkloadAware: true})
	def := DefaultConfig()
	if lun.cfg.Threshold != def.Threshold || lun.cfg.Smoothness != def.Smoothness ||
		lun.cfg.Windows != def.Windows || lun.cfg.CandidateLimit != def.CandidateLimit {
		t.Fatalf("zero config not filled: %+v", lun.cfg)
	}
}

func TestNormalizeKeepsExplicitValues(t *testing.T) {
	cfg := Config{Threshold: 0.42, Windows: 3}.Normalize()
	if cfg.Threshold != 0.42 || cfg.Windows != 3 {
		t.Fatalf("normalize overwrote explicit values: %+v", cfg)
	}
	def := DefaultConfig()
	if cfg.Smoothness != def.Smoothness || cfg.Tolerance != def.Tolerance {
		t.Fatalf("normalize left zero fields unfilled: %+v", cfg)
	}
}

// TestNewHonorsExplicitZero is the regression test for the old New,
// which treated zero-valued fields as unset: an ablation expressing
// Tolerance 0 (exact-match subtree selection) silently got the 10%
// default back. New now takes the config verbatim, so the zero must
// reach the selector.
func TestNewHonorsExplicitZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tolerance = 0
	cfg.Threshold = 0
	cfg.SiblingProb = 0
	lun := New(cfg)
	if lun.selector.Tolerance != 0 {
		t.Fatalf("explicit zero tolerance did not reach the selector: %v", lun.selector.Tolerance)
	}
	if lun.cfg.Threshold != 0 || lun.cfg.SiblingProb != 0 {
		t.Fatalf("explicit zeros replaced by defaults: %+v", lun.cfg)
	}
}
