package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleIFModel_Compute evaluates the Imbalance Factor of a cluster
// where one MDS at full capacity carries everything (harmful — IF near
// 1) and of the same skew at one tenth of the load (benign — the
// urgency term suppresses IF).
func ExampleIFModel_Compute() {
	m := core.IFModel{S: 0.2}
	harmful := m.Compute([]float64{2000, 0, 0, 0, 0}, 2000)
	benign := m.Compute([]float64{200, 0, 0, 0, 0}, 2000)
	fmt.Printf("harmful IF %.2f (urgency %.2f)\n", harmful.IF, harmful.U)
	fmt.Printf("benign  IF %.2f (urgency %.2f)\n", benign.IF, benign.U)
	// Output:
	// harmful IF 0.99 (urgency 0.99)
	// benign  IF 0.02 (urgency 0.02)
}

// ExamplePlan shows Algorithm 1 pairing one overloaded exporter with
// the idle importers.
func ExamplePlan() {
	loads := []float64{1800, 100, 100}
	histories := [][]float64{{1800, 1800}, {100, 100}, {100, 100}}
	plan := core.Plan(loads, histories, core.PlannerConfig{
		L:             0.05,
		Cap:           2000,
		HistoryEpochs: 8,
	})
	for _, d := range plan {
		fmt.Printf("move %.0f ops/s from MDS-%d to MDS-%d\n", d.Amount, d.From, d.To)
	}
	// Output:
	// move 567 ops/s from MDS-0 to MDS-1
	// move 567 ops/s from MDS-0 to MDS-2
}
