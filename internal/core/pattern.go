package core

import (
	"repro/internal/namespace"
	"repro/internal/trace"
)

// Analyzer is the workload-aware pattern analyzer: it turns a subtree's
// recent cutting-window counters into the temporal/spatial locality
// factors and the migration index of Equation 4,
//
//	mIndex = alpha*l_t + beta*l_s.
//
// alpha is the recurrent-visit ratio of the recent windows (how much of
// the traffic re-visits known inodes), l_t the recent visit volume.
// beta is the unvisited-inode ratio of the subtree (how much of it has
// never been touched), and l_s the first-visit activity including the
// sibling-correlation credit: first visits in one subtree predict
// visits to its yet-untouched siblings, which is how scan fronts are
// projected forward. The sibling credit is applied as its expectation
// (deterministically) rather than by coin flips, which keeps runs
// reproducible and equals the paper's probabilistic rule in mean.
type Analyzer struct {
	// Windows is N, the number of recent cutting windows consulted.
	Windows int
	// SiblingProb is the probability mass of the sibling-correlation
	// rule (the paper's "certain probability").
	SiblingProb float64
	// EpochTicks converts window counters into per-second load units.
	EpochTicks int
}

// NewAnalyzer returns an analyzer with the defaults used throughout the
// evaluation.
func NewAnalyzer(epochTicks int) *Analyzer {
	return &Analyzer{Windows: 5, SiblingProb: 0.5, EpochTicks: epochTicks}
}

// Locality is the analyzed state of one subtree.
type Locality struct {
	// Alpha is the temporal-locality impact factor in [0, 1].
	Alpha float64
	// Beta is the spatial-locality impact factor in [0, 1].
	Beta float64
	// Lt is the predicted temporally-driven load (ops/sec).
	Lt float64
	// Ls is the predicted spatially-driven load (ops/sec).
	Ls float64
	// MIndex is Equation 4's migration index (ops/sec units).
	MIndex float64
}

func (a *Analyzer) windowsUsed(epoch int64) float64 {
	n := int64(a.Windows)
	if epoch+1 < n {
		n = epoch + 1
	}
	if n < 1 {
		n = 1
	}
	return float64(n)
}

// scale converts an N-window counter into ops/sec.
func (a *Analyzer) scale(epoch int64) float64 {
	t := a.windowsUsed(epoch) * float64(a.EpochTicks)
	if t <= 0 {
		return 1
	}
	return 1 / t
}

// locality combines a subtree's window counters with its
// sibling-correlation credit (expressed in raw window-counter units).
//
// beta follows the paper's definition — the ratio of accesses to
// never-before-visited inodes over all visits in the recent windows —
// extended so that a subtree known only through sibling credit (an
// untouched subtree next in a scan's path) counts that credit as
// anticipated first-visit traffic: beta = (first + credit) / (visits +
// credit). A pure scan or create stream gives beta ~ 1; a stable hot
// set gives beta ~ 0.
func (a *Analyzer) locality(c trace.Counters, credit float64, epoch int64) Locality {
	var loc Locality
	if c.Distinct > 0 {
		loc.Alpha = float64(c.Recurrent) / float64(c.Distinct)
	}
	first := float64(c.FirstVisits+c.SiblingCredits) + credit
	den := float64(c.Visits) + credit
	if den > 0 {
		loc.Beta = first / den
		if loc.Beta > 1 {
			loc.Beta = 1
		}
	}
	s := a.scale(epoch)
	loc.Lt = float64(c.Visits) * s
	loc.Ls = first * s
	loc.MIndex = loc.Alpha*loc.Lt + loc.Beta*loc.Ls
	return loc
}

// siblingCredit computes the sibling-correlation l_s credit for the
// region rooted at directory d (in raw window-counter units). First
// visits inside d's parent region predict first visits to d's own
// still-unvisited inodes: a scan sweeping the parent will eventually
// cover every sibling, so d anticipates the parent's first-visit
// volume in proportion to its share of the parent's unvisited inodes,
// damped by the sibling-correlation probability. This is §3.3's
// sibling rule expressed as its expectation over where the remaining
// scan lands, which is what lets the selector ship not-yet-visited
// namespace ahead of a scan front.
func (a *Analyzer) siblingCredit(col *trace.Collector, epoch int64, d *namespace.Inode) float64 {
	p := d.Parent
	if p == nil {
		return 0
	}
	uSelf, _ := d.UnvisitedBelow()
	if uSelf == 0 {
		return 0
	}
	uParent, _ := p.UnvisitedBelow()
	if uParent <= 0 {
		return 0
	}
	fv := col.RecentDir(p.Ino, epoch, a.Windows).FirstVisits
	return a.SiblingProb * float64(fv) * float64(uSelf) / float64(uParent)
}

// ForDir analyzes the region rooted at directory d as observed by the
// given collector (the exporter's).
func (a *Analyzer) ForDir(col *trace.Collector, epoch int64, d *namespace.Inode) Locality {
	c := col.RecentDir(d.Ino, epoch, a.Windows)
	return a.locality(c, a.siblingCredit(col, epoch, d), epoch)
}

// ForKey analyzes an existing subtree entry as observed by the given
// collector.
func (a *Analyzer) ForKey(col *trace.Collector, epoch int64, part *namespace.Partition, key namespace.FragKey) Locality {
	c := col.RecentKey(key, epoch, a.Windows)
	credit := 0.0
	dir := part.Tree().Get(key.Dir)
	if dir != nil {
		if key.Frag.IsWhole() {
			credit = a.siblingCredit(col, epoch, dir)
		} else {
			// A fragment anticipates its directory's first-visit
			// volume in proportion to its unvisited share.
			uFrag, _ := part.UnvisitedIn(key)
			uDir, _ := dir.UnvisitedBelow()
			if uFrag > 0 && uDir > 0 {
				fv := col.RecentDir(dir.Ino, epoch, a.Windows).FirstVisits
				credit = a.SiblingProb * float64(fv) * float64(uFrag) / float64(uDir)
			}
		}
	}
	return a.locality(c, credit, epoch)
}
