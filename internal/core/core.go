package core
