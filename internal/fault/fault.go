// Package fault provides deterministic fault schedules for the
// simulated MDS cluster: scripted crash/recover events at fixed ticks,
// plus a seeded random MTBF mode that draws exponential failure and
// repair times per rank. Schedules are plain data — the cluster applies
// them through its event queue, so two runs with the same seed and the
// same schedule fail identically.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Kind is the type of a fault event.
type Kind int

// Fault event kinds.
const (
	// Crash takes the rank down at the event tick: it stops serving,
	// its in-flight exports abort, and its subtrees orphan until the
	// recovery window elapses.
	Crash Kind = iota
	// Recover brings the rank back up at the event tick with
	// invalidated heat/trace statistics and no subtrees.
	Recover
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// HottestRank is the wildcard rank in a crash event: the cluster
// substitutes the live rank with the highest current load at the event
// tick (the adversarial crash the failover experiment uses).
const HottestRank = -1

// Event is one scheduled fault.
type Event struct {
	Tick int64
	Rank int // MDS rank, or HottestRank for a crash of the hottest rank
	Kind Kind
	// Path, when non-empty on a Crash event, makes the fault
	// partition-scoped instead of rank-scoped: the cluster crashes
	// whichever rank is authoritative for the path at the event tick
	// (Rank is ignored). This targets a subtree regardless of where the
	// balancer has placed it — the adversarial fault a replicated
	// subtree must survive.
	Path string
}

// Schedule is an ordered list of fault events. The zero value is an
// empty schedule.
type Schedule struct {
	Events []Event
}

// Crash appends a crash of rank at tick and returns the schedule.
func (s *Schedule) Crash(tick int64, rank int) *Schedule {
	s.Events = append(s.Events, Event{Tick: tick, Rank: rank, Kind: Crash})
	return s
}

// CrashHottest appends a crash of the hottest live rank at tick.
func (s *Schedule) CrashHottest(tick int64) *Schedule {
	return s.Crash(tick, HottestRank)
}

// CrashPath appends a partition-scoped crash at tick: whichever rank
// is authoritative for the path when the event fires goes down.
func (s *Schedule) CrashPath(tick int64, path string) *Schedule {
	s.Events = append(s.Events, Event{Tick: tick, Rank: HottestRank, Kind: Crash, Path: path})
	return s
}

// Recover appends a recovery of rank at tick and returns the schedule.
func (s *Schedule) Recover(tick int64, rank int) *Schedule {
	s.Events = append(s.Events, Event{Tick: tick, Rank: rank, Kind: Recover})
	return s
}

// Empty reports whether the schedule has no events.
func (s *Schedule) Empty() bool { return len(s.Events) == 0 }

// Sort orders events by tick, preserving submission order within a
// tick (stable), so applying the schedule through a FIFO event queue
// is deterministic.
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].Tick < s.Events[j].Tick
	})
}

// Merge appends the other schedule's events and re-sorts.
func (s *Schedule) Merge(other Schedule) {
	s.Events = append(s.Events, other.Events...)
	s.Sort()
}

// Validate checks the schedule for the mistakes fault scripts actually
// make:
//
//   - negative ticks;
//   - ranks outside [0, ranks) — crash events may instead use
//     HottestRank or a Path, which resolve to a rank at fire time;
//   - a Path on anything but a crash (a recovery must name the rank
//     that is down, not a subtree that has long since moved);
//   - duplicate events: two events at the same tick against the same
//     target (same rank, both wildcards, or the same path) — the second
//     silently no-ops at runtime, which always means a typo'd script;
//   - a recovery with nothing to recover: a Recover for a rank with no
//     strictly-earlier Crash that could have taken it down. Wildcard
//     crashes (hottest or path-scoped) resolve their rank at fire time,
//     so any earlier wildcard makes a later recovery plausible.
func (s *Schedule) Validate(ranks int) error {
	type target struct {
		tick int64
		rank int
		path string
	}
	seen := make(map[target]bool, len(s.Events))
	for _, ev := range s.Events {
		if ev.Tick < 0 {
			return fmt.Errorf("fault: negative tick %d", ev.Tick)
		}
		if ev.Path != "" && ev.Kind != Crash {
			return fmt.Errorf("fault: %s at tick %d names path %q (paths are only valid for crashes)",
				ev.Kind, ev.Tick, ev.Path)
		}
		wildcard := ev.Kind == Crash && (ev.Path != "" || ev.Rank == HottestRank)
		if !wildcard && (ev.Rank < 0 || ev.Rank >= ranks) {
			return fmt.Errorf("fault: %s rank %d out of range [0,%d)", ev.Kind, ev.Rank, ranks)
		}
		t := target{tick: ev.Tick, rank: ev.Rank, path: ev.Path}
		if seen[t] {
			if ev.Path != "" {
				return fmt.Errorf("fault: duplicate events at tick %d for path %q", ev.Tick, ev.Path)
			}
			return fmt.Errorf("fault: duplicate events at tick %d for rank %d", ev.Tick, ev.Rank)
		}
		seen[t] = true
	}
	// Order-sensitive pass: recoveries need an earlier crash. Work on a
	// sorted copy so validation does not depend on submission order.
	sorted := append([]Event(nil), s.Events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Tick < sorted[j].Tick })
	crashed := make(map[int]bool, ranks)
	wildcardAt := int64(-1)
	for _, ev := range sorted {
		switch {
		case ev.Kind == Crash && (ev.Path != "" || ev.Rank == HottestRank):
			if wildcardAt < 0 {
				wildcardAt = ev.Tick
			}
		case ev.Kind == Crash:
			crashed[ev.Rank] = true
		case ev.Kind == Recover:
			if !crashed[ev.Rank] && (wildcardAt < 0 || wildcardAt >= ev.Tick) {
				return fmt.Errorf("fault: recover of rank %d at tick %d before any crash that could take it down",
					ev.Rank, ev.Tick)
			}
		}
	}
	return nil
}

// ParseSpecs parses a comma-separated list of "tick:rank" specs into
// events of the given kind, e.g. "100:1,400:0". For crash events the
// rank may be "hot", selecting the hottest live rank at the crash
// tick, or a "/path", crashing whichever rank is authoritative for the
// path at the crash tick (partition-scoped fault injection).
func ParseSpecs(spec string, kind Kind) (Schedule, error) {
	var s Schedule
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		fields := strings.SplitN(part, ":", 2)
		if len(fields) != 2 {
			return Schedule{}, fmt.Errorf("fault: bad %s spec %q (want tick:rank)", kind, part)
		}
		tick, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || tick < 0 {
			return Schedule{}, fmt.Errorf("fault: bad tick in %s spec %q", kind, part)
		}
		var rank int
		if fields[1] == "hot" || strings.HasPrefix(fields[1], "/") {
			if kind != Crash {
				return Schedule{}, fmt.Errorf("fault: %q only valid for crash specs", part)
			}
			if strings.HasPrefix(fields[1], "/") {
				s.Events = append(s.Events, Event{Tick: tick, Rank: HottestRank, Kind: Crash, Path: fields[1]})
				continue
			}
			rank = HottestRank
		} else {
			rank, err = strconv.Atoi(fields[1])
			if err != nil || rank < 0 {
				return Schedule{}, fmt.Errorf("fault: bad rank in %s spec %q", kind, part)
			}
		}
		s.Events = append(s.Events, Event{Tick: tick, Rank: rank, Kind: kind})
	}
	s.Sort()
	return s, nil
}

// MTBFConfig parameterizes the random failure generator.
type MTBFConfig struct {
	// Ranks is the number of MDS ranks that can fail.
	Ranks int
	// MTBF is the mean time between failures per rank, in ticks.
	MTBF float64
	// MTTR is the mean time to repair per failure, in ticks
	// (default: MTBF/10, at least 1).
	MTTR float64
	// Horizon bounds event generation: no event is scheduled at or
	// after this tick.
	Horizon int64
	// MaxConcurrent bounds how many ranks may be down at once; 0 means
	// ranks-1 (always keep one survivor).
	MaxConcurrent int
}

// MTBF draws a deterministic crash/recover schedule from the source:
// for each rank, alternating exponential up-times (mean MTBF) and
// down-times (mean MTTR) until the horizon. Crashes that would exceed
// MaxConcurrent simultaneous failures are skipped, so the cluster
// always keeps at least one survivor to take over orphaned subtrees.
func MTBF(cfg MTBFConfig, src *rng.Source) Schedule {
	var s Schedule
	if cfg.Ranks <= 0 || cfg.MTBF <= 0 || cfg.Horizon <= 0 {
		return s
	}
	mttr := cfg.MTTR
	if mttr <= 0 {
		mttr = cfg.MTBF / 10
	}
	if mttr < 1 {
		mttr = 1
	}
	maxDown := cfg.MaxConcurrent
	if maxDown <= 0 || maxDown >= cfg.Ranks {
		maxDown = cfg.Ranks - 1
	}
	if maxDown < 1 {
		return s
	}

	// Draw each rank's alternating up/down intervals.
	type span struct {
		crash, recover int64
		rank           int
	}
	var spans []span
	for rank := 0; rank < cfg.Ranks; rank++ {
		rsrc := src.Fork(uint64(rank) + 1)
		t := int64(0)
		for {
			up := expDraw(rsrc, cfg.MTBF)
			crash := t + up
			if crash >= cfg.Horizon {
				break
			}
			down := expDraw(rsrc, mttr)
			rec := crash + down
			if rec >= cfg.Horizon {
				rec = cfg.Horizon - 1
			}
			if rec > crash {
				spans = append(spans, span{crash: crash, recover: rec, rank: rank})
			}
			t = rec
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].crash != spans[j].crash {
			return spans[i].crash < spans[j].crash
		}
		return spans[i].rank < spans[j].rank
	})

	// Admit spans in crash order, dropping those that would exceed the
	// concurrent-failure bound.
	type outage struct{ until int64 }
	var downs []outage
	for _, sp := range spans {
		kept := downs[:0]
		for _, d := range downs {
			if d.until > sp.crash {
				kept = append(kept, d)
			}
		}
		downs = kept
		if len(downs) >= maxDown {
			continue
		}
		downs = append(downs, outage{until: sp.recover})
		s.Crash(sp.crash, sp.rank)
		s.Recover(sp.recover, sp.rank)
	}
	s.Sort()
	return s
}

// expDraw returns an exponential variate with the given mean, rounded
// up to at least one tick.
func expDraw(src *rng.Source, mean float64) int64 {
	u := src.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := -mean * math.Log(1-u)
	if v < 1 {
		v = 1
	}
	if v > math.MaxInt32 {
		v = math.MaxInt32
	}
	return int64(v)
}
