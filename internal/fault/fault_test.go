package fault

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

func TestParseSpecs(t *testing.T) {
	s, err := ParseSpecs("400:0, 100:1", Crash)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Tick: 100, Rank: 1, Kind: Crash},
		{Tick: 400, Rank: 0, Kind: Crash},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("events = %+v, want %+v (sorted by tick)", s.Events, want)
	}
	if err := s.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestParseSpecsHottest(t *testing.T) {
	s, err := ParseSpecs("250:hot", Crash)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 || s.Events[0].Rank != HottestRank {
		t.Fatalf("events = %+v, want one HottestRank crash", s.Events)
	}
	// "hot" validates against any cluster size for crashes ...
	if err := s.Validate(1); err != nil {
		t.Fatal(err)
	}
	// ... but is rejected for recoveries (there is no hottest-down rank).
	if _, err := ParseSpecs("250:hot", Recover); err == nil {
		t.Fatal("recover spec 'hot' must be rejected")
	}
}

func TestParseSpecsEmpty(t *testing.T) {
	s, err := ParseSpecs("  ", Crash)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Fatal("blank spec must parse to an empty schedule")
	}
}

func TestParseSpecsErrors(t *testing.T) {
	for _, spec := range []string{"100", "x:1", "100:x", "-5:1", "100:-2", "100:1:2extra,"} {
		if _, err := ParseSpecs(spec, Crash); err == nil {
			t.Errorf("ParseSpecs(%q) = nil error, want error", spec)
		}
	}
}

func TestValidateRange(t *testing.T) {
	var s Schedule
	s.Crash(10, 5)
	if err := s.Validate(5); err == nil {
		t.Fatal("rank 5 in a 5-rank cluster must be rejected")
	}
	if err := s.Validate(6); err != nil {
		t.Fatal(err)
	}
	var neg Schedule
	neg.Recover(-1, 0)
	if err := neg.Validate(6); err == nil {
		t.Fatal("negative tick must be rejected")
	}
}

// TestValidateDuplicatesAndOrdering is the table test for the two
// script mistakes Validate rejects beyond range errors: duplicate
// same-tick same-target events, and recoveries with no earlier crash
// that could have taken the rank down.
func TestValidateDuplicatesAndOrdering(t *testing.T) {
	cases := []struct {
		name  string
		build func() Schedule
		ok    bool
	}{
		{"duplicate crash same tick same rank", func() Schedule {
			var s Schedule
			s.Crash(10, 1).Crash(10, 1)
			return s
		}, false},
		{"crash and recover same tick same rank", func() Schedule {
			var s Schedule
			s.Crash(10, 1).Recover(10, 1)
			return s
		}, false},
		{"duplicate hottest crash same tick", func() Schedule {
			var s Schedule
			s.CrashHottest(10).CrashHottest(10)
			return s
		}, false},
		{"duplicate path crash same tick", func() Schedule {
			var s Schedule
			s.CrashPath(10, "/a").CrashPath(10, "/a")
			return s
		}, false},
		{"same tick different ranks", func() Schedule {
			var s Schedule
			s.Crash(10, 1).Crash(10, 2)
			return s
		}, true},
		{"same tick hottest plus concrete", func() Schedule {
			var s Schedule
			s.CrashHottest(10).Crash(10, 2)
			return s
		}, true},
		{"same tick different paths", func() Schedule {
			var s Schedule
			s.CrashPath(10, "/a").CrashPath(10, "/b")
			return s
		}, true},
		{"same target different ticks", func() Schedule {
			var s Schedule
			s.Crash(10, 1).Recover(20, 1).Crash(30, 1)
			return s
		}, true},
		{"recover before any crash", func() Schedule {
			var s Schedule
			s.Recover(10, 1)
			return s
		}, false},
		{"recover before its crash", func() Schedule {
			var s Schedule
			s.Crash(50, 1).Recover(10, 1)
			return s
		}, false},
		{"recover of the wrong rank", func() Schedule {
			var s Schedule
			s.Crash(10, 1).Recover(20, 2)
			return s
		}, false},
		{"recover out of submission order still valid", func() Schedule {
			var s Schedule
			s.Recover(20, 1).Crash(10, 1) // validation sorts by tick
			return s
		}, true},
		{"wildcard crash authorizes later recover", func() Schedule {
			var s Schedule
			s.CrashHottest(10).Recover(20, 0)
			return s
		}, true},
		{"path crash authorizes later recover", func() Schedule {
			var s Schedule
			s.CrashPath(10, "/a").Recover(20, 2)
			return s
		}, true},
		{"wildcard crash at the recover tick is not earlier", func() Schedule {
			var s Schedule
			s.CrashHottest(10).Recover(10, 0)
			return s
		}, false},
		{"path on a recover", func() Schedule {
			var s Schedule
			s.Events = append(s.Events, Event{Tick: 10, Rank: 1, Kind: Recover, Path: "/a"})
			return s
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build()
			err := s.Validate(4)
			if tc.ok && err != nil {
				t.Fatalf("Validate = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate = nil, want error")
			}
		})
	}
}

func TestParseSpecsPath(t *testing.T) {
	s, err := ParseSpecs("100:/a/b, 250:hot", Crash)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Tick: 100, Rank: HottestRank, Kind: Crash, Path: "/a/b"},
		{Tick: 250, Rank: HottestRank, Kind: Crash},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Fatalf("events = %+v, want %+v", s.Events, want)
	}
	// Path crashes validate against any cluster size ...
	if err := s.Validate(1); err != nil {
		t.Fatal(err)
	}
	// ... but a path recover spec is rejected (recoveries name ranks).
	if _, err := ParseSpecs("100:/a/b", Recover); err == nil {
		t.Fatal("recover spec with a path must be rejected")
	}
}

func TestMergeSorts(t *testing.T) {
	var a Schedule
	a.Crash(300, 0)
	var b Schedule
	b.Recover(100, 1)
	a.Merge(b)
	if a.Events[0].Tick != 100 || a.Events[1].Tick != 300 {
		t.Fatalf("merged events not sorted: %+v", a.Events)
	}
}

func TestMTBFDeterministic(t *testing.T) {
	cfg := MTBFConfig{Ranks: 5, MTBF: 200, Horizon: 5000}
	a := MTBF(cfg, rng.New(7).Fork(99))
	b := MTBF(cfg, rng.New(7).Fork(99))
	if a.Empty() {
		t.Fatal("MTBF 200 over 5000 ticks should produce events")
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed must draw the same schedule")
	}
	c := MTBF(cfg, rng.New(8).Fork(99))
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds should draw different schedules")
	}
}

// TestMTBFKeepsOneSurvivor replays each generated schedule and asserts
// the concurrent-down invariant: at no point are all ranks down, so the
// cluster always has a survivor to take over orphaned subtrees.
func TestMTBFKeepsOneSurvivor(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := MTBFConfig{Ranks: 3, MTBF: 50, MTTR: 100, Horizon: 4000}
		s := MTBF(cfg, rng.New(seed))
		if err := s.Validate(cfg.Ranks); err != nil {
			t.Fatal(err)
		}
		down := map[int]bool{}
		for _, ev := range s.Events {
			switch ev.Kind {
			case Crash:
				if down[ev.Rank] {
					t.Fatalf("seed %d: rank %d crashed while down", seed, ev.Rank)
				}
				down[ev.Rank] = true
			case Recover:
				if !down[ev.Rank] {
					t.Fatalf("seed %d: rank %d recovered while up", seed, ev.Rank)
				}
				delete(down, ev.Rank)
			}
			if len(down) >= cfg.Ranks {
				t.Fatalf("seed %d: all %d ranks down simultaneously", seed, cfg.Ranks)
			}
			if ev.Tick < 0 || ev.Tick >= cfg.Horizon {
				t.Fatalf("seed %d: event tick %d outside horizon", seed, ev.Tick)
			}
		}
	}
}

func TestMTBFMaxConcurrent(t *testing.T) {
	cfg := MTBFConfig{Ranks: 6, MTBF: 30, MTTR: 200, Horizon: 4000, MaxConcurrent: 1}
	s := MTBF(cfg, rng.New(3))
	down := 0
	for _, ev := range s.Events {
		if ev.Kind == Crash {
			down++
		} else {
			down--
		}
		if down > 1 {
			t.Fatalf("more than MaxConcurrent=1 rank down at tick %d", ev.Tick)
		}
	}
}

func TestMTBFDegenerateConfigs(t *testing.T) {
	for _, cfg := range []MTBFConfig{
		{},
		{Ranks: 0, MTBF: 100, Horizon: 1000},
		{Ranks: 3, MTBF: 0, Horizon: 1000},
		{Ranks: 3, MTBF: 100, Horizon: 0},
		{Ranks: 1, MTBF: 100, Horizon: 1000}, // single rank: no failure leaves a survivor
	} {
		if s := MTBF(cfg, rng.New(1)); !s.Empty() {
			t.Errorf("MTBF(%+v) produced %d events, want none", cfg, len(s.Events))
		}
	}
}
