package osd

import "testing"

func TestPoolBudget(t *testing.T) {
	p := NewPool(2, 100)
	p.BeginTick()
	if p.Remaining() != 200 {
		t.Fatalf("budget = %d", p.Remaining())
	}
	if got := p.Consume(150); got != 150 {
		t.Fatalf("consume = %d", got)
	}
	if got := p.Consume(100); got != 50 {
		t.Fatalf("over-consume granted %d, want 50", got)
	}
	if got := p.Consume(10); got != 0 {
		t.Fatal("drained pool must grant 0")
	}
	p.BeginTick()
	if p.Remaining() != 200 {
		t.Fatal("budget must refill per tick")
	}
	if p.GrantedTotal() != 200 {
		t.Fatalf("granted total = %d", p.GrantedTotal())
	}
}

func TestPoolDegenerate(t *testing.T) {
	p := NewPool(0, 100)
	p.BeginTick()
	if p.Consume(10) != 0 {
		t.Fatal("empty pool grants nothing")
	}
	if p.Consume(-5) != 0 {
		t.Fatal("negative want")
	}
	neg := NewPool(-3, 100)
	if neg.OSDs() != 0 {
		t.Fatal("negative size clamps to 0")
	}
}

func TestPoolExpansion(t *testing.T) {
	p := NewPool(2, 100)
	p.AddOSDs(3)
	if p.OSDs() != 5 {
		t.Fatalf("osds = %d", p.OSDs())
	}
	p.AddOSDs(-1) // ignored
	if p.OSDs() != 5 {
		t.Fatal("negative growth must be ignored")
	}
	p.BeginTick()
	if p.Remaining() != 500 {
		t.Fatalf("expanded budget = %d", p.Remaining())
	}
}
