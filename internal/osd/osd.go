// Package osd models the data path for end-to-end experiments: a pool
// of object storage daemons with an aggregate per-tick bandwidth
// budget. Clients acquire bandwidth to move their file data; when the
// pool is drained, clients block — which is exactly the effect the
// paper's Figure 8 measures (the data path diluting metadata-side
// gains).
package osd

// Pool is a bandwidth-limited OSD cluster.
type Pool struct {
	osds       int
	perOSD     int64 // bytes per tick per OSD
	budget     int64 // remaining bytes this tick
	granted    int64 // total bytes granted overall
	grantTicks int64
}

// NewPool creates a pool of n OSDs, each contributing bandwidthPerTick
// bytes per tick.
func NewPool(n int, bandwidthPerTick int64) *Pool {
	if n < 0 {
		n = 0
	}
	return &Pool{osds: n, perOSD: bandwidthPerTick}
}

// OSDs returns the current pool size.
func (p *Pool) OSDs() int { return p.osds }

// AddOSDs grows the pool (cluster expansion experiments).
func (p *Pool) AddOSDs(k int) {
	if k > 0 {
		p.osds += k
	}
}

// BeginTick refills the tick's bandwidth budget.
func (p *Pool) BeginTick() {
	p.budget = int64(p.osds) * p.perOSD
	p.grantTicks++
}

// Consume grants up to want bytes from the remaining budget and
// returns the granted amount.
func (p *Pool) Consume(want int64) int64 {
	if want <= 0 || p.budget <= 0 {
		return 0
	}
	g := want
	if g > p.budget {
		g = p.budget
	}
	p.budget -= g
	p.granted += g
	return g
}

// Remaining returns the unconsumed budget of the current tick.
func (p *Pool) Remaining() int64 { return p.budget }

// GrantedTotal returns the total bytes moved through the pool.
func (p *Pool) GrantedTotal() int64 { return p.granted }
