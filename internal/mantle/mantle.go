// Package mantle implements a Mantle-style programmable balancing
// framework (Sevilla et al., SC '15) on top of the simulator. The
// paper's GreedySpill baseline is, in the original evaluation, a Lua
// policy injected through Mantle; here policies are Go closures with
// the same three-phase structure:
//
//	when(env)            -> should this MDS migrate now?
//	howMuch(env)         -> how much load should it shed?
//	where(env, amount)   -> how is that amount spread over the peers?
//
// The framework adapts any such policy to the cluster's Balancer
// interface, using the stock heat-ranked subtree selection to realize
// the chosen amounts — exactly the division of labour Mantle has in
// CephFS, and the reason the Lunule paper argues Mantle's API is not
// enough: the subtree-selection step stays fixed.
package mantle

import (
	"repro/internal/balancer"
	"repro/internal/namespace"
)

// Env is the metric environment a policy callback sees, patterned
// after Mantle's Lua environment: the evaluating MDS's rank, current
// per-MDS loads, short load histories, and cluster constants.
type Env struct {
	// WhoAmI is the rank of the MDS evaluating the policy.
	WhoAmI int
	// Loads holds each MDS's last-epoch load (ops/sec).
	Loads []float64
	// History holds each MDS's recent per-epoch loads (oldest first).
	History [][]float64
	// Total is the cluster-wide load.
	Total float64
	// Capacity is the single-MDS capacity C.
	Capacity float64
	// Epoch is the balancing round number.
	Epoch int64
}

// MyLoad returns the evaluating MDS's load.
func (e Env) MyLoad() float64 {
	if e.WhoAmI < 0 || e.WhoAmI >= len(e.Loads) {
		return 0
	}
	return e.Loads[e.WhoAmI]
}

// Mean returns the cluster's average load.
func (e Env) Mean() float64 {
	if len(e.Loads) == 0 {
		return 0
	}
	return e.Total / float64(len(e.Loads))
}

// Policy is a Mantle-style three-callback balancing policy.
type Policy struct {
	// PolicyName labels the policy in experiment output.
	PolicyName string
	// When decides whether the evaluating MDS migrates this epoch.
	When func(Env) bool
	// HowMuch returns the amount of load (ops/sec) to shed.
	HowMuch func(Env) float64
	// Where spreads the amount over the cluster: the returned slice
	// holds the load directed at each rank (the evaluator's own slot
	// is ignored). A nil return cancels the migration.
	Where func(Env, float64) []float64
}

// Balancer adapts a Policy to balancer.Balancer.
type Balancer struct {
	policy Policy
	// CandidateLimit bounds subtree candidate enumeration.
	CandidateLimit int
}

// NewBalancer wraps the policy. Policies with missing callbacks are
// treated conservatively (no migration).
func NewBalancer(p Policy) *Balancer {
	return &Balancer{policy: p, CandidateLimit: 64}
}

// Name implements balancer.Balancer.
func (b *Balancer) Name() string {
	if b.policy.PolicyName != "" {
		return "Mantle:" + b.policy.PolicyName
	}
	return "Mantle"
}

// Rebalance implements balancer.Balancer: it evaluates the policy on
// every MDS (as Mantle does decentralized) and converts each verdict
// into heat-selected subtree exports.
func (b *Balancer) Rebalance(v balancer.View) {
	n := v.NumMDS()
	v.Ledger().EpochVanilla(n) // Mantle rides the stock heartbeat exchange
	if b.policy.When == nil || b.policy.HowMuch == nil || b.policy.Where == nil {
		return
	}
	loads := balancer.Loads(v)
	histories := balancer.LoadHistories(v)
	total := 0.0
	for _, l := range loads {
		total += l
	}
	for i := 0; i < n; i++ {
		env := Env{
			WhoAmI:   i,
			Loads:    loads,
			History:  histories,
			Total:    total,
			Capacity: v.Capacity(),
			Epoch:    v.Epoch(),
		}
		if !b.policy.When(env) {
			continue
		}
		amount := b.policy.HowMuch(env)
		if amount <= 0 || loads[i] <= 0 {
			continue
		}
		targets := b.policy.Where(env, amount)
		if targets == nil {
			continue
		}
		b.export(v, namespace.MDSID(i), loads[i], targets)
	}
}

// export realizes one exporter's target vector with heat-ranked
// subtree selection, splitting the picks across the targets
// proportionally to their requested shares.
func (b *Balancer) export(v balancer.View, ex namespace.MDSID, load float64, targets []float64) {
	want := 0.0
	for j, t := range targets {
		if j == int(ex) || t <= 0 {
			continue
		}
		want += t
	}
	if want <= 0 {
		return
	}
	fraction := want / load
	picked := balancer.HeatSelect(v, ex, fraction, b.CandidateLimit)
	if len(picked) == 0 {
		return
	}
	// Assign picks round-robin over the positive targets, weighted by
	// repeating each target in proportion to its share.
	var order []namespace.MDSID
	for j, t := range targets {
		if j == int(ex) || t <= 0 {
			continue
		}
		reps := int(t/want*float64(len(picked)) + 0.5)
		if reps < 1 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			order = append(order, namespace.MDSID(j))
		}
	}
	if len(order) == 0 {
		return
	}
	for k, c := range picked {
		balancer.SubmitCandidate(v, c, ex, order[k%len(order)])
	}
}
