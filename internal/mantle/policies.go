package mantle

// Built-in policies, mirroring the case studies of the Mantle paper.

// GreedySpill is the GIGA+-derived policy: when my neighbour (next
// rank) is idle and I have load, send half of it there. This is the
// same policy the simulator's native GreedySpill baseline implements;
// having it here demonstrates (and tests) the framework's equivalence.
func GreedySpill() Policy {
	return Policy{
		PolicyName: "GreedySpill",
		When: func(e Env) bool {
			n := len(e.Loads)
			if n < 2 {
				return false
			}
			neighbour := (e.WhoAmI + 1) % n
			return e.MyLoad() > 1 && e.Loads[neighbour] <= 1
		},
		HowMuch: func(e Env) float64 { return e.MyLoad() / 2 },
		Where: func(e Env, amount float64) []float64 {
			out := make([]float64, len(e.Loads))
			out[(e.WhoAmI+1)%len(e.Loads)] = amount
			return out
		},
	}
}

// FillHeaviest sheds everything above the cluster mean to the single
// emptiest MDS (the "greedy water-filling" shape).
func FillHeaviest(slack float64) Policy {
	return Policy{
		PolicyName: "FillHeaviest",
		When: func(e Env) bool {
			return e.MyLoad() > e.Mean()*(1+slack)
		},
		HowMuch: func(e Env) float64 { return e.MyLoad() - e.Mean() },
		Where: func(e Env, amount float64) []float64 {
			out := make([]float64, len(e.Loads))
			min := 0
			for j, l := range e.Loads {
				if l < e.Loads[min] {
					min = j
				}
			}
			if min == e.WhoAmI {
				return nil
			}
			out[min] = amount
			return out
		},
	}
}

// SpreadEven sheds the above-mean excess across every below-mean MDS
// in proportion to its headroom (the textbook proportional policy).
func SpreadEven(slack float64) Policy {
	return Policy{
		PolicyName: "SpreadEven",
		When: func(e Env) bool {
			return e.MyLoad() > e.Mean()*(1+slack)
		},
		HowMuch: func(e Env) float64 { return e.MyLoad() - e.Mean() },
		Where: func(e Env, amount float64) []float64 {
			mean := e.Mean()
			out := make([]float64, len(e.Loads))
			room := 0.0
			for j, l := range e.Loads {
				if j != e.WhoAmI && l < mean {
					out[j] = mean - l
					room += mean - l
				}
			}
			if room <= 0 {
				return nil
			}
			for j := range out {
				out[j] = out[j] / room * amount
			}
			return out
		},
	}
}
