package mantle

import (
	"fmt"
	"testing"

	"repro/internal/namespace"
	"repro/internal/simtest"
)

func buildView(t testing.TB, n, nDirs, filesPer int) (*simtest.View, []*namespace.Inode) {
	t.Helper()
	tree := namespace.NewTree()
	data, err := tree.MkdirAll("/data")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []*namespace.Inode
	for d := 0; d < nDirs; d++ {
		dir, err := tree.Mkdir(data, fmt.Sprintf("d%03d", d))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < filesPer; f++ {
			if _, err := tree.Create(dir, fmt.Sprintf("f%04d", f), 1); err != nil {
				t.Fatal(err)
			}
		}
		dirs = append(dirs, dir)
	}
	return simtest.New(tree, n), dirs
}

func heatUp(v *simtest.View, dirs []*namespace.Inode, epochs int) {
	for e := 0; e < epochs; e++ {
		for _, d := range dirs {
			for _, f := range d.Children() {
				v.ServeN(f, 1, int64(e))
			}
		}
		v.EndEpoch()
	}
}

func TestEnvHelpers(t *testing.T) {
	e := Env{WhoAmI: 1, Loads: []float64{100, 300}, Total: 400}
	if e.MyLoad() != 300 {
		t.Fatalf("MyLoad = %v", e.MyLoad())
	}
	if e.Mean() != 200 {
		t.Fatalf("Mean = %v", e.Mean())
	}
	empty := Env{WhoAmI: 5}
	if empty.MyLoad() != 0 || empty.Mean() != 0 {
		t.Fatal("out-of-range env must be zero")
	}
}

func TestGreedySpillPolicyMatchesShape(t *testing.T) {
	v, dirs := buildView(t, 3, 6, 10)
	heatUp(v, dirs, 2) // all load on rank 0, neighbour 1 idle
	b := NewBalancer(GreedySpill())
	b.Rebalance(v)
	if v.Mig.QueuedTasks() == 0 {
		t.Fatal("greedyspill-via-mantle did not spill")
	}
	// Everything must target rank 1 (the neighbour).
	pending1 := v.Mig.PendingFor(0)
	if len(pending1) == 0 {
		t.Fatal("no pending exports from rank 0")
	}
}

func TestFillHeaviestTargetsEmptiest(t *testing.T) {
	v, dirs := buildView(t, 4, 8, 10)
	// Put two dirs on rank 1 so rank 2/3 are the emptiest.
	for _, d := range dirs[:2] {
		e := v.Part.Carve(d)
		v.Part.SetAuth(e.Key, 1)
	}
	heatUp(v, dirs, 2)
	b := NewBalancer(FillHeaviest(0.1))
	b.Rebalance(v)
	if v.Mig.QueuedTasks() == 0 {
		t.Fatal("overloaded rank 0 did not shed")
	}
}

func TestSpreadEvenProportions(t *testing.T) {
	p := SpreadEven(0.1)
	env := Env{
		WhoAmI: 0,
		Loads:  []float64{1000, 100, 300, 0},
		Total:  1400,
	}
	if !p.When(env) {
		t.Fatal("should trigger above mean")
	}
	amount := p.HowMuch(env)
	if amount != 1000-350 {
		t.Fatalf("amount = %v", amount)
	}
	targets := p.Where(env, amount)
	sum := 0.0
	for j, v := range targets {
		if j == 0 && v != 0 {
			t.Fatal("self target must be zero")
		}
		sum += v
	}
	if diff := sum - amount; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("targets sum %v != amount %v", sum, amount)
	}
	// The emptiest MDS (rank 3) gets the largest share.
	if targets[3] <= targets[2] {
		t.Fatalf("shares not headroom-proportional: %v", targets)
	}
}

func TestNilCallbacksNoop(t *testing.T) {
	v, dirs := buildView(t, 3, 4, 10)
	heatUp(v, dirs, 2)
	b := NewBalancer(Policy{PolicyName: "empty"})
	b.Rebalance(v)
	if v.Mig.QueuedTasks() != 0 {
		t.Fatal("policy with nil callbacks must not migrate")
	}
}

func TestWhereNilCancels(t *testing.T) {
	v, dirs := buildView(t, 3, 4, 10)
	heatUp(v, dirs, 2)
	b := NewBalancer(Policy{
		PolicyName: "cancel",
		When:       func(Env) bool { return true },
		HowMuch:    func(e Env) float64 { return e.MyLoad() / 2 },
		Where:      func(Env, float64) []float64 { return nil },
	})
	b.Rebalance(v)
	if v.Mig.QueuedTasks() != 0 {
		t.Fatal("nil where must cancel the migration")
	}
}

func TestName(t *testing.T) {
	if NewBalancer(GreedySpill()).Name() != "Mantle:GreedySpill" {
		t.Fatal("name")
	}
	if NewBalancer(Policy{}).Name() != "Mantle" {
		t.Fatal("anonymous name")
	}
}

func TestHeartbeatAccounting(t *testing.T) {
	v, dirs := buildView(t, 3, 4, 10)
	heatUp(v, dirs, 1)
	NewBalancer(GreedySpill()).Rebalance(v)
	if v.Ledg.TotalBytes() == 0 {
		t.Fatal("mantle must ride the stock heartbeat exchange")
	}
}
