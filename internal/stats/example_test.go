package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleCoV shows the Coefficient of Variation's range on server
// load vectors: zero when balanced, sqrt(n) when one server carries
// everything — the bound the IF model normalizes by.
func ExampleCoV() {
	fmt.Printf("balanced: %.2f\n", stats.CoV([]float64{100, 100, 100, 100}))
	fmt.Printf("skewed:   %.2f\n", stats.CoV([]float64{400, 0, 0, 0}))
	fmt.Printf("max(n=4): %.2f\n", stats.MaxCoV(4))
	// Output:
	// balanced: 0.00
	// skewed:   2.00
	// max(n=4): 2.00
}

// ExampleLogistic shows the urgency term: negligible at low
// utilization, saturating as the busiest server approaches capacity.
func ExampleLogistic() {
	for _, u := range []float64{0.1, 0.5, 0.9} {
		fmt.Printf("u=%.1f -> U=%.3f\n", u, stats.Logistic(u, 0.2))
	}
	// Output:
	// u=0.1 -> U=0.018
	// u=0.5 -> U=0.500
	// u=0.9 -> U=0.982
}

// ExampleFitSeries shows the importer-side future-load prediction: a
// rising load history extrapolates past its last point.
func ExampleFitSeries() {
	fit := stats.FitSeries([]float64{100, 200, 300})
	fmt.Printf("next epoch: %.0f\n", fit.PredictNext())
	// Output:
	// next epoch: 400
}
