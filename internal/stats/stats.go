// Package stats provides the statistical primitives used by the
// balancers and the experiment harness: dispersion measures (including
// the Coefficient of Variation at the heart of the Lunule IF model),
// percentiles/CDFs for job-completion-time analysis, online summary
// statistics, the logistic urgency function, and the linear-regression
// load predictor used by the migration initiator for importer-side
// future-load estimation.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the corrected (n-1 denominator) sample variance of
// xs, or 0 when fewer than two values are present. The corrected form
// matches Equation 1 of the paper.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the corrected sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoV returns the Coefficient of Variation of xs: the corrected sample
// standard deviation divided by the mean (Equation 1). It returns 0 for
// an empty slice or when the mean is 0 (an all-idle cluster is treated
// as perfectly balanced).
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// MaxCoV returns the theoretical maximum CoV of n non-negative values,
// which is sqrt(n), attained when a single value carries all the mass.
// The IF model normalizes CoV by this bound so IF lies in [0, 1].
func MaxCoV(n int) float64 {
	if n < 1 {
		return 0
	}
	return math.Sqrt(float64(n))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Logistic is the S-shaped function (1 + e^((1-2u)/s))^-1 used as the
// urgency term U in Equation 2 of the paper. u is the utilization of the
// most loaded server relative to the per-server capacity, and s in (0,1)
// controls the smoothness of the transition (the paper uses 0.2). The
// result rises from ~0 at u=0 toward ~1 at u=1, crossing 0.5 at u=0.5.
func Logistic(u, s float64) float64 {
	if s <= 0 {
		// Degenerate smoothness: a hard step at u = 0.5.
		if u >= 0.5 {
			return 1
		}
		return 0
	}
	return 1 / (1 + math.Exp((1-2*u)/s))
}

// Percentile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between closest ranks. xs need not be sorted. It returns
// 0 for an empty slice.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, q)
}

// Percentiles returns the q-quantiles of xs for every q in qs, using
// the same definition as Percentile but copying and sorting the sample
// only once. Callers that report several quantiles of one sample (p50,
// p80, p99 of the JCT distribution, say) should prefer it over repeated
// Percentile calls, each of which re-copies and re-sorts.
func Percentiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 || len(qs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = percentileSorted(sorted, q)
	}
	return out
}

func percentileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// QuantileOfCounts returns the q-quantile of a sample given as bucket
// counts — counts[i] observations of the value value(i), with the
// values ascending in i. It uses the same
// linear-interpolation-between-closest-ranks definition as Percentile,
// so a histogram and the raw sample it was built from report identical
// quantiles. It returns 0 when the counts are empty or all zero.
func QuantileOfCounts(counts []int64, value func(int) float64, q float64) float64 {
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(n-1)
	lo := int64(math.Floor(pos))
	hi := int64(math.Ceil(pos))
	vLo := valueAtRank(counts, value, lo)
	if lo == hi {
		return vLo
	}
	vHi := valueAtRank(counts, value, hi)
	frac := pos - float64(lo)
	return vLo*(1-frac) + vHi*frac
}

// valueAtRank returns the value of the rank-th observation (0-based)
// in the ascending sample the counts describe.
func valueAtRank(counts []int64, value func(int) float64, rank int64) float64 {
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			return value(i)
		}
	}
	// Unreachable when rank < total; defensively report the top bucket.
	return value(len(counts) - 1)
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied and sorted).
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, x)
	for idx < len(c.sorted) && c.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q)
}

// Online accumulates summary statistics one observation at a time using
// Welford's algorithm; it is used by per-MDS load monitors where keeping
// the full series would be wasteful.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the corrected sample variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the corrected sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 if none).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 if none).
func (o *Online) Max() float64 { return o.max }

// LinReg fits y = a + b*x by ordinary least squares over the provided
// points. The migration initiator uses it to extrapolate each MDS's
// historical per-epoch load (cld) into the next epoch's expected load
// (fld), which gates importer-role assignment in Algorithm 1.
type LinReg struct {
	Intercept float64
	Slope     float64
	n         int
}

// FitSeries fits a regression over ys taken at x = 0, 1, ..., len-1.
// With fewer than two points the fit is a constant (slope 0).
func FitSeries(ys []float64) LinReg {
	n := len(ys)
	if n == 0 {
		return LinReg{}
	}
	if n == 1 {
		return LinReg{Intercept: ys[0], n: 1}
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range ys {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	fn := float64(n)
	den := fn*sumXX - sumX*sumX
	if den == 0 {
		return LinReg{Intercept: sumY / fn, n: n}
	}
	slope := (fn*sumXY - sumX*sumY) / den
	intercept := (sumY - slope*sumX) / fn
	return LinReg{Intercept: intercept, Slope: slope, n: n}
}

// Predict evaluates the fit at x.
func (r LinReg) Predict(x float64) float64 {
	return r.Intercept + r.Slope*x
}

// PredictNext extrapolates one step past the fitted series, clamped at
// zero: negative load forecasts are meaningless.
func (r LinReg) PredictNext() float64 {
	v := r.Predict(float64(r.n))
	if v < 0 {
		return 0
	}
	return v
}

// Series is an append-only time series of (tick, value) samples.
type Series struct {
	Ticks  []int64
	Values []float64
}

// Append adds one sample.
func (s *Series) Append(tick int64, v float64) {
	s.Ticks = append(s.Ticks, tick)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// MeanValue returns the mean of the sample values.
func (s *Series) MeanValue() float64 { return Mean(s.Values) }

// MaxValue returns the maximum sample value.
func (s *Series) MaxValue() float64 { return Max(s.Values) }

// Last returns the final value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Tail returns the mean of the last k values (or all if fewer).
func (s *Series) Tail(k int) float64 {
	if k <= 0 || len(s.Values) == 0 {
		return 0
	}
	if k > len(s.Values) {
		k = len(s.Values)
	}
	return Mean(s.Values[len(s.Values)-k:])
}

// Histogram counts observations into fixed-width buckets over
// [lo, hi); values outside the range are clamped into the edge buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	total   int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records x.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Frac returns the fraction of observations in bucket i.
func (h *Histogram) Frac(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.total)
}
