package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanSum(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Sum(xs) != 10 {
		t.Fatalf("Sum = %v", Sum(xs))
	}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestVarianceCorrected(t *testing.T) {
	// Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} with n-1 denominator
	// is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Variance(xs), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single-element variance != 0")
	}
}

func TestCoVBasics(t *testing.T) {
	if CoV([]float64{5, 5, 5, 5}) != 0 {
		t.Fatal("CoV of constant series != 0")
	}
	if CoV([]float64{0, 0, 0}) != 0 {
		t.Fatal("CoV of zero series != 0")
	}
	// One busy server out of n idle: CoV approaches sqrt(n).
	xs := []float64{100, 0, 0, 0, 0}
	cov := CoV(xs)
	if !almost(cov, math.Sqrt(5), 1e-9) {
		t.Fatalf("fully skewed CoV = %v, want sqrt(5) = %v", cov, math.Sqrt(5))
	}
}

func TestCoVBoundedByMaxCoV(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		anyPositive := false
		for i, v := range raw {
			xs[i] = float64(v)
			if v > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return CoV(xs) == 0
		}
		// For non-negative data, CoV <= sqrt(n) with equality only in
		// the single-spike case. Allow tiny floating slack.
		return CoV(xs) <= MaxCoV(len(xs))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoVScaleInvariant(t *testing.T) {
	xs := []float64{1, 3, 9, 2}
	ys := make([]float64, len(xs))
	for i := range xs {
		ys[i] = xs[i] * 1000
	}
	if !almost(CoV(xs), CoV(ys), 1e-12) {
		t.Fatalf("CoV not scale invariant: %v vs %v", CoV(xs), CoV(ys))
	}
}

func TestLogisticShape(t *testing.T) {
	s := 0.2
	if !almost(Logistic(0.5, s), 0.5, 1e-12) {
		t.Fatalf("Logistic(0.5) = %v", Logistic(0.5, s))
	}
	if Logistic(0, s) > 0.01 {
		t.Fatalf("Logistic(0) = %v, want ~0", Logistic(0, s))
	}
	if Logistic(1, s) < 0.99 {
		t.Fatalf("Logistic(1) = %v, want ~1", Logistic(1, s))
	}
	// Monotone increasing in u.
	prev := -1.0
	for u := 0.0; u <= 1.0; u += 0.05 {
		v := Logistic(u, s)
		if v <= prev {
			t.Fatalf("Logistic not increasing at u=%v", u)
		}
		prev = v
	}
}

func TestLogisticSmoothnessKnob(t *testing.T) {
	// Smaller s means a sharper transition: at u=0.6 a small s should
	// be closer to 1 than a large s.
	if Logistic(0.6, 0.05) <= Logistic(0.6, 0.5) {
		t.Fatal("smaller smoothness did not sharpen the curve")
	}
	if Logistic(0.6, 0) != 1 || Logistic(0.4, 0) != 0 {
		t.Fatal("degenerate s=0 should be a hard step")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if Percentile(xs, 0) != 15 {
		t.Fatal("p0")
	}
	if Percentile(xs, 1) != 50 {
		t.Fatal("p100")
	}
	if !almost(Percentile(xs, 0.5), 35, 1e-12) {
		t.Fatalf("median = %v", Percentile(xs, 0.5))
	}
	if !almost(Percentile(xs, 0.25), 20, 1e-12) {
		t.Fatalf("p25 = %v", Percentile(xs, 0.25))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile != 0")
	}
}

func TestPercentileWithinBounds(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q := float64(qRaw) / 255
		p := Percentile(xs, q)
		return p >= Min(xs)-1e-9 && p <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if c.At(0) != 0 {
		t.Fatal("At(0)")
	}
	if c.At(2) != 0.75 {
		t.Fatalf("At(2) = %v", c.At(2))
	}
	if c.At(5) != 1 {
		t.Fatal("At(5)")
	}
	if c.Len() != 4 {
		t.Fatal("Len")
	}
	if !almost(c.Quantile(1), 3, 1e-12) {
		t.Fatal("Quantile(1)")
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != len(xs) {
		t.Fatal("N")
	}
	if !almost(o.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("online mean %v vs %v", o.Mean(), Mean(xs))
	}
	if !almost(o.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("online variance %v vs %v", o.Variance(), Variance(xs))
	}
	if o.Min() != 1 || o.Max() != 9 {
		t.Fatalf("min/max %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineBatchProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var o Online
		for i, v := range raw {
			xs[i] = float64(v)
			o.Add(xs[i])
		}
		return almost(o.Mean(), Mean(xs), 1e-6) && almost(o.Variance(), Variance(xs), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitSeriesExactLine(t *testing.T) {
	r := FitSeries([]float64{3, 5, 7, 9})
	if !almost(r.Slope, 2, 1e-12) || !almost(r.Intercept, 3, 1e-12) {
		t.Fatalf("fit %v + %v x", r.Intercept, r.Slope)
	}
	if !almost(r.PredictNext(), 11, 1e-12) {
		t.Fatalf("PredictNext = %v", r.PredictNext())
	}
}

func TestFitSeriesConstant(t *testing.T) {
	r := FitSeries([]float64{4, 4, 4})
	if !almost(r.Slope, 0, 1e-12) || !almost(r.PredictNext(), 4, 1e-12) {
		t.Fatalf("constant fit: %v + %vx", r.Intercept, r.Slope)
	}
}

func TestFitSeriesClampNegative(t *testing.T) {
	r := FitSeries([]float64{9, 6, 3})
	if r.PredictNext() != 0 {
		t.Fatalf("declining load should clamp at 0, got %v", r.PredictNext())
	}
}

func TestFitSeriesDegenerate(t *testing.T) {
	if FitSeries(nil).PredictNext() != 0 {
		t.Fatal("empty fit")
	}
	r := FitSeries([]float64{7})
	if !almost(r.PredictNext(), 7, 1e-12) {
		t.Fatal("single point fit should extrapolate constant")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(0, 1)
	s.Append(10, 3)
	s.Append(20, 5)
	if s.Len() != 3 || s.Last() != 5 {
		t.Fatal("series basics")
	}
	if !almost(s.MeanValue(), 3, 1e-12) || s.MaxValue() != 5 {
		t.Fatal("series stats")
	}
	if !almost(s.Tail(2), 4, 1e-12) {
		t.Fatalf("Tail(2) = %v", s.Tail(2))
	}
	if !almost(s.Tail(99), 3, 1e-12) {
		t.Fatal("Tail larger than series should use all values")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 9.9, 100, -5} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatal("total")
	}
	// -5 clamps to bucket 0; 100 clamps to last bucket.
	if h.Buckets[0] != 3 {
		t.Fatalf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[4] != 2 {
		t.Fatalf("bucket4 = %d", h.Buckets[4])
	}
	if !almost(h.Frac(0), 0.5, 1e-12) {
		t.Fatal("Frac")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max")
	}
}

func TestQuantileOfCountsMatchesPercentile(t *testing.T) {
	// Bucket i holds value i+1 (the latency-histogram shape).
	counts := []int64{5, 0, 3, 12, 0, 0, 7, 1}
	var raw []float64
	for i, c := range counts {
		for j := int64(0); j < c; j++ {
			raw = append(raw, float64(i+1))
		}
	}
	value := func(i int) float64 { return float64(i + 1) }
	for _, q := range []float64{-1, 0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1, 2} {
		got := QuantileOfCounts(counts, value, q)
		want := Percentile(raw, q)
		if got != want {
			t.Fatalf("q=%v: counts %v != percentile %v", q, got, want)
		}
	}
}

func TestQuantileOfCountsEmpty(t *testing.T) {
	if got := QuantileOfCounts(nil, func(int) float64 { return 1 }, 0.5); got != 0 {
		t.Fatalf("empty counts: %v", got)
	}
	if got := QuantileOfCounts([]int64{0, 0}, func(int) float64 { return 1 }, 0.5); got != 0 {
		t.Fatalf("all-zero counts: %v", got)
	}
}
