package stats

import "testing"

func TestPercentilesMatchesPercentile(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 2, 8, 3, 6, 5, 0}
	qs := []float64{-1, 0, 0.25, 0.5, 0.99, 1, 2}
	got := Percentiles(xs, qs...)
	if len(got) != len(qs) {
		t.Fatalf("len = %d, want %d", len(got), len(qs))
	}
	for i, q := range qs {
		if want := Percentile(xs, q); got[i] != want {
			t.Errorf("q=%v: got %v, want %v", q, got[i], want)
		}
	}
	if xs[0] != 9 {
		t.Error("Percentiles must not mutate its input")
	}
}

func TestPercentilesEmpty(t *testing.T) {
	got := Percentiles(nil, 0.5, 0.99)
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty input: %v", got)
	}
	if out := Percentiles([]float64{1, 2, 3}); len(out) != 0 {
		t.Fatalf("no quantiles requested: %v", out)
	}
}

// BenchmarkPercentiles measures the shared-sort path against repeated
// Percentile calls, the pattern the metrics emission replaced.
func BenchmarkPercentiles(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64((i * 7919) % 10007)
	}
	qs := []float64{0.5, 0.8, 0.99}
	b.Run("shared-sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Percentiles(xs, qs...)
		}
	})
	b.Run("per-quantile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				_ = Percentile(xs, q)
			}
		}
	})
}
