// Package simtest provides a lightweight balancer.View implementation
// over hand-built namespaces, so balancer and selector logic can be
// unit-tested without running a full cluster simulation.
package simtest

import (
	"repro/internal/mds"
	"repro/internal/msg"
	"repro/internal/namespace"
	"repro/internal/rng"
)

// View is a configurable balancer.View for tests.
type View struct {
	TickV       int64
	EpochV      int64
	EpochTicksV int
	CapacityV   float64
	HeatDecayV  float64
	Servers     []*mds.Server
	Part        *namespace.Partition
	Mig         *mds.Migrator
	Ledg        *msg.Ledger
	Src         *rng.Source
}

// New builds a View over the tree with n fresh servers. Server capacity
// is 2000 ops/tick, history 6 windows, heat decay 0.9 (fast enough for
// unit tests).
func New(tree *namespace.Tree, n int) *View {
	part := namespace.NewPartition(tree, 0)
	v := &View{
		EpochTicksV: 10,
		CapacityV:   2000,
		HeatDecayV:  0.9,
		Part:        part,
		Mig:         mds.NewMigrator(part, 2000, 2, 20),
		Ledg:        msg.NewLedger(n),
		Src:         rng.New(1),
	}
	for i := 0; i < n; i++ {
		v.Servers = append(v.Servers, mds.NewServer(namespace.MDSID(i), 2000, 6, v.HeatDecayV))
	}
	return v
}

// Tick implements balancer.View.
func (v *View) Tick() int64 { return v.TickV }

// Epoch implements balancer.View.
func (v *View) Epoch() int64 { return v.EpochV }

// EpochTicks implements balancer.View.
func (v *View) EpochTicks() int { return v.EpochTicksV }

// NumMDS implements balancer.View.
func (v *View) NumMDS() int { return len(v.Servers) }

// Up implements balancer.View.
func (v *View) Up(id namespace.MDSID) bool {
	return int(id) < len(v.Servers) && v.Servers[id].Up()
}

// Importable implements balancer.View: up and not draining.
func (v *View) Importable(id namespace.MDSID) bool {
	return v.Up(id) && !v.Servers[id].Draining()
}

// Server implements balancer.View.
func (v *View) Server(id namespace.MDSID) *mds.Server { return v.Servers[id] }

// Partition implements balancer.View.
func (v *View) Partition() *namespace.Partition { return v.Part }

// Migrator implements balancer.View.
func (v *View) Migrator() *mds.Migrator { return v.Mig }

// Capacity implements balancer.View.
func (v *View) Capacity() float64 { return v.CapacityV }

// HeatDecay implements balancer.View.
func (v *View) HeatDecay() float64 { return v.HeatDecayV }

// Rand implements balancer.View.
func (v *View) Rand() *rng.Source { return v.Src }

// Ledger implements balancer.View.
func (v *View) Ledger() *msg.Ledger { return v.Ledg }

// ServeN simulates n accesses to the inode on its authoritative server
// during the given epoch, refreshing the tick budget as needed and
// keeping the view's epoch in step.
func (v *View) ServeN(in *namespace.Inode, n int, epoch int64) {
	if epoch > v.EpochV {
		v.EpochV = epoch
	}
	e := v.Part.GoverningEntry(in)
	s := v.Servers[e.Auth]
	for i := 0; i < n; i++ {
		if !s.HasBudget() {
			s.BeginTick()
		}
		s.Serve(e, in, epoch)
	}
}

// EndEpoch closes the epoch on every server (epochTicks ticks long).
func (v *View) EndEpoch() {
	for _, s := range v.Servers {
		s.EndEpoch(v.EpochTicksV)
	}
}
