// Quickstart: simulate a 5-MDS CephFS metadata cluster serving the
// Filebench-Zipfian workload, once with the CephFS built-in balancer
// and once with Lunule, and compare balance and throughput.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/balancer"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	for _, bal := range []balancer.Balancer{balancer.NewVanilla(), core.NewDefault()} {
		c, err := cluster.New(cluster.Config{
			MDS:      5,
			Clients:  40,
			Balancer: bal,
			Workload: workload.NewZipf(workload.ZipfConfig{
				FilesPerClient: 1000,
				OpsPerClient:   20000,
			}),
			Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		end := c.RunUntilDone(5000)
		rec := c.Metrics()

		fmt.Printf("=== %s ===\n", bal.Name())
		fmt.Printf("  finished at tick %d (all clients done: %v)\n", end, c.Done())
		fmt.Printf("  mean imbalance factor: %.3f\n", rec.MeanIF())
		fmt.Printf("  aggregate IOPS (mean/peak): %.0f / %.0f\n",
			rec.MeanThroughput(), rec.PeakThroughput(10))
		fmt.Printf("  migrated inodes: %.0f\n", rec.MigratedTotal())
		fmt.Printf("  job completion p50/p99: %.0f / %.0f ticks\n",
			rec.JCTQuantile(0.5), rec.JCTQuantile(0.99))
		fmt.Printf("  IF over time: %s\n\n", metrics.FormatSeries(&rec.IF, 10))
	}
}
