// Cluster expansion (§4.5 of the paper): a 4-MDS cluster runs the
// Zipfian workload under Lunule; one MDS joins at tick 100 and another
// at tick 200. The balancer must migrate load onto the newcomers and
// raise the aggregate throughput.
//
//	go run ./examples/expansion
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	c, err := cluster.New(cluster.Config{
		MDS:      4,
		Clients:  60, // demand exceeds four MDSs' capacity
		Balancer: core.NewDefault(),
		Workload: workload.NewZipf(workload.ZipfConfig{
			FilesPerClient: 1000,
			OpsPerClient:   60000,
		}),
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.ScheduleAddMDS(100, 1)
	c.ScheduleAddMDS(200, 1)
	c.RunUntilDone(4000)
	rec := c.Metrics()

	fmt.Printf("run finished at tick %d with %d MDSs\n\n", c.Tick(), len(c.Servers()))
	fmt.Println("aggregate IOPS over time (MDS joins at ticks 100 and 200):")
	fmt.Println("  " + metrics.FormatSeries(&rec.Agg, 14))
	fmt.Println("\nper-MDS IOPS over time:")
	for i, s := range rec.PerMDS {
		fmt.Printf("  MDS-%d: %s\n", i+1, metrics.FormatSeries(s, 12))
	}
	fmt.Printf("\nmigrated inodes: %.0f; mean IF: %.3f\n",
		rec.MigratedTotal(), rec.MeanIF())
}
