// Mixed workload (§4.4 of the paper): 40 clients split into four
// groups running CNN pre-processing, NLP training, web trace replay,
// and Zipfian reads side by side. Compares the built-in balancer with
// Lunule on balance, throughput, and the completion-time tail.
//
//	go run ./examples/mixed
package main

import (
	"fmt"
	"log"

	"repro/internal/balancer"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	mix := func() workload.Generator {
		return workload.NewMixed(
			workload.NewCNN(workload.CNNConfig{Dirs: 300, FilesPerDir: 32}),
			workload.NewNLP(workload.NLPConfig{FilesPerDir: 400}),
			workload.NewWeb(workload.WebConfig{}),
			workload.NewZipf(workload.ZipfConfig{}),
		)
	}
	type outcome struct {
		name  string
		rec   *metrics.Recorder
		ticks int64
	}
	var outs []outcome
	for _, bal := range []balancer.Balancer{balancer.NewVanilla(), core.NewDefault()} {
		c, err := cluster.New(cluster.Config{
			Clients:  40,
			Balancer: bal,
			Workload: mix(),
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		c.RunUntilDone(8000)
		outs = append(outs, outcome{bal.Name(), c.Metrics(), c.Tick()})
	}

	tbl := &metrics.Table{Header: []string{
		"balancer", "mean IF", "mean IOPS", "JCT p50", "JCT p80", "JCT p99", "run ticks",
	}}
	for _, o := range outs {
		tbl.Add(o.name,
			fmt.Sprintf("%.3f", o.rec.MeanIF()),
			fmt.Sprintf("%.0f", o.rec.MeanThroughput()),
			fmt.Sprintf("%.0f", o.rec.JCTQuantile(0.5)),
			fmt.Sprintf("%.0f", o.rec.JCTQuantile(0.8)),
			fmt.Sprintf("%.0f", o.rec.JCTQuantile(0.99)),
			fmt.Sprintf("%d", o.ticks))
	}
	fmt.Print(tbl.String())
	fmt.Println("\ncompletion-time CDF points (fraction of clients done by tick):")
	for _, o := range outs {
		fmt.Printf("  %s:", o.name)
		for _, q := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			fmt.Printf("  %.0f%%=%.0f", q*100, o.rec.JCTQuantile(q))
		}
		fmt.Println()
	}
}
