// Custom balancer: the balancer.Balancer interface plays the role
// Mantle's programmable API plays in the paper — third parties can plug
// their own when/how-much/where policies into the metadata service.
// This example implements a tiny "water-filling" policy (move load from
// the fullest to the emptiest MDS whenever the gap exceeds 25%) and
// runs it against Lunule on the MDtest create workload.
//
//	go run ./examples/custombalancer
package main

import (
	"fmt"
	"log"

	"repro/internal/balancer"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mantle"
	"repro/internal/namespace"
	"repro/internal/workload"
)

// waterFill is a user-provided policy: one exporter, one importer, a
// quarter of the gap per epoch, hottest subtrees first.
type waterFill struct{}

func (waterFill) Name() string { return "WaterFill" }

func (waterFill) Rebalance(v balancer.View) {
	loads := balancer.Loads(v)
	hi, lo := 0, 0
	for i, l := range loads {
		if l > loads[hi] {
			hi = i
		}
		if l < loads[lo] {
			lo = i
		}
	}
	if loads[hi] == 0 || hi == lo {
		return
	}
	gap := loads[hi] - loads[lo]
	if gap < 0.25*loads[hi] {
		return // tolerate small gaps
	}
	// Ship a quarter of the gap, selected by subtree heat.
	fraction := gap / 4 / loads[hi]
	for _, c := range balancer.HeatSelect(v, namespace.MDSID(hi), fraction, 64) {
		balancer.SubmitCandidate(v, c, namespace.MDSID(hi), namespace.MDSID(lo))
	}
}

func main() {
	for _, bal := range []balancer.Balancer{
		waterFill{},
		mantle.NewBalancer(mantle.SpreadEven(0.1)),
		mantle.NewBalancer(mantle.GreedySpill()),
		core.NewDefault(),
	} {
		c, err := cluster.New(cluster.Config{
			Clients:  40,
			Balancer: bal,
			Workload: workload.NewMD(workload.MDConfig{CreatesPerClient: 20000}),
			Seed:     3,
		})
		if err != nil {
			log.Fatal(err)
		}
		c.RunUntilDone(5000)
		rec := c.Metrics()
		fmt.Printf("%-20s meanIF=%.3f meanIOPS=%.0f jct(p50/p99)=%.0f/%.0f migrated=%.0f\n",
			bal.Name(), rec.MeanIF(), rec.MeanThroughput(),
			rec.JCTQuantile(0.5), rec.JCTQuantile(0.99), rec.MigratedTotal())
	}
	fmt.Println("\nany type with Name() and Rebalance(balancer.View) can drive the cluster;")
	fmt.Println("the mantle package wraps Mantle-style when/howMuch/where policies into one")
}
