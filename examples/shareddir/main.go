// Shared-directory create storm: every client creates files into one
// common directory — the GIGA+ scenario, and the hardest case for
// subtree-granular balancing. Whole-directory policies can only move
// the bottleneck around; Lunule's selector splits the directory into
// hash fragments and spreads them across the cluster.
//
//	go run ./examples/shareddir
package main

import (
	"fmt"
	"log"

	"repro/internal/balancer"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	tbl := &metrics.Table{Header: []string{
		"balancer", "mean IOPS", "JCT p50", "shared-dir fragments", "migrated inodes",
	}}
	for _, bal := range []balancer.Balancer{
		balancer.NewVanilla(),
		balancer.NewGreedySpill(),
		core.NewDefault(),
	} {
		c, err := cluster.New(cluster.Config{
			Clients:  40,
			Balancer: bal,
			Workload: workload.NewMDShared(workload.MDSharedConfig{CreatesPerClient: 12000}),
			Seed:     5,
		})
		if err != nil {
			log.Fatal(err)
		}
		c.RunUntilDone(6000)
		rec := c.Metrics()
		shared, err := c.Tree().Lookup("/mdshared/dir")
		if err != nil {
			log.Fatal(err)
		}
		tbl.Add(bal.Name(),
			fmt.Sprintf("%.0f", rec.MeanThroughput()),
			fmt.Sprintf("%.0f", rec.JCTQuantile(0.5)),
			fmt.Sprintf("%d", len(c.Partition().EntriesAt(shared.Ino))),
			fmt.Sprintf("%.0f", rec.MigratedTotal()))
	}
	fmt.Print(tbl.String())
	fmt.Println("\nonly dirfrag splitting can parallelize a single hot directory")
}
