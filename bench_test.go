// Package repro's top-level benchmarks regenerate every table and
// figure of the paper's evaluation through the experiment registry —
// one benchmark per paper item. Each reports the experiment's headline
// numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the full reproduced evaluation alongside the harness cost.
// The runs use a reduced workload scale so the suite stays in benchmark
// territory; cmd/lunule-bench runs the same experiments at full scale.
package repro

import (
	"testing"

	"repro/internal/experiment"
)

// benchOpts is the per-iteration configuration all benchmarks share.
func benchOpts() experiment.Options {
	return experiment.Options{Seed: 42, Scale: 0.25, MaxTicks: 4000}
}

// runExperiment executes the experiment once per benchmark iteration
// and reports the requested values as benchmark metrics.
func runExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for key, unit := range metrics {
		if v, ok := last.Values[key]; ok {
			b.ReportMetric(v, unit)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1", map[string]string{
		"CNN.ratio": "CNN-meta-ratio",
		"NLP.ratio": "NLP-meta-ratio",
		"Web.ratio": "Web-meta-ratio",
	})
}

func BenchmarkFig2(b *testing.B) {
	runExperiment(b, "fig2", map[string]string{
		"CNN.maxShare": "CNN-max-share",
		"CNN.maxMin":   "CNN-max/min",
	})
}

func BenchmarkFig3(b *testing.B) {
	runExperiment(b, "fig3", map[string]string{
		"CNN.mds1.mean": "CNN-MDS1-IOPS",
	})
}

func BenchmarkFig4(b *testing.B) {
	runExperiment(b, "fig4", map[string]string{
		"Zipf.ratio": "Zipf-migr-ratio",
		"CNN.ratio":  "CNN-migr-ratio",
	})
}

func BenchmarkFig6(b *testing.B) {
	runExperiment(b, "fig6", map[string]string{
		"CNN/Lunule.meanIF":      "CNN-Lunule-IF",
		"CNN/Vanilla.meanIF":     "CNN-Vanilla-IF",
		"CNN/GreedySpill.meanIF": "CNN-Greedy-IF",
	})
}

func BenchmarkFig7(b *testing.B) {
	runExperiment(b, "fig7", map[string]string{
		"CNN.lunule-vs-Vanilla":     "CNN-speedup-vs-vanilla",
		"NLP.lunule-vs-Vanilla":     "NLP-speedup-vs-vanilla",
		"CNN.lunule-vs-GreedySpill": "CNN-speedup-vs-greedy",
	})
}

func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "fig8", map[string]string{
		"CNN.speedup":  "CNN-e2e-speedup",
		"Zipf.speedup": "Zipf-e2e-speedup",
	})
}

func BenchmarkFig9(b *testing.B) {
	runExperiment(b, "fig9", map[string]string{
		"Vanilla.meanIF": "mixed-Vanilla-IF",
		"Lunule.meanIF":  "mixed-Lunule-IF",
	})
}

func BenchmarkFig10(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{
		"meanSpeedup": "mixed-mean-speedup",
	})
}

func BenchmarkFig11(b *testing.B) {
	runExperiment(b, "fig11", map[string]string{
		"tailImprovement": "mixed-p99-improvement",
	})
}

func BenchmarkFig12a(b *testing.B) {
	runExperiment(b, "fig12a", map[string]string{
		"phase1": "IOPS-4mds",
		"phase2": "IOPS-5mds",
		"phase3": "IOPS-6mds",
	})
}

func BenchmarkFig12b(b *testing.B) {
	runExperiment(b, "fig12b", map[string]string{
		"phase1.rebalances": "phase1-rebalances",
		"phase4.iops":       "phase4-IOPS",
	})
}

func BenchmarkFig13a(b *testing.B) {
	runExperiment(b, "fig13a", map[string]string{
		"mds16.peak":       "peak-IOPS-16mds",
		"mds16.efficiency": "efficiency-16mds",
	})
}

func BenchmarkFig13b(b *testing.B) {
	runExperiment(b, "fig13b", map[string]string{
		"lunule-vs-dirhash": "lunule-vs-dirhash",
	})
}

func BenchmarkFig14(b *testing.B) {
	runExperiment(b, "fig14", map[string]string{
		"dirhash-fwd-vs-vanilla": "dirhash-fwd-ratio",
		"Dir-Hash.inodeSpread":   "dirhash-inode-spread",
	})
}

func BenchmarkAblation(b *testing.B) {
	runExperiment(b, "ablation", map[string]string{
		"urgency/urgency off.rebalances": "benign-rebalances-ablated",
		"urgency/full Lunule.rebalances": "benign-rebalances-full",
	})
}

func BenchmarkHetero(b *testing.B) {
	runExperiment(b, "hetero", map[string]string{
		"mid-run degradation/Lunule.mean":  "degraded-Lunule-IOPS",
		"mid-run degradation/Vanilla.mean": "degraded-Vanilla-IOPS",
	})
}

func BenchmarkSharedDir(b *testing.B) {
	runExperiment(b, "shareddir", map[string]string{
		"lunule-vs-vanilla": "shared-dir-speedup",
		"Lunule.frags":      "shared-dir-fragments",
	})
}

func BenchmarkOverhead(b *testing.B) {
	runExperiment(b, "overhead", map[string]string{
		"mds16.lunule.outKB":         "perMDS-out-KB",
		"mds16.lunule.initiatorInKB": "initiator-in-KB",
	})
}
