// Command lunule-bench regenerates the paper's tables and figures on
// the simulated cluster. Run it with no flags to execute the full
// evaluation, or name specific experiments:
//
//	lunule-bench -list
//	lunule-bench -exp fig6,fig7 -scale 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
)

// parseWorkersAxis turns an axis flag ("1,2,4,8" worker counts or
// "8,32" batch sizes) into a sorted, deduplicated list of positive
// integers.
func parseWorkersAxis(s string) ([]int, error) {
	seen := map[int]bool{}
	var axis []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad axis entry %q: want positive integers", part)
		}
		if !seen[w] {
			seen[w] = true
			axis = append(axis, w)
		}
	}
	sort.Ints(axis)
	if len(axis) == 0 {
		axis = []int{1}
	}
	return axis, nil
}

// jsonResult is the machine-readable form of one experiment.
type jsonResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Values  map[string]float64 `json:"values"`
	Notes   []string           `json:"notes,omitempty"`
	Seeds   int                `json:"seeds,omitempty"`
	Std     map[string]float64 `json:"std,omitempty"`
	Elapsed string             `json:"elapsed"`
}

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		exp      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = seconds per experiment)")
		seed     = flag.Uint64("seed", 42, "random seed")
		ticks    = flag.Int64("maxticks", 6000, "per-run simulated-tick budget")
		seeds    = flag.Int("seeds", 1, "run each experiment this many times (seed, seed+1, ...) and report mean ± std")
		auditOn  = flag.Bool("audit", false, "attach the state auditor to every run; any invariant violation fails the experiment")
		jsonPath = flag.String("json", "", "also write machine-readable results to this file")
		mdPath   = flag.String("md", "", "write a markdown report to this file instead of stdout tables")

		tickbench    = flag.Bool("tickbench", false, "run the tick-loop micro-benchmark matrix instead of the experiments")
		tbOut        = flag.String("tickbench-out", "", "write the tickbench JSON report to this file (the BENCH_pr3.json format)")
		tbBaseline   = flag.String("tickbench-baseline", "", "diff tickbench results against this checked-in JSON baseline")
		tbTicks      = flag.Int64("tickbench-ticks", 300, "measured ticks per tickbench case (after a 100-tick warmup)")
		tbWorkers    = flag.String("tickbench-workers", "1,2,4,8",
			"comma-separated worker counts for the parallel-engine tickbench cells")
		tbBatch = flag.String("tickbench-batch", "8,32",
			"comma-separated batch sizes for the write-back tickbench cells")
		tbMaxRegress = flag.Float64("tickbench-max-alloc-regress", 0.10,
			"fail when any case's allocs/tick exceeds the baseline by more than this fraction (negative disables)")
	)
	flag.Parse()

	if *tickbench {
		workersAxis, err := parseWorkersAxis(*tbWorkers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		batchAxis, err := parseWorkersAxis(*tbBatch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if err := runTickBench(os.Stdout, *tbTicks, workersAxis, batchAxis, *tbOut, *tbBaseline, *tbMaxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	titles := experiment.Titles()
	if *list {
		for _, id := range experiment.IDs() {
			fmt.Printf("%-9s %s\n", id, titles[id])
		}
		return
	}

	ids := experiment.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	opt := experiment.Options{Seed: *seed, Scale: *scale, MaxTicks: *ticks, Audit: *auditOn}

	if *mdPath != "" {
		f, err := os.Create(*mdPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if err := experiment.WriteMarkdownReport(f, ids, opt); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("markdown report written to %s\n", *mdPath)
		return
	}

	failed := 0
	var jsonOut []jsonResult
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		if *seeds > 1 {
			sw, err := experiment.RunSeeds(id, opt, *seeds)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				failed++
				continue
			}
			fmt.Print(sw.String())
			jsonOut = append(jsonOut, jsonResult{
				ID: sw.ID, Title: sw.Title, Values: sw.Mean, Std: sw.Std,
				Seeds: sw.Seeds, Notes: sw.Last.Notes,
				Elapsed: time.Since(start).Round(time.Millisecond).String(),
			})
		} else {
			res, err := experiment.Run(id, opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				failed++
				continue
			}
			fmt.Print(res.String())
			jsonOut = append(jsonOut, jsonResult{
				ID: res.ID, Title: res.Title, Values: res.Values, Notes: res.Notes,
				Elapsed: time.Since(start).Round(time.Millisecond).String(),
			})
		}
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(jsonOut, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "error writing json: %v\n", err)
			failed++
		} else {
			fmt.Printf("machine-readable results written to %s\n", *jsonPath)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
