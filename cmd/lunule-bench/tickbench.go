package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/elastic"
	"repro/internal/experiment"
	"repro/internal/replica"
	"repro/internal/tenant"
	"repro/internal/workload"
)

// tickCase is one cell of the tick-loop benchmark matrix.
type tickCase struct {
	Name          string  `json:"name"`
	Workload      string  `json:"workload"`
	MDS           int     `json:"mds"`
	Clients       int     `json:"clients"`
	Workers       int     `json:"workers"`
	BatchSize     int     `json:"batch_size,omitempty"`
	Ticks         int64   `json:"ticks"`
	NsPerTick     float64 `json:"ns_per_tick"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	AllocsPerTick float64 `json:"allocs_per_tick"`
}

// tickReport is the checked-in machine-readable baseline format
// (BENCH_pr2.json).
type tickReport struct {
	Go    string     `json:"go"`
	Ticks int64      `json:"ticks_per_case"`
	Cases []tickCase `json:"cases"`
}

// tickWorkload builds a long-running generator for a benchmark cell:
// the op budget must outlast warmup+measure ticks so the tick loop is
// measured at steady state, never on a drained cluster.
func tickWorkload(kind string) (workload.Generator, error) {
	switch kind {
	case "zipf", "elastic", "replication":
		// "elastic" is the zipf cell with an autoscaler attached: it
		// measures what the elastic observation path costs per tick.
		// "replication" attaches an R=2 warm-standby manager instead: it
		// prices the journal ship + reconcile pump at steady state.
		return workload.NewZipf(workload.ZipfConfig{FilesPerClient: 500, OpsPerClient: 1 << 30}), nil
	case "shareddir":
		return workload.NewMDShared(workload.MDSharedConfig{CreatesPerClient: 1 << 30}), nil
	case "readstorm":
		// Shared-directory read storm on a lease-enabled cluster: it
		// prices the lease routing path (holder spread, per-tick grant
		// refreshes, routing-table sync) at steady state.
		return workload.NewReadStorm(workload.ReadStormConfig{
			Files: 2000, OpsPerClient: 1 << 30,
		}), nil
	case "mdtest":
		// MDtest create-heavy: per-client directory trees with an
		// interleaved stat — the write-back batching target, also run
		// sync as the group-commit speedup baseline.
		return workload.NewMD(workload.MDConfig{
			CreatesPerClient: 1 << 30, DirsPerClient: 4, StatEvery: 64,
		}), nil
	case "tenant":
		// Skewed tenant mix under contended token buckets: prices the
		// serial bucket-admission phase, the per-tenant lane accounting,
		// and the per-tenant heat bookkeeping at steady state.
		return workload.NewTenants(workload.TenantsConfig{Tenants: 4, Skew: 1.0},
			func(t, clients, off int) workload.Generator {
				dir := fmt.Sprintf("/tenant%02d", t)
				switch t % 3 {
				case 0:
					return workload.NewZipf(workload.ZipfConfig{
						Dir: dir + "/zipf", ClientOffset: off,
						FilesPerClient: 500, OpsPerClient: 1 << 30,
					})
				case 1:
					return workload.NewMD(workload.MDConfig{
						Dir: dir + "/md", ClientOffset: off,
						CreatesPerClient: 1 << 30,
					})
				default:
					return workload.NewReadStorm(workload.ReadStormConfig{
						Dir: dir + "/storm", ClientOffset: off,
						WriteEvery: 50, OpsPerClient: 1 << 30,
					})
				}
			}), nil
	}
	return nil, fmt.Errorf("unknown tickbench workload %q", kind)
}

// runTickCase measures one cell: warmup ticks to reach steady state,
// then `ticks` measured steps timed with wall clock and alloc counters.
func runTickCase(kind string, mds, clients, workers, batch int, warmup, ticks int64) (tickCase, error) {
	gen, err := tickWorkload(kind)
	if err != nil {
		return tickCase{}, err
	}
	var batching *cluster.BatchingConfig
	if batch > 1 {
		batching = &cluster.BatchingConfig{BatchSize: batch, FlushEvery: 4}
	}
	var controller *elastic.Controller
	if kind == "elastic" {
		// Wide bounds so the steady-state workload neither grows nor
		// drains mid-measurement: the cell prices the per-epoch
		// observation, not a migration storm.
		policy := elastic.DefaultPolicy()
		policy.MinRanks, policy.MaxRanks = mds, 2*mds
		controller = elastic.MustController(policy)
	}
	var rep *replica.Manager
	if kind == "replication" {
		rep = replica.MustManager(replica.DefaultPolicy())
	}
	var tn *tenant.Manager
	if kind == "tenant" {
		// Contended flat buckets: the big tenants throttle every tick,
		// so the cell prices the admission path actually taken, not the
		// uncontended fast path.
		pol := tenant.DefaultPolicy()
		pol.Rate, pol.Burst = 1500, 3000
		tn = tenant.MustManager(pol)
	}
	if kind == "readstorm" {
		pol := replica.DefaultPolicy()
		pol.R = 3
		pol.LeaseTicks = 40
		pol.ReplicateReadFrac = 0.75
		rep = replica.MustManager(pol)
	}
	c, err := cluster.New(cluster.Config{
		MDS:         mds,
		Clients:     clients,
		ClientRate:  150,
		Seed:        42,
		Workers:     workers,
		Balancer:    experiment.MakeBalancer("Lunule"),
		Workload:    gen,
		Elastic:     controller,
		Replication: rep,
		Batching:    batching,
		Tenancy:     tn,
	})
	if err != nil {
		return tickCase{}, err
	}
	c.Run(warmup)
	opsBefore := c.Metrics().TotalOps()
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	c.Run(ticks)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)
	ops := c.Metrics().TotalOps() - opsBefore
	sec := elapsed.Seconds()
	name := fmt.Sprintf("%s/mds%d", kind, mds)
	if workers > 1 {
		name = fmt.Sprintf("%s/w%d", name, workers)
	}
	if batch > 1 {
		name = fmt.Sprintf("%s/b%d", name, batch)
	}
	tc := tickCase{
		Name:          name,
		Workload:      kind,
		MDS:           mds,
		Clients:       clients,
		Workers:       workers,
		BatchSize:     batch,
		Ticks:         ticks,
		NsPerTick:     float64(elapsed.Nanoseconds()) / float64(ticks),
		AllocsPerTick: float64(msAfter.Mallocs-msBefore.Mallocs) / float64(ticks),
	}
	if sec > 0 {
		tc.OpsPerSec = ops / sec
	}
	return tc, nil
}

// runTickBench executes the serial matrix ({4,8,16} MDS x {zipf,
// shareddir, elastic, replication}, 64 clients), then the
// parallel-engine cells: every worker count in `workersAxis` over the
// >= 8-rank zipf/shareddir cells, and the 64/128-rank scale cells (256
// clients) where the worker pool has enough lanes to matter. It prints
// a table, optionally writes the JSON report, and diffs it against a
// checked-in baseline. ns/tick ratios are informational (wall clock
// moves with the host), but allocs/tick is a property of the code:
// when maxAllocRegress >= 0, any case whose allocs/tick exceeds the
// baseline by more than that fraction fails the run loudly.
func runTickBench(stdout io.Writer, ticks int64, workersAxis, batchAxis []int, outPath, baselinePath string, maxAllocRegress float64) error {
	if ticks <= 0 {
		ticks = 300
	}
	rep := tickReport{Go: runtime.Version(), Ticks: ticks}
	emit := func(kind string, mds, clients, workers, batch int) error {
		tc, err := runTickCase(kind, mds, clients, workers, batch, 100, ticks)
		if err != nil {
			return err
		}
		rep.Cases = append(rep.Cases, tc)
		fmt.Fprintf(stdout, "%-20s %10.0f ns/tick %12.0f ops/sec %8.0f allocs/tick\n",
			tc.Name, tc.NsPerTick, tc.OpsPerSec, tc.AllocsPerTick)
		return nil
	}
	for _, kind := range []string{"zipf", "shareddir", "mdtest", "readstorm", "elastic", "replication", "tenant"} {
		for _, mds := range []int{4, 8, 16} {
			if err := emit(kind, mds, 64, 1, 0); err != nil {
				return err
			}
		}
	}
	for _, w := range workersAxis {
		if w <= 1 {
			continue // the serial matrix above already covers workers=1
		}
		for _, kind := range []string{"zipf", "shareddir"} {
			for _, mds := range []int{8, 16} {
				if err := emit(kind, mds, 64, w, 0); err != nil {
					return err
				}
			}
		}
	}
	// Write-back cells: the batch-size axis over the zipf and mdtest
	// workloads, against the sync cells above as the speedup baseline.
	// mds4 is server-bound at 64 clients (9600 demand vs 8000 budget):
	// the cell where group-commit admission shows up as ops/sec.
	for _, b := range batchAxis {
		if b <= 1 {
			continue // the serial matrix above is the sync baseline
		}
		for _, kind := range []string{"zipf", "mdtest"} {
			for _, mds := range []int{4, 8} {
				if err := emit(kind, mds, 64, 1, b); err != nil {
					return err
				}
			}
		}
	}
	// Scale cells: wide clusters where rank lanes dominate the tick, at
	// every axis point (including 1, the serial reference).
	for _, mds := range []int{64, 128} {
		for _, w := range workersAxis {
			if err := emit("zipf", mds, 256, w, 0); err != nil {
				return err
			}
		}
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "tick benchmark written to %s\n", outPath)
	}
	if baselinePath != "" {
		if err := diffTickBaseline(stdout, rep, baselinePath, maxAllocRegress); err != nil {
			return err
		}
	}
	return nil
}

// diffTickBaseline prints current/baseline ratios per case and, when
// maxAllocRegress >= 0, fails if any case's allocs/tick regressed past
// the threshold (ns/tick stays informational — it moves with the host).
func diffTickBaseline(stdout io.Writer, rep tickReport, path string, maxAllocRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base tickReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	byName := make(map[string]tickCase, len(base.Cases))
	for _, tc := range base.Cases {
		byName[tc.Name] = tc
	}
	fmt.Fprintf(stdout, "\nvs baseline %s (ratio, 1.00 = unchanged; ns informational, allocs gated):\n", path)
	var regressed []string
	for _, tc := range rep.Cases {
		b, ok := byName[tc.Name]
		if !ok || b.NsPerTick == 0 {
			fmt.Fprintf(stdout, "%-16s (no baseline)\n", tc.Name)
			continue
		}
		allocRatio := safeRatio(tc.AllocsPerTick, b.AllocsPerTick)
		verdict := ""
		if maxAllocRegress >= 0 && b.AllocsPerTick > 0 && allocRatio > 1+maxAllocRegress {
			verdict = "  ALLOC REGRESSION"
			regressed = append(regressed, fmt.Sprintf("%s %.2fx", tc.Name, allocRatio))
		}
		fmt.Fprintf(stdout, "%-16s %5.2fx ns/tick %5.2fx allocs/tick%s\n",
			tc.Name, tc.NsPerTick/b.NsPerTick, allocRatio, verdict)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("allocs/tick regressed more than %.0f%% vs %s: %s",
			maxAllocRegress*100, path, strings.Join(regressed, ", "))
	}
	return nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
