package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file from the current output")

// TestGoldenOutput locks down the full lunule-sim report — summary
// table (including the fault rows and the trace-count row), sparkline
// figures, and trace summary — for a small seeded failover run. The
// simulator is deterministic, so any diff here is a behavior change,
// not noise. Regenerate intentionally with:
//
//	go test ./cmd/lunule-sim -run TestGolden -update
func TestGoldenOutput(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	args := []string{
		"-workload", "zipf", "-mds", "3", "-clients", "6",
		"-rate", "5", "-scale", "0.02", "-seed", "7",
		"-crash", "30:hot", "-recover", "90:0", "-maxticks", "600",
		"-trace-out", tracePath, "-trace-summary",
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d, stderr:\n%s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Fatalf("unexpected stderr:\n%s", stderr.String())
	}
	// The trace lands in a per-run temp dir; normalize the path so the
	// golden file is stable.
	got := strings.ReplaceAll(stdout.String(), tracePath, "TRACE.jsonl")

	golden := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s (rerun with -update if intended)\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}

	// The trace itself must exist and include the failover lifecycle.
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range []string{`"type":"mds_crash"`, `"type":"orphan_takeover"`, `"type":"mds_recover"`, `"type":"backoff_enter"`} {
		if !strings.Contains(string(trace), ev) {
			t.Fatalf("trace missing %s", ev)
		}
	}
}

// TestBadFlagsFail covers the error seam: an unknown event type must
// exit non-zero with a diagnostic, not panic or silently ignore.
func TestBadFlagsFail(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-trace-events", "bogus"}, &stdout, &stderr); code == 0 {
		t.Fatal("bogus -trace-events without a sink must fail")
	}
	tracePath := filepath.Join(t.TempDir(), "t.jsonl")
	stderr.Reset()
	if code := run([]string{"-trace-out", tracePath, "-trace-events", "bogus"}, &stdout, &stderr); code == 0 {
		t.Fatal("unknown event type must fail")
	}
	if !strings.Contains(stderr.String(), "bogus") {
		t.Fatalf("diagnostic should name the bad type, got: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-replication-promote", "5"}, &stdout, &stderr); code == 0 {
		t.Fatal("-replication-promote without -replication must fail")
	}
	stderr.Reset()
	if code := run([]string{"-replication", "2", "-replication-promote", "0"}, &stdout, &stderr); code == 0 {
		t.Fatal("invalid replication policy must fail")
	}
}

// TestReplicatedRunWithPathCrash smoke-tests the replication flags
// end-to-end: an audited R=2 run with a partition-scoped crash exits
// clean and reports the replication summary rows.
func TestReplicatedRunWithPathCrash(t *testing.T) {
	args := []string{
		"-workload", "zipf", "-mds", "3", "-clients", "6",
		"-rate", "5", "-scale", "0.02", "-seed", "7",
		"-replication", "2", "-crash", "30:/zipf/client000",
		"-recoveryticks", "25", "-audit", "-audit-every-tick",
		"-maxticks", "600",
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run exited %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, row := range []string{"replication factor", "warm promotions", "resyncs started / done", "journal records / max lag"} {
		if !strings.Contains(out, row) {
			t.Fatalf("summary missing %q:\n%s", row, out)
		}
	}
	if !strings.Contains(out, "MDS crashes") {
		t.Fatalf("path crash never fired:\n%s", out)
	}
}
