// Command lunule-sim runs a single simulated CephFS metadata cluster
// with a chosen workload and balancer and prints its dynamics: per-MDS
// throughput, imbalance-factor series, migration counts, and job
// completion times. With -trace-out it also emits a structured JSONL
// event trace (epochs, migrations, faults, backoff transitions), and
// with -pprof / -cpuprofile / -memprofile it exposes Go profiling.
//
//	lunule-sim -workload zipf -balancer lunule -mds 5 -clients 40
//	lunule-sim -crash 100:hot -trace-out run.jsonl -trace-events migration_aborted,orphan_takeover
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/elastic"
	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/tenant"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags in, exit code
// out, everything printed to the supplied writers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lunule-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl        = fs.String("workload", "Zipf", "workload: CNN, NLP, Web, Zipf, MD, Mixed")
		bal       = fs.String("balancer", "Lunule", "balancer: Vanilla, GreedySpill, Lunule-Light, Lunule, Dir-Hash")
		mdsN      = fs.Int("mds", 5, "number of metadata servers")
		clients   = fs.Int("clients", 40, "number of clients")
		rate      = fs.Float64("rate", 150, "client op rate (ops per second)")
		capacity  = fs.Int("capacity", 2000, "per-MDS capacity (ops per second)")
		scale     = fs.Float64("scale", 1.0, "workload scale factor")
		seed      = fs.Uint64("seed", 42, "random seed")
		ticks     = fs.Int64("maxticks", 6000, "simulated-tick budget")
		data      = fs.Bool("data", false, "enable the OSD data path")
		csvPath   = fs.String("csv", "", "write per-tick series to this CSV file")
		ifCSV     = fs.String("ifcsv", "", "write the per-epoch imbalance series to this CSV file")
		traceFile = fs.String("tracefile", "", "replay this op trace instead of a synthetic workload (see lunule-trace -export)")
		pins      = fs.String("pin", "", "comma-separated static subtree pins, e.g. /zipf/client000=1,/web=2 (ceph.dir.pin)")
		crashes   = fs.String("crash", "", "comma-separated MDS crashes as tick:rank (rank 'hot' = hottest live rank, or a /path = whichever rank governs the path at the crash tick), e.g. 100:1,400:hot,600:/zipf/client000")
		recovers  = fs.String("recover", "", "comma-separated MDS recoveries as tick:rank, e.g. 300:1")
		mtbf      = fs.Float64("mtbf", 0, "random failures: mean ticks between failures per rank (0 = off)")
		mttr      = fs.Float64("mttr", 0, "random failures: mean ticks to repair (default mtbf/10)")
		recoveryT = fs.Int("recoveryticks", 0, "failover takeover latency window in ticks (default 20)")
		workers   = fs.Int("workers", 1, "worker goroutines for the phased tick engine (0 or 1 = serial); output is byte-identical at every setting")
		auditOn   = fs.Bool("audit", false, "validate cross-module invariants at every epoch; violations fail the run")
		auditTick = fs.Bool("audit-every-tick", false, "with -audit, run the invariant checks every tick instead of every epoch")

		batchSize  = fs.Int("batch-size", 0, "write-back client batching: ops per flushed batch and per server commit group (0 = synchronous per-op path)")
		flushEvery = fs.Int64("flush-every", 0, "with -batch-size, flush a buffered run after this many ticks even if short (default 4)")

		replicationR   = fs.Int("replication", 1, "subtree replication factor R: 1 = off (cold takeover only), >=2 keeps R-1 warm standbys per subtree")
		replShipEvery  = fs.Int64("replication-ship", 5, "with -replication >= 2, journal ship interval in ticks")
		replPromote    = fs.Int("replication-promote", 2, "with -replication >= 2, ticks after a crash before standbys promote (keep below -recoveryticks)")
		replResyncRate = fs.Int("replication-resync", 2000, "with -replication >= 2, inodes per tick one background re-replication sync copies")
		leaseTicks     = fs.Int64("lease-ticks", 0, "with -replication >= 2, grant read leases on hot read-dominated subtrees' synced standbys for this many ticks (0 = off); holders serve reads, writes invalidate")
		leaseReadFrac  = fs.Float64("replicate-read-frac", 0.75, "with -lease-ticks, minimum read fraction of a subtree's heat before it is replicated instead of migrated")

		tenants     = fs.Int("tenants", 0, "partition clients into this many tenants (each runs its own generator in its own subtree, overriding -workload) with per-tenant token-bucket admission (0 = off)")
		tenantRate  = fs.Float64("tenant-rate", 4000, "with -tenants, per-tenant bucket refill in ops per tick")
		tenantBurst = fs.Float64("tenant-burst", 8000, "with -tenants, per-tenant bucket capacity in ops")
		tenantSkew  = fs.Float64("tenant-skew", 1.0, "with -tenants, Zipf exponent of the tenant-size distribution (0 = equal shares)")

		elasticOn   = fs.Bool("elastic", false, "enable the MDS autoscaler: grow under saturation, gracefully drain ranks when idle (-mds is the starting size)")
		elasticMin  = fs.Int("elastic-min", 0, "with -elastic, rank floor (default: the starting -mds count)")
		elasticMax  = fs.Int("elastic-max", 0, "with -elastic, rank ceiling (default: 2x the floor)")
		elasticUp   = fs.Float64("elastic-up", 0.75, "with -elastic, utilization that triggers a scale-up")
		elasticDown = fs.Float64("elastic-down", 0.35, "with -elastic, utilization below which a rank drains")
		elasticCool = fs.Int64("elastic-cooldown", 2, "with -elastic, epochs between consecutive scale decisions")
		elasticStep = fs.Int("elastic-step", 2, "with -elastic, ranks added per scale-up (drains retire one at a time)")

		traceOut   = fs.String("trace-out", "", "write a structured JSONL event trace to this file")
		traceEvs   = fs.String("trace-events", "", "comma-separated event types to trace (empty or 'all' = everything; see EXPERIMENTS.md)")
		traceSum   = fs.Bool("trace-summary", false, "print per-type event counts after the run")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "error: %v\n", err)
		return 1
	}

	name := canonical(*wl)
	var gen workload.Generator
	nClients := *clients
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return fail(err)
		}
		tf, err := workload.ParseTrace(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		gen = tf
		nClients = tf.Clients()
		name = "Trace(" + *traceFile + ")"
	} else {
		gen = experiment.MakeWorkload(name, *scale)
	}
	var tenancy *tenant.Manager
	if *tenants > 0 {
		if *traceFile != "" {
			return fail(fmt.Errorf("-tenants cannot be combined with -tracefile"))
		}
		pol := tenant.DefaultPolicy()
		pol.Rate = *tenantRate
		pol.Burst = *tenantBurst
		var err error
		tenancy, err = tenant.NewManager(pol)
		if err != nil {
			return fail(err)
		}
		gen = workload.DefaultTenants(*tenants, *tenantSkew)
		name = gen.Name()
	} else if *tenantRate != 4000 || *tenantBurst != 8000 || *tenantSkew != 1.0 {
		return fail(fmt.Errorf("-tenant-rate/-tenant-burst/-tenant-skew need -tenants"))
	}
	faults, err := buildFaults(*crashes, *recovers, *mtbf, *mttr, *mdsN, *ticks, *seed)
	if err != nil {
		return fail(err)
	}
	if *auditTick && !*auditOn {
		return fail(fmt.Errorf("-audit-every-tick needs -audit"))
	}
	var auditor *audit.Auditor
	if *auditOn {
		auditor = audit.New(audit.Options{EveryTick: *auditTick})
	}

	var batching *cluster.BatchingConfig
	if *batchSize > 0 {
		fe := *flushEvery
		if fe == 0 {
			fe = 4
		}
		batching = &cluster.BatchingConfig{BatchSize: *batchSize, FlushEvery: fe}
	} else if *flushEvery != 0 {
		return fail(fmt.Errorf("-flush-every needs -batch-size"))
	}

	var rep *replica.Manager
	if *replicationR > 1 {
		pol := replica.DefaultPolicy()
		pol.R = *replicationR
		pol.ShipEvery = *replShipEvery
		pol.PromoteTicks = *replPromote
		pol.ResyncRate = *replResyncRate
		pol.LeaseTicks = *leaseTicks
		if *leaseTicks > 0 {
			pol.ReplicateReadFrac = *leaseReadFrac
		} else if *leaseReadFrac != 0.75 {
			return fail(fmt.Errorf("-replicate-read-frac needs -lease-ticks"))
		}
		var err error
		rep, err = replica.NewManager(pol)
		if err != nil {
			return fail(err)
		}
	} else if *replShipEvery != 5 || *replPromote != 2 || *replResyncRate != 2000 {
		return fail(fmt.Errorf("-replication-ship/-replication-promote/-replication-resync need -replication >= 2"))
	} else if *leaseTicks != 0 {
		return fail(fmt.Errorf("-lease-ticks needs -replication >= 2"))
	} else if *leaseReadFrac != 0.75 {
		return fail(fmt.Errorf("-replicate-read-frac needs -lease-ticks"))
	}

	var controller *elastic.Controller
	if *elasticOn {
		policy := elastic.DefaultPolicy()
		policy.MinRanks = *mdsN
		if *elasticMin > 0 {
			policy.MinRanks = *elasticMin
		}
		policy.MaxRanks = 2 * policy.MinRanks
		if *elasticMax > 0 {
			policy.MaxRanks = *elasticMax
		}
		policy.ScaleUpUtil = *elasticUp
		policy.ScaleDownUtil = *elasticDown
		policy.CooldownEpochs = *elasticCool
		policy.StepUp = *elasticStep
		var err error
		controller, err = elastic.NewController(policy)
		if err != nil {
			return fail(err)
		}
	} else if *elasticMin > 0 || *elasticMax > 0 {
		return fail(fmt.Errorf("-elastic-min/-elastic-max need -elastic"))
	}

	// Observability wiring. The bus is nil unless a sink was requested,
	// so an untraced run pays only nil-checks at the emit sites.
	var (
		bus     *obs.Bus
		sinks   []obs.Sink
		jsonl   *obs.JSONL
		summary *obs.Summary
	)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail(err)
		}
		jsonl = obs.NewJSONLFile(f)
		sinks = append(sinks, jsonl)
	}
	if *traceSum {
		summary = obs.NewSummary()
		sinks = append(sinks, summary)
	}
	if len(sinks) > 0 {
		types, err := obs.ParseTypes(*traceEvs)
		if err != nil {
			return fail(err)
		}
		bus = obs.NewBus(sinks...)
		bus.Allow(types...)
	} else if *traceEvs != "" {
		return fail(fmt.Errorf("-trace-events needs -trace-out or -trace-summary"))
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(stdout, "pprof server listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	c, err := cluster.New(cluster.Config{
		MDS:           *mdsN,
		Capacity:      *capacity,
		Clients:       nClients,
		ClientRate:    *rate,
		DataPath:      *data,
		Seed:          *seed,
		Workers:       *workers,
		Balancer:      experiment.MakeBalancer(canonicalBalancer(*bal)),
		Workload:      gen,
		RecoveryTicks: *recoveryT,
		Faults:        faults,
		Bus:           bus,
		Audit:         auditor,
		Elastic:       controller,
		Replication:   rep,
		Batching:      batching,
		Tenancy:       tenancy,
	})
	if err != nil {
		return fail(err)
	}
	if *pins != "" {
		for _, spec := range strings.Split(*pins, ",") {
			parts := strings.SplitN(strings.TrimSpace(spec), "=", 2)
			if len(parts) != 2 {
				return fail(fmt.Errorf("bad pin %q (want path=rank)", spec))
			}
			rank, err := strconv.Atoi(parts[1])
			if err != nil {
				return fail(fmt.Errorf("bad pin rank %q", parts[1]))
			}
			if err := c.PinPath(parts[0], rank); err != nil {
				return fail(err)
			}
		}
	}
	end := c.RunUntilDone(*ticks)
	if controller != nil {
		// Let in-flight drains finish and the idle cluster shrink back
		// to its floor, so the run ends with a settled fleet.
		end = c.SettleDrains(3000)
	}
	rec := c.Metrics()
	if err := bus.Close(); err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "workload=%s balancer=%s mds=%d clients=%d ended at tick %d (all done: %v)\n\n",
		name, *bal, *mdsN, nClients, end, c.Done())
	tbl := &metrics.Table{Header: []string{"metric", "value"}}
	tbl.Add("mean imbalance factor", fmt.Sprintf("%.3f", rec.MeanIF()))
	tbl.Add("peak aggregate IOPS", fmt.Sprintf("%.0f", rec.PeakThroughput(10)))
	tbl.Add("mean aggregate IOPS", fmt.Sprintf("%.0f", rec.MeanThroughput()))
	tbl.Add("migrated inodes", fmt.Sprintf("%.0f", rec.MigratedTotal()))
	tbl.Add("inter-MDS forwards", fmt.Sprintf("%.0f", rec.ForwardsTotal()))
	tbl.Add("op latency mean / p99 (ticks)", fmt.Sprintf("%.2f / %.0f", rec.MeanLatency(), rec.LatencyQuantile(0.99)))
	jcts := rec.JCTQuantiles(0.5, 0.99)
	tbl.Add("JCT p50 / p99 (ticks)", fmt.Sprintf("%.0f / %.0f", jcts[0], jcts[1]))
	tbl.Add("subtree entries", fmt.Sprintf("%d", c.Partition().NumEntries()))
	if faults != nil && !faults.Empty() {
		var retries, crashN int64
		for _, cl := range c.Clients() {
			retries += cl.Retries()
		}
		for _, s := range c.Servers() {
			crashN += s.Crashes()
		}
		tbl.Add("MDS crashes", fmt.Sprintf("%d", crashN))
		tbl.Add("ops stalled on down ranks", fmt.Sprintf("%.0f", rec.StalledDownTotal()))
		tbl.Add("exports aborted by crashes", fmt.Sprintf("%.0f", rec.AbortedTotal()))
		tbl.Add("client retries (backoff)", fmt.Sprintf("%d", retries))
		tbl.Add("orphaned rank-ticks", fmt.Sprintf("%.0f", rec.RecoveryTicksTotal()))
		tbl.Add("mean ticks to reassign", fmt.Sprintf("%.1f", rec.MeanTicksToReassign()))
		if down := c.DownRanks(); len(down) > 0 {
			tbl.Add("still down at end", fmt.Sprint(down))
		}
	}
	if batching != nil {
		tbl.Add("write-back batching", fmt.Sprintf("B=%d flush-every=%d", batching.BatchSize, batching.FlushEvery))
		tbl.Add("batches flushed / committed", fmt.Sprintf("%d / %d", rec.BatchFlushes(), rec.BatchCommits()))
		tbl.Add("batch size mean / p90", fmt.Sprintf("%.1f / %.0f", rec.MeanBatchSize(), rec.BatchSizeQuantile(0.9)))
		tbl.Add("flush latency p50 / p99 (ticks)", fmt.Sprintf("%.0f / %.0f", rec.FlushAgeQuantile(0.5), rec.FlushAgeQuantile(0.99)))
		if rq := rec.BatchRequeues(); rq > 0 {
			tbl.Add("batches re-queued by crashes", fmt.Sprintf("%d", rq))
		}
	}
	if tn := c.Tenancy(); tn != nil {
		tbl.Add("tenant admission", fmt.Sprintf("%d tenants, rate=%.0f burst=%.0f ops", tn.N(), *tenantRate, *tenantBurst))
		for t := 0; t < tn.N(); t++ {
			tbl.Add(fmt.Sprintf("tenant %d (%d clients)", t, tn.Clients(t)),
				fmt.Sprintf("jct p50 %.0f, lat mean/p99 %.2f/%.0f, admitted %d, throttled %d, stalled %d",
					rec.TenantJCTQuantile(t, 0.5), rec.TenantMeanLatency(t),
					rec.TenantLatencyQuantile(t, 0.99),
					tn.Admitted(t), tn.Throttled(t), tn.Stalled(t)))
		}
	}
	if rep != nil {
		tbl.Add("replication factor", fmt.Sprintf("R=%d (%d groups)", rep.Policy().R, rep.Groups()))
		tbl.Add("warm promotions", fmt.Sprintf("%d (warm recoveries: %d)", c.Promotions(), rec.WarmRecoveries()))
		tbl.Add("resyncs started / done", fmt.Sprintf("%d / %d", rep.ResyncsStarted(), rep.ResyncsDone()))
		tbl.Add("journal records / max lag", fmt.Sprintf("%d / %d", rep.Records(), rep.MaxLag()))
		if rep.Policy().LeaseTicks > 0 {
			tbl.Add("read leases", fmt.Sprintf("term=%d ticks, read-frac>=%.2f", rep.Policy().LeaseTicks, rep.Policy().ReplicateReadFrac))
			tbl.Add("lease serves (by holders)", fmt.Sprintf("%d", c.LeaseServes()))
			tbl.Add("leases granted / revoked / expired",
				fmt.Sprintf("%d / %d / %d", rep.LeasesGranted(), rep.LeasesRevoked(), rep.LeasesExpired()))
		}
	}
	if controller != nil {
		tbl.Add("scale-ups applied", fmt.Sprintf("%d", c.ScaleUps()))
		tbl.Add("drains completed", fmt.Sprintf("%d", c.DrainsDone()))
		tbl.Add("serving ranks at end", fmt.Sprintf("%d (of %d ever)", c.ServingRanks(), len(c.Servers())))
		tbl.Add("rank-epochs billed", fmt.Sprintf("%d", c.RankEpochs()))
		if dr := c.DrainingRanks(); len(dr) > 0 {
			tbl.Add("still draining at end", fmt.Sprint(dr))
		}
	}
	if auditor != nil {
		tbl.Add("audit passes / violations",
			fmt.Sprintf("%d / %d", auditor.Passes(), len(auditor.Violations())))
	}
	if jsonl != nil {
		tbl.Add("trace events written", fmt.Sprintf("%d", jsonl.Count()))
	}
	fmt.Fprint(stdout, tbl.String())

	fmt.Fprintln(stdout, "\nimbalance factor over time:")
	fmt.Fprintf(stdout, "  %s  %s\n", metrics.Sparkline(&rec.IF, 40), metrics.FormatSeries(&rec.IF, 8))
	fmt.Fprintln(stdout, "per-MDS IOPS over time (shared scale):")
	maxIOPS := 0.0
	for _, s := range rec.PerMDS {
		if m := s.MaxValue(); m > maxIOPS {
			maxIOPS = m
		}
	}
	for i, s := range rec.PerMDS {
		fmt.Fprintf(stdout, "  MDS-%d %s  %s\n", i+1,
			metrics.SparklineScaled(s, 40, maxIOPS), metrics.FormatSeries(s, 8))
	}
	fmt.Fprintln(stdout, "aggregate IOPS over time:")
	fmt.Fprintf(stdout, "  %s\n", metrics.Sparkline(&rec.Agg, 40))

	if summary != nil {
		fmt.Fprintln(stdout, "\ntrace event counts:")
		fmt.Fprint(stdout, summary.String())
	}
	if *traceOut != "" {
		fmt.Fprintf(stdout, "\ntrace written to %s\n", *traceOut)
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, rec.WriteCSV); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\nper-tick series written to %s\n", *csvPath)
	}
	if *ifCSV != "" {
		if err := writeCSV(*ifCSV, rec.WriteEpochCSV); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "imbalance series written to %s\n", *ifCSV)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "heap profile written to %s\n", *memProfile)
	}
	if vs := auditor.Violations(); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintf(stderr, "audit violation: %s\n", v)
		}
		return fail(auditor.Err())
	}
	return 0
}

// buildFaults combines the scripted -crash/-recover specs with the
// random -mtbf mode into one validated schedule (nil when no fault
// flags were given).
func buildFaults(crashes, recovers string, mtbf, mttr float64, mdsN int, horizon int64, seed uint64) (*fault.Schedule, error) {
	sched, err := fault.ParseSpecs(crashes, fault.Crash)
	if err != nil {
		return nil, err
	}
	recs, err := fault.ParseSpecs(recovers, fault.Recover)
	if err != nil {
		return nil, err
	}
	sched.Merge(recs)
	if mtbf > 0 {
		sched.Merge(fault.MTBF(fault.MTBFConfig{
			Ranks:   mdsN,
			MTBF:    mtbf,
			MTTR:    mttr,
			Horizon: horizon,
		}, rng.New(seed).Fork(99)))
	}
	if sched.Empty() {
		return nil, nil
	}
	if err := sched.Validate(mdsN); err != nil {
		return nil, err
	}
	return &sched, nil
}

func writeCSV(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func canonical(w string) string {
	switch strings.ToLower(w) {
	case "cnn":
		return "CNN"
	case "nlp":
		return "NLP"
	case "web":
		return "Web"
	case "zipf":
		return "Zipf"
	case "md", "mdtest":
		return "MD"
	case "mixed":
		return "Mixed"
	case "readstorm", "read-storm":
		return "ReadStorm"
	default:
		return w
	}
}

func canonicalBalancer(b string) string {
	switch strings.ToLower(b) {
	case "vanilla", "cephfs", "cephfs-vanilla":
		return "Vanilla"
	case "greedyspill", "greedy":
		return "GreedySpill"
	case "lunule-light", "light":
		return "Lunule-Light"
	case "lunule":
		return "Lunule"
	case "dir-hash", "dirhash", "hash":
		return "Dir-Hash"
	default:
		return b
	}
}
